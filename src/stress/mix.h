#ifndef MDDC_STRESS_MIX_H_
#define MDDC_STRESS_MIX_H_

#include <array>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "common/result.h"
#include "workload/clinical_generator.h"

namespace mddc {
namespace stress {

/// The query classes of the mixed workload (docs/stress.md). Each class
/// maps to one shape of MDQL statement stream over the clinical MO:
///
///  * kRollupDrilldown — an analyst session: the same population grouped
///    at Diagnosis Group, then drilled into one group's families, then
///    into one family's low-level diagnoses (many-to-many and non-strict
///    hierarchy edges are on this path).
///  * kTemporalSlice — ASOF queries at fixed dates across the 1980
///    reclassification epoch plus the growing 'NOW' sentinel.
///  * kProbabilistic — PROB(...) >= t thresholds over the uncertain
///    diagnoses.
///  * kStarJoin — the star-schema-shaped query: a two-dimension group-by
///    with a cross-dimension disjunctive filter, i.e. what a relational
///    star schema would answer with a fact-dimension join.
///  * kInsert — MDQL INSERT of a new patient fact with an uncertain
///    diagnosis and a residence, routed through the store's writer.
///  * kAppendBatch — the continuous-ingestion shape: one bulk INSERT of
///    several new patient facts, published as ONE epoch through the
///    store's batched-append fast path (docs/ingestion.md).
enum class QueryClass {
  kRollupDrilldown = 0,
  kTemporalSlice = 1,
  kProbabilistic = 2,
  kStarJoin = 3,
  kInsert = 4,
  kAppendBatch = 5,
};

inline constexpr std::size_t kQueryClassCount = 6;

/// Short stable name, also the key of MixSpec::Parse ("rollup",
/// "temporal", "prob", "star", "insert", "append").
const char* QueryClassName(QueryClass query_class);

/// Relative weights of the query classes, YCSB-style. The default mix is
/// read-heavy with a trickle of writes (single-fact and batched).
struct MixSpec {
  std::array<std::uint32_t, kQueryClassCount> weights{4, 2, 1, 1, 1, 1};

  /// Parses "rollup=4,temporal=2,prob=1,star=1,insert=1". Omitted
  /// classes keep weight 0; at least one weight must be positive.
  static Result<MixSpec> Parse(const std::string& text);

  /// Round-trips through Parse.
  std::string ToString() const;
};

/// What the statement generator needs to know about the generated
/// clinical MO in order to name values without looking inside it: the
/// generator (workload/clinical_generator.cc) labels every level with
/// deterministic index-based codes — G<k> groups, F<k> families, L<k>
/// low-level diagnoses, R<k> regions, CO<k> counties, A<k> areas — so a
/// profile is just the cardinalities plus the MO's published name.
struct WorkloadProfile {
  std::string mo_name;
  std::size_t groups = 0;
  std::size_t families = 0;
  std::size_t lows = 0;
  std::size_t regions = 0;
  std::size_t counties = 0;
  std::size_t areas = 0;
  /// INSERT fact keys start here, far above the generator's patient key
  /// space; session s uses insert_key_base + s * 1000000 + counter.
  std::uint64_t insert_key_base = 50000000;

  static WorkloadProfile For(const ClinicalWorkloadParams& params,
                             const ClinicalMo& clinical,
                             std::string mo_name);
};

/// Produces the MDQL statement stream of one stress session,
/// deterministically from (profile, seed, session_index). One Generate
/// call emits the statements of one logical operation — a roll-up /
/// drill-down session is three statements, the other classes one or two.
class StatementGenerator {
 public:
  StatementGenerator(WorkloadProfile profile, std::uint32_t seed,
                     std::size_t session_index);

  std::vector<std::string> Generate(QueryClass query_class);

  /// Draws a class from the mix's weight distribution.
  QueryClass Draw(const MixSpec& mix);

 private:
  std::size_t Pick(std::size_t bound);  // uniform in [0, bound)

  WorkloadProfile profile_;
  std::size_t session_index_;
  std::mt19937 rng_;
  std::uint64_t insert_counter_ = 0;
};

}  // namespace stress
}  // namespace mddc

#endif  // MDDC_STRESS_MIX_H_
