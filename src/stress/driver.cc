#include "stress/driver.h"

#include <chrono>
#include <thread>
#include <utility>

#include "mdql/mdql.h"

namespace mddc {
namespace stress {
namespace {

/// Everything one session thread accumulates; merged into the report
/// after the join, so threads never share state during the run.
struct SessionOutcome {
  std::array<ClassTally, kQueryClassCount> per_class;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t errors = 0;
  std::vector<StatementRecord> read_records;
  std::vector<StatementRecord> write_records;
  ExecStats exec;
};

void RunSession(serve::MdqlServer& server, const StressOptions& options,
                std::size_t session_index, SessionOutcome& outcome) {
  serve::ServerSession session =
      server.Connect(options.threads_per_query);
  StatementGenerator generator(options.profile, options.seed, session_index);
  for (std::size_t op = 0; op < options.ops_per_session; ++op) {
    const QueryClass query_class =
        options.cycle_classes
            ? static_cast<QueryClass>(op % kQueryClassCount)
            : generator.Draw(options.mix);
    ClassTally& tally =
        outcome.per_class[static_cast<std::size_t>(query_class)];
    for (const std::string& statement : generator.Generate(query_class)) {
      const bool is_write = query_class == QueryClass::kInsert ||
                            query_class == QueryClass::kAppendBatch;
      const auto start = std::chrono::steady_clock::now();
      auto result = session.Execute(statement);
      const auto end = std::chrono::steady_clock::now();
      ++tally.statements;
      tally.latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(end - start).count());
      if (!result.ok()) {
        ++outcome.errors;
        continue;
      }
      if (is_write) {
        ++outcome.writes;
      } else {
        ++outcome.reads;
      }
      if (options.record) {
        StatementRecord record;
        record.epoch = session.pinned_epoch();
        record.statement = statement;
        record.rendered = result->ToString();
        (is_write ? outcome.write_records : outcome.read_records)
            .push_back(std::move(record));
      }
    }
  }
  outcome.exec = session.stats().exec;
}

}  // namespace

Result<StressReport> RunStressMix(serve::MdqlServer& server,
                                  const StressOptions& options) {
  if (options.sessions == 0) {
    return Status::InvalidArgument("stress run needs at least one session");
  }
  if (options.profile.mo_name.empty()) {
    return Status::InvalidArgument("stress profile has no MO name");
  }
  std::uint64_t weight_total = 0;
  for (std::uint32_t w : options.mix.weights) weight_total += w;
  if (!options.cycle_classes && weight_total == 0) {
    return Status::InvalidArgument(
        "mix has no positive weight and cycle_classes is off");
  }

  StressReport report;
  report.epoch_before = server.store().epoch();

  std::vector<SessionOutcome> outcomes(options.sessions);
  std::vector<std::thread> threads;
  threads.reserve(options.sessions);
  const auto wall_start = std::chrono::steady_clock::now();
  for (std::size_t s = 0; s < options.sessions; ++s) {
    threads.emplace_back([&server, &options, &outcomes, s] {
      RunSession(server, options, s, outcomes[s]);
    });
  }
  for (std::thread& t : threads) t.join();
  const auto wall_end = std::chrono::steady_clock::now();

  report.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  report.epoch_after = server.store().epoch();
  report.reads_per_session.reserve(options.sessions);
  for (SessionOutcome& outcome : outcomes) {
    for (std::size_t c = 0; c < kQueryClassCount; ++c) {
      ClassTally& into = report.per_class[c];
      ClassTally& from = outcome.per_class[c];
      into.statements += from.statements;
      into.latencies_ms.insert(into.latencies_ms.end(),
                               from.latencies_ms.begin(),
                               from.latencies_ms.end());
    }
    report.reads += outcome.reads;
    report.writes += outcome.writes;
    report.errors += outcome.errors;
    report.reads_per_session.push_back(outcome.reads);
    for (StatementRecord& r : outcome.read_records) {
      report.read_records.push_back(std::move(r));
    }
    for (StatementRecord& r : outcome.write_records) {
      report.write_records.push_back(std::move(r));
    }
    report.exec.MergeFrom(outcome.exec);
  }
  return report;
}

}  // namespace stress
}  // namespace mddc
