#ifndef MDDC_STRESS_ORACLE_H_
#define MDDC_STRESS_ORACLE_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "core/md_object.h"
#include "stress/driver.h"

namespace mddc {
namespace stress {

/// What the differential replay found.
struct OracleReport {
  std::size_t reads_checked = 0;
  std::size_t writes_replayed = 0;
  std::size_t mismatches = 0;
  /// Human-readable description of the first divergence (empty when
  /// mismatches == 0): the epoch, the statement, and both renderings.
  std::string first_mismatch;
};

/// The differential oracle of the stress harness (docs/stress.md):
/// replays a recorded concurrent run sequentially and demands
/// byte-identical results.
///
/// `replica` must be the same MO the store published at `base_epoch`
/// (regenerate it from the same workload params and seed). The oracle
/// registers it in a plain single-threaded mdql::Session, sorts the
/// report's write records by their published epoch — MoStore serializes
/// writers, so the epochs are unique and totally ordered — and walks the
/// read records in epoch order, applying every write with epoch <= the
/// read's pinned epoch before re-executing the read. A read that pinned
/// epoch e must render byte-identically to the replica holding exactly
/// the writes published at epochs <= e; write acknowledgments are
/// compared too. Any divergence is a mismatch, not an error — the report
/// carries the count and the first diff.
///
/// Requires a report captured with StressOptions::record set; fails with
/// InvariantViolation if the write epochs collide (which would mean the
/// exact write->epoch mapping of MoStore::Mutate is broken).
Result<OracleReport> VerifySequentialReplay(MdObject replica,
                                            const std::string& mo_name,
                                            std::uint64_t base_epoch,
                                            const StressReport& report);

}  // namespace stress
}  // namespace mddc

#endif  // MDDC_STRESS_ORACLE_H_
