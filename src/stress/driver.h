#ifndef MDDC_STRESS_DRIVER_H_
#define MDDC_STRESS_DRIVER_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/executor.h"
#include "serve/mdql_server.h"
#include "stress/mix.h"

namespace mddc {
namespace stress {

/// Configuration of one stress run.
struct StressOptions {
  MixSpec mix;
  WorkloadProfile profile;
  std::uint32_t seed = 1;
  /// Concurrent sessions, one thread each, all against the same server.
  std::size_t sessions = 4;
  /// Logical operations per session; a roll-up/drill-down operation is
  /// three statements, temporal two, the rest one.
  std::size_t ops_per_session = 50;
  /// Round-robin the classes instead of drawing from the mix weights:
  /// op k runs class k % kQueryClassCount, so every class is exercised
  /// a known number of times — the shape verify mode wants.
  bool cycle_classes = false;
  /// Capture per-statement records for the differential oracle
  /// (stress/oracle.h). Off for pure throughput runs.
  bool record = false;
  /// ExecContext width of each session's reads.
  std::size_t threads_per_query = 1;
};

/// One recorded statement: the exact epoch it executed against (the
/// pinned snapshot's epoch for reads, the published epoch for writes —
/// both exact even under concurrent writers, see
/// ServerSession::pinned_epoch) plus the rendered result bytes.
struct StatementRecord {
  std::uint64_t epoch = 0;
  std::string statement;
  std::string rendered;
};

/// Per-class throughput tally.
struct ClassTally {
  std::uint64_t statements = 0;
  std::vector<double> latencies_ms;
};

/// Everything one stress run produced.
struct StressReport {
  std::array<ClassTally, kQueryClassCount> per_class;
  std::uint64_t reads = 0;   ///< read statements across all sessions
  std::uint64_t writes = 0;  ///< INSERT statements across all sessions
  std::uint64_t errors = 0;  ///< statements that returned a Status
  std::vector<std::uint64_t> reads_per_session;
  std::uint64_t epoch_before = 0;
  std::uint64_t epoch_after = 0;
  double wall_seconds = 0.0;
  /// Populated only when StressOptions::record is set.
  std::vector<StatementRecord> read_records;
  std::vector<StatementRecord> write_records;
  /// Execution counters merged across every session.
  ExecStats exec;
};

/// Replays the mixed workload: `sessions` threads each connect one
/// ServerSession and run `ops_per_session` operations whose class comes
/// from the mix (or the class cycle), generating statements
/// deterministically from (seed, session index). Reads run against
/// pinned snapshots; INSERTs go through the store's serialized writer
/// and publish epochs, so sessions continuously observe each other's
/// writes. Statement failures are counted, never fatal.
Result<StressReport> RunStressMix(serve::MdqlServer& server,
                                  const StressOptions& options);

}  // namespace stress
}  // namespace mddc

#endif  // MDDC_STRESS_DRIVER_H_
