#include "stress/oracle.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "mdql/mdql.h"

namespace mddc {
namespace stress {
namespace {

std::string DescribeDiff(const StatementRecord& record,
                         const std::string& actual) {
  return StrCat("epoch ", record.epoch, ": ", record.statement,
                "\n--- concurrent run rendered ---\n", record.rendered,
                "\n--- sequential replay rendered ---\n", actual);
}

}  // namespace

Result<OracleReport> VerifySequentialReplay(MdObject replica,
                                            const std::string& mo_name,
                                            std::uint64_t base_epoch,
                                            const StressReport& report) {
  mdql::Session session;
  // Pin the replay to the tree-walk interpreter while the live serving
  // tier compiles its SELECTs: every byte comparison below doubles as a
  // compiled-vs-interpreted differential, not just a concurrency check.
  mdql::CompileOptions interpreted;
  interpreted.enable_compiler = false;
  session.set_compile_options(interpreted);
  MDDC_RETURN_NOT_OK(session.Register(mo_name, std::move(replica)));

  std::vector<const StatementRecord*> writes;
  writes.reserve(report.write_records.size());
  for (const StatementRecord& record : report.write_records) {
    writes.push_back(&record);
  }
  std::sort(writes.begin(), writes.end(),
            [](const StatementRecord* a, const StatementRecord* b) {
              return a->epoch < b->epoch;
            });
  for (std::size_t i = 0; i < writes.size(); ++i) {
    if (writes[i]->epoch <= base_epoch) {
      return Status::InvariantViolation(
          StrCat("write epoch ", writes[i]->epoch,
                 " not after the base epoch ", base_epoch));
    }
    if (i > 0 && writes[i]->epoch == writes[i - 1]->epoch) {
      return Status::InvariantViolation(
          StrCat("two writes share epoch ", writes[i]->epoch,
                 "; MoStore::Mutate's write->epoch mapping is broken"));
    }
  }

  std::vector<const StatementRecord*> reads;
  reads.reserve(report.read_records.size());
  for (const StatementRecord& record : report.read_records) {
    reads.push_back(&record);
  }
  std::stable_sort(reads.begin(), reads.end(),
                   [](const StatementRecord* a, const StatementRecord* b) {
                     return a->epoch < b->epoch;
                   });

  OracleReport oracle;
  auto note_mismatch = [&oracle](const StatementRecord& record,
                                 const std::string& actual) {
    if (oracle.mismatches == 0) {
      oracle.first_mismatch = DescribeDiff(record, actual);
    }
    ++oracle.mismatches;
  };

  std::size_t next_write = 0;
  auto replay_write = [&](const StatementRecord& record) {
    auto ack = session.Execute(record.statement);
    if (!ack.ok()) {
      note_mismatch(record, StrCat("<error: ", ack.status().message(), ">"));
    } else if (ack->ToString() != record.rendered) {
      note_mismatch(record, ack->ToString());
    }
    ++oracle.writes_replayed;
  };

  for (const StatementRecord* read : reads) {
    while (next_write < writes.size() &&
           writes[next_write]->epoch <= read->epoch) {
      replay_write(*writes[next_write]);
      ++next_write;
    }
    auto result = session.Execute(read->statement);
    if (!result.ok()) {
      note_mismatch(*read,
                    StrCat("<error: ", result.status().message(), ">"));
    } else if (result->ToString() != read->rendered) {
      note_mismatch(*read, result->ToString());
    }
    ++oracle.reads_checked;
  }
  // Tail writes no read observed still have their acknowledgments
  // checked against the replica.
  while (next_write < writes.size()) {
    replay_write(*writes[next_write]);
    ++next_write;
  }
  return oracle;
}

}  // namespace stress
}  // namespace mddc
