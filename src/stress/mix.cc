#include "stress/mix.h"

#include <utility>

#include "common/strings.h"

namespace mddc {
namespace stress {
namespace {

constexpr const char* kClassNames[kQueryClassCount] = {
    "rollup", "temporal", "prob", "star", "insert", "append"};

/// The fixed ASOF dates of the temporal class: before the 1980
/// reclassification epoch, at it, and after it, so slices land on both
/// sides of the old-era/new-era family memberships.
constexpr const char* kSliceDates[] = {"01/06/75", "01/01/80", "15/06/85",
                                       "01/01/95"};

/// PROB thresholds; the generator's uncertain diagnoses are drawn from
/// [min_probability, 1), so these split that range.
constexpr const char* kProbThresholds[] = {"0.5", "0.7", "0.9"};

}  // namespace

const char* QueryClassName(QueryClass query_class) {
  return kClassNames[static_cast<std::size_t>(query_class)];
}

Result<MixSpec> MixSpec::Parse(const std::string& text) {
  MixSpec spec;
  spec.weights.fill(0);
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string::npos) end = text.size();
    const std::string entry = text.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(
          StrCat("mix entry '", entry, "' is not name=weight"));
    }
    const std::string name = entry.substr(0, eq);
    const std::string weight_text = entry.substr(eq + 1);
    bool numeric = !weight_text.empty();
    std::uint64_t weight = 0;
    for (char ch : weight_text) {
      if (ch < '0' || ch > '9') {
        numeric = false;
        break;
      }
      weight = weight * 10 + static_cast<std::uint64_t>(ch - '0');
    }
    if (!numeric) {
      return Status::InvalidArgument(
          StrCat("mix weight '", weight_text, "' is not a number"));
    }
    bool known = false;
    for (std::size_t c = 0; c < kQueryClassCount; ++c) {
      if (name == kClassNames[c]) {
        spec.weights[c] = static_cast<std::uint32_t>(weight);
        known = true;
        break;
      }
    }
    if (!known) {
      return Status::InvalidArgument(
          StrCat("unknown query class '", name, "' in mix spec"));
    }
  }
  std::uint64_t total = 0;
  for (std::uint32_t w : spec.weights) total += w;
  if (total == 0) {
    return Status::InvalidArgument(
        "mix spec needs at least one positive weight");
  }
  return spec;
}

std::string MixSpec::ToString() const {
  std::string out;
  for (std::size_t c = 0; c < kQueryClassCount; ++c) {
    if (!out.empty()) out += ',';
    out += StrCat(kClassNames[c], "=", weights[c]);
  }
  return out;
}

WorkloadProfile WorkloadProfile::For(const ClinicalWorkloadParams& params,
                                     const ClinicalMo& clinical,
                                     std::string mo_name) {
  WorkloadProfile profile;
  profile.mo_name = std::move(mo_name);
  profile.groups = params.num_groups;
  profile.families = clinical.num_families;
  profile.lows = clinical.num_low_level;
  profile.regions = params.num_regions;
  profile.counties = params.num_regions * params.counties_per_region;
  profile.areas = profile.counties * params.areas_per_county;
  return profile;
}

StatementGenerator::StatementGenerator(WorkloadProfile profile,
                                       std::uint32_t seed,
                                       std::size_t session_index)
    : profile_(std::move(profile)),
      session_index_(session_index),
      rng_(seed + static_cast<std::uint32_t>(session_index) * 7919u) {}

std::size_t StatementGenerator::Pick(std::size_t bound) {
  if (bound <= 1) return 0;
  return std::uniform_int_distribution<std::size_t>(0, bound - 1)(rng_);
}

QueryClass StatementGenerator::Draw(const MixSpec& mix) {
  std::uint64_t total = 0;
  for (std::uint32_t w : mix.weights) total += w;
  std::uint64_t ticket =
      std::uniform_int_distribution<std::uint64_t>(0, total - 1)(rng_);
  for (std::size_t c = 0; c < kQueryClassCount; ++c) {
    if (ticket < mix.weights[c]) return static_cast<QueryClass>(c);
    ticket -= mix.weights[c];
  }
  return QueryClass::kRollupDrilldown;  // unreachable: total > 0
}

std::vector<std::string> StatementGenerator::Generate(
    QueryClass query_class) {
  const std::string& mo = profile_.mo_name;
  std::vector<std::string> statements;
  switch (query_class) {
    case QueryClass::kRollupDrilldown: {
      // The analyst path: top-level overview, drill into one group,
      // drill into one family. The family/low levels cross the
      // many-to-many and non-strict edges of the generated hierarchy.
      const std::size_t g = Pick(profile_.groups);
      const std::size_t f = Pick(profile_.families);
      statements.push_back(StrCat(
          "SELECT COUNT FROM ", mo, " BY Diagnosis.\"Diagnosis Group\""));
      statements.push_back(StrCat(
          "SELECT COUNT FROM ", mo, " BY Diagnosis.\"Diagnosis Family\"",
          " WHERE Diagnosis.\"Diagnosis Group\" = 'G", g, "'"));
      statements.push_back(StrCat(
          "SELECT COUNT FROM ", mo,
          " BY Diagnosis.\"Low-level Diagnosis\" AS Seq",
          " WHERE Diagnosis.\"Diagnosis Family\" = 'F", f, "'"));
      break;
    }
    case QueryClass::kTemporalSlice: {
      // One slice at a fixed date, one at the growing NOW sentinel.
      const std::size_t d = Pick(std::size(kSliceDates));
      const std::size_t r = Pick(profile_.regions);
      statements.push_back(StrCat(
          "SELECT COUNT FROM ", mo, " BY Diagnosis.\"Diagnosis Group\"",
          " ASOF '", kSliceDates[d], "'"));
      statements.push_back(StrCat(
          "SELECT COUNT FROM ", mo, " BY Residence.Region",
          " WHERE Residence.Region = 'R", r, "' ASOF 'NOW'"));
      break;
    }
    case QueryClass::kProbabilistic: {
      const std::size_t f = Pick(profile_.families);
      const std::size_t t = Pick(std::size(kProbThresholds));
      statements.push_back(StrCat(
          "SELECT COUNT FROM ", mo, " BY Residence.Region",
          " WHERE PROB(Diagnosis.\"Diagnosis Family\" = 'F", f, "') >= ",
          kProbThresholds[t]));
      break;
    }
    case QueryClass::kStarJoin: {
      // Star-schema shape: group on two dimensions, filter across both
      // with a disjunction — the query a star join would answer.
      const std::size_t r = Pick(profile_.regions);
      const std::size_t c = Pick(profile_.counties);
      statements.push_back(StrCat(
          "SELECT COUNT FROM ", mo,
          " BY Diagnosis.\"Diagnosis Group\", Residence.Region",
          " WHERE Residence.Region = 'R", r, "' OR Residence.County = 'CO",
          c, "'"));
      break;
    }
    case QueryClass::kInsert: {
      const std::uint64_t key = profile_.insert_key_base +
                                static_cast<std::uint64_t>(session_index_) *
                                    1000000 +
                                insert_counter_++;
      const std::size_t low = Pick(profile_.lows);
      const std::size_t area = Pick(profile_.areas);
      const std::size_t certainty = Pick(3);
      std::string assignment = StrCat(
          "Diagnosis.\"Low-level Diagnosis\" = 'L", low, "'");
      if (certainty == 1) {
        assignment += " PROB 0.75";
      } else if (certainty == 2) {
        assignment += " PROB 0.6";
      }
      statements.push_back(StrCat(
          "INSERT INTO ", mo, " FACT ", key, " (", assignment,
          ", Residence.Area = 'A", area, "')"));
      break;
    }
    case QueryClass::kAppendBatch: {
      // Continuous ingestion: 2-4 new facts in ONE bulk INSERT, so the
      // whole batch publishes as a single epoch through the store's
      // batched-append fast path. Key space and characterization shapes
      // match kInsert (same counter, so replays stay deterministic).
      const std::size_t batch = 2 + Pick(3);
      std::string statement = StrCat("INSERT INTO ", mo);
      for (std::size_t b = 0; b < batch; ++b) {
        const std::uint64_t key =
            profile_.insert_key_base +
            static_cast<std::uint64_t>(session_index_) * 1000000 +
            insert_counter_++;
        const std::size_t low = Pick(profile_.lows);
        const std::size_t area = Pick(profile_.areas);
        std::string assignment = StrCat(
            "Diagnosis.\"Low-level Diagnosis\" = 'L", low, "'");
        if (Pick(2) == 1) assignment += " PROB 0.8";
        statement += StrCat(b == 0 ? " " : ", ", "FACT ", key, " (",
                            assignment, ", Residence.Area = 'A", area,
                            "')");
      }
      statements.push_back(std::move(statement));
      break;
    }
  }
  return statements;
}

}  // namespace stress
}  // namespace mddc
