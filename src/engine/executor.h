#ifndef MDDC_ENGINE_EXECUTOR_H_
#define MDDC_ENGINE_EXECUTOR_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/arena.h"

namespace mddc {

/// A fixed-size, work-stealing-free thread pool: one shared FIFO task
/// queue drained by `num_threads` std::jthread workers. This is the
/// execution substrate of the parallel aggregate-formation engine (the
/// "efficient implementation using special-purpose algorithms and data
/// structures" of the paper's future-work list, Section 5).
///
/// Tasks are plain void() callables and MUST NOT throw: the codebase's
/// error convention is Status/Result<T>, and no exception may cross the
/// pool boundary. Parallel operators communicate failure by writing a
/// Status into a caller-owned slot and checking the slots — in a
/// deterministic order — after the fan-in.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains outstanding tasks, then stops and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues one task.
  void Submit(std::function<void()> task);

  /// Runs fn(i) for every i in [0, n) across the workers (the calling
  /// thread participates too) and blocks until every iteration has
  /// finished. Iterations are claimed from a shared counter — no
  /// stealing, no per-worker queues — so any iteration may run on any
  /// thread; callers must make iterations independent (each writes only
  /// its own output slot).
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::jthread> workers_;
};

/// The process-wide shared pool. Workers are spawned exactly once — on
/// the first borrow, sized max(min_threads, hardware concurrency) — and
/// then reused by every ExecContext, PreAggregateCache miss and query
/// for the rest of the process, so repeated cache-miss queries stop
/// paying thread-startup cost. A later borrow asking for more threads
/// than the pool has is served by the existing pool: ParallelFor's
/// shared-counter scheduling is correct at any worker count, and result
/// bytes never depend on which thread ran an iteration, so a smaller
/// pool only costs speed, never determinism.
///
/// `created` (optional) is set to false when the pool already existed —
/// the signal ExecContext uses to count stats.pool_reuses.
ThreadPool& SharedThreadPool(std::size_t min_threads, bool* created = nullptr);

/// Joins and destroys the shared pool; the next SharedThreadPool call
/// recreates it. Only for tests and sanitizer runs that must end with no
/// live threads — callers must ensure no ExecContext borrowed from the
/// current pool is still executing (or will execute) a parallel
/// operation, and must not reuse such contexts afterwards.
///
/// Idempotent and safe to call from several threads at once, and safe to
/// overlap with in-flight task *completion*: the pool is detached from
/// the global slot under the guard mutex but joined outside it, so the
/// join (which drains the queue) never blocks a concurrent
/// SharedThreadPool borrow — a shutdown→reuse cycle simply creates a
/// fresh pool while the old one finishes draining.
void ShutdownSharedThreadPool();

/// Per-query execution counters, exposed on the context so callers can
/// observe what the parallel engine actually did.
struct ExecStats {
  /// Operations that ran the parallel partition/merge path.
  std::size_t parallel_runs = 0;
  /// Operations that wanted to parallelize but ran sequentially anyway:
  /// aggregate formation blocked by the summarizability gate (Section
  /// 3.4 preconditions not met), or a Join/Timeslice whose input was
  /// below min_parallel_facts.
  std::size_t sequential_fallbacks = 0;
  /// Hash partitions created, summed over parallel operations.
  std::size_t partitions = 0;
  /// Tasks submitted to the pool, summed over parallel operations.
  std::size_t tasks = 0;
  /// Time spent folding per-partition results into the final, ordered
  /// result, summed over parallel operations.
  std::uint64_t merge_nanos = 0;
  /// Times this context attached to an already-running shared pool
  /// instead of spawning workers (0 or 1 per context; > 0 summed across
  /// the contexts of repeated queries means thread startup was paid only
  /// once process-wide).
  std::size_t pool_reuses = 0;
  /// Identity-based joins that ran the parallel pair-partition path.
  std::size_t join_parallel_runs = 0;
  /// Timeslices that ran the parallel per-fact path.
  std::size_t timeslice_parallel_runs = 0;
  /// Compiled rollup snapshots built by RollupIndex::For — the slot was
  /// empty or the dimension had been mutated since the last compile (a
  /// stale snapshot is never consulted). Reuse shows as hits without
  /// builds.
  std::size_t index_builds = 0;
  /// Times a hot path consumed a compiled snapshot instead of map-based
  /// traversal, counted once per operation and dimension: a grouping
  /// dimension of AggregateFormation resolved through the flat rollup
  /// table, a dimension sliced through the dense arrays, a
  /// PreAggregateCache rollup answered by flat lookups, or a Join
  /// operand dimension whose snapshot was compiled/attached at warm-up.
  std::size_t index_hits = 0;
  /// Times a hot path wanted the flat rollup table but the snapshot's
  /// strictness/non-temporal gate failed, falling back to the memoized
  /// traversal (results are bit-identical either way).
  std::size_t index_fallbacks = 0;
  /// Aggregate formations answered by the dense-slot group-by kernel:
  /// every grouping dimension was covered by a flat rollup table (or
  /// grouped at top) and the slot cross-product fit within
  /// ExecContext::max_dense_groupby_slots.
  std::size_t dense_groupby_runs = 0;
  /// Group-bys answered by the open-addressing flat-hash kernel: an
  /// aggregate formation whose slot space was too large or not fully
  /// indexed, a relational group-by, or a pre-aggregate rollup merge —
  /// whenever an execution context is supplied.
  std::size_t flat_hash_runs = 0;
  /// Aggregate formations that were structurally dense (all grouping
  /// dimensions indexed) but whose slot cross-product exceeded
  /// max_dense_groupby_slots, demoting them to the flat-hash kernel.
  std::size_t dense_slot_fallbacks = 0;
  /// Bytes of query-lifetime scratch served by the context's bump arenas
  /// (coordinates, match lists, slot indirections, per-group state),
  /// summed at each reset — the per-statement footprint the arena absorbs
  /// instead of the heap.
  std::size_t arena_bytes = 0;
  /// Arena rewinds that actually reclaimed scratch (one per statement or
  /// top-level operator that allocated); empty rewinds are not counted.
  std::size_t arena_resets = 0;
  /// MDQL identifier resolutions answered by an interned representation
  /// probe (the name was found without allocating).
  std::size_t interner_hits = 0;
  /// MDQL identifier resolutions that probed every representation and
  /// found no interned entry for the name.
  std::size_t interner_misses = 0;
  /// Logical-plan rewrite rules fired by the MDQL compiler (one count
  /// per rule application, summed over the statement's rewrite loop).
  std::size_t rewrites_applied = 0;
  /// Statements answered by a fused physical pipeline (facts streamed
  /// straight from the CSR spans into the group-by kernels, no
  /// intermediate MO materialized).
  std::size_t fused_pipelines = 0;
  /// Statements the compiler planned but could not cover with a fused
  /// pipeline, falling back to the tree-walk interpreter (results are
  /// byte-identical either way).
  std::size_t plan_fallbacks = 0;
  /// Statements answered by a session's compiled-plan cache (keyed on
  /// statement text + MO version), skipping parse-tree lowering and the
  /// rewrite loop entirely.
  std::size_t plan_cache_hits = 0;
  /// Aggregate results produced by FoldAggregateAppend — a captured
  /// formation resumed over appended facts instead of re-scanned.
  std::size_t aggregate_folds = 0;
  /// Compiled rollup snapshots produced by patching the previous snapshot
  /// (dense-remap extension + CSR rebuild over the appended values)
  /// instead of a full recompile; each also counts an index_builds.
  std::size_t rollup_patches = 0;
  /// Sealed CSR by-fact span views revalidated by extending the span
  /// tail over appended entries instead of a full re-sort.
  std::size_t csr_tail_extends = 0;
  /// Warm pre-aggregate entries delta-folded across an append batch.
  std::size_t preagg_folds = 0;
  /// Warm pre-aggregate entries that could not fold (gate drift,
  /// non-foldable function, rollup-derived entry) and were re-materialized
  /// from scratch instead.
  std::size_t preagg_fold_invalidations = 0;

  /// Adds every counter of `other` into this one. Server sessions use it
  /// to accumulate per-query contexts into per-session totals.
  void MergeFrom(const ExecStats& other);

  /// One JSON object holding every counter, e.g.
  /// {"parallel_runs": 2, ..., "dense_slot_fallbacks": 0}. The single
  /// machine-readable stats format shared by the MDQL server's stats
  /// endpoint and the benches that dump execution counters.
  std::string ToJson() const;
};

/// Execution context threaded through AggregateFormation, Join, the
/// timeslice operators, PreAggregateCache::Query/Materialize,
/// relational::Aggregate and mdql::Session::Execute. The default context
/// (num_threads = 1) is exactly the sequential engine, so every caller
/// that does not pass a context is unchanged. A context is owned by one
/// query thread; the operators it is passed to fan work out to the
/// shared pool internally, but the context itself is not thread-safe.
struct ExecContext {
  ExecContext() = default;
  ExecContext(std::size_t threads, std::size_t min_facts)
      : num_threads(threads), min_parallel_facts(min_facts) {}

  /// Worker count for the parallel path; <= 1 means sequential.
  std::size_t num_threads = 1;
  /// Inputs smaller than this stay sequential: partitioning overhead
  /// dominates below a few thousand facts.
  std::size_t min_parallel_facts = 4096;
  /// Largest slot cross-product the dense group-by kernel may allocate
  /// (it costs ~4 bytes of slot indirection per slot); groupings whose
  /// cross-product of grouping-category cardinalities exceeds this use
  /// the flat-hash kernel instead (stats.dense_slot_fallbacks counts
  /// the demotions). Exposed so tests and tuning can move the boundary.
  std::uint64_t max_dense_groupby_slots = std::uint64_t{1} << 22;

  ExecStats stats;

  /// True when an input of `input_size` facts/tuples should take the
  /// parallel path (before the summarizability gate).
  bool WantsParallel(std::size_t input_size) const {
    return num_threads > 1 && input_size >= min_parallel_facts;
  }

  /// The pool the context's operators fan out to: the process-wide
  /// shared pool, borrowed on first use and cached for the context's
  /// lifetime. Attaching to a pool some earlier context already created
  /// counts one stats.pool_reuses. Partition counts always follow
  /// num_threads, never the borrowed pool's size, so results do not
  /// depend on who created the pool first.
  ThreadPool& pool();

  /// The coordinator's bump arena for query-lifetime scratch. Operators
  /// allocate temporaries here (via ArenaAllocator) and ResetQueryArenas
  /// reclaims everything wholesale at end of statement; chunks are
  /// retained, so steady-state statements allocate no heap at all for
  /// arena-backed scratch.
  Arena arena;

  /// Grows the per-worker arena pool to at least `n` arenas. Called by
  /// the coordinator before a fan-out; each parallel task then allocates
  /// only from its own chunk's arena (arenas are not thread-safe).
  void EnsureWorkerArenas(std::size_t n) {
    while (worker_arenas_.size() < n) {
      worker_arenas_.push_back(std::make_unique<Arena>());
    }
  }

  Arena& worker_arena(std::size_t i) { return *worker_arenas_[i]; }

  /// Rewinds the coordinator and worker arenas, folding the bytes they
  /// served into stats.arena_bytes (and counting stats.arena_resets when
  /// anything was reclaimed). Called at end of statement / top-level
  /// operator; arena-backed scratch must not outlive that point.
  void ResetQueryArenas() {
    std::size_t reclaimed = arena.allocated_bytes();
    for (const auto& worker : worker_arenas_) {
      reclaimed += worker->allocated_bytes();
    }
    if (reclaimed == 0) return;
    stats.arena_bytes += reclaimed;
    ++stats.arena_resets;
    arena.Reset();
    for (const auto& worker : worker_arenas_) worker->Reset();
  }

 private:
  ThreadPool* borrowed_ = nullptr;
  std::vector<std::unique_ptr<Arena>> worker_arenas_;
};

}  // namespace mddc

#endif  // MDDC_ENGINE_EXECUTOR_H_
