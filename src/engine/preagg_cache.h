#ifndef MDDC_ENGINE_PREAGG_CACHE_H_
#define MDDC_ENGINE_PREAGG_CACHE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algebra/operators.h"
#include "common/result.h"
#include "core/md_object.h"

namespace mddc {

/// A materialized-aggregate cache with summarizability-guided reuse —
/// the "efficient implementation using special-purpose algorithms and
/// data structures" the paper lists as future work (Section 5), built on
/// the machinery Section 3.4 motivates: pre-computed lower-level results
/// may be combined into higher-level results exactly when the aggregate
/// function is distributive, the paths are strict and the hierarchies
/// partitioning — which is precisely when aggregate formation does NOT
/// degrade the result's aggregation type to c.
///
/// Queries are aggregate specs over one base MO. On a miss, the cache
/// computes from the base and materializes. On a request whose grouping
/// categories are all at-or-above those of a cached entry with the same
/// function, and whose cached result is safely re-aggregable (bottom
/// aggregation type != c), the cache *rolls the cached MO up* instead of
/// touching the base — combining partial results with the function's
/// merge operation (SUM of SUMs, MIN of MINs, ...).
class PreAggregateCache {
 public:
  explicit PreAggregateCache(MdObject base);

  /// Shares an already-sealed base instead of copying it — the serving
  /// tier's constructor: each published epoch bundles the cache and the
  /// MO, and they hold the very same object (docs/ingestion.md).
  explicit PreAggregateCache(std::shared_ptr<const MdObject> base);

  const MdObject& base() const { return *base_; }

  /// Returns the aggregate for `grouping` (one category per base
  /// dimension) under `function`. The result dimension is always
  /// auto-built. `exec` (optional) is handed to AggregateFormation on
  /// base scans so misses run on the parallel engine; hit/rollup paths
  /// and the cache's bookkeeping — in particular every Stats counter —
  /// are unaffected by it. Contexts borrow the process-wide shared
  /// ThreadPool (engine/executor.h), so repeated misses — even across
  /// cache instances and fresh contexts — pay thread startup only once;
  /// exec->stats.pool_reuses records the amortization.
  Result<MdObject> Query(const AggFunction& function,
                         const std::vector<CategoryTypeIndex>& grouping,
                         ExecContext* exec = nullptr);

  /// Pre-materializes an aggregate without returning it.
  Status Materialize(const AggFunction& function,
                     const std::vector<CategoryTypeIndex>& grouping,
                     ExecContext* exec = nullptr);

  /// Materialize variant for the serving tier's seal step: always a base
  /// scan (never rollup reuse), capturing the raw accumulator state that
  /// makes the entry incrementally resumable by FoldAppend. Rollup reuse
  /// would be cheaper here but produces no capture — and its partial-sum
  /// merge order differs from a base scan's, so entries materialized this
  /// way are also byte-reproducible by a full replay (the differential
  /// oracle's invariant, docs/ingestion.md). An existing exact entry is
  /// kept as-is.
  Status MaterializeResumable(const AggFunction& function,
                              const std::vector<CategoryTypeIndex>& grouping,
                              ExecContext* exec = nullptr);

  /// Builds the successor cache for `new_base` — this cache's base plus
  /// `delta_facts` appended (ascending, all above every published fact).
  /// Entries with a valid capture and a foldable function resume via
  /// FoldAggregateAppend, touching only the delta facts
  /// (exec->stats.preagg_folds); entries whose fold gate fails — AVG,
  /// expected counts, rollup-derived entries without capture, structural
  /// drift — rematerialize from the new base with a full scan
  /// (exec->stats.preagg_fold_invalidations), so every entry stays warm
  /// either way. Both paths produce bytes identical to materializing the
  /// entry against `new_base` from scratch.
  Result<PreAggregateCache> FoldAppend(std::shared_ptr<const MdObject> new_base,
                                       const std::vector<FactId>& delta_facts,
                                       ExecContext* exec = nullptr) const;

  /// Const exact-hit probe: the cached MO for exactly this
  /// (function, grouping), or nullptr when never materialized. Unlike
  /// Query it never computes, never rolls up, and never touches the
  /// Stats counters — the read path for *published* caches (the MVCC
  /// serving tier bundles an immutable PreAggregateCache per epoch, and
  /// concurrent readers may only probe it).
  const MdObject* Peek(const AggFunction& function,
                       const std::vector<CategoryTypeIndex>& grouping) const;

  struct Stats {
    std::size_t exact_hits = 0;   ///< same grouping served from cache
    std::size_t rollup_hits = 0;  ///< coarser grouping derived from cache
    std::size_t base_scans = 0;   ///< computed from the base MO
    std::size_t reuse_refusals = 0;  ///< reuse blocked by aggregation type c
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::vector<CategoryTypeIndex> grouping;
    MdObject result;
    AggregationType result_agg_type;
    /// The materializing function, kept whole (the map key only has its
    /// name) so FoldAppend can re-run it.
    AggFunction function;
    /// Raw per-group accumulator capture from the materializing base scan.
    /// Rollup-hit entries carry none (fold.valid == false) and
    /// rematerialize on FoldAppend.
    AggregateFoldState fold;
  };

  using Key = std::pair<std::string, std::vector<CategoryTypeIndex>>;

  /// Finds a cached entry whose grouping is component-wise <= the
  /// requested one (in the category lattices) and safely re-aggregable.
  const Entry* FindReusable(const AggFunction& function,
                            const std::vector<CategoryTypeIndex>& grouping,
                            bool* refused_due_to_type);

  /// Rolls a cached aggregate up to the coarser grouping by re-grouping
  /// its set-facts and merging their partial results. With `exec`, the
  /// per-group rollup step consults the cached dimensions' compiled
  /// rollup snapshots (engine/rollup_index.h): under the strictness gate
  /// the unique ancestor at the requested category is one flat-table
  /// lookup instead of an AncestorsIn traversal, counted in
  /// exec->stats.index_hits / index_fallbacks.
  Result<MdObject> RollUpCached(
      const Entry& entry, const AggFunction& function,
      const std::vector<CategoryTypeIndex>& grouping,
      ExecContext* exec) const;

  /// Never null. Shared with the epoch bundle on the serving path; a
  /// privately-owned copy for direct construction from an MdObject.
  std::shared_ptr<const MdObject> base_;
  std::map<Key, Entry> entries_;
  Stats stats_;
};

}  // namespace mddc

#endif  // MDDC_ENGINE_PREAGG_CACHE_H_
