#ifndef MDDC_ENGINE_ADVISOR_H_
#define MDDC_ENGINE_ADVISOR_H_

#include <string>
#include <vector>

#include "algebra/operators.h"
#include "common/result.h"
#include "core/md_object.h"
#include "engine/preagg_cache.h"

namespace mddc {

/// A query the advisor optimizes for: an aggregate grouping (one category
/// per dimension) and its relative frequency.
struct AdvisorQuery {
  std::vector<CategoryTypeIndex> grouping;
  double frequency = 1.0;
};

/// One recommended materialization.
struct AdvisorChoice {
  std::vector<CategoryTypeIndex> grouping;
  /// Estimated number of groups the materialization holds.
  double estimated_size = 0.0;
  /// Total frequency-weighted scan-cost saved by this choice at the time
  /// it was picked.
  double estimated_benefit = 0.0;
};

/// The advisor's output: what to materialize and the projected
/// frequency-weighted scan costs without/with the recommendation.
struct AdvisorPlan {
  std::vector<AdvisorChoice> materialize;
  double cost_without = 0.0;
  double cost_with = 0.0;

  std::string ToString(const MdObject& base) const;
};

/// Greedy materialized-view selection in the style of
/// Harinarayan/Rajaraman/Ullman (SIGMOD'96), adapted to the paper's
/// model: a query can be answered from a materialization only when the
/// roll-up from it is *safe* — the function is distributive and the
/// materialization's grouping is summarizable (otherwise its result is
/// c-typed and must not be combined, exactly the PreAggregateCache reuse
/// rule). Unsafe candidates still benefit the query that matches them
/// exactly.
///
/// Candidates are the distinct query groupings; cost of answering a
/// query from a source is the source's estimated group count (the base
/// MO costs its fact count). Greedy selection maximizes total
/// frequency-weighted savings under a budget of `max_materializations`.
class MaterializationAdvisor {
 public:
  MaterializationAdvisor(const MdObject& base, AggFunction function);

  /// Produces a plan for the workload.
  Result<AdvisorPlan> Advise(const std::vector<AdvisorQuery>& queries,
                             std::size_t max_materializations) const;

  /// Materializes the plan's choices into a cache.
  Status Apply(const AdvisorPlan& plan, PreAggregateCache* cache) const;

  /// Estimated number of groups of a grouping (product of category
  /// sizes, capped by the fact count; top categories contribute 1).
  double EstimateSize(const std::vector<CategoryTypeIndex>& grouping) const;

  /// True when a query grouping can be answered from a materialization
  /// at `source`: component-wise source <= query in the category
  /// lattices, and either identical or safely re-aggregable.
  bool CanAnswerFrom(const std::vector<CategoryTypeIndex>& source,
                     const std::vector<CategoryTypeIndex>& query) const;

 private:
  const MdObject& base_;
  AggFunction function_;
};

}  // namespace mddc

#endif  // MDDC_ENGINE_ADVISOR_H_
