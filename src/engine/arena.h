#ifndef MDDC_ENGINE_ARENA_H_
#define MDDC_ENGINE_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace mddc {

/// A bump allocator for query-lifetime temporaries (docs/memory_layout.md).
/// Chunks are retained across `Reset`, so after the first (warm-up)
/// statement a steady-state query performs no heap allocation at all for
/// its arena-backed scratch: every Allocate is a pointer bump into an
/// already-owned chunk.
///
/// Not thread-safe. Parallel operators give each worker chunk its own
/// arena (ExecContext::worker_arena) and only the owning task allocates
/// from it.
class Arena {
 public:
  static constexpr std::size_t kMinChunkBytes = 1u << 16;  // 64 KiB

  void* Allocate(std::size_t bytes, std::size_t align) {
    allocated_ += bytes;
    while (current_ < chunks_.size()) {
      Chunk& chunk = chunks_[current_];
      std::size_t head = (cursor_ + (align - 1)) & ~(align - 1);
      if (head + bytes <= chunk.size) {
        cursor_ = head + bytes;
        return chunk.data.get() + head;
      }
      ++current_;
      cursor_ = 0;
    }
    return AllocateSlow(bytes, align);
  }

  /// Rewinds to empty while keeping every chunk — the capacity earned by
  /// the warm-up statement is what makes later statements allocation-free.
  void Reset() {
    current_ = 0;
    cursor_ = 0;
    allocated_ = 0;
    ++resets_;
  }

  /// Bytes handed out since the last Reset (the per-statement footprint).
  std::size_t allocated_bytes() const { return allocated_; }

  /// Total chunk capacity owned (the high-water mark across statements).
  std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const Chunk& chunk : chunks_) total += chunk.size;
    return total;
  }

  std::size_t resets() const { return resets_; }

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
  };

  void* AllocateSlow(std::size_t bytes, std::size_t align) {
    std::size_t want = chunks_.empty() ? kMinChunkBytes
                                       : chunks_.back().size * 2;
    if (want < bytes + align) want = bytes + align;
    Chunk chunk;
    chunk.data = std::make_unique<char[]>(want);
    chunk.size = want;
    chunks_.push_back(std::move(chunk));
    current_ = chunks_.size() - 1;
    std::uintptr_t base =
        reinterpret_cast<std::uintptr_t>(chunks_.back().data.get());
    std::size_t head = ((base + (align - 1)) & ~(align - 1)) - base;
    cursor_ = head + bytes;
    return chunks_.back().data.get() + head;
  }

  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;
  std::size_t cursor_ = 0;
  std::size_t allocated_ = 0;
  std::size_t resets_ = 0;
};

/// A nullable std-allocator adapter over Arena. With a null arena it is
/// exactly the default heap allocator — the sequential baseline and the
/// arena-backed execution path share one code path and one container
/// type, which is what keeps them byte-identical by construction.
/// Deallocation into an arena is a no-op; memory is reclaimed wholesale
/// by Arena::Reset at end of statement.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  ArenaAllocator() = default;
  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    if (arena_ == nullptr) {
      return static_cast<T*>(::operator new(n * sizeof(T)));
    }
    return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
  }

  void deallocate(T* p, std::size_t) {
    if (arena_ == nullptr) ::operator delete(p);
  }

  Arena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) {
    return !(a == b);
  }

 private:
  Arena* arena_ = nullptr;
};

}  // namespace mddc

#endif  // MDDC_ENGINE_ARENA_H_
