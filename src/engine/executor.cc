#include "engine/executor.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>

namespace mddc {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  // std::jthread joins on destruction.
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared-counter scheduling: every participant claims the next
  // unclaimed iteration until none remain. Completion is tracked per
  // iteration so the caller can block until the last one finished, even
  // if it was claimed by a pool worker.
  struct State {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t total;
    std::mutex mu;
    std::condition_variable all_done;
  };
  auto state = std::make_shared<State>();
  state->total = n;

  auto work = [state, &fn] {
    for (;;) {
      const std::size_t i = state->next.fetch_add(1);
      if (i >= state->total) break;
      fn(i);
      if (state->done.fetch_add(1) + 1 == state->total) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->all_done.notify_all();
      }
    }
  };

  const std::size_t helpers = std::min(workers_.size(), n - 1);
  for (std::size_t i = 0; i < helpers; ++i) Submit(work);
  work();  // the calling thread participates

  std::unique_lock<std::mutex> lock(state->mu);
  state->all_done.wait(
      lock, [&] { return state->done.load() == state->total; });
}

namespace {

// The shared pool and its guard. A plain global (not a function-local
// static) so ShutdownSharedThreadPool can destroy and recreate it; the
// unique_ptr's destructor joins the workers at process exit.
std::mutex g_shared_pool_mu;
std::unique_ptr<ThreadPool> g_shared_pool;

}  // namespace

ThreadPool& SharedThreadPool(std::size_t min_threads, bool* created) {
  std::lock_guard<std::mutex> lock(g_shared_pool_mu);
  if (g_shared_pool == nullptr) {
    const std::size_t hw = std::thread::hardware_concurrency();
    g_shared_pool = std::make_unique<ThreadPool>(
        std::max<std::size_t>({min_threads, hw, 1}));
    if (created != nullptr) *created = true;
  } else if (created != nullptr) {
    *created = false;
  }
  return *g_shared_pool;
}

void ShutdownSharedThreadPool() {
  // Detach under the guard, join outside it: the ThreadPool destructor
  // drains the queue and joins the workers, which can take as long as the
  // slowest in-flight task. Holding the guard during that join would
  // serialize concurrent Shutdown calls on the drain and block a
  // concurrent SharedThreadPool borrow from creating a fresh pool
  // (the shutdown→reuse cycle of sanitizer-heavy test suites).
  std::unique_ptr<ThreadPool> doomed;
  {
    std::lock_guard<std::mutex> lock(g_shared_pool_mu);
    doomed = std::move(g_shared_pool);
  }
  // `doomed`'s destructor runs here; a second concurrent call simply
  // moves out a null pointer — idempotent by construction.
}

void ExecStats::MergeFrom(const ExecStats& other) {
  parallel_runs += other.parallel_runs;
  sequential_fallbacks += other.sequential_fallbacks;
  partitions += other.partitions;
  tasks += other.tasks;
  merge_nanos += other.merge_nanos;
  pool_reuses += other.pool_reuses;
  join_parallel_runs += other.join_parallel_runs;
  timeslice_parallel_runs += other.timeslice_parallel_runs;
  index_builds += other.index_builds;
  index_hits += other.index_hits;
  index_fallbacks += other.index_fallbacks;
  dense_groupby_runs += other.dense_groupby_runs;
  flat_hash_runs += other.flat_hash_runs;
  dense_slot_fallbacks += other.dense_slot_fallbacks;
  arena_bytes += other.arena_bytes;
  arena_resets += other.arena_resets;
  interner_hits += other.interner_hits;
  interner_misses += other.interner_misses;
  rewrites_applied += other.rewrites_applied;
  fused_pipelines += other.fused_pipelines;
  plan_fallbacks += other.plan_fallbacks;
  plan_cache_hits += other.plan_cache_hits;
  aggregate_folds += other.aggregate_folds;
  rollup_patches += other.rollup_patches;
  csr_tail_extends += other.csr_tail_extends;
  preagg_folds += other.preagg_folds;
  preagg_fold_invalidations += other.preagg_fold_invalidations;
}

std::string ExecStats::ToJson() const {
  char buffer[1792];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"parallel_runs\": %zu, \"sequential_fallbacks\": %zu, "
      "\"partitions\": %zu, \"tasks\": %zu, \"merge_nanos\": %llu, "
      "\"pool_reuses\": %zu, \"join_parallel_runs\": %zu, "
      "\"timeslice_parallel_runs\": %zu, \"index_builds\": %zu, "
      "\"index_hits\": %zu, \"index_fallbacks\": %zu, "
      "\"dense_groupby_runs\": %zu, \"flat_hash_runs\": %zu, "
      "\"dense_slot_fallbacks\": %zu, \"arena_bytes\": %zu, "
      "\"arena_resets\": %zu, \"interner_hits\": %zu, "
      "\"interner_misses\": %zu, \"rewrites_applied\": %zu, "
      "\"fused_pipelines\": %zu, \"plan_fallbacks\": %zu, "
      "\"plan_cache_hits\": %zu, \"aggregate_folds\": %zu, "
      "\"rollup_patches\": %zu, \"csr_tail_extends\": %zu, "
      "\"preagg_folds\": %zu, \"preagg_fold_invalidations\": %zu}",
      parallel_runs, sequential_fallbacks, partitions, tasks,
      static_cast<unsigned long long>(merge_nanos), pool_reuses,
      join_parallel_runs, timeslice_parallel_runs, index_builds, index_hits,
      index_fallbacks, dense_groupby_runs, flat_hash_runs,
      dense_slot_fallbacks, arena_bytes, arena_resets, interner_hits,
      interner_misses, rewrites_applied, fused_pipelines, plan_fallbacks,
      plan_cache_hits, aggregate_folds, rollup_patches, csr_tail_extends,
      preagg_folds, preagg_fold_invalidations);
  return buffer;
}

ThreadPool& ExecContext::pool() {
  if (borrowed_ == nullptr) {
    bool created = false;
    borrowed_ = &SharedThreadPool(num_threads, &created);
    if (!created) ++stats.pool_reuses;
  }
  return *borrowed_;
}

}  // namespace mddc
