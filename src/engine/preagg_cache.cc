#include "engine/preagg_cache.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <map>
#include <optional>
#include <utility>

#include "common/strings.h"
#include "engine/groupby_kernel.h"
#include "engine/rollup_index.h"

namespace mddc {
namespace {

/// Merges two partial results of a distributive function.
double Merge(AggregateFunctionKind kind, double a, double b) {
  switch (kind) {
    case AggregateFunctionKind::kSum:
    case AggregateFunctionKind::kCount:
    case AggregateFunctionKind::kSetCount:
      return a + b;
    case AggregateFunctionKind::kMin:
      return std::min(a, b);
    case AggregateFunctionKind::kMax:
      return std::max(a, b);
    case AggregateFunctionKind::kAvg:
      break;  // not distributive; never merged
  }
  return a;
}

}  // namespace

PreAggregateCache::PreAggregateCache(MdObject base)
    : base_(std::make_shared<const MdObject>(std::move(base))) {}

PreAggregateCache::PreAggregateCache(std::shared_ptr<const MdObject> base)
    : base_(std::move(base)) {}

const MdObject* PreAggregateCache::Peek(
    const AggFunction& function,
    const std::vector<CategoryTypeIndex>& grouping) const {
  auto it = entries_.find(Key{function.name(), grouping});
  return it == entries_.end() ? nullptr : &it->second.result;
}

Result<MdObject> PreAggregateCache::Query(
    const AggFunction& function,
    const std::vector<CategoryTypeIndex>& grouping, ExecContext* exec) {
  Key key{function.name(), grouping};
  if (auto it = entries_.find(key); it != entries_.end()) {
    ++stats_.exact_hits;
    return it->second.result;
  }

  bool refused = false;
  if (const Entry* reusable = FindReusable(function, grouping, &refused);
      reusable != nullptr) {
    auto rolled = RollUpCached(*reusable, function, grouping, exec);
    if (rolled.ok()) {
      ++stats_.rollup_hits;
      Entry entry{grouping, *rolled, AggregationType::kConstant, function,
                  AggregateFoldState{}};
      const DimensionType& result_type =
          rolled->dimension(rolled->dimension_count() - 1).type();
      entry.result_agg_type = result_type.AggType(result_type.bottom());
      entries_.emplace(std::move(key), std::move(entry));
      return rolled;
    }
    // A non-strict step between the cached and requested categories makes
    // partial-result reuse unsafe; fall through to a base scan.
    ++stats_.reuse_refusals;
  } else if (refused) {
    ++stats_.reuse_refusals;
  }

  AggregateFoldState fold;
  AggregateSpec spec{function, grouping, ResultDimensionSpec::Auto(),
                     kNowChronon, true, false, &fold};
  MDDC_ASSIGN_OR_RETURN(MdObject result,
                        AggregateFormation(*base_, spec, exec));
  ++stats_.base_scans;
  Entry entry{grouping, result, AggregationType::kConstant, function,
              std::move(fold)};
  const DimensionType& result_type =
      result.dimension(result.dimension_count() - 1).type();
  entry.result_agg_type = result_type.AggType(result_type.bottom());
  entries_.emplace(std::move(key), std::move(entry));
  return result;
}

Status PreAggregateCache::Materialize(
    const AggFunction& function,
    const std::vector<CategoryTypeIndex>& grouping, ExecContext* exec) {
  MDDC_ASSIGN_OR_RETURN(MdObject ignored, Query(function, grouping, exec));
  (void)ignored;
  return Status::OK();
}

Status PreAggregateCache::MaterializeResumable(
    const AggFunction& function,
    const std::vector<CategoryTypeIndex>& grouping, ExecContext* exec) {
  Key key{function.name(), grouping};
  if (entries_.find(key) != entries_.end()) return Status::OK();
  AggregateFoldState fold;
  AggregateSpec spec{function, grouping, ResultDimensionSpec::Auto(),
                     kNowChronon, true, false, &fold};
  MDDC_ASSIGN_OR_RETURN(MdObject result,
                        AggregateFormation(*base_, spec, exec));
  ++stats_.base_scans;
  Entry entry{grouping, std::move(result), AggregationType::kConstant,
              function, std::move(fold)};
  const DimensionType& result_type =
      entry.result.dimension(entry.result.dimension_count() - 1).type();
  entry.result_agg_type = result_type.AggType(result_type.bottom());
  entries_.emplace(std::move(key), std::move(entry));
  return Status::OK();
}

Result<PreAggregateCache> PreAggregateCache::FoldAppend(
    std::shared_ptr<const MdObject> new_base,
    const std::vector<FactId>& delta_facts, ExecContext* exec) const {
  PreAggregateCache next(std::move(new_base));
  for (const auto& [key, entry] : entries_) {
    AggregateFoldState refreshed;
    AggregateSpec spec{entry.function, entry.grouping,
                       ResultDimensionSpec::Auto(), kNowChronon, true, false,
                       &refreshed};
    std::optional<MdObject> folded;
    if (entry.fold.valid) {
      Result<MdObject> attempt = FoldAggregateAppend(*next.base_, spec,
                                                     entry.fold, delta_facts,
                                                     exec);
      if (attempt.ok()) folded = std::move(*attempt);
      // A failed fold (non-foldable function, structural drift, member
      // order surprises) is not an error: the entry takes the rescan
      // path below, exactly today's invalidate-and-recompute.
    }
    if (folded.has_value()) {
      if (exec != nullptr) ++exec->stats.preagg_folds;
    } else {
      if (exec != nullptr) ++exec->stats.preagg_fold_invalidations;
      refreshed = AggregateFoldState{};  // drop any partial capture
      MDDC_ASSIGN_OR_RETURN(MdObject rescanned,
                            AggregateFormation(*next.base_, spec, exec));
      ++next.stats_.base_scans;
      folded = std::move(rescanned);
    }
    Entry fresh{entry.grouping, std::move(*folded),
                AggregationType::kConstant, entry.function,
                std::move(refreshed)};
    const DimensionType& result_type =
        fresh.result.dimension(fresh.result.dimension_count() - 1).type();
    fresh.result_agg_type = result_type.AggType(result_type.bottom());
    next.entries_.emplace(key, std::move(fresh));
  }
  return next;
}

const PreAggregateCache::Entry* PreAggregateCache::FindReusable(
    const AggFunction& function,
    const std::vector<CategoryTypeIndex>& grouping,
    bool* refused_due_to_type) {
  *refused_due_to_type = false;
  const Entry* best = nullptr;
  for (const auto& [key, entry] : entries_) {
    if (key.first != function.name()) continue;
    if (entry.grouping.size() != grouping.size()) continue;
    bool finer_or_equal = true;
    for (std::size_t i = 0; i < grouping.size(); ++i) {
      if (!base_->dimension(i).type().LessEq(entry.grouping[i],
                                             grouping[i])) {
        finer_or_equal = false;
        break;
      }
    }
    if (!finer_or_equal) continue;
    if (entry.result_agg_type == AggregationType::kConstant) {
      // The paper's safety rule in action: a c-typed result may contain
      // overlapping data and must not be combined further.
      *refused_due_to_type = true;
      continue;
    }
    // Prefer the coarsest reusable entry (fewest groups to merge).
    if (best == nullptr || entry.result.fact_count() <
                               best->result.fact_count()) {
      best = &entry;
    }
  }
  return best;
}

Result<MdObject> PreAggregateCache::RollUpCached(
    const Entry& entry, const AggFunction& function,
    const std::vector<CategoryTypeIndex>& grouping, ExecContext* exec) const {
  const MdObject& cached = entry.result;
  const std::size_t n = grouping.size();

  // Map requested base-type category indexes to the cached (restricted)
  // dimension types by category name.
  std::vector<CategoryTypeIndex> cached_categories(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string& name =
        base_->dimension(i).type().category(grouping[i]).name;
    MDDC_ASSIGN_OR_RETURN(cached_categories[i],
                          cached.dimension(i).type().Find(name));
  }

  // Compiled snapshots of the cached dimensions: under the strictness
  // gate the per-group ancestor-at-category step below becomes one
  // flat-table lookup. Dimensions whose gate fails (or callers without a
  // context) keep the AncestorsIn traversal — same key either way, since
  // the flat table is compiled from the very same closure.
  std::vector<std::shared_ptr<const RollupIndex>> indexes(n);
  if (exec != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      if (cached_categories[i] == cached.dimension(i).type().top()) continue;
      std::shared_ptr<const RollupIndex> index =
          RollupIndex::For(cached.dimension(i), &exec->stats);
      if (index->has_flat_table()) {
        indexes[i] = std::move(index);
        ++exec->stats.index_hits;
      } else {
        ++exec->stats.index_fallbacks;
      }
    }
  }

  struct Merged {
    std::vector<FactId> members;
    double value = 0.0;
    bool first = true;
  };
  // Merge-key interning: the flat-hash engine (docs/groupby_kernel.md)
  // for any caller with an execution context — keys live in one
  // fixed-stride buffer probed through the open-addressing index — and
  // the ordered map as the context-free differential baseline. Either
  // way the assembly below walks the groups in lexicographic key order.
  const bool use_flat = exec != nullptr;
  std::map<std::vector<ValueId>, Merged> merged;
  FlatHashGroupIndex flat_index;
  std::vector<ValueId> key_storage;  // stride n
  std::vector<Merged> flat_slots;
  if (use_flat) ++exec->stats.flat_hash_runs;
  const std::size_t result_dim = cached.dimension_count() - 1;

  // CSR lockstep (docs/memory_layout.md): cached.facts() is sorted, so a
  // single pointer sweep over each relation's span view replaces one hash
  // probe per (group, dimension).
  const std::vector<FactId>& groups = cached.facts();
  auto sweep = [&groups](const FactDimRelation& relation) {
    std::vector<FactDimRelation::EntrySpan> per_fact(groups.size());
    const std::size_t* base = relation.SpanEntryIndexes().data();
    std::size_t f = 0;
    for (const FactDimRelation::FactSpan& span : relation.FactSpans()) {
      while (f < groups.size() && groups[f] < span.fact) ++f;
      if (f == groups.size()) break;
      if (groups[f] == span.fact) {
        per_fact[f] = FactDimRelation::EntrySpan{base + span.begin,
                                                 span.end - span.begin};
      }
    }
    return per_fact;
  };
  std::vector<std::vector<FactDimRelation::EntrySpan>> group_entries(n);
  for (std::size_t i = 0; i < n; ++i) {
    group_entries[i] = sweep(cached.relation(i));
  }
  const std::vector<FactDimRelation::EntrySpan> result_entries =
      sweep(cached.relation(result_dim));

  std::vector<ValueId> key(n);
  for (std::size_t f = 0; f < groups.size(); ++f) {
    const FactId group = groups[f];
    for (std::size_t i = 0; i < n; ++i) {
      const FactDimRelation& relation = cached.relation(i);
      const FactDimRelation::EntrySpan pairs = group_entries[i][f];
      if (pairs.empty()) {
        return Status::InvariantViolation("cached group missing a value");
      }
      ValueId fine = relation.entries()[pairs.front()].value;
      const Dimension& dimension = cached.dimension(i);
      if (cached_categories[i] == dimension.type().top()) {
        key[i] = dimension.top_value();
        continue;
      }
      auto fine_category = dimension.CategoryOf(fine);
      if (fine_category.ok() && *fine_category == cached_categories[i]) {
        key[i] = fine;
        continue;
      }
      if (indexes[i] != nullptr) {
        const RollupIndex& index = *indexes[i];
        const std::uint32_t dense = index.DenseOf(fine);
        const std::uint32_t ancestor =
            dense == RollupIndex::kNone
                ? RollupIndex::kNone
                : index.AncestorAt(dense, cached_categories[i]);
        if (ancestor == RollupIndex::kNone) {
          // Strictness holds (the table exists), so the traversal below
          // would have found zero ancestors — the same merge failure.
          return Status::InvariantViolation(
              StrCat("non-strict step above cached grouping in dimension '",
                     dimension.name(),
                     "'; partial results cannot be merged"));
        }
        key[i] = index.ValueOf(ancestor);
        continue;
      }
      auto coarser = dimension.AncestorsIn(fine, cached_categories[i]);
      if (coarser.size() != 1) {
        return Status::InvariantViolation(
            StrCat("non-strict step above cached grouping in dimension '",
                   dimension.name(), "'; partial results cannot be merged"));
      }
      key[i] = coarser.front().value;
    }
    const FactDimRelation& result_relation = cached.relation(result_dim);
    const FactDimRelation::EntrySpan result_pairs = result_entries[f];
    if (result_pairs.empty()) {
      return Status::InvariantViolation("cached group missing its result");
    }
    MDDC_ASSIGN_OR_RETURN(
        double partial,
        cached.dimension(result_dim)
            .NumericValueOf(
                result_relation.entries()[result_pairs.front()].value));
    MDDC_ASSIGN_OR_RETURN(FactTerm term, cached.registry()->Get(group));
    Merged* slot;
    if (use_flat) {
      const std::uint64_t hash = HashValueIds(key.data(), n);
      bool inserted = false;
      const std::uint32_t g = flat_index.FindOrInsert(
          hash, static_cast<std::uint32_t>(flat_slots.size()),
          [&](std::uint32_t ordinal) {
            return std::equal(
                key.begin(), key.end(),
                key_storage.begin() +
                    static_cast<std::ptrdiff_t>(ordinal * n));
          },
          &inserted);
      if (inserted) {
        key_storage.insert(key_storage.end(), key.begin(), key.end());
        flat_slots.emplace_back();
      }
      slot = &flat_slots[g];
    } else {
      slot = &merged[key];
    }
    slot->members.insert(slot->members.end(), term.members.begin(),
                         term.members.end());
    slot->value = slot->first ? partial
                              : Merge(function.kind(), slot->value, partial);
    slot->first = false;
  }

  // Canonical lexicographic key order over either engine's storage.
  std::vector<std::pair<const ValueId*, const Merged*>> ordered;
  if (use_flat) {
    ordered.reserve(flat_slots.size());
    for (std::size_t g = 0; g < flat_slots.size(); ++g) {
      ordered.push_back({key_storage.data() + g * n, &flat_slots[g]});
    }
    std::sort(ordered.begin(), ordered.end(),
              [n](const auto& a, const auto& b) {
                return std::lexicographical_compare(
                    a.first, a.first + n, b.first, b.first + n);
              });
  } else {
    ordered.reserve(merged.size());
    for (const auto& [map_key, slot] : merged) {
      ordered.push_back({map_key.data(), &slot});
    }
  }

  // Assemble the rolled-up MO: argument dimensions restricted above the
  // requested categories plus a fresh auto result dimension.
  std::vector<Dimension> dimensions;
  for (std::size_t i = 0; i < n; ++i) {
    MDDC_ASSIGN_OR_RETURN(
        Dimension restricted,
        cached.dimension(i).RestrictAbove(cached_categories[i]));
    dimensions.push_back(std::move(restricted));
  }
  DimensionTypeBuilder builder("Result");
  builder.AddCategory("Value", entry.result_agg_type);
  MDDC_ASSIGN_OR_RETURN(auto result_type, builder.Build());
  dimensions.emplace_back(result_type);

  MdObject result(cached.schema().fact_type(), std::move(dimensions),
                  cached.registry(), cached.temporal_type());
  Dimension& out_result = result.dimension_mutable(n);
  CategoryTypeIndex bottom = result_type->bottom();
  Representation& rep = out_result.RepresentationFor(bottom, "Value");
  // Result values intern by the double's bit pattern — FormatDouble
  // collapses NaN payloads, and two distinct results must never share a
  // value. The formatted text is display-only.
  std::map<std::uint64_t, ValueId> value_ids;
  for (const auto& [group_key, slot] : ordered) {
    FactId fact = cached.registry()->Set(slot->members);
    MDDC_RETURN_NOT_OK(result.AddFact(fact));
    for (std::size_t i = 0; i < n; ++i) {
      MDDC_RETURN_NOT_OK(result.relation_mutable(i).Add(fact, group_key[i]));
    }
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(slot->value);
    auto it = value_ids.find(bits);
    ValueId value;
    if (it == value_ids.end()) {
      MDDC_ASSIGN_OR_RETURN(value, out_result.AddValueAuto(bottom));
      MDDC_RETURN_NOT_OK(rep.Set(value, FormatDouble(slot->value)));
      value_ids.emplace(bits, value);
    } else {
      value = it->second;
    }
    MDDC_RETURN_NOT_OK(result.relation_mutable(n).Add(fact, value));
  }
  MDDC_RETURN_NOT_OK(result.Validate());
  return result;
}

}  // namespace mddc
