#include "engine/advisor.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/strings.h"
#include "core/properties.h"

namespace mddc {

MaterializationAdvisor::MaterializationAdvisor(const MdObject& base,
                                               AggFunction function)
    : base_(base), function_(std::move(function)) {}

double MaterializationAdvisor::EstimateSize(
    const std::vector<CategoryTypeIndex>& grouping) const {
  double size = 1.0;
  const double cap = static_cast<double>(base_.fact_count());
  for (std::size_t i = 0; i < grouping.size() && i < base_.dimension_count();
       ++i) {
    const Dimension& dimension = base_.dimension(i);
    if (grouping[i] == dimension.type().top()) continue;
    size *= static_cast<double>(
        std::max<std::size_t>(1, dimension.ValuesIn(grouping[i]).size()));
    if (size >= cap) return cap;
  }
  return std::min(size, cap);
}

bool MaterializationAdvisor::CanAnswerFrom(
    const std::vector<CategoryTypeIndex>& source,
    const std::vector<CategoryTypeIndex>& query) const {
  if (source.size() != query.size()) return false;
  bool finer_somewhere = false;
  for (std::size_t i = 0; i < source.size(); ++i) {
    if (!base_.dimension(i).type().LessEq(source[i], query[i])) return false;
    if (source[i] != query[i]) finer_somewhere = true;
  }
  if (!finer_somewhere) return true;  // exact match always answers
  // Rolling further up requires safe re-aggregation: distributive
  // function and a summarizable source grouping (same rule as
  // PreAggregateCache).
  if (!function_.distributive()) return false;
  SummarizabilityReport report =
      CheckSummarizability(base_, function_.kind(), source);
  return report.summarizable;
}

Result<AdvisorPlan> MaterializationAdvisor::Advise(
    const std::vector<AdvisorQuery>& queries,
    std::size_t max_materializations) const {
  for (const AdvisorQuery& query : queries) {
    if (query.grouping.size() != base_.dimension_count()) {
      return Status::InvalidArgument(
          StrCat("advisor query has ", query.grouping.size(),
                 " grouping categories for a ", base_.dimension_count(),
                 "-dimensional MO"));
    }
  }

  // Candidate materializations: the distinct query groupings.
  std::set<std::vector<CategoryTypeIndex>> candidate_set;
  for (const AdvisorQuery& query : queries) {
    candidate_set.insert(query.grouping);
  }
  std::vector<std::vector<CategoryTypeIndex>> candidates(
      candidate_set.begin(), candidate_set.end());

  const double base_cost = static_cast<double>(base_.fact_count());
  // Current best cost per query (starts at a base scan).
  std::vector<double> best(queries.size(), base_cost);

  AdvisorPlan plan;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    plan.cost_without += queries[q].frequency * base_cost;
  }

  std::set<std::size_t> chosen;
  for (std::size_t round = 0;
       round < max_materializations && chosen.size() < candidates.size();
       ++round) {
    double best_benefit = 0.0;
    std::size_t best_candidate = candidates.size();
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (chosen.count(c) != 0) continue;
      double candidate_size = EstimateSize(candidates[c]);
      double benefit = 0.0;
      for (std::size_t q = 0; q < queries.size(); ++q) {
        if (!CanAnswerFrom(candidates[c], queries[q].grouping)) continue;
        double saved = best[q] - candidate_size;
        if (saved > 0) benefit += queries[q].frequency * saved;
      }
      if (benefit > best_benefit) {
        best_benefit = benefit;
        best_candidate = c;
      }
    }
    if (best_candidate == candidates.size()) break;  // nothing helps
    chosen.insert(best_candidate);
    double candidate_size = EstimateSize(candidates[best_candidate]);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      if (CanAnswerFrom(candidates[best_candidate], queries[q].grouping)) {
        best[q] = std::min(best[q], candidate_size);
      }
    }
    plan.materialize.push_back(AdvisorChoice{candidates[best_candidate],
                                             candidate_size, best_benefit});
  }

  for (std::size_t q = 0; q < queries.size(); ++q) {
    plan.cost_with += queries[q].frequency * best[q];
  }
  return plan;
}

Status MaterializationAdvisor::Apply(const AdvisorPlan& plan,
                                     PreAggregateCache* cache) const {
  for (const AdvisorChoice& choice : plan.materialize) {
    MDDC_RETURN_NOT_OK(cache->Materialize(function_, choice.grouping));
  }
  return Status::OK();
}

std::string AdvisorPlan::ToString(const MdObject& base) const {
  std::string out = StrCat("materialize ", materialize.size(),
                           " grouping(s); projected scan cost ",
                           FormatDouble(cost_without), " -> ",
                           FormatDouble(cost_with), "\n");
  for (const AdvisorChoice& choice : materialize) {
    std::vector<std::string> levels;
    for (std::size_t i = 0;
         i < choice.grouping.size() && i < base.dimension_count(); ++i) {
      const DimensionType& type = base.dimension(i).type();
      if (choice.grouping[i] == type.top()) continue;
      levels.push_back(StrCat(type.name(), ".",
                              type.category(choice.grouping[i]).name));
    }
    out += StrCat("  [", Join(levels, ", "),
                  "] ~", FormatDouble(choice.estimated_size),
                  " groups, benefit ",
                  FormatDouble(choice.estimated_benefit), "\n");
  }
  return out;
}

}  // namespace mddc
