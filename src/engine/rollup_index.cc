#include "engine/rollup_index.h"

#include <algorithm>
#include <mutex>

#include "core/properties.h"

namespace mddc {
namespace {

/// Serializes all compiled-snapshot slot reads and writes process-wide.
/// A single global mutex keeps the core layer free of any threading
/// machinery (the slot itself is a plain shared_ptr) and is never
/// contended on the hot path: operators call For() once per dimension
/// from the query thread, before fanning out workers.
std::mutex& SlotMutex() {
  static std::mutex mutex;
  return mutex;
}

}  // namespace

std::uint32_t RollupIndex::DenseOf(ValueId v) const {
  auto it = std::lower_bound(value_of_.begin(), value_of_.end(), v);
  if (it == value_of_.end() || *it != v) return kNone;
  return static_cast<std::uint32_t>(it - value_of_.begin());
}

const std::uint32_t* RollupIndex::CategoryBegin(
    CategoryTypeIndex category) const {
  if (category + 1 >= category_begin_.size()) return category_values_.data();
  return category_values_.data() + category_begin_[category];
}

const std::uint32_t* RollupIndex::CategoryEnd(
    CategoryTypeIndex category) const {
  if (category + 1 >= category_begin_.size()) return category_values_.data();
  return category_values_.data() + category_begin_[category + 1];
}

std::shared_ptr<const RollupIndex> RollupIndex::For(const Dimension& dimension,
                                                    ExecStats* stats) {
  // Publish-frozen dimensions (the MVCC serving tier, src/serve) promise
  // that the slot is filled, final, and never written again, so the read
  // needs no mutex — this keeps concurrent reader sessions lock-free on
  // the hot path. Should a frozen dimension nevertheless arrive with an
  // empty or stale slot (a publisher that forgot to pre-compile), build a
  // one-off snapshot WITHOUT caching it: writing the slot of a frozen
  // dimension would race against other lock-free readers.
  if (dimension.publish_frozen()) {
    auto cached = std::static_pointer_cast<const RollupIndex>(
        dimension.compiled_snapshot_slot());
    if (cached != nullptr && !cached->StaleFor(dimension)) {
      return cached;
    }
    std::shared_ptr<const RollupIndex> built = Build(dimension);
    if (stats != nullptr) ++stats->index_builds;
    return built;
  }

  std::lock_guard<std::mutex> lock(SlotMutex());
  auto cached = std::static_pointer_cast<const RollupIndex>(
      dimension.compiled_snapshot_slot());
  if (cached != nullptr && !cached->StaleFor(dimension)) {
    return cached;
  }
  std::shared_ptr<const RollupIndex> built = Build(dimension);
  dimension.set_compiled_snapshot_slot(built);
  if (stats != nullptr) ++stats->index_builds;
  return built;
}

std::shared_ptr<const RollupIndex> RollupIndex::Build(
    const Dimension& dimension) {
  auto index = std::shared_ptr<RollupIndex>(new RollupIndex());
  index->version_ = dimension.version();
  index->category_count_ = dimension.type().category_count();

  // Dense remapping: AllValues() iterates the dimension's value map in
  // ascending ValueId order, so dense ids are ascending too and DenseOf
  // can binary-search value_of_.
  const std::vector<ValueId> values = dimension.AllValues();
  const std::uint32_t n = static_cast<std::uint32_t>(values.size());
  index->value_of_ = values;
  index->category_of_.resize(n);
  index->membership_of_.resize(n);
  for (std::uint32_t d = 0; d < n; ++d) {
    if (values[d] == dimension.top_value()) index->top_dense_ = d;
    auto category = dimension.CategoryOf(values[d]);
    auto membership = dimension.MembershipOf(values[d]);
    index->category_of_[d] = category.ok() ? *category : 0;
    if (membership.ok()) index->membership_of_[d] = *membership;
  }

  // Per-category ranges, sorted by ValueId (= by dense id).
  index->category_begin_.assign(index->category_count_ + 1, 0);
  for (std::uint32_t d = 0; d < n; ++d) {
    ++index->category_begin_[index->category_of_[d] + 1];
  }
  for (std::size_t c = 0; c < index->category_count_; ++c) {
    index->category_begin_[c + 1] += index->category_begin_[c];
  }
  index->category_values_.resize(n);
  std::vector<std::uint32_t> category_cursor(
      index->category_begin_.begin(), index->category_begin_.end() - 1);
  for (std::uint32_t d = 0; d < n; ++d) {
    index->category_values_[category_cursor[index->category_of_[d]]++] = d;
  }

  // CSR edge arrays, both directions, in the dimension's per-value edge
  // order (insertion order, like EdgeIndexesFromChild/ToParent).
  const std::vector<Dimension::Edge>& edges = dimension.edges();
  bool all_edges_always = true;
  auto fill_csr = [&](bool upward, std::vector<std::uint32_t>& begin,
                      std::vector<std::uint32_t>& target,
                      std::vector<Lifespan>& life, std::vector<double>& prob) {
    begin.assign(n + 1, 0);
    target.reserve(edges.size());
    life.reserve(edges.size());
    prob.reserve(edges.size());
    for (std::uint32_t d = 0; d < n; ++d) {
      begin[d] = static_cast<std::uint32_t>(target.size());
      const std::vector<std::size_t>& indexes =
          upward ? dimension.EdgeIndexesFromChild(values[d])
                 : dimension.EdgeIndexesToParent(values[d]);
      for (std::size_t e : indexes) {
        const Dimension::Edge& edge = edges[e];
        target.push_back(index->DenseOf(upward ? edge.parent : edge.child));
        life.push_back(edge.life);
        prob.push_back(edge.prob);
      }
    }
    begin[n] = static_cast<std::uint32_t>(target.size());
  };
  fill_csr(/*upward=*/true, index->up_begin_, index->up_target_,
           index->up_life_, index->up_prob_);
  fill_csr(/*upward=*/false, index->down_begin_, index->down_target_,
           index->down_life_, index->down_prob_);
  for (const Dimension::Edge& edge : edges) {
    if (!(edge.life == Lifespan::AlwaysSpan())) {
      all_edges_always = false;
      break;
    }
  }

  // Flat descendant -> ancestor-at-category table, gated on Section 3.4
  // strictness plus non-temporal edges. Under that gate every closure
  // lifespan is Always (intersections and unions of Always stay Always),
  // so the table needs no lifespan column, and strictness guarantees at
  // most one ancestor per category — the single-array-lookup rollup.
  index->has_flat_table_ = all_edges_always && IsStrict(dimension);
  if (index->has_flat_table_) {
    index->flat_ancestor_.assign(n * index->category_count_, kNone);
    index->flat_prob_.assign(n * index->category_count_, 0.0);
    for (std::uint32_t d = 0; d < n; ++d) {
      auto set = [&](CategoryTypeIndex category, std::uint32_t ancestor,
                     double p) {
        index->flat_ancestor_[d * index->category_count_ + category] =
            ancestor;
        index->flat_prob_[d * index->category_count_ + category] = p;
      };
      // The value answers a rollup to its own category with itself.
      set(index->category_of_[d], d, 1.0);
      if (d == index->top_dense_) continue;
      for (const Dimension::Containment& c :
           dimension.AncestorsView(values[d])) {
        const std::uint32_t ancestor = index->DenseOf(c.value);
        if (ancestor == kNone) continue;
        set(index->category_of_[ancestor], ancestor, c.prob);
      }
    }
  }
  return index;
}

}  // namespace mddc
