#include "engine/rollup_index.h"

#include <algorithm>
#include <mutex>

#include "core/properties.h"

namespace mddc {
namespace {

/// Serializes all compiled-snapshot slot reads and writes process-wide.
/// A single global mutex keeps the core layer free of any threading
/// machinery (the slot itself is a plain shared_ptr) and is never
/// contended on the hot path: operators call For() once per dimension
/// from the query thread, before fanning out workers.
std::mutex& SlotMutex() {
  static std::mutex mutex;
  return mutex;
}

}  // namespace

std::uint32_t RollupIndex::DenseOf(ValueId v) const {
  auto it = std::lower_bound(value_of_.begin(), value_of_.end(), v);
  if (it == value_of_.end() || *it != v) return kNone;
  return static_cast<std::uint32_t>(it - value_of_.begin());
}

const std::uint32_t* RollupIndex::CategoryBegin(
    CategoryTypeIndex category) const {
  if (category + 1 >= category_begin_.size()) return category_values_.data();
  return category_values_.data() + category_begin_[category];
}

const std::uint32_t* RollupIndex::CategoryEnd(
    CategoryTypeIndex category) const {
  if (category + 1 >= category_begin_.size()) return category_values_.data();
  return category_values_.data() + category_begin_[category + 1];
}

std::shared_ptr<const RollupIndex> RollupIndex::For(const Dimension& dimension,
                                                    ExecStats* stats) {
  // Publish-frozen dimensions (the MVCC serving tier, src/serve) promise
  // that the slot is filled, final, and never written again, so the read
  // needs no mutex — this keeps concurrent reader sessions lock-free on
  // the hot path. Should a frozen dimension nevertheless arrive with an
  // empty or stale slot (a publisher that forgot to pre-compile), build a
  // one-off snapshot WITHOUT caching it: writing the slot of a frozen
  // dimension would race against other lock-free readers.
  // A stale snapshot whose structural version still matches was outdated
  // by appends only and is patched — O(V+E) plus closure walks for just
  // the fresh values — instead of recompiled from scratch.
  auto compile = [&](const std::shared_ptr<const RollupIndex>& cached)
      -> std::shared_ptr<const RollupIndex> {
    if (cached != nullptr &&
        cached->structural_version() == dimension.structural_version()) {
      std::shared_ptr<const RollupIndex> patched =
          Patch(dimension, *cached);
      if (patched != nullptr) {
        if (stats != nullptr) {
          ++stats->index_builds;
          ++stats->rollup_patches;
        }
        return patched;
      }
    }
    std::shared_ptr<const RollupIndex> built = Build(dimension);
    if (stats != nullptr) ++stats->index_builds;
    return built;
  };

  if (dimension.publish_frozen()) {
    auto cached = std::static_pointer_cast<const RollupIndex>(
        dimension.compiled_snapshot_slot());
    if (cached != nullptr && !cached->StaleFor(dimension)) {
      return cached;
    }
    return compile(cached);
  }

  std::lock_guard<std::mutex> lock(SlotMutex());
  auto cached = std::static_pointer_cast<const RollupIndex>(
      dimension.compiled_snapshot_slot());
  if (cached != nullptr && !cached->StaleFor(dimension)) {
    return cached;
  }
  std::shared_ptr<const RollupIndex> built = compile(cached);
  dimension.set_compiled_snapshot_slot(built);
  return built;
}

void RollupIndex::FillCategoryRanges() {
  // Per-category ranges, sorted by ValueId (= by dense id).
  const std::uint32_t n = value_count();
  category_begin_.assign(category_count_ + 1, 0);
  for (std::uint32_t d = 0; d < n; ++d) {
    ++category_begin_[category_of_[d] + 1];
  }
  for (std::size_t c = 0; c < category_count_; ++c) {
    category_begin_[c + 1] += category_begin_[c];
  }
  category_values_.resize(n);
  std::vector<std::uint32_t> category_cursor(category_begin_.begin(),
                                             category_begin_.end() - 1);
  for (std::uint32_t d = 0; d < n; ++d) {
    category_values_[category_cursor[category_of_[d]]++] = d;
  }
}

void RollupIndex::FillCsrArrays(const Dimension& dimension) {
  // CSR edge arrays, both directions, in the dimension's per-value edge
  // order (insertion order, like EdgeIndexesFromChild/ToParent).
  const std::uint32_t n = value_count();
  const std::vector<Dimension::Edge>& edges = dimension.edges();
  auto fill_csr = [&](bool upward, std::vector<std::uint32_t>& begin,
                      std::vector<std::uint32_t>& target,
                      std::vector<Lifespan>& life, std::vector<double>& prob) {
    begin.assign(n + 1, 0);
    target.clear();
    life.clear();
    prob.clear();
    target.reserve(edges.size());
    life.reserve(edges.size());
    prob.reserve(edges.size());
    for (std::uint32_t d = 0; d < n; ++d) {
      begin[d] = static_cast<std::uint32_t>(target.size());
      const std::vector<std::size_t>& indexes =
          upward ? dimension.EdgeIndexesFromChild(value_of_[d])
                 : dimension.EdgeIndexesToParent(value_of_[d]);
      for (std::size_t e : indexes) {
        const Dimension::Edge& edge = edges[e];
        target.push_back(DenseOf(upward ? edge.parent : edge.child));
        life.push_back(edge.life);
        prob.push_back(edge.prob);
      }
    }
    begin[n] = static_cast<std::uint32_t>(target.size());
  };
  fill_csr(/*upward=*/true, up_begin_, up_target_, up_life_, up_prob_);
  fill_csr(/*upward=*/false, down_begin_, down_target_, down_life_,
           down_prob_);
  edge_count_ = edges.size();
}

std::shared_ptr<const RollupIndex> RollupIndex::Build(
    const Dimension& dimension) {
  auto index = std::shared_ptr<RollupIndex>(new RollupIndex());
  index->version_ = dimension.version();
  index->structural_version_ = dimension.structural_version();
  index->category_count_ = dimension.type().category_count();

  // Dense remapping: AllValues() iterates the dimension's value map in
  // ascending ValueId order, so dense ids are ascending too and DenseOf
  // can binary-search value_of_.
  const std::vector<ValueId> values = dimension.AllValues();
  const std::uint32_t n = static_cast<std::uint32_t>(values.size());
  index->value_of_ = values;
  index->category_of_.resize(n);
  index->membership_of_.resize(n);
  for (std::uint32_t d = 0; d < n; ++d) {
    if (values[d] == dimension.top_value()) index->top_dense_ = d;
    auto category = dimension.CategoryOf(values[d]);
    auto membership = dimension.MembershipOf(values[d]);
    index->category_of_[d] = category.ok() ? *category : 0;
    if (membership.ok()) index->membership_of_[d] = *membership;
  }

  index->FillCategoryRanges();
  index->FillCsrArrays(dimension);
  const std::vector<Dimension::Edge>& edges = dimension.edges();
  bool all_edges_always = true;
  for (const Dimension::Edge& edge : edges) {
    if (!(edge.life == Lifespan::AlwaysSpan())) {
      all_edges_always = false;
      break;
    }
  }

  // Flat descendant -> ancestor-at-category table, gated on Section 3.4
  // strictness plus non-temporal edges. Under that gate every closure
  // lifespan is Always (intersections and unions of Always stay Always),
  // so the table needs no lifespan column, and strictness guarantees at
  // most one ancestor per category — the single-array-lookup rollup.
  index->has_flat_table_ = all_edges_always && IsStrict(dimension);
  if (index->has_flat_table_) {
    index->flat_ancestor_.assign(n * index->category_count_, kNone);
    index->flat_prob_.assign(n * index->category_count_, 0.0);
    for (std::uint32_t d = 0; d < n; ++d) {
      auto set = [&](CategoryTypeIndex category, std::uint32_t ancestor,
                     double p) {
        index->flat_ancestor_[d * index->category_count_ + category] =
            ancestor;
        index->flat_prob_[d * index->category_count_ + category] = p;
      };
      // The value answers a rollup to its own category with itself.
      set(index->category_of_[d], d, 1.0);
      if (d == index->top_dense_) continue;
      for (const Dimension::Containment& c :
           dimension.AncestorsView(values[d])) {
        const std::uint32_t ancestor = index->DenseOf(c.value);
        if (ancestor == kNone) continue;
        set(index->category_of_[ancestor], ancestor, c.prob);
      }
    }
  }
  return index;
}

std::shared_ptr<const RollupIndex> RollupIndex::Patch(
    const Dimension& dimension, const RollupIndex& old) {
  // The patch gate: the dimension must be `old` plus appends. Appends
  // insert fresh values (auto ids above every old non-top id, below the
  // top sentinel) and hang edges under them only, so in ascending ValueId
  // order the old non-top values keep their dense ids, fresh values slot
  // in before top, and top — the maximal raw id — shifts to stay last.
  // Anything else (values vanished, top not last, category schema moved)
  // means structural drift the caller must Build through.
  const std::vector<ValueId> values = dimension.AllValues();
  const std::uint32_t n = static_cast<std::uint32_t>(values.size());
  const std::uint32_t old_n = old.value_count();
  if (old_n == 0 || n < old_n) return nullptr;
  if (old.top_dense_ != old_n - 1) return nullptr;
  if (values[n - 1] != dimension.top_value()) return nullptr;
  if (old.value_of_[old_n - 1] != values[n - 1]) return nullptr;
  for (std::uint32_t d = 0; d + 1 < old_n; ++d) {
    if (values[d] != old.value_of_[d]) return nullptr;
  }
  const std::vector<Dimension::Edge>& edges = dimension.edges();
  if (edges.size() < old.edge_count_) return nullptr;
  if (dimension.type().category_count() != old.category_count_) {
    return nullptr;
  }

  auto index = std::shared_ptr<RollupIndex>(new RollupIndex());
  index->version_ = dimension.version();
  index->structural_version_ = dimension.structural_version();
  index->category_count_ = old.category_count_;
  index->value_of_ = values;
  index->top_dense_ = n - 1;
  // The O(V)/O(V+E) arrays are refilled outright — they are the cheap
  // part; what the patch saves is the closure walk per value below.
  index->category_of_.resize(n);
  index->membership_of_.assign(n, Lifespan());
  for (std::uint32_t d = 0; d < n; ++d) {
    auto category = dimension.CategoryOf(values[d]);
    auto membership = dimension.MembershipOf(values[d]);
    index->category_of_[d] = category.ok() ? *category : 0;
    if (membership.ok()) index->membership_of_[d] = *membership;
  }
  index->FillCategoryRanges();
  index->FillCsrArrays(dimension);

  // Flat table: old rows are copied verbatim (appended edges never alter
  // an old value's upward closure — they only hang fresh children), with
  // references to the old top dense id remapped to the shifted one. Only
  // fresh values pay a closure walk. The patch re-applies Build's gate
  // incrementally: a non-Always appended edge breaks the non-temporal
  // half, and a fresh value with two ancestors in one category breaks
  // strictness — either drops the table, exactly as Build would conclude.
  index->has_flat_table_ = false;
  if (old.has_flat_table_) {
    bool appended_always = true;
    for (std::size_t e = old.edge_count_; e < edges.size(); ++e) {
      if (!(edges[e].life == Lifespan::AlwaysSpan())) {
        appended_always = false;
        break;
      }
    }
    if (appended_always) {
      index->has_flat_table_ = true;
      index->flat_ancestor_.assign(n * index->category_count_, kNone);
      index->flat_prob_.assign(n * index->category_count_, 0.0);
      const std::uint32_t old_top = old_n - 1;
      const std::uint32_t new_top = n - 1;
      for (std::uint32_t d = 0; d + 1 < old_n; ++d) {
        for (std::size_t c = 0; c < index->category_count_; ++c) {
          std::uint32_t ancestor =
              old.flat_ancestor_[d * old.category_count_ + c];
          if (ancestor == old_top) ancestor = new_top;
          index->flat_ancestor_[d * index->category_count_ + c] = ancestor;
          index->flat_prob_[d * index->category_count_ + c] =
              old.flat_prob_[d * old.category_count_ + c];
        }
      }
      index->flat_ancestor_[new_top * index->category_count_ +
                            index->category_of_[new_top]] = new_top;
      index->flat_prob_[new_top * index->category_count_ +
                        index->category_of_[new_top]] = 1.0;
      for (std::uint32_t d = old_n - 1;
           d + 1 < n && index->has_flat_table_; ++d) {
        auto set = [&](CategoryTypeIndex category, std::uint32_t ancestor,
                       double p) -> bool {
          std::uint32_t& slot =
              index->flat_ancestor_[d * index->category_count_ + category];
          if (slot != kNone && slot != ancestor) return false;
          slot = ancestor;
          index->flat_prob_[d * index->category_count_ + category] = p;
          return true;
        };
        if (!set(index->category_of_[d], d, 1.0)) {
          index->has_flat_table_ = false;
          break;
        }
        for (const Dimension::Containment& c :
             dimension.AncestorsView(values[d])) {
          const std::uint32_t ancestor = index->DenseOf(c.value);
          if (ancestor == kNone) continue;
          if (!set(index->category_of_[ancestor], ancestor, c.prob)) {
            index->has_flat_table_ = false;
            break;
          }
        }
      }
      if (!index->has_flat_table_) {
        index->flat_ancestor_.clear();
        index->flat_prob_.clear();
      }
    }
  }
  return index;
}

}  // namespace mddc
