#include "engine/groupby_kernel.h"

namespace mddc {

std::uint64_t HashValueIds(const ValueId* ids, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t k = 0; k < n; ++k) h = Fnv1a64Word(ids[k].raw(), h);
  return h;
}

DenseSlotSpace::Plan DenseSlotSpace::Build(
    const std::vector<GroupingDim>& dims, std::uint64_t max_slots,
    DenseSlotSpace* out) {
  out->dims_.clear();
  out->dims_.reserve(dims.size());
  for (const GroupingDim& in : dims) {
    Dim dim;
    dim.index = in.index;
    dim.fixed_value = in.fixed_value;
    if (in.index != nullptr) {
      if (!in.index->has_flat_table()) return Plan::kNotIndexed;
      const std::uint32_t* begin = in.index->CategoryBegin(in.category);
      const std::uint32_t* end = in.index->CategoryEnd(in.category);
      dim.range = begin;
      dim.card = static_cast<std::uint64_t>(end - begin);
      dim.ordinal_of_dense.assign(in.index->value_count(),
                                  RollupIndex::kNone);
      for (const std::uint32_t* it = begin; it != end; ++it) {
        dim.ordinal_of_dense[*it] = static_cast<std::uint32_t>(it - begin);
      }
    }
    out->dims_.push_back(std::move(dim));
  }
  // Overflow-checked cross-product against the threshold. An empty
  // grouping category zeroes the space (no fact can land there), which
  // trivially fits.
  std::uint64_t slots = 1;
  for (const Dim& dim : out->dims_) {
    if (dim.card == 0) {
      slots = 0;
      break;
    }
    if (slots > max_slots / dim.card) return Plan::kTooManySlots;
    slots *= dim.card;
  }
  out->slot_count_ = slots;
  return Plan::kDense;
}

void DenseSlotSpace::KeyOf(std::uint64_t slot, std::vector<ValueId>& key) const {
  key.resize(dims_.size());
  for (std::size_t i = dims_.size(); i-- > 0;) {
    const Dim& dim = dims_[i];
    if (dim.index == nullptr) {
      key[i] = dim.fixed_value;
      continue;
    }
    const std::uint64_t ordinal = slot % dim.card;
    slot /= dim.card;
    key[i] = dim.index->ValueOf(dim.range[ordinal]);
  }
}

}  // namespace mddc
