#ifndef MDDC_ENGINE_ROLLUP_INDEX_H_
#define MDDC_ENGINE_ROLLUP_INDEX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/dimension.h"
#include "engine/executor.h"

namespace mddc {

/// An immutable, compiled snapshot of one Dimension — the physical layer
/// under the clean algebra (the "special-purpose algorithms and data
/// structures" of the paper's future-work list, Section 5). Where the
/// Dimension answers every query through std::map-based partial-order
/// traversal, the snapshot lays the same data out flat:
///
///  * a dense remapping ValueId -> contiguous u32, in ascending ValueId
///    order (the Dimension's own iteration order, so walking the dense
///    range reproduces AllValues() exactly);
///  * per-value category and membership arrays (one array read replaces
///    the CategoryOf/MembershipOf map lookups on the timeslice path);
///  * CSR (compressed-sparse-row) arrays of the immediate-containment
///    edges, upward and downward, with parallel lifespan/probability
///    arrays;
///  * per-category value ranges, sorted by ValueId; and
///  * when the hierarchy passes the strictness gate of Section 3.4 and
///    every edge lifespan is Always (the "non-temporal" case), a flat
///    descendant -> ancestor-at-category table with the closure
///    probability, so a rollup is one array lookup instead of a graph
///    walk. Strictness makes the table well-defined: each value has at
///    most one ancestor per category.
///
/// Snapshots are built lazily by For(), shared through the dimension's
/// type-erased compiled-snapshot slot (so Dimension copies — e.g. the
/// operand dimensions a Join carries into its result — inherit the
/// compiled form for free), and invalidated by the dimension's structural
/// version counter: any mutation bumps the version, For() rejects the
/// stale snapshot and recompiles. Consumers that need the flat table but
/// find the gate failed fall back to the memoized traversal, so results
/// stay bit-identical in every case.
class RollupIndex {
 public:
  /// Sentinel dense id: "no such value" / "no ancestor at this category".
  static constexpr std::uint32_t kNone = 0xffffffffu;

  /// Returns the compiled snapshot for `dimension`, building (and caching
  /// in the dimension's snapshot slot) if the slot is empty or holds a
  /// snapshot of an older version. Thread-safe: all slot reads and writes
  /// are serialized process-wide, and the returned object is immutable.
  /// `stats`, when non-null, counts one index_builds per compilation.
  ///
  /// Must not be called concurrently with mutation of `dimension`, and —
  /// like any closure query — may lazily fill the dimension's reachability
  /// memo, so callers on the parallel engine invoke it from the query
  /// thread before fanning out workers.
  static std::shared_ptr<const RollupIndex> For(const Dimension& dimension,
                                                ExecStats* stats = nullptr);

  /// The dimension version this snapshot was compiled at.
  std::uint64_t version() const { return version_; }

  /// The dimension's *structural* version at compile time. A stale
  /// snapshot whose structural version still matches the dimension was
  /// outdated by appends only (new values under existing categories, new
  /// edges hanging fresh children) and can be patched instead of rebuilt
  /// (docs/ingestion.md).
  std::uint64_t structural_version() const { return structural_version_; }

  /// True when `dimension` has been mutated since this snapshot was
  /// compiled (the snapshot must then not be consulted for it).
  bool StaleFor(const Dimension& dimension) const {
    return version_ != dimension.version();
  }

  // ---- Dense value remapping ---------------------------------------------

  std::uint32_t value_count() const {
    return static_cast<std::uint32_t>(value_of_.size());
  }
  std::uint32_t top_dense() const { return top_dense_; }

  /// Dense id of `v`, or kNone when the value is not in the dimension.
  std::uint32_t DenseOf(ValueId v) const;

  /// Inverse mapping; `dense` must be < value_count().
  ValueId ValueOf(std::uint32_t dense) const { return value_of_[dense]; }
  CategoryTypeIndex CategoryOfDense(std::uint32_t dense) const {
    return category_of_[dense];
  }
  const Lifespan& MembershipOfDense(std::uint32_t dense) const {
    return membership_of_[dense];
  }

  // ---- Per-category sorted value ranges ----------------------------------

  /// Dense ids of the values in `category`, sorted by ValueId. Empty for
  /// out-of-range categories.
  const std::uint32_t* CategoryBegin(CategoryTypeIndex category) const;
  const std::uint32_t* CategoryEnd(CategoryTypeIndex category) const;

  // ---- CSR immediate-containment edges -----------------------------------

  /// Half-open range [UpBegin(d), UpEnd(d)) of CSR positions holding the
  /// up-edges (child -> parent) of dense value `d`; UpParent/UpLife/UpProb
  /// are parallel arrays over those positions. Down* is the mirror
  /// (parent -> children).
  std::uint32_t UpBegin(std::uint32_t dense) const { return up_begin_[dense]; }
  std::uint32_t UpEnd(std::uint32_t dense) const {
    return up_begin_[dense + 1];
  }
  std::uint32_t UpParent(std::uint32_t pos) const { return up_target_[pos]; }
  const Lifespan& UpLife(std::uint32_t pos) const { return up_life_[pos]; }
  double UpProb(std::uint32_t pos) const { return up_prob_[pos]; }

  std::uint32_t DownBegin(std::uint32_t dense) const {
    return down_begin_[dense];
  }
  std::uint32_t DownEnd(std::uint32_t dense) const {
    return down_begin_[dense + 1];
  }
  std::uint32_t DownChild(std::uint32_t pos) const {
    return down_target_[pos];
  }
  const Lifespan& DownLife(std::uint32_t pos) const { return down_life_[pos]; }
  double DownProb(std::uint32_t pos) const { return down_prob_[pos]; }

  // ---- Flat rollup table -------------------------------------------------

  /// True when the strictness/non-temporal gate held at compile time and
  /// the flat descendant -> ancestor-at-category table below is usable.
  bool has_flat_table() const { return has_flat_table_; }

  /// The unique ancestor of dense value `d` at `category` (the value
  /// itself when `category` is its own; the top value at the top
  /// category), or kNone when it has none. Only valid when
  /// has_flat_table(). Under the gate every closure lifespan is Always,
  /// so the containment carries no time — only the probability below.
  std::uint32_t AncestorAt(std::uint32_t dense,
                           CategoryTypeIndex category) const {
    return flat_ancestor_[dense * category_count_ + category];
  }

  /// Closure probability of that containment (1.0 for the value itself
  /// and for top; meaningless when AncestorAt is kNone).
  double AncestorProbAt(std::uint32_t dense,
                        CategoryTypeIndex category) const {
    return flat_prob_[dense * category_count_ + category];
  }

 private:
  RollupIndex() = default;

  /// Compiles a snapshot of `dimension` at its current version.
  static std::shared_ptr<const RollupIndex> Build(const Dimension& dimension);

  /// Compiles a snapshot by patching `old` — valid only when the
  /// dimension drifted from `old` by appends (equal structural versions):
  /// the dense remap is extended (fresh values slot in before top, which
  /// shifts to stay last), the cheap O(V+E) arrays are refilled, and only
  /// the fresh values' flat-table rows are computed via closure walks —
  /// old rows are copied with the top id remapped, since appended edges
  /// never change an old value's upward closure. Returns null when the
  /// patch gate fails (structural drift, reordered values) and the caller
  /// must Build. Byte-equivalent to Build in every consumable way: a
  /// fresh value with two ancestors in one category, or a non-Always
  /// appended edge, drops the flat table exactly as Build's gate would.
  static std::shared_ptr<const RollupIndex> Patch(const Dimension& dimension,
                                                  const RollupIndex& old);

  /// Shared O(V) / O(V+E) array fills of Build and Patch; `value_of_` and
  /// `category_of_` must already be final.
  void FillCategoryRanges();
  void FillCsrArrays(const Dimension& dimension);

  std::uint64_t version_ = 0;
  std::uint64_t structural_version_ = 0;
  /// dimension.edges().size() at compile time; a patch classifies
  /// edges beyond this as appended.
  std::size_t edge_count_ = 0;
  std::size_t category_count_ = 0;
  std::uint32_t top_dense_ = kNone;
  bool has_flat_table_ = false;

  std::vector<ValueId> value_of_;  // dense -> ValueId, ascending
  std::vector<CategoryTypeIndex> category_of_;
  std::vector<Lifespan> membership_of_;

  std::vector<std::uint32_t> category_begin_;   // category_count_ + 1
  std::vector<std::uint32_t> category_values_;  // dense ids, sorted

  std::vector<std::uint32_t> up_begin_;  // value_count() + 1
  std::vector<std::uint32_t> up_target_;
  std::vector<Lifespan> up_life_;
  std::vector<double> up_prob_;
  std::vector<std::uint32_t> down_begin_;
  std::vector<std::uint32_t> down_target_;
  std::vector<Lifespan> down_life_;
  std::vector<double> down_prob_;

  std::vector<std::uint32_t> flat_ancestor_;  // value_count() * categories
  std::vector<double> flat_prob_;
};

}  // namespace mddc

#endif  // MDDC_ENGINE_ROLLUP_INDEX_H_
