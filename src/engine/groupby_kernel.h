#ifndef MDDC_ENGINE_GROUPBY_KERNEL_H_
#define MDDC_ENGINE_GROUPBY_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/flat_hash.h"
#include "core/dimension.h"
#include "engine/rollup_index.h"

namespace mddc {

/// Shared building blocks of the group-by kernels (docs/groupby_kernel.md):
/// the dense row-major slot space an aggregate formation composes from the
/// compiled rollup index, and the open-addressing flat-hash group index the
/// sparse paths (and relational group-by) fall back to. Both exist to kill
/// the per-fact heap-allocated GroupKey and the std::map node churn of the
/// ordered-map baseline; the baseline itself stays untouched as the
/// no-context differential ground truth.

/// FNV-1a over `n` surrogate ids, byte by byte — the group-key hash shared
/// by the flat-hash group index and the parallel partitioner, so a key's
/// owning partition and its table slot derive from one computation.
std::uint64_t HashValueIds(const ValueId* ids, std::size_t n);

/// A row-major slot space over the grouping categories of an aggregate
/// formation. Dimension 0 is the most significant digit and each
/// dimension's digit is the rank of the coordinate value within its
/// grouping category (categories are sorted by ValueId in the rollup
/// snapshot), so ascending slot order IS the lexicographic ValueId key
/// order of the ordered-map baseline — canonical output order falls out of
/// the layout instead of a sort.
///
/// Holds raw pointers into the RollupIndex snapshots it was built from;
/// callers keep those snapshots alive for the space's lifetime.
class DenseSlotSpace {
 public:
  enum class Plan {
    /// Every grouping dimension is covered (flat table or fixed at top)
    /// and the slot cross-product fits the threshold.
    kDense,
    /// Structurally dense, but the cross-product exceeds `max_slots`.
    kTooManySlots,
    /// Some grouping dimension has no usable flat rollup table.
    kNotIndexed,
  };

  /// One grouping dimension: either backed by a compiled snapshot (the
  /// grouping category's values become the digit range) or fixed to a
  /// single value (a dimension grouped at top contributes one digit).
  struct GroupingDim {
    const RollupIndex* index = nullptr;  // null => fixed single-value dim
    CategoryTypeIndex category = 0;
    ValueId fixed_value{};  // used when index == nullptr
  };

  /// Plans the slot space. Returns kDense and fills `out` when the
  /// overflow-checked cross-product of category cardinalities is at most
  /// `max_slots`; otherwise reports why the dense engine cannot run.
  static Plan Build(const std::vector<GroupingDim>& dims,
                    std::uint64_t max_slots, DenseSlotSpace* out);

  std::uint64_t slot_count() const { return slot_count_; }
  std::size_t dim_count() const { return dims_.size(); }
  std::uint64_t cardinality(std::size_t i) const { return dims_[i].card; }
  bool fixed(std::size_t i) const { return dims_[i].index == nullptr; }

  /// The digit of dense value `dense` in dimension `i`: its rank within
  /// the grouping category. Only valid for values the flat table resolved
  /// into the category (ancestors at it); fixed dimensions always use 0.
  std::uint32_t OrdinalOf(std::size_t i, std::uint32_t dense) const {
    return dims_[i].ordinal_of_dense[dense];
  }

  /// Decomposes `slot` back into the grouping ValueIds, one per dimension
  /// — the inverse of the row-major composition.
  void KeyOf(std::uint64_t slot, std::vector<ValueId>& key) const;

 private:
  struct Dim {
    const RollupIndex* index = nullptr;
    ValueId fixed_value{};
    std::uint64_t card = 1;
    const std::uint32_t* range = nullptr;  // category dense ids, ascending
    std::vector<std::uint32_t> ordinal_of_dense;
  };

  std::vector<Dim> dims_;
  std::uint64_t slot_count_ = 1;
};

/// The open-addressing group index is now the shared FlatHashIndex in
/// common/flat_hash.h (the same table backs the string interner and the
/// fact-term/per-fact-entry indexes). This subclass only preserves the
/// kernel-side name for the "slot empty / no group" sentinel.
class FlatHashGroupIndex : public FlatHashIndex {
 public:
  /// Sentinel ordinal: "slot empty" / "no group".
  static constexpr std::uint32_t kNoGroup = FlatHashIndex::kNone;
};

}  // namespace mddc

#endif  // MDDC_ENGINE_GROUPBY_KERNEL_H_
