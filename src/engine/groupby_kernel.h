#ifndef MDDC_ENGINE_GROUPBY_KERNEL_H_
#define MDDC_ENGINE_GROUPBY_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/dimension.h"
#include "engine/rollup_index.h"

namespace mddc {

/// Shared building blocks of the group-by kernels (docs/groupby_kernel.md):
/// the dense row-major slot space an aggregate formation composes from the
/// compiled rollup index, and the open-addressing flat-hash group index the
/// sparse paths (and relational group-by) fall back to. Both exist to kill
/// the per-fact heap-allocated GroupKey and the std::map node churn of the
/// ordered-map baseline; the baseline itself stays untouched as the
/// no-context differential ground truth.

/// FNV-1a over `n` surrogate ids, byte by byte — the group-key hash shared
/// by the flat-hash group index and the parallel partitioner, so a key's
/// owning partition and its table slot derive from one computation.
std::uint64_t HashValueIds(const ValueId* ids, std::size_t n);

/// A row-major slot space over the grouping categories of an aggregate
/// formation. Dimension 0 is the most significant digit and each
/// dimension's digit is the rank of the coordinate value within its
/// grouping category (categories are sorted by ValueId in the rollup
/// snapshot), so ascending slot order IS the lexicographic ValueId key
/// order of the ordered-map baseline — canonical output order falls out of
/// the layout instead of a sort.
///
/// Holds raw pointers into the RollupIndex snapshots it was built from;
/// callers keep those snapshots alive for the space's lifetime.
class DenseSlotSpace {
 public:
  enum class Plan {
    /// Every grouping dimension is covered (flat table or fixed at top)
    /// and the slot cross-product fits the threshold.
    kDense,
    /// Structurally dense, but the cross-product exceeds `max_slots`.
    kTooManySlots,
    /// Some grouping dimension has no usable flat rollup table.
    kNotIndexed,
  };

  /// One grouping dimension: either backed by a compiled snapshot (the
  /// grouping category's values become the digit range) or fixed to a
  /// single value (a dimension grouped at top contributes one digit).
  struct GroupingDim {
    const RollupIndex* index = nullptr;  // null => fixed single-value dim
    CategoryTypeIndex category = 0;
    ValueId fixed_value{};  // used when index == nullptr
  };

  /// Plans the slot space. Returns kDense and fills `out` when the
  /// overflow-checked cross-product of category cardinalities is at most
  /// `max_slots`; otherwise reports why the dense engine cannot run.
  static Plan Build(const std::vector<GroupingDim>& dims,
                    std::uint64_t max_slots, DenseSlotSpace* out);

  std::uint64_t slot_count() const { return slot_count_; }
  std::size_t dim_count() const { return dims_.size(); }
  std::uint64_t cardinality(std::size_t i) const { return dims_[i].card; }
  bool fixed(std::size_t i) const { return dims_[i].index == nullptr; }

  /// The digit of dense value `dense` in dimension `i`: its rank within
  /// the grouping category. Only valid for values the flat table resolved
  /// into the category (ancestors at it); fixed dimensions always use 0.
  std::uint32_t OrdinalOf(std::size_t i, std::uint32_t dense) const {
    return dims_[i].ordinal_of_dense[dense];
  }

  /// Decomposes `slot` back into the grouping ValueIds, one per dimension
  /// — the inverse of the row-major composition.
  void KeyOf(std::uint64_t slot, std::vector<ValueId>& key) const;

 private:
  struct Dim {
    const RollupIndex* index = nullptr;
    ValueId fixed_value{};
    std::uint64_t card = 1;
    const std::uint32_t* range = nullptr;  // category dense ids, ascending
    std::vector<std::uint32_t> ordinal_of_dense;
  };

  std::vector<Dim> dims_;
  std::uint64_t slot_count_ = 1;
};

/// An open-addressing (linear-probe, power-of-two capacity) map from a
/// group key's hash to a caller-assigned dense group ordinal. The table
/// stores only (hash, ordinal) pairs; the caller owns key storage and
/// supplies the equality probe, so keys of any shape — a fixed-stride run
/// of ValueIds, a std::vector<Value> tuple — intern without per-key heap
/// nodes. Not thread-safe; the parallel paths give each partition its own
/// index.
class FlatHashGroupIndex {
 public:
  /// Sentinel ordinal: "slot empty" / "no group".
  static constexpr std::uint32_t kNoGroup = 0xffffffffu;

  FlatHashGroupIndex() { Rehash(16); }

  std::size_t size() const { return size_; }

  /// Looks up `hash`; `eq(ordinal)` must return true iff the caller's key
  /// equals the key it stored under `ordinal`. On a miss the key is
  /// recorded under `next_ordinal` and `*inserted` is set; the caller then
  /// appends the key (and its accumulator) to its own storage so the
  /// ordinal stays dense.
  template <typename Eq>
  std::uint32_t FindOrInsert(std::uint64_t hash, std::uint32_t next_ordinal,
                             const Eq& eq, bool* inserted) {
    if ((size_ + 1) * 10 >= hashes_.size() * 7) Rehash(hashes_.size() * 2);
    std::size_t pos = static_cast<std::size_t>(hash) & mask_;
    while (true) {
      if (ordinals_[pos] == kNoGroup) {
        ordinals_[pos] = next_ordinal;
        hashes_[pos] = hash;
        ++size_;
        *inserted = true;
        return next_ordinal;
      }
      if (hashes_[pos] == hash && eq(ordinals_[pos])) {
        *inserted = false;
        return ordinals_[pos];
      }
      pos = (pos + 1) & mask_;
    }
  }

 private:
  void Rehash(std::size_t capacity);

  std::vector<std::uint64_t> hashes_;
  std::vector<std::uint32_t> ordinals_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace mddc

#endif  // MDDC_ENGINE_GROUPBY_KERNEL_H_
