#ifndef MDDC_MDQL_AST_H_
#define MDDC_MDQL_AST_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mdql/names.h"

namespace mddc {
namespace mdql {

/// A reference to a category of a dimension: "Diagnosis.Diagnosis-Group"
/// or "Diagnosis.\"Diagnosis Group\"".
/// Identifier fields throughout the AST are interned Names (names.h):
/// the parser resolves each identifier to a 4-byte handle once, and the
/// compiler, binder and session catalog pass handles instead of string
/// copies. String *literals* (compared names, date literals) stay
/// std::string — they are data, not identifiers.
struct LevelRef {
  Name dimension;
  Name category;
};

/// One aggregate of the SELECT list: COUNT (set-count of facts) or
/// FN(dimension) with FN in {COUNT, SUM, AVG, MIN, MAX}.
struct AggRef {
  enum class Fn { kSetCount, kCount, kSum, kAvg, kMin, kMax };
  Fn fn = Fn::kSetCount;
  Name dimension;     // empty for set-count
  std::string label;  // rendered column name
};

/// One grouping column: a level reference plus the representation used to
/// label groups (default: first of Name, Code, Value that exists).
struct GroupRef {
  LevelRef level;
  Name representation;  // empty = automatic
};

/// A WHERE atom. Exactly one of the forms is populated:
///  * name:   dimension.category = 'text'   (representation lookup)
///  * number: dimension >= 42               (numeric on directly related
///                                           values)
///  * prob:   PROB(dimension.category = 'text') >= 0.8
struct WhereAtom {
  enum class Kind { kNameEquals, kNumericCompare, kProbAtLeast };
  Kind kind = Kind::kNameEquals;
  bool negated = false;

  LevelRef level;    // kNameEquals, kProbAtLeast
  std::string text;  // the compared name
  Name dimension;    // kNumericCompare
  enum class Cmp { kLt, kLe, kEq, kGe, kGt, kNe };
  Cmp cmp = Cmp::kEq;
  double number = 0.0;  // numeric bound or probability threshold
};

/// A boolean WHERE expression: atoms combined with AND/OR (NOT lives on
/// the atoms), parenthesization preserved by the tree shape.
struct WhereExpr {
  enum class Kind { kAtom, kAnd, kOr };
  Kind kind = Kind::kAtom;
  WhereAtom atom;  // kAtom
  std::shared_ptr<const WhereExpr> left;
  std::shared_ptr<const WhereExpr> right;
};

/// SELECT <aggs> FROM <mo> [BY <groups>] [WHERE <boolean expr>]
/// [ASOF 'dd/mm/yyyy'].
struct SelectStatement {
  std::vector<AggRef> aggregates;
  Name mo_name;
  std::vector<GroupRef> group_by;
  std::shared_ptr<const WhereExpr> where;  // null = no restriction
  std::optional<std::string> as_of;  // date literal
};

/// One characterization of an INSERT: relate the new fact to the value
/// named `text` in `level`, with probability `prob`.
struct InsertAssignment {
  LevelRef level;
  std::string text;
  double prob = 1.0;
};

/// One fact of a (possibly bulk) INSERT: the external key plus the
/// characterizations to relate it to.
struct InsertFact {
  std::uint64_t key = 0;
  std::vector<InsertAssignment> assignments;
};

/// INSERT INTO <mo> FACT <key> (<level> = '<text>' [PROB <p>], ...)
///   [, FACT <key> (...)]*
/// — the appending statement of the serving tier. Adds each atomic fact
/// with its external key and relates it to the named values; dimensions
/// left out are covered with top per the paper's convention for unknown
/// characterizations. All facts of one statement resolve before any
/// mutation and publish as ONE epoch, which is what makes the store's
/// batched-append fast path (docs/ingestion.md) pay off.
struct InsertStatement {
  Name mo_name;
  std::vector<InsertFact> facts;
};

/// DELETE FROM <mo> FACT <key> — removes the fact and every
/// characterization referencing it. Deletes are structural
/// invalidations, not appends: the serving tier routes them through the
/// full-rebuild sealing path (docs/ingestion.md), never the incremental
/// one, and the acknowledgment says so.
struct DeleteStatement {
  Name mo_name;
  std::uint64_t key = 0;
};

/// SHOW DIMENSIONS FROM <mo> — lists the dimension types.
/// SHOW HIERARCHY <dimension> FROM <mo> — renders one lattice.
/// SHOW PATHS <dimension> FROM <mo> — lists the aggregation paths
/// (requirement 3's multiple hierarchies) from the bottom category to TOP.
struct ShowStatement {
  enum class What { kDimensions, kHierarchy, kPaths };
  What what = What::kDimensions;
  Name dimension;  // kHierarchy only
  Name mo_name;
};

/// A parsed statement: exactly one of select/show/insert/del is set.
/// With `explain` the session does not execute the statement; it renders
/// the compiler's logical plan before/after rewrites and the chosen
/// physical operators instead (docs/mdql_compiler.md).
struct Statement {
  std::optional<SelectStatement> select;
  std::optional<ShowStatement> show;
  std::optional<InsertStatement> insert;
  std::optional<DeleteStatement> del;
  bool explain = false;

  /// The raw source text, filled by Parse(). The session's plan cache
  /// keys on it (together with the target MO's version); statements
  /// constructed by hand carry no text and simply bypass the cache.
  std::string text;
};

}  // namespace mdql
}  // namespace mddc

#endif  // MDDC_MDQL_AST_H_
