#include "mdql/plan.h"

#include <map>
#include <utility>

#include "common/strings.h"

namespace mddc {
namespace mdql {

PlanRef MakeScan(Name mo_name, const MdObject* mo) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kScan;
  node->mo_name = mo_name;
  node->mo = mo;
  return node;
}

PlanRef MakeTimeslice(PlanRef child, std::string as_of) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kTimeslice;
  node->children.push_back(std::move(child));
  node->as_of = std::move(as_of);
  return node;
}

PlanRef MakeSelect(PlanRef child, const WhereExpr* where) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kSelect;
  node->children.push_back(std::move(child));
  node->where = where;
  return node;
}

PlanRef MakeAggregate(PlanRef child, std::vector<AggRef> aggregates,
                      std::vector<GroupRef> group_by) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kAggregate;
  node->children.push_back(std::move(child));
  node->aggregates = std::move(aggregates);
  node->group_by = std::move(group_by);
  return node;
}

PlanRef MakeMerge(std::vector<PlanRef> children) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kMerge;
  node->children = std::move(children);
  return node;
}

PlanRef MakeJoin(PlanRef left, PlanRef right, JoinPredicate predicate) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kJoin;
  node->children.push_back(std::move(left));
  node->children.push_back(std::move(right));
  node->join_predicate = predicate;
  return node;
}

PlanRef LowerSelect(Name mo_name, const MdObject* mo,
                    const SelectStatement& select) {
  PlanRef scan = MakeScan(mo_name, mo);
  std::vector<PlanRef> branches;
  const std::size_t n =
      select.aggregates.empty() ? 1 : select.aggregates.size();
  for (std::size_t a = 0; a < n; ++a) {
    PlanRef chain = scan;
    if (select.as_of.has_value()) {
      chain = MakeTimeslice(std::move(chain), *select.as_of);
    }
    if (select.where != nullptr) {
      chain = MakeSelect(std::move(chain), select.where.get());
    }
    std::vector<AggRef> aggregates;
    if (!select.aggregates.empty()) {
      aggregates.push_back(select.aggregates[a]);
    }
    branches.push_back(MakeAggregate(std::move(chain), std::move(aggregates),
                                     select.group_by));
  }
  return MakeMerge(std::move(branches));
}

namespace {

const char* CmpText(WhereAtom::Cmp cmp) {
  switch (cmp) {
    case WhereAtom::Cmp::kLt: return "<";
    case WhereAtom::Cmp::kLe: return "<=";
    case WhereAtom::Cmp::kEq: return "=";
    case WhereAtom::Cmp::kGe: return ">=";
    case WhereAtom::Cmp::kGt: return ">";
    case WhereAtom::Cmp::kNe: return "<>";
  }
  return "?";
}

std::string RenderAtom(const WhereAtom& atom) {
  std::string body;
  switch (atom.kind) {
    case WhereAtom::Kind::kNameEquals:
      body = StrCat(atom.level.dimension, ".\"", atom.level.category, "\" = '",
                    atom.text, "'");
      break;
    case WhereAtom::Kind::kNumericCompare:
      body = StrCat(atom.dimension, " ", CmpText(atom.cmp), " ",
                    FormatDouble(atom.number));
      break;
    case WhereAtom::Kind::kProbAtLeast:
      body = StrCat("PROB(", atom.level.dimension, ".\"", atom.level.category,
                    "\" = '", atom.text, "') >= ", FormatDouble(atom.number));
      break;
  }
  if (atom.negated) return StrCat("NOT ", body);
  return body;
}

}  // namespace

std::string RenderWhere(const WhereExpr& expr) {
  switch (expr.kind) {
    case WhereExpr::Kind::kAtom:
      return RenderAtom(expr.atom);
    case WhereExpr::Kind::kAnd:
      return StrCat("(", RenderWhere(*expr.left), " AND ",
                    RenderWhere(*expr.right), ")");
    case WhereExpr::Kind::kOr:
      return StrCat("(", RenderWhere(*expr.left), " OR ",
                    RenderWhere(*expr.right), ")");
  }
  return "?";
}

namespace {

std::string Describe(const PlanNode& node) {
  switch (node.kind) {
    case PlanKind::kScan:
      if (node.mo != nullptr) {
        return StrCat("scan ", node.mo_name, " (", node.mo->facts().size(),
                      " facts, ", node.mo->dimension_count(), " dims)");
      }
      return StrCat("scan ", node.mo_name);
    case PlanKind::kTimeslice:
      return StrCat("timeslice ASOF '", node.as_of, "'");
    case PlanKind::kSelect:
      return StrCat("select ",
                    node.where != nullptr ? RenderWhere(*node.where) : "true");
    case PlanKind::kAggregate: {
      std::vector<std::string> parts;
      for (const AggRef& agg : node.aggregates) parts.push_back(agg.label);
      std::string out = StrCat("aggregate {", Join(parts, ", "), "}");
      if (!node.group_by.empty()) {
        parts.clear();
        for (const GroupRef& group : node.group_by) {
          parts.push_back(StrCat(group.level.dimension, ".\"",
                                 group.level.category, "\""));
        }
        out += StrCat(" by {", Join(parts, ", "), "}");
      }
      if (node.prune_dead) out += " [dead dims pruned]";
      return out;
    }
    case PlanKind::kMerge:
      return StrCat("merge (", node.children.size(), " branches)");
    case PlanKind::kJoin:
      switch (node.join_predicate) {
        case JoinPredicate::kEqual: return "join (=)";
        case JoinPredicate::kNotEqual: return "join (<>)";
        case JoinPredicate::kTrue: return "join (x)";
      }
      return "join";
  }
  return "?";
}

void CountParents(const PlanRef& node, std::map<const PlanNode*, int>& refs) {
  if (++refs[node.get()] > 1) return;
  for (const PlanRef& child : node->children) CountParents(child, refs);
}

void PrintNode(const PlanRef& node, int depth,
               const std::map<const PlanNode*, int>& refs,
               std::map<const PlanNode*, int>& shared_ids, std::string& out) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
  const bool shared = refs.at(node.get()) > 1;
  auto it = shared_ids.find(node.get());
  if (it != shared_ids.end()) {
    out += StrCat("^ shared #", it->second, "\n");
    return;
  }
  out += Describe(*node);
  if (shared) {
    const int id = static_cast<int>(shared_ids.size()) + 1;
    shared_ids.emplace(node.get(), id);
    out += StrCat(" [shared #", id, "]");
  }
  out += "\n";
  for (const PlanRef& child : node->children) {
    PrintNode(child, depth + 1, refs, shared_ids, out);
  }
}

}  // namespace

std::string PrintPlan(const PlanRef& plan) {
  std::string out;
  if (plan == nullptr) return out;
  std::map<const PlanNode*, int> refs;
  CountParents(plan, refs);
  std::map<const PlanNode*, int> shared_ids;
  PrintNode(plan, 0, refs, shared_ids, out);
  return out;
}

}  // namespace mdql
}  // namespace mddc
