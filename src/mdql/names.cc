#include "mdql/names.h"

#include <deque>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

namespace mddc {
namespace mdql {
namespace {

/// The process-wide identifier table. Texts live in a deque<std::string>
/// (stable addresses across growth), the map keys are views into that
/// storage, and by-id lookup is a plain vector of views. Leaked on
/// purpose: Names may be consulted during static destruction.
struct NameTable {
  std::shared_mutex mu;
  std::unordered_map<std::string_view, std::uint32_t> ids;
  std::deque<std::string> storage;
  std::vector<std::string_view> views;

  NameTable() {
    storage.emplace_back();  // id 0 = ""
    views.push_back(storage.back());
    ids.emplace(views.back(), 0);
  }

  std::uint32_t Intern(std::string_view text) {
    {
      std::shared_lock<std::shared_mutex> lock(mu);
      auto it = ids.find(text);
      if (it != ids.end()) return it->second;
    }
    std::unique_lock<std::shared_mutex> lock(mu);
    auto it = ids.find(text);
    if (it != ids.end()) return it->second;
    storage.emplace_back(text);
    const auto id = static_cast<std::uint32_t>(views.size());
    views.push_back(storage.back());
    ids.emplace(views.back(), id);
    return id;
  }

  std::string_view ViewOf(std::uint32_t id) {
    std::shared_lock<std::shared_mutex> lock(mu);
    return views[id];
  }
};

NameTable& Table() {
  static NameTable& table = *new NameTable;
  return table;
}

}  // namespace

Name Name::Of(std::string_view text) { return Name(Table().Intern(text)); }

std::string_view Name::view() const { return Table().ViewOf(id_); }

std::ostream& operator<<(std::ostream& os, const Name& name) {
  return os << name.view();
}

}  // namespace mdql
}  // namespace mddc
