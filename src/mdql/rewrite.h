#ifndef MDDC_MDQL_REWRITE_H_
#define MDDC_MDQL_REWRITE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mdql/plan.h"

namespace mddc {

struct ExecContext;  // engine/executor.h

namespace mdql {

/// The logical rewrite rules (docs/mdql_compiler.md). Each bit gates one
/// rule so tests and the bench ablation can run any subset.
inline constexpr std::uint32_t kRuleHoistTimeslice = 1u << 0;
inline constexpr std::uint32_t kRuleMergeSiblingAggregates = 1u << 1;
inline constexpr std::uint32_t kRuleSelectBelowAggregate = 1u << 2;
inline constexpr std::uint32_t kRuleSelectBelowJoin = 1u << 3;
inline constexpr std::uint32_t kRuleCollapseRollup = 1u << 4;
inline constexpr std::uint32_t kRulePruneDeadDimensions = 1u << 5;
inline constexpr std::uint32_t kAllRules = (1u << 6) - 1;

struct RewriteOptions {
  std::uint32_t rule_mask = kAllRules;
};

/// Compiler configuration carried by a Session. The defaults are the
/// production setting: compile every SELECT, run every rule, fuse when
/// the optimized shape is covered. Turning `enable_compiler` off pins
/// the session to the tree-walk interpreter (the stress oracle's replay
/// side does this, making the oracle a live compiled-vs-interpreted
/// differential); `enable_fusion` off keeps the rewrites but forces the
/// tree-walk fallback, isolating the physical layer in benches.
struct CompileOptions {
  bool enable_compiler = true;
  RewriteOptions rewrites;
  bool enable_fusion = true;
};

/// The rewritten plan plus one entry per rule application, in firing
/// order (EXPLAIN prints them; tests assert on them).
struct RewriteOutcome {
  PlanRef plan;
  std::vector<std::string> fired;
};

/// Runs the enabled rules to a fixpoint over the plan DAG. Nodes are
/// rewritten in place (plans are single-statement values); the returned
/// root may differ from the input when a root-level pattern fired.
/// `exec` (optional) advances stats.rewrites_applied by the number of
/// applications — EXPLAIN passes null so plan display never perturbs
/// counters.
RewriteOutcome Rewrite(PlanRef plan, const RewriteOptions& options,
                       ExecContext* exec = nullptr);

}  // namespace mdql
}  // namespace mddc

#endif  // MDDC_MDQL_REWRITE_H_
