#ifndef MDDC_MDQL_MDQL_H_
#define MDDC_MDQL_MDQL_H_

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/md_object.h"
#include "mdql/ast.h"
#include "mdql/rewrite.h"

namespace mddc {

struct ExecContext;  // engine/executor.h

namespace mdql {

/// MDQL is a small textual query language over multidimensional objects,
/// planned onto the paper's algebra. It exists for two reasons: it makes
/// the examples and benches expressive, and it realizes the paper's
/// future-work idea of putting the schema lattices at the user's
/// fingertips (SHOW DIMENSIONS / SHOW HIERARCHY navigate them).
///
///   SELECT COUNT FROM patients
///     BY Diagnosis."Diagnosis Group" AS Code
///     WHERE Residence.Region = 'Capital Region'
///     ASOF '01/06/1999'
///
///   SELECT SUM(Amount), AVG(Price) FROM sales BY Product.Category
///
///   SELECT COUNT FROM patients
///     WHERE PROB(Diagnosis."Diagnosis Family" = 'E10') >= 0.8
///
///   SHOW DIMENSIONS FROM patients
///   SHOW HIERARCHY Diagnosis FROM patients
///
/// Semantics: WHERE atoms select facts by characterization (names resolve
/// through the representations of the referenced category); ASOF applies
/// a valid-timeslice before everything else; BY groups via aggregate
/// formation; multiple aggregates run over the same grouping and merge
/// into one row set.

/// A rendered query result: column headers plus string rows.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;

  /// Aligned ASCII table.
  std::string ToString() const;
};

/// True when executing the statement mutates the target MO (today:
/// INSERT, unless EXPLAINed — EXPLAIN only renders the plan). The
/// serving tier (src/serve) routes mutating statements through the
/// store's serialized writer and everything else through a pinned
/// immutable snapshot.
bool IsMutating(const Statement& statement);

/// The name of the MO the statement targets (a view of the interned
/// identifier; valid for the life of the process).
std::string_view StatementMoName(const Statement& statement);

/// Applies an INSERT to an MO in place: interns the atomic fact for the
/// statement's key in the MO's registry, adds it to the fact set,
/// relates it to each named value (resolved through the category's
/// representations) with the given probability, and covers untouched
/// dimensions with top. Returns a one-row acknowledgment. Exposed as a
/// free function so the serving tier's writer can reuse it on drafts.
Result<QueryResult> ApplyInsert(MdObject& mo, const InsertStatement& insert);

/// A catalog of named MOs plus the query entry point.
class Session {
 public:
  /// Registers an MO under a (unique) name.
  Status Register(std::string name, MdObject mo);

  /// Names of registered MOs.
  std::vector<std::string> names() const;

  /// Looks up a registered MO (e.g. for saving it to disk).
  /// Allocation-free: the transparent catalog comparator probes by view.
  Result<const MdObject*> Get(std::string_view name) const;

  /// Parses, plans and executes one MDQL statement. `exec` (optional) is
  /// threaded through the plan — the ASOF valid-timeslice and the BY
  /// aggregate formation — so query-language users reach the parallel
  /// engine; the rendered result is identical with or without it.
  Result<QueryResult> Execute(const std::string& query,
                              ExecContext* exec = nullptr);

  /// Executes an already-parsed statement. The serving tier parses once,
  /// classifies with IsMutating(), and then routes reads here against a
  /// snapshot view while writes go through the store's writer.
  Result<QueryResult> Execute(const Statement& statement,
                              ExecContext* exec = nullptr);

  /// Compiler configuration for this session's SELECTs (rewrite.h). The
  /// default compiles and fuses everything; the stress oracle's replay
  /// session turns the compiler off to serve as the interpreted side of
  /// a compiled-vs-interpreted differential.
  void set_compile_options(const CompileOptions& options) {
    compile_options_ = options;
  }
  const CompileOptions& compile_options() const { return compile_options_; }

 private:
  Result<QueryResult> ExecuteImpl(const Statement& statement,
                                  ExecContext* exec);

  // Transparent comparator: name lookups probe with a string_view without
  // materializing a key string.
  std::map<std::string, MdObject, std::less<>> catalog_;
  CompileOptions compile_options_;
};

}  // namespace mdql
}  // namespace mddc

#endif  // MDDC_MDQL_MDQL_H_
