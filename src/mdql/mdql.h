#ifndef MDDC_MDQL_MDQL_H_
#define MDDC_MDQL_MDQL_H_

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/md_object.h"
#include "mdql/ast.h"
#include "mdql/rewrite.h"

namespace mddc {

struct ExecContext;  // engine/executor.h

namespace mdql {

/// MDQL is a small textual query language over multidimensional objects,
/// planned onto the paper's algebra. It exists for two reasons: it makes
/// the examples and benches expressive, and it realizes the paper's
/// future-work idea of putting the schema lattices at the user's
/// fingertips (SHOW DIMENSIONS / SHOW HIERARCHY navigate them).
///
///   SELECT COUNT FROM patients
///     BY Diagnosis."Diagnosis Group" AS Code
///     WHERE Residence.Region = 'Capital Region'
///     ASOF '01/06/1999'
///
///   SELECT SUM(Amount), AVG(Price) FROM sales BY Product.Category
///
///   SELECT COUNT FROM patients
///     WHERE PROB(Diagnosis."Diagnosis Family" = 'E10') >= 0.8
///
///   SHOW DIMENSIONS FROM patients
///   SHOW HIERARCHY Diagnosis FROM patients
///
/// Semantics: WHERE atoms select facts by characterization (names resolve
/// through the representations of the referenced category); ASOF applies
/// a valid-timeslice before everything else; BY groups via aggregate
/// formation; multiple aggregates run over the same grouping and merge
/// into one row set.

/// A rendered query result: column headers plus string rows.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;

  /// Aligned ASCII table.
  std::string ToString() const;
};

/// True when executing the statement mutates the target MO (INSERT and
/// DELETE, unless EXPLAINed — EXPLAIN only renders the plan). The
/// serving tier (src/serve) routes mutating statements through the
/// store's serialized writer — INSERTs through the batched-append fast
/// path, DELETEs through the full-rebuild path — and everything else
/// through a pinned immutable snapshot.
bool IsMutating(const Statement& statement);

/// The name of the MO the statement targets (a view of the interned
/// identifier; valid for the life of the process).
std::string_view StatementMoName(const Statement& statement);

/// Applies an INSERT to an MO in place: interns the atomic fact for each
/// FACT group's key in the MO's registry, adds it to the fact set,
/// relates it to each named value (resolved through the category's
/// representations) with the given probability, and covers untouched
/// dimensions with top. The whole batch resolves before any mutation, so
/// one bad name leaves the MO untouched. Returns one acknowledgment row
/// per fact. Exposed as a free function so the serving tier's writer can
/// reuse it on drafts.
Result<QueryResult> ApplyInsert(MdObject& mo, const InsertStatement& insert);

/// Applies a DELETE to an MO in place: removes the fact with the
/// statement's key from the fact set and every relation. Deletes are
/// never maintained incrementally — the acknowledgment's "path" column
/// says "full-rebuild" and the serving tier seals the draft from
/// scratch (docs/ingestion.md). NotFound when no such fact exists.
Result<QueryResult> ApplyDelete(MdObject& mo, const DeleteStatement& del);

/// A catalog of named MOs plus the query entry point.
class Session {
 public:
  /// Registers an MO under a (unique) name.
  Status Register(std::string name, MdObject mo);

  /// Names of registered MOs.
  std::vector<std::string> names() const;

  /// Looks up a registered MO (e.g. for saving it to disk).
  /// Allocation-free: the transparent catalog comparator probes by view.
  Result<const MdObject*> Get(std::string_view name) const;

  /// Parses, plans and executes one MDQL statement. `exec` (optional) is
  /// threaded through the plan — the ASOF valid-timeslice and the BY
  /// aggregate formation — so query-language users reach the parallel
  /// engine; the rendered result is identical with or without it.
  Result<QueryResult> Execute(const std::string& query,
                              ExecContext* exec = nullptr);

  /// Executes an already-parsed statement. The serving tier parses once,
  /// classifies with IsMutating(), and then routes reads here against a
  /// snapshot view while writes go through the store's writer.
  Result<QueryResult> Execute(const Statement& statement,
                              ExecContext* exec = nullptr);

  /// Compiler configuration for this session's SELECTs (rewrite.h). The
  /// default compiles and fuses everything; the stress oracle's replay
  /// session turns the compiler off to serve as the interpreted side of
  /// a compiled-vs-interpreted differential. Changing the options drops
  /// the plan cache — cached decisions were made under the old rules.
  void set_compile_options(const CompileOptions& options) {
    compile_options_ = options;
    plan_cache_.clear();
  }
  const CompileOptions& compile_options() const { return compile_options_; }

 private:
  /// One plan-cache entry: the compiler's fuse-or-fallback decision for
  /// a statement text, valid while the target MO is at `version`. The
  /// decision is the whole compiled artifact — the fused stream executes
  /// straight off the AST — so a hit skips lowering, the rewrite
  /// fixpoint and the shape check entirely (stats.plan_cache_hits).
  struct PlanCacheEntry {
    std::uint64_t version = 0;
    bool fused = false;
  };

  Result<QueryResult> ExecuteImpl(const Statement& statement,
                                  ExecContext* exec);

  // Transparent comparator: name lookups probe with a string_view without
  // materializing a key string.
  std::map<std::string, MdObject, std::less<>> catalog_;
  CompileOptions compile_options_;
  /// Keyed on raw statement text (which names the MO, so one key never
  /// spans MOs). Bounded: wholesale-cleared at capacity.
  std::map<std::string, PlanCacheEntry, std::less<>> plan_cache_;
  /// Per-MO mutation counters: bumped on Register and on every
  /// successful INSERT/DELETE, so cached plan decisions made against an
  /// older shape of the MO self-invalidate.
  std::map<std::string, std::uint64_t, std::less<>> catalog_versions_;
};

}  // namespace mdql
}  // namespace mddc

#endif  // MDDC_MDQL_MDQL_H_
