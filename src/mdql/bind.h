#ifndef MDDC_MDQL_BIND_H_
#define MDDC_MDQL_BIND_H_

#include <string>

#include "algebra/agg_function.h"
#include "algebra/predicate.h"
#include "common/result.h"
#include "core/md_object.h"
#include "mdql/ast.h"
#include "mdql/mdql.h"

namespace mddc {

struct ExecContext;  // engine/executor.h

namespace mdql {

/// Name binding: the shared layer between the tree-walk interpreter and
/// the compiled pipeline (docs/mdql_compiler.md). Both paths resolve AST
/// names through exactly these functions, so a bad identifier produces
/// the same Status whichever engine answers the statement.

/// "dimension.category" resolved against an MO.
struct ResolvedLevel {
  std::size_t dim = 0;
  CategoryTypeIndex category = 0;
};

Result<ResolvedLevel> Resolve(const MdObject& mo, const LevelRef& level);

/// Finds the dimension value named `text` in the given category by
/// trying every representation registered for it. NotFound if no
/// representation knows the name. Each probe is an interned-hash lookup
/// (no key string materialized); `exec` (optional) counts resolutions
/// into stats.interner_hits / interner_misses.
Result<ValueId> ResolveValueByName(const MdObject& mo,
                                   const ResolvedLevel& level,
                                   const std::string& text,
                                   ExecContext* exec);

/// Picks the labeling representation for a grouping column: an explicit
/// request, else the first of Name / Code / Value that exists.
std::string PickRepresentation(const MdObject& mo, const ResolvedLevel& level,
                               const Name& requested);

/// Compiles a WHERE tree to an algebra predicate. An unknown value name
/// yields a predicate matching nothing (NOT then matches everything).
Result<Predicate> BuildWhere(const MdObject& mo, const WhereExpr& expr,
                             ExecContext* exec);

/// Binds one SELECT-list aggregate to its algebra function.
Result<AggFunction> BuildAggFunction(const MdObject& mo, const AggRef& agg);

/// The tree-walk interpreter for SELECT: timeslice, then a materialized
/// Select, then one full AggregateFormation per aggregate, merged by
/// group labels. The compiled pipeline's differential baseline and its
/// automatic fallback for uncovered plan shapes.
Result<QueryResult> ExecuteSelectTreeWalk(const MdObject& source,
                                          const SelectStatement& select,
                                          ExecContext* exec);

}  // namespace mdql
}  // namespace mddc

#endif  // MDDC_MDQL_BIND_H_
