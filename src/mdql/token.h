#ifndef MDDC_MDQL_TOKEN_H_
#define MDDC_MDQL_TOKEN_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace mddc {
namespace mdql {

/// Token kinds of the MDQL surface language (see mdql.h for the
/// grammar).
enum class TokenKind {
  kIdentifier,
  kString,   // '...'
  kNumber,   // 42, 3.5
  kComma,
  kDot,
  kLParen,
  kRParen,
  kEq,       // =
  kNe,       // <>
  kLt,
  kLe,
  kGt,
  kGe,
  // Keywords (case-insensitive in the source).
  kSelect,
  kFrom,
  kBy,
  kWhere,
  kAnd,
  kOr,
  kNot,
  kAsOf,
  kAs,
  kCount,
  kProb,
  kShow,
  kDimensions,
  kHierarchy,
  kPaths,
  kInsert,
  kInto,
  kFact,
  kDelete,
  kExplain,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;    // identifier/string/number text
  double number = 0.0;
  std::size_t offset = 0;  // position in the source, for error messages
};

/// Tokenizes an MDQL query. Identifiers may be bare
/// ([A-Za-z_][A-Za-z0-9_-]*) or double-quoted ("Date of Birth") for
/// names with spaces. String literals use single quotes.
Result<std::vector<Token>> Tokenize(const std::string& source);

/// Name of a token kind for diagnostics.
std::string_view TokenKindName(TokenKind kind);

}  // namespace mdql
}  // namespace mddc

#endif  // MDDC_MDQL_TOKEN_H_
