#ifndef MDDC_MDQL_PLAN_H_
#define MDDC_MDQL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/operators.h"
#include "core/md_object.h"
#include "mdql/ast.h"

namespace mddc {
namespace mdql {

/// The logical algebra IR behind compiled MDQL (docs/mdql_compiler.md).
/// A plan is a DAG of shared nodes: lowering gives every SELECT-list
/// aggregate its own operator chain over one shared Scan, and the
/// rewriter (mdql/rewrite.h) hoists the common prefixes back together,
/// merges the sibling aggregates and annotates what the physical layer
/// (mdql/physical.h) may prune. Nodes are mutable by the rewriter and
/// live for one statement; Scan borrows the session's catalog MO.
enum class PlanKind { kScan, kTimeslice, kSelect, kAggregate, kMerge, kJoin };

struct PlanNode;
using PlanRef = std::shared_ptr<PlanNode>;

struct PlanNode {
  PlanKind kind = PlanKind::kScan;
  std::vector<PlanRef> children;

  /// kScan: the named source, bound to the session catalog entry (not
  /// owned; valid for the statement's lifetime).
  Name mo_name;
  const MdObject* mo = nullptr;

  /// kTimeslice: the ASOF literal ('NOW' or a date).
  std::string as_of;

  /// kSelect: the WHERE tree, borrowed from the statement AST.
  const WhereExpr* where = nullptr;

  /// kAggregate: the functions folded over one grouping.
  std::vector<AggRef> aggregates;
  std::vector<GroupRef> group_by;
  /// Set by the prune-dead-dimensions rule: dimensions absent from
  /// group_by may be dropped from the scan (they contribute one fixed
  /// top coordinate). The fused stream only claims a plan whose dead
  /// dimensions are licensed by this flag.
  bool prune_dead = false;

  /// kJoin.
  JoinPredicate join_predicate = JoinPredicate::kEqual;
};

PlanRef MakeScan(Name mo_name, const MdObject* mo);
PlanRef MakeTimeslice(PlanRef child, std::string as_of);
PlanRef MakeSelect(PlanRef child, const WhereExpr* where);
PlanRef MakeAggregate(PlanRef child, std::vector<AggRef> aggregates,
                      std::vector<GroupRef> group_by);
PlanRef MakeMerge(std::vector<PlanRef> children);
PlanRef MakeJoin(PlanRef left, PlanRef right, JoinPredicate predicate);

/// Naive lowering of a SELECT: one branch per SELECT-list aggregate,
/// each a full Aggregate → [Select] → [Timeslice] → Scan chain (chain
/// nodes duplicated per branch, Scan shared), merged at the top. The
/// duplication is deliberate: it hands the rewriter the raw material for
/// timeslice hoisting and sibling-aggregate fusion, so EXPLAIN shows the
/// rules earning their keep on every multi-aggregate statement.
PlanRef LowerSelect(Name mo_name, const MdObject* mo,
                    const SelectStatement& select);

/// The WHERE tree in MDQL surface syntax (for plan printing).
std::string RenderWhere(const WhereExpr& expr);

/// Multi-line indented rendering of the plan DAG. Nodes with several
/// parents print their subtree once, tagged "[shared #k]", and later
/// references print "^ shared #k" — the sharing the rewriter introduced
/// is visible in EXPLAIN output.
std::string PrintPlan(const PlanRef& plan);

}  // namespace mdql
}  // namespace mddc

#endif  // MDDC_MDQL_PLAN_H_
