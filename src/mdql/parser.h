#ifndef MDDC_MDQL_PARSER_H_
#define MDDC_MDQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "mdql/ast.h"

namespace mddc {
namespace mdql {

/// Parses one MDQL statement. Grammar (keywords case-insensitive,
/// identifiers bare or double-quoted, strings single-quoted):
///
///   statement  := select | show | insert
///   select     := SELECT agg (',' agg)* FROM ident
///                 (BY group (',' group)*)?
///                 (WHERE atom (AND atom)*)?
///                 (ASOF string)?
///   agg        := COUNT | fn '(' ident ')'        fn in COUNT|SUM|AVG|
///                                                 MIN|MAX (identifiers)
///   group      := ident '.' ident (AS ident)?
///   atom       := (NOT)? ident '.' ident '=' string
///               | (NOT)? ident cmp number
///               | PROB '(' ident '.' ident '=' string ')' '>=' number
///   cmp        := '=' | '<>' | '<' | '<=' | '>' | '>='
///   show       := SHOW DIMENSIONS FROM ident
///               | SHOW HIERARCHY ident FROM ident
///   insert     := INSERT INTO ident FACT number
///                 '(' assign (',' assign)* ')'
///   assign     := ident '.' ident '=' string (PROB number)?
Result<Statement> Parse(const std::string& source);

}  // namespace mdql
}  // namespace mddc

#endif  // MDDC_MDQL_PARSER_H_
