#ifndef MDDC_MDQL_NAMES_H_
#define MDDC_MDQL_NAMES_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

namespace mddc {
namespace mdql {

/// An MDQL identifier interned into the process-wide name table once at
/// parse time (docs/mdql_compiler.md). A Name is a 4-byte handle; its
/// text lives in stable storage for the life of the process, so parse
/// trees, logical plans and session catalogs pass identifiers around
/// without ever copying the string again. Two Names compare equal exactly
/// when their texts are equal.
///
/// Unlike StringInterner (which is per-MO, single-writer), the table
/// behind Name::Of is guarded by a shared_mutex: concurrent serving-tier
/// sessions parse statements in parallel, and each distinct identifier
/// takes the write lock only the first time it is ever seen.
class Name {
 public:
  /// The empty name — id 0, view "".
  Name() = default;

  /// Interns `text` (first caller pays the copy, everyone after gets the
  /// existing id).
  static Name Of(std::string_view text);

  /// The interned text; valid for the life of the process.
  std::string_view view() const;

  /// The interned text as an owned string, for APIs that demand one.
  std::string str() const { return std::string(view()); }

  bool empty() const { return id_ == 0; }
  std::uint32_t id() const { return id_; }

  friend bool operator==(const Name& a, const Name& b) {
    return a.id_ == b.id_;
  }
  friend bool operator==(const Name& a, std::string_view b) {
    return a.view() == b;
  }
  friend bool operator!=(const Name& a, const Name& b) { return !(a == b); }
  friend bool operator!=(const Name& a, std::string_view b) {
    return !(a == b);
  }

 private:
  explicit Name(std::uint32_t id) : id_(id) {}

  std::uint32_t id_ = 0;
};

/// Streams the interned text (diagnostics, StrCat, test failure output).
std::ostream& operator<<(std::ostream& os, const Name& name);

}  // namespace mdql
}  // namespace mddc

#endif  // MDDC_MDQL_NAMES_H_
