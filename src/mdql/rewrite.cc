#include "mdql/rewrite.h"

#include <functional>
#include <map>
#include <set>
#include <tuple>
#include <utility>

#include "core/properties.h"
#include "engine/executor.h"
#include "mdql/bind.h"

namespace mddc {
namespace mdql {
namespace {

/// The scan MO below `node` through intermediate nodes that preserve the
/// scan's dimension structure (Select only — a timeslice can cut
/// hierarchy edges, which would invalidate strictness/partitioning
/// conclusions drawn from the scan MO).
const MdObject* FindScanMoThroughSelects(const PlanRef& node) {
  const PlanNode* cur = node.get();
  while (cur != nullptr) {
    if (cur->kind == PlanKind::kScan) return cur->mo;
    if (cur->kind != PlanKind::kSelect || cur->children.size() != 1) {
      return nullptr;
    }
    cur = cur->children[0].get();
  }
  return nullptr;
}

/// Like FindScanMoThroughSelects but timeslices are allowed: used by
/// rules whose soundness does not rest on hierarchy properties (a
/// top-grouped dimension is prunable in any MO).
const MdObject* FindScanMoThroughSchemaPreserving(const PlanRef& node) {
  const PlanNode* cur = node.get();
  while (cur != nullptr) {
    if (cur->kind == PlanKind::kScan) return cur->mo;
    if ((cur->kind != PlanKind::kSelect &&
         cur->kind != PlanKind::kTimeslice) ||
        cur->children.size() != 1) {
      return nullptr;
    }
    cur = cur->children[0].get();
  }
  return nullptr;
}

bool SameGroupBy(const std::vector<GroupRef>& a,
                 const std::vector<GroupRef>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].level.dimension != b[i].level.dimension ||
        a[i].level.category != b[i].level.category ||
        a[i].representation != b[i].representation) {
      return false;
    }
  }
  return true;
}

/// The grouping vector an Aggregate node induces on `mo` (tops, then one
/// overwrite per group column). False when a name does not resolve.
bool ResolveGrouping(const MdObject& mo, const std::vector<GroupRef>& group_by,
                     std::vector<CategoryTypeIndex>* grouping) {
  grouping->clear();
  grouping->reserve(mo.dimension_count());
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    grouping->push_back(mo.dimension(i).type().top());
  }
  for (const GroupRef& group : group_by) {
    auto level = Resolve(mo, group.level);
    if (!level.ok()) return false;
    (*grouping)[level->dim] = level->category;
  }
  return true;
}

AggregateFunctionKind KindOf(AggRef::Fn fn) {
  switch (fn) {
    case AggRef::Fn::kSetCount: return AggregateFunctionKind::kSetCount;
    case AggRef::Fn::kCount: return AggregateFunctionKind::kCount;
    case AggRef::Fn::kSum: return AggregateFunctionKind::kSum;
    case AggRef::Fn::kAvg: return AggregateFunctionKind::kAvg;
    case AggRef::Fn::kMin: return AggregateFunctionKind::kMin;
    case AggRef::Fn::kMax: return AggregateFunctionKind::kMax;
  }
  return AggregateFunctionKind::kSetCount;
}

// ---- hoist-timeslice: CSE of the duplicated scan prefixes ------------------

/// Lowering gives every merge branch its own Timeslice/Select chain over
/// the shared scan; this pass unifies structurally identical chain nodes
/// bottom-up, hoisting the shared timeslice (and the selection riding on
/// it) out of the branches so one sliced/filtered stream feeds them all.
std::size_t CsePrefixChains(const PlanRef& root,
                            std::vector<std::string>& fired) {
  std::size_t count = 0;
  std::map<std::tuple<int, const PlanNode*, std::string, const WhereExpr*>,
           PlanRef>
      canon;
  std::set<const PlanNode*> visited;
  std::function<void(const PlanRef&)> walk = [&](const PlanRef& node) {
    if (!visited.insert(node.get()).second) return;
    for (PlanRef& child : node->children) {
      walk(child);
      if (child->kind != PlanKind::kTimeslice &&
          child->kind != PlanKind::kSelect) {
        continue;
      }
      auto key = std::make_tuple(static_cast<int>(child->kind),
                                 child->children[0].get(), child->as_of,
                                 child->where);
      auto [it, inserted] = canon.try_emplace(key, child);
      if (!inserted && it->second.get() != child.get()) {
        child = it->second;
        fired.push_back("hoist-timeslice");
        ++count;
      }
    }
  };
  walk(root);
  return count;
}

// ---- merge-sibling-aggregates ----------------------------------------------

/// Absorbs aggregate siblings of a merge that share their input node and
/// grouping into one multi-function aggregate — the shape the fused
/// stream executes in a single scan.
std::size_t MergeSiblings(const PlanRef& root,
                          std::vector<std::string>& fired) {
  std::size_t count = 0;
  std::set<const PlanNode*> visited;
  std::function<void(const PlanRef&)> walk = [&](const PlanRef& node) {
    if (!visited.insert(node.get()).second) return;
    for (const PlanRef& child : node->children) walk(child);
    if (node->kind != PlanKind::kMerge) return;
    for (std::size_t i = 0; i < node->children.size(); ++i) {
      const PlanRef& a = node->children[i];
      if (a->kind != PlanKind::kAggregate) continue;
      for (std::size_t j = i + 1; j < node->children.size();) {
        const PlanRef& b = node->children[j];
        if (b->kind == PlanKind::kAggregate && b.get() != a.get() &&
            a->children[0].get() == b->children[0].get() &&
            SameGroupBy(a->group_by, b->group_by)) {
          a->aggregates.insert(a->aggregates.end(), b->aggregates.begin(),
                               b->aggregates.end());
          node->children.erase(node->children.begin() +
                               static_cast<std::ptrdiff_t>(j));
          fired.push_back("merge-sibling-aggregates");
          ++count;
        } else {
          ++j;
        }
      }
    }
  };
  walk(root);
  return count;
}

// ---- pattern transforms (post-order, DAG-memoized) -------------------------

using TransformFn = std::function<PlanRef(const PlanRef&)>;

PlanRef TransformDag(const PlanRef& node,
                     std::map<const PlanNode*, PlanRef>& memo,
                     const TransformFn& fn) {
  auto it = memo.find(node.get());
  if (it != memo.end()) return it->second;
  for (PlanRef& child : node->children) {
    child = TransformDag(child, memo, fn);
  }
  PlanRef replaced = fn(node);
  memo.emplace(node.get(), replaced);
  return replaced;
}

PlanRef RunTransform(PlanRef root, const TransformFn& fn) {
  std::map<const PlanNode*, PlanRef> memo;
  return TransformDag(root, memo, fn);
}

/// Gate for select-below-aggregate (Theorem 2's sigma/roll-up
/// commutation): every atom must be a name-equality on a category at or
/// above the aggregate's grouping category of a *grouped* dimension with
/// a strict, partitioning path — then a fact satisfies the predicate
/// exactly when its (unique) group does, on either side of the
/// aggregation.
bool PushableBelowAggregate(const WhereExpr& expr, const MdObject& mo,
                            const std::vector<CategoryTypeIndex>& grouping,
                            const SummarizabilityReport& report) {
  switch (expr.kind) {
    case WhereExpr::Kind::kAtom: {
      const WhereAtom& atom = expr.atom;
      if (atom.kind != WhereAtom::Kind::kNameEquals) return false;
      auto level = Resolve(mo, atom.level);
      if (!level.ok()) return false;
      const DimensionType& type = mo.dimension(level->dim).type();
      const CategoryTypeIndex g = grouping[level->dim];
      if (g == type.top()) return false;
      if (!type.LessEq(g, level->category)) return false;
      return report.strict_path[level->dim] && report.partitioning[level->dim];
    }
    case WhereExpr::Kind::kAnd:
    case WhereExpr::Kind::kOr:
      return PushableBelowAggregate(*expr.left, mo, grouping, report) &&
             PushableBelowAggregate(*expr.right, mo, grouping, report);
  }
  return false;
}

PlanRef SelectBelowAggregate(PlanRef root, std::vector<std::string>& fired) {
  return RunTransform(std::move(root), [&fired](const PlanRef& node) {
    if (node->kind != PlanKind::kSelect || node->where == nullptr ||
        node->children[0]->kind != PlanKind::kAggregate) {
      return node;
    }
    const PlanRef& agg = node->children[0];
    const MdObject* mo = FindScanMoThroughSelects(agg->children[0]);
    if (mo == nullptr) return node;
    std::vector<CategoryTypeIndex> grouping;
    if (!ResolveGrouping(*mo, agg->group_by, &grouping)) return node;
    // Only the strict/partitioning flags matter here; the kind argument
    // feeds the distributivity flag, which this rule does not read.
    const SummarizabilityReport report =
        CheckSummarizability(*mo, AggregateFunctionKind::kSum, grouping);
    if (!PushableBelowAggregate(*node->where, *mo, grouping, report)) {
      return node;
    }
    auto clone = std::make_shared<PlanNode>(*agg);
    clone->children = {MakeSelect(agg->children[0], node->where)};
    fired.push_back("select-below-aggregate");
    return PlanRef(clone);
  });
}

/// The dimension a WHERE atom references.
Name AtomDimension(const WhereAtom& atom) {
  if (atom.kind == WhereAtom::Kind::kNumericCompare) return atom.dimension;
  return atom.level.dimension;
}

/// -1 when every atom resolves only in `left`, +1 only in `right`,
/// 0 otherwise (mixed sides, or a name in neither schema).
int SideOf(const WhereExpr& expr, const MdObject& left,
           const MdObject& right) {
  switch (expr.kind) {
    case WhereExpr::Kind::kAtom: {
      const Name dim = AtomDimension(expr.atom);
      const bool in_left = left.FindDimension(dim.view()).ok();
      const bool in_right = right.FindDimension(dim.view()).ok();
      if (in_left && !in_right) return -1;
      if (in_right && !in_left) return 1;
      return 0;
    }
    case WhereExpr::Kind::kAnd:
    case WhereExpr::Kind::kOr: {
      const int l = SideOf(*expr.left, left, right);
      const int r = SideOf(*expr.right, left, right);
      return l == r ? l : 0;
    }
  }
  return 0;
}

PlanRef SelectBelowJoin(PlanRef root, std::vector<std::string>& fired) {
  return RunTransform(std::move(root), [&fired](const PlanRef& node) {
    if (node->kind != PlanKind::kSelect || node->where == nullptr ||
        node->children[0]->kind != PlanKind::kJoin) {
      return node;
    }
    const PlanRef& join = node->children[0];
    // Both inputs must expose their scan schema unchanged (select and
    // timeslice preserve it); the join's dimension names are disjoint by
    // the operator's contract, so an atom resolves on exactly one side.
    const MdObject* left = FindScanMoThroughSchemaPreserving(join->children[0]);
    const MdObject* right =
        FindScanMoThroughSchemaPreserving(join->children[1]);
    if (left == nullptr || right == nullptr) return node;
    const int side = SideOf(*node->where, *left, *right);
    if (side == 0) return node;
    const std::size_t index = side < 0 ? 0 : 1;
    auto clone = std::make_shared<PlanNode>(*join);
    clone->children[index] = MakeSelect(join->children[index], node->where);
    fired.push_back("select-below-join");
    return PlanRef(clone);
  });
}

/// The Kuijpers-Vaisman Theorem-2 roll-up collapse: re-aggregating an
/// aggregate's auto result dimension at a coarser level of the same
/// grouping dimensions is the coarser aggregation of the base data, for
/// the function pairs where regrouping distributes exactly. (Sum o Sum)
/// is deliberately absent: collapsing reorders floating-point addition,
/// and compiled plans promise byte-identical output.
bool SafeRollupPair(AggRef::Fn outer, AggRef::Fn inner) {
  if (outer == AggRef::Fn::kSum) {
    return inner == AggRef::Fn::kCount || inner == AggRef::Fn::kSetCount;
  }
  if (outer == AggRef::Fn::kMin) return inner == AggRef::Fn::kMin;
  if (outer == AggRef::Fn::kMax) return inner == AggRef::Fn::kMax;
  return false;
}

PlanRef CollapseRollup(PlanRef root, std::vector<std::string>& fired) {
  return RunTransform(std::move(root), [&fired](const PlanRef& node) {
    if (node->kind != PlanKind::kAggregate ||
        node->children[0]->kind != PlanKind::kAggregate) {
      return node;
    }
    const PlanRef& inner = node->children[0];
    if (node->aggregates.size() != 1 || inner->aggregates.size() != 1) {
      return node;
    }
    const AggRef& outer_agg = node->aggregates[0];
    const AggRef& inner_agg = inner->aggregates[0];
    // The outer function must consume the inner's auto result dimension.
    if (outer_agg.dimension != std::string_view("Result")) return node;
    if (!SafeRollupPair(outer_agg.fn, inner_agg.fn)) return node;
    const MdObject* mo = FindScanMoThroughSelects(inner->children[0]);
    if (mo == nullptr) return node;
    // Same grouping dimensions, each outer category at or above the
    // inner one in the scan MO's lattice.
    if (node->group_by.size() != inner->group_by.size()) return node;
    for (std::size_t i = 0; i < node->group_by.size(); ++i) {
      if (node->group_by[i].level.dimension !=
          inner->group_by[i].level.dimension) {
        return node;
      }
      auto outer_level = Resolve(*mo, node->group_by[i].level);
      auto inner_level = Resolve(*mo, inner->group_by[i].level);
      if (!outer_level.ok() || !inner_level.ok()) return node;
      if (!mo->dimension(outer_level->dim)
               .type()
               .LessEq(inner_level->category, outer_level->category)) {
        return node;
      }
    }
    std::vector<CategoryTypeIndex> grouping;
    if (!ResolveGrouping(*mo, node->group_by, &grouping)) return node;
    if (!CheckSummarizability(*mo, KindOf(inner_agg.fn), grouping)
             .summarizable) {
      return node;
    }
    AggRef collapsed = inner_agg;
    collapsed.label = outer_agg.label;
    fired.push_back("collapse-rollup");
    return MakeAggregate(inner->children[0], {collapsed}, node->group_by);
  });
}

// ---- prune-dead-dimensions -------------------------------------------------

std::size_t PruneDeadDimensions(const PlanRef& root,
                                std::vector<std::string>& fired) {
  std::size_t count = 0;
  std::set<const PlanNode*> visited;
  std::function<void(const PlanRef&)> walk = [&](const PlanRef& node) {
    if (!visited.insert(node.get()).second) return;
    for (const PlanRef& child : node->children) walk(child);
    if (node->kind != PlanKind::kAggregate || node->prune_dead) return;
    const MdObject* mo = FindScanMoThroughSchemaPreserving(node->children[0]);
    if (mo == nullptr) return;
    std::set<std::size_t> dims;
    for (const GroupRef& group : node->group_by) {
      auto level = Resolve(*mo, group.level);
      if (!level.ok()) return;  // execution will surface the bad name
      dims.insert(level->dim);
    }
    if (dims.size() < mo->dimension_count()) {
      node->prune_dead = true;
      fired.push_back("prune-dead-dimensions");
      ++count;
    }
  };
  walk(root);
  return count;
}

}  // namespace

RewriteOutcome Rewrite(PlanRef plan, const RewriteOptions& options,
                       ExecContext* exec) {
  RewriteOutcome out;
  out.plan = std::move(plan);
  if (out.plan == nullptr) return out;
  const std::uint32_t mask = options.rule_mask;
  // The rules enable each other (hoisting makes siblings mergeable,
  // merging exposes the fused shape pruning annotates), so run to a
  // fixpoint; the cap only bounds pathological hand-built plans.
  for (int pass = 0; pass < 8; ++pass) {
    const std::size_t before = out.fired.size();
    if ((mask & kRuleHoistTimeslice) != 0) {
      CsePrefixChains(out.plan, out.fired);
    }
    if ((mask & kRuleSelectBelowAggregate) != 0) {
      out.plan = SelectBelowAggregate(std::move(out.plan), out.fired);
    }
    if ((mask & kRuleSelectBelowJoin) != 0) {
      out.plan = SelectBelowJoin(std::move(out.plan), out.fired);
    }
    if ((mask & kRuleCollapseRollup) != 0) {
      out.plan = CollapseRollup(std::move(out.plan), out.fired);
    }
    if ((mask & kRuleMergeSiblingAggregates) != 0) {
      MergeSiblings(out.plan, out.fired);
    }
    if ((mask & kRulePruneDeadDimensions) != 0) {
      PruneDeadDimensions(out.plan, out.fired);
    }
    if (out.fired.size() == before) break;
  }
  if (exec != nullptr) {
    exec->stats.rewrites_applied +=
        static_cast<std::uint64_t>(out.fired.size());
  }
  return out;
}

}  // namespace mdql
}  // namespace mddc
