#include "mdql/token.h"

#include <cctype>
#include <cstdlib>
#include <map>

#include "common/strings.h"

namespace mddc {
namespace mdql {
namespace {

std::string ToUpper(const std::string& text) {
  std::string upper = text;
  for (char& c : upper) c = static_cast<char>(std::toupper(c));
  return upper;
}

const std::map<std::string, TokenKind>& Keywords() {
  static const auto& keywords = *new std::map<std::string, TokenKind>{
      {"SELECT", TokenKind::kSelect},   {"FROM", TokenKind::kFrom},
      {"BY", TokenKind::kBy},           {"WHERE", TokenKind::kWhere},
      {"AND", TokenKind::kAnd},
      {"OR", TokenKind::kOr},         {"NOT", TokenKind::kNot},
      {"ASOF", TokenKind::kAsOf},       {"AS", TokenKind::kAs},
      {"COUNT", TokenKind::kCount},     {"PROB", TokenKind::kProb},
      {"SHOW", TokenKind::kShow},       {"DIMENSIONS", TokenKind::kDimensions},
      {"HIERARCHY", TokenKind::kHierarchy},
      {"PATHS", TokenKind::kPaths},
      {"INSERT", TokenKind::kInsert},   {"INTO", TokenKind::kInto},
      {"FACT", TokenKind::kFact},       {"DELETE", TokenKind::kDelete},
      {"EXPLAIN", TokenKind::kExplain},
  };
  return keywords;
}

}  // namespace

std::string_view TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kString:
      return "string";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'<>'";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kSelect:
      return "SELECT";
    case TokenKind::kFrom:
      return "FROM";
    case TokenKind::kBy:
      return "BY";
    case TokenKind::kWhere:
      return "WHERE";
    case TokenKind::kAnd:
      return "AND";
    case TokenKind::kOr:
      return "OR";
    case TokenKind::kNot:
      return "NOT";
    case TokenKind::kAsOf:
      return "ASOF";
    case TokenKind::kAs:
      return "AS";
    case TokenKind::kCount:
      return "COUNT";
    case TokenKind::kProb:
      return "PROB";
    case TokenKind::kShow:
      return "SHOW";
    case TokenKind::kDimensions:
      return "DIMENSIONS";
    case TokenKind::kHierarchy:
      return "HIERARCHY";
    case TokenKind::kPaths:
      return "PATHS";
    case TokenKind::kInsert:
      return "INSERT";
    case TokenKind::kInto:
      return "INTO";
    case TokenKind::kFact:
      return "FACT";
    case TokenKind::kDelete:
      return "DELETE";
    case TokenKind::kExplain:
      return "EXPLAIN";
    case TokenKind::kEnd:
      return "end of query";
  }
  return "?";
}

Result<std::vector<Token>> Tokenize(const std::string& source) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = source.size();
  while (i < n) {
    char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    Token token;
    token.offset = i;
    if (c == ',') {
      token.kind = TokenKind::kComma;
      ++i;
    } else if (c == '.') {
      token.kind = TokenKind::kDot;
      ++i;
    } else if (c == '(') {
      token.kind = TokenKind::kLParen;
      ++i;
    } else if (c == ')') {
      token.kind = TokenKind::kRParen;
      ++i;
    } else if (c == ';') {
      ++i;  // statement terminator, ignored
      continue;
    } else if (c == '=') {
      token.kind = TokenKind::kEq;
      ++i;
    } else if (c == '<') {
      if (i + 1 < n && source[i + 1] == '=') {
        token.kind = TokenKind::kLe;
        i += 2;
      } else if (i + 1 < n && source[i + 1] == '>') {
        token.kind = TokenKind::kNe;
        i += 2;
      } else {
        token.kind = TokenKind::kLt;
        ++i;
      }
    } else if (c == '>') {
      if (i + 1 < n && source[i + 1] == '=') {
        token.kind = TokenKind::kGe;
        i += 2;
      } else {
        token.kind = TokenKind::kGt;
        ++i;
      }
    } else if (c == '\'') {
      std::size_t end = source.find('\'', i + 1);
      if (end == std::string::npos) {
        return Status::InvalidArgument(
            StrCat("unterminated string literal at offset ", i));
      }
      token.kind = TokenKind::kString;
      token.text = source.substr(i + 1, end - i - 1);
      i = end + 1;
    } else if (c == '"') {
      std::size_t end = source.find('"', i + 1);
      if (end == std::string::npos) {
        return Status::InvalidArgument(
            StrCat("unterminated quoted identifier at offset ", i));
      }
      token.kind = TokenKind::kIdentifier;
      token.text = source.substr(i + 1, end - i - 1);
      i = end + 1;
    } else if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(source[i + 1])) !=
                    0)) {
      std::size_t end = i + 1;
      while (end < n &&
             (std::isdigit(static_cast<unsigned char>(source[end])) != 0 ||
              source[end] == '.')) {
        ++end;
      }
      token.kind = TokenKind::kNumber;
      token.text = source.substr(i, end - i);
      token.number = std::strtod(token.text.c_str(), nullptr);
      i = end;
    } else if (std::isalpha(static_cast<unsigned char>(c)) != 0 ||
               c == '_') {
      std::size_t end = i + 1;
      while (end < n &&
             (std::isalnum(static_cast<unsigned char>(source[end])) != 0 ||
              source[end] == '_' || source[end] == '-')) {
        ++end;
      }
      token.text = source.substr(i, end - i);
      auto keyword = Keywords().find(ToUpper(token.text));
      token.kind = keyword != Keywords().end() ? keyword->second
                                               : TokenKind::kIdentifier;
      i = end;
    } else {
      return Status::InvalidArgument(
          StrCat("unexpected character '", std::string(1, c),
                 "' at offset ", i));
    }
    tokens.push_back(std::move(token));
  }
  Token end_token;
  end_token.kind = TokenKind::kEnd;
  end_token.offset = n;
  tokens.push_back(end_token);
  return tokens;
}

}  // namespace mdql
}  // namespace mddc
