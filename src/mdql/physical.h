#ifndef MDDC_MDQL_PHYSICAL_H_
#define MDDC_MDQL_PHYSICAL_H_

#include "common/result.h"
#include "core/md_object.h"
#include "mdql/ast.h"
#include "mdql/mdql.h"
#include "mdql/plan.h"
#include "mdql/rewrite.h"

namespace mddc {

struct ExecContext;  // engine/executor.h

namespace mdql {

/// The physical layer of compiled MDQL (docs/mdql_compiler.md): lower
/// the SELECT to the logical IR, run the rewrite rules, and — when the
/// optimized plan is the single fused-aggregate shape — execute it as
/// one streaming scan (AggregateStream) that never materializes an
/// intermediate MO. Any other shape falls back to the tree-walk
/// interpreter and counts stats.plan_fallbacks; a fused run counts
/// stats.fused_pipelines. The rendered result is byte-identical to the
/// interpreter either way, at any thread count.
///
/// The fused stream executes straight off the AST, so the compile work
/// (lower, rewrite fixpoint, shape check) only produces the fuse-or-
/// fallback DECISION — which is what the session's plan cache stores.
/// `fused_hint` (optional) replays a cached decision, skipping the
/// compile entirely; `fused_decision` (optional) reports the decision
/// taken so the caller can cache it. Both are keyed outside this layer
/// on (statement text, MO version), which pins every input the decision
/// depends on.
Result<QueryResult> ExecuteCompiledSelect(const MdObject& source,
                                          const SelectStatement& select,
                                          const CompileOptions& options,
                                          ExecContext* exec = nullptr,
                                          const bool* fused_hint = nullptr,
                                          bool* fused_decision = nullptr);

/// EXPLAIN rendering: the logical plan before and after rewrites, the
/// rules that fired, and the chosen physical operators (probing the
/// stream's engine selection without scanning). Never executes the
/// statement and never perturbs ExecStats. Non-SELECT statements render
/// a single "direct execution" line.
Result<QueryResult> ExplainStatement(const MdObject& source,
                                     const Statement& statement,
                                     const CompileOptions& options,
                                     ExecContext* exec = nullptr);

/// Reference executor for logical plans: runs every node by
/// materializing its full MO result (formation per aggregate, real
/// sigma, real join). Exists for the rewrite-rule differential tests,
/// which compare a plan against its rewritten form at the MO level;
/// multi-function aggregates and multi-branch merges (rendering
/// concerns, not MO algebra) are rejected.
Result<MdObject> ExecutePlanMaterialized(const PlanRef& plan,
                                         ExecContext* exec = nullptr);

}  // namespace mdql
}  // namespace mddc

#endif  // MDDC_MDQL_PHYSICAL_H_
