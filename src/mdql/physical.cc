#include "mdql/physical.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "algebra/derived.h"
#include "algebra/operators.h"
#include "algebra/timeslice.h"
#include "common/date.h"
#include "common/strings.h"
#include "engine/executor.h"
#include "mdql/bind.h"

namespace mddc {
namespace mdql {
namespace {

/// Decides whether the optimized plan is the shape the fused stream
/// covers: one merge branch, one multi-function aggregate, an operator
/// chain of at most one select over at most one timeslice over the
/// scan, no grouping at TOP, and dead dimensions licensed for pruning.
/// Returns the aggregate node, or null with a human-readable reason
/// (EXPLAIN prints it).
const PlanNode* FusedShape(const PlanRef& plan, const MdObject& source,
                           std::string* reason) {
  if (plan == nullptr || plan->kind != PlanKind::kMerge) {
    *reason = "plan root is not a merge";
    return nullptr;
  }
  if (plan->children.size() != 1) {
    *reason = "merge has several branches (sibling aggregates not merged)";
    return nullptr;
  }
  const PlanNode* agg = plan->children[0].get();
  if (agg->kind != PlanKind::kAggregate) {
    *reason = "merge branch is not an aggregate";
    return nullptr;
  }
  const PlanNode* cur = agg->children[0].get();
  bool seen_select = false;
  bool seen_timeslice = false;
  while (cur->kind != PlanKind::kScan) {
    if (cur->kind == PlanKind::kSelect && !seen_select && !seen_timeslice) {
      seen_select = true;
    } else if (cur->kind == PlanKind::kTimeslice && !seen_timeslice) {
      seen_timeslice = true;
    } else {
      *reason = "operator chain is not select/timeslice/scan";
      return nullptr;
    }
    if (cur->children.size() != 1) {
      *reason = "operator chain branches";
      return nullptr;
    }
    cur = cur->children[0].get();
  }
  std::set<std::size_t> dims;
  for (const GroupRef& group : agg->group_by) {
    auto level = Resolve(source, group.level);
    // An unresolvable column surfaces the identical Status on both
    // paths at execution time; it does not block fusion.
    if (!level.ok()) continue;
    if (level->category == source.dimension(level->dim).type().top()) {
      *reason = "grouping at TOP is not fused";
      return nullptr;
    }
    dims.insert(level->dim);
  }
  if (dims.size() < source.dimension_count() && !agg->prune_dead) {
    *reason = "dead dimensions present but pruning not licensed";
    return nullptr;
  }
  return agg;
}

/// The fused pipeline: timeslice once, push the WHERE down to a keep
/// mask, stream every aggregate through one scan, and render groups the
/// way the interpreter does — including its (labels, value)-sorted
/// per-aggregate overwrite when distinct groups share a label tuple.
/// Every step replays the interpreter's operation order, so the first
/// error (and the rendered bytes) match it exactly.
Result<QueryResult> ExecuteFused(const MdObject& source,
                                 const SelectStatement& select,
                                 ExecContext* exec) {
  const MdObject* work = &source;
  std::optional<MdObject> sliced;
  if (select.as_of.has_value()) {
    Chronon day = kNowChronon;
    if (*select.as_of != "NOW") {
      MDDC_ASSIGN_OR_RETURN(day, ParseDate(*select.as_of));
    }
    MDDC_ASSIGN_OR_RETURN(MdObject cut, ValidTimeslice(source, day, exec));
    sliced.emplace(std::move(cut));
    work = &*sliced;
  }
  const MdObject& mo = *work;
  const std::size_t n = mo.dimension_count();

  QueryResult result;
  for (const GroupRef& group : select.group_by) {
    result.columns.push_back(
        StrCat(group.level.dimension, ".", group.level.category));
  }
  for (const AggRef& agg : select.aggregates) {
    result.columns.push_back(agg.label);
  }

  // Selection pushdown: sigma's fact scan, recorded as a mask instead of
  // a materialized MO (a kept fact's coordinates are identical in both).
  std::vector<bool> keep;
  const std::vector<bool>* keep_ptr = nullptr;
  if (select.where != nullptr) {
    MDDC_ASSIGN_OR_RETURN(Predicate predicate,
                          BuildWhere(mo, *select.where, exec));
    keep.reserve(mo.facts().size());
    for (FactId fact : mo.facts()) {
      MDDC_ASSIGN_OR_RETURN(bool match, predicate.Evaluate(mo, fact));
      keep.push_back(match);
    }
    keep_ptr = &keep;
  }

  struct Column {
    std::size_t dim;
    std::string representation;
  };
  std::vector<Column> columns;
  columns.reserve(select.group_by.size());
  std::vector<CategoryTypeIndex> grouping(n);
  for (std::size_t i = 0; i < n; ++i) {
    grouping[i] = mo.dimension(i).type().top();
  }
  for (const GroupRef& group : select.group_by) {
    MDDC_ASSIGN_OR_RETURN(ResolvedLevel level, Resolve(mo, group.level));
    columns.push_back(
        Column{level.dim, PickRepresentation(mo, level, group.representation)});
    grouping[level.dim] = level.category;
  }

  // Bind the functions in statement order. The interpreter interleaves
  // bind(a) / run(a); a bind failure therefore surfaces only after every
  // earlier aggregate ran clean — so the bound prefix streams first and
  // the remembered bind error returns only when the stream succeeds.
  std::vector<AggFunction> functions;
  functions.reserve(select.aggregates.size());
  Status bind_error = Status::OK();
  for (const AggRef& agg : select.aggregates) {
    auto function = BuildAggFunction(mo, agg);
    if (!function.ok()) {
      bind_error = function.status();
      break;
    }
    functions.push_back(*function);
  }

  StreamSpec spec;
  spec.functions = std::move(functions);
  spec.grouping = grouping;
  spec.prob_at = kNowChronon;
  spec.keep = keep_ptr;
  spec.collect_members = true;
  MDDC_ASSIGN_OR_RETURN(std::vector<StreamGroup> groups,
                        AggregateStream(mo, spec, exec));
  if (!bind_error.ok()) return bind_error;

  // The formation interns every group as a set-fact, so two groups with
  // identical member sets become ONE result fact — related to both key
  // values, rendered once, labeled by the first-added key (the first
  // group in canonical order). Replay that collapse here: keep only the
  // first group per member set. The dropped groups' values are identical
  // by construction (same members, same fold order), so only the row
  // count changes.
  {
    std::set<std::vector<FactId>> seen;
    std::vector<StreamGroup> unique;
    unique.reserve(groups.size());
    for (StreamGroup& group : groups) {
      if (seen.insert(std::move(group.member_facts)).second) {
        unique.push_back(std::move(group));
      }
    }
    groups = std::move(unique);
  }

  std::vector<std::size_t> live_pos(n, 0);
  {
    std::size_t next = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (grouping[i] != mo.dimension(i).type().top()) live_pos[i] = next++;
    }
  }

  // Group labels, via the same representation chain SqlAggregate uses;
  // the stream key value IS the single value the formation would relate
  // the group fact to, so the lookups see identical inputs.
  std::vector<std::vector<std::string>> labels(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    labels[g].reserve(columns.size());
    for (const Column& column : columns) {
      const Dimension& dimension = mo.dimension(column.dim);
      const ValueId value = groups[g].key[live_pos[column.dim]];
      std::string label = "?";
      auto category = dimension.CategoryOf(value);
      if (category.ok()) {
        auto rep =
            dimension.FindRepresentation(*category, column.representation);
        if (rep.ok()) {
          auto text = (*rep)->Get(value, kNowChronon);
          if (text.ok()) label = *text;
        }
      }
      if (label == "?") label = StrCat("id:", value.raw());
      labels[g].push_back(std::move(label));
    }
  }

  // The interpreter merges each aggregate's (label, value) rows — sorted
  // by group labels then value — into a map, overwriting on label ties.
  // Replay that loop verbatim over the streamed values.
  std::map<std::vector<std::string>, std::vector<std::string>> merged;
  for (std::size_t a = 0; a < spec.functions.size(); ++a) {
    std::vector<std::size_t> order(groups.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
      if (labels[x] != labels[y]) return labels[x] < labels[y];
      return groups[x].values[a] < groups[y].values[a];
    });
    for (std::size_t g : order) {
      auto [it, inserted] = merged.try_emplace(
          labels[g],
          std::vector<std::string>(select.aggregates.size(), "-"));
      it->second[a] = FormatDouble(groups[g].values[a]);
    }
  }
  for (const auto& [group, values] : merged) {
    std::vector<std::string> row = group;
    row.insert(row.end(), values.begin(), values.end());
    result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace

Result<QueryResult> ExecuteCompiledSelect(const MdObject& source,
                                          const SelectStatement& select,
                                          const CompileOptions& options,
                                          ExecContext* exec,
                                          const bool* fused_hint,
                                          bool* fused_decision) {
  bool fused;
  if (fused_hint != nullptr) {
    // Cached decision: the caller guarantees the (text, MO version) key
    // still holds, so lower+rewrite+shape-check is skipped wholesale.
    fused = *fused_hint;
  } else {
    PlanRef plan = LowerSelect(select.mo_name, &source, select);
    RewriteOutcome rewritten =
        Rewrite(std::move(plan), options.rewrites, exec);
    std::string reason;
    const PlanNode* agg = FusedShape(rewritten.plan, source, &reason);
    fused = options.enable_fusion && agg != nullptr;
  }
  if (fused_decision != nullptr) *fused_decision = fused;
  if (!fused) {
    if (exec != nullptr) ++exec->stats.plan_fallbacks;
    return ExecuteSelectTreeWalk(source, select, exec);
  }
  if (exec != nullptr) ++exec->stats.fused_pipelines;
  return ExecuteFused(source, select, exec);
}

Result<QueryResult> ExplainStatement(const MdObject& source,
                                     const Statement& statement,
                                     const CompileOptions& options,
                                     ExecContext* exec) {
  QueryResult result;
  result.columns = {"explain"};
  auto line = [&result](std::string text) {
    result.rows.push_back({std::move(text)});
  };
  if (!statement.select.has_value()) {
    line("direct execution (not compiled)");
    return result;
  }
  const SelectStatement& select = *statement.select;
  auto plan_lines = [&line](const std::string& rendered) {
    std::size_t begin = 0;
    while (begin < rendered.size()) {
      std::size_t end = rendered.find('\n', begin);
      if (end == std::string::npos) end = rendered.size();
      line(StrCat("  ", rendered.substr(begin, end - begin)));
      begin = end + 1;
    }
  };

  PlanRef plan = LowerSelect(select.mo_name, &source, select);
  line("logical plan:");
  plan_lines(PrintPlan(plan));
  // EXPLAIN must not perturb counters: the rewriter gets no context.
  RewriteOutcome rewritten =
      Rewrite(std::move(plan), options.rewrites, /*exec=*/nullptr);
  if (rewritten.fired.empty()) {
    line("rewrites: none");
  } else {
    std::vector<std::string> order;
    std::map<std::string, std::size_t> counts;
    for (const std::string& name : rewritten.fired) {
      if (counts[name]++ == 0) order.push_back(name);
    }
    std::vector<std::string> parts;
    for (const std::string& name : order) {
      const std::size_t count = counts[name];
      parts.push_back(count == 1 ? name : StrCat(name, " x", count));
    }
    line(StrCat("rewrites: ", Join(parts, ", ")));
  }
  line("optimized plan:");
  plan_lines(PrintPlan(rewritten.plan));

  line("physical:");
  if (!options.enable_compiler) {
    line("  tree-walk interpreter (compiler disabled)");
    return result;
  }
  std::string reason;
  const PlanNode* agg = FusedShape(rewritten.plan, source, &reason);
  if (!options.enable_fusion) {
    line("  tree-walk fallback (fusion disabled)");
    return result;
  }
  if (agg == nullptr) {
    line(StrCat("  tree-walk fallback (", reason, ")"));
    return result;
  }
  std::vector<CategoryTypeIndex> grouping;
  grouping.reserve(source.dimension_count());
  for (std::size_t i = 0; i < source.dimension_count(); ++i) {
    grouping.push_back(source.dimension(i).type().top());
  }
  for (const GroupRef& group : agg->group_by) {
    auto level = Resolve(source, group.level);
    if (level.ok()) grouping[level->dim] = level->category;
  }
  const StreamProbe probe = AggregateStreamProbe(source, grouping, exec);
  line(StrCat("  fused pipeline: scan",
              select.as_of.has_value() ? " -> timeslice" : "",
              select.where != nullptr ? " -> select [pushed-down keep mask]"
                                      : "",
              " -> stream group-by"));
  line(StrCat("  stream: ", agg->aggregates.size(), " function(s), ",
              probe.live.size(), " live dim(s), engine=",
              probe.dense ? "dense-slots" : "flat-hash",
              probe.all_indexed ? "" : " (rollup index unavailable)",
              ", slot product=", probe.slot_product));
  return result;
}

Result<MdObject> ExecutePlanMaterialized(const PlanRef& plan,
                                         ExecContext* exec) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  const PlanNode& node = *plan;
  switch (node.kind) {
    case PlanKind::kScan:
      if (node.mo == nullptr) {
        return Status::InvalidArgument(
            StrCat("scan of '", node.mo_name, "' has no bound MO"));
      }
      return *node.mo;
    case PlanKind::kTimeslice: {
      MDDC_ASSIGN_OR_RETURN(MdObject child,
                            ExecutePlanMaterialized(node.children[0], exec));
      Chronon day = kNowChronon;
      if (node.as_of != "NOW") {
        MDDC_ASSIGN_OR_RETURN(day, ParseDate(node.as_of));
      }
      return ValidTimeslice(child, day, exec);
    }
    case PlanKind::kSelect: {
      MDDC_ASSIGN_OR_RETURN(MdObject child,
                            ExecutePlanMaterialized(node.children[0], exec));
      if (node.where == nullptr) return child;
      MDDC_ASSIGN_OR_RETURN(Predicate predicate,
                            BuildWhere(child, *node.where, exec));
      return Select(child, predicate);
    }
    case PlanKind::kAggregate: {
      MDDC_ASSIGN_OR_RETURN(MdObject child,
                            ExecutePlanMaterialized(node.children[0], exec));
      if (node.aggregates.size() != 1) {
        return Status::InvalidArgument(
            "materializing executor runs single-function aggregates only");
      }
      std::vector<CategoryTypeIndex> grouping;
      grouping.reserve(child.dimension_count());
      for (std::size_t i = 0; i < child.dimension_count(); ++i) {
        grouping.push_back(child.dimension(i).type().top());
      }
      for (const GroupRef& group : node.group_by) {
        MDDC_ASSIGN_OR_RETURN(ResolvedLevel level, Resolve(child, group.level));
        grouping[level.dim] = level.category;
      }
      MDDC_ASSIGN_OR_RETURN(AggFunction function,
                            BuildAggFunction(child, node.aggregates[0]));
      AggregateSpec spec{std::move(function), std::move(grouping)};
      return AggregateFormation(child, spec, exec);
    }
    case PlanKind::kMerge:
      if (node.children.size() == 1) {
        return ExecutePlanMaterialized(node.children[0], exec);
      }
      return Status::InvalidArgument(
          "materializing executor cannot merge row sets; use the session "
          "path");
    case PlanKind::kJoin: {
      MDDC_ASSIGN_OR_RETURN(MdObject left,
                            ExecutePlanMaterialized(node.children[0], exec));
      MDDC_ASSIGN_OR_RETURN(MdObject right,
                            ExecutePlanMaterialized(node.children[1], exec));
      return Join(left, right, node.join_predicate, exec);
    }
  }
  return Status::InvalidArgument("unknown plan node");
}

}  // namespace mdql
}  // namespace mddc
