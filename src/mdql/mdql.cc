#include "mdql/mdql.h"

#include "common/strings.h"
#include "common/table_printer.h"
#include "core/aggregation.h"
#include "engine/executor.h"
#include "mdql/bind.h"
#include "mdql/parser.h"
#include "mdql/physical.h"

namespace mddc {
namespace mdql {
namespace {

Result<QueryResult> ExecuteShow(const MdObject& mo,
                                const ShowStatement& show) {
  QueryResult result;
  if (show.what == ShowStatement::What::kDimensions) {
    result.columns = {"dimension", "categories", "bottom", "values"};
    for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
      const Dimension& dimension = mo.dimension(i);
      const DimensionType& type = dimension.type();
      result.rows.push_back({dimension.name(),
                             std::to_string(type.category_count()),
                             type.category(type.bottom()).name,
                             std::to_string(dimension.value_count())});
    }
    return result;
  }
  MDDC_ASSIGN_OR_RETURN(std::size_t dim,
                        mo.FindDimension(show.dimension.view()));
  const Dimension& dimension = mo.dimension(dim);
  const DimensionType& type = dimension.type();
  if (show.what == ShowStatement::What::kPaths) {
    result.columns = {"path"};
    for (const auto& path : type.AggregationPaths(type.bottom())) {
      std::vector<std::string> names;
      for (CategoryTypeIndex c : path) names.push_back(type.category(c).name);
      result.rows.push_back({Join(names, " < ")});
    }
    return result;
  }
  result.columns = {"category", "agg type", "contained in", "values"};
  for (CategoryTypeIndex c : type.AtOrAbove(type.bottom())) {
    std::vector<std::string> parents;
    for (CategoryTypeIndex p : type.Pred(c)) {
      parents.push_back(type.category(p).name);
    }
    result.rows.push_back(
        {type.category(c).name,
         std::string(AggregationTypeName(type.AggType(c))),
         Join(parents, ", "),
         std::to_string(dimension.ValuesIn(c).size())});
  }
  return result;
}

}  // namespace

bool IsMutating(const Statement& statement) {
  return (statement.insert.has_value() || statement.del.has_value()) &&
         !statement.explain;
}

std::string_view StatementMoName(const Statement& statement) {
  if (statement.select.has_value()) return statement.select->mo_name.view();
  if (statement.insert.has_value()) return statement.insert->mo_name.view();
  if (statement.del.has_value()) return statement.del->mo_name.view();
  return statement.show->mo_name.view();
}

Result<QueryResult> ApplyInsert(MdObject& mo, const InsertStatement& insert) {
  if (insert.facts.empty()) {
    return Status::InvalidArgument("INSERT needs at least one FACT group");
  }
  // Resolve every assignment of every fact before mutating anything, so
  // a bad name anywhere in the batch leaves the MO untouched.
  struct Resolved {
    std::size_t dim;
    ValueId value;
    double prob;
  };
  std::vector<std::vector<Resolved>> resolved;
  resolved.reserve(insert.facts.size());
  for (const InsertFact& fact : insert.facts) {
    if (fact.assignments.empty()) {
      return Status::InvalidArgument(
          "INSERT needs at least one level assignment per fact");
    }
    std::vector<Resolved> per_fact;
    per_fact.reserve(fact.assignments.size());
    for (const InsertAssignment& assign : fact.assignments) {
      MDDC_ASSIGN_OR_RETURN(ResolvedLevel level, Resolve(mo, assign.level));
      MDDC_ASSIGN_OR_RETURN(ValueId value,
                            ResolveValueByName(mo, level, assign.text,
                                               /*exec=*/nullptr));
      if (assign.prob < 0.0 || assign.prob > 1.0) {
        return Status::InvalidArgument(
            StrCat("probability out of [0,1]: ", assign.prob));
      }
      per_fact.push_back(Resolved{level.dim, value, assign.prob});
    }
    resolved.push_back(std::move(per_fact));
  }

  QueryResult ack;
  ack.columns = {"inserted", "fact"};
  std::vector<FactId> inserted;
  inserted.reserve(insert.facts.size());
  for (std::size_t i = 0; i < insert.facts.size(); ++i) {
    const FactId fact = mo.registry()->Atom(insert.facts[i].key);
    MDDC_RETURN_NOT_OK(mo.AddFact(fact));
    for (const Resolved& r : resolved[i]) {
      MDDC_RETURN_NOT_OK(
          mo.Relate(r.dim, fact, r.value, Lifespan::AlwaysSpan(), r.prob));
    }
    inserted.push_back(fact);
    ack.rows.push_back({"1", mo.registry()->ToString(fact)});
  }
  // Cover only the inserted facts: statements land on MOs whose existing
  // facts are already covered, and the continuous-ingestion path cannot
  // afford a full O(|F| * dims) rescan per batch (docs/ingestion.md).
  MDDC_RETURN_NOT_OK(mo.CoverWithTop(inserted));
  return ack;
}

Result<QueryResult> ApplyDelete(MdObject& mo, const DeleteStatement& del) {
  const FactId fact = mo.registry()->Atom(del.key);
  MDDC_RETURN_NOT_OK(mo.RemoveFact(fact));
  QueryResult ack;
  ack.columns = {"deleted", "fact", "path"};
  ack.rows.push_back(
      {"1", mo.registry()->ToString(fact),
       "full-rebuild (deletes are not maintained incrementally)"});
  return ack;
}

std::string QueryResult::ToString() const {
  TablePrinter printer(columns);
  for (const auto& row : rows) printer.AddRow(row);
  return printer.ToString();
}

Status Session::Register(std::string name, MdObject mo) {
  if (catalog_.count(name) != 0) {
    return Status::InvariantViolation(
        StrCat("MO '", name, "' already registered"));
  }
  catalog_.emplace(std::move(name), std::move(mo));
  return Status::OK();
}

std::vector<std::string> Session::names() const {
  std::vector<std::string> result;
  result.reserve(catalog_.size());
  for (const auto& [name, mo] : catalog_) result.push_back(name);
  return result;
}

Result<const MdObject*> Session::Get(std::string_view name) const {
  auto it = catalog_.find(name);
  if (it == catalog_.end()) {
    return Status::NotFound(StrCat("no MO named '", name, "' is registered"));
  }
  return &it->second;
}

Result<QueryResult> Session::Execute(const std::string& query,
                                     ExecContext* exec) {
  MDDC_ASSIGN_OR_RETURN(Statement statement, Parse(query));
  return Execute(statement, exec);
}

Result<QueryResult> Session::Execute(const Statement& statement,
                                     ExecContext* exec) {
  Result<QueryResult> result = ExecuteImpl(statement, exec);
  // Statement boundary: rewind the query-lifetime arenas (a no-op when
  // the statement's operators reclaimed their scratch already).
  if (exec != nullptr) exec->ResetQueryArenas();
  return result;
}

Result<QueryResult> Session::ExecuteImpl(const Statement& statement,
                                         ExecContext* exec) {
  const std::string_view mo_name = StatementMoName(statement);
  auto it = catalog_.find(mo_name);
  if (it == catalog_.end()) {
    return Status::NotFound(StrCat("no MO named '", mo_name,
                                   "' is registered in this session"));
  }
  if (statement.explain) {
    return ExplainStatement(it->second, statement, compile_options_, exec);
  }
  if (statement.select.has_value()) {
    if (compile_options_.enable_compiler) {
      // Plan cache: same text against the same MO version re-uses the
      // compiler's fuse-or-fallback decision and skips lower+rewrite.
      std::uint64_t version = 0;
      if (auto vit = catalog_versions_.find(mo_name);
          vit != catalog_versions_.end()) {
        version = vit->second;
      }
      const bool* hint = nullptr;
      bool cached_fused = false;
      if (!statement.text.empty()) {
        if (auto hit = plan_cache_.find(statement.text);
            hit != plan_cache_.end() && hit->second.version == version) {
          cached_fused = hit->second.fused;
          hint = &cached_fused;
          if (exec != nullptr) ++exec->stats.plan_cache_hits;
        }
      }
      bool decision = false;
      Result<QueryResult> result =
          ExecuteCompiledSelect(it->second, *statement.select,
                                compile_options_, exec, hint, &decision);
      if (hint == nullptr && !statement.text.empty()) {
        static constexpr std::size_t kPlanCacheCapacity = 256;
        if (plan_cache_.size() >= kPlanCacheCapacity) plan_cache_.clear();
        plan_cache_[statement.text] = PlanCacheEntry{version, decision};
      }
      return result;
    }
    return ExecuteSelectTreeWalk(it->second, *statement.select, exec);
  }
  if (statement.insert.has_value() || statement.del.has_value()) {
    Result<QueryResult> ack =
        statement.insert.has_value()
            ? ApplyInsert(it->second, *statement.insert)
            : ApplyDelete(it->second, *statement.del);
    // The MO changed shape: cached plan decisions against it are stale.
    if (ack.ok()) ++catalog_versions_[std::string(mo_name)];
    return ack;
  }
  return ExecuteShow(it->second, *statement.show);
}

}  // namespace mdql
}  // namespace mddc
