#include "mdql/mdql.h"

#include <algorithm>

#include "algebra/derived.h"
#include "algebra/operators.h"
#include "algebra/timeslice.h"
#include "common/date.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "engine/executor.h"
#include "mdql/parser.h"

namespace mddc {
namespace mdql {
namespace {

/// Resolves "dimension.category" against an MO.
struct ResolvedLevel {
  std::size_t dim = 0;
  CategoryTypeIndex category = 0;
};

Result<ResolvedLevel> Resolve(const MdObject& mo, const LevelRef& level) {
  MDDC_ASSIGN_OR_RETURN(std::size_t dim, mo.FindDimension(level.dimension));
  MDDC_ASSIGN_OR_RETURN(CategoryTypeIndex category,
                        mo.dimension(dim).type().Find(level.category));
  return ResolvedLevel{dim, category};
}

/// Finds the dimension value named `text` in the given category by
/// trying every representation registered for it. NotFound if no
/// representation knows the name. Each probe is an interned-hash lookup
/// (no key string materialized); `exec` (optional) counts resolutions
/// into stats.interner_hits / interner_misses.
Result<ValueId> ResolveValueByName(const MdObject& mo,
                                   const ResolvedLevel& level,
                                   const std::string& text,
                                   ExecContext* exec) {
  const Dimension& dimension = mo.dimension(level.dim);
  for (const auto& [category, rep_name, rep] :
       dimension.AllRepresentations()) {
    if (category != level.category) continue;
    auto value = rep->Lookup(text);
    if (value.ok()) {
      if (exec != nullptr) ++exec->stats.interner_hits;
      return value;
    }
  }
  if (exec != nullptr) ++exec->stats.interner_misses;
  return Status::NotFound(StrCat("no value named '", text,
                                 "' in category '",
                                 dimension.type().category(level.category).name,
                                 "' of dimension '", dimension.name(), "'"));
}

/// Picks the labeling representation for a grouping column: an explicit
/// request, else the first of Name / Code / Value that exists.
std::string PickRepresentation(const MdObject& mo,
                               const ResolvedLevel& level,
                               const std::string& requested) {
  if (!requested.empty()) return requested;
  const Dimension& dimension = mo.dimension(level.dim);
  for (const char* candidate : {"Name", "Code", "Value"}) {
    if (dimension.FindRepresentation(level.category, candidate).ok()) {
      return candidate;
    }
  }
  return "Name";
}

/// A predicate that matches no fact (an unknown value name matches
/// nothing; NOT on the atom then matches everything).
Predicate False() { return Predicate::True().Not(); }

Result<Predicate> BuildAtom(const MdObject& mo, const WhereAtom& atom,
                            ExecContext* exec) {
  Predicate leaf = Predicate::True();
  switch (atom.kind) {
    case WhereAtom::Kind::kNameEquals: {
      MDDC_ASSIGN_OR_RETURN(ResolvedLevel level, Resolve(mo, atom.level));
      auto value = ResolveValueByName(mo, level, atom.text, exec);
      leaf = value.ok() ? Predicate::CharacterizedBy(level.dim, *value)
                        : False();
      break;
    }
    case WhereAtom::Kind::kNumericCompare: {
        MDDC_ASSIGN_OR_RETURN(std::size_t dim,
                              mo.FindDimension(atom.dimension));
        switch (atom.cmp) {
          case WhereAtom::Cmp::kLt:
            leaf = Predicate::NumericCompare(
                dim, Predicate::Comparison::kLess, atom.number);
            break;
          case WhereAtom::Cmp::kLe:
            leaf = Predicate::NumericCompare(
                dim, Predicate::Comparison::kLessEq, atom.number);
            break;
          case WhereAtom::Cmp::kEq:
            leaf = Predicate::NumericCompare(dim, Predicate::Comparison::kEq,
                                             atom.number);
            break;
          case WhereAtom::Cmp::kGe:
            leaf = Predicate::NumericCompare(
                dim, Predicate::Comparison::kGreaterEq, atom.number);
            break;
          case WhereAtom::Cmp::kGt:
            leaf = Predicate::NumericCompare(
                dim, Predicate::Comparison::kGreater, atom.number);
            break;
          case WhereAtom::Cmp::kNe:
            leaf = Predicate::NumericCompare(dim, Predicate::Comparison::kEq,
                                             atom.number)
                       .Not()
                       .And(Predicate::HasValueInCategory(
                           dim, mo.dimension(dim).type().bottom()));
            break;
        }
        break;
      }
      case WhereAtom::Kind::kProbAtLeast: {
        MDDC_ASSIGN_OR_RETURN(ResolvedLevel level, Resolve(mo, atom.level));
        auto value = ResolveValueByName(mo, level, atom.text, exec);
        leaf = value.ok()
                   ? Predicate::MinProbability(level.dim, *value, atom.number)
                   : False();
        break;
      }
  }
  if (atom.negated) leaf = leaf.Not();
  return leaf;
}

Result<Predicate> BuildWhere(const MdObject& mo, const WhereExpr& expr,
                             ExecContext* exec) {
  switch (expr.kind) {
    case WhereExpr::Kind::kAtom:
      return BuildAtom(mo, expr.atom, exec);
    case WhereExpr::Kind::kAnd: {
      MDDC_ASSIGN_OR_RETURN(Predicate left, BuildWhere(mo, *expr.left, exec));
      MDDC_ASSIGN_OR_RETURN(Predicate right,
                            BuildWhere(mo, *expr.right, exec));
      return left.And(std::move(right));
    }
    case WhereExpr::Kind::kOr: {
      MDDC_ASSIGN_OR_RETURN(Predicate left, BuildWhere(mo, *expr.left, exec));
      MDDC_ASSIGN_OR_RETURN(Predicate right,
                            BuildWhere(mo, *expr.right, exec));
      return left.Or(std::move(right));
    }
  }
  return Status::InvalidArgument("unknown WHERE node kind");
}

Result<AggFunction> BuildAggFunction(const MdObject& mo, const AggRef& agg) {
  if (agg.fn == AggRef::Fn::kSetCount) return AggFunction::SetCount();
  MDDC_ASSIGN_OR_RETURN(std::size_t dim, mo.FindDimension(agg.dimension));
  switch (agg.fn) {
    case AggRef::Fn::kCount:
      return AggFunction::Count(dim);
    case AggRef::Fn::kSum:
      return AggFunction::Sum(dim);
    case AggRef::Fn::kAvg:
      return AggFunction::Avg(dim);
    case AggRef::Fn::kMin:
      return AggFunction::Min(dim);
    case AggRef::Fn::kMax:
      return AggFunction::Max(dim);
    case AggRef::Fn::kSetCount:
      break;
  }
  return AggFunction::SetCount();
}

Result<QueryResult> ExecuteSelect(const MdObject& source,
                                  const SelectStatement& select,
                                  ExecContext* exec) {
  MdObject mo = source;
  if (select.as_of.has_value()) {
    // ASOF 'NOW' slices at the growing NOW sentinel: memberships and
    // characterizations whose valid time runs to NOW survive, anything
    // that ended at a concrete chronon is cut — the "current state" of
    // the MO, deterministic because no clock is read.
    Chronon day = kNowChronon;
    if (*select.as_of != "NOW") {
      MDDC_ASSIGN_OR_RETURN(day, ParseDate(*select.as_of));
    }
    MDDC_ASSIGN_OR_RETURN(mo, ValidTimeslice(mo, day, exec));
  }

  QueryResult result;
  for (const GroupRef& group : select.group_by) {
    result.columns.push_back(
        StrCat(group.level.dimension, ".", group.level.category));
  }
  for (const AggRef& agg : select.aggregates) {
    result.columns.push_back(agg.label);
  }

  if (select.where != nullptr) {
    MDDC_ASSIGN_OR_RETURN(Predicate predicate,
                          BuildWhere(mo, *select.where, exec));
    MDDC_ASSIGN_OR_RETURN(mo, Select(mo, predicate));
  }

  // Resolve grouping columns once.
  std::vector<SqlGroupBy> group_by;
  for (const GroupRef& group : select.group_by) {
    MDDC_ASSIGN_OR_RETURN(ResolvedLevel level, Resolve(mo, group.level));
    group_by.push_back(SqlGroupBy{
        level.dim, level.category,
        PickRepresentation(mo, level, group.representation)});
  }

  // Run each aggregate over the same grouping and merge by group key.
  std::map<std::vector<std::string>, std::vector<std::string>> merged;
  for (std::size_t a = 0; a < select.aggregates.size(); ++a) {
    MDDC_ASSIGN_OR_RETURN(AggFunction function,
                          BuildAggFunction(mo, select.aggregates[a]));
    MDDC_ASSIGN_OR_RETURN(std::vector<SqlRow> rows,
                          SqlAggregate(mo, group_by, function, kNowChronon,
                                       exec));
    for (SqlRow& row : rows) {
      auto [it, inserted] = merged.try_emplace(
          row.group,
          std::vector<std::string>(select.aggregates.size(), "-"));
      it->second[a] = FormatDouble(row.value);
    }
  }
  for (const auto& [group, values] : merged) {
    std::vector<std::string> row = group;
    row.insert(row.end(), values.begin(), values.end());
    result.rows.push_back(std::move(row));
  }
  return result;
}

Result<QueryResult> ExecuteShow(const MdObject& mo,
                                const ShowStatement& show) {
  QueryResult result;
  if (show.what == ShowStatement::What::kDimensions) {
    result.columns = {"dimension", "categories", "bottom", "values"};
    for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
      const Dimension& dimension = mo.dimension(i);
      const DimensionType& type = dimension.type();
      result.rows.push_back({dimension.name(),
                             std::to_string(type.category_count()),
                             type.category(type.bottom()).name,
                             std::to_string(dimension.value_count())});
    }
    return result;
  }
  MDDC_ASSIGN_OR_RETURN(std::size_t dim, mo.FindDimension(show.dimension));
  const Dimension& dimension = mo.dimension(dim);
  const DimensionType& type = dimension.type();
  if (show.what == ShowStatement::What::kPaths) {
    result.columns = {"path"};
    for (const auto& path : type.AggregationPaths(type.bottom())) {
      std::vector<std::string> names;
      for (CategoryTypeIndex c : path) names.push_back(type.category(c).name);
      result.rows.push_back({Join(names, " < ")});
    }
    return result;
  }
  result.columns = {"category", "agg type", "contained in", "values"};
  for (CategoryTypeIndex c : type.AtOrAbove(type.bottom())) {
    std::vector<std::string> parents;
    for (CategoryTypeIndex p : type.Pred(c)) {
      parents.push_back(type.category(p).name);
    }
    result.rows.push_back(
        {type.category(c).name,
         std::string(AggregationTypeName(type.AggType(c))),
         Join(parents, ", "),
         std::to_string(dimension.ValuesIn(c).size())});
  }
  return result;
}

}  // namespace

bool IsMutating(const Statement& statement) {
  return statement.insert.has_value();
}

const std::string& StatementMoName(const Statement& statement) {
  if (statement.select.has_value()) return statement.select->mo_name;
  if (statement.insert.has_value()) return statement.insert->mo_name;
  return statement.show->mo_name;
}

Result<QueryResult> ApplyInsert(MdObject& mo, const InsertStatement& insert) {
  if (insert.assignments.empty()) {
    return Status::InvalidArgument(
        "INSERT needs at least one level assignment");
  }
  // Resolve every assignment before mutating anything, so a bad name
  // leaves the MO untouched.
  struct Resolved {
    std::size_t dim;
    ValueId value;
    double prob;
  };
  std::vector<Resolved> resolved;
  resolved.reserve(insert.assignments.size());
  for (const InsertAssignment& assign : insert.assignments) {
    MDDC_ASSIGN_OR_RETURN(ResolvedLevel level, Resolve(mo, assign.level));
    MDDC_ASSIGN_OR_RETURN(ValueId value,
                          ResolveValueByName(mo, level, assign.text,
                                             /*exec=*/nullptr));
    if (assign.prob < 0.0 || assign.prob > 1.0) {
      return Status::InvalidArgument(
          StrCat("probability out of [0,1]: ", assign.prob));
    }
    resolved.push_back(Resolved{level.dim, value, assign.prob});
  }

  const FactId fact = mo.registry()->Atom(insert.key);
  MDDC_RETURN_NOT_OK(mo.AddFact(fact));
  for (const Resolved& r : resolved) {
    MDDC_RETURN_NOT_OK(
        mo.Relate(r.dim, fact, r.value, Lifespan::AlwaysSpan(), r.prob));
  }
  MDDC_RETURN_NOT_OK(mo.CoverWithTop());

  QueryResult ack;
  ack.columns = {"inserted", "fact"};
  ack.rows.push_back({"1", mo.registry()->ToString(fact)});
  return ack;
}

std::string QueryResult::ToString() const {
  TablePrinter printer(columns);
  for (const auto& row : rows) printer.AddRow(row);
  return printer.ToString();
}

Status Session::Register(std::string name, MdObject mo) {
  if (catalog_.count(name) != 0) {
    return Status::InvariantViolation(
        StrCat("MO '", name, "' already registered"));
  }
  catalog_.emplace(std::move(name), std::move(mo));
  return Status::OK();
}

std::vector<std::string> Session::names() const {
  std::vector<std::string> result;
  result.reserve(catalog_.size());
  for (const auto& [name, mo] : catalog_) result.push_back(name);
  return result;
}

Result<const MdObject*> Session::Get(std::string_view name) const {
  auto it = catalog_.find(name);
  if (it == catalog_.end()) {
    return Status::NotFound(StrCat("no MO named '", name, "' is registered"));
  }
  return &it->second;
}

Result<QueryResult> Session::Execute(const std::string& query,
                                     ExecContext* exec) {
  MDDC_ASSIGN_OR_RETURN(Statement statement, Parse(query));
  return Execute(statement, exec);
}

Result<QueryResult> Session::Execute(const Statement& statement,
                                     ExecContext* exec) {
  Result<QueryResult> result = ExecuteImpl(statement, exec);
  // Statement boundary: rewind the query-lifetime arenas (a no-op when
  // the statement's operators reclaimed their scratch already).
  if (exec != nullptr) exec->ResetQueryArenas();
  return result;
}

Result<QueryResult> Session::ExecuteImpl(const Statement& statement,
                                         ExecContext* exec) {
  const std::string& mo_name = StatementMoName(statement);
  auto it = catalog_.find(mo_name);
  if (it == catalog_.end()) {
    return Status::NotFound(StrCat("no MO named '", mo_name,
                                   "' is registered in this session"));
  }
  if (statement.select.has_value()) {
    return ExecuteSelect(it->second, *statement.select, exec);
  }
  if (statement.insert.has_value()) {
    return ApplyInsert(it->second, *statement.insert);
  }
  return ExecuteShow(it->second, *statement.show);
}

}  // namespace mdql
}  // namespace mddc
