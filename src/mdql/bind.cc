#include "mdql/bind.h"

#include <map>
#include <vector>

#include "algebra/derived.h"
#include "algebra/operators.h"
#include "algebra/timeslice.h"
#include "common/date.h"
#include "common/strings.h"
#include "engine/executor.h"

namespace mddc {
namespace mdql {

Result<ResolvedLevel> Resolve(const MdObject& mo, const LevelRef& level) {
  MDDC_ASSIGN_OR_RETURN(std::size_t dim,
                        mo.FindDimension(level.dimension.view()));
  MDDC_ASSIGN_OR_RETURN(CategoryTypeIndex category,
                        mo.dimension(dim).type().Find(level.category.view()));
  return ResolvedLevel{dim, category};
}

Result<ValueId> ResolveValueByName(const MdObject& mo,
                                   const ResolvedLevel& level,
                                   const std::string& text,
                                   ExecContext* exec) {
  const Dimension& dimension = mo.dimension(level.dim);
  for (const auto& [category, rep_name, rep] :
       dimension.AllRepresentations()) {
    if (category != level.category) continue;
    auto value = rep->Lookup(text);
    if (value.ok()) {
      if (exec != nullptr) ++exec->stats.interner_hits;
      return value;
    }
  }
  if (exec != nullptr) ++exec->stats.interner_misses;
  return Status::NotFound(StrCat("no value named '", text,
                                 "' in category '",
                                 dimension.type().category(level.category).name,
                                 "' of dimension '", dimension.name(), "'"));
}

std::string PickRepresentation(const MdObject& mo, const ResolvedLevel& level,
                               const Name& requested) {
  if (!requested.empty()) return requested.str();
  const Dimension& dimension = mo.dimension(level.dim);
  for (const char* candidate : {"Name", "Code", "Value"}) {
    if (dimension.FindRepresentation(level.category, candidate).ok()) {
      return candidate;
    }
  }
  return "Name";
}

namespace {

/// A predicate that matches no fact (an unknown value name matches
/// nothing; NOT on the atom then matches everything).
Predicate False() { return Predicate::True().Not(); }

Result<Predicate> BuildAtom(const MdObject& mo, const WhereAtom& atom,
                            ExecContext* exec) {
  Predicate leaf = Predicate::True();
  switch (atom.kind) {
    case WhereAtom::Kind::kNameEquals: {
      MDDC_ASSIGN_OR_RETURN(ResolvedLevel level, Resolve(mo, atom.level));
      auto value = ResolveValueByName(mo, level, atom.text, exec);
      leaf = value.ok() ? Predicate::CharacterizedBy(level.dim, *value)
                        : False();
      break;
    }
    case WhereAtom::Kind::kNumericCompare: {
        MDDC_ASSIGN_OR_RETURN(std::size_t dim,
                              mo.FindDimension(atom.dimension.view()));
        switch (atom.cmp) {
          case WhereAtom::Cmp::kLt:
            leaf = Predicate::NumericCompare(
                dim, Predicate::Comparison::kLess, atom.number);
            break;
          case WhereAtom::Cmp::kLe:
            leaf = Predicate::NumericCompare(
                dim, Predicate::Comparison::kLessEq, atom.number);
            break;
          case WhereAtom::Cmp::kEq:
            leaf = Predicate::NumericCompare(dim, Predicate::Comparison::kEq,
                                             atom.number);
            break;
          case WhereAtom::Cmp::kGe:
            leaf = Predicate::NumericCompare(
                dim, Predicate::Comparison::kGreaterEq, atom.number);
            break;
          case WhereAtom::Cmp::kGt:
            leaf = Predicate::NumericCompare(
                dim, Predicate::Comparison::kGreater, atom.number);
            break;
          case WhereAtom::Cmp::kNe:
            leaf = Predicate::NumericCompare(dim, Predicate::Comparison::kEq,
                                             atom.number)
                       .Not()
                       .And(Predicate::HasValueInCategory(
                           dim, mo.dimension(dim).type().bottom()));
            break;
        }
        break;
      }
      case WhereAtom::Kind::kProbAtLeast: {
        MDDC_ASSIGN_OR_RETURN(ResolvedLevel level, Resolve(mo, atom.level));
        auto value = ResolveValueByName(mo, level, atom.text, exec);
        leaf = value.ok()
                   ? Predicate::MinProbability(level.dim, *value, atom.number)
                   : False();
        break;
      }
  }
  if (atom.negated) leaf = leaf.Not();
  return leaf;
}

}  // namespace

Result<Predicate> BuildWhere(const MdObject& mo, const WhereExpr& expr,
                             ExecContext* exec) {
  switch (expr.kind) {
    case WhereExpr::Kind::kAtom:
      return BuildAtom(mo, expr.atom, exec);
    case WhereExpr::Kind::kAnd: {
      MDDC_ASSIGN_OR_RETURN(Predicate left, BuildWhere(mo, *expr.left, exec));
      MDDC_ASSIGN_OR_RETURN(Predicate right,
                            BuildWhere(mo, *expr.right, exec));
      return left.And(std::move(right));
    }
    case WhereExpr::Kind::kOr: {
      MDDC_ASSIGN_OR_RETURN(Predicate left, BuildWhere(mo, *expr.left, exec));
      MDDC_ASSIGN_OR_RETURN(Predicate right,
                            BuildWhere(mo, *expr.right, exec));
      return left.Or(std::move(right));
    }
  }
  return Status::InvalidArgument("unknown WHERE node kind");
}

Result<AggFunction> BuildAggFunction(const MdObject& mo, const AggRef& agg) {
  if (agg.fn == AggRef::Fn::kSetCount) return AggFunction::SetCount();
  MDDC_ASSIGN_OR_RETURN(std::size_t dim,
                        mo.FindDimension(agg.dimension.view()));
  switch (agg.fn) {
    case AggRef::Fn::kCount:
      return AggFunction::Count(dim);
    case AggRef::Fn::kSum:
      return AggFunction::Sum(dim);
    case AggRef::Fn::kAvg:
      return AggFunction::Avg(dim);
    case AggRef::Fn::kMin:
      return AggFunction::Min(dim);
    case AggRef::Fn::kMax:
      return AggFunction::Max(dim);
    case AggRef::Fn::kSetCount:
      break;
  }
  return AggFunction::SetCount();
}

Result<QueryResult> ExecuteSelectTreeWalk(const MdObject& source,
                                          const SelectStatement& select,
                                          ExecContext* exec) {
  MdObject mo = source;
  if (select.as_of.has_value()) {
    // ASOF 'NOW' slices at the growing NOW sentinel: memberships and
    // characterizations whose valid time runs to NOW survive, anything
    // that ended at a concrete chronon is cut — the "current state" of
    // the MO, deterministic because no clock is read.
    Chronon day = kNowChronon;
    if (*select.as_of != "NOW") {
      MDDC_ASSIGN_OR_RETURN(day, ParseDate(*select.as_of));
    }
    MDDC_ASSIGN_OR_RETURN(mo, ValidTimeslice(mo, day, exec));
  }

  QueryResult result;
  for (const GroupRef& group : select.group_by) {
    result.columns.push_back(
        StrCat(group.level.dimension, ".", group.level.category));
  }
  for (const AggRef& agg : select.aggregates) {
    result.columns.push_back(agg.label);
  }

  if (select.where != nullptr) {
    MDDC_ASSIGN_OR_RETURN(Predicate predicate,
                          BuildWhere(mo, *select.where, exec));
    MDDC_ASSIGN_OR_RETURN(mo, Select(mo, predicate));
  }

  // Resolve grouping columns once.
  std::vector<SqlGroupBy> group_by;
  for (const GroupRef& group : select.group_by) {
    MDDC_ASSIGN_OR_RETURN(ResolvedLevel level, Resolve(mo, group.level));
    group_by.push_back(SqlGroupBy{
        level.dim, level.category,
        PickRepresentation(mo, level, group.representation)});
  }

  // Run each aggregate over the same grouping and merge by group key.
  std::map<std::vector<std::string>, std::vector<std::string>> merged;
  for (std::size_t a = 0; a < select.aggregates.size(); ++a) {
    MDDC_ASSIGN_OR_RETURN(AggFunction function,
                          BuildAggFunction(mo, select.aggregates[a]));
    MDDC_ASSIGN_OR_RETURN(std::vector<SqlRow> rows,
                          SqlAggregate(mo, group_by, function, kNowChronon,
                                       exec));
    for (SqlRow& row : rows) {
      auto [it, inserted] = merged.try_emplace(
          row.group,
          std::vector<std::string>(select.aggregates.size(), "-"));
      it->second[a] = FormatDouble(row.value);
    }
  }
  for (const auto& [group, values] : merged) {
    std::vector<std::string> row = group;
    row.insert(row.end(), values.begin(), values.end());
    result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace mdql
}  // namespace mddc
