#include "mdql/parser.h"

#include <cctype>
#include <cmath>

#include "common/strings.h"
#include "mdql/token.h"

namespace mddc {
namespace mdql {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    Statement statement;
    statement.explain = Accept(TokenKind::kExplain);
    if (Peek().kind == TokenKind::kSelect) {
      MDDC_ASSIGN_OR_RETURN(statement.select, ParseSelect());
    } else if (Peek().kind == TokenKind::kShow) {
      MDDC_ASSIGN_OR_RETURN(statement.show, ParseShow());
    } else if (Peek().kind == TokenKind::kInsert) {
      MDDC_ASSIGN_OR_RETURN(statement.insert, ParseInsert());
    } else if (Peek().kind == TokenKind::kDelete) {
      MDDC_ASSIGN_OR_RETURN(statement.del, ParseDelete());
    } else {
      return Unexpected(statement.explain
                            ? "SELECT, SHOW, INSERT or DELETE"
                            : "EXPLAIN, SELECT, SHOW, INSERT or DELETE");
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Unexpected("end of query");
    }
    return statement;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool Accept(TokenKind kind) {
    if (Peek().kind != kind) return false;
    ++pos_;
    return true;
  }

  Status Expect(TokenKind kind) {
    if (!Accept(kind)) {
      return Status::InvalidArgument(
          StrCat("expected ", TokenKindName(kind), " but found ",
                 TokenKindName(Peek().kind), " at offset ", Peek().offset));
    }
    return Status::OK();
  }

  Status Unexpected(const std::string& expected) {
    return Status::InvalidArgument(
        StrCat("expected ", expected, " but found ",
               TokenKindName(Peek().kind), " at offset ", Peek().offset));
  }

  Result<std::string> ExpectIdentifier() {
    if (Peek().kind != TokenKind::kIdentifier) {
      MDDC_RETURN_NOT_OK(Unexpected("an identifier"));
    }
    return Advance().text;
  }

  /// An identifier interned once, here at parse time — every later layer
  /// (compiler, binder, catalog) passes the 4-byte handle around.
  Result<Name> ExpectName() {
    if (Peek().kind != TokenKind::kIdentifier) {
      MDDC_RETURN_NOT_OK(Unexpected("an identifier"));
    }
    return Name::Of(Advance().text);
  }

  Result<LevelRef> ParseLevelRef() {
    LevelRef level;
    MDDC_ASSIGN_OR_RETURN(level.dimension, ExpectName());
    MDDC_RETURN_NOT_OK(Expect(TokenKind::kDot));
    MDDC_ASSIGN_OR_RETURN(level.category, ExpectName());
    return level;
  }

  Result<AggRef> ParseAgg() {
    AggRef agg;
    if (Accept(TokenKind::kCount)) {
      if (Accept(TokenKind::kLParen)) {
        agg.fn = AggRef::Fn::kCount;
        MDDC_ASSIGN_OR_RETURN(agg.dimension, ExpectName());
        MDDC_RETURN_NOT_OK(Expect(TokenKind::kRParen));
        agg.label = StrCat("COUNT(", agg.dimension, ")");
      } else {
        agg.fn = AggRef::Fn::kSetCount;
        agg.label = "COUNT";
      }
      return agg;
    }
    MDDC_ASSIGN_OR_RETURN(std::string fn, ExpectIdentifier());
    std::string upper = fn;
    for (char& c : upper) c = static_cast<char>(std::toupper(c));
    if (upper == "SUM") {
      agg.fn = AggRef::Fn::kSum;
    } else if (upper == "AVG") {
      agg.fn = AggRef::Fn::kAvg;
    } else if (upper == "MIN") {
      agg.fn = AggRef::Fn::kMin;
    } else if (upper == "MAX") {
      agg.fn = AggRef::Fn::kMax;
    } else {
      return Status::InvalidArgument(
          StrCat("unknown aggregate function '", fn, "'"));
    }
    MDDC_RETURN_NOT_OK(Expect(TokenKind::kLParen));
    MDDC_ASSIGN_OR_RETURN(agg.dimension, ExpectName());
    MDDC_RETURN_NOT_OK(Expect(TokenKind::kRParen));
    agg.label = StrCat(upper, "(", agg.dimension, ")");
    return agg;
  }

  Result<WhereAtom> ParseAtom() {
    WhereAtom atom;
    if (Accept(TokenKind::kProb)) {
      atom.kind = WhereAtom::Kind::kProbAtLeast;
      MDDC_RETURN_NOT_OK(Expect(TokenKind::kLParen));
      MDDC_ASSIGN_OR_RETURN(atom.level, ParseLevelRef());
      MDDC_RETURN_NOT_OK(Expect(TokenKind::kEq));
      if (Peek().kind != TokenKind::kString) {
        MDDC_RETURN_NOT_OK(Unexpected("a string literal"));
      }
      atom.text = Advance().text;
      MDDC_RETURN_NOT_OK(Expect(TokenKind::kRParen));
      MDDC_RETURN_NOT_OK(Expect(TokenKind::kGe));
      if (Peek().kind != TokenKind::kNumber) {
        MDDC_RETURN_NOT_OK(Unexpected("a probability"));
      }
      atom.number = Advance().number;
      return atom;
    }
    atom.negated = Accept(TokenKind::kNot);
    MDDC_ASSIGN_OR_RETURN(Name first, ExpectName());
    if (Accept(TokenKind::kDot)) {
      atom.kind = WhereAtom::Kind::kNameEquals;
      atom.level.dimension = first;
      MDDC_ASSIGN_OR_RETURN(atom.level.category, ExpectName());
      MDDC_RETURN_NOT_OK(Expect(TokenKind::kEq));
      if (Peek().kind != TokenKind::kString) {
        MDDC_RETURN_NOT_OK(Unexpected("a string literal"));
      }
      atom.text = Advance().text;
      return atom;
    }
    atom.kind = WhereAtom::Kind::kNumericCompare;
    atom.dimension = first;
    switch (Peek().kind) {
      case TokenKind::kEq:
        atom.cmp = WhereAtom::Cmp::kEq;
        break;
      case TokenKind::kNe:
        atom.cmp = WhereAtom::Cmp::kNe;
        break;
      case TokenKind::kLt:
        atom.cmp = WhereAtom::Cmp::kLt;
        break;
      case TokenKind::kLe:
        atom.cmp = WhereAtom::Cmp::kLe;
        break;
      case TokenKind::kGt:
        atom.cmp = WhereAtom::Cmp::kGt;
        break;
      case TokenKind::kGe:
        atom.cmp = WhereAtom::Cmp::kGe;
        break;
      default:
        MDDC_RETURN_NOT_OK(Unexpected("a comparison operator"));
    }
    Advance();
    if (Peek().kind != TokenKind::kNumber) {
      MDDC_RETURN_NOT_OK(Unexpected("a number"));
    }
    atom.number = Advance().number;
    return atom;
  }

  // where := and_expr (OR and_expr)* ; and_expr := primary (AND primary)* ;
  // primary := '(' where ')' | atom. OR binds looser than AND.
  Result<std::shared_ptr<const WhereExpr>> ParseWherePrimary() {
    // Atoms never start with '(' (PROB consumes its own parentheses), so
    // a leading '(' unambiguously opens a grouped expression.
    if (Accept(TokenKind::kLParen)) {
      MDDC_ASSIGN_OR_RETURN(auto inner, ParseWhereExpr());
      MDDC_RETURN_NOT_OK(Expect(TokenKind::kRParen));
      return inner;
    }
    MDDC_ASSIGN_OR_RETURN(WhereAtom atom, ParseAtom());
    auto node = std::make_shared<WhereExpr>();
    node->kind = WhereExpr::Kind::kAtom;
    node->atom = std::move(atom);
    return std::shared_ptr<const WhereExpr>(node);
  }

  Result<std::shared_ptr<const WhereExpr>> ParseWhereAnd() {
    MDDC_ASSIGN_OR_RETURN(auto left, ParseWherePrimary());
    while (Accept(TokenKind::kAnd)) {
      MDDC_ASSIGN_OR_RETURN(auto right, ParseWherePrimary());
      auto node = std::make_shared<WhereExpr>();
      node->kind = WhereExpr::Kind::kAnd;
      node->left = left;
      node->right = right;
      left = node;
    }
    return left;
  }

  Result<std::shared_ptr<const WhereExpr>> ParseWhereExpr() {
    MDDC_ASSIGN_OR_RETURN(auto left, ParseWhereAnd());
    while (Accept(TokenKind::kOr)) {
      MDDC_ASSIGN_OR_RETURN(auto right, ParseWhereAnd());
      auto node = std::make_shared<WhereExpr>();
      node->kind = WhereExpr::Kind::kOr;
      node->left = left;
      node->right = right;
      left = node;
    }
    return left;
  }

  Result<SelectStatement> ParseSelect() {
    MDDC_RETURN_NOT_OK(Expect(TokenKind::kSelect));
    SelectStatement select;
    do {
      MDDC_ASSIGN_OR_RETURN(AggRef agg, ParseAgg());
      select.aggregates.push_back(std::move(agg));
    } while (Accept(TokenKind::kComma));
    MDDC_RETURN_NOT_OK(Expect(TokenKind::kFrom));
    MDDC_ASSIGN_OR_RETURN(select.mo_name, ExpectName());
    if (Accept(TokenKind::kBy)) {
      do {
        GroupRef group;
        MDDC_ASSIGN_OR_RETURN(group.level, ParseLevelRef());
        if (Accept(TokenKind::kAs)) {
          MDDC_ASSIGN_OR_RETURN(group.representation, ExpectName());
        }
        select.group_by.push_back(std::move(group));
      } while (Accept(TokenKind::kComma));
    }
    if (Accept(TokenKind::kWhere)) {
      MDDC_ASSIGN_OR_RETURN(select.where, ParseWhereExpr());
    }
    if (Accept(TokenKind::kAsOf)) {
      if (Peek().kind != TokenKind::kString) {
        MDDC_RETURN_NOT_OK(Unexpected("a date literal"));
      }
      select.as_of = Advance().text;
    }
    return select;
  }

  Result<std::uint64_t> ParseFactKey() {
    MDDC_RETURN_NOT_OK(Expect(TokenKind::kFact));
    if (Peek().kind != TokenKind::kNumber) {
      MDDC_RETURN_NOT_OK(Unexpected("a numeric fact key"));
    }
    const double key = Advance().number;
    if (key < 0.0 || key != std::floor(key)) {
      return Status::InvalidArgument(
          StrCat("fact key must be a non-negative integer, got ", key));
    }
    return static_cast<std::uint64_t>(key);
  }

  // insert := INSERT INTO mo fact (',' fact)* ;
  // fact   := FACT key '(' assignment (',' assignment)* ')'.
  // The comma both separates assignments (inside the parentheses) and
  // FACT groups (outside) — the closing ')' disambiguates.
  Result<InsertStatement> ParseInsert() {
    MDDC_RETURN_NOT_OK(Expect(TokenKind::kInsert));
    MDDC_RETURN_NOT_OK(Expect(TokenKind::kInto));
    InsertStatement insert;
    MDDC_ASSIGN_OR_RETURN(insert.mo_name, ExpectName());
    do {
      InsertFact fact;
      MDDC_ASSIGN_OR_RETURN(fact.key, ParseFactKey());
      MDDC_RETURN_NOT_OK(Expect(TokenKind::kLParen));
      do {
        InsertAssignment assign;
        MDDC_ASSIGN_OR_RETURN(assign.level, ParseLevelRef());
        MDDC_RETURN_NOT_OK(Expect(TokenKind::kEq));
        if (Peek().kind != TokenKind::kString) {
          MDDC_RETURN_NOT_OK(Unexpected("a quoted value name"));
        }
        assign.text = Advance().text;
        if (Accept(TokenKind::kProb)) {
          if (Peek().kind != TokenKind::kNumber) {
            MDDC_RETURN_NOT_OK(Unexpected("a probability"));
          }
          assign.prob = Advance().number;
        }
        fact.assignments.push_back(std::move(assign));
      } while (Accept(TokenKind::kComma));
      MDDC_RETURN_NOT_OK(Expect(TokenKind::kRParen));
      insert.facts.push_back(std::move(fact));
    } while (Accept(TokenKind::kComma));
    return insert;
  }

  Result<DeleteStatement> ParseDelete() {
    MDDC_RETURN_NOT_OK(Expect(TokenKind::kDelete));
    MDDC_RETURN_NOT_OK(Expect(TokenKind::kFrom));
    DeleteStatement del;
    MDDC_ASSIGN_OR_RETURN(del.mo_name, ExpectName());
    MDDC_ASSIGN_OR_RETURN(del.key, ParseFactKey());
    return del;
  }

  Result<ShowStatement> ParseShow() {
    MDDC_RETURN_NOT_OK(Expect(TokenKind::kShow));
    ShowStatement show;
    if (Accept(TokenKind::kDimensions)) {
      show.what = ShowStatement::What::kDimensions;
    } else if (Accept(TokenKind::kHierarchy)) {
      show.what = ShowStatement::What::kHierarchy;
      MDDC_ASSIGN_OR_RETURN(show.dimension, ExpectName());
    } else if (Accept(TokenKind::kPaths)) {
      show.what = ShowStatement::What::kPaths;
      MDDC_ASSIGN_OR_RETURN(show.dimension, ExpectName());
    } else {
      MDDC_RETURN_NOT_OK(Unexpected("DIMENSIONS, HIERARCHY or PATHS"));
    }
    MDDC_RETURN_NOT_OK(Expect(TokenKind::kFrom));
    MDDC_ASSIGN_OR_RETURN(show.mo_name, ExpectName());
    return show;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Statement> Parse(const std::string& source) {
  MDDC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  MDDC_ASSIGN_OR_RETURN(Statement statement, parser.ParseStatement());
  statement.text = source;
  return statement;
}

}  // namespace mdql
}  // namespace mddc
