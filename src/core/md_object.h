#ifndef MDDC_CORE_MD_OBJECT_H_
#define MDDC_CORE_MD_OBJECT_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/id.h"
#include "common/result.h"
#include "core/dimension.h"
#include "core/fact.h"
#include "core/fact_dim_relation.h"
#include "core/schema.h"

namespace mddc {

/// The temporal classification of an MO (paper Section 3.2): snapshot (no
/// time attached), valid-time, transaction-time, or bitemporal. The
/// timeslice operators move an MO down this classification.
enum class TemporalType {
  kSnapshot,
  kValidTime,
  kTransactionTime,
  kBitemporal,
};

std::string_view TemporalTypeName(TemporalType type);

/// A multidimensional object M = (S, F, D, R) (paper Section 3.1): a
/// schema, a set of facts, one dimension per dimension type, and one
/// fact-dimension relation per dimension. This is the unit the algebra's
/// operators consume and produce.
///
/// Facts are ids into a FactRegistry shared among an MO and everything
/// derived from it, so identity-based join and aggregate formation can
/// build pair- and set-structured facts with stable identity.
class MdObject {
 public:
  /// One resolved f ~> e characterization: the fact is characterized by
  /// `value` via the directly related `base` value, during `life`, with
  /// probability `prob`.
  struct Characterization {
    ValueId base;
    ValueId value;
    Lifespan life;
    double prob = 1.0;
  };

  /// Creates an MO with the given fact type name and dimensions (empty
  /// fact set). The schema is derived from the dimension types.
  MdObject(std::string fact_type, std::vector<Dimension> dimensions,
           std::shared_ptr<FactRegistry> registry,
           TemporalType temporal_type = TemporalType::kSnapshot);

  const FactSchema& schema() const { return schema_; }
  TemporalType temporal_type() const { return temporal_type_; }
  void set_temporal_type(TemporalType type) { temporal_type_ = type; }

  const std::shared_ptr<FactRegistry>& registry() const { return registry_; }

  /// The fact set F, sorted by id.
  const std::vector<FactId>& facts() const { return facts_; }
  bool HasFact(FactId fact) const;
  std::size_t fact_count() const { return facts_.size(); }

  std::size_t dimension_count() const { return dimensions_.size(); }
  const Dimension& dimension(std::size_t index) const {
    return dimensions_[index];
  }
  Dimension& dimension_mutable(std::size_t index) {
    return dimensions_[index];
  }
  const FactDimRelation& relation(std::size_t index) const {
    return relations_[index];
  }
  FactDimRelation& relation_mutable(std::size_t index) {
    return relations_[index];
  }

  /// Finds a dimension index by name.
  Result<std::size_t> FindDimension(std::string_view name) const {
    return schema_.Find(name);
  }

  // ---- Population ---------------------------------------------------------

  /// Adds a fact to F (idempotent).
  Status AddFact(FactId fact);

  /// Removes `fact` from F and every pair referencing it from every R_i.
  /// NotFound when the fact is not in F. Removal is never an append: it
  /// rebuilds the relations' indexes, so incremental seal state is
  /// dropped and the next publication re-sorts.
  Status RemoveFact(FactId fact);

  /// Adds the pair (fact, value) to R_i for dimension `dim` during `life`
  /// with probability `prob`. The fact must be in F and the value in the
  /// dimension.
  Status Relate(std::size_t dim, FactId fact, ValueId value,
                const Lifespan& life = Lifespan::AlwaysSpan(),
                double prob = 1.0);

  /// Adds (f, top) in every dimension where f has no pair, implementing
  /// the paper's convention for unknown characterizations ("we add the
  /// pair (f, top) to R").
  Status CoverWithTop();

  /// CoverWithTop restricted to `facts` (each must be in F). Incremental
  /// writers cover only the facts they just added — O(batch) instead of
  /// the full-scan O(|F| * dims) — relying on the invariant that every
  /// previously published fact is already covered.
  Status CoverWithTop(const std::vector<FactId>& facts);

  // ---- Snapshot views (the MVCC serving tier, src/serve) -------------------

  /// A copy of this MO whose derived facts intern into `registry` instead
  /// of the shared one. This is the reader/writer isolation hook of the
  /// serving tier: a published (immutable) MO is never executed against
  /// directly — each session takes a view carrying a FactRegistry fork, so
  /// the set/pair facts its queries create never touch the shared
  /// registry. `registry` must resolve every id this MO references
  /// (a fork or flat copy of the current registry does, id-stably).
  MdObject WithRegistry(std::shared_ptr<FactRegistry> registry) const;

  /// Prepares this MO for lock-free concurrent reads and marks every
  /// dimension publish-frozen: re-enables and fully warms each closure
  /// memo, then sets the freeze flag (see Dimension::publish_frozen).
  /// The caller (the publisher) must compile rollup snapshots — an engine
  /// concern — *before* freezing, and must not mutate the MO afterwards.
  /// Const because it only touches publication metadata and memos.
  void WarmAndFreezeForPublish() const;

  // ---- Characterization ---------------------------------------------------

  /// Every value e with fact ~> e in dimension `dim`: directly related
  /// values plus everything containing them. Lifespans follow the paper's
  /// rule f ~>_Tv e iff (f,e') in_Tv' R and e' <=_Tv'' e with
  /// Tv = Tv' n Tv''; probabilities multiply. Multiple witnesses for the
  /// same e union their lifespans (noisy-or their probabilities).
  std::vector<Characterization> CharacterizedBy(
      FactId fact, std::size_t dim, Chronon prob_at = kNowChronon) const;

  /// The maximal lifespan during which fact ~> value in dimension `dim`.
  Lifespan CharacterizationSpan(FactId fact, std::size_t dim,
                                ValueId value) const;

  /// All facts f with f ~> value in dimension `dim`, with the
  /// characterization lifespan and probability of each (the building
  /// block of the algebra's Group function).
  std::vector<Characterization> FactsCharacterizedBy(
      std::size_t dim, ValueId value, Chronon prob_at = kNowChronon) const;
  /// As above but returns (fact, lifespan, prob) triples keyed by fact.
  std::vector<std::pair<FactId, Characterization>> FactsWith(
      std::size_t dim, ValueId value, Chronon prob_at = kNowChronon) const;

  // ---- Invariants -----------------------------------------------------------

  /// Checks the MO closure conditions of the definition: every pair in
  /// R_i references a fact in F and a value in D_i; every fact is
  /// characterized in every dimension (no missing values); dimensions
  /// validate individually.
  Status Validate() const;

  /// Multi-line dump: schema, facts, relations.
  std::string ToString() const;

 private:
  FactSchema schema_;
  std::vector<Dimension> dimensions_;
  std::vector<FactDimRelation> relations_;
  std::vector<FactId> facts_;  // sorted
  std::shared_ptr<FactRegistry> registry_;
  TemporalType temporal_type_;
};

/// A collection of MOs, possibly with shared subdimensions, usable to
/// "join" data from separate MOs (paper Section 3.1, "multidimensional
/// object family").
class MoFamily {
 public:
  /// Adds an MO under a unique name.
  Status Add(std::string name, MdObject mo);

  Result<const MdObject*> Get(const std::string& name) const;
  Result<MdObject*> GetMutable(const std::string& name);

  std::vector<std::string> names() const;

  /// True when dimension `dim_a` of MO `a` and dimension `dim_b` of MO
  /// `b` share structure (equivalent types, identical value sets per
  /// category and identical order edges), i.e., they are the same
  /// conceptual subdimension and can be used to join the MOs.
  Result<bool> SharesSubdimension(const std::string& a, std::size_t dim_a,
                                  const std::string& b,
                                  std::size_t dim_b) const;

 private:
  std::map<std::string, MdObject> members_;
};

}  // namespace mddc

#endif  // MDDC_CORE_MD_OBJECT_H_
