#include "core/dimension.h"

#include <algorithm>

#include "common/strings.h"

namespace mddc {
namespace {

/// All dimensions share one raw id for their top value; top values never
/// mix across dimensions, and a shared id makes dimension union trivially
/// correct.
constexpr std::uint64_t kTopValueRawId = std::uint64_t{1} << 63;

// Shared empty results for the reference-returning accessors, so lookups
// of unknown values need no per-call allocation.
const std::vector<std::size_t> kNoEdgeIndexes;
const std::vector<ValueId> kNoValues;
const std::vector<Dimension::Containment> kNoContainments;

}  // namespace

Dimension::Dimension(std::shared_ptr<const DimensionType> type)
    : type_(std::move(type)), top_value_(ValueId(kTopValueRawId)) {
  members_by_category_.resize(type_->category_count());
  bool inserted = false;
  value_index_.FindOrInsert(
      Fnv1a64Word(top_value_.raw()), 0,
      [](std::uint32_t) { return false; }, &inserted);
  value_ids_.push_back(top_value_);
  value_infos_.push_back(ValueInfo{type_->top(), Lifespan::AlwaysSpan()});
  members_by_category_[type_->top()].push_back(top_value_);
  // The implicit top value is never "fresh": it predates every append.
  append_watermark_ = 1;
}

void Dimension::CopyMemos(const Dimension& other) {
  auto deep = [](const MemoTable& source) {
    MemoTable copy(source.size());
    for (std::size_t i = 0; i < source.size(); ++i) {
      if (source[i] != nullptr) {
        copy[i] = std::make_unique<std::vector<Containment>>(*source[i]);
      }
    }
    return copy;
  };
  up_memo_ = deep(other.up_memo_);
  down_memo_ = deep(other.down_memo_);
  anc_memo_ = deep(other.anc_memo_);
}

Dimension::Dimension(const Dimension& other)
    : type_(other.type_),
      top_value_(other.top_value_),
      value_ids_(other.value_ids_),
      value_infos_(other.value_infos_),
      value_index_(other.value_index_),
      sorted_slots_(other.sorted_slots_),
      sorted_valid_(other.sorted_valid_),
      members_by_category_(other.members_by_category_),
      edges_(other.edges_),
      edges_by_child_(other.edges_by_child_),
      edges_by_parent_(other.edges_by_parent_),
      representations_(other.representations_),
      next_auto_id_(other.next_auto_id_),
      version_(other.version_),
      structural_version_(other.structural_version_),
      append_watermark_(other.append_watermark_),
      memo_enabled_(other.memo_enabled_),
      compiled_snapshot_(other.compiled_snapshot_),
      publish_frozen_(other.publish_frozen_) {
  // Deep-copy the memos (a copy of a warmed dimension stays warm; the
  // publication promise travels with the frozen flag).
  CopyMemos(other);
}

Dimension& Dimension::operator=(const Dimension& other) {
  if (this != &other) {
    Dimension copy(other);
    *this = std::move(copy);
  }
  return *this;
}

std::uint32_t Dimension::SlotOf(ValueId id) const {
  return value_index_.Find(Fnv1a64Word(id.raw()), [&](std::uint32_t slot) {
    return value_ids_[slot] == id;
  });
}

const std::vector<std::uint32_t>& Dimension::SortedSlots() const {
  if (!sorted_valid_) {
    sorted_slots_.resize(value_ids_.size());
    for (std::uint32_t i = 0; i < sorted_slots_.size(); ++i) {
      sorted_slots_[i] = i;
    }
    std::sort(sorted_slots_.begin(), sorted_slots_.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return value_ids_[a] < value_ids_[b];
              });
    sorted_valid_ = true;
  }
  return sorted_slots_;
}

Status Dimension::AddValue(CategoryTypeIndex category, ValueId id,
                           const Lifespan& membership) {
  if (category >= type_->category_count()) {
    return Status::InvalidArgument(
        StrCat("category index ", category, " out of range in dimension '",
               name(), "'"));
  }
  if (category == type_->top()) {
    return Status::InvalidArgument(
        StrCat("the TOP category of dimension '", name(),
               "' holds only the implicit top value"));
  }
  if (!id.valid()) {
    return Status::InvalidArgument("cannot add a value with an invalid id");
  }
  if (SlotOf(id) != FlatHashIndex::kNone) {
    return Status::InvariantViolation(
        StrCat("value ", id, " already exists in dimension '", name(), "'"));
  }
  if (membership.Empty()) {
    return Status::InvalidArgument(
        StrCat("value ", id, " has an empty membership lifespan"));
  }
  // A value whose id extends the ascending order (every AddValueAuto id
  // does) is a pure append: snapshots may patch their dense remap instead
  // of rebuilding. An explicit id below the high-water mark (or past the
  // shared top id) would land *inside* the ascending dense order, so it
  // counts as structural.
  const bool is_append =
      id.raw() >= next_auto_id_ && id.raw() < kTopValueRawId;
  bool inserted = false;
  value_index_.FindOrInsert(
      Fnv1a64Word(id.raw()), static_cast<std::uint32_t>(value_ids_.size()),
      [&](std::uint32_t slot) { return value_ids_[slot] == id; }, &inserted);
  value_ids_.push_back(id);
  value_infos_.push_back(ValueInfo{category, membership});
  sorted_valid_ = false;
  members_by_category_[category].push_back(id);
  next_auto_id_ = std::max(next_auto_id_, id.raw() + 1);
  // A fresh value has no edges, so memoized closures of other values stay
  // valid — but compiled snapshots cover the value set and must at least
  // extend (append) or rebuild (structural).
  ++version_;
  if (!is_append) {
    ++structural_version_;
    append_watermark_ = static_cast<std::uint32_t>(value_ids_.size());
  }
  publish_frozen_ = false;
  return Status::OK();
}

Result<ValueId> Dimension::AddValueAuto(CategoryTypeIndex category,
                                        const Lifespan& membership) {
  ValueId id(next_auto_id_);
  MDDC_RETURN_NOT_OK(AddValue(category, id, membership));
  return id;
}

Status Dimension::AddOrder(ValueId child, ValueId parent,
                           const Lifespan& life, double prob) {
  const std::uint32_t child_slot = SlotOf(child);
  if (child_slot == FlatHashIndex::kNone) {
    return Status::NotFound(
        StrCat("order child ", child, " not in dimension '", name(), "'"));
  }
  const std::uint32_t parent_slot = SlotOf(parent);
  if (parent_slot == FlatHashIndex::kNone) {
    return Status::NotFound(
        StrCat("order parent ", parent, " not in dimension '", name(), "'"));
  }
  CategoryTypeIndex child_cat = value_infos_[child_slot].category;
  CategoryTypeIndex parent_cat = value_infos_[parent_slot].category;
  if (child_cat == parent_cat || !type_->LessEq(child_cat, parent_cat)) {
    return Status::InvariantViolation(StrCat(
        "order edge in dimension '", name(), "' must go from category '",
        type_->category(child_cat).name, "' to a strictly larger category; '",
        type_->category(parent_cat).name, "' is not"));
  }
  if (prob <= 0.0 || prob > 1.0) {
    return Status::InvalidArgument(
        StrCat("containment probability ", prob, " outside (0,1]"));
  }
  if (life.Empty()) {
    return Status::InvalidArgument("order edge with empty lifespan");
  }
  if (edges_by_child_.size() < value_ids_.size()) {
    edges_by_child_.resize(value_ids_.size());
    edges_by_parent_.resize(value_ids_.size());
  }
  // Coalesce with an existing edge for the same pair: the attached time is
  // the *maximal* chronon set, so repeated assertions union.
  for (std::size_t index : edges_by_child_[child_slot]) {
    Edge& edge = edges_[index];
    if (edge.parent == parent) {
      if (edge.prob != prob) {
        return Status::InvariantViolation(
            StrCat("conflicting probabilities for ", child, " <= ", parent,
                   " in dimension '", name(), "': ", edge.prob, " vs ",
                   prob));
      }
      edge.life = edge.life.Union(life);
      InvalidateClosures();
      return Status::OK();
    }
  }
  edges_by_child_[child_slot].push_back(edges_.size());
  edges_by_parent_[parent_slot].push_back(edges_.size());
  edges_.push_back(Edge{child, parent, life, prob});
  if (child_slot >= append_watermark_) {
    // A brand-new edge under a freshly appended child. No older value can
    // reach the child upward (that would need an edge from an older child
    // to a fresh parent, which AddOrder classifies as structural), so
    // every older value's upward closure is unchanged: drop only the
    // fresh slots' up/ancestor memos and the downward memos.
    InvalidateForAppendedEdge();
  } else {
    // Reachability of pre-existing values changed: drop everything.
    InvalidateClosures();
  }
  return Status::OK();
}

void Dimension::InvalidateClosures() {
  up_memo_.clear();
  down_memo_.clear();
  anc_memo_.clear();
  ++version_;
  ++structural_version_;
  append_watermark_ = static_cast<std::uint32_t>(value_ids_.size());
  publish_frozen_ = false;
}

void Dimension::InvalidateForAppendedEdge() {
  // Downward closures of the new ancestors gained a descendant; which
  // older slots those are is not tracked, so the downward memo drops
  // wholesale (it is rebuilt lazily, and the append paths never read it).
  down_memo_.clear();
  // Fresh values may have memoized their (previously edge-less) closures
  // between appends.
  for (std::size_t slot = append_watermark_; slot < up_memo_.size(); ++slot) {
    up_memo_[slot] = nullptr;
  }
  for (std::size_t slot = append_watermark_; slot < anc_memo_.size();
       ++slot) {
    anc_memo_[slot] = nullptr;
  }
  ++version_;
  publish_frozen_ = false;
}

Representation& Dimension::RepresentationFor(CategoryTypeIndex category,
                                             std::string_view rep_name) {
  auto it = representations_.find(std::make_pair(category, rep_name));
  if (it == representations_.end()) {
    it = representations_
             .emplace(std::make_pair(category, std::string(rep_name)),
                      Representation(std::string(rep_name)))
             .first;
  }
  return it->second;
}

Result<const Representation*> Dimension::FindRepresentation(
    CategoryTypeIndex category, std::string_view rep_name) const {
  auto it = representations_.find(std::make_pair(category, rep_name));
  if (it == representations_.end()) {
    return Status::NotFound(StrCat("no representation '", rep_name,
                                   "' for category '",
                                   type_->category(category).name,
                                   "' of dimension '", name(), "'"));
  }
  return &it->second;
}

std::vector<std::tuple<CategoryTypeIndex, std::string, const Representation*>>
Dimension::AllRepresentations() const {
  std::vector<std::tuple<CategoryTypeIndex, std::string, const Representation*>>
      result;
  result.reserve(representations_.size());
  for (const auto& [key, rep] : representations_) {
    result.emplace_back(key.first, key.second, &rep);
  }
  return result;
}

Result<double> Dimension::NumericValueOf(ValueId id, Chronon at) const {
  MDDC_ASSIGN_OR_RETURN(CategoryTypeIndex category, CategoryOf(id));
  // Preferred: an explicitly numeric representation named "Value".
  if (auto named = FindRepresentation(category, "Value"); named.ok()) {
    auto numeric = (*named)->GetNumeric(id, at);
    if (numeric.ok()) return numeric;
  }
  for (const auto& [key, rep] : representations_) {
    if (key.first != category || key.second == "Value") continue;
    auto numeric = rep.GetNumeric(id, at);
    if (numeric.ok()) return numeric;
  }
  return Status::NotFound(
      StrCat("value ", id, " of dimension '", name(),
             "' has no numeric representation at the requested time"));
}

bool Dimension::HasValue(ValueId id) const {
  return SlotOf(id) != FlatHashIndex::kNone;
}

Result<CategoryTypeIndex> Dimension::CategoryOf(ValueId id) const {
  const std::uint32_t slot = SlotOf(id);
  if (slot == FlatHashIndex::kNone) {
    return Status::NotFound(
        StrCat("value ", id, " not in dimension '", name(), "'"));
  }
  return value_infos_[slot].category;
}

Result<Lifespan> Dimension::MembershipOf(ValueId id) const {
  const std::uint32_t slot = SlotOf(id);
  if (slot == FlatHashIndex::kNone) {
    return Status::NotFound(
        StrCat("value ", id, " not in dimension '", name(), "'"));
  }
  return value_infos_[slot].membership;
}

std::vector<ValueId> Dimension::ValuesIn(CategoryTypeIndex category) const {
  if (category >= members_by_category_.size()) return {};
  return members_by_category_[category];
}

std::vector<ValueId> Dimension::AllValues() const {
  std::vector<ValueId> result;
  result.reserve(value_ids_.size());
  for (std::uint32_t slot : SortedSlots()) result.push_back(value_ids_[slot]);
  return result;
}

Lifespan Dimension::ContainmentSpan(ValueId e1, ValueId e2) const {
  const std::uint32_t slot1 = SlotOf(e1);
  if (slot1 == FlatHashIndex::kNone || !HasValue(e2)) {
    return Lifespan{TemporalElement::Never(), TemporalElement::Never()};
  }
  if (e1 == e2) return value_infos_[slot1].membership;
  if (e2 == top_value_) return Lifespan::AlwaysSpan();
  for (const Containment& c : Reach(e1, /*upward=*/true, kNowChronon)) {
    if (c.value == e2) return c.life;
  }
  return Lifespan{TemporalElement::Never(), TemporalElement::Never()};
}

bool Dimension::LessEqAt(ValueId e1, ValueId e2, Chronon at) const {
  return ContainmentSpan(e1, e2).valid.Contains(at);
}

double Dimension::ContainmentProbAt(ValueId e1, ValueId e2,
                                    Chronon at) const {
  const std::uint32_t slot1 = SlotOf(e1);
  if (slot1 == FlatHashIndex::kNone || !HasValue(e2)) return 0.0;
  if (e1 == e2) {
    return value_infos_[slot1].membership.valid.Contains(at) ? 1.0 : 0.0;
  }
  if (e2 == top_value_) return 1.0;
  for (const Containment& c : Reach(e1, /*upward=*/true, at)) {
    if (c.value == e2) return c.life.valid.Contains(at) ? c.prob : 0.0;
  }
  return 0.0;
}

std::vector<Dimension::Containment> Dimension::ComputeAncestors(
    ValueId e, Chronon prob_at) const {
  std::vector<Containment> result = Reach(e, /*upward=*/true, prob_at);
  // Top containment is unconditional; ensure it is present with full span.
  bool has_top = false;
  for (Containment& c : result) {
    if (c.value == top_value_) {
      c.life = Lifespan::AlwaysSpan();
      c.prob = 1.0;
      has_top = true;
    }
  }
  if (!has_top && e != top_value_ && HasValue(e)) {
    result.push_back(Containment{top_value_, Lifespan::AlwaysSpan(), 1.0});
  }
  return result;
}

std::vector<Dimension::Containment> Dimension::Ancestors(
    ValueId e, Chronon prob_at) const {
  return AncestorsView(e, prob_at);
}

const std::vector<Dimension::Containment>& Dimension::AncestorsView(
    ValueId e, Chronon prob_at) const {
  const std::uint32_t slot = SlotOf(e);
  if (slot == FlatHashIndex::kNone) return kNoContainments;
  if (memo_enabled_) {
    if (anc_memo_.size() < value_ids_.size()) {
      anc_memo_.resize(value_ids_.size());
    }
    std::unique_ptr<std::vector<Containment>>& entry = anc_memo_[slot];
    if (entry == nullptr) {
      entry = std::make_unique<std::vector<Containment>>(
          ComputeAncestors(e, prob_at));
    }
    return *entry;
  }
  anc_scratch_ = ComputeAncestors(e, prob_at);
  return anc_scratch_;
}

std::vector<Dimension::Containment> Dimension::AncestorsIn(
    ValueId e, CategoryTypeIndex category, Chronon prob_at) const {
  std::vector<Containment> result;
  for (const Containment& c : AncestorsView(e, prob_at)) {
    auto cat = CategoryOf(c.value);
    if (cat.ok() && *cat == category) result.push_back(c);
  }
  return result;
}

std::vector<Dimension::Containment> Dimension::Descendants(
    ValueId e, Chronon prob_at) const {
  if (e == top_value_) {
    // Top contains everything unconditionally.
    std::vector<Containment> result;
    result.reserve(value_ids_.size() - 1);
    for (std::uint32_t slot : SortedSlots()) {
      if (value_ids_[slot] == top_value_) continue;
      result.push_back(Containment{value_ids_[slot],
                                   value_infos_[slot].membership, 1.0});
    }
    return result;
  }
  return Reach(e, /*upward=*/false, prob_at);
}

std::vector<Dimension::Containment> Dimension::DescendantsIn(
    ValueId e, CategoryTypeIndex category, Chronon prob_at) const {
  std::vector<Containment> result;
  for (Containment& c : Descendants(e, prob_at)) {
    auto cat = CategoryOf(c.value);
    if (cat.ok() && *cat == category) result.push_back(std::move(c));
  }
  return result;
}

std::vector<const Dimension::Edge*> Dimension::EdgesFromChild(
    ValueId id) const {
  std::vector<const Edge*> result;
  for (std::size_t index : EdgeIndexesFromChild(id)) {
    result.push_back(&edges_[index]);
  }
  return result;
}

std::vector<const Dimension::Edge*> Dimension::EdgesToParent(
    ValueId id) const {
  std::vector<const Edge*> result;
  for (std::size_t index : EdgeIndexesToParent(id)) {
    result.push_back(&edges_[index]);
  }
  return result;
}

const std::vector<std::size_t>& Dimension::EdgeIndexesFromChild(
    ValueId id) const {
  const std::uint32_t slot = SlotOf(id);
  if (slot == FlatHashIndex::kNone || slot >= edges_by_child_.size()) {
    return kNoEdgeIndexes;
  }
  return edges_by_child_[slot];
}

const std::vector<std::size_t>& Dimension::EdgeIndexesToParent(
    ValueId id) const {
  const std::uint32_t slot = SlotOf(id);
  if (slot == FlatHashIndex::kNone || slot >= edges_by_parent_.size()) {
    return kNoEdgeIndexes;
  }
  return edges_by_parent_[slot];
}

const std::vector<ValueId>& Dimension::ValuesInView(
    CategoryTypeIndex category) const {
  if (category >= members_by_category_.size()) return kNoValues;
  return members_by_category_[category];
}

const std::vector<Dimension::Containment>& Dimension::Reach(
    ValueId start, bool upward, Chronon prob_at) const {
  (void)prob_at;  // probabilities are atemporal; kept for API stability
  const std::uint32_t slot = SlotOf(start);
  if (slot == FlatHashIndex::kNone) return kNoContainments;
  if (memo_enabled_) {
    MemoTable& memo = upward ? up_memo_ : down_memo_;
    if (memo.size() < value_ids_.size()) memo.resize(value_ids_.size());
    std::unique_ptr<std::vector<Containment>>& entry = memo[slot];
    if (entry == nullptr) {
      entry = std::make_unique<std::vector<Containment>>(
          ComputeReach(start, upward));
    }
    return *entry;
  }
  reach_scratch_ = ComputeReach(start, upward);
  return reach_scratch_;
}

std::vector<Dimension::Containment> Dimension::ComputeReach(
    ValueId start, bool upward) const {
  std::vector<Containment> result;
  const std::uint32_t start_slot = SlotOf(start);
  if (start_slot == FlatHashIndex::kNone) return result;

  const std::vector<std::vector<std::size_t>>& forward =
      upward ? edges_by_child_ : edges_by_parent_;

  // Per-slot dense scratch with touched-list reset: one query touches only
  // the reachable sub-DAG, and steady-state queries allocate nothing.
  ReachScratch& w = reach_work_;
  const std::size_t n = value_ids_.size();
  if (w.pending.size() < n) {
    w.pending.resize(n, 0);
    w.marked.resize(n, 0);
    w.seen.resize(n, 0);
    w.has_span.resize(n, 0);
    w.has_prob.resize(n, 0);
    w.span.resize(n);
    w.prob.resize(n, 0.0);
    w.not_prob.resize(n, 0.0);
  }
  w.touched.clear();
  w.queue.clear();
  w.ready.clear();

  auto touch = [&](std::uint32_t s) {
    if (w.marked[s] == 0) {
      w.marked[s] = 1;
      w.touched.push_back(s);
    }
  };

  // 1. Collect the reachable sub-DAG, counting per-target in-edges.
  touch(start_slot);
  w.seen[start_slot] = 1;
  w.queue.push_back(start_slot);
  for (std::size_t head = 0; head < w.queue.size(); ++head) {
    const std::uint32_t current = w.queue[head];
    if (current >= forward.size()) continue;
    for (std::size_t index : forward[current]) {
      const Edge& edge = edges_[index];
      const std::uint32_t target = SlotOf(upward ? edge.parent : edge.child);
      touch(target);
      ++w.pending[target];
      if (w.seen[target] == 0) {
        w.seen[target] = 1;
        w.queue.push_back(target);
      }
    }
  }

  // 2. Relax in topological order. span accumulates the union over paths
  //    of the intersection of edge lifespans along each path; not_prob
  //    accumulates the product of (1 - p_path) factor-wise across
  //    immediate predecessors (noisy-or).
  // The start's span is Always: the time of a containment e1 <= e2 is
  // carried entirely by the order edges (paper Section 3.2), not by the
  // category membership of e1.
  w.span[start_slot] = Lifespan::AlwaysSpan();
  w.has_span[start_slot] = 1;
  w.prob[start_slot] = 1.0;
  w.has_prob[start_slot] = 1;
  w.ready.push_back(start_slot);
  for (std::size_t head = 0; head < w.ready.size(); ++head) {
    const std::uint32_t current = w.ready[head];
    if (current >= forward.size()) continue;
    for (std::size_t index : forward[current]) {
      const Edge& edge = edges_[index];
      const std::uint32_t target = SlotOf(upward ? edge.parent : edge.child);
      const Lifespan via = w.span[current].Intersect(edge.life);
      if (w.has_span[target] == 0) {
        w.span[target] = via;
        w.has_span[target] = 1;
        w.not_prob[target] = 1.0;
      } else {
        w.span[target] = w.span[target].Union(via);
      }
      // Probabilities are atemporal attachments (paper Section 3.3): the
      // temporal dimension of a containment is carried by the lifespan,
      // so the DP multiplies path probabilities regardless of prob_at.
      w.not_prob[target] *= 1.0 - w.prob[current] * edge.prob;
      if (--w.pending[target] == 0) {
        w.prob[target] = 1.0 - w.not_prob[target];
        w.has_prob[target] = 1;
        w.ready.push_back(target);
      }
    }
  }

  // 3. Collect (ascending by ValueId, the canonical closure order) and
  //    reset the touched slots for the next query.
  for (std::uint32_t s : w.touched) {
    if (s != start_slot && w.has_span[s] != 0 && !w.span[s].Empty()) {
      // A value reachable only through lifespan-incompatible edges (empty
      // intersection along every path) is not contained at any time.
      result.push_back(Containment{value_ids_[s], w.span[s],
                                   w.has_prob[s] != 0 ? w.prob[s] : 0.0});
    }
    w.pending[s] = 0;
    w.marked[s] = 0;
    w.seen[s] = 0;
    w.has_span[s] = 0;
    w.has_prob[s] = 0;
    w.span[s] = Lifespan{};
    w.prob[s] = 0.0;
    w.not_prob[s] = 0.0;
  }
  std::sort(result.begin(), result.end(),
            [](const Containment& a, const Containment& b) {
              return a.value < b.value;
            });
  return result;
}

void Dimension::WarmClosureMemo() const {
  if (!memo_enabled_) return;
  // Warm the sorted-slot cache too: enumeration after the warm-up must be
  // a pure read for concurrent callers.
  (void)SortedSlots();
  for (ValueId id : value_ids_) {
    (void)Reach(id, /*upward=*/true, kNowChronon);
    (void)Reach(id, /*upward=*/false, kNowChronon);
    // The ancestor view keeps its own memo (post-fixup form); warm it too
    // so concurrent readers after the warm-up stay pure reads.
    (void)AncestorsView(id, kNowChronon);
  }
}

Result<Dimension> Dimension::UnionWith(const Dimension& a,
                                       const Dimension& b) {
  if (!a.type().EquivalentTo(b.type())) {
    return Status::SchemaMismatch(
        StrCat("dimension union requires equivalent types; got '", a.name(),
               "' and '", b.name(), "' with differing structure"));
  }
  Dimension result = a;
  for (std::uint32_t slot : b.SortedSlots()) {
    const ValueId id = b.value_ids_[slot];
    if (id == b.top_value_) continue;
    const ValueInfo& info = b.value_infos_[slot];
    const std::uint32_t mine = result.SlotOf(id);
    if (mine == FlatHashIndex::kNone) {
      MDDC_RETURN_NOT_OK(result.AddValue(info.category, id, info.membership));
    } else {
      ValueInfo& existing = result.value_infos_[mine];
      if (existing.category != info.category) {
        return Status::InvariantViolation(
            StrCat("value ", id, " is in category '",
                   a.type().category(existing.category).name, "' in one ",
                   "dimension and '", b.type().category(info.category).name,
                   "' in the other"));
      }
      existing.membership = existing.membership.Union(info.membership);
      // Direct membership mutation: compiled snapshots of `result` (shared
      // with `a` by the copy above) must not survive it — structurally,
      // since the mutated value already exists.
      ++result.version_;
      ++result.structural_version_;
      result.append_watermark_ =
          static_cast<std::uint32_t>(result.value_ids_.size());
      result.publish_frozen_ = false;
    }
  }
  for (const Edge& edge : b.edges_) {
    MDDC_RETURN_NOT_OK(
        result.AddOrder(edge.child, edge.parent, edge.life, edge.prob));
  }
  for (const auto& [key, rep] : b.representations_) {
    Representation& target =
        result.RepresentationFor(key.first, key.second);
    for (std::uint32_t slot : b.SortedSlots()) {
      for (const auto& [text, life] : rep.GetAll(b.value_ids_[slot])) {
        MDDC_RETURN_NOT_OK(target.Set(b.value_ids_[slot], text, life));
      }
    }
  }
  return result;
}

Result<Dimension> Dimension::Subdimension(
    const std::vector<CategoryTypeIndex>& keep) const {
  MDDC_ASSIGN_OR_RETURN(std::shared_ptr<const DimensionType> new_type,
                        type_->Restrict(keep));
  Dimension result(new_type);

  // Map old category index -> new index by name.
  std::map<CategoryTypeIndex, CategoryTypeIndex> old_to_new;
  for (CategoryTypeIndex i : keep) {
    MDDC_ASSIGN_OR_RETURN(CategoryTypeIndex new_index,
                          new_type->Find(type_->category(i).name));
    old_to_new[i] = new_index;
  }

  // Values of kept (non-top) categories.
  for (const auto& [old_cat, new_cat] : old_to_new) {
    if (new_cat == new_type->top()) continue;
    for (ValueId id : ValuesIn(old_cat)) {
      MDDC_RETURN_NOT_OK(
          result.AddValue(new_cat, id, value_infos_[SlotOf(id)].membership));
    }
    // Carry representations.
    for (const auto& [key, rep] : representations_) {
      if (key.first != old_cat) continue;
      Representation& target = result.RepresentationFor(new_cat, key.second);
      for (ValueId id : ValuesIn(old_cat)) {
        for (const auto& [text, life] : rep.GetAll(id)) {
          MDDC_RETURN_NOT_OK(target.Set(id, text, life));
        }
      }
    }
  }

  // The restricted order: for each kept value, link to its nearest kept
  // ancestors (transitive containment, so dropping an intermediate
  // category keeps lower values connected to higher ones).
  for (const auto& [old_cat, new_cat] : old_to_new) {
    if (new_cat == new_type->top()) continue;
    for (ValueId id : ValuesIn(old_cat)) {
      for (const Containment& c : Ancestors(id)) {
        if (c.value == top_value_) continue;
        auto ancestor_cat = CategoryOf(c.value);
        if (!ancestor_cat.ok()) continue;
        auto mapped = old_to_new.find(*ancestor_cat);
        if (mapped == old_to_new.end()) continue;
        // Only link to immediate kept parents in the new type to avoid a
        // quadratic blowup of redundant edges.
        bool immediate = false;
        for (CategoryTypeIndex parent : new_type->Pred(new_cat)) {
          if (parent == mapped->second) {
            immediate = true;
            break;
          }
        }
        if (!immediate) continue;
        double prob = c.prob > 0.0 ? c.prob : 1.0;
        MDDC_RETURN_NOT_OK(result.AddOrder(id, c.value, c.life, prob));
      }
    }
  }
  return result;
}

Result<Dimension> Dimension::RestrictAbove(CategoryTypeIndex new_bottom) const {
  return Subdimension(type_->AtOrAbove(new_bottom));
}

Dimension Dimension::RenamedAs(std::string new_name) const {
  Dimension result = *this;
  result.type_ = type_->WithName(std::move(new_name));
  return result;
}

Status Dimension::Validate() const {
  for (const Edge& edge : edges_) {
    const std::uint32_t child = SlotOf(edge.child);
    const std::uint32_t parent = SlotOf(edge.parent);
    if (child == FlatHashIndex::kNone || parent == FlatHashIndex::kNone) {
      return Status::InvariantViolation(
          StrCat("dangling order edge ", edge.child, " <= ", edge.parent,
                 " in dimension '", name(), "'"));
    }
    if (!type_->LessEq(value_infos_[child].category,
                       value_infos_[parent].category) ||
        value_infos_[child].category == value_infos_[parent].category) {
      return Status::InvariantViolation(
          StrCat("order edge ", edge.child, " <= ", edge.parent,
                 " violates the category lattice of dimension '", name(),
                 "'"));
    }
    if (edge.prob <= 0.0 || edge.prob > 1.0) {
      return Status::InvariantViolation(
          StrCat("edge probability ", edge.prob, " outside (0,1]"));
    }
  }
  for (std::uint32_t slot : SortedSlots()) {
    const ValueInfo& info = value_infos_[slot];
    if (info.membership.Empty()) {
      return Status::InvariantViolation(
          StrCat("value ", value_ids_[slot], " has empty membership"));
    }
    if (info.category >= type_->category_count()) {
      return Status::InvariantViolation(
          StrCat("value ", value_ids_[slot], " has out-of-range category"));
    }
  }
  return Status::OK();
}

std::string Dimension::ToString() const {
  std::string out = StrCat("Dimension ", name(), " (", value_ids_.size(),
                           " values, ", edges_.size(), " order edges)\n");
  for (CategoryTypeIndex i : type_->AtOrAbove(type_->bottom())) {
    out += StrCat("  ", type_->category(i).name, ": {");
    std::vector<std::string> names;
    for (ValueId id : ValuesIn(i)) {
      names.push_back(id == top_value_ ? "T" : std::to_string(id.raw()));
    }
    out += Join(names, ",");
    out += "}\n";
  }
  for (const Edge& edge : edges_) {
    out += StrCat("  ", edge.child, " <= ", edge.parent);
    if (!(edge.life == Lifespan::AlwaysSpan())) {
      out += StrCat(" during ", edge.life.ToString());
    }
    if (edge.prob != 1.0) out += StrCat(" p=", edge.prob);
    out += "\n";
  }
  return out;
}

}  // namespace mddc
