#include "core/dimension.h"

#include <algorithm>
#include <deque>

#include "common/strings.h"

namespace mddc {
namespace {

/// All dimensions share one raw id for their top value; top values never
/// mix across dimensions, and a shared id makes dimension union trivially
/// correct.
constexpr std::uint64_t kTopValueRawId = std::uint64_t{1} << 63;

// Shared empty results for the reference-returning accessors, so lookups
// of unknown values need no per-call allocation.
const std::vector<std::size_t> kNoEdgeIndexes;
const std::vector<ValueId> kNoValues;
const std::vector<Dimension::Containment> kNoContainments;

}  // namespace

Dimension::Dimension(std::shared_ptr<const DimensionType> type)
    : type_(std::move(type)), top_value_(ValueId(kTopValueRawId)) {
  members_by_category_.resize(type_->category_count());
  values_[top_value_] =
      ValueInfo{type_->top(), Lifespan::AlwaysSpan()};
  members_by_category_[type_->top()].push_back(top_value_);
}

Status Dimension::AddValue(CategoryTypeIndex category, ValueId id,
                           const Lifespan& membership) {
  if (category >= type_->category_count()) {
    return Status::InvalidArgument(
        StrCat("category index ", category, " out of range in dimension '",
               name(), "'"));
  }
  if (category == type_->top()) {
    return Status::InvalidArgument(
        StrCat("the TOP category of dimension '", name(),
               "' holds only the implicit top value"));
  }
  if (!id.valid()) {
    return Status::InvalidArgument("cannot add a value with an invalid id");
  }
  if (values_.count(id) != 0) {
    return Status::InvariantViolation(
        StrCat("value ", id, " already exists in dimension '", name(), "'"));
  }
  if (membership.Empty()) {
    return Status::InvalidArgument(
        StrCat("value ", id, " has an empty membership lifespan"));
  }
  values_[id] = ValueInfo{category, membership};
  members_by_category_[category].push_back(id);
  next_auto_id_ = std::max(next_auto_id_, id.raw() + 1);
  // A fresh value has no edges, so memoized closures of other values stay
  // valid — but compiled snapshots cover the value set and must rebuild.
  ++version_;
  publish_frozen_ = false;
  return Status::OK();
}

Result<ValueId> Dimension::AddValueAuto(CategoryTypeIndex category,
                                        const Lifespan& membership) {
  ValueId id(next_auto_id_);
  MDDC_RETURN_NOT_OK(AddValue(category, id, membership));
  return id;
}

Status Dimension::AddOrder(ValueId child, ValueId parent,
                           const Lifespan& life, double prob) {
  auto child_it = values_.find(child);
  if (child_it == values_.end()) {
    return Status::NotFound(
        StrCat("order child ", child, " not in dimension '", name(), "'"));
  }
  auto parent_it = values_.find(parent);
  if (parent_it == values_.end()) {
    return Status::NotFound(
        StrCat("order parent ", parent, " not in dimension '", name(), "'"));
  }
  CategoryTypeIndex child_cat = child_it->second.category;
  CategoryTypeIndex parent_cat = parent_it->second.category;
  if (child_cat == parent_cat || !type_->LessEq(child_cat, parent_cat)) {
    return Status::InvariantViolation(StrCat(
        "order edge in dimension '", name(), "' must go from category '",
        type_->category(child_cat).name, "' to a strictly larger category; '",
        type_->category(parent_cat).name, "' is not"));
  }
  if (prob <= 0.0 || prob > 1.0) {
    return Status::InvalidArgument(
        StrCat("containment probability ", prob, " outside (0,1]"));
  }
  if (life.Empty()) {
    return Status::InvalidArgument("order edge with empty lifespan");
  }
  // Coalesce with an existing edge for the same pair: the attached time is
  // the *maximal* chronon set, so repeated assertions union.
  for (std::size_t index : edges_by_child_[child]) {
    Edge& edge = edges_[index];
    if (edge.parent == parent) {
      if (edge.prob != prob) {
        return Status::InvariantViolation(
            StrCat("conflicting probabilities for ", child, " <= ", parent,
                   " in dimension '", name(), "': ", edge.prob, " vs ",
                   prob));
      }
      edge.life = edge.life.Union(life);
      InvalidateClosures();
      return Status::OK();
    }
  }
  edges_by_child_[child].push_back(edges_.size());
  edges_by_parent_[parent].push_back(edges_.size());
  edges_.push_back(Edge{child, parent, life, prob});
  // Reachability changed: drop the memoized closure.
  InvalidateClosures();
  return Status::OK();
}

void Dimension::InvalidateClosures() {
  up_memo_.clear();
  down_memo_.clear();
  anc_memo_.clear();
  ++version_;
  publish_frozen_ = false;
}

Representation& Dimension::RepresentationFor(CategoryTypeIndex category,
                                             const std::string& rep_name) {
  auto key = std::make_pair(category, rep_name);
  auto it = representations_.find(key);
  if (it == representations_.end()) {
    it = representations_.emplace(key, Representation(rep_name)).first;
  }
  return it->second;
}

Result<const Representation*> Dimension::FindRepresentation(
    CategoryTypeIndex category, const std::string& rep_name) const {
  auto it = representations_.find(std::make_pair(category, rep_name));
  if (it == representations_.end()) {
    return Status::NotFound(StrCat("no representation '", rep_name,
                                   "' for category '",
                                   type_->category(category).name,
                                   "' of dimension '", name(), "'"));
  }
  return &it->second;
}

std::vector<std::tuple<CategoryTypeIndex, std::string, const Representation*>>
Dimension::AllRepresentations() const {
  std::vector<std::tuple<CategoryTypeIndex, std::string, const Representation*>>
      result;
  result.reserve(representations_.size());
  for (const auto& [key, rep] : representations_) {
    result.emplace_back(key.first, key.second, &rep);
  }
  return result;
}

Result<double> Dimension::NumericValueOf(ValueId id, Chronon at) const {
  MDDC_ASSIGN_OR_RETURN(CategoryTypeIndex category, CategoryOf(id));
  // Preferred: an explicitly numeric representation named "Value".
  if (auto named = FindRepresentation(category, "Value"); named.ok()) {
    auto numeric = (*named)->GetNumeric(id, at);
    if (numeric.ok()) return numeric;
  }
  for (const auto& [rep_category, rep_name, rep] : AllRepresentations()) {
    if (rep_category != category || rep_name == "Value") continue;
    auto numeric = rep->GetNumeric(id, at);
    if (numeric.ok()) return numeric;
  }
  return Status::NotFound(
      StrCat("value ", id, " of dimension '", name(),
             "' has no numeric representation at the requested time"));
}

bool Dimension::HasValue(ValueId id) const { return values_.count(id) != 0; }

Result<CategoryTypeIndex> Dimension::CategoryOf(ValueId id) const {
  auto it = values_.find(id);
  if (it == values_.end()) {
    return Status::NotFound(
        StrCat("value ", id, " not in dimension '", name(), "'"));
  }
  return it->second.category;
}

Result<Lifespan> Dimension::MembershipOf(ValueId id) const {
  auto it = values_.find(id);
  if (it == values_.end()) {
    return Status::NotFound(
        StrCat("value ", id, " not in dimension '", name(), "'"));
  }
  return it->second.membership;
}

std::vector<ValueId> Dimension::ValuesIn(CategoryTypeIndex category) const {
  if (category >= members_by_category_.size()) return {};
  return members_by_category_[category];
}

std::vector<ValueId> Dimension::AllValues() const {
  std::vector<ValueId> result;
  result.reserve(values_.size());
  for (const auto& [id, info] : values_) result.push_back(id);
  return result;
}

Lifespan Dimension::ContainmentSpan(ValueId e1, ValueId e2) const {
  if (!HasValue(e1) || !HasValue(e2)) return Lifespan{TemporalElement::Never(),
                                                      TemporalElement::Never()};
  if (e1 == e2) return values_.at(e1).membership;
  if (e2 == top_value_) return Lifespan::AlwaysSpan();
  for (const Containment& c : Reach(e1, /*upward=*/true, kNowChronon)) {
    if (c.value == e2) return c.life;
  }
  return Lifespan{TemporalElement::Never(), TemporalElement::Never()};
}

bool Dimension::LessEqAt(ValueId e1, ValueId e2, Chronon at) const {
  return ContainmentSpan(e1, e2).valid.Contains(at);
}

double Dimension::ContainmentProbAt(ValueId e1, ValueId e2,
                                    Chronon at) const {
  if (!HasValue(e1) || !HasValue(e2)) return 0.0;
  if (e1 == e2) return values_.at(e1).membership.valid.Contains(at) ? 1.0 : 0.0;
  if (e2 == top_value_) return 1.0;
  for (const Containment& c : Reach(e1, /*upward=*/true, at)) {
    if (c.value == e2) return c.life.valid.Contains(at) ? c.prob : 0.0;
  }
  return 0.0;
}

std::vector<Dimension::Containment> Dimension::ComputeAncestors(
    ValueId e, Chronon prob_at) const {
  std::vector<Containment> result = Reach(e, /*upward=*/true, prob_at);
  // Top containment is unconditional; ensure it is present with full span.
  bool has_top = false;
  for (Containment& c : result) {
    if (c.value == top_value_) {
      c.life = Lifespan::AlwaysSpan();
      c.prob = 1.0;
      has_top = true;
    }
  }
  if (!has_top && e != top_value_ && HasValue(e)) {
    result.push_back(Containment{top_value_, Lifespan::AlwaysSpan(), 1.0});
  }
  return result;
}

std::vector<Dimension::Containment> Dimension::Ancestors(
    ValueId e, Chronon prob_at) const {
  return AncestorsView(e, prob_at);
}

const std::vector<Dimension::Containment>& Dimension::AncestorsView(
    ValueId e, Chronon prob_at) const {
  if (!HasValue(e)) return kNoContainments;
  if (memo_enabled_) {
    auto it = anc_memo_.find(e);
    if (it == anc_memo_.end()) {
      it = anc_memo_.emplace(e, ComputeAncestors(e, prob_at)).first;
    }
    return it->second;
  }
  anc_scratch_ = ComputeAncestors(e, prob_at);
  return anc_scratch_;
}

std::vector<Dimension::Containment> Dimension::AncestorsIn(
    ValueId e, CategoryTypeIndex category, Chronon prob_at) const {
  std::vector<Containment> result;
  for (const Containment& c : AncestorsView(e, prob_at)) {
    auto cat = CategoryOf(c.value);
    if (cat.ok() && *cat == category) result.push_back(c);
  }
  return result;
}

std::vector<Dimension::Containment> Dimension::Descendants(
    ValueId e, Chronon prob_at) const {
  if (e == top_value_) {
    // Top contains everything unconditionally.
    std::vector<Containment> result;
    for (const auto& [id, info] : values_) {
      if (id == top_value_) continue;
      result.push_back(Containment{id, info.membership, 1.0});
    }
    return result;
  }
  return Reach(e, /*upward=*/false, prob_at);
}

std::vector<Dimension::Containment> Dimension::DescendantsIn(
    ValueId e, CategoryTypeIndex category, Chronon prob_at) const {
  std::vector<Containment> result;
  for (Containment& c : Descendants(e, prob_at)) {
    auto cat = CategoryOf(c.value);
    if (cat.ok() && *cat == category) result.push_back(std::move(c));
  }
  return result;
}

std::vector<const Dimension::Edge*> Dimension::EdgesFromChild(
    ValueId id) const {
  std::vector<const Edge*> result;
  auto it = edges_by_child_.find(id);
  if (it == edges_by_child_.end()) return result;
  for (std::size_t index : it->second) result.push_back(&edges_[index]);
  return result;
}

std::vector<const Dimension::Edge*> Dimension::EdgesToParent(
    ValueId id) const {
  std::vector<const Edge*> result;
  auto it = edges_by_parent_.find(id);
  if (it == edges_by_parent_.end()) return result;
  for (std::size_t index : it->second) result.push_back(&edges_[index]);
  return result;
}

const std::vector<std::size_t>& Dimension::EdgeIndexesFromChild(
    ValueId id) const {
  auto it = edges_by_child_.find(id);
  return it == edges_by_child_.end() ? kNoEdgeIndexes : it->second;
}

const std::vector<std::size_t>& Dimension::EdgeIndexesToParent(
    ValueId id) const {
  auto it = edges_by_parent_.find(id);
  return it == edges_by_parent_.end() ? kNoEdgeIndexes : it->second;
}

const std::vector<ValueId>& Dimension::ValuesInView(
    CategoryTypeIndex category) const {
  if (category >= members_by_category_.size()) return kNoValues;
  return members_by_category_[category];
}

const std::vector<Dimension::Containment>& Dimension::Reach(
    ValueId start, bool upward, Chronon prob_at) const {
  (void)prob_at;  // probabilities are atemporal; kept for API stability
  if (!HasValue(start)) return kNoContainments;
  if (memo_enabled_) {
    auto& memo = upward ? up_memo_ : down_memo_;
    auto it = memo.find(start);
    if (it == memo.end()) {
      it = memo.emplace(start, ComputeReach(start, upward)).first;
    }
    return it->second;
  }
  reach_scratch_ = ComputeReach(start, upward);
  return reach_scratch_;
}

std::vector<Dimension::Containment> Dimension::ComputeReach(
    ValueId start, bool upward) const {
  std::vector<Containment> result;

  const auto& forward = upward ? edges_by_child_ : edges_by_parent_;

  // 1. Collect the reachable sub-DAG.
  std::map<ValueId, std::size_t> pending;  // value -> unprocessed in-edges
  std::deque<ValueId> frontier = {start};
  std::map<ValueId, bool> seen;
  seen[start] = true;
  std::vector<std::pair<ValueId, const Edge*>> sub_edges;  // (target, edge)
  while (!frontier.empty()) {
    ValueId current = frontier.front();
    frontier.pop_front();
    auto it = forward.find(current);
    if (it == forward.end()) continue;
    for (std::size_t index : it->second) {
      const Edge& edge = edges_[index];
      ValueId next = upward ? edge.parent : edge.child;
      sub_edges.emplace_back(next, &edge);
      ++pending[next];
      if (!seen[next]) {
        seen[next] = true;
        frontier.push_back(next);
      }
    }
  }

  // 2. Relax in topological order. span accumulates the union over paths
  //    of the intersection of edge lifespans along each path; not_prob
  //    accumulates the product of (1 - p_path) factor-wise across
  //    immediate predecessors (noisy-or).
  // The start's span is Always: the time of a containment e1 <= e2 is
  // carried entirely by the order edges (paper Section 3.2), not by the
  // category membership of e1.
  std::map<ValueId, Lifespan> span;
  std::map<ValueId, double> prob;
  span[start] = Lifespan::AlwaysSpan();
  prob[start] = 1.0;
  std::map<ValueId, double> not_prob;  // running product for noisy-or

  std::deque<ValueId> ready = {start};
  std::map<ValueId, std::vector<std::pair<ValueId, const Edge*>>> out;
  for (auto& [target, edge] : sub_edges) {
    ValueId source = upward ? edge->child : edge->parent;
    out[source].emplace_back(target, edge);
  }
  while (!ready.empty()) {
    ValueId current = ready.front();
    ready.pop_front();
    auto it = out.find(current);
    if (it == out.end()) continue;
    for (auto& [target, edge] : it->second) {
      Lifespan via = span[current].Intersect(edge->life);
      auto span_it = span.find(target);
      if (span_it == span.end()) {
        span[target] = via;
        not_prob[target] = 1.0;
      } else {
        span_it->second = span_it->second.Union(via);
      }
      // Probabilities are atemporal attachments (paper Section 3.3): the
      // temporal dimension of a containment is carried by the lifespan,
      // so the DP multiplies path probabilities regardless of prob_at.
      not_prob[target] *= 1.0 - prob[current] * edge->prob;
      if (--pending[target] == 0) {
        prob[target] = 1.0 - not_prob[target];
        ready.push_back(target);
      }
    }
  }

  for (auto& [value, life] : span) {
    if (value == start) continue;
    // A value reachable only through lifespan-incompatible edges (empty
    // intersection along every path) is not contained at any time.
    if (life.Empty()) continue;
    double p = prob.count(value) != 0 ? prob[value] : 0.0;
    result.push_back(Containment{value, life, p});
  }
  return result;
}

void Dimension::WarmClosureMemo() const {
  if (!memo_enabled_) return;
  for (const auto& [id, info] : values_) {
    (void)info;
    (void)Reach(id, /*upward=*/true, kNowChronon);
    (void)Reach(id, /*upward=*/false, kNowChronon);
    // The ancestor view keeps its own memo (post-fixup form); warm it too
    // so concurrent readers after the warm-up stay pure reads.
    (void)AncestorsView(id, kNowChronon);
  }
}

Result<Dimension> Dimension::UnionWith(const Dimension& a,
                                       const Dimension& b) {
  if (!a.type().EquivalentTo(b.type())) {
    return Status::SchemaMismatch(
        StrCat("dimension union requires equivalent types; got '", a.name(),
               "' and '", b.name(), "' with differing structure"));
  }
  Dimension result = a;
  for (const auto& [id, info] : b.values_) {
    if (id == b.top_value_) continue;
    auto it = result.values_.find(id);
    if (it == result.values_.end()) {
      MDDC_RETURN_NOT_OK(result.AddValue(info.category, id, info.membership));
    } else {
      if (it->second.category != info.category) {
        return Status::InvariantViolation(
            StrCat("value ", id, " is in category '",
                   a.type().category(it->second.category).name, "' in one ",
                   "dimension and '", b.type().category(info.category).name,
                   "' in the other"));
      }
      it->second.membership = it->second.membership.Union(info.membership);
      // Direct membership mutation: compiled snapshots of `result` (shared
      // with `a` by the copy above) must not survive it.
      ++result.version_;
      result.publish_frozen_ = false;
    }
  }
  for (const Edge& edge : b.edges_) {
    MDDC_RETURN_NOT_OK(
        result.AddOrder(edge.child, edge.parent, edge.life, edge.prob));
  }
  for (const auto& [key, rep] : b.representations_) {
    Representation& target =
        result.RepresentationFor(key.first, key.second);
    for (const auto& [id, info] : b.values_) {
      (void)info;
      for (const auto& [text, life] : rep.GetAll(id)) {
        MDDC_RETURN_NOT_OK(target.Set(id, text, life));
      }
    }
  }
  return result;
}

Result<Dimension> Dimension::Subdimension(
    const std::vector<CategoryTypeIndex>& keep) const {
  MDDC_ASSIGN_OR_RETURN(std::shared_ptr<const DimensionType> new_type,
                        type_->Restrict(keep));
  Dimension result(new_type);

  // Map old category index -> new index by name.
  std::map<CategoryTypeIndex, CategoryTypeIndex> old_to_new;
  for (CategoryTypeIndex i : keep) {
    MDDC_ASSIGN_OR_RETURN(CategoryTypeIndex new_index,
                          new_type->Find(type_->category(i).name));
    old_to_new[i] = new_index;
  }

  // Values of kept (non-top) categories.
  for (const auto& [old_cat, new_cat] : old_to_new) {
    if (new_cat == new_type->top()) continue;
    for (ValueId id : ValuesIn(old_cat)) {
      MDDC_RETURN_NOT_OK(
          result.AddValue(new_cat, id, values_.at(id).membership));
    }
    // Carry representations.
    for (const auto& [key, rep] : representations_) {
      if (key.first != old_cat) continue;
      Representation& target = result.RepresentationFor(new_cat, key.second);
      for (ValueId id : ValuesIn(old_cat)) {
        for (const auto& [text, life] : rep.GetAll(id)) {
          MDDC_RETURN_NOT_OK(target.Set(id, text, life));
        }
      }
    }
  }

  // The restricted order: for each kept value, link to its nearest kept
  // ancestors (transitive containment, so dropping an intermediate
  // category keeps lower values connected to higher ones).
  for (const auto& [old_cat, new_cat] : old_to_new) {
    if (new_cat == new_type->top()) continue;
    for (ValueId id : ValuesIn(old_cat)) {
      for (const Containment& c : Ancestors(id)) {
        if (c.value == top_value_) continue;
        auto ancestor_cat = CategoryOf(c.value);
        if (!ancestor_cat.ok()) continue;
        auto mapped = old_to_new.find(*ancestor_cat);
        if (mapped == old_to_new.end()) continue;
        // Only link to immediate kept parents in the new type to avoid a
        // quadratic blowup of redundant edges.
        bool immediate = false;
        for (CategoryTypeIndex parent : new_type->Pred(new_cat)) {
          if (parent == mapped->second) {
            immediate = true;
            break;
          }
        }
        if (!immediate) continue;
        double prob = c.prob > 0.0 ? c.prob : 1.0;
        MDDC_RETURN_NOT_OK(result.AddOrder(id, c.value, c.life, prob));
      }
    }
  }
  return result;
}

Result<Dimension> Dimension::RestrictAbove(CategoryTypeIndex new_bottom) const {
  return Subdimension(type_->AtOrAbove(new_bottom));
}

Dimension Dimension::RenamedAs(std::string new_name) const {
  Dimension result = *this;
  result.type_ = type_->WithName(std::move(new_name));
  return result;
}

Status Dimension::Validate() const {
  for (const Edge& edge : edges_) {
    auto child = values_.find(edge.child);
    auto parent = values_.find(edge.parent);
    if (child == values_.end() || parent == values_.end()) {
      return Status::InvariantViolation(
          StrCat("dangling order edge ", edge.child, " <= ", edge.parent,
                 " in dimension '", name(), "'"));
    }
    if (!type_->LessEq(child->second.category, parent->second.category) ||
        child->second.category == parent->second.category) {
      return Status::InvariantViolation(
          StrCat("order edge ", edge.child, " <= ", edge.parent,
                 " violates the category lattice of dimension '", name(),
                 "'"));
    }
    if (edge.prob <= 0.0 || edge.prob > 1.0) {
      return Status::InvariantViolation(
          StrCat("edge probability ", edge.prob, " outside (0,1]"));
    }
  }
  for (const auto& [id, info] : values_) {
    if (info.membership.Empty()) {
      return Status::InvariantViolation(
          StrCat("value ", id, " has empty membership"));
    }
    if (info.category >= type_->category_count()) {
      return Status::InvariantViolation(
          StrCat("value ", id, " has out-of-range category"));
    }
  }
  return Status::OK();
}

std::string Dimension::ToString() const {
  std::string out = StrCat("Dimension ", name(), " (", values_.size(),
                           " values, ", edges_.size(), " order edges)\n");
  for (CategoryTypeIndex i : type_->AtOrAbove(type_->bottom())) {
    out += StrCat("  ", type_->category(i).name, ": {");
    std::vector<std::string> names;
    for (ValueId id : ValuesIn(i)) {
      names.push_back(id == top_value_ ? "T" : std::to_string(id.raw()));
    }
    out += Join(names, ",");
    out += "}\n";
  }
  for (const Edge& edge : edges_) {
    out += StrCat("  ", edge.child, " <= ", edge.parent);
    if (!(edge.life == Lifespan::AlwaysSpan())) {
      out += StrCat(" during ", edge.life.ToString());
    }
    if (edge.prob != 1.0) out += StrCat(" p=", edge.prob);
    out += "\n";
  }
  return out;
}

}  // namespace mddc
