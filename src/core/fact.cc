#include "core/fact.h"

#include <algorithm>

#include "common/strings.h"

namespace mddc {

std::shared_ptr<FactRegistry> FactRegistry::ForkOf(
    std::shared_ptr<const FactRegistry> base) {
  auto fork = std::make_shared<FactRegistry>();
  if (base != nullptr) {
    fork->base_size_ = base->size();
    fork->fork_depth_ = base->fork_depth_ + 1;
    fork->base_ = std::move(base);
  }
  return fork;
}

std::shared_ptr<FactRegistry> FactRegistry::Flatten() const {
  auto flat = std::make_shared<FactRegistry>();
  const std::size_t n = size();
  flat->terms_.reserve(n);
  for (std::size_t raw = 0; raw < n; ++raw) {
    const FactTerm* term = FindTerm(FactId(raw));
    flat->Intern(*term, HashTerm(*term));
  }
  return flat;
}

std::uint64_t FactRegistry::HashTerm(const FactTerm& term) {
  switch (term.kind) {
    case FactTerm::Kind::kAtom:
      return Fnv1a64Word(term.atom);
    case FactTerm::Kind::kPair:
      return Fnv1a64Word(term.second.raw(), Fnv1a64Word(term.first.raw()));
    case FactTerm::Kind::kSet: {
      // Chain word-wise over the sorted member list; the empty set hashes
      // to the seed, which is as good a bucket as any.
      std::uint64_t hash = kFnv1a64Offset;
      for (FactId member : term.members) {
        hash = Fnv1a64Word(member.raw(), hash);
      }
      return hash;
    }
  }
  return kFnv1a64Offset;
}

const FlatHashIndex& FactRegistry::TableFor(FactTerm::Kind kind) const {
  switch (kind) {
    case FactTerm::Kind::kAtom:
      return atom_index_;
    case FactTerm::Kind::kPair:
      return pair_index_;
    case FactTerm::Kind::kSet:
      return set_index_;
  }
  return atom_index_;
}

FactId FactRegistry::FindOrIntern(FactTerm term) {
  const std::uint64_t hash = HashTerm(term);
  for (const FactRegistry* r = this; r != nullptr; r = r->base_.get()) {
    const std::uint32_t ordinal = r->TableFor(term.kind).Find(
        hash,
        [&](std::uint32_t o) { return r->terms_[o] == term; });
    if (ordinal != FlatHashIndex::kNone) {
      return FactId(r->base_size_ + ordinal);
    }
  }
  return Intern(std::move(term), hash);
}

FactId FactRegistry::Atom(std::uint64_t external_key) {
  FactTerm term;
  term.kind = FactTerm::Kind::kAtom;
  term.atom = external_key;
  return FindOrIntern(std::move(term));
}

FactId FactRegistry::Pair(FactId a, FactId b) {
  FactTerm term;
  term.kind = FactTerm::Kind::kPair;
  term.first = a;
  term.second = b;
  return FindOrIntern(std::move(term));
}

FactId FactRegistry::Set(std::vector<FactId> members) {
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
  FactTerm term;
  term.kind = FactTerm::Kind::kSet;
  term.members = std::move(members);
  return FindOrIntern(std::move(term));
}

const FactTerm* FactRegistry::FindTerm(FactId id) const {
  if (!id.valid()) return nullptr;
  for (const FactRegistry* r = this; r != nullptr; r = r->base_.get()) {
    if (id.raw() >= r->base_size_) {
      const std::size_t local = id.raw() - r->base_size_;
      return local < r->terms_.size() ? &r->terms_[local] : nullptr;
    }
  }
  return nullptr;
}

Result<FactTerm> FactRegistry::Get(FactId id) const {
  const FactTerm* term = FindTerm(id);
  if (term == nullptr) {
    return Status::NotFound(StrCat("fact id ", id, " not in registry"));
  }
  return *term;
}

std::string FactRegistry::ToString(FactId id) const {
  const FactTerm* term = FindTerm(id);
  if (term == nullptr) return "<unknown>";
  switch (term->kind) {
    case FactTerm::Kind::kAtom:
      return std::to_string(term->atom);
    case FactTerm::Kind::kPair:
      return StrCat("(", ToString(term->first), ",", ToString(term->second),
                    ")");
    case FactTerm::Kind::kSet: {
      std::vector<std::string> parts;
      parts.reserve(term->members.size());
      for (FactId member : term->members) parts.push_back(ToString(member));
      return StrCat("{", Join(parts, ","), "}");
    }
  }
  return "<unknown>";
}

FactId FactRegistry::Intern(FactTerm term, std::uint64_t hash) {
  const std::uint32_t ordinal = static_cast<std::uint32_t>(terms_.size());
  FlatHashIndex& table = TableFor(term.kind);
  bool inserted = false;
  table.FindOrInsert(
      hash, ordinal,
      [&](std::uint32_t o) { return terms_[o] == term; }, &inserted);
  FactId id(base_size_ + terms_.size());
  terms_.push_back(std::move(term));
  return id;
}

}  // namespace mddc
