#include "core/fact.h"

#include <algorithm>

#include "common/strings.h"

namespace mddc {

std::shared_ptr<FactRegistry> FactRegistry::ForkOf(
    std::shared_ptr<const FactRegistry> base) {
  auto fork = std::make_shared<FactRegistry>();
  if (base != nullptr) {
    fork->base_size_ = base->size();
    fork->fork_depth_ = base->fork_depth_ + 1;
    fork->base_ = std::move(base);
  }
  return fork;
}

std::shared_ptr<FactRegistry> FactRegistry::Flatten() const {
  auto flat = std::make_shared<FactRegistry>();
  const std::size_t n = size();
  flat->terms_.reserve(n);
  for (std::size_t raw = 0; raw < n; ++raw) {
    FactId id(raw);
    const FactTerm* term = FindTerm(id);
    flat->terms_.push_back(*term);
    switch (term->kind) {
      case FactTerm::Kind::kAtom:
        flat->atom_index_.emplace(term->atom, id);
        break;
      case FactTerm::Kind::kPair:
        flat->pair_index_.emplace(std::make_pair(term->first, term->second),
                                  id);
        break;
      case FactTerm::Kind::kSet:
        flat->set_index_.emplace(term->members, id);
        break;
    }
  }
  return flat;
}

FactId FactRegistry::Atom(std::uint64_t external_key) {
  for (const FactRegistry* r = this; r != nullptr; r = r->base_.get()) {
    auto it = r->atom_index_.find(external_key);
    if (it != r->atom_index_.end()) return it->second;
  }
  FactTerm term;
  term.kind = FactTerm::Kind::kAtom;
  term.atom = external_key;
  FactId id = Intern(std::move(term));
  atom_index_.emplace(external_key, id);
  return id;
}

FactId FactRegistry::Pair(FactId a, FactId b) {
  auto key = std::make_pair(a, b);
  for (const FactRegistry* r = this; r != nullptr; r = r->base_.get()) {
    auto it = r->pair_index_.find(key);
    if (it != r->pair_index_.end()) return it->second;
  }
  FactTerm term;
  term.kind = FactTerm::Kind::kPair;
  term.first = a;
  term.second = b;
  FactId id = Intern(std::move(term));
  pair_index_.emplace(key, id);
  return id;
}

FactId FactRegistry::Set(std::vector<FactId> members) {
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
  for (const FactRegistry* r = this; r != nullptr; r = r->base_.get()) {
    auto it = r->set_index_.find(members);
    if (it != r->set_index_.end()) return it->second;
  }
  FactTerm term;
  term.kind = FactTerm::Kind::kSet;
  term.members = members;
  FactId id = Intern(std::move(term));
  set_index_.emplace(std::move(members), id);
  return id;
}

const FactTerm* FactRegistry::FindTerm(FactId id) const {
  if (!id.valid()) return nullptr;
  for (const FactRegistry* r = this; r != nullptr; r = r->base_.get()) {
    if (id.raw() >= r->base_size_) {
      const std::size_t local = id.raw() - r->base_size_;
      return local < r->terms_.size() ? &r->terms_[local] : nullptr;
    }
  }
  return nullptr;
}

Result<FactTerm> FactRegistry::Get(FactId id) const {
  const FactTerm* term = FindTerm(id);
  if (term == nullptr) {
    return Status::NotFound(StrCat("fact id ", id, " not in registry"));
  }
  return *term;
}

std::string FactRegistry::ToString(FactId id) const {
  const FactTerm* term = FindTerm(id);
  if (term == nullptr) return "<unknown>";
  switch (term->kind) {
    case FactTerm::Kind::kAtom:
      return std::to_string(term->atom);
    case FactTerm::Kind::kPair:
      return StrCat("(", ToString(term->first), ",", ToString(term->second),
                    ")");
    case FactTerm::Kind::kSet: {
      std::vector<std::string> parts;
      parts.reserve(term->members.size());
      for (FactId member : term->members) parts.push_back(ToString(member));
      return StrCat("{", Join(parts, ","), "}");
    }
  }
  return "<unknown>";
}

FactId FactRegistry::Intern(FactTerm term) {
  FactId id(base_size_ + terms_.size());
  terms_.push_back(std::move(term));
  return id;
}

}  // namespace mddc
