#include "core/fact.h"

#include <algorithm>

#include "common/strings.h"

namespace mddc {

FactId FactRegistry::Atom(std::uint64_t external_key) {
  auto it = atom_index_.find(external_key);
  if (it != atom_index_.end()) return it->second;
  FactTerm term;
  term.kind = FactTerm::Kind::kAtom;
  term.atom = external_key;
  FactId id = Intern(std::move(term));
  atom_index_.emplace(external_key, id);
  return id;
}

FactId FactRegistry::Pair(FactId a, FactId b) {
  auto key = std::make_pair(a, b);
  auto it = pair_index_.find(key);
  if (it != pair_index_.end()) return it->second;
  FactTerm term;
  term.kind = FactTerm::Kind::kPair;
  term.first = a;
  term.second = b;
  FactId id = Intern(std::move(term));
  pair_index_.emplace(key, id);
  return id;
}

FactId FactRegistry::Set(std::vector<FactId> members) {
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
  auto it = set_index_.find(members);
  if (it != set_index_.end()) return it->second;
  FactTerm term;
  term.kind = FactTerm::Kind::kSet;
  term.members = members;
  FactId id = Intern(std::move(term));
  set_index_.emplace(std::move(members), id);
  return id;
}

Result<FactTerm> FactRegistry::Get(FactId id) const {
  if (!id.valid() || id.raw() >= terms_.size()) {
    return Status::NotFound(StrCat("fact id ", id, " not in registry"));
  }
  return terms_[id.raw()];
}

std::string FactRegistry::ToString(FactId id) const {
  if (!id.valid() || id.raw() >= terms_.size()) return "<unknown>";
  const FactTerm& term = terms_[id.raw()];
  switch (term.kind) {
    case FactTerm::Kind::kAtom:
      return std::to_string(term.atom);
    case FactTerm::Kind::kPair:
      return StrCat("(", ToString(term.first), ",", ToString(term.second),
                    ")");
    case FactTerm::Kind::kSet: {
      std::vector<std::string> parts;
      parts.reserve(term.members.size());
      for (FactId member : term.members) parts.push_back(ToString(member));
      return StrCat("{", Join(parts, ","), "}");
    }
  }
  return "<unknown>";
}

FactId FactRegistry::Intern(FactTerm term) {
  FactId id(terms_.size());
  terms_.push_back(std::move(term));
  return id;
}

}  // namespace mddc
