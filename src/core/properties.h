#ifndef MDDC_CORE_PROPERTIES_H_
#define MDDC_CORE_PROPERTIES_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/aggregation.h"
#include "core/dimension.h"
#include "core/md_object.h"

namespace mddc {

/// Hierarchy-property checks of paper Section 3.4 (Definitions 2 and 3).
/// These are the preconditions of summarizability: pre-computed aggregate
/// results can be reused for higher-level aggregates only when the
/// aggregate function is distributive, the paths are strict, and the
/// hierarchies are partitioning.

/// True iff the mapping from category `c1` to category `c2` is strict at
/// chronon `at`: no value of c1 is contained in two distinct values of c2
/// (Definition 2). `c2` must be above `c1` in the type lattice.
bool IsStrictMappingAt(const Dimension& dimension, CategoryTypeIndex c1,
                       CategoryTypeIndex c2, Chronon at = kNowChronon);

/// True iff every inter-category mapping of the dimension is strict at
/// chronon `at`.
bool IsStrictAt(const Dimension& dimension, Chronon at = kNowChronon);

/// True iff the hierarchy is strict at *every* point in time — the
/// paper's "snapshot strict" (checked at every distinct configuration of
/// the edge lifespans, i.e., at all interval endpoints).
bool IsSnapshotStrict(const Dimension& dimension);

/// True iff the hierarchy is strict when time is ignored (all edges
/// considered simultaneously); stricter than snapshot strict.
bool IsStrict(const Dimension& dimension);

/// True iff every non-top value has a direct parent in some immediate
/// predecessor category at chronon `at` (Definition 3, partitioning).
bool IsPartitioningAt(const Dimension& dimension, Chronon at = kNowChronon);

/// Partitioning at every point in time ("snapshot partitioning").
bool IsSnapshotPartitioning(const Dimension& dimension);

/// Partitioning ignoring time.
bool IsPartitioning(const Dimension& dimension);

/// Partitioning restricted to the part of the hierarchy at or below
/// `upper` — the per-dimension bit CheckSummarizability computes, exposed
/// so incremental folds can re-check one dimension in isolation after a
/// value/edge append (docs/ingestion.md). `at` selects instant versus
/// atemporal checking as for HasStrictPath.
bool IsPartitioningUpTo(const Dimension& dimension, CategoryTypeIndex upper,
                        std::optional<Chronon> at = std::nullopt);

/// True iff there is a strict path from the fact set of `mo` to category
/// `category` of dimension `dim`: no fact is characterized by two
/// distinct values of that category (Definition 2, second part). This is
/// what fails for patients with several diagnoses in the same diagnosis
/// group — and why the paper's aggregate formation degrades the result's
/// aggregation type to `c` in that case.
///
/// With `at` set, the path is checked at that instant (data "counted for
/// one point in time", Section 3.4); with nullopt the check is atemporal
/// — a fact characterized by two category values at *any* (possibly
/// different) times breaks strictness, which is the right notion for
/// aggregate formation's across-all-time grouping.
///
/// The property is a per-fact universal, so it factorizes over any fact
/// partition: with `facts` set, only those facts are scanned. Incremental
/// ingestion (docs/ingestion.md) uses this to re-check just an appended
/// delta and AND the result with the verdict captured for the old facts.
bool HasStrictPath(const MdObject& mo, std::size_t dim,
                   CategoryTypeIndex category,
                   std::optional<Chronon> at = std::nullopt,
                   const std::vector<FactId>* facts = nullptr);

/// The chronons at which the temporal configuration of the dimension's
/// edges/memberships can change (all interval endpoints, NOW bound to the
/// given reference); used to verify snapshot properties exhaustively.
std::vector<Chronon> CriticalChronons(const Dimension& dimension,
                                      Chronon now_reference = 0);

/// Outcome of a summarizability check (paper Section 3.4: summarizability
/// is equivalent to the function being distributive, the paths strict and
/// the hierarchies partitioning).
struct SummarizabilityReport {
  bool summarizable = false;
  bool distributive = false;
  /// Per requested dimension: strict path from facts to the grouping
  /// category.
  std::vector<bool> strict_path;
  /// Per requested dimension: hierarchy partitioning up to the grouping
  /// category.
  std::vector<bool> partitioning;

  std::string ToString() const;
};

/// Evaluates the three summarizability conditions for aggregating `mo` by
/// the given grouping category in each dimension with function `kind`.
/// `at` selects instant (snapshot) versus atemporal checking as for
/// HasStrictPath; aggregate formation's typing rule uses the atemporal
/// form.
SummarizabilityReport CheckSummarizability(
    const MdObject& mo, AggregateFunctionKind kind,
    const std::vector<CategoryTypeIndex>& grouping_categories,
    std::optional<Chronon> at = std::nullopt);

}  // namespace mddc

#endif  // MDDC_CORE_PROPERTIES_H_
