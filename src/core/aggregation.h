#ifndef MDDC_CORE_AGGREGATION_H_
#define MDDC_CORE_AGGREGATION_H_

#include <string_view>

namespace mddc {

/// The paper's three aggregation types (Section 3.1): Sigma applies to data
/// that can be added, phi to data usable for average computations, and c to
/// constant data that can only be counted. They are totally ordered,
/// c < phi < Sigma; data of a higher type also possesses the
/// characteristics of the lower types.
enum class AggregationType {
  kConstant = 0,  ///< c:     {COUNT}
  kAverage = 1,   ///< phi:   {COUNT, AVG, MIN, MAX}
  kSum = 2,       ///< Sigma: {SUM, COUNT, AVG, MIN, MAX}
};

/// The standard SQL aggregation functions considered by the paper, plus
/// set-count (Example 12), which counts the members of a fact set.
enum class AggregateFunctionKind {
  kCount,
  kSetCount,
  kSum,
  kAvg,
  kMin,
  kMax,
};

/// Name in the paper's notation: "Sigma", "phi" or "c".
std::string_view AggregationTypeName(AggregationType type);

/// Name of an aggregate function, e.g. "SUM".
std::string_view AggregateFunctionKindName(AggregateFunctionKind kind);

/// The smaller (more restrictive) of the two aggregation types; used by
/// the aggregate-formation typing rule.
AggregationType MinAggregationType(AggregationType a, AggregationType b);

/// True iff applying `kind` to data with aggregation type `type` is legal
/// under the paper's rules (e.g. SUM requires Sigma; AVG requires phi or
/// better; COUNT and SetCount are always legal).
bool IsApplicable(AggregateFunctionKind kind, AggregationType type);

/// True iff the function is distributive, i.e., partial results can be
/// combined into totals: g(g(S1),..,g(Sk)) = g(S1 u .. u Sk). SUM, COUNT,
/// SetCount (over disjoint sets), MIN and MAX are distributive; AVG is not.
/// Distributivity is one of the three summarizability conditions of
/// Section 3.4.
bool IsDistributive(AggregateFunctionKind kind);

}  // namespace mddc

#endif  // MDDC_CORE_AGGREGATION_H_
