#include "core/schema.h"

#include "common/strings.h"

namespace mddc {

FactSchema::FactSchema(
    std::string fact_type,
    std::vector<std::shared_ptr<const DimensionType>> dimensions)
    : fact_type_(std::move(fact_type)), dimensions_(std::move(dimensions)) {}

Result<std::size_t> FactSchema::Find(std::string_view dimension_name) const {
  for (std::size_t i = 0; i < dimensions_.size(); ++i) {
    if (dimensions_[i]->name() == dimension_name) return i;
  }
  return Status::NotFound(StrCat("no dimension '", dimension_name,
                                 "' in schema of fact type '", fact_type_,
                                 "'"));
}

bool FactSchema::EquivalentTo(const FactSchema& other) const {
  if (fact_type_ != other.fact_type_) return false;
  if (dimensions_.size() != other.dimensions_.size()) return false;
  for (std::size_t i = 0; i < dimensions_.size(); ++i) {
    if (!dimensions_[i]->EquivalentTo(*other.dimensions_[i])) return false;
  }
  return true;
}

bool FactSchema::IsomorphicTo(const FactSchema& other) const {
  if (dimensions_.size() != other.dimensions_.size()) return false;
  for (std::size_t i = 0; i < dimensions_.size(); ++i) {
    if (dimensions_[i]->category_count() !=
        other.dimensions_[i]->category_count()) {
      return false;
    }
  }
  return true;
}

std::string FactSchema::ToString() const {
  std::string out = StrCat("FactSchema ", fact_type_, " (", dimensions_.size(),
                           " dimensions)\n");
  for (const auto& dimension : dimensions_) {
    out += dimension->ToString();
  }
  return out;
}

}  // namespace mddc
