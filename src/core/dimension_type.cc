#include "core/dimension_type.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <set>

#include "common/strings.h"

namespace mddc {

Result<CategoryTypeIndex> DimensionType::Find(
    std::string_view category_name) const {
  for (CategoryTypeIndex i = 0; i < categories_.size(); ++i) {
    if (categories_[i].name == category_name) return i;
  }
  return Status::NotFound(StrCat("no category type '", category_name,
                                 "' in dimension type '", name_, "'"));
}

bool DimensionType::LessEq(CategoryTypeIndex a, CategoryTypeIndex b) const {
  if (a == b) return true;
  std::deque<CategoryTypeIndex> frontier = {a};
  std::vector<bool> seen(categories_.size(), false);
  seen[a] = true;
  while (!frontier.empty()) {
    CategoryTypeIndex current = frontier.front();
    frontier.pop_front();
    for (CategoryTypeIndex parent : parents_[current]) {
      if (parent == b) return true;
      if (!seen[parent]) {
        seen[parent] = true;
        frontier.push_back(parent);
      }
    }
  }
  return false;
}

std::vector<CategoryTypeIndex> DimensionType::AtOrAbove(
    CategoryTypeIndex index) const {
  std::vector<bool> reachable(categories_.size(), false);
  std::deque<CategoryTypeIndex> frontier = {index};
  reachable[index] = true;
  while (!frontier.empty()) {
    CategoryTypeIndex current = frontier.front();
    frontier.pop_front();
    for (CategoryTypeIndex parent : parents_[current]) {
      if (!reachable[parent]) {
        reachable[parent] = true;
        frontier.push_back(parent);
      }
    }
  }
  // Emit in a topological (bottom-up) order: repeatedly take reachable
  // categories whose reachable children are all emitted.
  std::vector<CategoryTypeIndex> order;
  std::vector<bool> emitted(categories_.size(), false);
  bool progress = true;
  while (progress) {
    progress = false;
    for (CategoryTypeIndex i = 0; i < categories_.size(); ++i) {
      if (!reachable[i] || emitted[i]) continue;
      bool ready = true;
      for (CategoryTypeIndex child : children_[i]) {
        if (reachable[child] && !emitted[child]) {
          ready = false;
          break;
        }
      }
      if (ready) {
        order.push_back(i);
        emitted[i] = true;
        progress = true;
      }
    }
  }
  return order;
}

std::vector<std::vector<CategoryTypeIndex>> DimensionType::AggregationPaths(
    CategoryTypeIndex from) const {
  std::vector<std::vector<CategoryTypeIndex>> paths;
  std::vector<CategoryTypeIndex> current = {from};
  // Depth-first enumeration over Pred edges; the lattice is acyclic.
  std::function<void(CategoryTypeIndex)> walk = [&](CategoryTypeIndex at) {
    if (at == top_) {
      paths.push_back(current);
      return;
    }
    for (CategoryTypeIndex parent : parents_[at]) {
      current.push_back(parent);
      walk(parent);
      current.pop_back();
    }
  };
  if (from < categories_.size()) walk(from);
  return paths;
}

bool DimensionType::EquivalentTo(const DimensionType& other) const {
  if (name_ != other.name_) return false;
  if (!IsomorphicTo(other)) return false;
  for (const CategoryType& category : categories_) {
    auto found = other.Find(category.name);
    if (!found.ok()) return false;
    if (other.category(*found).agg_type != category.agg_type) return false;
  }
  return true;
}

bool DimensionType::IsomorphicTo(const DimensionType& other) const {
  if (categories_.size() != other.categories_.size()) return false;
  // Map by category name; compare edge sets as name pairs.
  std::set<std::pair<std::string, std::string>> mine;
  std::set<std::pair<std::string, std::string>> theirs;
  for (CategoryTypeIndex i = 0; i < categories_.size(); ++i) {
    auto found = other.Find(categories_[i].name);
    if (!found.ok()) return false;
    for (CategoryTypeIndex parent : parents_[i]) {
      mine.emplace(categories_[i].name, categories_[parent].name);
    }
  }
  for (CategoryTypeIndex i = 0; i < other.categories_.size(); ++i) {
    for (CategoryTypeIndex parent : other.parents_[i]) {
      theirs.emplace(other.categories_[i].name,
                     other.categories_[parent].name);
    }
  }
  return mine == theirs;
}

std::shared_ptr<const DimensionType> DimensionType::RestrictAbove(
    CategoryTypeIndex new_bottom) const {
  std::vector<CategoryTypeIndex> keep = AtOrAbove(new_bottom);
  auto restricted = Restrict(keep);
  // AtOrAbove always contains the top category, so Restrict cannot fail.
  return std::move(restricted).ValueOrDie();
}

Result<std::shared_ptr<const DimensionType>> DimensionType::Restrict(
    const std::vector<CategoryTypeIndex>& keep) const {
  std::vector<bool> kept(categories_.size(), false);
  for (CategoryTypeIndex i : keep) {
    if (i >= categories_.size()) {
      return Status::InvalidArgument(
          StrCat("category index ", i, " out of range for dimension type '",
                 name_, "'"));
    }
    kept[i] = true;
  }
  if (!kept[top_]) {
    return Status::InvalidArgument(
        StrCat("restriction of dimension type '", name_,
               "' must retain the TOP category"));
  }

  auto result = std::shared_ptr<DimensionType>(new DimensionType());
  result->name_ = name_;
  std::vector<CategoryTypeIndex> old_to_new(categories_.size(),
                                            static_cast<CategoryTypeIndex>(-1));
  for (CategoryTypeIndex i = 0; i < categories_.size(); ++i) {
    if (!kept[i]) continue;
    old_to_new[i] = result->categories_.size();
    result->categories_.push_back(categories_[i]);
  }
  result->parents_.resize(result->categories_.size());
  result->children_.resize(result->categories_.size());

  // Restriction of <=_T to the kept set: for each kept i, its new parents
  // are the minimal kept categories strictly above it.
  for (CategoryTypeIndex i = 0; i < categories_.size(); ++i) {
    if (!kept[i]) continue;
    std::vector<CategoryTypeIndex> ancestors = AtOrAbove(i);
    std::vector<CategoryTypeIndex> kept_above;
    for (CategoryTypeIndex a : ancestors) {
      if (a != i && kept[a]) kept_above.push_back(a);
    }
    // Minimal elements among kept_above: no other kept_above below them.
    for (CategoryTypeIndex candidate : kept_above) {
      bool minimal = true;
      for (CategoryTypeIndex other : kept_above) {
        if (other != candidate && LessEq(other, candidate)) {
          minimal = false;
          break;
        }
      }
      if (minimal) {
        result->parents_[old_to_new[i]].push_back(old_to_new[candidate]);
        result->children_[old_to_new[candidate]].push_back(old_to_new[i]);
      }
    }
  }

  result->top_ = old_to_new[top_];
  // The new bottom: the unique category with no kept category below it.
  // With an arbitrary subset there may be several minimal categories; the
  // paper's subdimension keeps a down-closed chain so in practice one
  // minimum exists. Pick the minimal category of smallest element size
  // (any minimal category below all others if one exists, else the first
  // minimal one).
  std::vector<CategoryTypeIndex> minimal;
  for (CategoryTypeIndex i = 0; i < result->categories_.size(); ++i) {
    if (result->children_[i].empty()) minimal.push_back(i);
  }
  result->bottom_ = minimal.empty() ? result->top_ : minimal.front();
  return std::shared_ptr<const DimensionType>(result);
}

std::shared_ptr<const DimensionType> DimensionType::WithName(
    std::string new_name) const {
  auto result = std::shared_ptr<DimensionType>(new DimensionType(*this));
  result->name_ = std::move(new_name);
  return result;
}

std::shared_ptr<const DimensionType> DimensionType::WithAggType(
    CategoryTypeIndex index, AggregationType agg_type) const {
  auto result = std::shared_ptr<DimensionType>(new DimensionType(*this));
  result->categories_[index].agg_type = agg_type;
  return result;
}

std::string DimensionType::ToString() const {
  std::string out = StrCat("DimensionType ", name_, ":\n");
  for (CategoryTypeIndex i : AtOrAbove(bottom_)) {
    out += StrCat("  ", categories_[i].name, " [",
                  AggregationTypeName(categories_[i].agg_type), "]");
    if (!parents_[i].empty()) {
      std::vector<std::string> parent_names;
      for (CategoryTypeIndex parent : parents_[i]) {
        parent_names.push_back(categories_[parent].name);
      }
      out += StrCat(" < ", Join(parent_names, ", "));
    }
    out += "\n";
  }
  return out;
}

DimensionTypeBuilder::DimensionTypeBuilder(std::string name)
    : name_(std::move(name)) {}

DimensionTypeBuilder& DimensionTypeBuilder::AddCategory(
    std::string category_name, AggregationType agg_type) {
  for (const CategoryType& existing : categories_) {
    if (existing.name == category_name) {
      deferred_error_ = Status::InvalidArgument(
          StrCat("duplicate category type '", category_name,
                 "' in dimension type '", name_, "'"));
      return *this;
    }
  }
  categories_.push_back(CategoryType{std::move(category_name), agg_type});
  return *this;
}

DimensionTypeBuilder& DimensionTypeBuilder::AddOrder(
    const std::string& smaller, const std::string& larger) {
  edges_.emplace_back(smaller, larger);
  return *this;
}

Result<std::shared_ptr<const DimensionType>> DimensionTypeBuilder::Build() {
  if (!deferred_error_.ok()) return deferred_error_;
  if (categories_.empty()) {
    return Status::InvalidArgument(
        StrCat("dimension type '", name_, "' has no category types"));
  }

  auto type = std::shared_ptr<DimensionType>(new DimensionType());
  type->name_ = name_;
  type->categories_ = categories_;

  bool has_top = false;
  for (const CategoryType& category : type->categories_) {
    if (category.name == kTopCategoryName) has_top = true;
  }
  if (!has_top) {
    type->categories_.push_back(
        CategoryType{kTopCategoryName, AggregationType::kConstant});
  }
  const std::size_t n = type->categories_.size();
  type->parents_.resize(n);
  type->children_.resize(n);

  auto find = [&](const std::string& name) -> Result<CategoryTypeIndex> {
    for (CategoryTypeIndex i = 0; i < n; ++i) {
      if (type->categories_[i].name == name) return i;
    }
    return Status::NotFound(StrCat("order edge references unknown category '",
                                   name, "' in dimension type '", name_, "'"));
  };

  for (const auto& [smaller, larger] : edges_) {
    MDDC_ASSIGN_OR_RETURN(CategoryTypeIndex child, find(smaller));
    MDDC_ASSIGN_OR_RETURN(CategoryTypeIndex parent, find(larger));
    if (child == parent) {
      return Status::InvariantViolation(
          StrCat("self-edge on category '", smaller, "'"));
    }
    type->parents_[child].push_back(parent);
    type->children_[parent].push_back(child);
  }

  // Identify TOP and link all otherwise-maximal categories to it.
  MDDC_ASSIGN_OR_RETURN(type->top_, find(kTopCategoryName));
  for (CategoryTypeIndex i = 0; i < n; ++i) {
    if (i == type->top_) continue;
    if (type->parents_[i].empty()) {
      type->parents_[i].push_back(type->top_);
      type->children_[type->top_].push_back(i);
    }
  }
  if (!type->parents_[type->top_].empty()) {
    return Status::InvariantViolation(
        StrCat("TOP category of dimension type '", name_,
               "' must be maximal"));
  }

  // Acyclicity: Kahn's algorithm over child->parent edges.
  {
    std::vector<std::size_t> indegree(n, 0);
    for (CategoryTypeIndex i = 0; i < n; ++i) {
      indegree[i] = type->children_[i].size();
    }
    std::deque<CategoryTypeIndex> queue;
    for (CategoryTypeIndex i = 0; i < n; ++i) {
      if (indegree[i] == 0) queue.push_back(i);
    }
    std::size_t visited = 0;
    while (!queue.empty()) {
      CategoryTypeIndex current = queue.front();
      queue.pop_front();
      ++visited;
      for (CategoryTypeIndex parent : type->parents_[current]) {
        if (--indegree[parent] == 0) queue.push_back(parent);
      }
    }
    if (visited != n) {
      return Status::InvariantViolation(
          StrCat("dimension type '", name_, "' ordering contains a cycle"));
    }
  }

  // Unique bottom: exactly one category with no children.
  std::vector<CategoryTypeIndex> bottoms;
  for (CategoryTypeIndex i = 0; i < n; ++i) {
    if (type->children_[i].empty()) bottoms.push_back(i);
  }
  if (bottoms.size() != 1) {
    std::vector<std::string> names;
    for (CategoryTypeIndex i : bottoms) {
      names.push_back(type->categories_[i].name);
    }
    return Status::InvariantViolation(
        StrCat("dimension type '", name_,
               "' must have exactly one bottom category, found ",
               bottoms.size(), " (", Join(names, ", "), ")"));
  }
  type->bottom_ = bottoms[0];

  // Every category must reach TOP (guaranteed by the maximal-linking pass
  // plus acyclicity, but verify as defense in depth).
  for (CategoryTypeIndex i = 0; i < n; ++i) {
    if (!type->LessEq(i, type->top_)) {
      return Status::InvariantViolation(
          StrCat("category '", type->categories_[i].name,
                 "' does not reach TOP in dimension type '", name_, "'"));
    }
  }

  return std::shared_ptr<const DimensionType>(type);
}

}  // namespace mddc
