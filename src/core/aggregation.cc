#include "core/aggregation.h"

#include <algorithm>

namespace mddc {

std::string_view AggregationTypeName(AggregationType type) {
  switch (type) {
    case AggregationType::kConstant:
      return "c";
    case AggregationType::kAverage:
      return "phi";
    case AggregationType::kSum:
      return "Sigma";
  }
  return "?";
}

std::string_view AggregateFunctionKindName(AggregateFunctionKind kind) {
  switch (kind) {
    case AggregateFunctionKind::kCount:
      return "COUNT";
    case AggregateFunctionKind::kSetCount:
      return "SetCount";
    case AggregateFunctionKind::kSum:
      return "SUM";
    case AggregateFunctionKind::kAvg:
      return "AVG";
    case AggregateFunctionKind::kMin:
      return "MIN";
    case AggregateFunctionKind::kMax:
      return "MAX";
  }
  return "?";
}

AggregationType MinAggregationType(AggregationType a, AggregationType b) {
  return static_cast<int>(a) < static_cast<int>(b) ? a : b;
}

bool IsApplicable(AggregateFunctionKind kind, AggregationType type) {
  switch (kind) {
    case AggregateFunctionKind::kCount:
    case AggregateFunctionKind::kSetCount:
      return true;  // c-type data can always be counted.
    case AggregateFunctionKind::kAvg:
    case AggregateFunctionKind::kMin:
    case AggregateFunctionKind::kMax:
      return type >= AggregationType::kAverage;
    case AggregateFunctionKind::kSum:
      return type >= AggregationType::kSum;
  }
  return false;
}

bool IsDistributive(AggregateFunctionKind kind) {
  switch (kind) {
    case AggregateFunctionKind::kCount:
    case AggregateFunctionKind::kSetCount:
    case AggregateFunctionKind::kSum:
    case AggregateFunctionKind::kMin:
    case AggregateFunctionKind::kMax:
      return true;
    case AggregateFunctionKind::kAvg:
      return false;
  }
  return false;
}

}  // namespace mddc
