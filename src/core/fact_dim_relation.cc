#include "core/fact_dim_relation.h"

#include <algorithm>
#include <mutex>

#include "common/strings.h"

namespace mddc {

void FactDimRelation::CopyFrom(const FactDimRelation& other) {
  entries_ = other.entries_;
  by_fact_ = other.by_fact_;
  by_value_ = other.by_value_;
  // The CSR view is rebuilt on demand: copying it would need to
  // synchronize with a concurrent lazy build in `other`, and copies are
  // made by writers shaping new (unsealed) objects anyway.
  spans_.clear();
  span_entries_.clear();
  csr_valid_.store(false, std::memory_order_release);
}

void FactDimRelation::MoveFrom(FactDimRelation&& other) {
  entries_ = std::move(other.entries_);
  by_fact_ = std::move(other.by_fact_);
  by_value_ = std::move(other.by_value_);
  spans_ = std::move(other.spans_);
  span_entries_ = std::move(other.span_entries_);
  csr_valid_.store(other.csr_valid_.load(std::memory_order_acquire),
                   std::memory_order_release);
  other.csr_valid_.store(false, std::memory_order_release);
}

FactDimRelation::FactDimRelation(const FactDimRelation& other) {
  CopyFrom(other);
}

FactDimRelation::FactDimRelation(FactDimRelation&& other) noexcept {
  MoveFrom(std::move(other));
}

FactDimRelation& FactDimRelation::operator=(const FactDimRelation& other) {
  if (this != &other) CopyFrom(other);
  return *this;
}

FactDimRelation& FactDimRelation::operator=(
    FactDimRelation&& other) noexcept {
  if (this != &other) MoveFrom(std::move(other));
  return *this;
}

Status FactDimRelation::Add(FactId fact, ValueId value, const Lifespan& life,
                            double prob) {
  if (!fact.valid() || !value.valid()) {
    return Status::InvalidArgument(
        "fact-dimension pair with invalid fact or value id");
  }
  if (life.Empty()) {
    return Status::InvalidArgument(
        StrCat("fact-dimension pair (", fact, ",", value,
               ") with empty lifespan"));
  }
  if (prob <= 0.0 || prob > 1.0) {
    return Status::InvalidArgument(
        StrCat("fact-dimension probability ", prob, " outside (0,1]"));
  }
  if (const std::uint32_t ordinal = by_fact_.FindOrdinal(fact);
      ordinal != FlatHashIndex::kNone) {
    for (std::size_t index : by_fact_.lists[ordinal]) {
      Entry& entry = entries_[index];
      if (entry.value != value) continue;
      if (entry.prob != prob) {
        return Status::InvariantViolation(
            StrCat("conflicting probabilities for pair (", fact, ",", value,
                   "): ", entry.prob, " vs ", prob));
      }
      // Coalesce when the union stays a product of two chronon sets: the
      // component-wise union of two Lifespans only equals the set union
      // of the bitemporal regions when the operands agree on one axis.
      // Bitemporal corrections (same pair, different rectangles) keep
      // separate entries.
      if (entry.life.valid == life.valid) {
        entry.life.transaction = entry.life.transaction.Union(life.transaction);
        InvalidateCsr();
        return Status::OK();
      }
      if (entry.life.transaction == life.transaction) {
        entry.life.valid = entry.life.valid.Union(life.valid);
        InvalidateCsr();
        return Status::OK();
      }
    }
  }
  by_fact_.ListFor(fact).push_back(entries_.size());
  by_value_.ListFor(value).push_back(entries_.size());
  entries_.push_back(Entry{fact, value, life, prob});
  InvalidateCsr();
  return Status::OK();
}

void FactDimRelation::ReindexAll() {
  by_fact_.Clear();
  by_value_.Clear();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    by_fact_.ListFor(entries_[i].fact).push_back(i);
    by_value_.ListFor(entries_[i].value).push_back(i);
  }
  InvalidateCsr();
}

void FactDimRelation::RestrictToFacts(const std::vector<FactId>& facts) {
  std::vector<Entry> kept;
  kept.reserve(entries_.size());
  for (Entry& entry : entries_) {
    if (std::binary_search(facts.begin(), facts.end(), entry.fact)) {
      kept.push_back(std::move(entry));
    }
  }
  entries_ = std::move(kept);
  ReindexAll();
}

std::vector<const FactDimRelation::Entry*> FactDimRelation::ForFact(
    FactId fact) const {
  std::vector<const Entry*> result;
  const std::uint32_t ordinal = by_fact_.FindOrdinal(fact);
  if (ordinal == FlatHashIndex::kNone) return result;
  for (std::size_t index : by_fact_.lists[ordinal]) {
    result.push_back(&entries_[index]);
  }
  return result;
}

std::vector<const FactDimRelation::Entry*> FactDimRelation::ForValue(
    ValueId value) const {
  std::vector<const Entry*> result;
  const std::uint32_t ordinal = by_value_.FindOrdinal(value);
  if (ordinal == FlatHashIndex::kNone) return result;
  for (std::size_t index : by_value_.lists[ordinal]) {
    result.push_back(&entries_[index]);
  }
  return result;
}

namespace {
const std::vector<std::size_t> kNoEntryIndexes;

// Guards lazy CSR builds on unsealed relations (the RollupIndex SlotMutex
// idiom): one process-wide mutex, never destroyed, so sealing races from
// multiple contexts serialize without per-relation storage.
std::mutex& CsrMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}
}  // namespace

const std::vector<std::size_t>& FactDimRelation::EntryIndexesForFact(
    FactId fact) const {
  const std::uint32_t ordinal = by_fact_.FindOrdinal(fact);
  return ordinal == FlatHashIndex::kNone ? kNoEntryIndexes
                                         : by_fact_.lists[ordinal];
}

const std::vector<std::size_t>& FactDimRelation::EntryIndexesForValue(
    ValueId value) const {
  const std::uint32_t ordinal = by_value_.FindOrdinal(value);
  return ordinal == FlatHashIndex::kNone ? kNoEntryIndexes
                                         : by_value_.lists[ordinal];
}

void FactDimRelation::SealIndexes() const {
  if (csr_valid_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(CsrMutex());
  if (csr_valid_.load(std::memory_order_relaxed)) return;
  spans_.clear();
  span_entries_.clear();
  std::vector<std::uint32_t> order(by_fact_.keys.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return by_fact_.keys[a] < by_fact_.keys[b];
            });
  spans_.reserve(order.size());
  span_entries_.reserve(entries_.size());
  for (std::uint32_t ordinal : order) {
    FactSpan span;
    span.fact = by_fact_.keys[ordinal];
    span.begin = static_cast<std::uint32_t>(span_entries_.size());
    const std::vector<std::size_t>& list = by_fact_.lists[ordinal];
    span_entries_.insert(span_entries_.end(), list.begin(), list.end());
    span.end = static_cast<std::uint32_t>(span_entries_.size());
    spans_.push_back(span);
  }
  csr_valid_.store(true, std::memory_order_release);
}

bool FactDimRelation::HasFact(FactId fact) const {
  return by_fact_.FindOrdinal(fact) != FlatHashIndex::kNone;
}

Result<FactDimRelation> FactDimRelation::UnionWith(const FactDimRelation& a,
                                                   const FactDimRelation& b) {
  FactDimRelation result = a;
  for (const Entry& entry : b.entries_) {
    MDDC_RETURN_NOT_OK(
        result.Add(entry.fact, entry.value, entry.life, entry.prob));
  }
  return result;
}

}  // namespace mddc
