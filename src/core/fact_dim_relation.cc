#include "core/fact_dim_relation.h"

#include <algorithm>
#include <mutex>

#include "common/strings.h"

namespace mddc {

void FactDimRelation::CopyFrom(const FactDimRelation& other) {
  // Copy with append headroom: vector copy-assignment allocates exactly
  // size(), so a cloned draft's first Add would reallocate — and re-copy
  // — the whole entry array. The clone is the one full copy the
  // continuous-ingestion path pays per batch; the slack keeps it the
  // only one (docs/ingestion.md).
  const auto with_headroom = [](auto& dst, const auto& src) {
    dst.clear();
    dst.reserve(src.size() + src.size() / 8 + 1024);
    dst.insert(dst.end(), src.begin(), src.end());
  };
  with_headroom(entries_, other.entries_);
  by_fact_ = other.by_fact_;
  by_value_ = other.by_value_;
  // A *valid* (sealed) CSR view is index-based, so it stays correct for
  // the copied arrays and is carried over — this is what lets a writer's
  // draft extend the published view's span tail after a batched append
  // instead of re-sorting every entry (docs/ingestion.md). An in-flight
  // lazy build in `other` (csr_valid_ false) is not copied: its arrays
  // may be half-written by another thread, so the copy rebuilds on
  // demand.
  if (other.csr_valid_.load(std::memory_order_acquire)) {
    with_headroom(spans_, other.spans_);
    with_headroom(span_entries_, other.span_entries_);
    sealed_entry_count_ = other.sealed_entry_count_;
    csr_valid_.store(true, std::memory_order_release);
  } else {
    spans_.clear();
    span_entries_.clear();
    sealed_entry_count_ = 0;
    csr_valid_.store(false, std::memory_order_release);
  }
}

void FactDimRelation::MoveFrom(FactDimRelation&& other) {
  entries_ = std::move(other.entries_);
  by_fact_ = std::move(other.by_fact_);
  by_value_ = std::move(other.by_value_);
  spans_ = std::move(other.spans_);
  span_entries_ = std::move(other.span_entries_);
  sealed_entry_count_ = other.sealed_entry_count_;
  other.sealed_entry_count_ = 0;
  csr_valid_.store(other.csr_valid_.load(std::memory_order_acquire),
                   std::memory_order_release);
  other.csr_valid_.store(false, std::memory_order_release);
}

FactDimRelation::FactDimRelation(const FactDimRelation& other) {
  CopyFrom(other);
}

FactDimRelation::FactDimRelation(FactDimRelation&& other) noexcept {
  MoveFrom(std::move(other));
}

FactDimRelation& FactDimRelation::operator=(const FactDimRelation& other) {
  if (this != &other) CopyFrom(other);
  return *this;
}

FactDimRelation& FactDimRelation::operator=(
    FactDimRelation&& other) noexcept {
  if (this != &other) MoveFrom(std::move(other));
  return *this;
}

Status FactDimRelation::Add(FactId fact, ValueId value, const Lifespan& life,
                            double prob) {
  if (!fact.valid() || !value.valid()) {
    return Status::InvalidArgument(
        "fact-dimension pair with invalid fact or value id");
  }
  if (life.Empty()) {
    return Status::InvalidArgument(
        StrCat("fact-dimension pair (", fact, ",", value,
               ") with empty lifespan"));
  }
  if (prob <= 0.0 || prob > 1.0) {
    return Status::InvalidArgument(
        StrCat("fact-dimension probability ", prob, " outside (0,1]"));
  }
  if (const std::uint32_t ordinal = by_fact_.FindOrdinal(fact);
      ordinal != FlatHashIndex::kNone) {
    for (std::size_t index : by_fact_.ListAt(ordinal)) {
      Entry& entry = entries_[index];
      if (entry.value != value) continue;
      if (entry.prob != prob) {
        return Status::InvariantViolation(
            StrCat("conflicting probabilities for pair (", fact, ",", value,
                   "): ", entry.prob, " vs ", prob));
      }
      // Coalesce when the union stays a product of two chronon sets: the
      // component-wise union of two Lifespans only equals the set union
      // of the bitemporal regions when the operands agree on one axis.
      // Bitemporal corrections (same pair, different rectangles) keep
      // separate entries.
      if (entry.life.valid == life.valid) {
        entry.life.transaction = entry.life.transaction.Union(life.transaction);
        InvalidateCsr();
        return Status::OK();
      }
      if (entry.life.transaction == life.transaction) {
        entry.life.valid = entry.life.valid.Union(life.valid);
        InvalidateCsr();
        return Status::OK();
      }
    }
  }
  by_fact_.ListFor(fact).push_back(entries_.size());
  by_value_.ListFor(value).push_back(entries_.size());
  entries_.push_back(Entry{fact, value, life, prob});
  InvalidateCsr();
  return Status::OK();
}

void FactDimRelation::ReindexAll() {
  by_fact_.Clear();
  by_value_.Clear();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    by_fact_.ListFor(entries_[i].fact).push_back(i);
    by_value_.ListFor(entries_[i].value).push_back(i);
  }
  // Entry indexes were rewritten wholesale, so the kept CSR layout is
  // meaningless: drop it and force the next seal to rebuild.
  spans_.clear();
  span_entries_.clear();
  sealed_entry_count_ = 0;
  InvalidateCsr();
}

void FactDimRelation::RestrictToFacts(const std::vector<FactId>& facts) {
  std::vector<Entry> kept;
  kept.reserve(entries_.size());
  for (Entry& entry : entries_) {
    if (std::binary_search(facts.begin(), facts.end(), entry.fact)) {
      kept.push_back(std::move(entry));
    }
  }
  entries_ = std::move(kept);
  ReindexAll();
}

std::vector<const FactDimRelation::Entry*> FactDimRelation::ForFact(
    FactId fact) const {
  std::vector<const Entry*> result;
  const std::uint32_t ordinal = by_fact_.FindOrdinal(fact);
  if (ordinal == FlatHashIndex::kNone) return result;
  for (std::size_t index : by_fact_.ListAt(ordinal)) {
    result.push_back(&entries_[index]);
  }
  return result;
}

std::vector<const FactDimRelation::Entry*> FactDimRelation::ForValue(
    ValueId value) const {
  std::vector<const Entry*> result;
  const std::uint32_t ordinal = by_value_.FindOrdinal(value);
  if (ordinal == FlatHashIndex::kNone) return result;
  for (std::size_t index : by_value_.ListAt(ordinal)) {
    result.push_back(&entries_[index]);
  }
  return result;
}

namespace {
const std::vector<std::size_t> kNoEntryIndexes;

// Guards lazy CSR builds on unsealed relations (the RollupIndex SlotMutex
// idiom): one process-wide mutex, never destroyed, so sealing races from
// multiple contexts serialize without per-relation storage.
std::mutex& CsrMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}
}  // namespace

const std::vector<std::size_t>& FactDimRelation::EntryIndexesForFact(
    FactId fact) const {
  const std::uint32_t ordinal = by_fact_.FindOrdinal(fact);
  return ordinal == FlatHashIndex::kNone ? kNoEntryIndexes
                                         : by_fact_.ListAt(ordinal);
}

const std::vector<std::size_t>& FactDimRelation::EntryIndexesForValue(
    ValueId value) const {
  const std::uint32_t ordinal = by_value_.FindOrdinal(value);
  return ordinal == FlatHashIndex::kNone ? kNoEntryIndexes
                                         : by_value_.ListAt(ordinal);
}

void FactDimRelation::SealIndexes() const { (void)SealIndexesReporting(); }

bool FactDimRelation::TryExtendCsrTailLocked() const {
  // Nothing sealed yet (or the layout was dropped): only a rebuild can
  // establish the view.
  if (sealed_entry_count_ == 0) return false;
  if (sealed_entry_count_ > entries_.size()) return false;
  // Pure in-place coalesces since the last seal: the index structure is
  // untouched, the view is still exact.
  if (sealed_entry_count_ == entries_.size()) return true;
  if (spans_.empty()) return false;
  // Order the appended entries by fact (stably, preserving insertion
  // order within a fact — the order the by-fact lists and the full
  // rebuild both use). Extendable iff every appended fact sorts at or
  // after the last sealed fact: then the delta only grows the final span
  // and appends new ones, keeping every sealed row contiguous.
  std::vector<std::size_t> tail;
  tail.reserve(entries_.size() - sealed_entry_count_);
  for (std::size_t i = sealed_entry_count_; i < entries_.size(); ++i) {
    tail.push_back(i);
  }
  std::stable_sort(tail.begin(), tail.end(),
                   [&](std::size_t a, std::size_t b) {
                     return entries_[a].fact < entries_[b].fact;
                   });
  if (entries_[tail.front()].fact < spans_.back().fact) return false;
  for (std::size_t index : tail) {
    const FactId fact = entries_[index].fact;
    if (spans_.back().fact == fact) {
      span_entries_.push_back(index);
      ++spans_.back().end;
    } else {
      FactSpan span;
      span.fact = fact;
      span.begin = static_cast<std::uint32_t>(span_entries_.size());
      span_entries_.push_back(index);
      span.end = static_cast<std::uint32_t>(span_entries_.size());
      spans_.push_back(span);
    }
  }
  sealed_entry_count_ = entries_.size();
  return true;
}

FactDimRelation::SealOutcome FactDimRelation::SealIndexesReporting() const {
  if (csr_valid_.load(std::memory_order_acquire)) {
    return SealOutcome::kReused;
  }
  std::lock_guard<std::mutex> lock(CsrMutex());
  if (csr_valid_.load(std::memory_order_relaxed)) {
    return SealOutcome::kReused;
  }
  if (TryExtendCsrTailLocked()) {
    csr_valid_.store(true, std::memory_order_release);
    return SealOutcome::kExtended;
  }
  spans_.clear();
  span_entries_.clear();
  std::vector<std::uint32_t> order(by_fact_.keys.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return by_fact_.keys[a] < by_fact_.keys[b];
            });
  spans_.reserve(order.size());
  span_entries_.reserve(entries_.size());
  for (std::uint32_t ordinal : order) {
    FactSpan span;
    span.fact = by_fact_.keys[ordinal];
    span.begin = static_cast<std::uint32_t>(span_entries_.size());
    const std::vector<std::size_t>& list = by_fact_.ListAt(ordinal);
    span_entries_.insert(span_entries_.end(), list.begin(), list.end());
    span.end = static_cast<std::uint32_t>(span_entries_.size());
    spans_.push_back(span);
  }
  sealed_entry_count_ = entries_.size();
  csr_valid_.store(true, std::memory_order_release);
  return SealOutcome::kRebuilt;
}

bool FactDimRelation::HasFact(FactId fact) const {
  return by_fact_.FindOrdinal(fact) != FlatHashIndex::kNone;
}

Result<FactDimRelation> FactDimRelation::UnionWith(const FactDimRelation& a,
                                                   const FactDimRelation& b) {
  FactDimRelation result = a;
  for (const Entry& entry : b.entries_) {
    MDDC_RETURN_NOT_OK(
        result.Add(entry.fact, entry.value, entry.life, entry.prob));
  }
  return result;
}

}  // namespace mddc
