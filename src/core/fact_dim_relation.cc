#include "core/fact_dim_relation.h"

#include <algorithm>

#include "common/strings.h"

namespace mddc {

Status FactDimRelation::Add(FactId fact, ValueId value, const Lifespan& life,
                            double prob) {
  if (!fact.valid() || !value.valid()) {
    return Status::InvalidArgument(
        "fact-dimension pair with invalid fact or value id");
  }
  if (life.Empty()) {
    return Status::InvalidArgument(
        StrCat("fact-dimension pair (", fact, ",", value,
               ") with empty lifespan"));
  }
  if (prob <= 0.0 || prob > 1.0) {
    return Status::InvalidArgument(
        StrCat("fact-dimension probability ", prob, " outside (0,1]"));
  }
  if (auto it = by_fact_.find(fact); it != by_fact_.end()) {
    for (std::size_t index : it->second) {
      Entry& entry = entries_[index];
      if (entry.value != value) continue;
      if (entry.prob != prob) {
        return Status::InvariantViolation(
            StrCat("conflicting probabilities for pair (", fact, ",", value,
                   "): ", entry.prob, " vs ", prob));
      }
      // Coalesce when the union stays a product of two chronon sets: the
      // component-wise union of two Lifespans only equals the set union
      // of the bitemporal regions when the operands agree on one axis.
      // Bitemporal corrections (same pair, different rectangles) keep
      // separate entries.
      if (entry.life.valid == life.valid) {
        entry.life.transaction = entry.life.transaction.Union(life.transaction);
        return Status::OK();
      }
      if (entry.life.transaction == life.transaction) {
        entry.life.valid = entry.life.valid.Union(life.valid);
        return Status::OK();
      }
    }
  }
  by_fact_[fact].push_back(entries_.size());
  by_value_[value].push_back(entries_.size());
  entries_.push_back(Entry{fact, value, life, prob});
  return Status::OK();
}

void FactDimRelation::RestrictToFacts(const std::vector<FactId>& facts) {
  std::vector<Entry> kept;
  kept.reserve(entries_.size());
  for (Entry& entry : entries_) {
    if (std::binary_search(facts.begin(), facts.end(), entry.fact)) {
      kept.push_back(std::move(entry));
    }
  }
  entries_ = std::move(kept);
  by_fact_.clear();
  by_value_.clear();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    by_fact_[entries_[i].fact].push_back(i);
    by_value_[entries_[i].value].push_back(i);
  }
}

std::vector<const FactDimRelation::Entry*> FactDimRelation::ForFact(
    FactId fact) const {
  std::vector<const Entry*> result;
  auto it = by_fact_.find(fact);
  if (it == by_fact_.end()) return result;
  for (std::size_t index : it->second) result.push_back(&entries_[index]);
  return result;
}

std::vector<const FactDimRelation::Entry*> FactDimRelation::ForValue(
    ValueId value) const {
  std::vector<const Entry*> result;
  auto it = by_value_.find(value);
  if (it == by_value_.end()) return result;
  for (std::size_t index : it->second) result.push_back(&entries_[index]);
  return result;
}

namespace {
const std::vector<std::size_t> kNoEntryIndexes;
}  // namespace

const std::vector<std::size_t>& FactDimRelation::EntryIndexesForFact(
    FactId fact) const {
  auto it = by_fact_.find(fact);
  return it == by_fact_.end() ? kNoEntryIndexes : it->second;
}

const std::vector<std::size_t>& FactDimRelation::EntryIndexesForValue(
    ValueId value) const {
  auto it = by_value_.find(value);
  return it == by_value_.end() ? kNoEntryIndexes : it->second;
}

bool FactDimRelation::HasFact(FactId fact) const {
  return by_fact_.count(fact) != 0;
}

Result<FactDimRelation> FactDimRelation::UnionWith(const FactDimRelation& a,
                                                   const FactDimRelation& b) {
  FactDimRelation result = a;
  for (const Entry& entry : b.entries_) {
    MDDC_RETURN_NOT_OK(
        result.Add(entry.fact, entry.value, entry.life, entry.prob));
  }
  return result;
}

}  // namespace mddc
