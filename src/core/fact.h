#ifndef MDDC_CORE_FACT_H_
#define MDDC_CORE_FACT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/flat_hash.h"
#include "common/id.h"
#include "common/result.h"

namespace mddc {

/// The structure of a fact. In the paper, facts are "objects with a
/// separate identity" (Section 3.1); the identity-based join produces
/// facts that are *pairs* of argument facts, and aggregate formation
/// produces facts that are *sets* of argument facts ("the facts are of
/// type sets of the argument fact type"). FactTerm captures those three
/// shapes.
struct FactTerm {
  enum class Kind { kAtom, kPair, kSet };

  Kind kind = Kind::kAtom;
  /// kAtom: the external key of the fact (e.g., the patient's surrogate id
  /// in the case study).
  std::uint64_t atom = 0;
  /// kPair: the two components, in order.
  FactId first;
  FactId second;
  /// kSet: the member facts, sorted and deduplicated.
  std::vector<FactId> members;

  friend bool operator==(const FactTerm&, const FactTerm&) = default;
};

/// Interns fact terms and hands out dense FactIds so that fact equality is
/// id equality and fact *sets* have canonical identity (interning the
/// sorted member list means the same group of facts always maps to the
/// same FactId — the paper's "the facts of an MO are a set, so we do not
/// have duplicate facts"). A registry is shared (via shared_ptr) among an
/// MO and all MOs derived from it by algebra operators, so fact identity
/// is preserved across operator application.
class FactRegistry {
 public:
  FactRegistry() = default;
  FactRegistry(const FactRegistry&) = delete;
  FactRegistry& operator=(const FactRegistry&) = delete;

  /// An O(1) copy-on-write fork: the new registry resolves every id the
  /// base knows through the (immutable) base and interns new terms
  /// locally, with ids continuing where the base stops. Ids are therefore
  /// stable across the fork — a fact interned before the fork has the same
  /// id in every fork, and two forks that intern the same sequence of new
  /// terms assign the same new ids.
  ///
  /// The base MUST be frozen: no call may mutate it once a fork exists
  /// (the MVCC serving tier guarantees this by construction — published
  /// epochs are immutable, and writers fork before mutating). Forks of the
  /// same frozen base are independent; concurrent use of different forks
  /// is safe because each fork only reads the base.
  static std::shared_ptr<FactRegistry> ForkOf(
      std::shared_ptr<const FactRegistry> base);

  /// A deep, flat copy preserving every id: collapses a fork chain into a
  /// fresh root registry (fork_depth() == 0). The writer path flattens
  /// when chains grow so published lookups stay O(log n), not O(epochs).
  std::shared_ptr<FactRegistry> Flatten() const;

  /// Number of overlay links back to a root registry (0 for a root).
  std::size_t fork_depth() const { return fork_depth_; }

  /// Interns an atomic fact with the given external key.
  FactId Atom(std::uint64_t external_key);

  /// Interns the ordered pair (a, b) (identity-based join results).
  FactId Pair(FactId a, FactId b);

  /// Interns the set of `members` (aggregate formation results). Members
  /// are sorted and deduplicated; the empty set is a valid term.
  FactId Set(std::vector<FactId> members);

  /// Looks up the structure of a fact.
  Result<FactTerm> Get(FactId id) const;

  /// Number of interned terms, including everything visible through the
  /// base chain.
  std::size_t size() const { return base_size_ + terms_.size(); }

  /// Renders a fact: atoms print their key ("2"), pairs "(1,2)", sets
  /// "{1,2}".
  std::string ToString(FactId id) const;

 private:
  /// FNV-1a over the term's identity fields (kind-specific; each kind has
  /// its own table, so cross-kind collisions are impossible by layout).
  static std::uint64_t HashTerm(const FactTerm& term);

  /// Probes the base chain for an equal term; interns locally on miss.
  FactId FindOrIntern(FactTerm term);

  /// Appends `term` as the next local id and records it in the flat index
  /// of its kind (`hash` must be HashTerm(term)).
  FactId Intern(FactTerm term, std::uint64_t hash);

  const FlatHashIndex& TableFor(FactTerm::Kind kind) const;
  FlatHashIndex& TableFor(FactTerm::Kind kind) {
    return const_cast<FlatHashIndex&>(
        static_cast<const FactRegistry*>(this)->TableFor(kind));
  }

  /// The term for `id`, resolving through the base chain; nullptr when
  /// unknown.
  const FactTerm* FindTerm(FactId id) const;

  /// Frozen parent registry of a fork (null for a root); ids below
  /// base_size_ resolve through it.
  std::shared_ptr<const FactRegistry> base_;
  std::size_t base_size_ = 0;
  std::size_t fork_depth_ = 0;

  std::vector<FactTerm> terms_;  // local terms; id = base_size_ + index

  // Open-addressing dedup tables, one per term kind; ordinals are local
  // term indexes, equality probes compare against terms_ directly (no
  // second key store, no tree nodes — docs/memory_layout.md).
  FlatHashIndex atom_index_;
  FlatHashIndex pair_index_;
  FlatHashIndex set_index_;
};

}  // namespace mddc

#endif  // MDDC_CORE_FACT_H_
