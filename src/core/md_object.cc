#include "core/md_object.h"

#include <algorithm>

#include "common/strings.h"

namespace mddc {
namespace {

std::vector<std::shared_ptr<const DimensionType>> TypesOf(
    const std::vector<Dimension>& dimensions) {
  std::vector<std::shared_ptr<const DimensionType>> types;
  types.reserve(dimensions.size());
  for (const Dimension& dimension : dimensions) {
    types.push_back(dimension.type_ptr());
  }
  return types;
}

}  // namespace

std::string_view TemporalTypeName(TemporalType type) {
  switch (type) {
    case TemporalType::kSnapshot:
      return "snapshot";
    case TemporalType::kValidTime:
      return "valid-time";
    case TemporalType::kTransactionTime:
      return "transaction-time";
    case TemporalType::kBitemporal:
      return "bitemporal";
  }
  return "?";
}

MdObject::MdObject(std::string fact_type, std::vector<Dimension> dimensions,
                   std::shared_ptr<FactRegistry> registry,
                   TemporalType temporal_type)
    : schema_(std::move(fact_type), TypesOf(dimensions)),
      dimensions_(std::move(dimensions)),
      relations_(dimensions_.size()),
      registry_(std::move(registry)),
      temporal_type_(temporal_type) {}

bool MdObject::HasFact(FactId fact) const {
  return std::binary_search(facts_.begin(), facts_.end(), fact);
}

Status MdObject::AddFact(FactId fact) {
  if (!fact.valid()) {
    return Status::InvalidArgument("cannot add an invalid fact id");
  }
  auto it = std::lower_bound(facts_.begin(), facts_.end(), fact);
  if (it != facts_.end() && *it == fact) return Status::OK();
  facts_.insert(it, fact);
  return Status::OK();
}

Status MdObject::RemoveFact(FactId fact) {
  auto it = std::lower_bound(facts_.begin(), facts_.end(), fact);
  if (it == facts_.end() || *it != fact) {
    return Status::NotFound(
        StrCat("fact ", fact, " is not in the fact set of this MO"));
  }
  facts_.erase(it);
  // RestrictToFacts reindexes the relation wholesale, dropping any sealed
  // CSR layout — a removal is a structural change no append patch covers
  // (docs/ingestion.md), so the next seal re-sorts from scratch.
  for (FactDimRelation& relation : relations_) {
    relation.RestrictToFacts(facts_);
  }
  return Status::OK();
}

Status MdObject::Relate(std::size_t dim, FactId fact, ValueId value,
                        const Lifespan& life, double prob) {
  if (dim >= dimensions_.size()) {
    return Status::InvalidArgument(
        StrCat("dimension index ", dim, " out of range"));
  }
  if (!HasFact(fact)) {
    return Status::NotFound(
        StrCat("fact ", fact, " is not in the fact set of this MO"));
  }
  if (!dimensions_[dim].HasValue(value)) {
    return Status::NotFound(StrCat("value ", value, " is not in dimension '",
                                   dimensions_[dim].name(), "'"));
  }
  return relations_[dim].Add(fact, value, life, prob);
}

Status MdObject::CoverWithTop() {
  for (std::size_t i = 0; i < dimensions_.size(); ++i) {
    for (FactId fact : facts_) {
      if (!relations_[i].HasFact(fact)) {
        MDDC_RETURN_NOT_OK(
            relations_[i].Add(fact, dimensions_[i].top_value()));
      }
    }
  }
  return Status::OK();
}

Status MdObject::CoverWithTop(const std::vector<FactId>& facts) {
  for (std::size_t i = 0; i < dimensions_.size(); ++i) {
    for (FactId fact : facts) {
      if (!relations_[i].HasFact(fact)) {
        MDDC_RETURN_NOT_OK(
            relations_[i].Add(fact, dimensions_[i].top_value()));
      }
    }
  }
  return Status::OK();
}

MdObject MdObject::WithRegistry(std::shared_ptr<FactRegistry> registry) const {
  MdObject copy = *this;
  copy.registry_ = std::move(registry);
  return copy;
}

void MdObject::WarmAndFreezeForPublish() const {
  for (const Dimension& dimension : dimensions_) {
    dimension.set_memoization_enabled(true);
    dimension.WarmClosureMemo();
    dimension.set_publish_frozen(true);
  }
  // Seal the CSR span views too: published epochs must never build
  // indexes under concurrent readers (docs/memory_layout.md).
  for (const FactDimRelation& relation : relations_) {
    relation.SealIndexes();
  }
}

std::vector<MdObject::Characterization> MdObject::CharacterizedBy(
    FactId fact, std::size_t dim, Chronon prob_at) const {
  std::vector<Characterization> result;
  if (dim >= dimensions_.size()) return result;
  const Dimension& dimension = dimensions_[dim];

  // Accumulate per characterizing value; multiple witnesses union
  // lifespans and noisy-or probabilities.
  std::map<ValueId, Characterization> accumulated;
  auto accumulate = [&](ValueId base, ValueId value, const Lifespan& life,
                        double prob) {
    if (life.Empty()) return;
    auto [it, inserted] = accumulated.try_emplace(
        value, Characterization{base, value, life, prob});
    if (!inserted) {
      it->second.life = it->second.life.Union(life);
      it->second.prob = 1.0 - (1.0 - it->second.prob) * (1.0 - prob);
    }
  };

  const FactDimRelation& relation = relations_[dim];
  for (std::size_t index : relation.EntryIndexesForFact(fact)) {
    const FactDimRelation::Entry& entry = relation.entries()[index];
    // The directly related value characterizes the fact...
    accumulate(entry.value, entry.value, entry.life, entry.prob);
    // ...and so does everything containing it.
    for (const Dimension::Containment& c :
         dimension.AncestorsView(entry.value, prob_at)) {
      if (c.value == dimension.top_value()) continue;
      accumulate(entry.value, c.value, entry.life.Intersect(c.life),
                 entry.prob * c.prob);
    }
  }
  // Characterization by the top value is unconditional: the fact is
  // certainly *somewhere* in the dimension (the paper's no-missing-values
  // rule guarantees a pair exists).
  if (!relation.EntryIndexesForFact(fact).empty()) {
    accumulated.erase(dimension.top_value());
    accumulate(dimension.top_value(), dimension.top_value(),
               Lifespan::AlwaysSpan(), 1.0);
  }

  result.reserve(accumulated.size());
  for (auto& [value, characterization] : accumulated) {
    result.push_back(std::move(characterization));
  }
  return result;
}

Lifespan MdObject::CharacterizationSpan(FactId fact, std::size_t dim,
                                        ValueId value) const {
  for (const Characterization& c : CharacterizedBy(fact, dim)) {
    if (c.value == value) return c.life;
  }
  return Lifespan{TemporalElement::Never(), TemporalElement::Never()};
}

std::vector<MdObject::Characterization> MdObject::FactsCharacterizedBy(
    std::size_t dim, ValueId value, Chronon prob_at) const {
  std::vector<Characterization> result;
  for (const auto& [fact, characterization] :
       FactsWith(dim, value, prob_at)) {
    (void)fact;
    result.push_back(characterization);
  }
  return result;
}

std::vector<std::pair<FactId, MdObject::Characterization>> MdObject::FactsWith(
    std::size_t dim, ValueId value, Chronon prob_at) const {
  std::vector<std::pair<FactId, Characterization>> result;
  if (dim >= dimensions_.size()) return result;
  const Dimension& dimension = dimensions_[dim];
  if (!dimension.HasValue(value)) return result;

  // Facts related to `value` directly or to any value contained in it.
  std::map<FactId, Characterization> accumulated;
  auto accumulate = [&](const FactDimRelation::Entry& entry,
                        const Lifespan& containment, double contain_prob) {
    Lifespan life = entry.life.Intersect(containment);
    if (life.Empty()) return;
    double prob = entry.prob * contain_prob;
    auto [it, inserted] = accumulated.try_emplace(
        entry.fact, Characterization{entry.value, value, life, prob});
    if (!inserted) {
      it->second.life = it->second.life.Union(life);
      it->second.prob = 1.0 - (1.0 - it->second.prob) * (1.0 - prob);
    }
  };

  const FactDimRelation& relation = relations_[dim];
  for (std::size_t index : relation.EntryIndexesForValue(value)) {
    accumulate(relation.entries()[index], Lifespan::AlwaysSpan(), 1.0);
  }
  for (const Dimension::Containment& descendant :
       dimension.Descendants(value, prob_at)) {
    for (std::size_t index :
         relation.EntryIndexesForValue(descendant.value)) {
      accumulate(relation.entries()[index], descendant.life, descendant.prob);
    }
  }

  result.reserve(accumulated.size());
  for (auto& [fact, characterization] : accumulated) {
    result.emplace_back(fact, std::move(characterization));
  }
  return result;
}

Status MdObject::Validate() const {
  for (std::size_t i = 0; i < dimensions_.size(); ++i) {
    MDDC_RETURN_NOT_OK(dimensions_[i].Validate());
    for (const FactDimRelation::Entry& entry : relations_[i].entries()) {
      if (!HasFact(entry.fact)) {
        return Status::InvariantViolation(
            StrCat("relation ", i, " references fact ", entry.fact,
                   " outside the fact set"));
      }
      if (!dimensions_[i].HasValue(entry.value)) {
        return Status::InvariantViolation(
            StrCat("relation ", i, " references value ", entry.value,
                   " outside dimension '", dimensions_[i].name(), "'"));
      }
    }
    // No missing values: every fact characterized in every dimension.
    for (FactId fact : facts_) {
      if (!relations_[i].HasFact(fact)) {
        return Status::InvariantViolation(StrCat(
            "fact ", fact, " is not characterized in dimension '",
            dimensions_[i].name(),
            "'; relate it to the top value if the characterization is "
            "unknown (CoverWithTop)"));
      }
    }
  }
  return Status::OK();
}

std::string MdObject::ToString() const {
  std::string out =
      StrCat("MdObject(", schema_.fact_type(), ", ", facts_.size(),
             " facts, ", dimensions_.size(), " dimensions, ",
             TemporalTypeName(temporal_type_), ")\n");
  std::vector<std::string> fact_names;
  for (FactId fact : facts_) fact_names.push_back(registry_->ToString(fact));
  out += StrCat("  F = {", Join(fact_names, ", "), "}\n");
  for (std::size_t i = 0; i < dimensions_.size(); ++i) {
    out += StrCat("  R[", dimensions_[i].name(), "] = {");
    std::vector<std::string> pairs;
    for (const FactDimRelation::Entry& entry : relations_[i].entries()) {
      std::string pair =
          StrCat("(", registry_->ToString(entry.fact), ",",
                 entry.value == dimensions_[i].top_value()
                     ? "T"
                     : std::to_string(entry.value.raw()),
                 ")");
      if (!(entry.life == Lifespan::AlwaysSpan())) {
        pair += StrCat(" during ", entry.life.ToString());
      }
      if (entry.prob != 1.0) pair += StrCat(" p=", entry.prob);
      pairs.push_back(std::move(pair));
    }
    out += Join(pairs, ", ");
    out += "}\n";
  }
  return out;
}

Status MoFamily::Add(std::string name, MdObject mo) {
  if (members_.count(name) != 0) {
    return Status::InvariantViolation(
        StrCat("MO family already contains '", name, "'"));
  }
  members_.emplace(std::move(name), std::move(mo));
  return Status::OK();
}

Result<const MdObject*> MoFamily::Get(const std::string& name) const {
  auto it = members_.find(name);
  if (it == members_.end()) {
    return Status::NotFound(StrCat("no MO named '", name, "' in family"));
  }
  return &it->second;
}

Result<MdObject*> MoFamily::GetMutable(const std::string& name) {
  auto it = members_.find(name);
  if (it == members_.end()) {
    return Status::NotFound(StrCat("no MO named '", name, "' in family"));
  }
  return &it->second;
}

std::vector<std::string> MoFamily::names() const {
  std::vector<std::string> result;
  result.reserve(members_.size());
  for (const auto& [name, mo] : members_) result.push_back(name);
  return result;
}

Result<bool> MoFamily::SharesSubdimension(const std::string& a,
                                          std::size_t dim_a,
                                          const std::string& b,
                                          std::size_t dim_b) const {
  MDDC_ASSIGN_OR_RETURN(const MdObject* mo_a, Get(a));
  MDDC_ASSIGN_OR_RETURN(const MdObject* mo_b, Get(b));
  if (dim_a >= mo_a->dimension_count() || dim_b >= mo_b->dimension_count()) {
    return Status::InvalidArgument("dimension index out of range");
  }
  const Dimension& da = mo_a->dimension(dim_a);
  const Dimension& db = mo_b->dimension(dim_b);
  if (!da.type().EquivalentTo(db.type())) return false;
  for (CategoryTypeIndex c = 0; c < da.type().category_count(); ++c) {
    std::vector<ValueId> va = da.ValuesIn(c);
    std::vector<ValueId> vb = db.ValuesIn(c);
    std::sort(va.begin(), va.end());
    std::sort(vb.begin(), vb.end());
    if (va != vb) return false;
  }
  auto edge_key = [](const Dimension::Edge& e) {
    return std::make_pair(e.child, e.parent);
  };
  std::vector<std::pair<ValueId, ValueId>> ea;
  std::vector<std::pair<ValueId, ValueId>> eb;
  for (const auto& e : da.edges()) ea.push_back(edge_key(e));
  for (const auto& e : db.edges()) eb.push_back(edge_key(e));
  std::sort(ea.begin(), ea.end());
  std::sort(eb.begin(), eb.end());
  return ea == eb;
}

}  // namespace mddc
