#include "core/properties.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/strings.h"

namespace mddc {
namespace {

/// True when a lifespan's valid time covers chronon `at`.
bool AliveAt(const Lifespan& life, Chronon at) {
  return life.valid.Contains(at);
}

/// Instant or atemporal aliveness: with a chronon, containment at that
/// instant; without, any non-empty valid time counts.
bool AliveDuring(const Lifespan& life, std::optional<Chronon> at) {
  return at.has_value() ? life.valid.Contains(*at) : !life.valid.Empty();
}

/// Partitioning restricted to the part of the hierarchy at or below
/// `upper`: every value of a category strictly below `upper` must have a
/// direct parent in an immediate predecessor category that itself lies at
/// or below `upper`.
bool PartitioningUpTo(const Dimension& dimension, CategoryTypeIndex upper,
                      std::optional<Chronon> at) {
  const DimensionType& type = dimension.type();
  for (CategoryTypeIndex c = 0; c < type.category_count(); ++c) {
    if (c == upper || !type.LessEq(c, upper)) continue;
    std::vector<CategoryTypeIndex> preds;
    for (CategoryTypeIndex p : type.Pred(c)) {
      if (type.LessEq(p, upper)) preds.push_back(p);
    }
    if (preds.empty()) continue;
    for (ValueId e : dimension.ValuesIn(c)) {
      auto membership = dimension.MembershipOf(e);
      if (membership.ok() && !AliveDuring(*membership, at)) continue;
      bool has_parent = false;
      for (CategoryTypeIndex p : preds) {
        if (p == type.top()) {
          has_parent = true;
          break;
        }
        for (const Dimension::Containment& anc :
             dimension.AncestorsIn(e, p)) {
          if (AliveDuring(anc.life, at)) {
            has_parent = true;
            break;
          }
        }
        if (has_parent) break;
      }
      if (!has_parent) return false;
    }
  }
  return true;
}

bool PartitioningUpToAt(const Dimension& dimension, CategoryTypeIndex upper,
                        Chronon at) {
  return PartitioningUpTo(dimension, upper, at);
}

}  // namespace

bool IsStrictMappingAt(const Dimension& dimension, CategoryTypeIndex c1,
                       CategoryTypeIndex c2, Chronon at) {
  for (ValueId e : dimension.ValuesIn(c1)) {
    std::size_t parents = 0;
    for (const Dimension::Containment& anc :
         dimension.AncestorsIn(e, c2, at)) {
      if (AliveAt(anc.life, at)) ++parents;
    }
    if (parents > 1) return false;
  }
  return true;
}

bool IsStrictAt(const Dimension& dimension, Chronon at) {
  const DimensionType& type = dimension.type();
  for (ValueId e : dimension.AllValues()) {
    if (e == dimension.top_value()) continue;
    std::map<CategoryTypeIndex, std::size_t> per_category;
    for (const Dimension::Containment& anc : dimension.AncestorsView(e, at)) {
      if (!AliveAt(anc.life, at)) continue;
      auto category = dimension.CategoryOf(anc.value);
      if (!category.ok() || *category == type.top()) continue;
      if (++per_category[*category] > 1) return false;
    }
  }
  return true;
}

bool IsStrict(const Dimension& dimension) {
  const DimensionType& type = dimension.type();
  for (ValueId e : dimension.AllValues()) {
    if (e == dimension.top_value()) continue;
    std::map<CategoryTypeIndex, std::size_t> per_category;
    for (const Dimension::Containment& anc : dimension.AncestorsView(e)) {
      auto category = dimension.CategoryOf(anc.value);
      if (!category.ok() || *category == type.top()) continue;
      if (++per_category[*category] > 1) return false;
    }
  }
  return true;
}

std::vector<Chronon> CriticalChronons(const Dimension& dimension,
                                      Chronon now_reference) {
  std::set<Chronon> points;
  auto add_element = [&](const TemporalElement& element) {
    for (const Interval& interval : element.intervals()) {
      for (Chronon c : {interval.begin(), interval.end()}) {
        if (c == kNowChronon) {
          points.insert(now_reference != 0 ? now_reference : kNowChronon);
        } else if (c > kMinChronon && c < kForeverChronon) {
          points.insert(c);
          points.insert(c + 1);
          if (c > kMinChronon + 1) points.insert(c - 1);
        }
      }
    }
  };
  for (const Dimension::Edge& edge : dimension.edges()) {
    add_element(edge.life.valid);
  }
  for (ValueId e : dimension.AllValues()) {
    auto membership = dimension.MembershipOf(e);
    if (membership.ok()) add_element(membership->valid);
  }
  if (points.empty()) points.insert(0);
  return std::vector<Chronon>(points.begin(), points.end());
}

bool IsSnapshotStrict(const Dimension& dimension) {
  for (Chronon at : CriticalChronons(dimension)) {
    if (!IsStrictAt(dimension, at)) return false;
  }
  return true;
}

bool IsPartitioningAt(const Dimension& dimension, Chronon at) {
  return PartitioningUpToAt(dimension, dimension.type().top(), at);
}

bool IsSnapshotPartitioning(const Dimension& dimension) {
  for (Chronon at : CriticalChronons(dimension)) {
    if (!IsPartitioningAt(dimension, at)) return false;
  }
  return true;
}

bool IsPartitioning(const Dimension& dimension) {
  const DimensionType& type = dimension.type();
  for (CategoryTypeIndex c = 0; c < type.category_count(); ++c) {
    if (c == type.top()) continue;
    const std::vector<CategoryTypeIndex>& preds = type.Pred(c);
    if (preds.empty()) continue;
    bool pred_is_only_top =
        preds.size() == 1 && preds.front() == type.top();
    if (pred_is_only_top) continue;
    for (ValueId e : dimension.ValuesIn(c)) {
      bool has_parent = false;
      for (CategoryTypeIndex p : preds) {
        if (p == type.top()) {
          has_parent = true;
          break;
        }
        if (!dimension.AncestorsIn(e, p).empty()) {
          has_parent = true;
          break;
        }
      }
      if (!has_parent) return false;
    }
  }
  return true;
}

bool IsPartitioningUpTo(const Dimension& dimension, CategoryTypeIndex upper,
                        std::optional<Chronon> at) {
  return PartitioningUpTo(dimension, upper, at);
}

bool HasStrictPath(const MdObject& mo, std::size_t dim,
                   CategoryTypeIndex category, std::optional<Chronon> at,
                   const std::vector<FactId>* facts) {
  // An in-place scan of the characterization, equivalent to counting the
  // alive values of `category` in CharacterizedBy(fact, dim) per fact but
  // without materializing a characterization map for every fact: the
  // per-value accumulated lifespan is a Union of witness contributions,
  // and both the accumulate filter (!life.Empty()) and AliveDuring factor
  // over Union, so a value is alive iff some single contribution
  // qualifies — testable witness by witness with Overlaps/Contains, no
  // temporal-element copies (docs/memory_layout.md).
  const Dimension& dimension = mo.dimension(dim);
  const FactDimRelation& relation = mo.relation(dim);
  const Chronon prob_at = at.value_or(kNowChronon);
  // Does a contribution of `entry_life` (direct) or
  // `entry_life.Intersect(anc_life)` (through containment) keep its value
  // alive under `at`?
  auto qualifies = [&at](const Lifespan& entry_life,
                         const Lifespan* anc_life) {
    if (anc_life == nullptr) {
      return at.has_value() ? entry_life.valid.Contains(*at) &&
                                  !entry_life.transaction.Empty()
                            : !entry_life.Empty();
    }
    const bool valid_alive =
        at.has_value()
            ? entry_life.valid.Contains(*at) && anc_life->valid.Contains(*at)
            : entry_life.valid.Overlaps(anc_life->valid);
    return valid_alive &&
           entry_life.transaction.Overlaps(anc_life->transaction);
  };
  const ValueId top = dimension.top_value();
  const auto top_category = dimension.CategoryOf(top);
  const bool top_counts = top_category.ok() && *top_category == category;
  std::vector<ValueId> witnesses;  // distinct alive values, reused per fact
  for (FactId fact : facts != nullptr ? *facts : mo.facts()) {
    witnesses.clear();
    const std::vector<std::size_t>& entry_indexes =
        relation.EntryIndexesForFact(fact);
    // Top characterizes unconditionally (with AlwaysSpan) whenever the
    // fact has any pair in the dimension — the rule CharacterizedBy
    // applies after accumulation.
    if (top_counts && !entry_indexes.empty()) witnesses.push_back(top);
    for (std::size_t index : entry_indexes) {
      const FactDimRelation::Entry& entry = relation.entries()[index];
      auto consider = [&](ValueId value, bool alive) {
        if (!alive || value == top) return true;
        auto value_category = dimension.CategoryOf(value);
        if (!value_category.ok() || *value_category != category) return true;
        if (std::find(witnesses.begin(), witnesses.end(), value) ==
            witnesses.end()) {
          witnesses.push_back(value);
        }
        return witnesses.size() <= 1;
      };
      if (!consider(entry.value, qualifies(entry.life, nullptr))) {
        return false;
      }
      for (const Dimension::Containment& c :
           dimension.AncestorsView(entry.value, prob_at)) {
        if (!consider(c.value, qualifies(entry.life, &c.life))) return false;
      }
    }
  }
  return true;
}

std::string SummarizabilityReport::ToString() const {
  std::string out = StrCat("summarizable=", summarizable ? "yes" : "no",
                           " distributive=", distributive ? "yes" : "no");
  for (std::size_t i = 0; i < strict_path.size(); ++i) {
    out += StrCat(" dim", i, "[strict-path=", strict_path[i] ? "yes" : "no",
                  ",partitioning=", partitioning[i] ? "yes" : "no", "]");
  }
  return out;
}

SummarizabilityReport CheckSummarizability(
    const MdObject& mo, AggregateFunctionKind kind,
    const std::vector<CategoryTypeIndex>& grouping_categories,
    std::optional<Chronon> at) {
  SummarizabilityReport report;
  report.distributive = IsDistributive(kind);
  report.summarizable = report.distributive;
  for (std::size_t i = 0;
       i < grouping_categories.size() && i < mo.dimension_count(); ++i) {
    // Grouping at TOP puts every fact into the single all-containing
    // group: the path is trivially strict and reachability trivially
    // partitioned ("paths from F to the TOP categories are always
    // strict", Section 3.4 footnote).
    if (grouping_categories[i] == mo.dimension(i).type().top()) {
      report.strict_path.push_back(true);
      report.partitioning.push_back(true);
      continue;
    }
    bool strict = HasStrictPath(mo, i, grouping_categories[i], at);
    bool partitioning =
        PartitioningUpTo(mo.dimension(i), grouping_categories[i], at);
    report.strict_path.push_back(strict);
    report.partitioning.push_back(partitioning);
    report.summarizable = report.summarizable && strict && partitioning;
  }
  return report;
}

}  // namespace mddc
