#ifndef MDDC_CORE_DIMENSION_TYPE_H_
#define MDDC_CORE_DIMENSION_TYPE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/aggregation.h"

namespace mddc {

/// Index of a category type within its dimension type.
using CategoryTypeIndex = std::size_t;

/// Reserved name of the implicit top category type (the paper's T element
/// whose single member is the ALL-like value `top`).
inline constexpr char kTopCategoryName[] = "TOP";

/// A category type C_j of a dimension type: a named level of the dimension
/// lattice with an aggregation type (the paper's AggType_T function).
struct CategoryType {
  std::string name;
  AggregationType agg_type = AggregationType::kConstant;
};

/// A dimension type T = (C, <=_T, top_T, bot_T) (paper Section 3.1): a set
/// of category types with a partial order forming a lattice whose unique
/// top corresponds to the largest element size and whose unique bottom to
/// the smallest. Multiple hierarchies (requirement 3) are simply multiple
/// maximal chains through the lattice (e.g. Day < Week and
/// Day < Month < Quarter < Year in the Date-of-Birth dimension).
///
/// DimensionType is immutable after construction; build instances through
/// DimensionTypeBuilder. Instances are shared between schemas and
/// dimensions via shared_ptr<const DimensionType> because algebra operators
/// (projection, aggregate formation, subdimension) synthesize restricted
/// types at run time.
class DimensionType {
 public:
  const std::string& name() const { return name_; }
  const std::vector<CategoryType>& categories() const { return categories_; }
  std::size_t category_count() const { return categories_.size(); }

  const CategoryType& category(CategoryTypeIndex index) const {
    return categories_[index];
  }

  CategoryTypeIndex bottom() const { return bottom_; }
  CategoryTypeIndex top() const { return top_; }

  /// Finds a category type by name.
  Result<CategoryTypeIndex> Find(std::string_view category_name) const;

  /// Immediate successors in the ordering: the paper's Pred function giving
  /// the set of immediate predecessors of C_j — the category types directly
  /// *containing* C_j (e.g. Pred(Low-level Diagnosis) = {Diagnosis
  /// Family}). "Predecessor" follows the paper's naming even though these
  /// are larger category types.
  const std::vector<CategoryTypeIndex>& Pred(CategoryTypeIndex index) const {
    return parents_[index];
  }

  /// Inverse of Pred: the category types immediately contained in C_j.
  const std::vector<CategoryTypeIndex>& Children(
      CategoryTypeIndex index) const {
    return children_[index];
  }

  /// True iff a <=_T b, i.e., b is reachable from a following Pred edges
  /// (reflexive).
  bool LessEq(CategoryTypeIndex a, CategoryTypeIndex b) const;

  /// All category types c with `index` <=_T c, in topological (bottom-up)
  /// order; includes `index` itself and top.
  std::vector<CategoryTypeIndex> AtOrAbove(CategoryTypeIndex index) const;

  /// Every maximal aggregation path from `from` to the top category — the
  /// distinct roll-up routes a UI would offer (requirement 3, multiple
  /// hierarchies; the DOB lattice of Figure 2 has two: Day<Week<TOP and
  /// Day<Month<Quarter<Year<Decade<TOP). Each path starts at `from` and
  /// ends at top(). The path count is exponential in pathological
  /// lattices; real dimension types have a handful.
  std::vector<std::vector<CategoryTypeIndex>> AggregationPaths(
      CategoryTypeIndex from) const;

  /// The aggregation type of a category.
  AggregationType AggType(CategoryTypeIndex index) const {
    return categories_[index].agg_type;
  }

  /// Structural equality: same name, categories (names, agg types, order)
  /// and edges. Schema equality for union/difference uses this.
  bool EquivalentTo(const DimensionType& other) const;

  /// True when the two types have the same lattice shape and category
  /// names (aggregation types may differ); rename-compatibility uses this.
  bool IsomorphicTo(const DimensionType& other) const;

  /// Builds the restriction of this type to the category types at or above
  /// `new_bottom` (the paper's aggregate-formation type rule: C'_i =
  /// {C_ij in T_i | Type(C_i) <=_Ti C_ij}). Category agg types can be
  /// overridden by the caller afterwards via the returned builder-free
  /// copy (see RestrictAbove overload in dimension.cc usage).
  std::shared_ptr<const DimensionType> RestrictAbove(
      CategoryTypeIndex new_bottom) const;

  /// Builds the restriction of this type to an arbitrary subset of
  /// categories (subdimension, paper Example 5). The subset must contain
  /// the top category. Order edges are the transitive reduction of the
  /// restriction of <=_T to the subset.
  Result<std::shared_ptr<const DimensionType>> Restrict(
      const std::vector<CategoryTypeIndex>& keep) const;

  /// Returns a copy with a different name (for rename / join disambiguation).
  std::shared_ptr<const DimensionType> WithName(std::string new_name) const;

  /// Returns a copy with the aggregation type of one category replaced
  /// (used by the aggregate-formation typing rule).
  std::shared_ptr<const DimensionType> WithAggType(
      CategoryTypeIndex index, AggregationType agg_type) const;

  /// Multi-line description of the lattice, bottom-up.
  std::string ToString() const;

 private:
  friend class DimensionTypeBuilder;
  DimensionType() = default;

  std::string name_;
  std::vector<CategoryType> categories_;
  // parents_[j] = immediate containing category types of j (paper's Pred).
  std::vector<std::vector<CategoryTypeIndex>> parents_;
  std::vector<std::vector<CategoryTypeIndex>> children_;
  CategoryTypeIndex bottom_ = 0;
  CategoryTypeIndex top_ = 0;
};

/// Incremental builder for DimensionType. Typical use:
///
///   DimensionTypeBuilder b("Diagnosis");
///   b.AddCategory("Low-level Diagnosis", AggregationType::kConstant);
///   b.AddCategory("Diagnosis Family", AggregationType::kConstant);
///   b.AddCategory("Diagnosis Group", AggregationType::kConstant);
///   b.AddOrder("Low-level Diagnosis", "Diagnosis Family");
///   b.AddOrder("Diagnosis Family", "Diagnosis Group");
///   auto type = b.Build();  // adds TOP and links maximal categories to it
///
/// Build() verifies the lattice conditions: a unique bottom, acyclicity,
/// and that every category reaches TOP. A TOP category (aggregation type
/// c) is appended automatically unless one was added explicitly.
class DimensionTypeBuilder {
 public:
  explicit DimensionTypeBuilder(std::string name);

  /// Adds a category type; returns its index. Category names must be
  /// unique within the dimension type.
  DimensionTypeBuilder& AddCategory(
      std::string category_name,
      AggregationType agg_type = AggregationType::kConstant);

  /// Declares `smaller` <_T `larger` as an immediate containment edge.
  DimensionTypeBuilder& AddOrder(const std::string& smaller,
                                 const std::string& larger);

  /// Validates and produces the immutable type.
  Result<std::shared_ptr<const DimensionType>> Build();

 private:
  std::string name_;
  std::vector<CategoryType> categories_;
  std::vector<std::pair<std::string, std::string>> edges_;
  Status deferred_error_;
};

}  // namespace mddc

#endif  // MDDC_CORE_DIMENSION_TYPE_H_
