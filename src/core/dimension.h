#ifndef MDDC_CORE_DIMENSION_H_
#define MDDC_CORE_DIMENSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>
#include <vector>

#include "common/flat_hash.h"
#include "common/id.h"
#include "common/result.h"
#include "core/dimension_type.h"
#include "core/representation.h"
#include "temporal/lifespan.h"

namespace mddc {

/// A dimension D = (C, <=) of some dimension type T (paper Section 3.1):
/// a set of categories, each a set of dimension values with (temporal)
/// membership, plus a partial order on the union of all values. The
/// partial order is stored as immediate-containment edges, each carrying
///
///  * a Lifespan — the maximal valid/transaction time during which the
///    containment holds (e1 <=_Tv e2, Section 3.2), and
///  * a probability — the paper's e1 <=_p e2 (Section 3.3).
///
/// `e1 <= e2` then holds (at time t, with probability p) when e2 is
/// reachable from e1 through edges alive at t; chronon sets intersect
/// along a path and union across paths, giving exactly the property
/// e1 <=_{T1} e2 and e2 <=_{T2} e3 implies e1 <=_{T1 n T2} e3.
///
/// Every dimension owns a distinguished top value (the ALL-like value of
/// Gray et al.) that implicitly contains every value at all times.
///
/// Value metadata is stored SoA (docs/memory_layout.md): parallel
/// id/info arrays indexed by a dense slot, an open-addressing id->slot
/// table, slot-indexed edge adjacency, and slot-indexed closure memos —
/// no tree nodes anywhere on the reachability hot path.
class Dimension {
 public:
  /// One resolved containment: `value` contains the query value during
  /// `life` with probability `prob`.
  struct Containment {
    ValueId value;
    Lifespan life;
    double prob = 1.0;
  };

  /// An immediate-containment edge child <= parent.
  struct Edge {
    ValueId child;
    ValueId parent;
    Lifespan life;
    double prob = 1.0;
  };

  /// Creates an empty dimension of the given type; the top value is
  /// allocated automatically.
  explicit Dimension(std::shared_ptr<const DimensionType> type);

  /// Copies deep-copy the closure memos: a copy of a warmed (frozen)
  /// dimension is equally warm, so the publication promise travels.
  Dimension(const Dimension& other);
  Dimension(Dimension&& other) noexcept = default;
  Dimension& operator=(const Dimension& other);
  Dimension& operator=(Dimension&& other) noexcept = default;

  const DimensionType& type() const { return *type_; }
  const std::shared_ptr<const DimensionType>& type_ptr() const {
    return type_;
  }
  const std::string& name() const { return type_->name(); }

  /// The distinguished top value; every value is contained in it.
  ValueId top_value() const { return top_value_; }

  // ---- Population -------------------------------------------------------

  /// Adds a value with an explicit (globally unique) surrogate id to the
  /// category with index `category`, member during `membership`.
  Status AddValue(CategoryTypeIndex category, ValueId id,
                  const Lifespan& membership = Lifespan::AlwaysSpan());

  /// Adds a value with an automatically allocated id; returns the id.
  Result<ValueId> AddValueAuto(
      CategoryTypeIndex category,
      const Lifespan& membership = Lifespan::AlwaysSpan());

  /// Declares child <= parent during `life` with probability `prob`. The
  /// parent's category must be strictly above the child's in the type
  /// lattice. Repeated declarations for the same pair are coalesced by
  /// lifespan union (probabilities must agree).
  Status AddOrder(ValueId child, ValueId parent,
                  const Lifespan& life = Lifespan::AlwaysSpan(),
                  double prob = 1.0);

  /// Returns (creating on first use) the representation `rep_name` of the
  /// category `category`.
  Representation& RepresentationFor(CategoryTypeIndex category,
                                    std::string_view rep_name);

  /// Finds an existing representation. NotFound if never created.
  /// Allocation-free: the name probes the transparent key comparator
  /// without materializing a key string.
  Result<const Representation*> FindRepresentation(
      CategoryTypeIndex category, std::string_view rep_name) const;

  /// All representations as (category, name, representation) tuples, for
  /// timeslicing and printing.
  std::vector<std::tuple<CategoryTypeIndex, std::string, const Representation*>>
  AllRepresentations() const;

  /// The numeric interpretation of a value at chronon `at`, used by
  /// SUM/AVG/MIN/MAX (symmetric treatment of dimensions and measures,
  /// requirement 2): the representation named "Value" of the value's
  /// category is consulted first, then any representation whose text
  /// parses as a number.
  Result<double> NumericValueOf(ValueId id, Chronon at = kNowChronon) const;

  // ---- Value queries ----------------------------------------------------

  bool HasValue(ValueId id) const;
  Result<CategoryTypeIndex> CategoryOf(ValueId id) const;
  Result<Lifespan> MembershipOf(ValueId id) const;

  /// All values of a category, in insertion order (top category contains
  /// exactly the top value).
  std::vector<ValueId> ValuesIn(CategoryTypeIndex category) const;

  /// All values of the dimension, including top, ascending by id.
  std::vector<ValueId> AllValues() const;

  std::size_t value_count() const { return value_ids_.size(); }

  // ---- Partial order queries --------------------------------------------

  /// The maximal lifespan during which e1 <= e2 (empty when incomparable).
  /// Reflexive: ContainmentSpan(e, e) is the membership lifespan of e.
  /// Containment in the top value always holds.
  Lifespan ContainmentSpan(ValueId e1, ValueId e2) const;

  /// True iff e1 <= e2 at valid chronon `at` (current transaction time).
  bool LessEqAt(ValueId e1, ValueId e2, Chronon at = kNowChronon) const;

  /// Probability that e1 <= e2 at valid chronon `at`, assuming edge
  /// independence (probabilities multiply along a path and combine
  /// noisy-or across alternative immediate parents; exact for trees, the
  /// standard approximation for DAGs). Returns 0 when incomparable.
  double ContainmentProbAt(ValueId e1, ValueId e2,
                           Chronon at = kNowChronon) const;

  /// Every value that contains `e` (transitively, excluding `e` itself but
  /// including the top value), with the containment lifespan and
  /// probability (probability evaluated at `prob_at`).
  std::vector<Containment> Ancestors(ValueId e,
                                     Chronon prob_at = kNowChronon) const;

  /// Read-only view of Ancestors(e): identical contents, but memo-backed
  /// so repeated queries on the closure hot path (characterization,
  /// aggregate formation, property checks) pay no per-call vector copy.
  /// The reference is invalidated by any mutation of this dimension and —
  /// when memoization is disabled — by the next AncestorsView call.
  const std::vector<Containment>& AncestorsView(
      ValueId e, Chronon prob_at = kNowChronon) const;

  /// Ancestors restricted to one category.
  std::vector<Containment> AncestorsIn(ValueId e, CategoryTypeIndex category,
                                       Chronon prob_at = kNowChronon) const;

  /// Every value contained in `e` (transitively, excluding `e`).
  std::vector<Containment> Descendants(ValueId e,
                                       Chronon prob_at = kNowChronon) const;

  /// Descendants restricted to one category.
  std::vector<Containment> DescendantsIn(ValueId e, CategoryTypeIndex category,
                                         Chronon prob_at = kNowChronon) const;

  /// All immediate-containment edges (for property checks and printing).
  const std::vector<Edge>& edges() const { return edges_; }

  /// Indices into edges() of edges whose child / parent is `id`.
  std::vector<const Edge*> EdgesFromChild(ValueId id) const;
  std::vector<const Edge*> EdgesToParent(ValueId id) const;

  /// No-copy variants of the above for read-only hot loops: indices into
  /// edges() (empty when the value has none).
  const std::vector<std::size_t>& EdgeIndexesFromChild(ValueId id) const;
  const std::vector<std::size_t>& EdgeIndexesToParent(ValueId id) const;

  /// No-copy variant of ValuesIn for read-only hot loops. The reference
  /// is invalidated by AddValue into the same category.
  const std::vector<ValueId>& ValuesInView(CategoryTypeIndex category) const;

  // ---- Compiled snapshots -------------------------------------------------

  /// Monotonically increasing total version: bumped by every mutation
  /// that can change the value set, a membership, or the partial order
  /// (AddValue, AddOrder — including lifespan coalescing of a repeated
  /// edge — and the membership unions of dimension union). Compiled
  /// rollup snapshots (engine/rollup_index.h) record the version they
  /// were built at and are rejected once it moves.
  std::uint64_t version() const { return version_; }

  /// Monotonically increasing *structural* version (docs/ingestion.md):
  /// bumped only by mutations that can change existing values' closures
  /// or break the ascending-id append order — edge coalescing, edges
  /// whose child predates the last structural change, out-of-order value
  /// ids, membership unions. Pure appends (AddValueAuto, a new edge from
  /// a freshly appended child) bump only version(). An artifact built at
  /// (version v, structural s) seeing (v' > v, s) knows every change
  /// since v was an append and may *patch* instead of rebuild; a moved
  /// structural version demands the full rebuild.
  std::uint64_t structural_version() const { return structural_version_; }

  /// First dense slot appended since the last structural change; slots at
  /// or past the watermark are "fresh". Fresh values carry ids greater
  /// than every older non-top id (ascending with their slots), and no
  /// edge points from an older child to a fresh parent — the invariants
  /// the append patch paths rely on.
  std::uint32_t append_watermark() const { return append_watermark_; }

  /// Opaque slot holding this dimension's compiled rollup snapshot. The
  /// core layer stores the pointer without knowing its concrete type (the
  /// engine layer owns the format); copies of the dimension share the
  /// snapshot, which is sound because a copy has identical contents and
  /// version, and any later mutation bumps only the mutated object's
  /// version. Access is reserved to RollupIndex::For, which serializes
  /// slot readers and writers process-wide; do not touch it directly.
  const std::shared_ptr<const void>& compiled_snapshot_slot() const {
    return compiled_snapshot_;
  }
  void set_compiled_snapshot_slot(std::shared_ptr<const void> snapshot) const {
    compiled_snapshot_ = std::move(snapshot);
  }

  /// Publication freeze (the MVCC serving tier, src/serve). A frozen
  /// dimension promises: no structural mutation will ever happen again,
  /// its closure memo is fully warmed, and its compiled-snapshot slot is
  /// filled and final. Under that promise RollupIndex::For serves the
  /// slot without taking the process-wide slot mutex — the lock-free read
  /// path of published epochs. The flag travels with copies (a copy of a
  /// frozen dimension has identical, equally-final contents) and is
  /// cleared automatically by every structural mutation, so a writer
  /// draft cloned from a published epoch unfreezes exactly the dimensions
  /// it touches.
  ///
  /// Setters are const (the flag is publication metadata, like the
  /// snapshot slot): callers mark dimensions frozen only from the single
  /// writer thread, before the owning MO is made visible to readers.
  bool publish_frozen() const { return publish_frozen_; }
  void set_publish_frozen(bool frozen) const { publish_frozen_ = frozen; }

  // ---- Algebra support ----------------------------------------------------

  /// The union operator on dimensions (paper Section 4.1): categories are
  /// united per type, the partial orders are united (lifespans of common
  /// edges union per the Section 4.2 temporal rules). The two dimensions
  /// must have equivalent types.
  static Result<Dimension> UnionWith(const Dimension& a, const Dimension& b);

  /// The subdimension obtained by restricting to the given categories
  /// (paper Example 5). `keep` must contain the top category (use type()
  /// indices). Values of dropped categories and edges touching them are
  /// removed; the new order is the restriction of the old.
  Result<Dimension> Subdimension(
      const std::vector<CategoryTypeIndex>& keep) const;

  /// The restriction used by aggregate formation: keep the categories at
  /// or above `new_bottom` but *connect* the new bottom values directly,
  /// i.e., the retained order is the transitive containment between
  /// retained values.
  Result<Dimension> RestrictAbove(CategoryTypeIndex new_bottom) const;

  /// A copy of this dimension under a renamed type (same lattice and
  /// contents); used by the rename operator to disambiguate dimensions
  /// before a self-join.
  Dimension RenamedAs(std::string new_name) const;

  /// Structural validation: edges connect existing values of strictly
  /// increasing categories, probabilities lie in (0, 1], memberships are
  /// non-empty.
  Status Validate() const;

  /// Enables/disables memoization of the reachability closure (the
  /// "special-purpose data structures" of the paper's future-work list).
  /// Enabled by default: repeated Ancestors/Descendants/containment
  /// queries — the hot path of characterization and aggregate formation —
  /// are answered from a per-value cache that mutation invalidates.
  /// Disable to measure the unindexed algorithm (see bench_closure_memo).
  void set_memoization_enabled(bool enabled) const {
    memo_enabled_ = enabled;
    if (!enabled) {
      up_memo_.clear();
      down_memo_.clear();
      anc_memo_.clear();
      // Unwarmed scratch-buffer reads are not concurrency-safe, so the
      // publication promise (see publish_frozen) no longer holds.
      publish_frozen_ = false;
    }
  }
  bool memoization_enabled() const { return memo_enabled_; }

  /// Fully populates the reachability memo (upward and downward closure
  /// of every value). The memo is lazily written by const queries and is
  /// therefore not thread-safe to warm concurrently; the parallel
  /// executor calls this before fanning out workers, after which
  /// concurrent Ancestors/Descendants/containment queries are pure reads.
  void WarmClosureMemo() const;

  /// Multi-line dump of categories, values and order edges.
  std::string ToString() const;

 private:
  struct ValueInfo {
    CategoryTypeIndex category = 0;
    Lifespan membership;
  };

  /// Transparent comparator for (category, name) representation keys:
  /// lookups probe with a string_view, no key string materialized.
  struct RepKeyLess {
    using is_transparent = void;
    template <typename A, typename B>
    bool operator()(const A& a, const B& b) const {
      if (a.first != b.first) return a.first < b.first;
      return std::string_view(a.second) < std::string_view(b.second);
    }
  };

  /// Dense per-slot scratch for ComputeReach, retained across calls and
  /// reset via the touched list, so one reachability query costs O(sub-DAG)
  /// — not O(value count) and with no tree-node churn.
  struct ReachScratch {
    std::vector<std::size_t> pending;
    std::vector<std::uint8_t> marked;
    std::vector<std::uint8_t> seen;
    std::vector<std::uint8_t> has_span;
    std::vector<std::uint8_t> has_prob;
    std::vector<Lifespan> span;
    std::vector<double> prob;
    std::vector<double> not_prob;
    std::vector<std::uint32_t> touched;
    std::vector<std::uint32_t> queue;
    std::vector<std::uint32_t> ready;
  };

  using MemoTable = std::vector<std::unique_ptr<std::vector<Containment>>>;

  /// Dense slot of `id`, or FlatHashIndex::kNone when unknown.
  std::uint32_t SlotOf(ValueId id) const;

  /// Slots in ascending-ValueId order (the canonical iteration order of
  /// value enumeration), cached and lazily re-sorted after inserts.
  const std::vector<std::uint32_t>& SortedSlots() const;

  /// Upward (or downward) reachability with lifespan union across paths
  /// and probability DP, shared by Ancestors/Descendants. The raw
  /// algorithm; no memo involvement. Results ascend by ValueId.
  std::vector<Containment> ComputeReach(ValueId start, bool upward) const;

  /// Ancestors with the unconditional top fix-up applied; the raw form
  /// backing both Ancestors (by value) and AncestorsView (memo-backed).
  std::vector<Containment> ComputeAncestors(ValueId e, Chronon prob_at) const;

  /// Drops every memoized closure and bumps both versions; called by
  /// structural mutations of the partial order. Also resets the append
  /// watermark: after a structural change nothing is "fresh".
  void InvalidateClosures();

  /// Targeted invalidation for an appended edge (fresh child): older
  /// values' upward closures are provably unchanged, so only the fresh
  /// slots' up/ancestor memos and the (now stale) downward memos drop.
  void InvalidateForAppendedEdge();

  /// Memo-backed reference form of ComputeReach: a memo hit (or fill)
  /// returns a reference into the memo instead of copying the closure
  /// vector on every containment query. With memoization disabled the
  /// result lives in a scratch buffer overwritten by the next call.
  const std::vector<Containment>& Reach(ValueId start, bool upward,
                                        Chronon prob_at) const;

  void CopyMemos(const Dimension& other);

  std::shared_ptr<const DimensionType> type_;
  ValueId top_value_;

  // SoA value storage: parallel id/info arrays indexed by dense slot, an
  // open-addressing id -> slot table, and a lazily sorted slot order for
  // ValueId-ascending iteration.
  std::vector<ValueId> value_ids_;
  std::vector<ValueInfo> value_infos_;
  FlatHashIndex value_index_;
  mutable std::vector<std::uint32_t> sorted_slots_;
  mutable bool sorted_valid_ = false;

  std::vector<std::vector<ValueId>> members_by_category_;
  std::vector<Edge> edges_;
  // Slot-indexed edge adjacency (grown on demand; a slot past the end has
  // no edges).
  std::vector<std::vector<std::size_t>> edges_by_child_;
  std::vector<std::vector<std::size_t>> edges_by_parent_;
  std::map<std::pair<CategoryTypeIndex, std::string>, Representation,
           RepKeyLess>
      representations_;
  std::uint64_t next_auto_id_ = 0;
  std::uint64_t version_ = 0;
  std::uint64_t structural_version_ = 0;
  // Dense slot of the first value appended since the last structural
  // change (see append_watermark()).
  std::uint32_t append_watermark_ = 0;

  // Reachability memo (see set_memoization_enabled). Mutable: queries are
  // logically const. Not thread-safe; external synchronization required
  // for concurrent readers that might warm the cache. Slot-indexed, one
  // heap vector per warmed value behind a unique_ptr so references stay
  // valid as the tables grow. anc_memo_ holds the post-fixup Ancestors
  // results backing AncestorsView; the scratch buffers back the
  // reference-returning accessors when memoization is off (benchmark
  // mode; not safe for concurrent readers).
  mutable bool memo_enabled_ = true;
  mutable MemoTable up_memo_;
  mutable MemoTable down_memo_;
  mutable MemoTable anc_memo_;
  mutable std::vector<Containment> reach_scratch_;
  mutable std::vector<Containment> anc_scratch_;
  mutable ReachScratch reach_work_;

  // Compiled rollup snapshot (see compiled_snapshot_slot).
  mutable std::shared_ptr<const void> compiled_snapshot_;

  // Publication freeze (see publish_frozen). Plain bool, not atomic: it is
  // written only by the single publisher thread before the owning MO is
  // published through an atomic shared_ptr store (which orders the write
  // before every reader's acquire load), and never written afterwards.
  mutable bool publish_frozen_ = false;
};

}  // namespace mddc

#endif  // MDDC_CORE_DIMENSION_H_
