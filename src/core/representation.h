#ifndef MDDC_CORE_REPRESENTATION_H_
#define MDDC_CORE_REPRESENTATION_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/flat_hash.h"
#include "common/id.h"
#include "common/interner.h"
#include "common/result.h"
#include "temporal/lifespan.h"

namespace mddc {

/// A representation of a category (paper Section 3.1): a bijective,
/// possibly time-varying mapping between dimension values and external
/// names, Rep(e) =Tv v. A diagnosis value, for example, has a Code and a
/// Text representation, and the code "D1" maps to value 8 only during
/// [01/01/70-31/12/79] (Example 9). Bijectivity is enforced per chronon:
/// at any time, a value has at most one representation string and a string
/// denotes at most one value.
///
/// Texts live in a StringInterner (docs/memory_layout.md): each distinct
/// string is stored once, both directions of the mapping hold StringId
/// handles, and Lookup/Set probe by hash without materializing a key, so
/// string-keyed resolution allocates nothing.
class Representation {
 public:
  explicit Representation(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds the mapping Rep(value) = text during `life`. Fails with
  /// InvariantViolation if it would make the mapping non-bijective at some
  /// chronon (either endpoint already mapped during an overlapping time).
  Status Set(ValueId value, std::string_view text,
             const Lifespan& life = Lifespan::AlwaysSpan());

  /// The representation of `value` at valid chronon `at` (and current
  /// transaction time). NotFound when unmapped at that time.
  Result<std::string> Get(ValueId value, Chronon at = kNowChronon) const;

  /// All timed representations of `value`.
  std::vector<std::pair<std::string, Lifespan>> GetAll(ValueId value) const;

  /// The value denoted by `text` at valid chronon `at` (the inverse
  /// mapping; representations are alternate keys). Allocation-free: the
  /// probe hashes `text` against the interner and walks the per-string
  /// entry list.
  Result<ValueId> Lookup(std::string_view text,
                         Chronon at = kNowChronon) const;

  /// Interprets the representation of `value` at `at` as a number, for
  /// use by SUM/AVG/MIN/MAX aggregate functions over measure-like
  /// dimensions such as Age. Parses straight out of the interner pool
  /// (every interned string is NUL-terminated) — no string copy.
  Result<double> GetNumeric(ValueId value, Chronon at = kNowChronon) const;

  /// Number of (value, text, lifespan) entries.
  std::size_t size() const;

 private:
  /// One timed mapping, from the value side.
  struct Entry {
    StringId text;
    Lifespan life;
  };
  /// One timed mapping, from the text side.
  struct TextEntry {
    ValueId value;
    Lifespan life;
  };

  /// The entries of `value`, nullptr when it has none.
  const std::vector<Entry>* EntriesFor(ValueId value) const;
  /// The timed entry of `value` live at `at`, nullptr when unmapped.
  const Entry* EntryAt(ValueId value, Chronon at) const;

  std::string name_;

  /// Distinct texts, stored once; StringIds are dense, so the text side
  /// of the mapping is a plain vector indexed by StringId.
  StringInterner interner_;

  /// Value side: open-addressing table over dense parallel
  /// (value, entry-list) arrays — the FlatListIndex shape of
  /// FactDimRelation, with ValueId keys.
  FlatHashIndex value_index_;
  std::vector<ValueId> value_keys_;
  std::vector<std::vector<Entry>> value_entries_;

  /// Text side, indexed by StringId.
  std::vector<std::vector<TextEntry>> by_text_;
};

}  // namespace mddc

#endif  // MDDC_CORE_REPRESENTATION_H_
