#ifndef MDDC_CORE_REPRESENTATION_H_
#define MDDC_CORE_REPRESENTATION_H_

#include <map>
#include <string>
#include <vector>

#include "common/id.h"
#include "common/result.h"
#include "temporal/lifespan.h"

namespace mddc {

/// A representation of a category (paper Section 3.1): a bijective,
/// possibly time-varying mapping between dimension values and external
/// names, Rep(e) =Tv v. A diagnosis value, for example, has a Code and a
/// Text representation, and the code "D1" maps to value 8 only during
/// [01/01/70-31/12/79] (Example 9). Bijectivity is enforced per chronon:
/// at any time, a value has at most one representation string and a string
/// denotes at most one value.
class Representation {
 public:
  explicit Representation(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds the mapping Rep(value) = text during `life`. Fails with
  /// InvariantViolation if it would make the mapping non-bijective at some
  /// chronon (either endpoint already mapped during an overlapping time).
  Status Set(ValueId value, const std::string& text,
             const Lifespan& life = Lifespan::AlwaysSpan());

  /// The representation of `value` at valid chronon `at` (and current
  /// transaction time). NotFound when unmapped at that time.
  Result<std::string> Get(ValueId value, Chronon at = kNowChronon) const;

  /// All timed representations of `value`.
  std::vector<std::pair<std::string, Lifespan>> GetAll(ValueId value) const;

  /// The value denoted by `text` at valid chronon `at` (the inverse
  /// mapping; representations are alternate keys).
  Result<ValueId> Lookup(const std::string& text,
                         Chronon at = kNowChronon) const;

  /// Interprets the representation of `value` at `at` as a number, for
  /// use by SUM/AVG/MIN/MAX aggregate functions over measure-like
  /// dimensions such as Age.
  Result<double> GetNumeric(ValueId value, Chronon at = kNowChronon) const;

  /// Number of (value, text, lifespan) entries.
  std::size_t size() const;

 private:
  struct Entry {
    std::string text;
    Lifespan life;
  };

  std::string name_;
  std::map<ValueId, std::vector<Entry>> by_value_;
  std::map<std::string, std::vector<std::pair<ValueId, Lifespan>>> by_text_;
};

}  // namespace mddc

#endif  // MDDC_CORE_REPRESENTATION_H_
