#ifndef MDDC_CORE_SCHEMA_H_
#define MDDC_CORE_SCHEMA_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/dimension_type.h"

namespace mddc {

/// An n-dimensional fact schema S = (F, D): a fact type (a name, e.g.
/// "Patient") and its n dimension types (paper Section 3.1). The schema of
/// the case study is (Patient, {Diagnosis, DOB, Residence, Name, SSN,
/// Age}).
class FactSchema {
 public:
  FactSchema(std::string fact_type,
             std::vector<std::shared_ptr<const DimensionType>> dimensions);

  const std::string& fact_type() const { return fact_type_; }
  std::size_t dimension_count() const { return dimensions_.size(); }

  const std::vector<std::shared_ptr<const DimensionType>>& dimension_types()
      const {
    return dimensions_;
  }
  const DimensionType& dimension_type(std::size_t index) const {
    return *dimensions_[index];
  }
  std::shared_ptr<const DimensionType> dimension_type_ptr(
      std::size_t index) const {
    return dimensions_[index];
  }

  /// Finds a dimension type by name.
  Result<std::size_t> Find(std::string_view dimension_name) const;

  /// Structural equality of schemas (fact type name plus equivalent
  /// dimension types in order); required by union and difference.
  bool EquivalentTo(const FactSchema& other) const;

  /// True when the two schemas have isomorphic dimension-type structure
  /// (names of the fact type/dimensions may differ); this is the
  /// precondition of the rename operator.
  bool IsomorphicTo(const FactSchema& other) const;

  /// Multi-line description listing the fact type and each dimension-type
  /// lattice.
  std::string ToString() const;

 private:
  std::string fact_type_;
  std::vector<std::shared_ptr<const DimensionType>> dimensions_;
};

}  // namespace mddc

#endif  // MDDC_CORE_SCHEMA_H_
