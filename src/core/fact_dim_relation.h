#ifndef MDDC_CORE_FACT_DIM_RELATION_H_
#define MDDC_CORE_FACT_DIM_RELATION_H_

#include <map>
#include <string>
#include <vector>

#include "common/id.h"
#include "common/result.h"
#include "temporal/lifespan.h"

namespace mddc {

/// A fact-dimension relation R = {(f, e)} (paper Section 3.1) linking
/// facts to dimension values. Crucially — and unlike the models the paper
/// surveys — R is many-to-many (requirement 6) and e may belong to *any*
/// category, not just the bottom one (requirement 9, different levels of
/// granularity: "we can relate facts to values in higher-level
/// categories").
///
/// Each pair carries a Lifespan ((f,e) in_Tv R, Section 3.2) and a
/// probability ((f,e) in_p R, Section 3.3). Pairs are coalesced: adding
/// the same (f,e) twice unions the attached time, so value-equivalent
/// pairs never exist.
class FactDimRelation {
 public:
  struct Entry {
    FactId fact;
    ValueId value;
    Lifespan life;
    double prob = 1.0;
  };

  FactDimRelation() = default;

  /// Adds (fact, value) during `life` with probability `prob`. Coalesces
  /// with an existing pair (probabilities must agree).
  Status Add(FactId fact, ValueId value,
             const Lifespan& life = Lifespan::AlwaysSpan(),
             double prob = 1.0);

  /// Removes every pair whose fact is not in the sorted vector `facts`
  /// (used by selection and difference).
  void RestrictToFacts(const std::vector<FactId>& facts);

  /// All pairs, in insertion order.
  const std::vector<Entry>& entries() const { return entries_; }

  /// The pairs for one fact.
  std::vector<const Entry*> ForFact(FactId fact) const;

  /// The pairs for one dimension value.
  std::vector<const Entry*> ForValue(ValueId value) const;

  /// No-copy variants of the above for read-only hot loops: indices into
  /// entries() (empty when the fact/value has no pairs). Invalidated by
  /// Add and RestrictToFacts.
  const std::vector<std::size_t>& EntryIndexesForFact(FactId fact) const;
  const std::vector<std::size_t>& EntryIndexesForValue(ValueId value) const;

  /// The whole by-fact index, keyed in ascending fact order — for hot
  /// loops that walk a sorted fact list in lockstep instead of issuing
  /// one tree lookup per fact. Invalidated by Add and RestrictToFacts.
  const std::map<FactId, std::vector<std::size_t>>& EntryIndexesByFact()
      const {
    return by_fact_;
  }

  /// True iff some pair references `fact`.
  bool HasFact(FactId fact) const;

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Set-union of two relations with pairwise lifespan coalescing (the
  /// temporal union rule of Section 4.2).
  static Result<FactDimRelation> UnionWith(const FactDimRelation& a,
                                           const FactDimRelation& b);

 private:
  std::vector<Entry> entries_;
  std::map<FactId, std::vector<std::size_t>> by_fact_;
  std::map<ValueId, std::vector<std::size_t>> by_value_;
};

}  // namespace mddc

#endif  // MDDC_CORE_FACT_DIM_RELATION_H_
