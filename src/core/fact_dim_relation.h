#ifndef MDDC_CORE_FACT_DIM_RELATION_H_
#define MDDC_CORE_FACT_DIM_RELATION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/flat_hash.h"
#include "common/id.h"
#include "common/result.h"
#include "temporal/lifespan.h"

namespace mddc {

/// A fact-dimension relation R = {(f, e)} (paper Section 3.1) linking
/// facts to dimension values. Crucially — and unlike the models the paper
/// surveys — R is many-to-many (requirement 6) and e may belong to *any*
/// category, not just the bottom one (requirement 9, different levels of
/// granularity: "we can relate facts to values in higher-level
/// categories").
///
/// Each pair carries a Lifespan ((f,e) in_Tv R, Section 3.2) and a
/// probability ((f,e) in_p R, Section 3.3). Pairs are coalesced: adding
/// the same (f,e) twice unions the attached time, so value-equivalent
/// pairs never exist.
///
/// Storage is flat (docs/memory_layout.md): the by-fact / by-value
/// indexes are open-addressing hash tables over dense key arrays (no
/// tree nodes), and sorted-lockstep consumers read a CSR span view built
/// once per freeze (`FactSpans`).
class FactDimRelation {
 public:
  struct Entry {
    FactId fact;
    ValueId value;
    Lifespan life;
    double prob = 1.0;
  };

  /// One row of the CSR by-fact view: the entries of `fact` are
  /// `SpanEntryIndexes()[begin..end)`, facts ascending.
  struct FactSpan {
    FactId fact;
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
  };

  /// A borrowed contiguous run of entry indexes — the uniform shape hot
  /// loops consume whether the run comes from the CSR view or from a
  /// per-fact list.
  struct EntrySpan {
    const std::size_t* data = nullptr;
    std::size_t count = 0;
    const std::size_t* begin() const { return data; }
    const std::size_t* end() const { return data + count; }
    std::size_t front() const { return data[0]; }
    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }
    static EntrySpan Of(const std::vector<std::size_t>& list) {
      return EntrySpan{list.data(), list.size()};
    }
  };

  FactDimRelation() = default;
  FactDimRelation(const FactDimRelation& other);
  FactDimRelation(FactDimRelation&& other) noexcept;
  FactDimRelation& operator=(const FactDimRelation& other);
  FactDimRelation& operator=(FactDimRelation&& other) noexcept;

  /// Adds (fact, value) during `life` with probability `prob`. Coalesces
  /// with an existing pair (probabilities must agree).
  Status Add(FactId fact, ValueId value,
             const Lifespan& life = Lifespan::AlwaysSpan(),
             double prob = 1.0);

  /// Removes every pair whose fact is not in the sorted vector `facts`
  /// (used by selection and difference).
  void RestrictToFacts(const std::vector<FactId>& facts);

  /// All pairs, in insertion order.
  const std::vector<Entry>& entries() const { return entries_; }

  /// The pairs for one fact.
  std::vector<const Entry*> ForFact(FactId fact) const;

  /// The pairs for one dimension value.
  std::vector<const Entry*> ForValue(ValueId value) const;

  /// No-copy variants of the above for read-only hot loops: indices into
  /// entries() (empty when the fact/value has no pairs). Invalidated by
  /// Add and RestrictToFacts.
  const std::vector<std::size_t>& EntryIndexesForFact(FactId fact) const;
  const std::vector<std::size_t>& EntryIndexesForValue(ValueId value) const;

  /// The CSR by-fact view, facts ascending — for hot loops that walk a
  /// sorted fact list in lockstep as a pointer sweep instead of issuing
  /// one lookup per fact. Built lazily (thread-safe, double-checked) or
  /// eagerly by SealIndexes; Add and RestrictToFacts invalidate it.
  const std::vector<FactSpan>& FactSpans() const {
    SealIndexes();
    return spans_;
  }
  const std::vector<std::size_t>& SpanEntryIndexes() const {
    SealIndexes();
    return span_entries_;
  }

  /// Builds the CSR view now (the seal step of snapshot publication calls
  /// this so published epochs never build indexes under readers).
  void SealIndexes() const;

  /// What one SealIndexes call actually did — the serve layer's telemetry
  /// hook for the incremental-ingestion path (docs/ingestion.md).
  enum class SealOutcome {
    /// The view was already valid (no changes since the last seal).
    kReused,
    /// Appended entries were spliced onto the span tail (appends whose
    /// facts all sort at or after the last sealed fact — the shape of a
    /// batched fact append); in-place coalesces revalidate this way too.
    kExtended,
    /// Full re-sort: first seal, restricted fact set, or out-of-order
    /// appends.
    kRebuilt,
  };

  /// SealIndexes, reporting the outcome.
  SealOutcome SealIndexesReporting() const;

  /// True iff some pair references `fact`.
  bool HasFact(FactId fact) const;

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Set-union of two relations with pairwise lifespan coalescing (the
  /// temporal union rule of Section 4.2).
  static Result<FactDimRelation> UnionWith(const FactDimRelation& a,
                                           const FactDimRelation& b);

 private:
  /// One side (by-fact or by-value) of the flat index: open-addressing
  /// table over dense parallel (key, entry-index-list) arrays.
  ///
  /// The per-key lists are copy-on-write: a copied relation (the MVCC
  /// draft clone, or a reader's WithRegistry view) shares every list with
  /// its source — |keys| refcount bumps instead of |keys| heap
  /// allocations — and ListFor un-shares one list only when a writer
  /// actually mutates it. Retired epochs then free only the lists they
  /// uniquely own, which is what keeps continuous-ingestion clone and
  /// teardown O(batch), not O(|F|) (docs/ingestion.md). Sharing is safe
  /// because relation mutation is single-writer (the store's draft) while
  /// concurrent readers only copy shared_ptrs: a list with use_count() 1
  /// is provably private — no other thread holds a handle to copy from.
  template <typename Key>
  struct FlatListIndex {
    FlatHashIndex table;
    std::vector<Key> keys;
    std::vector<std::shared_ptr<std::vector<std::size_t>>> lists;

    std::uint32_t FindOrdinal(Key key) const {
      return table.Find(Fnv1a64Word(key.raw()), [&](std::uint32_t ordinal) {
        return keys[ordinal] == key;
      });
    }
    const std::vector<std::size_t>& ListAt(std::uint32_t ordinal) const {
      return *lists[ordinal];
    }
    std::vector<std::size_t>& ListFor(Key key) {
      bool inserted = false;
      const std::uint32_t ordinal = table.FindOrInsert(
          Fnv1a64Word(key.raw()), static_cast<std::uint32_t>(keys.size()),
          [&](std::uint32_t o) { return keys[o] == key; }, &inserted);
      if (inserted) {
        keys.push_back(key);
        lists.push_back(std::make_shared<std::vector<std::size_t>>());
      } else if (lists[ordinal].use_count() > 1) {
        lists[ordinal] =
            std::make_shared<std::vector<std::size_t>>(*lists[ordinal]);
      }
      return *lists[ordinal];
    }
    void Clear() {
      table.Clear();
      keys.clear();
      lists.clear();
    }
  };

  void ReindexAll();
  void InvalidateCsr() {
    csr_valid_.store(false, std::memory_order_release);
  }
  void CopyFrom(const FactDimRelation& other);
  void MoveFrom(FactDimRelation&& other);

  std::vector<Entry> entries_;
  FlatListIndex<FactId> by_fact_;
  FlatListIndex<ValueId> by_value_;

  /// Splices the entries appended since the last seal onto the span tail;
  /// false when the delta is not a pure in-order append and a full
  /// rebuild is needed. Caller holds CsrMutex.
  bool TryExtendCsrTailLocked() const;

  // Lazily-built CSR by-fact view. `csr_valid_` is the publication flag:
  // set with release after the arrays are final, read with acquire before
  // touching them (the RollupIndex slot idiom), so sealed snapshots serve
  // concurrent readers lock-free. A stale-but-kept view (`csr_valid_`
  // false, `sealed_entry_count_` > 0) is the append-patch state: entries
  // [0, sealed_entry_count_) are still laid out in the arrays, and a
  // reseal extends the tail instead of re-sorting when the delta allows.
  mutable std::atomic<bool> csr_valid_{false};
  mutable std::vector<FactSpan> spans_;
  mutable std::vector<std::size_t> span_entries_;
  mutable std::size_t sealed_entry_count_ = 0;
};

}  // namespace mddc

#endif  // MDDC_CORE_FACT_DIM_RELATION_H_
