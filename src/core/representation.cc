#include "core/representation.h"

#include <cstdlib>

#include "common/strings.h"

namespace mddc {

Status Representation::Set(ValueId value, const std::string& text,
                           const Lifespan& life) {
  if (!value.valid()) {
    return Status::InvalidArgument("representation for invalid value id");
  }
  if (life.Empty()) {
    return Status::InvalidArgument(
        StrCat("empty lifespan for representation '", name_, "' of value ",
               value));
  }
  // Re-asserting the same mapping coalesces lifespans (the attached time
  // is always the maximal chronon set). Distinct overlapping mappings
  // violate bijectivity.
  if (auto it = by_value_.find(value); it != by_value_.end()) {
    for (Entry& entry : it->second) {
      if (entry.text == text) {
        entry.life = entry.life.Union(life);
        for (auto& [other_value, other_life] : by_text_[text]) {
          if (other_value == value) other_life = entry.life;
        }
        return Status::OK();
      }
      if (entry.life.valid.Overlaps(life.valid) &&
          entry.life.transaction.Overlaps(life.transaction)) {
        return Status::InvariantViolation(
            StrCat("representation '", name_, "': value ", value,
                   " already maps to '", entry.text, "' during ",
                   entry.life.ToString()));
      }
    }
  }
  if (auto it = by_text_.find(text); it != by_text_.end()) {
    for (const auto& [other_value, other_life] : it->second) {
      if (other_value != value && other_life.valid.Overlaps(life.valid) &&
          other_life.transaction.Overlaps(life.transaction)) {
        return Status::InvariantViolation(
            StrCat("representation '", name_, "': text '", text,
                   "' already denotes value ", other_value, " during ",
                   other_life.ToString()));
      }
    }
  }
  by_value_[value].push_back(Entry{text, life});
  by_text_[text].emplace_back(value, life);
  return Status::OK();
}

Result<std::string> Representation::Get(ValueId value, Chronon at) const {
  auto it = by_value_.find(value);
  if (it != by_value_.end()) {
    for (const Entry& entry : it->second) {
      // NOW-ending valid times contain every concrete chronon at or after
      // their begin because the NOW sentinel exceeds all concrete values.
      if (entry.life.valid.Contains(at)) return entry.text;
    }
  }
  return Status::NotFound(StrCat("representation '", name_,
                                 "' has no mapping for value ", value,
                                 " at the requested time"));
}

std::vector<std::pair<std::string, Lifespan>> Representation::GetAll(
    ValueId value) const {
  std::vector<std::pair<std::string, Lifespan>> result;
  auto it = by_value_.find(value);
  if (it == by_value_.end()) return result;
  for (const Entry& entry : it->second) {
    result.emplace_back(entry.text, entry.life);
  }
  return result;
}

Result<ValueId> Representation::Lookup(const std::string& text,
                                       Chronon at) const {
  auto it = by_text_.find(text);
  if (it != by_text_.end()) {
    for (const auto& [value, life] : it->second) {
      if (life.valid.Contains(at)) return value;
    }
  }
  return Status::NotFound(StrCat("representation '", name_,
                                 "' has no value named '", text,
                                 "' at the requested time"));
}

Result<double> Representation::GetNumeric(ValueId value, Chronon at) const {
  MDDC_ASSIGN_OR_RETURN(std::string text, Get(value, at));
  char* end = nullptr;
  double parsed = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || (end != nullptr && *end != '\0')) {
    return Status::InvalidArgument(
        StrCat("representation '", name_, "' value '", text,
               "' is not numeric"));
  }
  return parsed;
}

std::size_t Representation::size() const {
  std::size_t total = 0;
  for (const auto& [value, entries] : by_value_) total += entries.size();
  return total;
}

}  // namespace mddc
