#include "core/representation.h"

#include <cstdlib>

#include "common/strings.h"

namespace mddc {

const std::vector<Representation::Entry>* Representation::EntriesFor(
    ValueId value) const {
  const std::uint32_t ordinal = value_index_.Find(
      Fnv1a64Word(value.raw()),
      [&](std::uint32_t o) { return value_keys_[o] == value; });
  return ordinal == FlatHashIndex::kNone ? nullptr : &value_entries_[ordinal];
}

const Representation::Entry* Representation::EntryAt(ValueId value,
                                                     Chronon at) const {
  const std::vector<Entry>* entries = EntriesFor(value);
  if (entries == nullptr) return nullptr;
  for (const Entry& entry : *entries) {
    // NOW-ending valid times contain every concrete chronon at or after
    // their begin because the NOW sentinel exceeds all concrete values.
    if (entry.life.valid.Contains(at)) return &entry;
  }
  return nullptr;
}

Status Representation::Set(ValueId value, std::string_view text,
                           const Lifespan& life) {
  if (!value.valid()) {
    return Status::InvalidArgument("representation for invalid value id");
  }
  if (life.Empty()) {
    return Status::InvalidArgument(
        StrCat("empty lifespan for representation '", name_, "' of value ",
               value));
  }
  const StringId known_text = interner_.Find(text);
  // Re-asserting the same mapping coalesces lifespans (the attached time
  // is always the maximal chronon set). Distinct overlapping mappings
  // violate bijectivity.
  bool inserted = false;
  const std::uint32_t ordinal = value_index_.FindOrInsert(
      Fnv1a64Word(value.raw()),
      static_cast<std::uint32_t>(value_keys_.size()),
      [&](std::uint32_t o) { return value_keys_[o] == value; }, &inserted);
  if (inserted) {
    value_keys_.push_back(value);
    value_entries_.emplace_back();
  }
  for (Entry& entry : value_entries_[ordinal]) {
    if (entry.text == known_text && known_text != kInvalidStringId) {
      entry.life = entry.life.Union(life);
      for (TextEntry& other : by_text_[known_text]) {
        if (other.value == value) other.life = entry.life;
      }
      return Status::OK();
    }
    if (entry.life.valid.Overlaps(life.valid) &&
        entry.life.transaction.Overlaps(life.transaction)) {
      return Status::InvariantViolation(
          StrCat("representation '", name_, "': value ", value,
                 " already maps to '", interner_.View(entry.text),
                 "' during ", entry.life.ToString()));
    }
  }
  if (known_text != kInvalidStringId) {
    for (const TextEntry& other : by_text_[known_text]) {
      if (other.value != value && other.life.valid.Overlaps(life.valid) &&
          other.life.transaction.Overlaps(life.transaction)) {
        return Status::InvariantViolation(
            StrCat("representation '", name_, "': text '", text,
                   "' already denotes value ", other.value, " during ",
                   other.life.ToString()));
      }
    }
  }
  const StringId text_id =
      known_text != kInvalidStringId ? known_text : interner_.Intern(text);
  if (by_text_.size() < interner_.size()) by_text_.resize(interner_.size());
  value_entries_[ordinal].push_back(Entry{text_id, life});
  by_text_[text_id].push_back(TextEntry{value, life});
  return Status::OK();
}

Result<std::string> Representation::Get(ValueId value, Chronon at) const {
  if (const Entry* entry = EntryAt(value, at); entry != nullptr) {
    return std::string(interner_.View(entry->text));
  }
  return Status::NotFound(StrCat("representation '", name_,
                                 "' has no mapping for value ", value,
                                 " at the requested time"));
}

std::vector<std::pair<std::string, Lifespan>> Representation::GetAll(
    ValueId value) const {
  std::vector<std::pair<std::string, Lifespan>> result;
  const std::vector<Entry>* entries = EntriesFor(value);
  if (entries == nullptr) return result;
  result.reserve(entries->size());
  for (const Entry& entry : *entries) {
    result.emplace_back(std::string(interner_.View(entry.text)), entry.life);
  }
  return result;
}

Result<ValueId> Representation::Lookup(std::string_view text,
                                       Chronon at) const {
  const StringId text_id = interner_.Find(text);
  if (text_id != kInvalidStringId) {
    for (const TextEntry& entry : by_text_[text_id]) {
      if (entry.life.valid.Contains(at)) return entry.value;
    }
  }
  return Status::NotFound(StrCat("representation '", name_,
                                 "' has no value named '", text,
                                 "' at the requested time"));
}

Result<double> Representation::GetNumeric(ValueId value, Chronon at) const {
  const Entry* entry = EntryAt(value, at);
  if (entry == nullptr) {
    return Status::NotFound(StrCat("representation '", name_,
                                   "' has no mapping for value ", value,
                                   " at the requested time"));
  }
  const char* text = interner_.CStr(entry->text);
  char* end = nullptr;
  double parsed = std::strtod(text, &end);
  if (end == text || (end != nullptr && *end != '\0')) {
    return Status::InvalidArgument(
        StrCat("representation '", name_, "' value '",
               interner_.View(entry->text), "' is not numeric"));
  }
  return parsed;
}

std::size_t Representation::size() const {
  std::size_t total = 0;
  for (const std::vector<Entry>& entries : value_entries_) {
    total += entries.size();
  }
  return total;
}

}  // namespace mddc
