#ifndef MDDC_UNCERTAINTY_PROBABILITY_H_
#define MDDC_UNCERTAINTY_PROBABILITY_H_

#include <vector>

#include "common/result.h"

namespace mddc {

/// Helpers for the probabilistic extension of the model (paper Section
/// 3.3): probabilities attached to the dimension partial order
/// (e1 <=_p e2) and to fact-dimension relations ((f,e) in_p R). The
/// detailed algebra is in the unavailable technical report TR-37; this
/// library implements the natural independence semantics: probabilities
/// multiply along a containment path, combine noisy-or across alternative
/// paths/witnesses, and aggregate queries can be answered by expectation.

/// True iff p is a valid probability in [0, 1].
bool IsProbability(double p);

/// Validates p in (0, 1]; model attachments use 1.0 for certain data and
/// disallow 0 (a zero-probability statement is simply absent).
Status ValidateAttachedProbability(double p);

/// Combines independent alternative witnesses: 1 - prod(1 - p_i).
double NoisyOr(const std::vector<double>& probabilities);

/// Sequential composition along a path: prod(p_i).
double PathProduct(const std::vector<double>& probabilities);

/// The expected number of successes among independent events with the
/// given probabilities (expected COUNT under tuple-level uncertainty).
double ExpectedCount(const std::vector<double>& probabilities);

/// The expected sum of `values[i]` weighted by `probabilities[i]`
/// (expected SUM). The two vectors must have equal length.
Result<double> ExpectedSum(const std::vector<double>& values,
                           const std::vector<double>& probabilities);

/// P(at least one event) — the probability that a group is non-empty,
/// used when deciding whether an uncertain group should exist at all.
double ProbabilityNonEmpty(const std::vector<double>& probabilities);

/// Exact distribution of the count of independent events (Poisson
/// binomial), returned as a vector d where d[k] = P(count = k). Used by
/// the uncertainty benches to report full count distributions rather
/// than just expectations.
std::vector<double> CountDistribution(
    const std::vector<double>& probabilities);

}  // namespace mddc

#endif  // MDDC_UNCERTAINTY_PROBABILITY_H_
