#include "uncertainty/probability.h"

#include "common/strings.h"

namespace mddc {

bool IsProbability(double p) { return p >= 0.0 && p <= 1.0; }

Status ValidateAttachedProbability(double p) {
  if (p <= 0.0 || p > 1.0) {
    return Status::InvalidArgument(
        StrCat("attached probability ", p, " outside (0,1]"));
  }
  return Status::OK();
}

double NoisyOr(const std::vector<double>& probabilities) {
  double none = 1.0;
  for (double p : probabilities) none *= 1.0 - p;
  return 1.0 - none;
}

double PathProduct(const std::vector<double>& probabilities) {
  double product = 1.0;
  for (double p : probabilities) product *= p;
  return product;
}

double ExpectedCount(const std::vector<double>& probabilities) {
  double expected = 0.0;
  for (double p : probabilities) expected += p;
  return expected;
}

Result<double> ExpectedSum(const std::vector<double>& values,
                           const std::vector<double>& probabilities) {
  if (values.size() != probabilities.size()) {
    return Status::InvalidArgument(
        StrCat("expected-sum arity mismatch: ", values.size(), " values vs ",
               probabilities.size(), " probabilities"));
  }
  double expected = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    expected += values[i] * probabilities[i];
  }
  return expected;
}

double ProbabilityNonEmpty(const std::vector<double>& probabilities) {
  return NoisyOr(probabilities);
}

std::vector<double> CountDistribution(
    const std::vector<double>& probabilities) {
  // Dynamic program over events: d[k] after processing i events is
  // P(count = k among the first i).
  std::vector<double> distribution = {1.0};
  for (double p : probabilities) {
    std::vector<double> next(distribution.size() + 1, 0.0);
    for (std::size_t k = 0; k < distribution.size(); ++k) {
      next[k] += distribution[k] * (1.0 - p);
      next[k + 1] += distribution[k] * p;
    }
    distribution = std::move(next);
  }
  return distribution;
}

}  // namespace mddc
