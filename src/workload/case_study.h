#ifndef MDDC_WORKLOAD_CASE_STUDY_H_
#define MDDC_WORKLOAD_CASE_STUDY_H_

#include <map>
#include <memory>
#include <string>
#include <utility>

#include "common/result.h"
#include "core/md_object.h"

namespace mddc {

/// The paper's running clinical case study (Section 2.1, Table 1,
/// Figures 1 and 2) materialized as a six-dimensional Patient MO:
/// Diagnosis, Date of Birth, Residence, Name, SSN and Age (Example 8's
/// "Patient" MO).
///
/// Faithfulness notes:
///  * Patient, Has, Diagnosis and Grouping data are exactly Table 1
///    (including the 01/01/1980 classification change and Example 10's
///    user-defined 8 <= 11 bridge).
///  * The paper prints no Lives-in rows; small Residence data (two areas
///    in two counties of one region) is synthesized, as documented in
///    DESIGN.md.
///  * The Type columns of Has ("Primary"/"Secondary") and Grouping
///    ("WHO"/"User-defined") are not part of the paper's formal model;
///    they are carried alongside the MO so Table 1 can be reproduced
///    verbatim.
struct CaseStudy {
  std::shared_ptr<FactRegistry> registry;
  MdObject mo;

  /// Dimension indexes within the MO.
  std::size_t diagnosis = 0;
  std::size_t dob = 1;
  std::size_t residence = 2;
  std::size_t name = 3;
  std::size_t ssn = 4;
  std::size_t age = 5;

  /// (patient id, diagnosis id) -> "Primary"/"Secondary".
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::string> has_type;
  /// (parent id, child id) -> "WHO"/"User-defined".
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::string>
      grouping_type;
};

/// Builds the complete case study.
Result<CaseStudy> BuildCaseStudy();

/// Re-derives Table 1 from the MO — a round-trip proof that the model
/// captures all of the case study's information. Each renderer returns
/// the aligned ASCII table.
Result<std::string> RenderPatientTable(const CaseStudy& cs);
Result<std::string> RenderHasTable(const CaseStudy& cs);
Result<std::string> RenderDiagnosisTable(const CaseStudy& cs);
Result<std::string> RenderGroupingTable(const CaseStudy& cs);

/// Renders the Figure 2 schema: every dimension-type lattice of the
/// Patient MO, bottom-up.
std::string RenderSchemaLattices(const CaseStudy& cs);

}  // namespace mddc

#endif  // MDDC_WORKLOAD_CASE_STUDY_H_
