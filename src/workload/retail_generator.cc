#include "workload/retail_generator.h"

#include <array>
#include <map>
#include <random>

#include "common/date.h"
#include "common/strings.h"

namespace mddc {
namespace {

constexpr std::uint64_t kProductBase = 1000000;
constexpr std::uint64_t kCategoryBase = 1100000;
constexpr std::uint64_t kDepartmentBase = 1200000;
constexpr std::uint64_t kStoreBase = 1300000;
constexpr std::uint64_t kCityBase = 1400000;
constexpr std::uint64_t kRegionBase = 1500000;
constexpr std::uint64_t kDateBase = 1600000;
constexpr std::uint64_t kAmountBase = 1700000;
constexpr std::uint64_t kPriceBase = 1800000;

/// Builds a three-level hierarchy dimension where level sizes are given;
/// children are distributed round-robin over parents.
Result<Dimension> BuildThreeLevel(const std::string& name,
                                  const std::array<const char*, 3>& levels,
                                  std::array<std::size_t, 3> sizes,
                                  std::array<std::uint64_t, 3> bases,
                                  std::vector<ValueId>* bottom_values) {
  DimensionTypeBuilder builder(name);
  builder.AddCategory(levels[0])
      .AddCategory(levels[1])
      .AddCategory(levels[2])
      .AddOrder(levels[0], levels[1])
      .AddOrder(levels[1], levels[2]);
  MDDC_ASSIGN_OR_RETURN(auto type, builder.Build());
  Dimension dimension(type);
  CategoryTypeIndex bottom = *type->Find(levels[0]);
  CategoryTypeIndex middle = *type->Find(levels[1]);
  CategoryTypeIndex top_level = *type->Find(levels[2]);
  Representation& name_rep = dimension.RepresentationFor(bottom, "Name");
  for (std::size_t t = 0; t < sizes[2]; ++t) {
    MDDC_RETURN_NOT_OK(dimension.AddValue(top_level, ValueId(bases[2] + t)));
  }
  for (std::size_t m = 0; m < sizes[1]; ++m) {
    MDDC_RETURN_NOT_OK(dimension.AddValue(middle, ValueId(bases[1] + m)));
    MDDC_RETURN_NOT_OK(dimension.AddOrder(
        ValueId(bases[1] + m), ValueId(bases[2] + m % sizes[2])));
  }
  for (std::size_t b = 0; b < sizes[0]; ++b) {
    ValueId id(bases[0] + b);
    MDDC_RETURN_NOT_OK(dimension.AddValue(bottom, id));
    MDDC_RETURN_NOT_OK(name_rep.Set(id, StrCat(levels[0], "-", b)));
    MDDC_RETURN_NOT_OK(
        dimension.AddOrder(id, ValueId(bases[1] + b % sizes[1])));
    bottom_values->push_back(id);
  }
  return dimension;
}

/// A flat numeric measure dimension (Sigma-typed bottom with a numeric
/// "Value" representation) holding the given distinct values.
Result<Dimension> BuildMeasure(const std::string& name,
                               const std::vector<double>& values,
                               std::uint64_t base,
                               std::map<std::string, ValueId>* index) {
  DimensionTypeBuilder builder(name);
  builder.AddCategory(name, AggregationType::kSum);
  MDDC_ASSIGN_OR_RETURN(auto type, builder.Build());
  Dimension dimension(type);
  CategoryTypeIndex bottom = type->bottom();
  Representation& rep = dimension.RepresentationFor(bottom, "Value");
  std::uint64_t next = base;
  for (double value : values) {
    std::string text = FormatDouble(value);
    if (index->count(text) != 0) continue;
    ValueId id(next++);
    MDDC_RETURN_NOT_OK(dimension.AddValue(bottom, id));
    MDDC_RETURN_NOT_OK(rep.Set(id, text));
    index->emplace(std::move(text), id);
  }
  return dimension;
}

}  // namespace

Result<RetailMo> GenerateRetailWorkload(
    const RetailWorkloadParams& params,
    std::shared_ptr<FactRegistry> registry) {
  std::mt19937 rng(params.seed);

  std::vector<ValueId> products;
  MDDC_ASSIGN_OR_RETURN(
      Dimension product_dim,
      BuildThreeLevel("Product", {"Product", "Category", "Department"},
                      {params.num_products, params.categories,
                       params.departments},
                      {kProductBase, kCategoryBase, kDepartmentBase},
                      &products));
  std::vector<ValueId> stores;
  MDDC_ASSIGN_OR_RETURN(
      Dimension store_dim,
      BuildThreeLevel("Store", {"Store", "City", "Region"},
                      {params.num_stores, params.cities, params.regions},
                      {kStoreBase, kCityBase, kRegionBase}, &stores));

  // Date dimension: Day < Month < Year.
  DimensionTypeBuilder date_builder("Date");
  date_builder.AddCategory("Day", AggregationType::kAverage)
      .AddCategory("Month")
      .AddCategory("Year")
      .AddOrder("Day", "Month")
      .AddOrder("Month", "Year");
  MDDC_ASSIGN_OR_RETURN(auto date_type, date_builder.Build());
  Dimension date_dim(date_type);
  CategoryTypeIndex day_cat = *date_type->Find("Day");
  CategoryTypeIndex month_cat = *date_type->Find("Month");
  CategoryTypeIndex year_cat = *date_type->Find("Year");
  const Chronon start = *ParseDate("01/01/98");
  std::vector<ValueId> days;
  std::map<std::string, ValueId> months;
  std::map<int, ValueId> years;
  std::uint64_t next_date = kDateBase;
  Representation& day_rep = date_dim.RepresentationFor(day_cat, "Value");
  for (std::size_t d = 0; d < params.num_days; ++d) {
    Chronon day = start + static_cast<Chronon>(d);
    CalendarDate date = DayNumberToDate(day);
    ValueId day_id(next_date++);
    MDDC_RETURN_NOT_OK(date_dim.AddValue(day_cat, day_id));
    MDDC_RETURN_NOT_OK(day_rep.Set(day_id, FormatDate(day)));
    std::string month_key = StrCat(date.year, "-", date.month);
    auto month_it = months.find(month_key);
    if (month_it == months.end()) {
      ValueId month_id(next_date++);
      MDDC_RETURN_NOT_OK(date_dim.AddValue(month_cat, month_id));
      month_it = months.emplace(month_key, month_id).first;
      auto year_it = years.find(date.year);
      if (year_it == years.end()) {
        ValueId year_id(next_date++);
        MDDC_RETURN_NOT_OK(date_dim.AddValue(year_cat, year_id));
        year_it = years.emplace(date.year, year_id).first;
      }
      MDDC_RETURN_NOT_OK(date_dim.AddOrder(month_id, year_it->second));
    }
    MDDC_RETURN_NOT_OK(date_dim.AddOrder(day_id, month_it->second));
    days.push_back(day_id);
  }

  // Amount and Price measure dimensions.
  std::uniform_int_distribution<std::int64_t> amount_dist(1,
                                                          params.max_amount);
  std::uniform_real_distribution<double> price_dist(1.0, params.max_price);
  std::vector<std::int64_t> amounts(params.num_purchases);
  std::vector<double> prices(params.num_purchases);
  std::vector<double> amount_values;
  std::vector<double> price_values;
  for (std::size_t i = 0; i < params.num_purchases; ++i) {
    amounts[i] = amount_dist(rng);
    // Round prices to cents so distinct-value counts stay bounded.
    prices[i] = static_cast<std::int64_t>(price_dist(rng) * 100) / 100.0;
    amount_values.push_back(static_cast<double>(amounts[i]));
    price_values.push_back(prices[i]);
  }
  std::map<std::string, ValueId> amount_index;
  MDDC_ASSIGN_OR_RETURN(
      Dimension amount_dim,
      BuildMeasure("Amount", amount_values, kAmountBase, &amount_index));
  std::map<std::string, ValueId> price_index;
  MDDC_ASSIGN_OR_RETURN(
      Dimension price_dim,
      BuildMeasure("Price", price_values, kPriceBase, &price_index));

  RetailMo result{
      MdObject("Purchase",
               {std::move(product_dim), std::move(store_dim),
                std::move(date_dim), std::move(amount_dim),
                std::move(price_dim)},
               registry, TemporalType::kSnapshot),
      0,
      1,
      2,
      3,
      4,
      0,
      0,
      0,
      0,
      0,
      0};
  MdObject& mo = result.mo;
  result.product = *mo.dimension(0).type().Find("Product");
  result.category = *mo.dimension(0).type().Find("Category");
  result.department = *mo.dimension(0).type().Find("Department");
  result.store = *mo.dimension(1).type().Find("Store");
  result.city = *mo.dimension(1).type().Find("City");
  result.region = *mo.dimension(1).type().Find("Region");

  std::uniform_int_distribution<std::size_t> pick_product(
      0, products.size() - 1);
  std::uniform_int_distribution<std::size_t> pick_store(0, stores.size() - 1);
  std::uniform_int_distribution<std::size_t> pick_day(0, days.size() - 1);
  for (std::size_t i = 0; i < params.num_purchases; ++i) {
    FactId purchase = registry->Atom(1000000 + i);
    MDDC_RETURN_NOT_OK(mo.AddFact(purchase));
    MDDC_RETURN_NOT_OK(mo.Relate(0, purchase, products[pick_product(rng)]));
    MDDC_RETURN_NOT_OK(mo.Relate(1, purchase, stores[pick_store(rng)]));
    MDDC_RETURN_NOT_OK(mo.Relate(2, purchase, days[pick_day(rng)]));
    MDDC_RETURN_NOT_OK(mo.Relate(
        3, purchase,
        amount_index.at(FormatDouble(static_cast<double>(amounts[i])))));
    MDDC_RETURN_NOT_OK(
        mo.Relate(4, purchase, price_index.at(FormatDouble(prices[i]))));
  }
  MDDC_RETURN_NOT_OK(mo.Validate());
  return result;
}

}  // namespace mddc
