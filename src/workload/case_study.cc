#include "workload/case_study.h"

#include <algorithm>

#include "common/date.h"
#include "common/strings.h"
#include "common/table_printer.h"

namespace mddc {
namespace {

Result<Lifespan> During(const std::string& interval_text) {
  MDDC_ASSIGN_OR_RETURN(Interval interval, Interval::Parse(interval_text));
  return Lifespan::ValidDuring(TemporalElement(interval));
}

std::string FormatChronon(Chronon c) {
  if (c == kNowChronon) return "NOW";
  if (c >= kForeverChronon) return "FOREVER";
  if (c <= kMinChronon) return "BEGINNING";
  return FormatDate(c);
}

/// Formats a valid-time element's extent as (from, to) strings; Always
/// renders as BEGINNING/FOREVER.
std::pair<std::string, std::string> FormatSpan(const Lifespan& life) {
  if (life.valid.Empty()) return {"-", "-"};
  const Interval& first = life.valid.intervals().front();
  const Interval& last = life.valid.intervals().back();
  return {FormatChronon(first.begin()), FormatChronon(last.end())};
}

Result<std::shared_ptr<const DimensionType>> DiagnosisType() {
  DimensionTypeBuilder builder("Diagnosis");
  builder.AddCategory("Low-level Diagnosis", AggregationType::kConstant)
      .AddCategory("Diagnosis Family", AggregationType::kConstant)
      .AddCategory("Diagnosis Group", AggregationType::kConstant)
      .AddOrder("Low-level Diagnosis", "Diagnosis Family")
      .AddOrder("Diagnosis Family", "Diagnosis Group");
  return builder.Build();
}

Result<std::shared_ptr<const DimensionType>> DobType() {
  DimensionTypeBuilder builder("Date of Birth");
  builder.AddCategory("Day", AggregationType::kAverage)
      .AddCategory("Week", AggregationType::kConstant)
      .AddCategory("Month", AggregationType::kConstant)
      .AddCategory("Quarter", AggregationType::kConstant)
      .AddCategory("Year", AggregationType::kConstant)
      .AddCategory("Decade", AggregationType::kConstant)
      .AddOrder("Day", "Week")
      .AddOrder("Day", "Month")
      .AddOrder("Month", "Quarter")
      .AddOrder("Quarter", "Year")
      .AddOrder("Year", "Decade");
  return builder.Build();
}

Result<std::shared_ptr<const DimensionType>> ResidenceType() {
  DimensionTypeBuilder builder("Residence");
  builder.AddCategory("Area", AggregationType::kConstant)
      .AddCategory("County", AggregationType::kConstant)
      .AddCategory("Region", AggregationType::kConstant)
      .AddOrder("Area", "County")
      .AddOrder("County", "Region");
  return builder.Build();
}

Result<std::shared_ptr<const DimensionType>> SimpleType(
    const std::string& name) {
  DimensionTypeBuilder builder(name);
  builder.AddCategory(name, AggregationType::kConstant);
  return builder.Build();
}

Result<std::shared_ptr<const DimensionType>> AgeType() {
  DimensionTypeBuilder builder("Age");
  builder.AddCategory("Age", AggregationType::kSum)
      .AddCategory("Five-year Group", AggregationType::kConstant)
      .AddCategory("Ten-year Group", AggregationType::kConstant)
      .AddOrder("Age", "Five-year Group")
      .AddOrder("Five-year Group", "Ten-year Group");
  return builder.Build();
}

struct DiagnosisRow {
  std::uint64_t id;
  const char* level;  // "low", "family", "group"
  const char* code;
  const char* text;
  const char* valid;
};

constexpr DiagnosisRow kDiagnosisRows[] = {
    {3, "low", "P11", "Diabetes, pregnancy", "[01/01/70-31/12/79]"},
    {4, "family", "O24", "Diabetes, pregnancy", "[01/01/80-NOW]"},
    {5, "low", "O24.0", "Ins. dep. diab., pregn.", "[01/01/80-NOW]"},
    {6, "low", "O24.1", "Non ins. dep. diab., pregn.", "[01/01/80-NOW]"},
    {7, "family", "P1", "Other pregnancy diseases", "[01/01/70-31/12/79]"},
    {8, "family", "D1", "Diabetes", "[01/10/70-31/12/79]"},
    {9, "family", "E10", "Insulin dep. diabetes", "[01/01/80-NOW]"},
    {10, "family", "E11", "Non insulin dep. diabetes", "[01/01/80-NOW]"},
    {11, "group", "E1", "Diabetes", "[01/01/80-NOW]"},
    {12, "group", "O2", "Other pregnancy diseases", "[01/10/80-NOW]"},
};

struct GroupingRow {
  std::uint64_t parent;
  std::uint64_t child;
  const char* valid;
  const char* type;
};

constexpr GroupingRow kGroupingRows[] = {
    {4, 5, "[01/01/80-NOW]", "WHO"},
    {4, 6, "[01/01/80-NOW]", "WHO"},
    {7, 3, "[01/01/70-31/12/79]", "WHO"},
    {8, 3, "[01/01/70-31/12/79]", "User-defined"},
    {9, 5, "[01/01/80-NOW]", "User-defined"},
    {10, 6, "[01/01/80-NOW]", "User-defined"},
    {11, 9, "[01/01/80-NOW]", "WHO"},
    {11, 10, "[01/01/80-NOW]", "WHO"},
    {12, 4, "[01/01/80-NOW]", "WHO"},
    // Example 10's analysis bridge: old Diabetes counts with the new one.
    {11, 8, "[01/01/80-NOW]", "User-defined"},
};

struct HasRow {
  std::uint64_t patient;
  std::uint64_t diagnosis;
  const char* valid;
  const char* type;
};

constexpr HasRow kHasRows[] = {
    {1, 9, "[01/01/89-NOW]", "Primary"},
    {2, 3, "[23/03/75-24/12/75]", "Secondary"},
    {2, 8, "[01/01/70-31/12/81]", "Primary"},
    {2, 5, "[01/01/82-30/09/82]", "Secondary"},
    {2, 9, "[01/01/82-NOW]", "Primary"},
};

struct PatientRow {
  std::uint64_t id;
  const char* name;
  const char* ssn;
  const char* dob;  // dd/mm/yy
};

constexpr PatientRow kPatientRows[] = {
    {1, "John Doe", "12345678", "25/05/69"},
    {2, "Jane Doe", "87654321", "20/03/50"},
};

/// Surrogate id blocks for the non-diagnosis dimensions. Table 1 uses ids
/// 1..12; other dimensions allocate from disjoint ranges so every
/// surrogate stays globally unique (Section 3.1).
constexpr std::uint64_t kDobBase = 1000;
constexpr std::uint64_t kResidenceBase = 2000;
constexpr std::uint64_t kNameBase = 3000;
constexpr std::uint64_t kSsnBase = 4000;
constexpr std::uint64_t kAgeBase = 5000;

/// Adds the full calendar path of one birth date to the DOB dimension and
/// returns the Day value. Values are keyed deterministically so shared
/// months/years coalesce naturally.
Result<ValueId> AddBirthDate(Dimension& dob, std::int64_t day_number,
                             std::uint64_t* next_id,
                             std::map<std::string, ValueId>* interned) {
  const DimensionType& type = dob.type();
  CategoryTypeIndex day_cat = *type.Find("Day");
  CategoryTypeIndex week_cat = *type.Find("Week");
  CategoryTypeIndex month_cat = *type.Find("Month");
  CategoryTypeIndex quarter_cat = *type.Find("Quarter");
  CategoryTypeIndex year_cat = *type.Find("Year");
  CategoryTypeIndex decade_cat = *type.Find("Decade");

  CalendarDate date = DayNumberToDate(day_number);
  auto intern = [&](CategoryTypeIndex category, const std::string& key,
                    const std::string& label) -> Result<ValueId> {
    auto it = interned->find(key);
    if (it != interned->end()) return it->second;
    ValueId id((*next_id)++);
    MDDC_RETURN_NOT_OK(dob.AddValue(category, id));
    Representation& rep = dob.RepresentationFor(category, "Value");
    MDDC_RETURN_NOT_OK(rep.Set(id, label));
    interned->emplace(key, id);
    return id;
  };

  // ISO-like week key: day number / 7 (weeks since epoch).
  std::int64_t week_index = day_number >= 0 ? day_number / 7
                                            : (day_number - 6) / 7;
  int quarter = (date.month - 1) / 3 + 1;
  int decade = date.year / 10 * 10;

  MDDC_ASSIGN_OR_RETURN(
      ValueId day,
      intern(day_cat, StrCat("D", day_number), FormatDate(day_number)));
  MDDC_ASSIGN_OR_RETURN(ValueId week,
                        intern(week_cat, StrCat("W", week_index),
                               StrCat("week ", week_index)));
  MDDC_ASSIGN_OR_RETURN(ValueId month,
                        intern(month_cat,
                               StrCat("M", date.year, "-", date.month),
                               StrCat(date.month, "/", date.year)));
  MDDC_ASSIGN_OR_RETURN(ValueId quarter_value,
                        intern(quarter_cat,
                               StrCat("Q", date.year, "-", quarter),
                               StrCat("Q", quarter, " ", date.year)));
  MDDC_ASSIGN_OR_RETURN(
      ValueId year,
      intern(year_cat, StrCat("Y", date.year), std::to_string(date.year)));
  MDDC_ASSIGN_OR_RETURN(ValueId decade_value,
                        intern(decade_cat, StrCat("E", decade),
                               StrCat(decade, "s")));
  MDDC_RETURN_NOT_OK(dob.AddOrder(day, week));
  MDDC_RETURN_NOT_OK(dob.AddOrder(day, month));
  MDDC_RETURN_NOT_OK(dob.AddOrder(month, quarter_value));
  MDDC_RETURN_NOT_OK(dob.AddOrder(quarter_value, year));
  MDDC_RETURN_NOT_OK(dob.AddOrder(year, decade_value));
  return day;
}

}  // namespace

Result<CaseStudy> BuildCaseStudy() {
  // ---- Diagnosis dimension (Table 1 verbatim) ----------------------------
  MDDC_ASSIGN_OR_RETURN(auto diagnosis_type, DiagnosisType());
  Dimension diagnosis(diagnosis_type);
  CategoryTypeIndex low = *diagnosis_type->Find("Low-level Diagnosis");
  CategoryTypeIndex family = *diagnosis_type->Find("Diagnosis Family");
  CategoryTypeIndex group = *diagnosis_type->Find("Diagnosis Group");
  for (const DiagnosisRow& row : kDiagnosisRows) {
    CategoryTypeIndex category =
        row.level[0] == 'l' ? low : (row.level[0] == 'f' ? family : group);
    MDDC_ASSIGN_OR_RETURN(Lifespan life, During(row.valid));
    MDDC_RETURN_NOT_OK(diagnosis.AddValue(category, ValueId(row.id), life));
    Representation& code = diagnosis.RepresentationFor(category, "Code");
    MDDC_RETURN_NOT_OK(code.Set(ValueId(row.id), row.code, life));
    Representation& text = diagnosis.RepresentationFor(category, "Text");
    // Texts are not unique across values ("Diabetes, pregnancy" names
    // both 3 and 4), but their lifespans are disjoint, so bijectivity
    // per chronon holds — exactly the paper's motivation for surrogates.
    MDDC_RETURN_NOT_OK(text.Set(ValueId(row.id), row.text, life));
  }
  CaseStudy cs{std::make_shared<FactRegistry>(),
               MdObject("", {}, nullptr),  // replaced below
               0,  1, 2, 3, 4, 5, {}, {}};
  for (const GroupingRow& row : kGroupingRows) {
    MDDC_ASSIGN_OR_RETURN(Lifespan life, During(row.valid));
    MDDC_RETURN_NOT_OK(
        diagnosis.AddOrder(ValueId(row.child), ValueId(row.parent), life));
    cs.grouping_type[{row.parent, row.child}] = row.type;
  }

  // ---- Date-of-Birth dimension -------------------------------------------
  MDDC_ASSIGN_OR_RETURN(auto dob_type, DobType());
  Dimension dob(dob_type);
  std::uint64_t next_dob_id = kDobBase;
  std::map<std::string, ValueId> dob_interned;
  std::map<std::uint64_t, ValueId> patient_day;
  for (const PatientRow& row : kPatientRows) {
    MDDC_ASSIGN_OR_RETURN(std::int64_t day_number, ParseDate(row.dob));
    MDDC_ASSIGN_OR_RETURN(
        ValueId day, AddBirthDate(dob, day_number, &next_dob_id,
                                  &dob_interned));
    patient_day[row.id] = day;
  }

  // ---- Residence dimension (synthesized; see header) ----------------------
  MDDC_ASSIGN_OR_RETURN(auto residence_type, ResidenceType());
  Dimension residence(residence_type);
  CategoryTypeIndex area_cat = *residence_type->Find("Area");
  CategoryTypeIndex county_cat = *residence_type->Find("County");
  CategoryTypeIndex region_cat = *residence_type->Find("Region");
  struct Place {
    std::uint64_t id;
    CategoryTypeIndex category;
    const char* name;
  };
  const Place kPlaces[] = {
      {kResidenceBase + 0, area_cat, "Centrum"},
      {kResidenceBase + 1, area_cat, "Vestby"},
      {kResidenceBase + 10, county_cat, "North County"},
      {kResidenceBase + 11, county_cat, "West County"},
      {kResidenceBase + 20, region_cat, "Capital Region"},
  };
  for (const Place& place : kPlaces) {
    MDDC_RETURN_NOT_OK(
        residence.AddValue(place.category, ValueId(place.id)));
    Representation& rep =
        residence.RepresentationFor(place.category, "Name");
    MDDC_RETURN_NOT_OK(rep.Set(ValueId(place.id), place.name));
  }
  MDDC_RETURN_NOT_OK(residence.AddOrder(ValueId(kResidenceBase + 0),
                                        ValueId(kResidenceBase + 10)));
  MDDC_RETURN_NOT_OK(residence.AddOrder(ValueId(kResidenceBase + 1),
                                        ValueId(kResidenceBase + 11)));
  MDDC_RETURN_NOT_OK(residence.AddOrder(ValueId(kResidenceBase + 10),
                                        ValueId(kResidenceBase + 20)));
  MDDC_RETURN_NOT_OK(residence.AddOrder(ValueId(kResidenceBase + 11),
                                        ValueId(kResidenceBase + 20)));

  // ---- Name and SSN dimensions --------------------------------------------
  MDDC_ASSIGN_OR_RETURN(auto name_type, SimpleType("Name"));
  Dimension name_dim(name_type);
  MDDC_ASSIGN_OR_RETURN(auto ssn_type, SimpleType("SSN"));
  Dimension ssn_dim(ssn_type);
  CategoryTypeIndex name_cat = name_type->bottom();
  CategoryTypeIndex ssn_cat = ssn_type->bottom();
  for (std::size_t i = 0; i < std::size(kPatientRows); ++i) {
    const PatientRow& row = kPatientRows[i];
    ValueId name_id(kNameBase + i);
    MDDC_RETURN_NOT_OK(name_dim.AddValue(name_cat, name_id));
    MDDC_RETURN_NOT_OK(
        name_dim.RepresentationFor(name_cat, "Value").Set(name_id, row.name));
    ValueId ssn_id(kSsnBase + i);
    MDDC_RETURN_NOT_OK(ssn_dim.AddValue(ssn_cat, ssn_id));
    MDDC_RETURN_NOT_OK(
        ssn_dim.RepresentationFor(ssn_cat, "Value").Set(ssn_id, row.ssn));
  }

  // ---- Age dimension --------------------------------------------------------
  MDDC_ASSIGN_OR_RETURN(auto age_type, AgeType());
  Dimension age_dim(age_type);
  CategoryTypeIndex age_cat = *age_type->Find("Age");
  CategoryTypeIndex five_cat = *age_type->Find("Five-year Group");
  CategoryTypeIndex ten_cat = *age_type->Find("Ten-year Group");
  Representation& age_rep = age_dim.RepresentationFor(age_cat, "Value");
  Representation& five_rep = age_dim.RepresentationFor(five_cat, "Value");
  Representation& ten_rep = age_dim.RepresentationFor(ten_cat, "Value");
  for (std::uint64_t ten = 0; ten < 12; ++ten) {
    ValueId ten_id(kAgeBase + 500 + ten);
    MDDC_RETURN_NOT_OK(age_dim.AddValue(ten_cat, ten_id));
    MDDC_RETURN_NOT_OK(
        ten_rep.Set(ten_id, StrCat(ten * 10, "-", ten * 10 + 9)));
  }
  for (std::uint64_t five = 0; five < 24; ++five) {
    ValueId five_id(kAgeBase + 300 + five);
    MDDC_RETURN_NOT_OK(age_dim.AddValue(five_cat, five_id));
    MDDC_RETURN_NOT_OK(
        five_rep.Set(five_id, StrCat(five * 5, "-", five * 5 + 4)));
    MDDC_RETURN_NOT_OK(
        age_dim.AddOrder(five_id, ValueId(kAgeBase + 500 + five / 2)));
  }
  for (std::uint64_t a = 0; a < 120; ++a) {
    ValueId age_id(kAgeBase + a);
    MDDC_RETURN_NOT_OK(age_dim.AddValue(age_cat, age_id));
    MDDC_RETURN_NOT_OK(age_rep.Set(age_id, std::to_string(a)));
    MDDC_RETURN_NOT_OK(
        age_dim.AddOrder(age_id, ValueId(kAgeBase + 300 + a / 5)));
  }

  // ---- The Patient MO --------------------------------------------------------
  MdObject mo("Patient",
              {std::move(diagnosis), std::move(dob), std::move(residence),
               std::move(name_dim), std::move(ssn_dim), std::move(age_dim)},
              cs.registry, TemporalType::kValidTime);

  // Reference chronon for the derived Age attribute: the paper's
  // publication year.
  MDDC_ASSIGN_OR_RETURN(std::int64_t reference, ParseDate("01/01/99"));
  for (std::size_t i = 0; i < std::size(kPatientRows); ++i) {
    const PatientRow& row = kPatientRows[i];
    FactId fact = cs.registry->Atom(row.id);
    MDDC_RETURN_NOT_OK(mo.AddFact(fact));
    MDDC_RETURN_NOT_OK(mo.Relate(1, fact, patient_day[row.id]));
    MDDC_RETURN_NOT_OK(mo.Relate(2, fact, ValueId(kResidenceBase + i)));
    MDDC_RETURN_NOT_OK(mo.Relate(3, fact, ValueId(kNameBase + i)));
    MDDC_RETURN_NOT_OK(mo.Relate(4, fact, ValueId(kSsnBase + i)));
    MDDC_ASSIGN_OR_RETURN(std::int64_t born, ParseDate(row.dob));
    std::uint64_t years = static_cast<std::uint64_t>((reference - born) / 365);
    MDDC_RETURN_NOT_OK(mo.Relate(5, fact, ValueId(kAgeBase + years)));
  }
  for (const HasRow& row : kHasRows) {
    MDDC_ASSIGN_OR_RETURN(Lifespan life, During(row.valid));
    MDDC_RETURN_NOT_OK(
        mo.Relate(0, cs.registry->Atom(row.patient), ValueId(row.diagnosis),
                  life));
    cs.has_type[{row.patient, row.diagnosis}] = row.type;
  }
  MDDC_RETURN_NOT_OK(mo.Validate());
  cs.mo = std::move(mo);
  return cs;
}

Result<std::string> RenderPatientTable(const CaseStudy& cs) {
  TablePrinter printer({"ID", "Name", "SSN", "Date of Birth"});
  const MdObject& mo = cs.mo;
  for (FactId fact : mo.facts()) {
    MDDC_ASSIGN_OR_RETURN(FactTerm term, cs.registry->Get(fact));
    std::vector<std::string> row = {std::to_string(term.atom)};
    for (std::size_t dim : {cs.name, cs.ssn, cs.dob}) {
      auto pairs = mo.relation(dim).ForFact(fact);
      if (pairs.empty()) {
        row.push_back("?");
        continue;
      }
      const Dimension& dimension = mo.dimension(dim);
      ValueId value = pairs.front()->value;
      MDDC_ASSIGN_OR_RETURN(CategoryTypeIndex category,
                            dimension.CategoryOf(value));
      MDDC_ASSIGN_OR_RETURN(const Representation* rep,
                            dimension.FindRepresentation(category, "Value"));
      MDDC_ASSIGN_OR_RETURN(std::string text, rep->Get(value));
      row.push_back(std::move(text));
    }
    printer.AddRow(std::move(row));
  }
  return printer.ToString();
}

Result<std::string> RenderHasTable(const CaseStudy& cs) {
  TablePrinter printer(
      {"PatientID", "DiagnosisID", "ValidFrom", "ValidTo", "Type"});
  for (const FactDimRelation::Entry& entry :
       cs.mo.relation(cs.diagnosis).entries()) {
    MDDC_ASSIGN_OR_RETURN(FactTerm term, cs.registry->Get(entry.fact));
    auto [from, to] = FormatSpan(entry.life);
    auto type = cs.has_type.find({term.atom, entry.value.raw()});
    printer.AddRow({std::to_string(term.atom),
                    std::to_string(entry.value.raw()), from, to,
                    type != cs.has_type.end() ? type->second : ""});
  }
  return printer.ToString();
}

Result<std::string> RenderDiagnosisTable(const CaseStudy& cs) {
  TablePrinter printer({"ID", "Code", "Text", "ValidFrom", "ValidTo"});
  const Dimension& diagnosis = cs.mo.dimension(cs.diagnosis);
  std::vector<ValueId> values = diagnosis.AllValues();
  std::sort(values.begin(), values.end());
  for (ValueId value : values) {
    if (value == diagnosis.top_value()) continue;
    MDDC_ASSIGN_OR_RETURN(CategoryTypeIndex category,
                          diagnosis.CategoryOf(value));
    MDDC_ASSIGN_OR_RETURN(Lifespan membership,
                          diagnosis.MembershipOf(value));
    auto [from, to] = FormatSpan(membership);
    std::string code = "?";
    std::string text = "?";
    if (auto rep = diagnosis.FindRepresentation(category, "Code");
        rep.ok()) {
      auto entries = (*rep)->GetAll(value);
      if (!entries.empty()) code = entries.front().first;
    }
    if (auto rep = diagnosis.FindRepresentation(category, "Text");
        rep.ok()) {
      auto entries = (*rep)->GetAll(value);
      if (!entries.empty()) text = entries.front().first;
    }
    printer.AddRow({std::to_string(value.raw()), code, text, from, to});
  }
  return printer.ToString();
}

Result<std::string> RenderGroupingTable(const CaseStudy& cs) {
  TablePrinter printer(
      {"ParentID", "ChildID", "ValidFrom", "ValidTo", "Type"});
  const Dimension& diagnosis = cs.mo.dimension(cs.diagnosis);
  std::vector<const Dimension::Edge*> edges;
  for (const Dimension::Edge& edge : diagnosis.edges()) {
    edges.push_back(&edge);
  }
  std::sort(edges.begin(), edges.end(),
            [](const Dimension::Edge* a, const Dimension::Edge* b) {
              if (a->parent != b->parent) return a->parent < b->parent;
              return a->child < b->child;
            });
  for (const Dimension::Edge* edge : edges) {
    auto [from, to] = FormatSpan(edge->life);
    auto type =
        cs.grouping_type.find({edge->parent.raw(), edge->child.raw()});
    printer.AddRow({std::to_string(edge->parent.raw()),
                    std::to_string(edge->child.raw()), from, to,
                    type != cs.grouping_type.end() ? type->second : ""});
  }
  return printer.ToString();
}

std::string RenderSchemaLattices(const CaseStudy& cs) {
  std::string out =
      StrCat("Schema of the '", cs.mo.schema().fact_type(), "' MO (",
             cs.mo.dimension_count(), " dimension types)\n\n");
  for (std::size_t i = 0; i < cs.mo.dimension_count(); ++i) {
    out += cs.mo.dimension(i).type().ToString();
    out += "\n";
  }
  return out;
}

}  // namespace mddc
