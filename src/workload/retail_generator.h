#ifndef MDDC_WORKLOAD_RETAIL_GENERATOR_H_
#define MDDC_WORKLOAD_RETAIL_GENERATOR_H_

#include <cstdint>
#include <memory>

#include "common/result.h"
#include "core/md_object.h"

namespace mddc {

/// The paper's introductory retail example ("products are sold to
/// customers at certain times in certain amounts at certain prices"): a
/// Purchase fact type with Product (product < category < department),
/// Store (store < city < region), Date, Amount and Price dimensions —
/// amount and price treated as dimensions per the model's symmetric view,
/// with Sigma aggregation types so SUM/AVG apply.
struct RetailWorkloadParams {
  std::uint32_t seed = 7;
  std::size_t num_purchases = 1000;
  std::size_t num_products = 50;
  std::size_t categories = 10;
  std::size_t departments = 3;
  std::size_t num_stores = 12;
  std::size_t cities = 4;
  std::size_t regions = 2;
  std::size_t num_days = 365;
  std::int64_t max_amount = 10;
  double max_price = 500.0;
};

struct RetailMo {
  MdObject mo;
  std::size_t product_dim = 0;
  std::size_t store_dim = 1;
  std::size_t date_dim = 2;
  std::size_t amount_dim = 3;
  std::size_t price_dim = 4;
  CategoryTypeIndex product = 0;
  CategoryTypeIndex category = 0;
  CategoryTypeIndex department = 0;
  CategoryTypeIndex store = 0;
  CategoryTypeIndex city = 0;
  CategoryTypeIndex region = 0;
};

/// Generates the retail workload deterministically from the seed.
Result<RetailMo> GenerateRetailWorkload(const RetailWorkloadParams& params,
                                        std::shared_ptr<FactRegistry> registry);

}  // namespace mddc

#endif  // MDDC_WORKLOAD_RETAIL_GENERATOR_H_
