#ifndef MDDC_WORKLOAD_CLINICAL_GENERATOR_H_
#define MDDC_WORKLOAD_CLINICAL_GENERATOR_H_

#include <cstdint>
#include <memory>

#include "common/result.h"
#include "core/md_object.h"

namespace mddc {

/// Parameters of the synthetic clinical workload. Real patient registries
/// and the full ICD-10 are proprietary/licensed; this generator produces
/// the closest synthetic equivalent (see DESIGN.md): an ICD-like
/// three-level diagnosis hierarchy with the paper's 5-20 fan-out, a
/// residence hierarchy, and patients whose diagnoses exhibit exactly the
/// phenomena the paper models — many-to-many fact-dimension
/// relationships, non-strict user-defined groupings, a classification
/// change at an epoch with cross-epoch bridges, mixed-granularity
/// registrations and uncertain diagnoses.
struct ClinicalWorkloadParams {
  std::uint32_t seed = 42;

  // Population.
  std::size_t num_patients = 200;
  /// Diagnoses per patient are 1 + Poisson-ish(extra); many-to-many.
  double mean_extra_diagnoses = 2.0;

  // Diagnosis hierarchy shape (paper: "A diagnosis family consists of
  // 5-20 related low-level diagnoses. A diagnosis group consists of 5-20
  // diagnosis families").
  std::size_t num_groups = 5;
  std::size_t min_fanout = 5;
  std::size_t max_fanout = 20;

  /// Fraction of low-level diagnoses that are additionally members of a
  /// second, user-defined family (non-strictness).
  double non_strict_rate = 0.15;

  /// Fraction of the hierarchy re-coded at the epoch (01/01/1980 in the
  /// case study): affected values get time-bounded membership in the old
  /// classification, successors in the new one, and a user-defined
  /// bridge edge old <= new-group.
  double reclassified_rate = 0.2;

  /// Fraction of patient diagnoses registered at Family granularity
  /// instead of low level (requirement 9).
  double coarse_granularity_rate = 0.2;

  /// Fraction of diagnoses attached with probability < 1 (requirement 8);
  /// probabilities drawn uniformly from [min_probability, 1).
  double uncertain_rate = 0.1;
  double min_probability = 0.6;

  // Residence hierarchy.
  std::size_t num_regions = 2;
  std::size_t counties_per_region = 3;
  std::size_t areas_per_county = 4;

  /// Fraction of patients that move (a second residence period).
  double relocation_rate = 0.2;
};

/// Dimension indexes of the generated MO.
struct ClinicalMo {
  MdObject mo;
  std::size_t diagnosis_dim = 0;
  std::size_t residence_dim = 1;
  CategoryTypeIndex low_level = 0;
  CategoryTypeIndex family = 0;
  CategoryTypeIndex group = 0;
  CategoryTypeIndex area = 0;
  CategoryTypeIndex county = 0;
  CategoryTypeIndex region = 0;
  /// Number of generated low-level diagnoses / families.
  std::size_t num_low_level = 0;
  std::size_t num_families = 0;
};

/// Generates the workload deterministically from the seed.
Result<ClinicalMo> GenerateClinicalWorkload(
    const ClinicalWorkloadParams& params,
    std::shared_ptr<FactRegistry> registry);

}  // namespace mddc

#endif  // MDDC_WORKLOAD_CLINICAL_GENERATOR_H_
