#include "workload/clinical_generator.h"

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include "common/date.h"
#include "common/strings.h"

namespace mddc {
namespace {

/// Deterministic surrogate blocks.
constexpr std::uint64_t kLowBase = 100000;
constexpr std::uint64_t kFamilyBase = 200000;
constexpr std::uint64_t kGroupBase = 300000;
constexpr std::uint64_t kAreaBase = 400000;
constexpr std::uint64_t kCountyBase = 500000;
constexpr std::uint64_t kRegionBase = 600000;

Lifespan OldEra() {
  return Lifespan::ValidDuring(TemporalElement(
      Interval(*ParseDate("01/01/70"), *ParseDate("31/12/79"))));
}

Lifespan NewEra() {
  return Lifespan::ValidDuring(
      TemporalElement(Interval(*ParseDate("01/01/80"), kNowChronon)));
}

}  // namespace

Result<ClinicalMo> GenerateClinicalWorkload(
    const ClinicalWorkloadParams& params,
    std::shared_ptr<FactRegistry> registry) {
  std::mt19937 rng(params.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<std::size_t> fanout(params.min_fanout,
                                                    params.max_fanout);

  // ---- Diagnosis dimension -------------------------------------------------
  DimensionTypeBuilder diagnosis_builder("Diagnosis");
  diagnosis_builder.AddCategory("Low-level Diagnosis")
      .AddCategory("Diagnosis Family")
      .AddCategory("Diagnosis Group")
      .AddOrder("Low-level Diagnosis", "Diagnosis Family")
      .AddOrder("Diagnosis Family", "Diagnosis Group");
  MDDC_ASSIGN_OR_RETURN(auto diagnosis_type, diagnosis_builder.Build());
  Dimension diagnosis(diagnosis_type);
  CategoryTypeIndex low = *diagnosis_type->Find("Low-level Diagnosis");
  CategoryTypeIndex family = *diagnosis_type->Find("Diagnosis Family");
  CategoryTypeIndex group = *diagnosis_type->Find("Diagnosis Group");

  std::vector<ValueId> lows;
  std::vector<ValueId> families;
  std::uint64_t next_low = kLowBase;
  std::uint64_t next_family = kFamilyBase;
  Representation& code_rep = diagnosis.RepresentationFor(low, "Code");
  // Deterministic, index-based codes at every level so queries (and the
  // stress harness's statement generator, src/stress/mix.h) can name any
  // value without touching the rng stream: families are F<k> and groups
  // G<k> in creation order, and lows carry a sequential L<k> alias next
  // to their hierarchical C<g>.<f>.<l> code.
  Representation& low_seq_rep = diagnosis.RepresentationFor(low, "Seq");
  Representation& family_rep = diagnosis.RepresentationFor(family, "Code");
  Representation& group_rep = diagnosis.RepresentationFor(group, "Code");

  for (std::size_t g = 0; g < params.num_groups; ++g) {
    ValueId group_id(kGroupBase + g);
    MDDC_RETURN_NOT_OK(diagnosis.AddValue(group, group_id));
    MDDC_RETURN_NOT_OK(group_rep.Set(group_id, StrCat("G", g)));
    std::size_t family_count = fanout(rng);
    for (std::size_t f = 0; f < family_count; ++f) {
      ValueId family_id(next_family++);
      MDDC_RETURN_NOT_OK(family_rep.Set(
          family_id, StrCat("F", family_id.raw() - kFamilyBase)));
      bool reclassified = unit(rng) < params.reclassified_rate;
      if (reclassified) {
        // Old-era family: bounded membership, bridged into the new group
        // per Example 10.
        MDDC_RETURN_NOT_OK(diagnosis.AddValue(family, family_id, OldEra()));
        MDDC_RETURN_NOT_OK(
            diagnosis.AddOrder(family_id, group_id, NewEra()));
      } else {
        MDDC_RETURN_NOT_OK(diagnosis.AddValue(family, family_id));
        MDDC_RETURN_NOT_OK(diagnosis.AddOrder(family_id, group_id));
      }
      families.push_back(family_id);
      std::size_t low_count = fanout(rng);
      for (std::size_t l = 0; l < low_count; ++l) {
        ValueId low_id(next_low++);
        MDDC_RETURN_NOT_OK(diagnosis.AddValue(low, low_id));
        MDDC_RETURN_NOT_OK(code_rep.Set(
            low_id, StrCat("C", g, ".", f, ".", l)));
        MDDC_RETURN_NOT_OK(low_seq_rep.Set(
            low_id, StrCat("L", low_id.raw() - kLowBase)));
        MDDC_RETURN_NOT_OK(diagnosis.AddOrder(low_id, family_id));
        lows.push_back(low_id);
      }
    }
  }
  // Non-strict extra parents (user-defined hierarchy).
  if (!families.empty()) {
    std::uniform_int_distribution<std::size_t> pick_family(
        0, families.size() - 1);
    for (ValueId low_id : lows) {
      if (unit(rng) >= params.non_strict_rate) continue;
      ValueId extra = families[pick_family(rng)];
      // AddOrder coalesces if the (child, parent) pair already exists.
      MDDC_RETURN_NOT_OK(diagnosis.AddOrder(low_id, extra));
    }
  }

  // ---- Residence dimension ---------------------------------------------------
  DimensionTypeBuilder residence_builder("Residence");
  residence_builder.AddCategory("Area")
      .AddCategory("County")
      .AddCategory("Region")
      .AddOrder("Area", "County")
      .AddOrder("County", "Region");
  MDDC_ASSIGN_OR_RETURN(auto residence_type, residence_builder.Build());
  Dimension residence(residence_type);
  CategoryTypeIndex area = *residence_type->Find("Area");
  CategoryTypeIndex county = *residence_type->Find("County");
  CategoryTypeIndex region = *residence_type->Find("Region");
  std::vector<ValueId> areas;
  std::uint64_t next_area = kAreaBase;
  std::uint64_t next_county = kCountyBase;
  // Same deterministic naming scheme as Diagnosis: R<r>, CO<k>, A<k> in
  // creation order, rng-free.
  Representation& region_rep = residence.RepresentationFor(region, "Code");
  Representation& county_rep = residence.RepresentationFor(county, "Code");
  Representation& area_rep = residence.RepresentationFor(area, "Code");
  for (std::size_t r = 0; r < params.num_regions; ++r) {
    ValueId region_id(kRegionBase + r);
    MDDC_RETURN_NOT_OK(residence.AddValue(region, region_id));
    MDDC_RETURN_NOT_OK(region_rep.Set(region_id, StrCat("R", r)));
    for (std::size_t c = 0; c < params.counties_per_region; ++c) {
      ValueId county_id(next_county++);
      MDDC_RETURN_NOT_OK(residence.AddValue(county, county_id));
      MDDC_RETURN_NOT_OK(county_rep.Set(
          county_id, StrCat("CO", county_id.raw() - kCountyBase)));
      MDDC_RETURN_NOT_OK(residence.AddOrder(county_id, region_id));
      for (std::size_t a = 0; a < params.areas_per_county; ++a) {
        ValueId area_id(next_area++);
        MDDC_RETURN_NOT_OK(residence.AddValue(area, area_id));
        MDDC_RETURN_NOT_OK(area_rep.Set(
            area_id, StrCat("A", area_id.raw() - kAreaBase)));
        MDDC_RETURN_NOT_OK(residence.AddOrder(area_id, county_id));
        areas.push_back(area_id);
      }
    }
  }

  // ---- Patients -----------------------------------------------------------------
  ClinicalMo result{
      MdObject("Patient", {std::move(diagnosis), std::move(residence)},
               registry, TemporalType::kValidTime),
      0, 1, low, family, group, area, county, region, lows.size(),
      families.size()};
  MdObject& mo = result.mo;

  std::uniform_int_distribution<std::size_t> pick_low(0, lows.size() - 1);
  std::uniform_int_distribution<std::size_t> pick_family_dist(
      0, families.size() - 1);
  std::uniform_int_distribution<std::size_t> pick_area(0, areas.size() - 1);
  std::poisson_distribution<int> extra(params.mean_extra_diagnoses);
  const Chronon epoch = *ParseDate("01/01/80");
  std::uniform_int_distribution<Chronon> onset(*ParseDate("01/01/70"),
                                               *ParseDate("01/01/95"));

  for (std::size_t p = 0; p < params.num_patients; ++p) {
    FactId patient = registry->Atom(p + 1);
    MDDC_RETURN_NOT_OK(mo.AddFact(patient));

    const int diagnosis_count = 1 + extra(rng);
    std::set<ValueId> chosen;
    for (int d = 0; d < diagnosis_count; ++d) {
      bool coarse = unit(rng) < params.coarse_granularity_rate;
      ValueId value = coarse ? families[pick_family_dist(rng)]
                             : lows[pick_low(rng)];
      // A repeated pick would re-assert the same pair (possibly with a
      // different probability); one registration per diagnosis suffices.
      if (!chosen.insert(value).second) continue;
      // A diagnosis only while its value is a member: reclassified
      // old-era families need old-era pair times.
      MDDC_ASSIGN_OR_RETURN(Lifespan membership, mo.dimension(0).MembershipOf(value));
      Chronon start = onset(rng);
      Chronon end = unit(rng) < 0.5 ? kNowChronon
                                    : std::min<Chronon>(start + 3650,
                                                        *ParseDate("31/12/98"));
      if (end < start) end = start;
      Lifespan life = Lifespan::ValidDuring(
          TemporalElement(Interval(start, end)).Intersect(membership.valid));
      if (life.Empty()) {
        life = membership;  // fall back to the value's own era
      }
      double prob = 1.0;
      if (unit(rng) < params.uncertain_rate) {
        prob = params.min_probability +
               unit(rng) * (1.0 - params.min_probability);
      }
      MDDC_RETURN_NOT_OK(mo.Relate(0, patient, value, life, prob));
    }

    ValueId home = areas[pick_area(rng)];
    if (unit(rng) < params.relocation_rate) {
      ValueId second = areas[pick_area(rng)];
      if (second == home && areas.size() > 1) {
        second = areas[(pick_area(rng) + 1) % areas.size()];
      }
      MDDC_RETURN_NOT_OK(mo.Relate(
          1, patient, home,
          Lifespan::ValidDuring(TemporalElement(
              Interval(*ParseDate("01/01/70"), epoch - 1)))));
      MDDC_RETURN_NOT_OK(mo.Relate(
          1, patient, second,
          Lifespan::ValidDuring(
              TemporalElement(Interval(epoch, kNowChronon)))));
    } else {
      MDDC_RETURN_NOT_OK(mo.Relate(1, patient, home));
    }
  }
  MDDC_RETURN_NOT_OK(mo.Validate());
  return result;
}

}  // namespace mddc
