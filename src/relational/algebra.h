#ifndef MDDC_RELATIONAL_ALGEBRA_H_
#define MDDC_RELATIONAL_ALGEBRA_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/relation.h"

namespace mddc {

struct ExecContext;  // engine/executor.h

namespace relational {

/// Klug's relational algebra with aggregation [16]: the five classic
/// operators plus aggregate formation over grouping attributes. This is
/// the comparison class of the paper's Theorem 2 ("the algebra is at
/// least as powerful as Klug's relational algebra with aggregation") and
/// the engine under the star-schema/data-cube baselines.

/// A simple comparison condition attribute `op` constant.
struct Condition {
  enum class Op { kEq, kNe, kLt, kLe, kGt, kGe };
  std::string attribute;
  Op op = Op::kEq;
  Value constant;
};

/// sigma[condition](r).
Result<Relation> Select(const Relation& r, const Condition& condition);

/// sigma[A = B](r): attribute-to-attribute equality selection (part of
/// Klug's selection class).
Result<Relation> SelectAttrEq(const Relation& r, const std::string& a,
                              const std::string& b);

/// sigma[p](r) with an arbitrary tuple predicate.
Result<Relation> SelectWhere(
    const Relation& r,
    const std::function<Result<bool>(const Relation&, const Tuple&)>& p);

/// pi[attributes](r); duplicates collapse (set semantics).
Result<Relation> Project(const Relation& r,
                         const std::vector<std::string>& attributes);

/// rho[new names](r).
Result<Relation> RenameAttributes(const Relation& r,
                                  const std::vector<std::string>& names);

/// r u s (union-compatible).
Result<Relation> Union(const Relation& r, const Relation& s);

/// r \ s (union-compatible).
Result<Relation> Difference(const Relation& r, const Relation& s);

/// r x s; attribute names must be disjoint.
Result<Relation> Product(const Relation& r, const Relation& s);

/// Equi-join on pairs of attribute names (left, right).
Result<Relation> EquiJoin(
    const Relation& r, const Relation& s,
    const std::vector<std::pair<std::string, std::string>>& on);

/// Natural join on all shared attribute names.
Result<Relation> NaturalJoin(const Relation& r, const Relation& s);

/// An aggregate term of Klug's aggregate formation: function over an
/// attribute (attribute ignored for COUNT(*) which is spelled
/// kCountStar).
struct AggregateTerm {
  enum class Func { kCountStar, kCount, kCountDistinct, kSum, kAvg, kMin,
                    kMax };
  Func func = Func::kCountStar;
  std::string attribute;     // unused for kCountStar
  std::string result_name = "agg";
};

/// gamma[group_by; terms](r): one output tuple per distinct combination
/// of the grouping attributes, extended with the aggregate results.
///
/// With an ExecContext whose num_threads > 1 and at least
/// min_parallel_facts input tuples, grouping runs on the parallel
/// engine: workers share a scan of the tuples (in relation order) and
/// each accumulates only the groups of its hash partition, so every
/// group's member list is built whole and in scan order by one worker.
/// Partitions merge deterministically in partition order — the output
/// relation is identical, byte for byte, to the sequential one.
Result<Relation> Aggregate(const Relation& r,
                           const std::vector<std::string>& group_by,
                           const std::vector<AggregateTerm>& terms,
                           ExecContext* exec = nullptr);

}  // namespace relational
}  // namespace mddc

#endif  // MDDC_RELATIONAL_ALGEBRA_H_
