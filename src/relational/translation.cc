#include "relational/translation.h"

#include <algorithm>
#include <cstdlib>

#include "algebra/operators.h"
#include "common/strings.h"

namespace mddc {
namespace relational {
namespace {

ColumnKind KindOf(const Value& value) {
  if (value.is_null()) return ColumnKind::kNullOnly;
  if (value.is_int()) return ColumnKind::kInt;
  if (value.is_double()) return ColumnKind::kDouble;
  return ColumnKind::kString;
}

ColumnKind WidenKind(ColumnKind a, ColumnKind b) {
  if (a == ColumnKind::kNullOnly) return b;
  if (b == ColumnKind::kNullOnly) return a;
  if (a == b) return a;
  if ((a == ColumnKind::kInt && b == ColumnKind::kDouble) ||
      (a == ColumnKind::kDouble && b == ColumnKind::kInt)) {
    return ColumnKind::kDouble;
  }
  return ColumnKind::kString;
}

Value DecodeValue(const std::string& text, ColumnKind kind) {
  switch (kind) {
    case ColumnKind::kNullOnly:
      return Value::Null();
    case ColumnKind::kInt:
      return Value(static_cast<std::int64_t>(std::strtoll(text.c_str(),
                                                          nullptr, 10)));
    case ColumnKind::kDouble:
      return Value(std::strtod(text.c_str(), nullptr));
    case ColumnKind::kString:
      return Value(text);
  }
  return Value::Null();
}

}  // namespace

std::uint64_t EncodingContext::KeyForTuple(const Tuple& tuple) {
  auto it = tuple_keys_.find(tuple);
  if (it != tuple_keys_.end()) return it->second;
  std::uint64_t key = tuple_keys_.size();
  tuple_keys_.emplace(tuple, key);
  return key;
}

std::uint64_t EncodingContext::KeyForValue(const std::string& attribute,
                                           const std::string& text) {
  auto key = std::make_pair(attribute, text);
  auto it = value_keys_.find(key);
  if (it != value_keys_.end()) return it->second;
  std::uint64_t id = value_keys_.size();
  value_keys_.emplace(std::move(key), id);
  return id;
}

Result<EncodedRelation> MdFromRelation(const Relation& r,
                                       std::shared_ptr<FactRegistry> registry,
                                       TupleInterner& interner,
                                       const std::string& fact_type) {
  // Column kinds.
  std::vector<ColumnKind> kinds(r.arity(), ColumnKind::kNullOnly);
  for (const Tuple& tuple : r.tuples()) {
    for (std::size_t c = 0; c < r.arity(); ++c) {
      kinds[c] = WidenKind(kinds[c], KindOf(tuple[c]));
    }
  }

  // One simple dimension per attribute; numeric columns are Sigma-typed
  // so SUM/AVG apply (symmetric dimensions/measures, requirement 2).
  std::vector<Dimension> dimensions;
  for (std::size_t c = 0; c < r.arity(); ++c) {
    DimensionTypeBuilder builder(r.attributes()[c]);
    bool numeric =
        kinds[c] == ColumnKind::kInt || kinds[c] == ColumnKind::kDouble;
    builder.AddCategory(
        "Value", numeric ? AggregationType::kSum : AggregationType::kConstant);
    MDDC_ASSIGN_OR_RETURN(auto type, builder.Build());
    dimensions.emplace_back(type);
  }
  MdObject mo(fact_type, std::move(dimensions), std::move(registry));

  // Values per column, interned through the shared context so the same
  // attribute value gets the same id across encodings.
  std::vector<std::map<std::string, ValueId>> value_ids(r.arity());
  for (std::size_t c = 0; c < r.arity(); ++c) {
    Dimension& dimension = mo.dimension_mutable(c);
    CategoryTypeIndex bottom = dimension.type().bottom();
    Representation& rep = dimension.RepresentationFor(bottom, "Value");
    for (const Tuple& tuple : r.tuples()) {
      if (tuple[c].is_null()) continue;
      std::string text = tuple[c].ToString();
      if (value_ids[c].count(text) != 0) continue;
      ValueId id(interner.KeyForValue(r.attributes()[c], text));
      MDDC_RETURN_NOT_OK(dimension.AddValue(bottom, id));
      MDDC_RETURN_NOT_OK(rep.Set(id, text));
      value_ids[c].emplace(std::move(text), id);
    }
  }

  // Facts and fact-dimension pairs.
  for (const Tuple& tuple : r.tuples()) {
    FactId fact = mo.registry()->Atom(interner.KeyForTuple(tuple));
    MDDC_RETURN_NOT_OK(mo.AddFact(fact));
    for (std::size_t c = 0; c < r.arity(); ++c) {
      ValueId value = tuple[c].is_null()
                          ? mo.dimension(c).top_value()
                          : value_ids[c].at(tuple[c].ToString());
      MDDC_RETURN_NOT_OK(mo.Relate(c, fact, value));
    }
  }
  MDDC_RETURN_NOT_OK(mo.Validate());
  return EncodedRelation{std::move(mo), std::move(kinds)};
}

Result<Relation> RelationFromMd(const EncodedRelation& encoded) {
  const MdObject& mo = encoded.mo;
  Relation result(
      [&] {
        std::vector<std::string> names;
        for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
          names.push_back(mo.dimension(i).name());
        }
        return names;
      }());
  for (FactId fact : mo.facts()) {
    Tuple tuple;
    for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
      const Dimension& dimension = mo.dimension(i);
      auto pairs = mo.relation(i).ForFact(fact);
      if (pairs.empty() || pairs.front()->value == dimension.top_value()) {
        tuple.push_back(Value::Null());
        continue;
      }
      ValueId value = pairs.front()->value;
      MDDC_ASSIGN_OR_RETURN(CategoryTypeIndex category,
                            dimension.CategoryOf(value));
      MDDC_ASSIGN_OR_RETURN(const Representation* rep,
                            dimension.FindRepresentation(category, "Value"));
      MDDC_ASSIGN_OR_RETURN(std::string text, rep->Get(value));
      ColumnKind kind = i < encoded.kinds.size() ? encoded.kinds[i]
                                                 : ColumnKind::kString;
      tuple.push_back(DecodeValue(text, kind));
    }
    MDDC_RETURN_NOT_OK(result.Insert(std::move(tuple)));
  }
  return result;
}

Result<Relation> SimulateSelect(const Relation& r, const Condition& c) {
  auto registry = std::make_shared<FactRegistry>();
  TupleInterner interner;
  MDDC_ASSIGN_OR_RETURN(EncodedRelation encoded,
                        MdFromRelation(r, registry, interner));
  MDDC_ASSIGN_OR_RETURN(std::size_t dim,
                        encoded.mo.FindDimension(c.attribute));
  ColumnKind kind = encoded.kinds[dim];

  Predicate predicate = Predicate::True();
  if (kind == ColumnKind::kInt || kind == ColumnKind::kDouble) {
    MDDC_ASSIGN_OR_RETURN(double bound, c.constant.AsDouble());
    switch (c.op) {
      case Condition::Op::kEq:
        predicate =
            Predicate::NumericCompare(dim, Predicate::Comparison::kEq, bound);
        break;
      case Condition::Op::kNe:
        predicate =
            Predicate::NumericCompare(dim, Predicate::Comparison::kEq, bound)
                .Not()
                .And(Predicate::HasValueInCategory(
                    dim, encoded.mo.dimension(dim).type().bottom()));
        break;
      case Condition::Op::kLt:
        predicate = Predicate::NumericCompare(
            dim, Predicate::Comparison::kLess, bound);
        break;
      case Condition::Op::kLe:
        predicate = Predicate::NumericCompare(
            dim, Predicate::Comparison::kLessEq, bound);
        break;
      case Condition::Op::kGt:
        predicate = Predicate::NumericCompare(
            dim, Predicate::Comparison::kGreater, bound);
        break;
      case Condition::Op::kGe:
        predicate = Predicate::NumericCompare(
            dim, Predicate::Comparison::kGreaterEq, bound);
        break;
    }
  } else {
    CategoryTypeIndex bottom = encoded.mo.dimension(dim).type().bottom();
    Predicate equals = Predicate::RepresentationEquals(
        dim, bottom, "Value", c.constant.ToString());
    switch (c.op) {
      case Condition::Op::kEq:
        predicate = equals;
        break;
      case Condition::Op::kNe:
        predicate =
            equals.Not().And(Predicate::HasValueInCategory(dim, bottom));
        break;
      default:
        return Status::NotImplemented(
            "ordered comparison on string attributes");
    }
  }
  MDDC_ASSIGN_OR_RETURN(MdObject selected, Select(encoded.mo, predicate));
  return RelationFromMd(EncodedRelation{std::move(selected), encoded.kinds});
}

Result<Relation> SimulateProject(const Relation& r,
                                 const std::vector<std::string>& attributes) {
  auto registry = std::make_shared<FactRegistry>();
  TupleInterner interner;
  MDDC_ASSIGN_OR_RETURN(EncodedRelation encoded,
                        MdFromRelation(r, registry, interner));
  std::vector<std::size_t> dims;
  std::vector<ColumnKind> kinds;
  for (const std::string& name : attributes) {
    MDDC_ASSIGN_OR_RETURN(std::size_t dim, encoded.mo.FindDimension(name));
    dims.push_back(dim);
    kinds.push_back(encoded.kinds[dim]);
  }
  MDDC_ASSIGN_OR_RETURN(MdObject projected, Project(encoded.mo, dims));
  // The MD projection keeps all facts ("duplicate values" persist); the
  // relational projection collapses duplicates. RelationFromMd inserts
  // into a set, which performs exactly that collapse.
  return RelationFromMd(EncodedRelation{std::move(projected),
                                        std::move(kinds)});
}

Result<Relation> SimulateUnion(const Relation& r, const Relation& s) {
  auto registry = std::make_shared<FactRegistry>();
  TupleInterner interner;
  MDDC_ASSIGN_OR_RETURN(EncodedRelation er,
                        MdFromRelation(r, registry, interner));
  MDDC_ASSIGN_OR_RETURN(EncodedRelation es,
                        MdFromRelation(s, registry, interner));
  // Column kinds must agree for the schemas to be equivalent.
  MDDC_ASSIGN_OR_RETURN(MdObject united, Union(er.mo, es.mo));
  std::vector<ColumnKind> kinds(er.kinds.size());
  for (std::size_t c = 0; c < kinds.size(); ++c) {
    kinds[c] = WidenKind(er.kinds[c], es.kinds[c]);
  }
  return RelationFromMd(EncodedRelation{std::move(united), std::move(kinds)});
}

Result<Relation> SimulateDifference(const Relation& r, const Relation& s) {
  auto registry = std::make_shared<FactRegistry>();
  TupleInterner interner;
  MDDC_ASSIGN_OR_RETURN(EncodedRelation er,
                        MdFromRelation(r, registry, interner));
  MDDC_ASSIGN_OR_RETURN(EncodedRelation es,
                        MdFromRelation(s, registry, interner));
  MDDC_ASSIGN_OR_RETURN(MdObject diff, Difference(er.mo, es.mo));
  return RelationFromMd(EncodedRelation{std::move(diff), er.kinds});
}

Result<Relation> SimulateProduct(const Relation& r, const Relation& s) {
  auto registry = std::make_shared<FactRegistry>();
  TupleInterner interner;
  MDDC_ASSIGN_OR_RETURN(EncodedRelation er,
                        MdFromRelation(r, registry, interner, "Left"));
  MDDC_ASSIGN_OR_RETURN(EncodedRelation es,
                        MdFromRelation(s, registry, interner, "Right"));
  MDDC_ASSIGN_OR_RETURN(MdObject joined,
                        Join(er.mo, es.mo, JoinPredicate::kTrue));
  std::vector<ColumnKind> kinds = er.kinds;
  kinds.insert(kinds.end(), es.kinds.begin(), es.kinds.end());
  return RelationFromMd(EncodedRelation{std::move(joined), std::move(kinds)});
}

Result<Relation> SimulateSelectAttrEq(const Relation& r,
                                      const std::string& a,
                                      const std::string& b) {
  auto registry = std::make_shared<FactRegistry>();
  TupleInterner interner;
  MDDC_ASSIGN_OR_RETURN(EncodedRelation encoded,
                        MdFromRelation(r, registry, interner));
  MDDC_ASSIGN_OR_RETURN(std::size_t dim_a, encoded.mo.FindDimension(a));
  MDDC_ASSIGN_OR_RETURN(std::size_t dim_b, encoded.mo.FindDimension(b));
  MDDC_ASSIGN_OR_RETURN(
      MdObject selected,
      Select(encoded.mo, Predicate::SameRepresentedValue(dim_a, dim_b)));
  return RelationFromMd(EncodedRelation{std::move(selected), encoded.kinds});
}

Result<Relation> SimulateEquiJoin(const Relation& r, const Relation& s,
                                  const std::string& left_attribute,
                                  const std::string& right_attribute) {
  auto registry = std::make_shared<FactRegistry>();
  TupleInterner interner;
  MDDC_ASSIGN_OR_RETURN(EncodedRelation er,
                        MdFromRelation(r, registry, interner, "Left"));
  MDDC_ASSIGN_OR_RETURN(EncodedRelation es,
                        MdFromRelation(s, registry, interner, "Right"));

  // Disambiguate clashing dimension names the same way the relational
  // engine does (a trailing apostrophe on the right side).
  std::vector<std::string> right_names;
  bool right_key_renamed = false;
  for (std::size_t j = 0; j < es.mo.dimension_count(); ++j) {
    std::string name = es.mo.dimension(j).name();
    if (er.mo.FindDimension(name).ok()) {
      if (name == right_attribute) right_key_renamed = true;
      name += "'";
    }
    right_names.push_back(name);
  }
  MDDC_ASSIGN_OR_RETURN(MdObject renamed,
                        Rename(es.mo, RenameSpec{"", right_names}));

  MDDC_ASSIGN_OR_RETURN(MdObject product,
                        Join(er.mo, renamed, JoinPredicate::kTrue));
  MDDC_ASSIGN_OR_RETURN(std::size_t dim_a,
                        product.FindDimension(left_attribute));
  std::string right_lookup =
      right_key_renamed ? right_attribute + "'" : right_attribute;
  MDDC_ASSIGN_OR_RETURN(std::size_t dim_b,
                        product.FindDimension(right_lookup));
  MDDC_ASSIGN_OR_RETURN(
      MdObject matched,
      Select(product, Predicate::SameRepresentedValue(dim_a, dim_b)));

  std::vector<ColumnKind> kinds = er.kinds;
  kinds.insert(kinds.end(), es.kinds.begin(), es.kinds.end());
  return RelationFromMd(EncodedRelation{std::move(matched),
                                        std::move(kinds)});
}

Result<Relation> SimulateAggregate(const Relation& r,
                                   const std::vector<std::string>& group_by,
                                   const AggregateTerm& term) {
  auto registry = std::make_shared<FactRegistry>();
  TupleInterner interner;
  MDDC_ASSIGN_OR_RETURN(EncodedRelation encoded,
                        MdFromRelation(r, registry, interner));
  const MdObject& mo = encoded.mo;

  AggregateSpec spec{AggFunction::SetCount(), {},
                     ResultDimensionSpec::Auto(term.result_name), kNowChronon,
                     false};
  switch (term.func) {
    case AggregateTerm::Func::kCountStar:
      spec.function = AggFunction::SetCount();
      break;
    case AggregateTerm::Func::kSum: {
      MDDC_ASSIGN_OR_RETURN(std::size_t dim,
                            mo.FindDimension(term.attribute));
      spec.function = AggFunction::Sum(dim);
      break;
    }
    case AggregateTerm::Func::kAvg: {
      MDDC_ASSIGN_OR_RETURN(std::size_t dim,
                            mo.FindDimension(term.attribute));
      spec.function = AggFunction::Avg(dim);
      break;
    }
    case AggregateTerm::Func::kMin: {
      MDDC_ASSIGN_OR_RETURN(std::size_t dim,
                            mo.FindDimension(term.attribute));
      spec.function = AggFunction::Min(dim);
      break;
    }
    case AggregateTerm::Func::kMax: {
      MDDC_ASSIGN_OR_RETURN(std::size_t dim,
                            mo.FindDimension(term.attribute));
      spec.function = AggFunction::Max(dim);
      break;
    }
    case AggregateTerm::Func::kCount: {
      MDDC_ASSIGN_OR_RETURN(std::size_t dim,
                            mo.FindDimension(term.attribute));
      spec.function = AggFunction::Count(dim);
      break;
    }
    case AggregateTerm::Func::kCountDistinct:
      return Status::NotImplemented(
          "COUNT(DISTINCT) simulation; use a projection first");
  }

  std::vector<std::size_t> group_dims;
  spec.grouping.assign(mo.dimension_count(), 0);
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    spec.grouping[i] = mo.dimension(i).type().top();
  }
  for (const std::string& name : group_by) {
    MDDC_ASSIGN_OR_RETURN(std::size_t dim, mo.FindDimension(name));
    spec.grouping[dim] = mo.dimension(dim).type().bottom();
    group_dims.push_back(dim);
  }
  MDDC_ASSIGN_OR_RETURN(MdObject aggregated, AggregateFormation(mo, spec));

  // Decode: one row per group (grouping values + aggregate result).
  std::vector<std::string> attributes = group_by;
  attributes.push_back(term.result_name);
  Relation result(std::move(attributes));
  const std::size_t result_dim = aggregated.dimension_count() - 1;
  for (FactId group : aggregated.facts()) {
    Tuple row;
    for (std::size_t g = 0; g < group_dims.size(); ++g) {
      std::size_t dim = group_dims[g];
      auto pairs = aggregated.relation(dim).ForFact(group);
      if (pairs.empty()) {
        row.push_back(Value::Null());
        continue;
      }
      const Dimension& dimension = aggregated.dimension(dim);
      ValueId value = pairs.front()->value;
      if (value == dimension.top_value()) {
        row.push_back(Value::Null());
        continue;
      }
      MDDC_ASSIGN_OR_RETURN(CategoryTypeIndex category,
                            dimension.CategoryOf(value));
      MDDC_ASSIGN_OR_RETURN(const Representation* rep,
                            dimension.FindRepresentation(category, "Value"));
      MDDC_ASSIGN_OR_RETURN(std::string text, rep->Get(value));
      row.push_back(DecodeValue(text, encoded.kinds[dim]));
    }
    auto pairs = aggregated.relation(result_dim).ForFact(group);
    if (pairs.empty()) {
      row.push_back(Value::Null());
    } else {
      MDDC_ASSIGN_OR_RETURN(
          double value,
          aggregated.dimension(result_dim).NumericValueOf(
              pairs.front()->value));
      // COUNT-style results decode as integers to match the relational
      // engine's output type.
      if (term.func == AggregateTerm::Func::kCountStar ||
          term.func == AggregateTerm::Func::kCount) {
        row.push_back(Value(static_cast<std::int64_t>(value)));
      } else {
        row.push_back(Value(value));
      }
    }
    MDDC_RETURN_NOT_OK(result.Insert(std::move(row)));
  }
  return result;
}

}  // namespace relational
}  // namespace mddc
