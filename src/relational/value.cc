#include "relational/value.h"

#include <cstring>
#include <functional>

#include "common/strings.h"

namespace mddc {
namespace relational {

Result<std::int64_t> Value::AsInt() const {
  if (is_int()) return std::get<std::int64_t>(data_);
  if (is_double()) {
    return static_cast<std::int64_t>(std::get<double>(data_));
  }
  return Status::InvalidArgument(
      StrCat("value ", ToString(), " is not an integer"));
}

Result<double> Value::AsDouble() const {
  if (is_double()) return std::get<double>(data_);
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(data_));
  return Status::InvalidArgument(
      StrCat("value ", ToString(), " is not numeric"));
}

Result<std::string> Value::AsString() const {
  if (is_string()) return std::get<std::string>(data_);
  return Status::InvalidArgument(
      StrCat("value ", ToString(), " is not a string"));
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(std::get<std::int64_t>(data_));
  if (is_double()) return FormatDouble(std::get<double>(data_));
  return std::get<std::string>(data_);
}

std::size_t Value::Hash() const {
  if (is_null()) return 0x9e3779b97f4a7c15ull;
  if (TypeRank() == 1) {
    // Unified numeric equality requires a unified numeric hash.
    const double d = *AsDouble();
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    if (d == 0.0) bits = 0;  // +0.0 and -0.0 compare equal
    return std::hash<std::uint64_t>{}(bits);
  }
  return std::hash<std::string>{}(std::get<std::string>(data_));
}

int Value::TypeRank() const {
  if (is_null()) return 0;
  if (is_int() || is_double()) return 1;
  return 2;
}

bool operator<(const Value& a, const Value& b) {
  if (a.TypeRank() != b.TypeRank()) return a.TypeRank() < b.TypeRank();
  if (a.is_null()) return false;  // nulls are equal
  if (a.TypeRank() == 1) {
    return *a.AsDouble() < *b.AsDouble();
  }
  return std::get<std::string>(a.data_) < std::get<std::string>(b.data_);
}

bool operator==(const Value& a, const Value& b) {
  if (a.TypeRank() != b.TypeRank()) return false;
  if (a.is_null()) return true;
  if (a.TypeRank() == 1) return *a.AsDouble() == *b.AsDouble();
  return std::get<std::string>(a.data_) == std::get<std::string>(b.data_);
}

}  // namespace relational
}  // namespace mddc
