#ifndef MDDC_RELATIONAL_TRANSLATION_H_
#define MDDC_RELATIONAL_TRANSLATION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/md_object.h"
#include "relational/algebra.h"
#include "relational/relation.h"

namespace mddc {
namespace relational {

/// Constructive demonstration of Theorem 2 ("the algebra is at least as
/// powerful as Klug's relational algebra with aggregation"): relations
/// are encoded as MOs — one fact per tuple, one simple dimension per
/// attribute — and each relational operator is simulated by the
/// multidimensional algebra, decoding back to a relation. The
/// relational_equivalence tests check simulate(op)(r) == op(r) on many
/// instances.

/// Shared identity interner: relations encoded with the same context (and
/// registry) map equal tuples to the same fact and equal attribute values
/// to the same dimension value id. Both are what make simulated
/// union/difference/join value-correct — the paper's surrogates are
/// globally unique, so one real-world value must have one id.
class EncodingContext {
 public:
  /// Fact identity of a tuple.
  std::uint64_t KeyForTuple(const Tuple& tuple);

  /// Dimension-value identity of an attribute value (by attribute name
  /// and rendered text).
  std::uint64_t KeyForValue(const std::string& attribute,
                            const std::string& text);

 private:
  std::map<Tuple, std::uint64_t> tuple_keys_;
  std::map<std::pair<std::string, std::string>, std::uint64_t> value_keys_;
};

/// Backwards-compatible alias.
using TupleInterner = EncodingContext;

/// The kind of values an attribute column held, needed to decode
/// representation strings back into typed values.
enum class ColumnKind { kNullOnly, kInt, kDouble, kString };

/// A relation encoded as a multidimensional object.
struct EncodedRelation {
  MdObject mo;
  std::vector<ColumnKind> kinds;
};

/// Encodes `r`: each attribute becomes a dimension whose bottom category
/// carries the attribute's values (with a "Value" representation); each
/// tuple becomes a fact related to its attribute values (nulls map to the
/// top value, the paper's convention for unknown characterizations).
Result<EncodedRelation> MdFromRelation(const Relation& r,
                                       std::shared_ptr<FactRegistry> registry,
                                       TupleInterner& interner,
                                       const std::string& fact_type = "Tuple");

/// Decodes an encoded MO back to a relation (one row per fact).
Result<Relation> RelationFromMd(const EncodedRelation& encoded);

/// Simulations of the relational operators through the multidimensional
/// algebra. Each encodes, applies MD operators only, and decodes.
Result<Relation> SimulateSelect(const Relation& r, const Condition& c);
Result<Relation> SimulateProject(const Relation& r,
                                 const std::vector<std::string>& attributes);
Result<Relation> SimulateUnion(const Relation& r, const Relation& s);
Result<Relation> SimulateDifference(const Relation& r, const Relation& s);
Result<Relation> SimulateProduct(const Relation& r, const Relation& s);

/// Simulates gamma[group_by; term] with a single aggregate term via
/// aggregate formation.
Result<Relation> SimulateAggregate(const Relation& r,
                                   const std::vector<std::string>& group_by,
                                   const AggregateTerm& term);

/// Simulates sigma[a = b](r) (attribute-to-attribute selection) through
/// the MD algebra's SameRepresentedValue predicate.
Result<Relation> SimulateSelectAttrEq(const Relation& r,
                                      const std::string& a,
                                      const std::string& b);

/// Simulates the equi-join r |x|_{a=b} s: Cartesian identity-join in the
/// MD algebra followed by a SameRepresentedValue selection, decoded back
/// to the product schema restricted to matching rows.
Result<Relation> SimulateEquiJoin(const Relation& r, const Relation& s,
                                  const std::string& left_attribute,
                                  const std::string& right_attribute);

}  // namespace relational
}  // namespace mddc

#endif  // MDDC_RELATIONAL_TRANSLATION_H_
