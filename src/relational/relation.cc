#include "relational/relation.h"

#include <algorithm>

#include "common/strings.h"
#include "common/table_printer.h"

namespace mddc {
namespace relational {

Result<std::size_t> Relation::AttributeIndex(const std::string& name) const {
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i] == name) return i;
  }
  return Status::NotFound(StrCat("relation has no attribute '", name, "'"));
}

Status Relation::Insert(Tuple tuple) {
  if (tuple.size() != attributes_.size()) {
    return Status::InvalidArgument(
        StrCat("tuple arity ", tuple.size(), " does not match relation arity ",
               attributes_.size()));
  }
  auto it = std::lower_bound(tuples_.begin(), tuples_.end(), tuple);
  if (it != tuples_.end() && *it == tuple) return Status::OK();
  tuples_.insert(it, std::move(tuple));
  return Status::OK();
}

bool Relation::Contains(const Tuple& tuple) const {
  return std::binary_search(tuples_.begin(), tuples_.end(), tuple);
}

std::string Relation::ToString() const {
  TablePrinter printer(attributes_);
  for (const Tuple& tuple : tuples_) {
    std::vector<std::string> row;
    row.reserve(tuple.size());
    for (const Value& value : tuple) row.push_back(value.ToString());
    printer.AddRow(std::move(row));
  }
  return printer.ToString();
}

}  // namespace relational
}  // namespace mddc
