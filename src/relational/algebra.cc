#include "relational/algebra.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <set>

#include "common/strings.h"
#include "engine/executor.h"
#include "engine/groupby_kernel.h"

namespace mddc {
namespace relational {
namespace {

Status RequireUnionCompatible(const Relation& r, const Relation& s,
                              const char* op) {
  if (r.attributes() != s.attributes()) {
    return Status::SchemaMismatch(
        StrCat(op, " requires union-compatible relations"));
  }
  return Status::OK();
}

}  // namespace

Result<Relation> Select(const Relation& r, const Condition& condition) {
  MDDC_ASSIGN_OR_RETURN(std::size_t index,
                        r.AttributeIndex(condition.attribute));
  Relation result(r.attributes());
  for (const Tuple& tuple : r.tuples()) {
    const Value& value = tuple[index];
    bool keep = false;
    switch (condition.op) {
      case Condition::Op::kEq:
        keep = value == condition.constant;
        break;
      case Condition::Op::kNe:
        keep = value != condition.constant;
        break;
      case Condition::Op::kLt:
        keep = value < condition.constant;
        break;
      case Condition::Op::kLe:
        keep = value < condition.constant || value == condition.constant;
        break;
      case Condition::Op::kGt:
        keep = condition.constant < value;
        break;
      case Condition::Op::kGe:
        keep = condition.constant < value || value == condition.constant;
        break;
    }
    if (keep) MDDC_RETURN_NOT_OK(result.Insert(tuple));
  }
  return result;
}

Result<Relation> SelectAttrEq(const Relation& r, const std::string& a,
                              const std::string& b) {
  MDDC_ASSIGN_OR_RETURN(std::size_t ia, r.AttributeIndex(a));
  MDDC_ASSIGN_OR_RETURN(std::size_t ib, r.AttributeIndex(b));
  Relation result(r.attributes());
  for (const Tuple& tuple : r.tuples()) {
    if (!tuple[ia].is_null() && tuple[ia] == tuple[ib]) {
      MDDC_RETURN_NOT_OK(result.Insert(tuple));
    }
  }
  return result;
}

Result<Relation> SelectWhere(
    const Relation& r,
    const std::function<Result<bool>(const Relation&, const Tuple&)>& p) {
  Relation result(r.attributes());
  for (const Tuple& tuple : r.tuples()) {
    MDDC_ASSIGN_OR_RETURN(bool keep, p(r, tuple));
    if (keep) MDDC_RETURN_NOT_OK(result.Insert(tuple));
  }
  return result;
}

Result<Relation> Project(const Relation& r,
                         const std::vector<std::string>& attributes) {
  std::vector<std::size_t> indexes;
  for (const std::string& name : attributes) {
    MDDC_ASSIGN_OR_RETURN(std::size_t index, r.AttributeIndex(name));
    indexes.push_back(index);
  }
  Relation result(attributes);
  for (const Tuple& tuple : r.tuples()) {
    Tuple projected;
    projected.reserve(indexes.size());
    for (std::size_t index : indexes) projected.push_back(tuple[index]);
    MDDC_RETURN_NOT_OK(result.Insert(std::move(projected)));
  }
  return result;
}

Result<Relation> RenameAttributes(const Relation& r,
                                  const std::vector<std::string>& names) {
  if (names.size() != r.arity()) {
    return Status::InvalidArgument(
        StrCat("rename got ", names.size(), " names for arity ", r.arity()));
  }
  Relation result(names);
  for (const Tuple& tuple : r.tuples()) {
    MDDC_RETURN_NOT_OK(result.Insert(tuple));
  }
  return result;
}

Result<Relation> Union(const Relation& r, const Relation& s) {
  MDDC_RETURN_NOT_OK(RequireUnionCompatible(r, s, "union"));
  Relation result = r;
  for (const Tuple& tuple : s.tuples()) {
    MDDC_RETURN_NOT_OK(result.Insert(tuple));
  }
  return result;
}

Result<Relation> Difference(const Relation& r, const Relation& s) {
  MDDC_RETURN_NOT_OK(RequireUnionCompatible(r, s, "difference"));
  Relation result(r.attributes());
  for (const Tuple& tuple : r.tuples()) {
    if (!s.Contains(tuple)) MDDC_RETURN_NOT_OK(result.Insert(tuple));
  }
  return result;
}

Result<Relation> Product(const Relation& r, const Relation& s) {
  std::vector<std::string> attributes = r.attributes();
  for (const std::string& name : s.attributes()) {
    if (std::find(attributes.begin(), attributes.end(), name) !=
        attributes.end()) {
      return Status::InvalidArgument(
          StrCat("product operands share attribute '", name,
                 "'; rename first"));
    }
    attributes.push_back(name);
  }
  Relation result(std::move(attributes));
  for (const Tuple& left : r.tuples()) {
    for (const Tuple& right : s.tuples()) {
      Tuple combined = left;
      combined.insert(combined.end(), right.begin(), right.end());
      MDDC_RETURN_NOT_OK(result.Insert(std::move(combined)));
    }
  }
  return result;
}

Result<Relation> EquiJoin(
    const Relation& r, const Relation& s,
    const std::vector<std::pair<std::string, std::string>>& on) {
  std::vector<std::pair<std::size_t, std::size_t>> indexes;
  for (const auto& [left, right] : on) {
    MDDC_ASSIGN_OR_RETURN(std::size_t li, r.AttributeIndex(left));
    MDDC_ASSIGN_OR_RETURN(std::size_t ri, s.AttributeIndex(right));
    indexes.emplace_back(li, ri);
  }
  std::vector<std::string> attributes = r.attributes();
  for (const std::string& name : s.attributes()) {
    std::string out = name;
    if (std::find(attributes.begin(), attributes.end(), out) !=
        attributes.end()) {
      out += "'";
    }
    attributes.push_back(out);
  }
  Relation result(std::move(attributes));

  // Hash the right side on its join key.
  std::map<std::vector<Value>, std::vector<const Tuple*>> index;
  for (const Tuple& right : s.tuples()) {
    std::vector<Value> key;
    key.reserve(indexes.size());
    for (const auto& [li, ri] : indexes) {
      (void)li;
      key.push_back(right[ri]);
    }
    index[std::move(key)].push_back(&right);
  }
  for (const Tuple& left : r.tuples()) {
    std::vector<Value> key;
    key.reserve(indexes.size());
    for (const auto& [li, ri] : indexes) {
      (void)ri;
      key.push_back(left[li]);
    }
    auto it = index.find(key);
    if (it == index.end()) continue;
    for (const Tuple* right : it->second) {
      Tuple combined = left;
      combined.insert(combined.end(), right->begin(), right->end());
      MDDC_RETURN_NOT_OK(result.Insert(std::move(combined)));
    }
  }
  return result;
}

Result<Relation> NaturalJoin(const Relation& r, const Relation& s) {
  std::vector<std::pair<std::string, std::string>> on;
  for (const std::string& name : r.attributes()) {
    if (s.AttributeIndex(name).ok()) on.emplace_back(name, name);
  }
  if (on.empty()) return Product(r, s);
  MDDC_ASSIGN_OR_RETURN(Relation joined, EquiJoin(r, s, on));
  // Drop the duplicated right-side join attributes (renamed with ').
  std::vector<std::string> keep;
  for (const std::string& name : joined.attributes()) {
    if (name.size() > 1 && name.back() == '\'') {
      std::string base = name.substr(0, name.size() - 1);
      bool is_join_attribute = false;
      for (const auto& [left, right] : on) {
        (void)left;
        if (right == base) is_join_attribute = true;
      }
      if (is_join_attribute) continue;
    }
    keep.push_back(name);
  }
  return Project(joined, keep);
}

namespace {

using GroupMembers = std::vector<const Tuple*>;
using GroupMap = std::map<std::vector<Value>, GroupMembers>;

std::uint64_t GroupKeyHash(const std::vector<Value>& key) {
  std::uint64_t h = 1469598103934665603ull;
  for (const Value& value : key) {
    h ^= value.Hash();
    h *= 1099511628211ull;
  }
  return h;
}

/// One worker's share of a flat-hash group-by run: keys intern through the
/// open-addressing index into dense ordinals; `keys` and `members` grow in
/// lockstep with the assigned ordinals.
struct FlatPartition {
  FlatHashGroupIndex index;
  std::vector<std::vector<Value>> keys;
  std::vector<GroupMembers> members;
};

/// One output tuple: the group key extended with the aggregate results,
/// computed over the members in scan order (so floating-point sums
/// accumulate identically on either execution path). Pure — safe to
/// evaluate distinct groups concurrently.
Result<Tuple> GroupRow(const std::vector<Value>& key,
                       const GroupMembers& members,
                       const std::vector<AggregateTerm>& terms,
                       const std::vector<std::size_t>& term_indexes) {
  Tuple out = key;
  for (std::size_t t = 0; t < terms.size(); ++t) {
    const AggregateTerm& term = terms[t];
    const std::size_t index = term_indexes[t];
    switch (term.func) {
      case AggregateTerm::Func::kCountStar:
        out.push_back(Value(static_cast<std::int64_t>(members.size())));
        break;
      case AggregateTerm::Func::kCount: {
        std::int64_t count = 0;
        for (const Tuple* tuple : members) {
          if (!(*tuple)[index].is_null()) ++count;
        }
        out.push_back(Value(count));
        break;
      }
      case AggregateTerm::Func::kCountDistinct: {
        std::set<Value> distinct;
        for (const Tuple* tuple : members) {
          if (!(*tuple)[index].is_null()) distinct.insert((*tuple)[index]);
        }
        out.push_back(Value(static_cast<std::int64_t>(distinct.size())));
        break;
      }
      case AggregateTerm::Func::kSum:
      case AggregateTerm::Func::kAvg: {
        double sum = 0.0;
        std::int64_t count = 0;
        for (const Tuple* tuple : members) {
          if ((*tuple)[index].is_null()) continue;
          MDDC_ASSIGN_OR_RETURN(double value, (*tuple)[index].AsDouble());
          sum += value;
          ++count;
        }
        if (term.func == AggregateTerm::Func::kSum) {
          out.push_back(Value(sum));
        } else {
          out.push_back(count == 0 ? Value::Null() : Value(sum / count));
        }
        break;
      }
      case AggregateTerm::Func::kMin:
      case AggregateTerm::Func::kMax: {
        bool first = true;
        Value best;
        for (const Tuple* tuple : members) {
          const Value& value = (*tuple)[index];
          if (value.is_null()) continue;
          if (first || (term.func == AggregateTerm::Func::kMin
                            ? value < best
                            : best < value)) {
            best = value;
            first = false;
          }
        }
        out.push_back(first ? Value::Null() : best);
        break;
      }
    }
  }
  return out;
}

}  // namespace

Result<Relation> Aggregate(const Relation& r,
                           const std::vector<std::string>& group_by,
                           const std::vector<AggregateTerm>& terms,
                           ExecContext* exec) {
  std::vector<std::size_t> group_indexes;
  for (const std::string& name : group_by) {
    MDDC_ASSIGN_OR_RETURN(std::size_t index, r.AttributeIndex(name));
    group_indexes.push_back(index);
  }
  std::vector<std::size_t> term_indexes;
  for (const AggregateTerm& term : terms) {
    if (term.func == AggregateTerm::Func::kCountStar) {
      term_indexes.push_back(0);
      continue;
    }
    MDDC_ASSIGN_OR_RETURN(std::size_t index,
                          r.AttributeIndex(term.attribute));
    term_indexes.push_back(index);
  }

  const bool parallel =
      exec != nullptr && exec->WantsParallel(r.tuples().size());

  // Group the tuples, then present the groups as one key-ordered view.
  // Relational group-by has no summarizability precondition (every Klug
  // aggregate here is computed from the whole member list, never merged
  // from partials), so the parallel path only needs groups built whole:
  // workers share a scan of the tuples, each interning only the keys of
  // its hash partition, so the partitions are disjoint and one final key
  // sort restores the order the std::map baseline emits.
  //
  // Any caller with an execution context gets the flat-hash engine
  // (docs/groupby_kernel.md) — open-addressing interning instead of
  // per-key map nodes; context-free callers keep the ordered map as the
  // differential baseline.
  using OrderedGroup = std::pair<const std::vector<Value>*,
                                 const GroupMembers*>;
  std::vector<OrderedGroup> ordered;
  GroupMap groups;                        // legacy engine storage
  std::vector<FlatPartition> partitions;  // flat-hash engine storage
  if (exec != nullptr) {
    ++exec->stats.flat_hash_runs;
    const std::size_t num_partitions = parallel ? exec->num_threads : 1;
    partitions.resize(num_partitions);
    auto scan_partition = [&](std::size_t p) {
      FlatPartition& part = partitions[p];
      std::vector<Value> key;
      for (const Tuple& tuple : r.tuples()) {
        key.clear();
        for (std::size_t index : group_indexes) key.push_back(tuple[index]);
        const std::uint64_t hash = GroupKeyHash(key);
        if (num_partitions > 1 && hash % num_partitions != p) continue;
        bool inserted = false;
        const std::uint32_t g = part.index.FindOrInsert(
            hash, static_cast<std::uint32_t>(part.keys.size()),
            [&](std::uint32_t ordinal) { return part.keys[ordinal] == key; },
            &inserted);
        if (inserted) {
          part.keys.push_back(key);
          part.members.emplace_back();
        }
        part.members[g].push_back(&tuple);
      }
    };
    if (parallel) {
      exec->pool().ParallelFor(num_partitions, scan_partition);
      exec->stats.tasks += num_partitions;
      exec->stats.partitions += num_partitions;
    } else {
      scan_partition(0);
    }
    std::size_t total = 0;
    for (const FlatPartition& part : partitions) total += part.keys.size();
    ordered.reserve(total);
    const auto merge_start = std::chrono::steady_clock::now();
    for (const FlatPartition& part : partitions) {
      for (std::size_t g = 0; g < part.keys.size(); ++g) {
        ordered.push_back({&part.keys[g], &part.members[g]});
      }
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const OrderedGroup& a, const OrderedGroup& b) {
                return *a.first < *b.first;
              });
    if (parallel) {
      exec->stats.merge_nanos += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - merge_start)
              .count());
    }
  } else {
    for (const Tuple& tuple : r.tuples()) {
      std::vector<Value> key;
      key.reserve(group_indexes.size());
      for (std::size_t index : group_indexes) key.push_back(tuple[index]);
      groups[std::move(key)].push_back(&tuple);
    }
    ordered.reserve(groups.size());
    for (const auto& [key, members] : groups) {
      ordered.push_back({&key, &members});
    }
  }

  std::vector<std::string> attributes = group_by;
  for (const AggregateTerm& term : terms) {
    attributes.push_back(term.result_name);
  }
  Relation result(std::move(attributes));

  if (parallel) {
    // Evaluate groups concurrently into per-group slots (first error in
    // group order wins — no exceptions cross the pool boundary), then
    // insert sequentially in key order.
    std::vector<Tuple> rows(ordered.size());
    std::vector<Status> statuses(ordered.size());
    const std::size_t chunks =
        std::min(std::max<std::size_t>(ordered.size(), 1),
                 exec->num_threads * 4);
    exec->pool().ParallelFor(chunks, [&](std::size_t chunk) {
      const std::size_t begin = chunk * ordered.size() / chunks;
      const std::size_t end = (chunk + 1) * ordered.size() / chunks;
      for (std::size_t g = begin; g < end; ++g) {
        Result<Tuple> row = GroupRow(*ordered[g].first, *ordered[g].second,
                                     terms, term_indexes);
        if (row.ok()) {
          rows[g] = std::move(*row);
        } else {
          statuses[g] = row.status();
        }
      }
    });
    exec->stats.tasks += chunks;
    for (const Status& status : statuses) {
      MDDC_RETURN_NOT_OK(status);
    }
    ++exec->stats.parallel_runs;
    for (Tuple& row : rows) {
      MDDC_RETURN_NOT_OK(result.Insert(std::move(row)));
    }
  } else {
    for (const OrderedGroup& group : ordered) {
      MDDC_ASSIGN_OR_RETURN(
          Tuple row, GroupRow(*group.first, *group.second, terms,
                              term_indexes));
      MDDC_RETURN_NOT_OK(result.Insert(std::move(row)));
    }
  }
  return result;
}

}  // namespace relational
}  // namespace mddc
