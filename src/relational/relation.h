#ifndef MDDC_RELATIONAL_RELATION_H_
#define MDDC_RELATIONAL_RELATION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/value.h"

namespace mddc {
namespace relational {

/// A tuple of attribute values.
using Tuple = std::vector<Value>;

/// A relation with set semantics: a named header of attribute names and a
/// duplicate-free, sorted set of tuples. Klug's algebra (and classic
/// relational theory) is defined over sets; SQL-style bags are emulated
/// where needed by carrying an explicit count column.
class Relation {
 public:
  Relation() = default;
  explicit Relation(std::vector<std::string> attributes)
      : attributes_(std::move(attributes)) {}

  const std::vector<std::string>& attributes() const { return attributes_; }
  std::size_t arity() const { return attributes_.size(); }

  /// Index of an attribute by name.
  Result<std::size_t> AttributeIndex(const std::string& name) const;

  /// Inserts a tuple (set semantics: duplicates are absorbed). The tuple
  /// must match the arity.
  Status Insert(Tuple tuple);

  const std::vector<Tuple>& tuples() const { return tuples_; }
  std::size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// True iff `tuple` is in the relation.
  bool Contains(const Tuple& tuple) const;

  /// Same attributes in the same order and the same tuple set.
  friend bool operator==(const Relation& a, const Relation& b) {
    return a.attributes_ == b.attributes_ && a.tuples_ == b.tuples_;
  }

  /// Renders as an aligned ASCII table.
  std::string ToString() const;

 private:
  std::vector<std::string> attributes_;
  std::vector<Tuple> tuples_;  // sorted, unique
};

}  // namespace relational
}  // namespace mddc

#endif  // MDDC_RELATIONAL_RELATION_H_
