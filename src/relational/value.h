#ifndef MDDC_RELATIONAL_VALUE_H_
#define MDDC_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"

namespace mddc {
namespace relational {

/// A relational attribute value: null, integer, double or string. The
/// relational substrate implements Klug's relational algebra with
/// aggregation [Klug 1982], the yardstick of the paper's Theorem 2, and
/// doubles as the storage model of the Kimball star-schema baseline.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  explicit Value(std::int64_t value) : data_(value) {}
  explicit Value(double value) : data_(value) {}
  explicit Value(std::string value) : data_(std::move(value)) {}
  static Value Null() { return Value(); }

  bool is_null() const {
    return std::holds_alternative<std::monostate>(data_);
  }
  bool is_int() const { return std::holds_alternative<std::int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const {
    return std::holds_alternative<std::string>(data_);
  }

  Result<std::int64_t> AsInt() const;
  /// Numeric view: ints widen to double.
  Result<double> AsDouble() const;
  Result<std::string> AsString() const;

  /// Rendering for table output ("NULL", "42", "3.5", "text").
  std::string ToString() const;

  /// Hash consistent with operator== — in particular Value(3) and
  /// Value(3.0) compare equal, so numbers hash through their double
  /// view. Used by the parallel group-by to partition group keys.
  std::size_t Hash() const;

  /// Total order: null < numbers (by value, int/double unified) <
  /// strings.
  friend bool operator<(const Value& a, const Value& b);
  friend bool operator==(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

 private:
  int TypeRank() const;

  std::variant<std::monostate, std::int64_t, double, std::string> data_;
};

}  // namespace relational
}  // namespace mddc

#endif  // MDDC_RELATIONAL_VALUE_H_
