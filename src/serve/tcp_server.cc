#include "serve/tcp_server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include "common/strings.h"

namespace mddc {
namespace serve {
namespace {

/// Writes the whole buffer, retrying on short writes and EINTR. A false
/// return means the peer is gone; the caller drops the connection.
bool SendAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// One full reply: status line, optional payload lines, '.' terminator.
std::string Reply(const std::string& status_line, const std::string& payload) {
  std::string reply = status_line;
  reply += '\n';
  if (!payload.empty()) {
    reply += payload;
    if (reply.back() != '\n') reply += '\n';
  }
  reply += ".\n";
  return reply;
}

}  // namespace

Status TcpServer::Start(std::uint16_t port) {
  if (listen_fd_ >= 0) {
    return Status::InvariantViolation("TcpServer already started");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::InvariantViolation(
        StrCat("socket() failed: ", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::InvariantViolation(StrCat("bind() failed: ", error));
  }
  if (::listen(fd, /*backlog=*/16) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::InvariantViolation(StrCat("listen() failed: ", error));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::InvariantViolation(
        StrCat("getsockname() failed: ", error));
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpServer::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_release);
  // Unblock accept() and every in-flight recv(), then join.
  ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
}

void TcpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (or unrecoverable): exit the loop
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void TcpServer::ServeConnection(int fd) {
  ServerSession session = server_->Connect();
  std::string buffer;
  char chunk[4096];
  bool open = true;
  // Set while discarding the tail of an oversized request line: the ERR
  // reply has already been sent, and everything up to the next newline
  // belongs to the rejected line.
  bool skipping_line = false;
  while (open && !stopping_.load(std::memory_order_acquire)) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer closed or connection shut down
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t newline;
    while (open && (newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (skipping_line) {  // tail of a rejected oversized line
        skipping_line = false;
        continue;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (line.size() > kMaxLineBytes) {
        if (!SendAll(fd, Reply(StrCat("ERR request line exceeds ",
                                      kMaxLineBytes, " bytes"),
                               ""))) {
          open = false;
        }
        continue;
      }
      if (line == ".quit") {
        open = false;
        break;
      }
      std::string reply;
      if (line == ".epoch") {
        reply = Reply(StrCat("OK ", server_->store().epoch()), "");
      } else if (line == ".stats") {
        reply = Reply("OK", session.StatsJson());
      } else {
        auto result = session.Execute(line);
        reply = result.ok()
                    ? Reply(StrCat("OK ", result->rows.size()),
                            result->ToString())
                    : Reply(StrCat("ERR ", result.status().message()), "");
      }
      if (!SendAll(fd, reply)) open = false;
    }
    // A partial line that already exceeds the cap can never become a
    // valid request; reject it now (one ERR) and discard until its
    // newline arrives instead of buffering it without bound.
    if (open && buffer.size() > kMaxLineBytes) {
      if (!skipping_line) {
        skipping_line = true;
        if (!SendAll(fd, Reply(StrCat("ERR request line exceeds ",
                                      kMaxLineBytes, " bytes"),
                               ""))) {
          open = false;
        }
      }
      buffer.clear();
    }
  }
  ::close(fd);
  // The thread object stays in conn_threads_ until Stop() joins it;
  // closed-connection threads are cheap (they are done running).
}

}  // namespace serve
}  // namespace mddc
