#include "serve/mdql_server.h"

#include <cstdio>
#include <utility>

#include <algorithm>

#include "common/strings.h"
#include "core/fact.h"
#include "engine/advisor.h"
#include "mdql/bind.h"
#include "mdql/parser.h"

namespace mddc {
namespace serve {

std::string SessionStats::ToJson() const {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "{\"queries\": %llu, \"reads\": %llu, \"writes\": %llu, "
                "\"errors\": %llu, \"view_rebuilds\": %llu, "
                "\"last_epoch\": %llu, \"exec\": ",
                static_cast<unsigned long long>(queries),
                static_cast<unsigned long long>(reads),
                static_cast<unsigned long long>(writes),
                static_cast<unsigned long long>(errors),
                static_cast<unsigned long long>(view_rebuilds),
                static_cast<unsigned long long>(last_epoch));
  return StrCat(buffer, exec.ToJson(), "}");
}

Result<mdql::QueryResult> ServerSession::Execute(const std::string& statement) {
  ++stats_.queries;
  auto parsed = mdql::Parse(statement);
  if (!parsed.ok()) {
    ++stats_.errors;
    return parsed.status();
  }
  auto result = mdql::IsMutating(*parsed) ? ExecuteWrite(*parsed)
                                          : ExecuteRead(*parsed);
  if (!result.ok()) ++stats_.errors;
  return result;
}

Result<mdql::QueryResult> ServerSession::ExecuteRead(
    const mdql::Statement& statement) {
  ++stats_.reads;
  // The whole read-side synchronization: one acquire load. Everything
  // reachable from the snapshot is immutable.
  const std::shared_ptr<const MoSnapshot> snapshot = store_->Pin();
  stats_.last_epoch = snapshot->epoch();

  const std::string name(mdql::StatementMoName(statement));
  auto it = views_.find(name);
  if (it == views_.end() || it->second.epoch != snapshot->epoch()) {
    const PublishedMo* entry = snapshot->Find(name);
    if (entry == nullptr) {
      return Status::NotFound(StrCat("no MO named '", name,
                                     "' is published at epoch ",
                                     snapshot->epoch()));
    }
    // (Re)build the session's private view: the published MO with
    // derived-fact interning redirected into a session-local registry
    // fork, so executing on it never writes shared state.
    View view;
    view.epoch = snapshot->epoch();
    MDDC_RETURN_NOT_OK(view.session.Register(
        name,
        entry->mo().WithRegistry(FactRegistry::ForkOf(entry->mo().registry()))));
    it = views_.insert_or_assign(name, std::move(view)).first;
    ++stats_.view_rebuilds;
  }

  ExecContext exec(threads_per_query_, /*min_facts=*/4096);
  auto result = it->second.session.Execute(statement, &exec);
  stats_.exec.MergeFrom(exec.stats);
  if (result.ok() && statement.select.has_value()) {
    if (auto mo = it->second.session.Get(name); mo.ok()) {
      LogSelect(**mo, name, *statement.select);
    }
  }
  return result;
}

void ServerSession::LogSelect(const MdObject& mo, const std::string& name,
                              const mdql::SelectStatement& select) {
  std::vector<CategoryTypeIndex> grouping(mo.dimension_count());
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    grouping[i] = mo.dimension(i).type().top();
  }
  for (const mdql::GroupRef& group : select.group_by) {
    auto level = mdql::Resolve(mo, group.level);
    if (!level.ok()) return;
    grouping[level->dim] = level->category;
  }
  std::vector<LoggedQuery>& log = query_log_[name];
  for (const mdql::AggRef& agg : select.aggregates) {
    auto function = mdql::BuildAggFunction(mo, agg);
    if (!function.ok()) continue;
    auto match = std::find_if(log.begin(), log.end(), [&](LoggedQuery& q) {
      return q.function.kind() == function->kind() &&
             q.function.args() == function->args() && q.grouping == grouping;
    });
    if (match != log.end()) {
      ++match->count;
    } else {
      log.push_back(LoggedQuery{*function, grouping, 1});
    }
  }
}

Status ServerSession::AdviseWarmAggregates(const std::string& name,
                                           std::size_t max_materializations) {
  auto it = query_log_.find(name);
  if (it == query_log_.end() || it->second.empty()) return Status::OK();

  // The advisor needs the published MO (cost model sizes); advising
  // against a view copy would be equivalent but keeps the pin explicit.
  const std::shared_ptr<const MoSnapshot> snapshot = store_->Pin();
  const PublishedMo* entry = snapshot->Find(name);
  if (entry == nullptr) {
    return Status::NotFound(
        StrCat("no MO named '", name, "' is published"));
  }

  // One advisor run per distinct function, highest total frequency
  // first, sharing the materialization budget.
  struct FnWorkload {
    const AggFunction* function;
    std::vector<AdvisorQuery> queries;
    double total = 0.0;
  };
  std::vector<FnWorkload> workloads;
  for (const LoggedQuery& logged : it->second) {
    auto match = std::find_if(
        workloads.begin(), workloads.end(), [&](const FnWorkload& w) {
          return w.function->kind() == logged.function.kind() &&
                 w.function->args() == logged.function.args();
        });
    if (match == workloads.end()) {
      workloads.push_back(FnWorkload{&logged.function, {}, 0.0});
      match = std::prev(workloads.end());
    }
    match->queries.push_back(
        AdvisorQuery{logged.grouping, static_cast<double>(logged.count)});
    match->total += static_cast<double>(logged.count);
  }
  std::stable_sort(workloads.begin(), workloads.end(),
                   [](const FnWorkload& a, const FnWorkload& b) {
                     return a.total > b.total;
                   });

  std::size_t budget = max_materializations;
  for (const FnWorkload& workload : workloads) {
    if (budget == 0) break;
    MaterializationAdvisor advisor(entry->mo(), *workload.function);
    MDDC_ASSIGN_OR_RETURN(AdvisorPlan plan,
                          advisor.Advise(workload.queries, budget));
    for (const AdvisorChoice& choice : plan.materialize) {
      MDDC_RETURN_NOT_OK(
          store_->WarmAggregate(name, *workload.function, choice.grouping));
      --budget;
    }
  }
  return Status::OK();
}

Result<mdql::QueryResult> ServerSession::ExecuteWrite(
    const mdql::Statement& statement) {
  ++stats_.writes;
  mdql::QueryResult ack;
  std::uint64_t published = 0;
  const std::string name(mdql::StatementMoName(statement));
  if (statement.insert.has_value()) {
    // INSERTs take the batched-append fast path: a pure-append draft is
    // sealed by patching the published bundle (docs/ingestion.md); the
    // store falls back to a full seal when the gate fails.
    MDDC_RETURN_NOT_OK(store_->AppendBatch(
        name,
        [&](MdObject& draft) -> Status {
          MDDC_ASSIGN_OR_RETURN(ack,
                                mdql::ApplyInsert(draft, *statement.insert));
          return Status::OK();
        },
        &published, &stats_.exec));
  } else {
    // DELETEs are structural invalidations: always the full-rebuild
    // sealing path.
    MDDC_RETURN_NOT_OK(store_->Mutate(
        name,
        [&](MdObject& draft) -> Status {
          MDDC_ASSIGN_OR_RETURN(ack, mdql::ApplyDelete(draft, *statement.del));
          return Status::OK();
        },
        &published));
  }
  // The exact epoch this write produced — not store_->epoch(), which may
  // already reflect a concurrent session's later write.
  stats_.last_epoch = published;
  return ack;
}

}  // namespace serve
}  // namespace mddc
