#include "serve/mdql_server.h"

#include <cstdio>
#include <utility>

#include "common/strings.h"
#include "core/fact.h"
#include "mdql/parser.h"

namespace mddc {
namespace serve {

std::string SessionStats::ToJson() const {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "{\"queries\": %llu, \"reads\": %llu, \"writes\": %llu, "
                "\"errors\": %llu, \"view_rebuilds\": %llu, "
                "\"last_epoch\": %llu, \"exec\": ",
                static_cast<unsigned long long>(queries),
                static_cast<unsigned long long>(reads),
                static_cast<unsigned long long>(writes),
                static_cast<unsigned long long>(errors),
                static_cast<unsigned long long>(view_rebuilds),
                static_cast<unsigned long long>(last_epoch));
  return StrCat(buffer, exec.ToJson(), "}");
}

Result<mdql::QueryResult> ServerSession::Execute(const std::string& statement) {
  ++stats_.queries;
  auto parsed = mdql::Parse(statement);
  if (!parsed.ok()) {
    ++stats_.errors;
    return parsed.status();
  }
  auto result = mdql::IsMutating(*parsed) ? ExecuteWrite(*parsed)
                                          : ExecuteRead(*parsed);
  if (!result.ok()) ++stats_.errors;
  return result;
}

Result<mdql::QueryResult> ServerSession::ExecuteRead(
    const mdql::Statement& statement) {
  ++stats_.reads;
  // The whole read-side synchronization: one acquire load. Everything
  // reachable from the snapshot is immutable.
  const std::shared_ptr<const MoSnapshot> snapshot = store_->Pin();
  stats_.last_epoch = snapshot->epoch();

  const std::string name(mdql::StatementMoName(statement));
  auto it = views_.find(name);
  if (it == views_.end() || it->second.epoch != snapshot->epoch()) {
    const PublishedMo* entry = snapshot->Find(name);
    if (entry == nullptr) {
      return Status::NotFound(StrCat("no MO named '", name,
                                     "' is published at epoch ",
                                     snapshot->epoch()));
    }
    // (Re)build the session's private view: the published MO with
    // derived-fact interning redirected into a session-local registry
    // fork, so executing on it never writes shared state.
    View view;
    view.epoch = snapshot->epoch();
    MDDC_RETURN_NOT_OK(view.session.Register(
        name,
        entry->mo.WithRegistry(FactRegistry::ForkOf(entry->mo.registry()))));
    it = views_.insert_or_assign(name, std::move(view)).first;
    ++stats_.view_rebuilds;
  }

  ExecContext exec(threads_per_query_, /*min_facts=*/4096);
  auto result = it->second.session.Execute(statement, &exec);
  stats_.exec.MergeFrom(exec.stats);
  return result;
}

Result<mdql::QueryResult> ServerSession::ExecuteWrite(
    const mdql::Statement& statement) {
  ++stats_.writes;
  mdql::QueryResult ack;
  std::uint64_t published = 0;
  MDDC_RETURN_NOT_OK(store_->Mutate(
      std::string(mdql::StatementMoName(statement)),
      [&](MdObject& draft) -> Status {
        MDDC_ASSIGN_OR_RETURN(ack,
                              mdql::ApplyInsert(draft, *statement.insert));
        return Status::OK();
      },
      &published));
  // The exact epoch this write produced — not store_->epoch(), which may
  // already reflect a concurrent session's later write.
  stats_.last_epoch = published;
  return ack;
}

}  // namespace serve
}  // namespace mddc
