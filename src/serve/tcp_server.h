#ifndef MDDC_SERVE_TCP_SERVER_H_
#define MDDC_SERVE_TCP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "serve/mdql_server.h"

namespace mddc {
namespace serve {

/// A line-oriented TCP front-end over MdqlServer: one connection = one
/// ServerSession, one thread. Listens on 127.0.0.1 only (this is a
/// paper-repro serving tier, not a hardened network daemon).
///
/// Protocol — one request per line, every reply terminated by a line
/// holding a single '.':
///
///   client:  SELECT COUNT FROM patients BY Diagnosis."Diagnosis Group"
///   server:  OK 3
///            <rendered table, one line per row>
///            .
///
///   client:  INSERT INTO patients FACT 7 (Residence.City = 'Aalborg')
///   server:  OK 1
///            <acknowledgment table>
///            .
///
///   client:  SELECT FROM            (or any error)
///   server:  ERR <status message>
///            .
///
/// Meta commands: ".epoch" (current store epoch), ".stats" (this
/// session's SessionStats as JSON), ".quit" (server closes the
/// connection).
///
/// Requests longer than kMaxLineBytes are rejected with one ERR reply
/// and the rest of the oversized line is discarded, so a hostile or
/// buggy client cannot grow the per-connection buffer without bound and
/// the connection stays usable for the next statement.
class TcpServer {
 public:
  /// Upper bound on one request line (statement text). Generous for any
  /// real MDQL statement; small enough that a garbage flood cannot
  /// exhaust memory through the line buffer.
  static constexpr std::size_t kMaxLineBytes = 64 * 1024;

  /// `server` must outlive this object.
  explicit TcpServer(MdqlServer* server) : server_(server) {}
  ~TcpServer() { Stop(); }

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral; see port()) and starts the
  /// accept loop.
  Status Start(std::uint16_t port = 0);

  /// The bound port; valid after a successful Start().
  std::uint16_t port() const { return port_; }

  /// Shuts the listener and every open connection down and joins all
  /// threads. Idempotent; also run by the destructor.
  void Stop();

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  MdqlServer* server_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::mutex conn_mu_;
  std::vector<int> conn_fds_;          // open connections, for Stop()
  std::vector<std::thread> conn_threads_;
};

}  // namespace serve
}  // namespace mddc

#endif  // MDDC_SERVE_TCP_SERVER_H_
