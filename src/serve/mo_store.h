#ifndef MDDC_SERVE_MO_STORE_H_
#define MDDC_SERVE_MO_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "algebra/agg_function.h"
#include "common/result.h"
#include "core/md_object.h"
#include "engine/preagg_cache.h"
#include "engine/rollup_index.h"

namespace mddc {
namespace serve {

/// One pre-aggregate to keep warm in every published snapshot of an MO:
/// the snapshot's PreAggregateCache materializes it before publication,
/// so concurrent readers can Peek it without ever computing.
struct WarmSpec {
  AggFunction function;
  std::vector<CategoryTypeIndex> grouping;
};

/// Everything a published MO bundles for lock-free reading: the MO
/// itself (closure memos warmed, every dimension publish-frozen, fact
/// registry sealed), the compiled rollup snapshot of each dimension, and
/// an optional pre-aggregate cache holding the warm specs. All of it is
/// immutable after publication; readers share it by shared_ptr.
struct PublishedMo {
  /// The sealed MO, shared with the epoch's PreAggregateCache (its base
  /// is this very object), so sealing an epoch never duplicates the MO.
  std::shared_ptr<const MdObject> shared_mo;
  std::vector<std::shared_ptr<const RollupIndex>> rollups;  // per dimension
  std::shared_ptr<const PreAggregateCache> preagg;  // null when no warm specs

  const MdObject& mo() const { return *shared_mo; }
};

/// An immutable, epoch-stamped catalog of published MOs. Obtained from
/// MoStore::Pin() with a single atomic load; valid for as long as the
/// caller holds the shared_ptr, no matter how many epochs the writer
/// publishes meanwhile.
class MoSnapshot {
 public:
  std::uint64_t epoch() const { return epoch_; }

  /// The published entry for `name`, or nullptr. The pointer shares the
  /// snapshot's lifetime.
  const PublishedMo* Find(const std::string& name) const;

  std::vector<std::string> names() const;
  std::size_t size() const { return catalog_.size(); }

 private:
  friend class MoStore;
  std::uint64_t epoch_ = 0;
  std::map<std::string, std::shared_ptr<const PublishedMo>> catalog_;
};

/// The MVCC publication point of the serving tier (docs/serving.md).
///
/// Readers call Pin() — one atomic shared_ptr load, no locks — and then
/// query the pinned MoSnapshot for as long as they like; everything
/// reachable from it is immutable. Writers are serialized on a single
/// mutex and never touch published state: they clone-or-patch a draft
/// off to the side (forking the fact registry so not even interning is
/// shared), re-seal it (closure memos warmed, rollup snapshots compiled,
/// dimensions publish-frozen, warm pre-aggregates materialized) and swap
/// the new snapshot in with one atomic store. The store-release /
/// load-acquire pair is the only synchronization between writers and
/// readers.
///
/// Retired epochs are reclaimed by shared_ptr: when the last pinned
/// reader drops its snapshot, the epoch's memory goes with it. The store
/// keeps weak observers of retired epochs only for CollectStats().
class MoStore {
 public:
  MoStore();

  /// The current snapshot: one atomic load, zero locks. Hold the result
  /// for the duration of one query (or one batch) and re-Pin to observe
  /// newer epochs.
  std::shared_ptr<const MoSnapshot> Pin() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Epoch of the current snapshot.
  std::uint64_t epoch() const { return Pin()->epoch(); }

  /// Publishes `mo` under `name` in a new epoch. The MO's registry is
  /// flattened into a private sealed copy, so the caller's registry is
  /// never shared with readers. Fails if the name is already published.
  Status Publish(std::string name, MdObject mo);

  /// Removes `name` in a new epoch. Pinned snapshots still see it.
  Status Drop(const std::string& name);

  /// Applies `mutator` to a draft copy of the published MO and swaps the
  /// re-sealed result in as a new epoch. Mutations are serialized; the
  /// draft's registry is a fork of the published one (flattened every
  /// few generations), so concurrent readers never observe interning.
  /// If the mutator fails the draft is discarded and no epoch is
  /// published.
  ///
  /// On success `published_epoch` (optional) receives the exact epoch
  /// this mutation produced. Reading `epoch()` after Mutate returns is
  /// not equivalent under concurrent writers — another mutation may have
  /// published in between — and the stress harness's differential oracle
  /// needs the exact write→epoch mapping to replay writes in epoch order.
  Status Mutate(const std::string& name,
                const std::function<Status(MdObject&)>& mutator,
                std::uint64_t* published_epoch = nullptr);

  /// The batched-append fast path of continuous ingestion
  /// (docs/ingestion.md). Like Mutate, but when the applied draft turns
  /// out to be the published MO *plus appended facts only* — the fact
  /// list grew at the tail, every new relation entry references a new
  /// fact, and no dimension changed structurally (new leaf values under
  /// existing categories are fine) — the new epoch is sealed by patching:
  /// rollup snapshots extend in place, the relations' CSR span views
  /// splice the appended tail, and the warm pre-aggregates delta-fold
  /// only the new facts' contributions instead of rescanning. A draft
  /// that fails the gate (structural edits, deletes, touched old facts)
  /// silently takes the full Seal path, so AppendBatch is always safe to
  /// call. The gate itself demotes an appender that adds relation
  /// entries for already-published facts (every appended entry must
  /// reference a fact past the old tail); the one thing it cannot see is
  /// an in-place coalesce — re-adding an existing (fact, value) pair
  /// with a different lifespan. MDQL INSERT only ever relates with the
  /// always-lifespan, for which the coalesce is an idempotent no-op;
  /// direct-API appenders must avoid re-characterizing published facts.
  ///
  /// `stats` (optional) accumulates the engine counters of the seal —
  /// rollup_patches, csr_tail_extends, preagg_folds,
  /// preagg_fold_invalidations — for telemetry and tests.
  Status AppendBatch(const std::string& name,
                     const std::function<Status(MdObject&)>& appender,
                     std::uint64_t* published_epoch = nullptr,
                     ExecStats* stats = nullptr);

  /// Registers a warm pre-aggregate for `name` and republishes it (new
  /// epoch) with the spec materialized into the snapshot's cache; all
  /// later epochs of the MO keep it warm too.
  Status WarmAggregate(const std::string& name, const AggFunction& function,
                       std::vector<CategoryTypeIndex> grouping);

  struct Stats {
    std::uint64_t epochs_published = 0;  ///< swaps since construction
    std::uint64_t registry_flattens = 0;  ///< fork chains collapsed
    std::uint64_t reclaimed_snapshots = 0;  ///< retired epochs fully released
    std::size_t live_snapshots = 0;  ///< current + retired-but-still-pinned
    std::uint64_t append_batches = 0;    ///< AppendBatch fast-path seals
    std::uint64_t append_fallbacks = 0;  ///< AppendBatch full-Seal fallbacks
  };

  /// Current stats; prunes the retired-epoch observers as a side effect
  /// (that is where reclaimed_snapshots advances).
  Stats CollectStats() const;

 private:
  /// Re-seals the draft and publishes it as the new epoch's entry for
  /// `name` (null draft = drop). Caller holds writer_mu_.
  Status SwapLocked(const std::string& name,
                    std::shared_ptr<const PublishedMo> entry);

  /// Mutate() body; caller holds writer_mu_.
  Status MutateLocked(const std::string& name,
                      const std::function<Status(MdObject&)>& mutator);

  /// Builds the immutable PublishedMo bundle from a draft: warms closure
  /// memos, compiles rollup snapshots, materializes the warm specs, then
  /// freezes every dimension for publication. Caller holds writer_mu_.
  Result<std::shared_ptr<const PublishedMo>> Seal(
      MdObject mo, const std::vector<WarmSpec>& specs);

  /// Seal variant for a draft that passed the pure-append gate: patches
  /// the published bundle (`prev`) forward instead of recompiling it.
  /// `delta` is the appended fact tail, ascending. Caller holds
  /// writer_mu_.
  Result<std::shared_ptr<const PublishedMo>> SealAppend(
      MdObject mo, const PublishedMo& prev, const std::vector<FactId>& delta,
      const std::vector<WarmSpec>& specs, ExecStats* stats);

  mutable std::mutex writer_mu_;
  std::atomic<std::shared_ptr<const MoSnapshot>> current_;
  std::map<std::string, std::vector<WarmSpec>> warm_specs_;  // writer_mu_
  mutable std::vector<std::weak_ptr<const MoSnapshot>> retired_;  // writer_mu_
  mutable std::uint64_t reclaimed_ = 0;        // writer_mu_
  std::uint64_t epochs_published_ = 0;         // writer_mu_
  std::uint64_t registry_flattens_ = 0;        // writer_mu_
  std::uint64_t append_batches_ = 0;           // writer_mu_
  std::uint64_t append_fallbacks_ = 0;         // writer_mu_
};

}  // namespace serve
}  // namespace mddc

#endif  // MDDC_SERVE_MO_STORE_H_
