#include "serve/mo_store.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"
#include "core/fact.h"

namespace mddc {
namespace serve {
namespace {

/// Fork chains longer than this are collapsed before the next draft:
/// each mutation batch adds one overlay, and resolving a fact id walks
/// the chain, so unbounded depth would slowly tax every reader of later
/// epochs. Eight keeps the walk trivial while amortizing the O(facts)
/// flatten over eight batches.
constexpr std::size_t kMaxForkDepth = 8;

/// The pure-append gate of AppendBatch: true iff `draft` is `published`
/// plus appended facts only. The published fact list must be a prefix of
/// the draft's (facts are sorted, so the tail is then both ascending and
/// above every published id), every relation entry beyond the published
/// count must reference a tail fact, and no dimension may have changed
/// structurally — new leaf values and edges under them only bump the
/// append version. On success `delta` receives the appended tail.
bool IsPureAppend(const MdObject& published, const MdObject& draft,
                  std::vector<FactId>* delta) {
  const std::vector<FactId>& old_facts = published.facts();
  const std::vector<FactId>& new_facts = draft.facts();
  if (new_facts.size() < old_facts.size()) return false;
  if (!std::equal(old_facts.begin(), old_facts.end(), new_facts.begin())) {
    return false;
  }
  if (published.dimension_count() != draft.dimension_count()) return false;
  for (std::size_t i = 0; i < draft.dimension_count(); ++i) {
    if (draft.dimension(i).structural_version() !=
        published.dimension(i).structural_version()) {
      return false;
    }
    const FactDimRelation& old_rel = published.relation(i);
    const FactDimRelation& new_rel = draft.relation(i);
    if (new_rel.size() < old_rel.size()) return false;
    for (std::size_t e = old_rel.size(); e < new_rel.size(); ++e) {
      const FactDimRelation::Entry& entry = new_rel.entries()[e];
      if (old_facts.empty() || !(old_facts.back() < entry.fact)) return false;
    }
  }
  delta->assign(new_facts.begin() +
                    static_cast<std::ptrdiff_t>(old_facts.size()),
                new_facts.end());
  return true;
}

}  // namespace

const PublishedMo* MoSnapshot::Find(const std::string& name) const {
  auto it = catalog_.find(name);
  return it == catalog_.end() ? nullptr : it->second.get();
}

std::vector<std::string> MoSnapshot::names() const {
  std::vector<std::string> result;
  result.reserve(catalog_.size());
  for (const auto& [name, entry] : catalog_) result.push_back(name);
  return result;
}

MoStore::MoStore() {
  current_.store(std::make_shared<MoSnapshot>(), std::memory_order_release);
}

Result<std::shared_ptr<const PublishedMo>> MoStore::Seal(
    MdObject draft, const std::vector<WarmSpec>& specs) {
  // The sealed MO is shared between the epoch bundle and the warm cache
  // below (its base), so the seal step itself never copies the draft.
  // Every remaining step — memo warming, rollup compilation, CSR seals,
  // the publish freeze — is publication metadata and works on const.
  auto shared = std::make_shared<const MdObject>(std::move(draft));
  const MdObject& mo = *shared;

  // Warm the closure memos first: compilation and every later read then
  // find the reachability of each value precomputed, making concurrent
  // queries pure reads.
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    mo.dimension(i).set_memoization_enabled(true);
    mo.dimension(i).WarmClosureMemo();
  }

  // Compile the rollup snapshots while the dimensions are still
  // unfrozen, so For() caches each one into the dimension's slot; after
  // the freeze below, readers serve that slot without the slot mutex.
  std::vector<std::shared_ptr<const RollupIndex>> rollups;
  rollups.reserve(mo.dimension_count());
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    rollups.push_back(RollupIndex::For(mo.dimension(i)));
  }

  std::shared_ptr<const PreAggregateCache> preagg;
  if (!specs.empty()) {
    auto cache = std::make_shared<PreAggregateCache>(shared);
    for (const WarmSpec& spec : specs) {
      // Resumable (base-scan) materialization: the captured accumulator
      // state is what lets a later AppendBatch delta-fold the entry
      // instead of rescanning (docs/ingestion.md).
      MDDC_RETURN_NOT_OK(
          cache->MaterializeResumable(spec.function, spec.grouping));
    }
    // The cached result MOs are published too (readers Peek them), so
    // they get the same treatment as the base MO.
    for (const WarmSpec& spec : specs) {
      if (const MdObject* cached = cache->Peek(spec.function, spec.grouping)) {
        cached->WarmAndFreezeForPublish();
      }
    }
    preagg = std::move(cache);
  }

  mo.WarmAndFreezeForPublish();
  return std::shared_ptr<const PublishedMo>(std::make_shared<PublishedMo>(
      PublishedMo{std::move(shared), std::move(rollups), std::move(preagg)}));
}

Result<std::shared_ptr<const PublishedMo>> MoStore::SealAppend(
    MdObject draft, const PublishedMo& prev, const std::vector<FactId>& delta,
    const std::vector<WarmSpec>& specs, ExecStats* stats) {
  ExecContext exec;
  // As in Seal: the bundle and the folded cache share one MO, so the
  // append seal's cost is the delta work below, not an MO copy.
  auto shared = std::make_shared<const MdObject>(std::move(draft));
  const MdObject& mo = *shared;

  // Closure memos: the draft's dimensions carried the published memos
  // over, so warming only fills the freshly appended values' entries.
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    mo.dimension(i).set_memoization_enabled(true);
    mo.dimension(i).WarmClosureMemo();
  }

  // Rollup snapshots: each dimension's slot still holds the published
  // snapshot. Untouched dimensions (version unchanged) reuse it outright;
  // appended-to dimensions patch it — dense remap extended, fresh-value
  // closure rows computed, old rows copied (exec.stats.rollup_patches).
  std::vector<std::shared_ptr<const RollupIndex>> rollups;
  rollups.reserve(mo.dimension_count());
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    rollups.push_back(RollupIndex::For(mo.dimension(i), &exec.stats));
  }

  // Reseal the by-fact CSR span views: a batched fact append lands at the
  // entry tail with fresh (maximal) fact ids, so the sealed layout is
  // extended in place rather than re-sorted.
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    if (mo.relation(i).SealIndexesReporting() ==
        FactDimRelation::SealOutcome::kExtended) {
      ++exec.stats.csr_tail_extends;
    }
  }

  std::shared_ptr<const PreAggregateCache> preagg;
  if (!specs.empty()) {
    std::shared_ptr<PreAggregateCache> cache;
    if (prev.preagg != nullptr) {
      // Delta-fold the published entries: only the appended facts'
      // contributions are accumulated onto the captured state; entries
      // whose fold gate fails rematerialize with a full scan.
      MDDC_ASSIGN_OR_RETURN(PreAggregateCache folded,
                            prev.preagg->FoldAppend(shared, delta, &exec));
      cache = std::make_shared<PreAggregateCache>(std::move(folded));
    } else {
      cache = std::make_shared<PreAggregateCache>(shared);
    }
    for (const WarmSpec& spec : specs) {
      MDDC_RETURN_NOT_OK(
          cache->MaterializeResumable(spec.function, spec.grouping));
    }
    for (const WarmSpec& spec : specs) {
      if (const MdObject* cached = cache->Peek(spec.function, spec.grouping)) {
        cached->WarmAndFreezeForPublish();
      }
    }
    preagg = std::move(cache);
  }

  mo.WarmAndFreezeForPublish();
  if (stats != nullptr) stats->MergeFrom(exec.stats);
  return std::shared_ptr<const PublishedMo>(std::make_shared<PublishedMo>(
      PublishedMo{std::move(shared), std::move(rollups), std::move(preagg)}));
}

Status MoStore::SwapLocked(const std::string& name,
                           std::shared_ptr<const PublishedMo> entry) {
  std::shared_ptr<const MoSnapshot> current =
      current_.load(std::memory_order_relaxed);
  auto next = std::make_shared<MoSnapshot>(*current);
  next->epoch_ = current->epoch() + 1;
  if (entry == nullptr) {
    next->catalog_.erase(name);
  } else {
    next->catalog_[name] = std::move(entry);
  }
  retired_.push_back(current);
  ++epochs_published_;
  // The release store publishes every plain write above — including the
  // publish_frozen flags and warmed memos — to the acquire load in
  // Pin().
  current_.store(std::move(next), std::memory_order_release);
  return Status::OK();
}

Status MoStore::Publish(std::string name, MdObject mo) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (Pin()->Find(name) != nullptr) {
    return Status::InvariantViolation(
        StrCat("MO '", name, "' is already published; use Mutate"));
  }
  // Seal the registry into a private flat copy: the caller may keep
  // interning into its own registry, which must not be visible to (or
  // racy with) readers of the published epoch.
  MdObject draft = mo.WithRegistry(mo.registry()->Flatten());
  MDDC_ASSIGN_OR_RETURN(std::shared_ptr<const PublishedMo> sealed,
                        Seal(std::move(draft), warm_specs_[name]));
  return SwapLocked(name, std::move(sealed));
}

Status MoStore::Drop(const std::string& name) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (Pin()->Find(name) == nullptr) {
    return Status::NotFound(StrCat("no MO named '", name, "' is published"));
  }
  return SwapLocked(name, nullptr);
}

Status MoStore::Mutate(const std::string& name,
                       const std::function<Status(MdObject&)>& mutator,
                       std::uint64_t* published_epoch) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  MDDC_RETURN_NOT_OK(MutateLocked(name, mutator));
  // Still under the writer mutex, so the current epoch is exactly the
  // one this mutation published.
  if (published_epoch != nullptr) *published_epoch = Pin()->epoch();
  return Status::OK();
}

Status MoStore::AppendBatch(const std::string& name,
                            const std::function<Status(MdObject&)>& appender,
                            std::uint64_t* published_epoch,
                            ExecStats* stats) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  const std::shared_ptr<const MoSnapshot> current = Pin();
  const PublishedMo* entry = current->Find(name);
  if (entry == nullptr) {
    return Status::NotFound(StrCat("no MO named '", name, "' is published"));
  }
  std::shared_ptr<FactRegistry> registry;
  if (entry->mo().registry()->fork_depth() >= kMaxForkDepth) {
    registry = entry->mo().registry()->Flatten();
    ++registry_flattens_;
  } else {
    registry = FactRegistry::ForkOf(entry->mo().registry());
  }
  MdObject draft = entry->mo().WithRegistry(std::move(registry));
  MDDC_RETURN_NOT_OK(appender(draft));

  std::vector<FactId> delta;
  std::shared_ptr<const PublishedMo> sealed;
  if (IsPureAppend(entry->mo(), draft, &delta)) {
    MDDC_ASSIGN_OR_RETURN(
        sealed,
        SealAppend(std::move(draft), *entry, delta, warm_specs_[name], stats));
    ++append_batches_;
  } else {
    MDDC_ASSIGN_OR_RETURN(sealed,
                          Seal(std::move(draft), warm_specs_[name]));
    ++append_fallbacks_;
  }
  MDDC_RETURN_NOT_OK(SwapLocked(name, std::move(sealed)));
  if (published_epoch != nullptr) *published_epoch = Pin()->epoch();
  return Status::OK();
}

Status MoStore::MutateLocked(const std::string& name,
                             const std::function<Status(MdObject&)>& mutator) {
  const std::shared_ptr<const MoSnapshot> current = Pin();
  const PublishedMo* entry = current->Find(name);
  if (entry == nullptr) {
    return Status::NotFound(StrCat("no MO named '", name, "' is published"));
  }
  // Draft off to the side: a copy of the published MO whose registry is
  // a fork of the sealed one, so the mutator's interning is invisible to
  // readers pinned on any epoch. Fork chains are collapsed every
  // kMaxForkDepth batches.
  std::shared_ptr<FactRegistry> registry;
  if (entry->mo().registry()->fork_depth() >= kMaxForkDepth) {
    registry = entry->mo().registry()->Flatten();
    ++registry_flattens_;
  } else {
    registry = FactRegistry::ForkOf(entry->mo().registry());
  }
  MdObject draft = entry->mo().WithRegistry(std::move(registry));
  MDDC_RETURN_NOT_OK(mutator(draft));
  MDDC_ASSIGN_OR_RETURN(std::shared_ptr<const PublishedMo> sealed,
                        Seal(std::move(draft), warm_specs_[name]));
  return SwapLocked(name, std::move(sealed));
}

Status MoStore::WarmAggregate(const std::string& name,
                              const AggFunction& function,
                              std::vector<CategoryTypeIndex> grouping) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  // Idempotent: the warm-aggregate advisor re-runs as the query log
  // grows, and re-registering an already-warm spec must not republish
  // (or duplicate the materialization work on every later seal).
  for (const WarmSpec& spec : warm_specs_[name]) {
    if (spec.function.kind() == function.kind() &&
        spec.function.args() == function.args() &&
        spec.grouping == grouping) {
      return Status::OK();
    }
  }
  warm_specs_[name].push_back(WarmSpec{function, std::move(grouping)});
  // Republish so the new spec is materialized into a fresh epoch. A
  // failing Materialize (e.g. an inapplicable function) surfaces here;
  // the bad spec is withdrawn and the previous epoch stays current.
  Status status = MutateLocked(name, [](MdObject&) { return Status::OK(); });
  if (!status.ok()) warm_specs_[name].pop_back();
  return status;
}

MoStore::Stats MoStore::CollectStats() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  auto alive = [](const std::weak_ptr<const MoSnapshot>& w) {
    return !w.expired();
  };
  std::size_t live = 0;
  for (const auto& w : retired_) live += alive(w) ? 1 : 0;
  const std::size_t before = retired_.size();
  retired_.erase(std::remove_if(retired_.begin(), retired_.end(),
                                [&](const std::weak_ptr<const MoSnapshot>& w) {
                                  return !alive(w);
                                }),
                 retired_.end());
  reclaimed_ += before - retired_.size();

  Stats stats;
  stats.epochs_published = epochs_published_;
  stats.registry_flattens = registry_flattens_;
  stats.reclaimed_snapshots = reclaimed_;
  stats.live_snapshots = live + 1;  // retired-but-pinned + current
  stats.append_batches = append_batches_;
  stats.append_fallbacks = append_fallbacks_;
  return stats;
}

}  // namespace serve
}  // namespace mddc
