#include "serve/mo_store.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"
#include "core/fact.h"

namespace mddc {
namespace serve {
namespace {

/// Fork chains longer than this are collapsed before the next draft:
/// each mutation batch adds one overlay, and resolving a fact id walks
/// the chain, so unbounded depth would slowly tax every reader of later
/// epochs. Eight keeps the walk trivial while amortizing the O(facts)
/// flatten over eight batches.
constexpr std::size_t kMaxForkDepth = 8;

}  // namespace

const PublishedMo* MoSnapshot::Find(const std::string& name) const {
  auto it = catalog_.find(name);
  return it == catalog_.end() ? nullptr : it->second.get();
}

std::vector<std::string> MoSnapshot::names() const {
  std::vector<std::string> result;
  result.reserve(catalog_.size());
  for (const auto& [name, entry] : catalog_) result.push_back(name);
  return result;
}

MoStore::MoStore() {
  current_.store(std::make_shared<MoSnapshot>(), std::memory_order_release);
}

Result<std::shared_ptr<const PublishedMo>> MoStore::Seal(
    MdObject mo, const std::vector<WarmSpec>& specs) {
  // Warm the closure memos first: compilation and every later read then
  // find the reachability of each value precomputed, making concurrent
  // queries pure reads.
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    mo.dimension(i).set_memoization_enabled(true);
    mo.dimension(i).WarmClosureMemo();
  }

  // Compile the rollup snapshots while the dimensions are still
  // unfrozen, so For() caches each one into the dimension's slot; after
  // the freeze below, readers serve that slot without the slot mutex.
  std::vector<std::shared_ptr<const RollupIndex>> rollups;
  rollups.reserve(mo.dimension_count());
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    rollups.push_back(RollupIndex::For(mo.dimension(i)));
  }

  std::shared_ptr<const PreAggregateCache> preagg;
  if (!specs.empty()) {
    auto cache = std::make_shared<PreAggregateCache>(mo);
    for (const WarmSpec& spec : specs) {
      MDDC_RETURN_NOT_OK(cache->Materialize(spec.function, spec.grouping));
    }
    // The cached result MOs are published too (readers Peek them), so
    // they get the same treatment as the base MO.
    for (const WarmSpec& spec : specs) {
      if (const MdObject* cached = cache->Peek(spec.function, spec.grouping)) {
        cached->WarmAndFreezeForPublish();
      }
    }
    preagg = std::move(cache);
  }

  mo.WarmAndFreezeForPublish();
  return std::shared_ptr<const PublishedMo>(std::make_shared<PublishedMo>(
      PublishedMo{std::move(mo), std::move(rollups), std::move(preagg)}));
}

Status MoStore::SwapLocked(const std::string& name,
                           std::shared_ptr<const PublishedMo> entry) {
  std::shared_ptr<const MoSnapshot> current =
      current_.load(std::memory_order_relaxed);
  auto next = std::make_shared<MoSnapshot>(*current);
  next->epoch_ = current->epoch() + 1;
  if (entry == nullptr) {
    next->catalog_.erase(name);
  } else {
    next->catalog_[name] = std::move(entry);
  }
  retired_.push_back(current);
  ++epochs_published_;
  // The release store publishes every plain write above — including the
  // publish_frozen flags and warmed memos — to the acquire load in
  // Pin().
  current_.store(std::move(next), std::memory_order_release);
  return Status::OK();
}

Status MoStore::Publish(std::string name, MdObject mo) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (Pin()->Find(name) != nullptr) {
    return Status::InvariantViolation(
        StrCat("MO '", name, "' is already published; use Mutate"));
  }
  // Seal the registry into a private flat copy: the caller may keep
  // interning into its own registry, which must not be visible to (or
  // racy with) readers of the published epoch.
  MdObject draft = mo.WithRegistry(mo.registry()->Flatten());
  MDDC_ASSIGN_OR_RETURN(std::shared_ptr<const PublishedMo> sealed,
                        Seal(std::move(draft), warm_specs_[name]));
  return SwapLocked(name, std::move(sealed));
}

Status MoStore::Drop(const std::string& name) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (Pin()->Find(name) == nullptr) {
    return Status::NotFound(StrCat("no MO named '", name, "' is published"));
  }
  return SwapLocked(name, nullptr);
}

Status MoStore::Mutate(const std::string& name,
                       const std::function<Status(MdObject&)>& mutator,
                       std::uint64_t* published_epoch) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  MDDC_RETURN_NOT_OK(MutateLocked(name, mutator));
  // Still under the writer mutex, so the current epoch is exactly the
  // one this mutation published.
  if (published_epoch != nullptr) *published_epoch = Pin()->epoch();
  return Status::OK();
}

Status MoStore::MutateLocked(const std::string& name,
                             const std::function<Status(MdObject&)>& mutator) {
  const std::shared_ptr<const MoSnapshot> current = Pin();
  const PublishedMo* entry = current->Find(name);
  if (entry == nullptr) {
    return Status::NotFound(StrCat("no MO named '", name, "' is published"));
  }
  // Draft off to the side: a copy of the published MO whose registry is
  // a fork of the sealed one, so the mutator's interning is invisible to
  // readers pinned on any epoch. Fork chains are collapsed every
  // kMaxForkDepth batches.
  std::shared_ptr<FactRegistry> registry;
  if (entry->mo.registry()->fork_depth() >= kMaxForkDepth) {
    registry = entry->mo.registry()->Flatten();
    ++registry_flattens_;
  } else {
    registry = FactRegistry::ForkOf(entry->mo.registry());
  }
  MdObject draft = entry->mo.WithRegistry(std::move(registry));
  MDDC_RETURN_NOT_OK(mutator(draft));
  MDDC_ASSIGN_OR_RETURN(std::shared_ptr<const PublishedMo> sealed,
                        Seal(std::move(draft), warm_specs_[name]));
  return SwapLocked(name, std::move(sealed));
}

Status MoStore::WarmAggregate(const std::string& name,
                              const AggFunction& function,
                              std::vector<CategoryTypeIndex> grouping) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  warm_specs_[name].push_back(WarmSpec{function, std::move(grouping)});
  // Republish so the new spec is materialized into a fresh epoch. A
  // failing Materialize (e.g. an inapplicable function) surfaces here;
  // the bad spec is withdrawn and the previous epoch stays current.
  Status status = MutateLocked(name, [](MdObject&) { return Status::OK(); });
  if (!status.ok()) warm_specs_[name].pop_back();
  return status;
}

MoStore::Stats MoStore::CollectStats() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  auto alive = [](const std::weak_ptr<const MoSnapshot>& w) {
    return !w.expired();
  };
  std::size_t live = 0;
  for (const auto& w : retired_) live += alive(w) ? 1 : 0;
  const std::size_t before = retired_.size();
  retired_.erase(std::remove_if(retired_.begin(), retired_.end(),
                                [&](const std::weak_ptr<const MoSnapshot>& w) {
                                  return !alive(w);
                                }),
                 retired_.end());
  reclaimed_ += before - retired_.size();

  Stats stats;
  stats.epochs_published = epochs_published_;
  stats.registry_flattens = registry_flattens_;
  stats.reclaimed_snapshots = reclaimed_;
  stats.live_snapshots = live + 1;  // retired-but-pinned + current
  return stats;
}

}  // namespace serve
}  // namespace mddc
