#ifndef MDDC_SERVE_MDQL_SERVER_H_
#define MDDC_SERVE_MDQL_SERVER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "algebra/agg_function.h"
#include "common/result.h"
#include "engine/executor.h"
#include "mdql/mdql.h"
#include "serve/mo_store.h"

namespace mddc {
namespace serve {

/// Per-session counters. `exec` accumulates the ExecStats of every
/// read's execution context, so a session can report what the parallel
/// engine did on its behalf across its lifetime.
struct SessionStats {
  std::uint64_t queries = 0;        ///< statements executed (incl. failures)
  std::uint64_t reads = 0;          ///< SELECT / SHOW
  std::uint64_t writes = 0;         ///< INSERT/DELETE (through the writer)
  std::uint64_t errors = 0;         ///< statements that returned a Status
  std::uint64_t view_rebuilds = 0;  ///< snapshot views (re)built on epoch moves
  std::uint64_t last_epoch = 0;     ///< epoch of the last executed statement
  ExecStats exec;

  /// One JSON object; nests ExecStats::ToJson under "exec".
  std::string ToJson() const;
};

/// One client's handle on the serving tier. Reads pin the store's
/// current snapshot (one atomic load), execute on a private view of the
/// target MO, and never block writers or other readers; mutating
/// statements are routed through the store's serialized writer and
/// publish a new epoch.
///
/// The private view is what keeps the read path lock-free end to end: a
/// session caches, per MO name, a copy of the published MO whose fact
/// registry is a session-local fork — the algebra's derived-fact
/// interning lands in the fork, never in the shared sealed registry.
/// Views are rebuilt only when the pinned epoch moves (counted in
/// stats().view_rebuilds), so steady-state reads pay one atomic load
/// plus two map lookups before query execution.
///
/// A session is owned by one client thread and is not itself
/// thread-safe; concurrency comes from many sessions.
class ServerSession {
 public:
  /// Parses and executes one MDQL statement against the serving tier.
  Result<mdql::QueryResult> Execute(const std::string& statement);

  /// Epoch this session last executed against: the pinned snapshot's
  /// epoch after a read, the exact published epoch after an INSERT. The
  /// stress harness's oracle relies on both being exact even when other
  /// sessions write concurrently.
  std::uint64_t pinned_epoch() const { return stats_.last_epoch; }

  const SessionStats& stats() const { return stats_; }
  std::string StatsJson() const { return stats_.ToJson(); }

  /// Runs the materialization advisor (engine/advisor.h) over this
  /// session's query log for `name` and registers its choices as warm
  /// pre-aggregates on the store — so every later sealed epoch keeps the
  /// session's hottest groupings pre-computed. The log records every
  /// successful SELECT's (function, grouping) with its frequency;
  /// groupings the advisor rejects (non-summarizable roll-ups stay
  /// beneficial only to their exact query) are weighed by the same HRU
  /// greedy the advisor always applied offline. Registration is
  /// idempotent, so calling this periodically as the log grows is safe.
  /// At most `max_materializations` specs are registered per call,
  /// spent on the highest-total-frequency functions first. A no-op when
  /// the session has not logged any SELECT against `name`.
  Status AdviseWarmAggregates(const std::string& name,
                              std::size_t max_materializations = 4);

 private:
  friend class MdqlServer;
  ServerSession(MoStore* store, std::size_t threads_per_query)
      : store_(store), threads_per_query_(threads_per_query) {}

  struct View {
    std::uint64_t epoch = 0;
    mdql::Session session;
  };

  /// One query-log line: a SELECT-list function over a resolved grouping
  /// (one category per dimension, top for ungrouped), and how often the
  /// session executed it.
  struct LoggedQuery {
    AggFunction function;
    std::vector<CategoryTypeIndex> grouping;
    std::uint64_t count = 0;
  };

  Result<mdql::QueryResult> ExecuteRead(const mdql::Statement& statement);
  Result<mdql::QueryResult> ExecuteWrite(const mdql::Statement& statement);

  /// Records a successful SELECT in the query log (advisor fuel). Best
  /// effort: unresolvable levels or unbindable functions are skipped.
  void LogSelect(const MdObject& mo, const std::string& name,
                 const mdql::SelectStatement& select);

  MoStore* store_;
  std::size_t threads_per_query_;
  std::map<std::string, View, std::less<>> views_;
  std::map<std::string, std::vector<LoggedQuery>, std::less<>> query_log_;
  SessionStats stats_;
};

/// The session factory over one MoStore: the in-process client API of
/// the serving tier (serve/tcp_server.h is the wire front-end on top).
/// Connect() hands out independent sessions; any number of them may
/// execute concurrently, one thread each.
class MdqlServer {
 public:
  explicit MdqlServer(MoStore* store) : store_(store) {}

  /// A new session. `threads_per_query` sizes each read's ExecContext;
  /// the default 1 keeps a session's reads entirely on its own thread
  /// (no shared-pool borrow), which is the right shape when concurrency
  /// comes from many sessions rather than from one big query.
  ServerSession Connect(std::size_t threads_per_query = 1) {
    return ServerSession(store_, threads_per_query);
  }

  MoStore& store() { return *store_; }

 private:
  MoStore* store_;
};

}  // namespace serve
}  // namespace mddc

#endif  // MDDC_SERVE_MDQL_SERVER_H_
