#ifndef MDDC_TEMPORAL_CHRONON_H_
#define MDDC_TEMPORAL_CHRONON_H_

#include <cstdint>

namespace mddc {

/// A chronon is the finest granule of the time domain (paper Section 3.2:
/// "a time domain that is discrete and bounded, i.e., isomorphic with a
/// bounded subset of the natural numbers"). In this implementation a
/// chronon is a day number (see common/date.h), matching the case study's
/// Day chronon size, but nothing in the temporal algebra depends on the
/// granule's meaning.
using Chronon = std::int64_t;

/// Lower bound of the (bounded) time domain.
inline constexpr Chronon kMinChronon = -(std::int64_t{1} << 62);

/// Upper bound of the time domain; an interval ending here means "valid
/// forever" (used for data with no valid time attached, which the paper
/// defines to be *always* valid).
inline constexpr Chronon kForeverChronon = std::int64_t{1} << 62;

/// The special, continuously growing value NOW (Clifford et al., cited by
/// the paper). It is a sentinel strictly below kForeverChronon and above
/// every concrete chronon; TemporalElement::Bind replaces it with the
/// reference time of a query. The chronon immediately preceding
/// kForeverChronon is reserved for this purpose and must not be used as a
/// concrete time.
inline constexpr Chronon kNowChronon = kForeverChronon - 1;

/// True for chronons representing concrete time points (not sentinels).
constexpr bool IsConcreteChronon(Chronon c) {
  return c > kMinChronon && c < kNowChronon;
}

}  // namespace mddc

#endif  // MDDC_TEMPORAL_CHRONON_H_
