#include "temporal/interval.h"

#include <algorithm>

#include "common/date.h"
#include "common/strings.h"

namespace mddc {
namespace {

Result<Chronon> ParseEndpoint(const std::string& token) {
  if (token == "NOW") return kNowChronon;
  if (token == "FOREVER") return kForeverChronon;
  if (token == "BEGINNING") return kMinChronon;
  MDDC_ASSIGN_OR_RETURN(std::int64_t day, ParseDate(token));
  return static_cast<Chronon>(day);
}

std::string FormatEndpoint(Chronon c) {
  if (c == kNowChronon) return "NOW";
  if (c >= kForeverChronon) return "FOREVER";
  if (c <= kMinChronon) return "BEGINNING";
  return FormatDate(c);
}

}  // namespace

Result<Interval> Interval::Make(Chronon begin, Chronon end) {
  if (begin > end) {
    return Status::InvalidArgument(
        StrCat("interval begin ", begin, " exceeds end ", end));
  }
  return Interval(begin, end);
}

Result<Interval> Interval::Parse(const std::string& text) {
  std::string body = text;
  if (body.size() >= 2 && body.front() == '[' && body.back() == ']') {
    body = body.substr(1, body.size() - 2);
  }
  // Endpoints contain '/' but not '-', so splitting on '-' is unambiguous.
  std::vector<std::string> parts = Split(body, '-');
  if (parts.size() == 1) {
    MDDC_ASSIGN_OR_RETURN(Chronon at, ParseEndpoint(parts[0]));
    return Interval::At(at);
  }
  if (parts.size() != 2) {
    return Status::InvalidArgument(StrCat("cannot parse interval '", text,
                                          "'; expected begin-end"));
  }
  MDDC_ASSIGN_OR_RETURN(Chronon begin, ParseEndpoint(parts[0]));
  MDDC_ASSIGN_OR_RETURN(Chronon end, ParseEndpoint(parts[1]));
  return Interval::Make(begin, end);
}

Interval Interval::Bind(Chronon reference) const {
  Chronon b = begin_ == kNowChronon ? reference : begin_;
  Chronon e = end_ == kNowChronon ? reference : end_;
  return Interval(b, e);
}

std::string Interval::ToString() const {
  if (begin_ == end_) return StrCat("[", FormatEndpoint(begin_), "]");
  return StrCat("[", FormatEndpoint(begin_), "-", FormatEndpoint(end_), "]");
}

}  // namespace mddc
