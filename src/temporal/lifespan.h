#ifndef MDDC_TEMPORAL_LIFESPAN_H_
#define MDDC_TEMPORAL_LIFESPAN_H_

#include <string>

#include "common/strings.h"
#include "temporal/temporal_element.h"

namespace mddc {

/// The combined temporal attachment of a piece of model data: a valid-time
/// element and a transaction-time element. The paper treats the two as
/// orthogonal (Section 3.2); data in a snapshot MO simply carries
/// Always/Always. Keeping both components on every attachment lets one
/// MdObject be snapshot, valid-time, transaction-time, or bitemporal
/// without changing representation.
struct Lifespan {
  TemporalElement valid = TemporalElement::Always();
  TemporalElement transaction = TemporalElement::Always();

  /// Attachment of nontemporal data ("always valid").
  static Lifespan AlwaysSpan() { return Lifespan{}; }

  /// Valid-time-only attachment.
  static Lifespan ValidDuring(TemporalElement vt) {
    return Lifespan{std::move(vt), TemporalElement::Always()};
  }

  /// Transaction-time-only attachment.
  static Lifespan RecordedDuring(TemporalElement tt) {
    return Lifespan{TemporalElement::Always(), std::move(tt)};
  }

  bool Empty() const { return valid.Empty() || transaction.Empty(); }

  /// True iff both components span the whole time domain (the attachment
  /// of nontemporal data). Intersect with such a span is the identity, so
  /// hot loops test this before paying for the vector copies an
  /// Intersect allocates.
  bool IsAlways() const { return valid.IsAlways() && transaction.IsAlways(); }

  Lifespan Intersect(const Lifespan& other) const {
    return Lifespan{valid.Intersect(other.valid),
                    transaction.Intersect(other.transaction)};
  }

  /// Component-wise union. Exact only when the operands agree on one
  /// component (which is how the Section 4.2 union rules use it).
  Lifespan Union(const Lifespan& other) const {
    return Lifespan{valid.Union(other.valid),
                    transaction.Union(other.transaction)};
  }

  std::string ToString() const {
    return StrCat("vt=", valid.ToString(), " tt=", transaction.ToString());
  }

  friend bool operator==(const Lifespan& a, const Lifespan& b) {
    return a.valid == b.valid && a.transaction == b.transaction;
  }
};

}  // namespace mddc

#endif  // MDDC_TEMPORAL_LIFESPAN_H_
