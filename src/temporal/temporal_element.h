#ifndef MDDC_TEMPORAL_TEMPORAL_ELEMENT_H_
#define MDDC_TEMPORAL_TEMPORAL_ELEMENT_H_

#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

#include "common/result.h"
#include "temporal/interval.h"

namespace mddc {

/// A finite set of chronons represented as a *coalesced* list of disjoint,
/// non-adjacent, sorted intervals. This is the `Tv`/`Tt` of the paper
/// (Section 3.2): "The set of chronons that is attached to a piece of data
/// is the *maximal* set of chronons when the data is valid, so the data is
/// always 'coalesced'". The class maintains that invariant on every
/// operation, so value-equivalent data cannot arise.
class TemporalElement {
 public:
  /// The empty set of chronons.
  TemporalElement() = default;

  /// A single interval (inline, allocation-free).
  explicit TemporalElement(const Interval& interval)
      : inline_(interval), inline_size_(1) {}

  /// Coalesces an arbitrary list of intervals.
  TemporalElement(std::initializer_list<Interval> intervals);

  /// The whole time domain; the valid time the paper assigns to data with
  /// no explicit valid time ("we assume the data to be always valid").
  static TemporalElement Always() {
    return TemporalElement(Interval::Always());
  }

  /// The empty element.
  static TemporalElement Never() { return TemporalElement(); }

  /// A single chronon.
  static TemporalElement At(Chronon c) {
    return TemporalElement(Interval::At(c));
  }

  /// Parses a comma-separated list of intervals in the paper's notation,
  /// e.g. "[01/01/70-31/12/79],[01/01/85-NOW]".
  static Result<TemporalElement> Parse(const std::string& text);

  bool Empty() const { return size() == 0; }
  /// True iff the element is the whole time domain — O(1) thanks to the
  /// coalesced canonical form, and worth testing before Union/Intersect
  /// since Always is absorbing/identity there.
  bool IsAlways() const {
    return size() == 1 && data()[0].begin() == kMinChronon &&
           data()[0].end() == kForeverChronon;
  }

  /// Lightweight random-access view of the coalesced intervals; valid
  /// while the element is alive and unmodified.
  class View {
   public:
    View(const Interval* data, std::size_t size)
        : data_(data), size_(size) {}
    const Interval* begin() const { return data_; }
    const Interval* end() const { return data_ + size_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    const Interval& front() const { return data_[0]; }
    const Interval& back() const { return data_[size_ - 1]; }
    const Interval& operator[](std::size_t i) const { return data_[i]; }

   private:
    const Interval* data_;
    std::size_t size_;
  };

  View intervals() const { return View(data(), size()); }

  /// Total number of chronons in the element.
  std::int64_t Cardinality() const;

  bool Contains(Chronon c) const;
  /// True iff every chronon of `other` is in this element (the paper's
  /// "data is valid for any subset of its attached time").
  bool Covers(const TemporalElement& other) const;
  bool Overlaps(const TemporalElement& other) const;

  /// Set union (used by the temporal union operator rules in Section 4.2).
  TemporalElement Union(const TemporalElement& other) const;
  /// Set intersection (used for transitivity of the temporal partial order
  /// and the temporal aggregate formation rules).
  TemporalElement Intersect(const TemporalElement& other) const;
  /// Set difference (used by the temporal difference operator rules).
  TemporalElement Subtract(const TemporalElement& other) const;
  /// Complement with respect to the whole time domain.
  TemporalElement Complement() const;

  /// Adds one interval (coalescing).
  void Add(const Interval& interval);

  /// Replaces NOW endpoints with `reference` and drops intervals that
  /// become empty. The result contains only concrete chronons, suitable
  /// for timeslicing at a given point of time.
  TemporalElement Bind(Chronon reference) const;

  /// Formats the element, e.g. "[01/01/1970-31/12/1979],[01/01/1985-NOW]";
  /// the empty element prints as "{}" and Always as "[ALWAYS]".
  std::string ToString() const;

  friend bool operator==(const TemporalElement& a, const TemporalElement& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (!(a.data()[i] == b.data()[i])) return false;
    }
    return true;
  }
  friend std::ostream& operator<<(std::ostream& os,
                                  const TemporalElement& element) {
    return os << element.ToString();
  }

 private:
  const Interval* data() const {
    return overflow_.empty() ? &inline_ : overflow_.data();
  }
  std::size_t size() const {
    return overflow_.empty() ? inline_size_ : overflow_.size();
  }

  /// Installs an already-coalesced interval list, choosing the inline or
  /// overflow representation.
  void Assign(std::vector<Interval> coalesced);

  /// Sorts and merges `intervals` into canonical coalesced form.
  static void Coalesce(std::vector<Interval>& intervals);

  // Small-buffer representation. Lifespans attached to facts and
  // dimension edges are overwhelmingly a single interval (AlwaysSpan or
  // one era), and MVCC drafts clone millions of them per batch: keeping
  // the single-interval case inline makes those copies — and the retired
  // epoch's teardown — allocation-free. Invariant: size() <= 1 lives in
  // inline_/inline_size_ with overflow_ empty; size() >= 2 lives wholly
  // in overflow_.
  Interval inline_ = Interval(kMinChronon, kMinChronon);
  std::uint32_t inline_size_ = 0;
  std::vector<Interval> overflow_;
};

}  // namespace mddc

#endif  // MDDC_TEMPORAL_TEMPORAL_ELEMENT_H_
