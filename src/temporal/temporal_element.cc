#include "temporal/temporal_element.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"

namespace mddc {

TemporalElement::TemporalElement(std::initializer_list<Interval> intervals) {
  std::vector<Interval> list(intervals);
  Coalesce(list);
  Assign(std::move(list));
}

void TemporalElement::Assign(std::vector<Interval> coalesced) {
  if (coalesced.size() <= 1) {
    overflow_.clear();
    inline_size_ = static_cast<std::uint32_t>(coalesced.size());
    if (!coalesced.empty()) inline_ = coalesced.front();
  } else {
    overflow_ = std::move(coalesced);
    inline_size_ = 0;
  }
}

Result<TemporalElement> TemporalElement::Parse(const std::string& text) {
  TemporalElement element;
  if (text.empty() || text == "{}") return element;
  // Split on commas that separate bracketed intervals.
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find(',', start);
    if (end == std::string::npos) end = text.size();
    std::string token = text.substr(start, end - start);
    MDDC_ASSIGN_OR_RETURN(Interval interval, Interval::Parse(token));
    element.Add(interval);
    start = end + 1;
  }
  return element;
}

std::int64_t TemporalElement::Cardinality() const {
  std::int64_t total = 0;
  for (const Interval& i : intervals()) total += i.Length();
  return total;
}

bool TemporalElement::Contains(Chronon c) const {
  // Binary search over sorted disjoint intervals.
  const Interval* first = data();
  const Interval* last = first + size();
  auto it = std::upper_bound(
      first, last, c,
      [](Chronon value, const Interval& i) { return value < i.begin(); });
  if (it == first) return false;
  return std::prev(it)->Contains(c);
}

bool TemporalElement::Covers(const TemporalElement& other) const {
  return other.Subtract(*this).Empty();
}

bool TemporalElement::Overlaps(const TemporalElement& other) const {
  // Allocation-free two-pointer sweep over the sorted coalesced interval
  // lists (the same walk Intersect does, stopping at the first hit).
  const View mine = intervals();
  const View theirs = other.intervals();
  auto a = mine.begin();
  auto b = theirs.begin();
  while (a != mine.end() && b != theirs.end()) {
    if (std::max(a->begin(), b->begin()) <= std::min(a->end(), b->end())) {
      return true;
    }
    if (a->end() < b->end()) {
      ++a;
    } else {
      ++b;
    }
  }
  return false;
}

TemporalElement TemporalElement::Union(const TemporalElement& other) const {
  // Identity and single-interval fast paths stay allocation-free; they
  // cover the bulk of lifespan unions on the hot relate/coalesce paths.
  if (Empty()) return other;
  if (other.Empty()) return *this;
  if (size() == 1 && other.size() == 1) {
    const Interval& a = data()[0];
    const Interval& b = other.data()[0];
    if (a.Meets(b)) {
      return TemporalElement(Interval(std::min(a.begin(), b.begin()),
                                      std::max(a.end(), b.end())));
    }
  }
  std::vector<Interval> merged(intervals().begin(), intervals().end());
  merged.insert(merged.end(), other.intervals().begin(),
                other.intervals().end());
  Coalesce(merged);
  TemporalElement result;
  result.Assign(std::move(merged));
  return result;
}

TemporalElement TemporalElement::Intersect(
    const TemporalElement& other) const {
  // Absorbing/identity fast paths (Always is by far the most common
  // lifespan) and the single∩single case avoid the scratch vector.
  if (Empty() || other.IsAlways()) return *this;
  if (other.Empty() || IsAlways()) return other;
  if (size() == 1 && other.size() == 1) {
    const Chronon lo = std::max(data()[0].begin(), other.data()[0].begin());
    const Chronon hi = std::min(data()[0].end(), other.data()[0].end());
    return lo <= hi ? TemporalElement(Interval(lo, hi)) : TemporalElement();
  }
  const View mine = intervals();
  const View theirs = other.intervals();
  std::vector<Interval> out;
  auto a = mine.begin();
  auto b = theirs.begin();
  while (a != mine.end() && b != theirs.end()) {
    Chronon lo = std::max(a->begin(), b->begin());
    Chronon hi = std::min(a->end(), b->end());
    if (lo <= hi) out.emplace_back(lo, hi);
    if (a->end() < b->end()) {
      ++a;
    } else {
      ++b;
    }
  }
  // Inputs are coalesced and we emit in order, so the result is coalesced
  // except possibly for adjacency introduced by distinct input intervals;
  // normalize to be safe.
  Coalesce(out);
  TemporalElement result;
  result.Assign(std::move(out));
  return result;
}

TemporalElement TemporalElement::Subtract(const TemporalElement& other) const {
  if (Empty() || other.Empty()) return *this;
  const View mine = intervals();
  const View theirs = other.intervals();
  std::vector<Interval> out;
  auto b = theirs.begin();
  for (const Interval& interval : mine) {
    Chronon cursor = interval.begin();
    while (b != theirs.end() && b->end() < cursor) ++b;
    auto cut = b;
    while (cursor <= interval.end()) {
      if (cut == theirs.end() || cut->begin() > interval.end()) {
        out.emplace_back(cursor, interval.end());
        break;
      }
      if (cut->begin() > cursor) {
        out.emplace_back(cursor, cut->begin() - 1);
      }
      cursor = cut->end() + 1;
      ++cut;
    }
  }
  Coalesce(out);
  TemporalElement result;
  result.Assign(std::move(out));
  return result;
}

TemporalElement TemporalElement::Complement() const {
  return Always().Subtract(*this);
}

void TemporalElement::Add(const Interval& interval) {
  // The in-place analogues of Union's fast paths: an empty element and
  // the mergeable single-interval case never touch the heap.
  if (Empty()) {
    inline_ = interval;
    inline_size_ = 1;
    return;
  }
  if (size() == 1) {
    const Interval& current = data()[0];
    if (current.Meets(interval)) {
      inline_ = Interval(std::min(current.begin(), interval.begin()),
                         std::max(current.end(), interval.end()));
      inline_size_ = 1;
      overflow_.clear();
      return;
    }
  }
  std::vector<Interval> merged(intervals().begin(), intervals().end());
  merged.push_back(interval);
  Coalesce(merged);
  Assign(std::move(merged));
}

TemporalElement TemporalElement::Bind(Chronon reference) const {
  if (size() <= 1) {
    if (Empty()) return TemporalElement();
    Interval bound = data()[0].Bind(reference);
    return bound.begin() <= bound.end() ? TemporalElement(bound)
                                        : TemporalElement();
  }
  std::vector<Interval> out;
  for (const Interval& interval : intervals()) {
    Interval bound = interval.Bind(reference);
    if (bound.begin() <= bound.end()) out.push_back(bound);
  }
  Coalesce(out);
  TemporalElement result;
  result.Assign(std::move(out));
  return result;
}

std::string TemporalElement::ToString() const {
  if (Empty()) return "{}";
  if (IsAlways()) return "[ALWAYS]";
  std::vector<std::string> parts;
  parts.reserve(size());
  for (const Interval& i : intervals()) parts.push_back(i.ToString());
  return Join(parts, ",");
}

void TemporalElement::Coalesce(std::vector<Interval>& intervals) {
  if (intervals.size() <= 1) return;
  std::sort(intervals.begin(), intervals.end());
  std::vector<Interval> merged;
  merged.reserve(intervals.size());
  for (const Interval& interval : intervals) {
    if (!merged.empty() && merged.back().Meets(interval)) {
      Interval& last = merged.back();
      last = Interval(last.begin(), std::max(last.end(), interval.end()));
    } else {
      merged.push_back(interval);
    }
  }
  intervals = std::move(merged);
}

}  // namespace mddc
