#include "temporal/temporal_element.h"

#include <algorithm>

#include "common/strings.h"

namespace mddc {

TemporalElement::TemporalElement(std::initializer_list<Interval> intervals)
    : intervals_(intervals) {
  Coalesce();
}

Result<TemporalElement> TemporalElement::Parse(const std::string& text) {
  TemporalElement element;
  if (text.empty() || text == "{}") return element;
  // Split on commas that separate bracketed intervals.
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find(',', start);
    if (end == std::string::npos) end = text.size();
    std::string token = text.substr(start, end - start);
    MDDC_ASSIGN_OR_RETURN(Interval interval, Interval::Parse(token));
    element.Add(interval);
    start = end + 1;
  }
  return element;
}

std::int64_t TemporalElement::Cardinality() const {
  std::int64_t total = 0;
  for (const Interval& i : intervals_) total += i.Length();
  return total;
}

bool TemporalElement::Contains(Chronon c) const {
  // Binary search over sorted disjoint intervals.
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), c,
      [](Chronon value, const Interval& i) { return value < i.begin(); });
  if (it == intervals_.begin()) return false;
  return std::prev(it)->Contains(c);
}

bool TemporalElement::Covers(const TemporalElement& other) const {
  return other.Subtract(*this).Empty();
}

bool TemporalElement::Overlaps(const TemporalElement& other) const {
  // Allocation-free two-pointer sweep over the sorted coalesced interval
  // lists (the same walk Intersect does, stopping at the first hit).
  auto a = intervals_.begin();
  auto b = other.intervals_.begin();
  while (a != intervals_.end() && b != other.intervals_.end()) {
    if (std::max(a->begin(), b->begin()) <= std::min(a->end(), b->end())) {
      return true;
    }
    if (a->end() < b->end()) {
      ++a;
    } else {
      ++b;
    }
  }
  return false;
}

TemporalElement TemporalElement::Union(const TemporalElement& other) const {
  TemporalElement result;
  result.intervals_ = intervals_;
  result.intervals_.insert(result.intervals_.end(), other.intervals_.begin(),
                           other.intervals_.end());
  result.Coalesce();
  return result;
}

TemporalElement TemporalElement::Intersect(
    const TemporalElement& other) const {
  TemporalElement result;
  auto a = intervals_.begin();
  auto b = other.intervals_.begin();
  while (a != intervals_.end() && b != other.intervals_.end()) {
    Chronon lo = std::max(a->begin(), b->begin());
    Chronon hi = std::min(a->end(), b->end());
    if (lo <= hi) result.intervals_.emplace_back(lo, hi);
    if (a->end() < b->end()) {
      ++a;
    } else {
      ++b;
    }
  }
  // Inputs are coalesced and we emit in order, so the result is coalesced
  // except possibly for adjacency introduced by distinct input intervals;
  // normalize to be safe.
  result.Coalesce();
  return result;
}

TemporalElement TemporalElement::Subtract(const TemporalElement& other) const {
  TemporalElement result;
  auto b = other.intervals_.begin();
  for (const Interval& interval : intervals_) {
    Chronon cursor = interval.begin();
    while (b != other.intervals_.end() && b->end() < cursor) ++b;
    auto cut = b;
    while (cursor <= interval.end()) {
      if (cut == other.intervals_.end() || cut->begin() > interval.end()) {
        result.intervals_.emplace_back(cursor, interval.end());
        break;
      }
      if (cut->begin() > cursor) {
        result.intervals_.emplace_back(cursor, cut->begin() - 1);
      }
      cursor = cut->end() + 1;
      ++cut;
    }
  }
  result.Coalesce();
  return result;
}

TemporalElement TemporalElement::Complement() const {
  return Always().Subtract(*this);
}

void TemporalElement::Add(const Interval& interval) {
  intervals_.push_back(interval);
  Coalesce();
}

TemporalElement TemporalElement::Bind(Chronon reference) const {
  TemporalElement result;
  for (const Interval& interval : intervals_) {
    Interval bound = interval.Bind(reference);
    if (bound.begin() <= bound.end()) result.intervals_.push_back(bound);
  }
  result.Coalesce();
  return result;
}

std::string TemporalElement::ToString() const {
  if (intervals_.empty()) return "{}";
  if (*this == Always()) return "[ALWAYS]";
  std::vector<std::string> parts;
  parts.reserve(intervals_.size());
  for (const Interval& i : intervals_) parts.push_back(i.ToString());
  return Join(parts, ",");
}

void TemporalElement::Coalesce() {
  if (intervals_.size() <= 1) return;
  std::sort(intervals_.begin(), intervals_.end());
  std::vector<Interval> merged;
  merged.reserve(intervals_.size());
  for (const Interval& interval : intervals_) {
    if (!merged.empty() && merged.back().Meets(interval)) {
      Interval& last = merged.back();
      last = Interval(last.begin(), std::max(last.end(), interval.end()));
    } else {
      merged.push_back(interval);
    }
  }
  intervals_ = std::move(merged);
}

}  // namespace mddc
