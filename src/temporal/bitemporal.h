#ifndef MDDC_TEMPORAL_BITEMPORAL_H_
#define MDDC_TEMPORAL_BITEMPORAL_H_

#include <ostream>
#include <string>
#include <vector>

#include "temporal/temporal_element.h"

namespace mddc {

/// A set of bitemporal chronons Tt x Tv (paper Section 3.2: "We use
/// Tt x Tv to denote sets of bitemporal chronons"). Represented as a list
/// of rectangles (transaction-time interval x valid-time element). The
/// transaction-timeslice operator projects a rectangle set to the valid
/// time current at a given transaction time; the valid-timeslice operator
/// projects to the transaction times during which a given valid chronon
/// was recorded.
class BitemporalElement {
 public:
  /// One maximal rectangle: during transaction time `tt`, the recorded
  /// valid time was `vt`.
  struct Rectangle {
    Interval tt;
    TemporalElement vt;

    friend bool operator==(const Rectangle& a, const Rectangle& b) {
      return a.tt == b.tt && a.vt == b.vt;
    }
  };

  BitemporalElement() = default;

  /// Data recorded during `tt` with valid time `vt`.
  BitemporalElement(const Interval& tt, TemporalElement vt);

  /// Data inserted at transaction time `tt_begin`, never logically
  /// deleted (tt runs to NOW), with valid time `vt`.
  static BitemporalElement CurrentFrom(Chronon tt_begin, TemporalElement vt);

  bool Empty() const;
  const std::vector<Rectangle>& rectangles() const { return rectangles_; }

  /// Appends a rectangle (no cross-rectangle coalescing is attempted
  /// beyond dropping empty parts; rectangles with equal vt and adjacent tt
  /// are merged).
  void Add(const Interval& tt, const TemporalElement& vt);

  /// The valid-time element recorded as current at transaction time `t`
  /// (the rho_t operator of Section 4.2 applied to this element).
  TemporalElement TransactionTimeslice(Chronon t) const;

  /// The transaction times during which the valid chronon `v` was part of
  /// the recorded valid time.
  TemporalElement ValidTimeslice(Chronon v) const;

  /// Bitemporal union: chronon-set union in the Tt x Tv plane.
  BitemporalElement Union(const BitemporalElement& other) const;

  /// Bitemporal intersection in the Tt x Tv plane.
  BitemporalElement Intersect(const BitemporalElement& other) const;

  std::string ToString() const;

  friend bool operator==(const BitemporalElement& a,
                         const BitemporalElement& b) {
    return a.rectangles_ == b.rectangles_;
  }
  friend std::ostream& operator<<(std::ostream& os,
                                  const BitemporalElement& element) {
    return os << element.ToString();
  }

 private:
  void Normalize();

  std::vector<Rectangle> rectangles_;
};

}  // namespace mddc

#endif  // MDDC_TEMPORAL_BITEMPORAL_H_
