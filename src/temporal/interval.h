#ifndef MDDC_TEMPORAL_INTERVAL_H_
#define MDDC_TEMPORAL_INTERVAL_H_

#include <ostream>
#include <string>

#include "common/result.h"
#include "temporal/chronon.h"

namespace mddc {

/// A closed, non-empty interval of chronons [begin, end]. The end may be
/// kNowChronon (the growing NOW value of the case study's ValidTo column)
/// or kForeverChronon ("always valid"). Intervals are the building blocks
/// of TemporalElement; most code should use that type.
class Interval {
 public:
  /// Constructs [begin, end]; begin must be <= end (checked by Make).
  Interval(Chronon begin, Chronon end) : begin_(begin), end_(end) {}

  /// Validating factory; fails when begin > end.
  static Result<Interval> Make(Chronon begin, Chronon end);

  /// The single-chronon interval [c, c].
  static Interval At(Chronon c) { return Interval(c, c); }

  /// The whole time domain (the valid time of untimestamped data).
  static Interval Always() {
    return Interval(kMinChronon, kForeverChronon);
  }

  /// Parses the paper's notation, e.g. "01/01/80-NOW", "23/03/75-24/12/75".
  /// A single date "01/01/80" yields a one-chronon interval. "-" separates
  /// endpoints; each endpoint is dd/mm/yy, dd/mm/yyyy, "NOW" or "FOREVER".
  static Result<Interval> Parse(const std::string& text);

  Chronon begin() const { return begin_; }
  Chronon end() const { return end_; }

  bool Contains(Chronon c) const { return begin_ <= c && c <= end_; }
  bool Overlaps(const Interval& other) const {
    return begin_ <= other.end_ && other.begin_ <= end_;
  }
  /// True when this interval and `other` overlap or touch, i.e., their
  /// union is itself an interval (used for coalescing).
  bool Meets(const Interval& other) const {
    return begin_ <= other.end_ + 1 && other.begin_ <= end_ + 1;
  }

  /// Number of chronons in the interval.
  std::int64_t Length() const { return end_ - begin_ + 1; }

  /// Replaces a NOW endpoint with the reference chronon. If the interval
  /// becomes empty (begin > reference), returns an empty optional encoded
  /// as begin > end — callers must check IsEmptyAfterBind or use
  /// TemporalElement::Bind which drops such intervals.
  Interval Bind(Chronon reference) const;

  /// Formats using the paper's notation ("[01/01/1989-NOW]").
  std::string ToString() const;

  friend bool operator==(const Interval& a, const Interval& b) {
    return a.begin_ == b.begin_ && a.end_ == b.end_;
  }
  friend bool operator<(const Interval& a, const Interval& b) {
    return a.begin_ != b.begin_ ? a.begin_ < b.begin_ : a.end_ < b.end_;
  }
  friend std::ostream& operator<<(std::ostream& os, const Interval& i) {
    return os << i.ToString();
  }

 private:
  Chronon begin_;
  Chronon end_;
};

}  // namespace mddc

#endif  // MDDC_TEMPORAL_INTERVAL_H_
