#include "temporal/bitemporal.h"

#include <algorithm>

#include "common/strings.h"

namespace mddc {

BitemporalElement::BitemporalElement(const Interval& tt, TemporalElement vt) {
  Add(tt, vt);
}

BitemporalElement BitemporalElement::CurrentFrom(Chronon tt_begin,
                                                 TemporalElement vt) {
  return BitemporalElement(Interval(tt_begin, kNowChronon), std::move(vt));
}

bool BitemporalElement::Empty() const { return rectangles_.empty(); }

void BitemporalElement::Add(const Interval& tt, const TemporalElement& vt) {
  if (vt.Empty()) return;
  rectangles_.push_back(Rectangle{tt, vt});
  Normalize();
}

TemporalElement BitemporalElement::TransactionTimeslice(Chronon t) const {
  TemporalElement result;
  for (const Rectangle& r : rectangles_) {
    // A rectangle whose tt ends at NOW is current for every t at or after
    // its begin.
    Chronon end = r.tt.end() == kNowChronon ? kForeverChronon : r.tt.end();
    if (r.tt.begin() <= t && t <= end) result = result.Union(r.vt);
  }
  return result;
}

TemporalElement BitemporalElement::ValidTimeslice(Chronon v) const {
  TemporalElement result;
  for (const Rectangle& r : rectangles_) {
    if (r.vt.Contains(v)) result = result.Union(TemporalElement(r.tt));
  }
  return result;
}

BitemporalElement BitemporalElement::Union(
    const BitemporalElement& other) const {
  BitemporalElement result = *this;
  for (const Rectangle& r : other.rectangles_) result.Add(r.tt, r.vt);
  return result;
}

BitemporalElement BitemporalElement::Intersect(
    const BitemporalElement& other) const {
  BitemporalElement result;
  for (const Rectangle& a : rectangles_) {
    for (const Rectangle& b : other.rectangles_) {
      Chronon lo = std::max(a.tt.begin(), b.tt.begin());
      Chronon hi = std::min(a.tt.end(), b.tt.end());
      if (lo > hi) continue;
      TemporalElement vt = a.vt.Intersect(b.vt);
      if (!vt.Empty()) result.Add(Interval(lo, hi), vt);
    }
  }
  return result;
}

std::string BitemporalElement::ToString() const {
  if (rectangles_.empty()) return "{}";
  std::vector<std::string> parts;
  parts.reserve(rectangles_.size());
  for (const Rectangle& r : rectangles_) {
    parts.push_back(StrCat("tt=", r.tt.ToString(), " vt=", r.vt.ToString()));
  }
  return Join(parts, "; ");
}

void BitemporalElement::Normalize() {
  // Merge rectangles with identical valid time and meeting transaction
  // intervals; drop empties. Full 2-d coalescing is not required for
  // correctness of the timeslice operators.
  std::sort(rectangles_.begin(), rectangles_.end(),
            [](const Rectangle& a, const Rectangle& b) {
              if (!(a.tt == b.tt)) return a.tt < b.tt;
              return a.vt.ToString() < b.vt.ToString();
            });
  std::vector<Rectangle> merged;
  for (Rectangle& r : rectangles_) {
    if (r.vt.Empty()) continue;
    if (!merged.empty() && merged.back().vt == r.vt &&
        merged.back().tt.Meets(r.tt)) {
      Interval& last = merged.back().tt;
      last = Interval(std::min(last.begin(), r.tt.begin()),
                      std::max(last.end(), r.tt.end()));
    } else {
      merged.push_back(std::move(r));
    }
  }
  rectangles_ = std::move(merged);
}

}  // namespace mddc
