#ifndef MDDC_BASELINES_STAR_SCHEMA_H_
#define MDDC_BASELINES_STAR_SCHEMA_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/algebra.h"
#include "relational/relation.h"

namespace mddc {

/// A Kimball-style star schema engine [Kimball 1996], one of the two
/// surveyed models implemented as a baseline for Table 2 and the
/// benchmarks: a central fact table with one foreign key per dimension
/// plus measure columns, and one *denormalized* dimension table per
/// dimension (key column plus one column per hierarchy level).
///
/// The engine is faithful to the model's limitations, which is the point:
///
///  * each fact row has exactly ONE key per dimension, so many-to-many
///    fact-dimension relationships (requirement 6) force duplicated fact
///    rows and double-counted measures;
///  * each dimension row has exactly one value per level column, so
///    non-strict hierarchies (requirement 5) force duplicated dimension
///    rows and double counting on roll-up;
///  * slowly-changing dimensions (type 2: row versioning with
///    ValidFrom/ValidTo columns) give only partial support for change
///    over time (requirement 7), matching the 'p' in Table 2.
class StarSchemaEngine {
 public:
  /// Registers a dimension table. `key` names the surrogate-key column;
  /// the remaining columns are hierarchy levels (finest first).
  Status AddDimensionTable(const std::string& name,
                           relational::Relation table, std::string key);

  /// Sets the fact table. `foreign_keys` maps dimension names to the fact
  /// table's FK columns.
  Status SetFactTable(relational::Relation table,
                      std::map<std::string, std::string> foreign_keys);

  const relational::Relation& fact_table() const { return fact_; }
  Result<const relational::Relation*> dimension_table(
      const std::string& name) const;

  /// The star join: fact table joined with the given dimensions.
  Result<relational::Relation> JoinedView(
      const std::vector<std::string>& dimensions) const;

  /// Rolls up: group the star join by `level` (a column of dimension
  /// `dimension`) and apply the aggregate term. This is where the
  /// baseline's double counting is observable: a patient with two
  /// diagnoses in one group contributes two rows, and COUNT(*) counts
  /// both.
  Result<relational::Relation> AggregateByLevel(
      const std::string& dimension, const std::string& level,
      const relational::AggregateTerm& term) const;

  /// Type-2 slowly-changing-dimension lookup: the version of a dimension
  /// row current at `date`, using ValidFrom/ValidTo columns when present
  /// (dates as int64 day numbers). Returns all rows when the dimension
  /// has no validity columns.
  Result<relational::Relation> DimensionAsOf(const std::string& name,
                                             std::int64_t day) const;

 private:
  struct DimensionInfo {
    relational::Relation table;
    std::string key;
  };

  relational::Relation fact_;
  std::map<std::string, std::string> foreign_keys_;
  std::map<std::string, DimensionInfo> dimensions_;
};

}  // namespace mddc

#endif  // MDDC_BASELINES_STAR_SCHEMA_H_
