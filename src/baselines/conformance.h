#ifndef MDDC_BASELINES_CONFORMANCE_H_
#define MDDC_BASELINES_CONFORMANCE_H_

#include <array>
#include <string>
#include <vector>

#include "common/result.h"

namespace mddc {

/// The nine requirements of paper Section 2.2.
enum class Requirement {
  kExplicitHierarchies = 0,     // 1
  kSymmetricTreatment = 1,      // 2
  kMultipleHierarchies = 2,     // 3
  kCorrectAggregation = 3,      // 4
  kNonStrictHierarchies = 4,    // 5
  kManyToManyFactDim = 5,       // 6
  kChangeAndTime = 6,           // 7
  kUncertainty = 7,             // 8
  kMultipleGranularities = 8,   // 9
};

inline constexpr std::size_t kRequirementCount = 9;

/// Short name of a requirement, e.g. "non-strict hierarchies".
std::string_view RequirementName(Requirement requirement);

/// Level of support, matching the paper's legend.
enum class Support { kNone, kPartial, kFull };

/// The paper's symbols: 'V' for full (the paper's check mark), 'p' for
/// partial, '-' for none.
char SupportSymbol(Support support);

/// One row of the (extended) Table 2.
struct ModelRow {
  std::string name;
  std::array<Support, kRequirementCount> support;
  /// Per-requirement evidence: for probed rows, what was executed and
  /// observed; for published rows, "as published".
  std::array<std::string, kRequirementCount> evidence;
};

/// The eight published rows of Table 2 (the six models we do not
/// implement are reproduced from the paper's analysis; the Kimball and
/// Gray rows are additionally cross-checked by the probes below).
std::vector<ModelRow> PublishedTable2();

/// Runs the nine requirement probes against this library's extended
/// model. Each probe builds a scenario (clinical case-study shaped),
/// executes model/algebra operations and *verifies* the behavior the
/// requirement demands; any failure demotes the cell with the error as
/// evidence.
ModelRow ProbeExtendedModel();

/// Probes the Kimball star-schema baseline. Negative cells are
/// demonstrated, not asserted: e.g. the many-to-many probe shows the
/// engine double-counting a patient with two diagnoses in one group.
ModelRow ProbeStarSchemaBaseline();

/// Probes the Gray data-cube baseline.
ModelRow ProbeDataCubeBaseline();

/// Renders rows in the paper's matrix layout.
std::string RenderTable2(const std::vector<ModelRow>& rows);

/// True iff the probed row matches the published row cell-for-cell
/// (used to cross-validate the implemented baselines against the paper).
bool MatchesPublishedRow(const ModelRow& probed, const std::string& name);

}  // namespace mddc

#endif  // MDDC_BASELINES_CONFORMANCE_H_
