#include "baselines/data_cube.h"

#include "common/strings.h"

namespace mddc {

using relational::AggregateTerm;
using relational::Relation;
using relational::Tuple;
using relational::Value;

Value AllValue() { return Value(std::string("ALL")); }

bool IsAllValue(const Value& value) {
  return value.is_string() && *value.AsString() == "ALL";
}

namespace {

/// One grouping with the attributes in `rolled` replaced by ALL.
Result<Relation> GroupingWithAll(const Relation& r,
                                 const std::vector<std::string>& group_by,
                                 const std::vector<bool>& rolled,
                                 const AggregateTerm& term) {
  std::vector<std::string> keep;
  for (std::size_t i = 0; i < group_by.size(); ++i) {
    if (!rolled[i]) keep.push_back(group_by[i]);
  }
  MDDC_ASSIGN_OR_RETURN(Relation grouped,
                        relational::Aggregate(r, keep, {term}));
  // Expand back to full arity with ALL markers.
  std::vector<std::string> attributes = group_by;
  attributes.push_back(term.result_name);
  Relation result(std::move(attributes));
  for (const Tuple& tuple : grouped.tuples()) {
    Tuple out;
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < group_by.size(); ++i) {
      if (rolled[i]) {
        out.push_back(AllValue());
      } else {
        out.push_back(tuple[cursor++]);
      }
    }
    out.push_back(tuple[cursor]);
    MDDC_RETURN_NOT_OK(result.Insert(std::move(out)));
  }
  return result;
}

}  // namespace

Result<Relation> Cube(const Relation& r,
                      const std::vector<std::string>& group_by,
                      const AggregateTerm& term) {
  if (group_by.size() > 20) {
    return Status::InvalidArgument("cube over more than 20 attributes");
  }
  std::vector<std::string> attributes = group_by;
  attributes.push_back(term.result_name);
  Relation result(std::move(attributes));
  const std::size_t combinations = std::size_t{1} << group_by.size();
  for (std::size_t mask = 0; mask < combinations; ++mask) {
    std::vector<bool> rolled(group_by.size());
    for (std::size_t i = 0; i < group_by.size(); ++i) {
      rolled[i] = (mask >> i) & 1;
    }
    MDDC_ASSIGN_OR_RETURN(Relation grouping,
                          GroupingWithAll(r, group_by, rolled, term));
    for (const Tuple& tuple : grouping.tuples()) {
      MDDC_RETURN_NOT_OK(result.Insert(tuple));
    }
  }
  return result;
}

Result<Relation> RollUpCube(const Relation& r,
                            const std::vector<std::string>& group_by,
                            const AggregateTerm& term) {
  std::vector<std::string> attributes = group_by;
  attributes.push_back(term.result_name);
  Relation result(std::move(attributes));
  for (std::size_t level = 0; level <= group_by.size(); ++level) {
    std::vector<bool> rolled(group_by.size(), false);
    for (std::size_t i = group_by.size() - level; i < group_by.size(); ++i) {
      rolled[i] = true;
    }
    MDDC_ASSIGN_OR_RETURN(Relation grouping,
                          GroupingWithAll(r, group_by, rolled, term));
    for (const Tuple& tuple : grouping.tuples()) {
      MDDC_RETURN_NOT_OK(result.Insert(tuple));
    }
  }
  return result;
}

}  // namespace mddc
