#ifndef MDDC_BASELINES_DATA_CUBE_H_
#define MDDC_BASELINES_DATA_CUBE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/algebra.h"
#include "relational/relation.h"

namespace mddc {

/// The CUBE/ROLLUP operators of Gray et al. [ICDE 1996], the second
/// implemented baseline of Table 2. CUBE generalizes GROUP BY to all 2^n
/// combinations of the grouping attributes, writing the distinguished
/// value "ALL" for attributes rolled away — the construct the paper's top
/// value generalizes ("Value T is similar to the ALL construct of Gray et
/// al.").
///
/// The substrate is flat relations: hierarchies are just more columns, so
/// the model has no explicit hierarchies (requirement 1 '-' in Table 2),
/// no non-strict hierarchies, no fact-dimension many-to-many, no temporal
/// support — each probe in the conformance harness exercises one of these
/// gaps.

/// The distinguished ALL value.
relational::Value AllValue();

/// True iff `value` is the ALL marker.
bool IsAllValue(const relational::Value& value);

/// GROUP BY `group_by` with super-aggregates for every subset (CUBE).
Result<relational::Relation> Cube(const relational::Relation& r,
                                  const std::vector<std::string>& group_by,
                                  const relational::AggregateTerm& term);

/// GROUP BY with super-aggregates along one nesting order (ROLLUP):
/// (a,b,c), (a,b,ALL), (a,ALL,ALL), (ALL,ALL,ALL).
Result<relational::Relation> RollUpCube(
    const relational::Relation& r, const std::vector<std::string>& group_by,
    const relational::AggregateTerm& term);

}  // namespace mddc

#endif  // MDDC_BASELINES_DATA_CUBE_H_
