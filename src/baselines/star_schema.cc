#include "baselines/star_schema.h"

#include "common/strings.h"

namespace mddc {

using relational::AggregateTerm;
using relational::Condition;
using relational::Relation;
using relational::Tuple;
using relational::Value;

Status StarSchemaEngine::AddDimensionTable(const std::string& name,
                                           Relation table, std::string key) {
  if (!table.AttributeIndex(key).ok()) {
    return Status::InvalidArgument(
        StrCat("dimension table '", name, "' has no key column '", key,
               "'"));
  }
  if (dimensions_.count(name) != 0) {
    return Status::InvariantViolation(
        StrCat("dimension table '", name, "' already registered"));
  }
  dimensions_.emplace(name, DimensionInfo{std::move(table), std::move(key)});
  return Status::OK();
}

Status StarSchemaEngine::SetFactTable(
    Relation table, std::map<std::string, std::string> foreign_keys) {
  for (const auto& [dimension, fk] : foreign_keys) {
    if (dimensions_.count(dimension) == 0) {
      return Status::NotFound(
          StrCat("foreign key references unknown dimension '", dimension,
                 "'"));
    }
    if (!table.AttributeIndex(fk).ok()) {
      return Status::InvalidArgument(
          StrCat("fact table has no column '", fk, "'"));
    }
  }
  fact_ = std::move(table);
  foreign_keys_ = std::move(foreign_keys);
  return Status::OK();
}

Result<const Relation*> StarSchemaEngine::dimension_table(
    const std::string& name) const {
  auto it = dimensions_.find(name);
  if (it == dimensions_.end()) {
    return Status::NotFound(StrCat("no dimension table '", name, "'"));
  }
  return &it->second.table;
}

Result<Relation> StarSchemaEngine::JoinedView(
    const std::vector<std::string>& dimensions) const {
  Relation view = fact_;
  for (const std::string& name : dimensions) {
    auto it = dimensions_.find(name);
    if (it == dimensions_.end()) {
      return Status::NotFound(StrCat("no dimension table '", name, "'"));
    }
    auto fk = foreign_keys_.find(name);
    if (fk == foreign_keys_.end()) {
      return Status::NotFound(
          StrCat("fact table has no foreign key for dimension '", name,
                 "'"));
    }
    MDDC_ASSIGN_OR_RETURN(
        view, relational::EquiJoin(view, it->second.table,
                                   {{fk->second, it->second.key}}));
  }
  return view;
}

Result<Relation> StarSchemaEngine::AggregateByLevel(
    const std::string& dimension, const std::string& level,
    const AggregateTerm& term) const {
  MDDC_ASSIGN_OR_RETURN(Relation view, JoinedView({dimension}));
  return relational::Aggregate(view, {level}, {term});
}

Result<Relation> StarSchemaEngine::DimensionAsOf(const std::string& name,
                                                 std::int64_t day) const {
  auto it = dimensions_.find(name);
  if (it == dimensions_.end()) {
    return Status::NotFound(StrCat("no dimension table '", name, "'"));
  }
  const Relation& table = it->second.table;
  if (!table.AttributeIndex("ValidFrom").ok() ||
      !table.AttributeIndex("ValidTo").ok()) {
    return table;
  }
  MDDC_ASSIGN_OR_RETURN(
      Relation from_ok,
      relational::Select(
          table, Condition{"ValidFrom", Condition::Op::kLe, Value(day)}));
  return relational::Select(
      from_ok, Condition{"ValidTo", Condition::Op::kGe, Value(day)});
}

}  // namespace mddc
