#include "baselines/conformance.h"

#include <memory>

#include "algebra/derived.h"
#include "algebra/operators.h"
#include "algebra/timeslice.h"
#include "baselines/data_cube.h"
#include "baselines/star_schema.h"
#include "common/date.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "core/properties.h"
#include "uncertainty/probability.h"

namespace mddc {
namespace {

using relational::AggregateTerm;
using relational::Relation;
using relational::Value;

Chronon Day(const char* text) {
  auto parsed = ParseDate(text);
  return parsed.ok() ? *parsed : 0;
}

Lifespan During(const char* text) {
  auto interval = Interval::Parse(text);
  return interval.ok() ? Lifespan::ValidDuring(TemporalElement(*interval))
                       : Lifespan::AlwaysSpan();
}

/// A compact clinical scenario: the case-study Diagnosis dimension (two
/// groups, non-strict), plus an Age dimension, populated with two
/// patients — patient 2 carries several diagnoses.
struct Scenario {
  std::shared_ptr<FactRegistry> registry;
  MdObject mo;
  CategoryTypeIndex low = 0;
  CategoryTypeIndex family = 0;
  CategoryTypeIndex group = 0;
  CategoryTypeIndex age = 0;
  CategoryTypeIndex age_group = 0;
};

Result<Scenario> BuildScenario() {
  DimensionTypeBuilder diagnosis_builder("Diagnosis");
  diagnosis_builder.AddCategory("Low-level Diagnosis")
      .AddCategory("Diagnosis Family")
      .AddCategory("Diagnosis Group")
      .AddOrder("Low-level Diagnosis", "Diagnosis Family")
      .AddOrder("Diagnosis Family", "Diagnosis Group");
  MDDC_ASSIGN_OR_RETURN(auto diagnosis_type, diagnosis_builder.Build());
  Dimension diagnosis(diagnosis_type);
  CategoryTypeIndex low = *diagnosis_type->Find("Low-level Diagnosis");
  CategoryTypeIndex family = *diagnosis_type->Find("Diagnosis Family");
  CategoryTypeIndex group = *diagnosis_type->Find("Diagnosis Group");
  // Values mirror Table 1's current classification.
  MDDC_RETURN_NOT_OK(diagnosis.AddValue(low, ValueId(5)));
  MDDC_RETURN_NOT_OK(diagnosis.AddValue(low, ValueId(6)));
  MDDC_RETURN_NOT_OK(diagnosis.AddValue(family, ValueId(4)));
  MDDC_RETURN_NOT_OK(diagnosis.AddValue(family, ValueId(9)));
  MDDC_RETURN_NOT_OK(diagnosis.AddValue(family, ValueId(10)));
  MDDC_RETURN_NOT_OK(
      diagnosis.AddValue(family, ValueId(8), During("[01/10/70-31/12/79]")));
  MDDC_RETURN_NOT_OK(diagnosis.AddValue(group, ValueId(11)));
  MDDC_RETURN_NOT_OK(diagnosis.AddValue(group, ValueId(12)));
  MDDC_RETURN_NOT_OK(diagnosis.AddOrder(ValueId(5), ValueId(4)));
  MDDC_RETURN_NOT_OK(diagnosis.AddOrder(ValueId(6), ValueId(4)));
  MDDC_RETURN_NOT_OK(diagnosis.AddOrder(ValueId(5), ValueId(9)));
  MDDC_RETURN_NOT_OK(diagnosis.AddOrder(ValueId(6), ValueId(10)));
  MDDC_RETURN_NOT_OK(diagnosis.AddOrder(ValueId(9), ValueId(11)));
  MDDC_RETURN_NOT_OK(diagnosis.AddOrder(ValueId(10), ValueId(11)));
  MDDC_RETURN_NOT_OK(diagnosis.AddOrder(ValueId(4), ValueId(12)));
  MDDC_RETURN_NOT_OK(
      diagnosis.AddOrder(ValueId(8), ValueId(11), During("[01/01/80-NOW]")));

  DimensionTypeBuilder age_builder("Age");
  age_builder.AddCategory("Age", AggregationType::kSum)
      .AddCategory("Ten-year Group")
      .AddOrder("Age", "Ten-year Group");
  MDDC_ASSIGN_OR_RETURN(auto age_type, age_builder.Build());
  Dimension age_dim(age_type);
  CategoryTypeIndex age = *age_type->Find("Age");
  CategoryTypeIndex age_group = *age_type->Find("Ten-year Group");
  Representation& age_rep = age_dim.RepresentationFor(age, "Value");
  Representation& group_rep = age_dim.RepresentationFor(age_group, "Value");
  for (std::uint64_t g = 0; g < 10; ++g) {
    MDDC_RETURN_NOT_OK(age_dim.AddValue(age_group, ValueId(1000 + g)));
    MDDC_RETURN_NOT_OK(
        group_rep.Set(ValueId(1000 + g), StrCat(g * 10, "-", g * 10 + 9)));
  }
  for (std::uint64_t a = 0; a < 100; ++a) {
    MDDC_RETURN_NOT_OK(age_dim.AddValue(age, ValueId(a)));
    MDDC_RETURN_NOT_OK(age_rep.Set(ValueId(a), std::to_string(a)));
    MDDC_RETURN_NOT_OK(age_dim.AddOrder(ValueId(a), ValueId(1000 + a / 10)));
  }

  auto registry = std::make_shared<FactRegistry>();
  MdObject mo("Patient", {std::move(diagnosis), std::move(age_dim)}, registry,
              TemporalType::kValidTime);
  FactId p1 = registry->Atom(1);
  FactId p2 = registry->Atom(2);
  MDDC_RETURN_NOT_OK(mo.AddFact(p1));
  MDDC_RETURN_NOT_OK(mo.AddFact(p2));
  MDDC_RETURN_NOT_OK(mo.Relate(0, p1, ValueId(9), During("[01/01/89-NOW]")));
  MDDC_RETURN_NOT_OK(mo.Relate(0, p2, ValueId(5), During("[01/01/82-NOW]")));
  MDDC_RETURN_NOT_OK(mo.Relate(0, p2, ValueId(9), During("[01/01/82-NOW]")));
  MDDC_RETURN_NOT_OK(mo.Relate(1, p1, ValueId(29)));
  MDDC_RETURN_NOT_OK(mo.Relate(1, p2, ValueId(48)));
  return Scenario{registry, std::move(mo), low, family, group, age,
                  age_group};
}

struct ProbeResult {
  Support support = Support::kNone;
  std::string evidence;
};

ProbeResult Fail(const Status& status) {
  return ProbeResult{Support::kNone,
                     StrCat("probe failed: ", status.ToString())};
}

// ---- Probes for the extended model ---------------------------------------

ProbeResult ProbeModelExplicitHierarchies() {
  auto scenario = BuildScenario();
  if (!scenario.ok()) return Fail(scenario.status());
  const Dimension& diagnosis = scenario->mo.dimension(0);
  // The lattice is explicit metadata: navigate bottom-up.
  auto above = diagnosis.type().AtOrAbove(diagnosis.type().bottom());
  if (above.size() != 4) {
    return ProbeResult{Support::kNone, "lattice navigation failed"};
  }
  if (!diagnosis.LessEqAt(ValueId(5), ValueId(11))) {
    return ProbeResult{Support::kNone, "containment navigation failed"};
  }
  return ProbeResult{
      Support::kFull,
      "dimension types carry an explicit category lattice; value "
      "containment (5 <= 11) navigable"};
}

ProbeResult ProbeModelSymmetricTreatment() {
  auto scenario = BuildScenario();
  if (!scenario.ok()) return Fail(scenario.status());
  // Age as a measure: AVG over the Age dimension.
  AggregateSpec avg{AggFunction::Avg(1),
                    {scenario->mo.dimension(0).type().top(),
                     scenario->mo.dimension(1).type().top()},
                    ResultDimensionSpec::Auto("AvgAge"),
                    kNowChronon,
                    true};
  auto as_measure = AggregateFormation(scenario->mo, avg);
  if (!as_measure.ok()) return Fail(as_measure.status());
  // Age as a dimension: group by ten-year age group.
  auto as_dimension =
      RollUp(scenario->mo, 1, scenario->age_group, AggFunction::SetCount());
  if (!as_dimension.ok()) return Fail(as_dimension.status());
  return ProbeResult{Support::kFull,
                     "Age used for AVG (measure) and for ten-year grouping "
                     "(dimension) in the same MO"};
}

ProbeResult ProbeModelMultipleHierarchies() {
  DimensionTypeBuilder builder("DOB");
  builder.AddCategory("Day")
      .AddCategory("Week")
      .AddCategory("Month")
      .AddCategory("Year")
      .AddOrder("Day", "Week")
      .AddOrder("Day", "Month")
      .AddOrder("Month", "Year");
  auto type = builder.Build();
  if (!type.ok()) return Fail(type.status());
  auto day = (*type)->Find("Day");
  if (!day.ok()) return Fail(day.status());
  if ((*type)->Pred(*day).size() != 2) {
    return ProbeResult{Support::kNone, "Day should have two Pred categories"};
  }
  return ProbeResult{Support::kFull,
                     "Day rolls up into Week and into Month<Year: two "
                     "aggregation paths in one lattice"};
}

ProbeResult ProbeModelCorrectAggregation() {
  auto scenario = BuildScenario();
  if (!scenario.ok()) return Fail(scenario.status());
  // Illegal: SUM over diagnoses (aggregation type c).
  AggregateSpec bad{AggFunction::Sum(0),
                    {scenario->group, scenario->mo.dimension(1).type().top()},
                    ResultDimensionSpec::Auto(),
                    kNowChronon,
                    true};
  auto rejected = AggregateFormation(scenario->mo, bad);
  if (rejected.ok() ||
      rejected.status().code() != StatusCode::kIllegalAggregation) {
    return ProbeResult{Support::kNone, "SUM over diagnoses was not rejected"};
  }
  // Non-summarizable results degrade to c so they cannot be re-added.
  auto counted =
      RollUp(scenario->mo, 0, scenario->group, AggFunction::SetCount());
  if (!counted.ok()) return Fail(counted.status());
  const DimensionType& result_type =
      counted->dimension(counted->dimension_count() - 1).type();
  if (result_type.AggType(result_type.bottom()) !=
      AggregationType::kConstant) {
    return ProbeResult{Support::kNone,
                       "non-summarizable count not degraded to type c"};
  }
  return ProbeResult{Support::kFull,
                     "SUM over c-typed data rejected; overlapping counts "
                     "degraded to c, blocking double-counting reuse"};
}

ProbeResult ProbeModelNonStrict() {
  auto scenario = BuildScenario();
  if (!scenario.ok()) return Fail(scenario.status());
  const Dimension& diagnosis = scenario->mo.dimension(0);
  auto parents = diagnosis.AncestorsIn(ValueId(5), scenario->family);
  if (parents.size() != 2) {
    return ProbeResult{Support::kNone,
                       "diagnosis 5 should have two families"};
  }
  if (IsStrict(diagnosis)) {
    return ProbeResult{Support::kNone, "hierarchy wrongly considered strict"};
  }
  return ProbeResult{Support::kFull,
                     "diagnosis 5 is in families 4 and 9 simultaneously; "
                     "strictness checker reports non-strict"};
}

ProbeResult ProbeModelManyToMany() {
  auto scenario = BuildScenario();
  if (!scenario.ok()) return Fail(scenario.status());
  // Patient 2 has two diagnoses in group 11 — the count per group must
  // still be one per patient.
  auto counted =
      RollUp(scenario->mo, 0, scenario->group, AggFunction::SetCount());
  if (!counted.ok()) return Fail(counted.status());
  const std::size_t result_dim = counted->dimension_count() - 1;
  for (FactId group_fact : counted->facts()) {
    auto group_pairs = counted->relation(0).ForFact(group_fact);
    auto count_pairs = counted->relation(result_dim).ForFact(group_fact);
    if (group_pairs.empty() || count_pairs.empty()) continue;
    if (group_pairs.front()->value == ValueId(11)) {
      auto count = counted->dimension(result_dim)
                       .NumericValueOf(count_pairs.front()->value);
      if (!count.ok() || *count != 2.0) {
        return ProbeResult{Support::kNone,
                           "patient double-counted in diagnosis group 11"};
      }
    }
  }
  return ProbeResult{Support::kFull,
                     "patient 2 carries two diagnoses of group 11 yet is "
                     "counted once (SetCount over fact sets)"};
}

ProbeResult ProbeModelChangeAndTime() {
  auto scenario = BuildScenario();
  if (!scenario.ok()) return Fail(scenario.status());
  auto in_1999 = ValidTimeslice(scenario->mo, Day("01/06/99"));
  if (!in_1999.ok()) return Fail(in_1999.status());
  auto in_1975 = ValidTimeslice(scenario->mo, Day("15/06/75"));
  if (!in_1975.ok()) return Fail(in_1975.status());
  if (in_1999->dimension(0).HasValue(ValueId(8)) ||
      !in_1975->dimension(0).HasValue(ValueId(8))) {
    return ProbeResult{Support::kNone,
                       "timeslices do not reflect the classification change"};
  }
  return ProbeResult{
      Support::kFull,
      "valid-timeslice reconstructs the 1975 and 1999 classifications; "
      "the 8 <= 11 bridge supports analysis across the change"};
}

ProbeResult ProbeModelUncertainty() {
  auto scenario = BuildScenario();
  if (!scenario.ok()) return Fail(scenario.status());
  MdObject& mo = scenario->mo;
  FactId p3 = scenario->registry->Atom(3);
  if (Status s = mo.AddFact(p3); !s.ok()) return Fail(s);
  if (Status s = mo.Relate(0, p3, ValueId(6), Lifespan::AlwaysSpan(), 0.9);
      !s.ok()) {
    return Fail(s);
  }
  if (Status s = mo.Relate(1, p3, ValueId(55)); !s.ok()) return Fail(s);
  auto confident = Select(mo, Predicate::MinProbability(0, ValueId(6), 0.95));
  if (!confident.ok()) return Fail(confident.status());
  if (confident->fact_count() != 0) {
    return ProbeResult{Support::kNone, "probability threshold not honored"};
  }
  auto likely = Select(mo, Predicate::MinProbability(0, ValueId(6), 0.8));
  if (!likely.ok()) return Fail(likely.status());
  if (likely->fact_count() != 1) {
    return ProbeResult{Support::kNone, "0.9-certain diagnosis not selected"};
  }
  double expected = ExpectedCount({0.9});
  return ProbeResult{
      Support::kFull,
      StrCat("90%-certain diagnosis selectable by threshold; expected count ",
             FormatDouble(expected), " computable")};
}

ProbeResult ProbeModelGranularity() {
  auto scenario = BuildScenario();
  if (!scenario.ok()) return Fail(scenario.status());
  // Patient 1 is registered at *family* granularity (value 9), not at a
  // low-level diagnosis, yet participates in group-level analysis.
  auto facts = scenario->mo.FactsWith(0, ValueId(11));
  bool found = false;
  for (const auto& [fact, c] : facts) {
    (void)c;
    if (fact == scenario->registry->Atom(1)) found = true;
  }
  if (!found) {
    return ProbeResult{Support::kNone,
                       "family-granularity fact missing from group rollup"};
  }
  return ProbeResult{Support::kFull,
                     "fact related directly to a Diagnosis Family value "
                     "participates in Diagnosis Group analysis"};
}

// ---- Probes for the star-schema baseline ----------------------------------

/// The star schema for the clinical scenario: fact rows are
/// (patient, diagnosis_key); the diagnosis dimension table is
/// denormalized (key, low, family, group) — a non-strict child needs one
/// row per parent.
StarSchemaEngine BuildStarSchema() {
  StarSchemaEngine engine;
  Relation diagnosis({"diag_key", "low", "family", "grp"});
  // Low-level 5 under family 4 (group 12) and family 9 (group 11): the
  // denormalization duplicates the row.
  (void)diagnosis.Insert({Value(std::int64_t{1}), Value(std::string("5")),
                          Value(std::string("4")), Value(std::string("12"))});
  (void)diagnosis.Insert({Value(std::int64_t{2}), Value(std::string("5")),
                          Value(std::string("9")), Value(std::string("11"))});
  (void)diagnosis.Insert({Value(std::int64_t{3}), Value(std::string("6")),
                          Value(std::string("10")), Value(std::string("11"))});
  (void)engine.AddDimensionTable("Diagnosis", std::move(diagnosis),
                                 "diag_key");
  Relation fact({"patient", "diag_fk"});
  // Patient 2 has diagnoses 5 (via key 2, group 11) and 6 (group 11):
  // two fact rows for one patient.
  (void)fact.Insert({Value(std::int64_t{2}), Value(std::int64_t{2})});
  (void)fact.Insert({Value(std::int64_t{2}), Value(std::int64_t{3})});
  (void)fact.Insert({Value(std::int64_t{1}), Value(std::int64_t{2})});
  (void)engine.SetFactTable(std::move(fact), {{"Diagnosis", "diag_fk"}});
  return engine;
}

ProbeResult ProbeStarManyToMany() {
  StarSchemaEngine engine = BuildStarSchema();
  auto counts = engine.AggregateByLevel(
      "Diagnosis", "grp", {AggregateTerm::Func::kCountStar, "", "n"});
  if (!counts.ok()) return Fail(counts.status());
  // Group 11 truly has 2 patients; the star schema counts 3 fact rows.
  for (const auto& tuple : counts->tuples()) {
    if (tuple[0] == Value(std::string("11")) &&
        tuple[1] == Value(std::int64_t{3})) {
      return ProbeResult{
          Support::kNone,
          "demonstrated: COUNT(*) by group returns 3 for 2 patients — "
          "fact rows are duplicated per diagnosis (no fact-dimension "
          "many-to-many)"};
    }
  }
  return ProbeResult{Support::kNone,
                     "many-to-many unsupported (fact row per diagnosis)"};
}

ProbeResult ProbeStarNonStrict() {
  StarSchemaEngine engine = BuildStarSchema();
  auto table = engine.dimension_table("Diagnosis");
  if (!table.ok()) return Fail(table.status());
  // Low-level 5 appears in two rows — denormalization cannot express one
  // child with two parents without duplication.
  std::size_t rows_for_5 = 0;
  for (const auto& tuple : (*table)->tuples()) {
    if (tuple[1] == Value(std::string("5"))) ++rows_for_5;
  }
  return ProbeResult{
      Support::kNone,
      StrCat("demonstrated: non-strict child '5' needs ", rows_for_5,
             " dimension rows; roll-ups through it double count")};
}

ProbeResult ProbeStarChangeAndTime() {
  // SCD type 2: dimension rows versioned with ValidFrom/ValidTo.
  StarSchemaEngine engine;
  Relation diagnosis({"diag_key", "code", "ValidFrom", "ValidTo"});
  (void)diagnosis.Insert({Value(std::int64_t{8}), Value(std::string("D1")),
                          Value(*ParseDate("01/01/70")),
                          Value(*ParseDate("31/12/79"))});
  (void)diagnosis.Insert({Value(std::int64_t{11}), Value(std::string("E1")),
                          Value(*ParseDate("01/01/80")),
                          Value(*ParseDate("31/12/99"))});
  (void)engine.AddDimensionTable("Diagnosis", std::move(diagnosis),
                                 "diag_key");
  Relation fact({"patient", "diag_fk"});
  (void)engine.SetFactTable(std::move(fact), {{"Diagnosis", "diag_fk"}});
  auto in_75 = engine.DimensionAsOf("Diagnosis", Day("15/06/75"));
  if (!in_75.ok()) return Fail(in_75.status());
  if (in_75->size() != 1) {
    return ProbeResult{Support::kNone, "SCD-2 versioning failed"};
  }
  return ProbeResult{
      Support::kPartial,
      "SCD type 2 reconstructs dimension rows as-of a date, but there is "
      "no cross-version bridge (old Diabetes does not roll into new)"};
}

// ---- Probes for the data-cube baseline -------------------------------------

Relation CubeSales() {
  Relation r({"product", "region", "amount"});
  (void)r.Insert({Value(std::string("apples")), Value(std::string("North")),
                  Value(std::int64_t{10})});
  (void)r.Insert({Value(std::string("apples")), Value(std::string("South")),
                  Value(std::int64_t{20})});
  (void)r.Insert({Value(std::string("pears")), Value(std::string("North")),
                  Value(std::int64_t{5})});
  return r;
}

ProbeResult ProbeCubeSymmetric() {
  Relation r = CubeSales();
  // Any attribute can be grouped or aggregated: group by region, sum
  // amount; then group by amount, count regions.
  auto by_region = Cube(r, {"region"},
                        {AggregateTerm::Func::kSum, "amount", "total"});
  if (!by_region.ok()) return Fail(by_region.status());
  auto by_amount = Cube(r, {"amount"},
                        {AggregateTerm::Func::kCountStar, "", "n"});
  if (!by_amount.ok()) return Fail(by_amount.status());
  return ProbeResult{Support::kFull,
                     "any attribute groups or aggregates (ALL construct)"};
}

ProbeResult ProbeCubeMultipleHierarchies() {
  Relation r = CubeSales();
  auto cube =
      Cube(r, {"product", "region"},
           {AggregateTerm::Func::kSum, "amount", "total"});
  if (!cube.ok()) return Fail(cube.status());
  // 2^2 groupings materialized: all aggregation paths available.
  bool has_grand_total = false;
  for (const auto& tuple : cube->tuples()) {
    if (IsAllValue(tuple[0]) && IsAllValue(tuple[1]) &&
        tuple[2] == Value(35.0)) {
      has_grand_total = true;
    }
  }
  if (!has_grand_total) {
    return ProbeResult{Support::kNone, "cube grand total missing"};
  }
  return ProbeResult{Support::kFull,
                     "CUBE materializes every grouping combination"};
}

ProbeResult ProbeCubeCorrectAggregation() {
  return ProbeResult{
      Support::kPartial,
      "super-aggregates are consistent by construction, but nothing "
      "prevents summing non-additive data or double counting"};
}

}  // namespace

std::string_view RequirementName(Requirement requirement) {
  switch (requirement) {
    case Requirement::kExplicitHierarchies:
      return "explicit hierarchies";
    case Requirement::kSymmetricTreatment:
      return "symmetric dimensions/measures";
    case Requirement::kMultipleHierarchies:
      return "multiple hierarchies";
    case Requirement::kCorrectAggregation:
      return "correct aggregation";
    case Requirement::kNonStrictHierarchies:
      return "non-strict hierarchies";
    case Requirement::kManyToManyFactDim:
      return "many-to-many fact-dimension";
    case Requirement::kChangeAndTime:
      return "handling change and time";
    case Requirement::kUncertainty:
      return "handling uncertainty";
    case Requirement::kMultipleGranularities:
      return "different granularities";
  }
  return "?";
}

char SupportSymbol(Support support) {
  switch (support) {
    case Support::kNone:
      return '-';
    case Support::kPartial:
      return 'p';
    case Support::kFull:
      return 'V';
  }
  return '?';
}

std::vector<ModelRow> PublishedTable2() {
  const Support F = Support::kFull;
  const Support P = Support::kPartial;
  const Support N = Support::kNone;
  auto row = [](std::string name, std::array<Support, 9> support) {
    ModelRow r{std::move(name), support, {}};
    r.evidence.fill("as published (ICDE'99 Table 2)");
    return r;
  };
  return {
      row("Rafanelli [6]", {F, N, N, F, P, N, N, N, N}),
      row("Agrawal [5]", {P, F, F, N, P, N, N, N, N}),
      row("Gray [2]", {N, F, F, P, N, N, N, N, N}),
      row("Kimball [3]", {N, N, F, P, N, N, P, N, N}),
      row("Li [10]", {P, N, F, P, N, N, N, N, N}),
      row("Gyssens [9]", {N, F, F, P, N, N, N, N, N}),
      row("Datta [13]", {N, F, F, N, P, N, N, N, N}),
      row("Lehner [11]", {F, N, N, F, N, N, N, N, N}),
  };
}

ModelRow ProbeExtendedModel() {
  ModelRow row{"This paper (probed)", {}, {}};
  const ProbeResult results[kRequirementCount] = {
      ProbeModelExplicitHierarchies(), ProbeModelSymmetricTreatment(),
      ProbeModelMultipleHierarchies(), ProbeModelCorrectAggregation(),
      ProbeModelNonStrict(),           ProbeModelManyToMany(),
      ProbeModelChangeAndTime(),       ProbeModelUncertainty(),
      ProbeModelGranularity()};
  for (std::size_t i = 0; i < kRequirementCount; ++i) {
    row.support[i] = results[i].support;
    row.evidence[i] = results[i].evidence;
  }
  return row;
}

ModelRow ProbeStarSchemaBaseline() {
  ModelRow row{"Kimball star schema (probed)", {}, {}};
  row.support = {Support::kNone,    Support::kNone, Support::kFull,
                 Support::kPartial, Support::kNone, Support::kNone,
                 Support::kPartial, Support::kNone, Support::kNone};
  row.evidence.fill("structural: the model cannot express the concept");
  row.evidence[0] =
      "hierarchy levels are plain columns without lattice metadata";
  row.evidence[2] =
      "several independent level-column sets per dimension table";
  row.evidence[3] =
      "additive measures by convention; no aggregation-type safety";
  ProbeResult non_strict = ProbeStarNonStrict();
  row.support[4] = non_strict.support;
  row.evidence[4] = non_strict.evidence;
  ProbeResult m2m = ProbeStarManyToMany();
  row.support[5] = m2m.support;
  row.evidence[5] = m2m.evidence;
  ProbeResult scd = ProbeStarChangeAndTime();
  row.support[6] = scd.support;
  row.evidence[6] = scd.evidence;
  row.evidence[8] = "fact foreign keys must reference leaf-level rows";
  return row;
}

ModelRow ProbeDataCubeBaseline() {
  ModelRow row{"Gray data cube (probed)", {}, {}};
  row.support = {Support::kNone, Support::kFull,    Support::kFull,
                 Support::kPartial, Support::kNone, Support::kNone,
                 Support::kNone, Support::kNone,    Support::kNone};
  row.evidence.fill("structural: flat relations with ALL markers only");
  ProbeResult symmetric = ProbeCubeSymmetric();
  row.support[1] = symmetric.support;
  row.evidence[1] = symmetric.evidence;
  ProbeResult multiple = ProbeCubeMultipleHierarchies();
  row.support[2] = multiple.support;
  row.evidence[2] = multiple.evidence;
  ProbeResult correct = ProbeCubeCorrectAggregation();
  row.support[3] = correct.support;
  row.evidence[3] = correct.evidence;
  return row;
}

std::string RenderTable2(const std::vector<ModelRow>& rows) {
  std::vector<std::string> headers = {"Model"};
  for (std::size_t i = 1; i <= kRequirementCount; ++i) {
    headers.push_back(std::to_string(i));
  }
  TablePrinter printer(std::move(headers));
  for (const ModelRow& row : rows) {
    std::vector<std::string> cells = {row.name};
    for (Support support : row.support) {
      cells.push_back(std::string(1, SupportSymbol(support)));
    }
    printer.AddRow(std::move(cells));
  }
  return printer.ToString();
}

bool MatchesPublishedRow(const ModelRow& probed, const std::string& name) {
  for (const ModelRow& published : PublishedTable2()) {
    if (published.name == name) return published.support == probed.support;
  }
  return false;
}

}  // namespace mddc
