#ifndef MDDC_IO_CSV_H_
#define MDDC_IO_CSV_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/md_object.h"
#include "relational/relation.h"

namespace mddc {
namespace io {

/// CSV ingestion: the typical adoption path for the model is an existing
/// star-schema export — a denormalized dimension CSV per dimension
/// (finest level first) and a fact CSV with one row per fact-dimension
/// characterization. MoFromCsv builds a full MdObject from those files,
/// including hierarchies, numeric measure dimensions, valid-time columns
/// and probability columns.

/// Parses RFC-4180-ish CSV: first line is the header; fields separated by
/// commas; double-quote quoting with "" escapes; values type-inferred
/// (int, double, else string; empty field = NULL).
Result<relational::Relation> ParseCsv(const std::string& text);

/// Describes how a dimension CSV maps to a hierarchy dimension: the
/// columns are hierarchy levels, finest first ("area,county,region").
/// Every distinct value of a level column becomes a dimension value
/// (labeled by a "Name" representation); each row contributes
/// child <= parent edges between adjacent level columns.
struct CsvHierarchySpec {
  std::string dimension_name;
  std::vector<std::string> level_columns;  // finest first
};

/// Describes the fact CSV.
struct CsvFactSpec {
  std::string fact_type = "Fact";
  /// Column holding the fact's external key (integer).
  std::string fact_id_column;
  /// dimension name -> column holding the finest-level value the fact is
  /// characterized by. Empty cell = unknown (related to top).
  std::vector<std::pair<std::string, std::string>> characterizations;
  /// Numeric columns that become Sigma-typed measure dimensions.
  std::vector<std::string> measure_columns;
  /// Optional valid-time columns (dd/mm/yyyy or "NOW"); both or neither.
  std::string valid_from_column;
  std::string valid_to_column;
  /// Optional probability column ((0,1]; empty = certain).
  std::string probability_column;
  /// When set, the probability applies only to the characterization of
  /// this dimension (e.g. the physician's confidence concerns the
  /// Diagnosis, not the Residence); other pairs stay certain. When empty,
  /// the probability applies to every characterization of the row.
  std::string probability_dimension;
};

/// Builds an MO from a fact CSV plus one CSV per hierarchy dimension.
/// Rows with a repeated (fact, value) pair coalesce their valid times —
/// many-to-many characterizations are simply multiple rows.
Result<MdObject> MoFromCsv(
    const std::string& fact_csv,
    const std::map<std::string, std::string>& dimension_csvs,
    const std::vector<CsvHierarchySpec>& hierarchies,
    const CsvFactSpec& spec, std::shared_ptr<FactRegistry> registry);

}  // namespace io
}  // namespace mddc

#endif  // MDDC_IO_CSV_H_
