#include "io/csv.h"

#include <cstdlib>

#include "common/date.h"
#include "common/strings.h"

namespace mddc {
namespace io {
namespace {

using relational::Relation;
using relational::Tuple;
using relational::Value;

/// Splits one CSV record honoring double-quote quoting; `pos` advances
/// past the record (including the newline).
Result<std::vector<std::string>> ReadRecord(const std::string& text,
                                            std::size_t* pos,
                                            bool* is_null_mask) {
  (void)is_null_mask;
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  std::size_t i = *pos;
  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field += c;
      ++i;
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      ++i;
      continue;
    }
    if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
      ++i;
      continue;
    }
    if (c == '\n' || c == '\r') {
      while (i < text.size() && (text[i] == '\n' || text[i] == '\r')) ++i;
      break;
    }
    field += c;
    ++i;
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted CSV field");
  }
  fields.push_back(std::move(field));
  *pos = i;
  return fields;
}

Value InferValue(const std::string& field) {
  if (field.empty()) return Value::Null();
  char* end = nullptr;
  errno = 0;
  long long as_int = std::strtoll(field.c_str(), &end, 10);
  if (end != field.c_str() && *end == '\0') {
    return Value(static_cast<std::int64_t>(as_int));
  }
  double as_double = std::strtod(field.c_str(), &end);
  if (end != field.c_str() && *end == '\0') return Value(as_double);
  return Value(field);
}

Result<Chronon> ParseDateOrNow(const std::string& field) {
  if (field == "NOW") return kNowChronon;
  MDDC_ASSIGN_OR_RETURN(std::int64_t day, ParseDate(field));
  return static_cast<Chronon>(day);
}

/// Field access helper over a parsed Relation row.
class Row {
 public:
  Row(const Relation& relation, const Tuple& tuple)
      : relation_(relation), tuple_(tuple) {}

  Result<const Value*> Get(const std::string& column) const {
    MDDC_ASSIGN_OR_RETURN(std::size_t index,
                          relation_.AttributeIndex(column));
    return &tuple_[index];
  }

  Result<std::string> GetText(const std::string& column) const {
    MDDC_ASSIGN_OR_RETURN(const Value* value, Get(column));
    if (value->is_null()) return std::string();
    return value->ToString();
  }

 private:
  const Relation& relation_;
  const Tuple& tuple_;
};

}  // namespace

Result<Relation> ParseCsv(const std::string& text) {
  std::size_t pos = 0;
  MDDC_ASSIGN_OR_RETURN(std::vector<std::string> header,
                        ReadRecord(text, &pos, nullptr));
  if (header.empty() || (header.size() == 1 && header[0].empty())) {
    return Status::InvalidArgument("CSV without a header line");
  }
  Relation relation(header);
  while (pos < text.size()) {
    MDDC_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                          ReadRecord(text, &pos, nullptr));
    if (fields.size() == 1 && fields[0].empty()) continue;  // blank line
    if (fields.size() != header.size()) {
      return Status::InvalidArgument(
          StrCat("CSV row has ", fields.size(), " fields, header has ",
                 header.size()));
    }
    Tuple tuple;
    tuple.reserve(fields.size());
    for (const std::string& field : fields) {
      tuple.push_back(InferValue(field));
    }
    MDDC_RETURN_NOT_OK(relation.Insert(std::move(tuple)));
  }
  return relation;
}

Result<MdObject> MoFromCsv(
    const std::string& fact_csv,
    const std::map<std::string, std::string>& dimension_csvs,
    const std::vector<CsvHierarchySpec>& hierarchies,
    const CsvFactSpec& spec, std::shared_ptr<FactRegistry> registry) {
  // ---- Hierarchy dimensions ------------------------------------------------
  std::vector<Dimension> dimensions;
  // Per dimension: level column -> (text -> value id).
  std::vector<std::map<std::string, ValueId>> leaf_index;
  std::uint64_t next_value = 1;

  for (const CsvHierarchySpec& hierarchy : hierarchies) {
    if (hierarchy.level_columns.empty()) {
      return Status::InvalidArgument(
          StrCat("hierarchy '", hierarchy.dimension_name,
                 "' lists no level columns"));
    }
    auto csv = dimension_csvs.find(hierarchy.dimension_name);
    if (csv == dimension_csvs.end()) {
      return Status::NotFound(StrCat("no CSV provided for dimension '",
                                     hierarchy.dimension_name, "'"));
    }
    MDDC_ASSIGN_OR_RETURN(Relation table, ParseCsv(csv->second));

    DimensionTypeBuilder builder(hierarchy.dimension_name);
    for (std::size_t level = 0; level < hierarchy.level_columns.size();
         ++level) {
      builder.AddCategory(hierarchy.level_columns[level]);
      if (level > 0) {
        builder.AddOrder(hierarchy.level_columns[level - 1],
                         hierarchy.level_columns[level]);
      }
    }
    MDDC_ASSIGN_OR_RETURN(auto type, builder.Build());
    Dimension dimension(type);

    // Values per level, interned by text.
    std::vector<std::map<std::string, ValueId>> per_level(
        hierarchy.level_columns.size());
    for (const Tuple& tuple : table.tuples()) {
      Row row(table, tuple);
      ValueId previous;
      for (std::size_t level = 0; level < hierarchy.level_columns.size();
           ++level) {
        const std::string& column = hierarchy.level_columns[level];
        MDDC_ASSIGN_OR_RETURN(std::string text, row.GetText(column));
        if (text.empty()) {
          return Status::InvalidArgument(
              StrCat("empty '", column, "' cell in dimension '",
                     hierarchy.dimension_name, "'"));
        }
        auto [it, inserted] = per_level[level].try_emplace(text, ValueId());
        if (inserted) {
          MDDC_ASSIGN_OR_RETURN(CategoryTypeIndex category,
                                type->Find(column));
          it->second = ValueId(next_value++);
          MDDC_RETURN_NOT_OK(
              dimension.AddValue(category, it->second));
          Representation& rep =
              dimension.RepresentationFor(category, "Name");
          MDDC_RETURN_NOT_OK(rep.Set(it->second, text));
        }
        if (level > 0) {
          MDDC_RETURN_NOT_OK(dimension.AddOrder(previous, it->second));
        }
        previous = it->second;
      }
    }
    leaf_index.push_back(per_level.front());
    dimensions.push_back(std::move(dimension));
  }

  // ---- Fact CSV -----------------------------------------------------------
  MDDC_ASSIGN_OR_RETURN(Relation facts, ParseCsv(fact_csv));

  // Measure dimensions from numeric fact columns.
  std::vector<std::map<std::string, ValueId>> measure_index;
  for (const std::string& column : spec.measure_columns) {
    DimensionTypeBuilder builder(column);
    builder.AddCategory(column, AggregationType::kSum);
    MDDC_ASSIGN_OR_RETURN(auto type, builder.Build());
    Dimension dimension(type);
    CategoryTypeIndex bottom = type->bottom();
    Representation& rep = dimension.RepresentationFor(bottom, "Value");
    std::map<std::string, ValueId> index;
    for (const Tuple& tuple : facts.tuples()) {
      Row row(facts, tuple);
      MDDC_ASSIGN_OR_RETURN(std::string text, row.GetText(column));
      if (text.empty() || index.count(text) != 0) continue;
      ValueId id(next_value++);
      MDDC_RETURN_NOT_OK(dimension.AddValue(bottom, id));
      MDDC_RETURN_NOT_OK(rep.Set(id, text));
      index.emplace(text, id);
    }
    measure_index.push_back(std::move(index));
    dimensions.push_back(std::move(dimension));
  }

  MdObject mo(spec.fact_type, std::move(dimensions), registry,
              spec.valid_from_column.empty() ? TemporalType::kSnapshot
                                             : TemporalType::kValidTime);

  const bool temporal = !spec.valid_from_column.empty();
  if (temporal && spec.valid_to_column.empty()) {
    return Status::InvalidArgument(
        "valid_from_column requires valid_to_column");
  }

  for (const Tuple& tuple : facts.tuples()) {
    Row row(facts, tuple);
    MDDC_ASSIGN_OR_RETURN(const Value* id_value,
                          row.Get(spec.fact_id_column));
    MDDC_ASSIGN_OR_RETURN(std::int64_t raw_id, id_value->AsInt());
    FactId fact = registry->Atom(static_cast<std::uint64_t>(raw_id));
    MDDC_RETURN_NOT_OK(mo.AddFact(fact));

    Lifespan life = Lifespan::AlwaysSpan();
    if (temporal) {
      MDDC_ASSIGN_OR_RETURN(std::string from_text,
                            row.GetText(spec.valid_from_column));
      MDDC_ASSIGN_OR_RETURN(std::string to_text,
                            row.GetText(spec.valid_to_column));
      MDDC_ASSIGN_OR_RETURN(Chronon from, ParseDateOrNow(from_text));
      MDDC_ASSIGN_OR_RETURN(Chronon to, ParseDateOrNow(to_text));
      MDDC_ASSIGN_OR_RETURN(Interval interval, Interval::Make(from, to));
      life = Lifespan::ValidDuring(TemporalElement(interval));
    }
    double prob = 1.0;
    if (!spec.probability_column.empty()) {
      MDDC_ASSIGN_OR_RETURN(const Value* p,
                            row.Get(spec.probability_column));
      if (!p->is_null()) {
        MDDC_ASSIGN_OR_RETURN(prob, p->AsDouble());
      }
    }

    for (const auto& [dimension_name, column] : spec.characterizations) {
      MDDC_ASSIGN_OR_RETURN(std::size_t dim,
                            mo.FindDimension(dimension_name));
      // Hierarchies were added first, in order, so dim indexes leaf_index
      // directly while it is within range.
      if (dim >= leaf_index.size()) {
        return Status::InvalidArgument(
            StrCat("characterization column '", column,
                   "' targets non-hierarchy dimension '", dimension_name,
                   "'"));
      }
      MDDC_ASSIGN_OR_RETURN(std::string text, row.GetText(column));
      ValueId value;
      if (text.empty()) {
        value = mo.dimension(dim).top_value();  // unknown characterization
      } else {
        auto it = leaf_index[dim].find(text);
        if (it == leaf_index[dim].end()) {
          return Status::NotFound(
              StrCat("fact references unknown ", dimension_name,
                     " value '", text, "'"));
        }
        value = it->second;
      }
      double pair_prob = spec.probability_dimension.empty() ||
                                 spec.probability_dimension == dimension_name
                             ? prob
                             : 1.0;
      MDDC_RETURN_NOT_OK(mo.Relate(dim, fact, value, life, pair_prob));
    }
    for (std::size_t m = 0; m < spec.measure_columns.size(); ++m) {
      MDDC_ASSIGN_OR_RETURN(std::size_t dim,
                            mo.FindDimension(spec.measure_columns[m]));
      MDDC_ASSIGN_OR_RETURN(std::string text,
                            row.GetText(spec.measure_columns[m]));
      ValueId value = text.empty() ? mo.dimension(dim).top_value()
                                   : measure_index[m].at(text);
      MDDC_RETURN_NOT_OK(mo.Relate(dim, fact, value, life));
    }
  }
  MDDC_RETURN_NOT_OK(mo.Validate());
  return mo;
}

}  // namespace io
}  // namespace mddc
