#ifndef MDDC_IO_SERIALIZE_H_
#define MDDC_IO_SERIALIZE_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "core/md_object.h"

namespace mddc {
namespace io {

/// Text serialization of multidimensional objects: a line-oriented,
/// self-describing format covering the complete model — dimension-type
/// lattices with aggregation types, values with temporal category
/// membership, the partial order with lifespans and probabilities,
/// representations, structured facts (atoms, pairs, sets) and
/// fact-dimension relations.
///
/// Round-trip contract: WriteMo followed by ReadMo yields an MO that is
/// behaviorally identical (same schema, same containment/timeslice/
/// aggregation results). Fact ids are re-interned into the target
/// registry, so raw FactId values may differ while fact *structure*
/// (atom keys, pair/set shape) is preserved exactly.
///
/// Format sketch (version 1):
///
///   MDDC 1
///   MO "Patient" valid-time 6
///   DIMTYPE "Diagnosis" 4 <bottom> <top>
///   CAT "Low-level Diagnosis" c
///   TEDGE <child-cat> <parent-cat>
///   DIM 0
///   VALUE <id> <cat> <valid> <transaction>
///   ORDER <child> <parent> <prob> <valid> <transaction>
///   REP <cat> "Code"
///   MAP <value> "O24" <valid> <transaction>
///   FACT ATOM <key> | FACT PAIR <i> <j> | FACT SET <n> <i...>
///   MEMBER <i>
///   REL <dim> <fact-index> <value> <prob> <valid> <transaction>
///   END
///
/// Temporal elements serialize as ALWAYS, EMPTY, or a comma-separated
/// list of begin:end chronon pairs with NOW/INF/-INF markers.

/// Serializes an MO.
Result<std::string> WriteMo(const MdObject& mo);

/// Parses a serialized MO, interning facts into `registry`.
Result<MdObject> ReadMo(const std::string& text,
                        std::shared_ptr<FactRegistry> registry);

/// Convenience: file round-trips.
Status SaveMoToFile(const MdObject& mo, const std::string& path);
Result<MdObject> LoadMoFromFile(const std::string& path,
                                std::shared_ptr<FactRegistry> registry);

}  // namespace io
}  // namespace mddc

#endif  // MDDC_IO_SERIALIZE_H_
