#include "io/serialize.h"

#include <cerrno>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>

#include "common/strings.h"

namespace mddc {
namespace io {
namespace {

// ---- Lexical helpers -------------------------------------------------------

std::string QuoteString(const std::string& text) {
  std::string quoted = "\"";
  for (char c : text) {
    if (c == '"' || c == '\\') quoted += '\\';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

std::string EncodeChronon(Chronon c) {
  if (c == kNowChronon) return "NOW";
  if (c >= kForeverChronon) return "INF";
  if (c <= kMinChronon) return "-INF";
  return std::to_string(c);
}

Result<Chronon> DecodeChronon(const std::string& token) {
  if (token == "NOW") return kNowChronon;
  if (token == "INF") return kForeverChronon;
  if (token == "-INF") return kMinChronon;
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(token.c_str(), &end, 10);
  if (end == token.c_str() || *end != '\0') {
    return Status::InvalidArgument(StrCat("bad chronon '", token, "'"));
  }
  return static_cast<Chronon>(value);
}

std::string EncodeElement(const TemporalElement& element) {
  if (element == TemporalElement::Always()) return "ALWAYS";
  if (element.Empty()) return "EMPTY";
  std::vector<std::string> parts;
  for (const Interval& interval : element.intervals()) {
    parts.push_back(StrCat(EncodeChronon(interval.begin()), ":",
                           EncodeChronon(interval.end())));
  }
  return Join(parts, ",");
}

Result<TemporalElement> DecodeElement(const std::string& token) {
  if (token == "ALWAYS") return TemporalElement::Always();
  if (token == "EMPTY") return TemporalElement();
  TemporalElement element;
  for (const std::string& part : Split(token, ',')) {
    std::vector<std::string> endpoints = Split(part, ':');
    if (endpoints.size() != 2) {
      return Status::InvalidArgument(StrCat("bad interval '", part, "'"));
    }
    MDDC_ASSIGN_OR_RETURN(Chronon begin, DecodeChronon(endpoints[0]));
    MDDC_ASSIGN_OR_RETURN(Chronon end, DecodeChronon(endpoints[1]));
    MDDC_ASSIGN_OR_RETURN(Interval interval, Interval::Make(begin, end));
    element.Add(interval);
  }
  return element;
}

std::string EncodeLifespan(const Lifespan& life) {
  return StrCat(EncodeElement(life.valid), " ",
                EncodeElement(life.transaction));
}

/// Splits a line into whitespace-separated tokens, honoring quoted
/// strings with backslash escapes.
Result<std::vector<std::string>> TokenizeLine(const std::string& line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    if (line[i] == ' ' || line[i] == '\t') {
      ++i;
      continue;
    }
    if (line[i] == '"') {
      std::string text;
      ++i;
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\' && i + 1 < line.size()) ++i;
        text += line[i++];
      }
      if (i >= line.size()) {
        return Status::InvalidArgument("unterminated string in line");
      }
      ++i;  // closing quote
      tokens.push_back(std::move(text));
    } else {
      std::size_t start = i;
      while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
      tokens.push_back(line.substr(start, i - start));
    }
  }
  return tokens;
}

std::string TemporalTypeToken(TemporalType type) {
  return std::string(TemporalTypeName(type));
}

Result<TemporalType> DecodeTemporalType(const std::string& token) {
  for (TemporalType type :
       {TemporalType::kSnapshot, TemporalType::kValidTime,
        TemporalType::kTransactionTime, TemporalType::kBitemporal}) {
    if (token == TemporalTypeName(type)) return type;
  }
  return Status::InvalidArgument(StrCat("bad temporal type '", token, "'"));
}

std::string AggTypeToken(AggregationType type) {
  return std::string(AggregationTypeName(type));
}

Result<AggregationType> DecodeAggType(const std::string& token) {
  for (AggregationType type :
       {AggregationType::kConstant, AggregationType::kAverage,
        AggregationType::kSum}) {
    if (token == AggregationTypeName(type)) return type;
  }
  return Status::InvalidArgument(StrCat("bad aggregation type '", token,
                                        "'"));
}

Result<std::uint64_t> DecodeU64(const std::string& token) {
  errno = 0;
  char* end = nullptr;
  unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  if (end == token.c_str() || *end != '\0') {
    return Status::InvalidArgument(StrCat("bad integer '", token, "'"));
  }
  return static_cast<std::uint64_t>(value);
}

Result<double> DecodeDouble(const std::string& token) {
  char* end = nullptr;
  double value = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0') {
    return Status::InvalidArgument(StrCat("bad number '", token, "'"));
  }
  return value;
}

}  // namespace

Result<std::string> WriteMo(const MdObject& mo) {
  std::ostringstream out;
  out << "MDDC 1\n";
  out << "MO " << QuoteString(mo.schema().fact_type()) << " "
      << TemporalTypeToken(mo.temporal_type()) << " "
      << mo.dimension_count() << "\n";

  // Dimension types.
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    const DimensionType& type = mo.dimension(i).type();
    out << "DIMTYPE " << QuoteString(type.name()) << " "
        << type.category_count() << " " << type.bottom() << " "
        << type.top() << "\n";
    for (CategoryTypeIndex c = 0; c < type.category_count(); ++c) {
      out << "CAT " << QuoteString(type.category(c).name) << " "
          << AggTypeToken(type.AggType(c)) << "\n";
    }
    for (CategoryTypeIndex c = 0; c < type.category_count(); ++c) {
      for (CategoryTypeIndex parent : type.Pred(c)) {
        out << "TEDGE " << c << " " << parent << "\n";
      }
    }
  }

  // Dimension contents.
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    const Dimension& dimension = mo.dimension(i);
    out << "DIM " << i << "\n";
    for (ValueId value : dimension.AllValues()) {
      if (value == dimension.top_value()) continue;
      auto category = dimension.CategoryOf(value);
      auto membership = dimension.MembershipOf(value);
      out << "VALUE " << value.raw() << " " << *category << " "
          << EncodeLifespan(*membership) << "\n";
    }
    for (const Dimension::Edge& edge : dimension.edges()) {
      out << "ORDER " << edge.child.raw() << " " << edge.parent.raw() << " "
          << FormatDouble(edge.prob) << " " << EncodeLifespan(edge.life)
          << "\n";
    }
    for (const auto& [category, rep_name, rep] :
         dimension.AllRepresentations()) {
      out << "REP " << category << " " << QuoteString(rep_name) << "\n";
      for (ValueId value : dimension.ValuesIn(category)) {
        for (const auto& [text, life] : rep->GetAll(value)) {
          out << "MAP " << value.raw() << " " << QuoteString(text) << " "
              << EncodeLifespan(life) << "\n";
        }
      }
    }
  }

  // Facts: emit the transitive closure of referenced fact terms in
  // dependency order and index them by position.
  std::map<FactId, std::size_t> fact_index;
  std::vector<std::string> fact_lines;
  const FactRegistry& registry = *mo.registry();
  // Recursive emission (facts form a DAG: sets/pairs of earlier facts).
  std::function<Result<std::size_t>(FactId)> emit =
      [&](FactId fact) -> Result<std::size_t> {
    auto it = fact_index.find(fact);
    if (it != fact_index.end()) return it->second;
    MDDC_ASSIGN_OR_RETURN(FactTerm term, registry.Get(fact));
    std::string line;
    switch (term.kind) {
      case FactTerm::Kind::kAtom:
        line = StrCat("FACT ATOM ", term.atom);
        break;
      case FactTerm::Kind::kPair: {
        MDDC_ASSIGN_OR_RETURN(std::size_t first, emit(term.first));
        MDDC_ASSIGN_OR_RETURN(std::size_t second, emit(term.second));
        line = StrCat("FACT PAIR ", first, " ", second);
        break;
      }
      case FactTerm::Kind::kSet: {
        std::vector<std::string> members;
        for (FactId member : term.members) {
          MDDC_ASSIGN_OR_RETURN(std::size_t index, emit(member));
          members.push_back(std::to_string(index));
        }
        line = StrCat("FACT SET ", members.size(), " ", Join(members, " "));
        break;
      }
    }
    std::size_t index = fact_lines.size();
    fact_lines.push_back(std::move(line));
    fact_index.emplace(fact, index);
    return index;
  };
  for (FactId fact : mo.facts()) MDDC_RETURN_NOT_OK(emit(fact).status());
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    for (const FactDimRelation::Entry& entry : mo.relation(i).entries()) {
      MDDC_RETURN_NOT_OK(emit(entry.fact).status());
    }
  }
  for (const std::string& line : fact_lines) out << line << "\n";
  for (FactId fact : mo.facts()) {
    out << "MEMBER " << fact_index.at(fact) << "\n";
  }
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    for (const FactDimRelation::Entry& entry : mo.relation(i).entries()) {
      out << "REL " << i << " " << fact_index.at(entry.fact) << " "
          << entry.value.raw() << " " << FormatDouble(entry.prob) << " "
          << EncodeLifespan(entry.life) << "\n";
    }
  }
  out << "END\n";
  return out.str();
}

Result<MdObject> ReadMo(const std::string& text,
                        std::shared_ptr<FactRegistry> registry) {
  std::istringstream in(text);
  std::string line;

  auto next_tokens = [&](std::vector<std::string>* tokens) -> Result<bool> {
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      MDDC_ASSIGN_OR_RETURN(*tokens, TokenizeLine(line));
      if (!tokens->empty()) return true;
    }
    return false;
  };

  std::vector<std::string> tokens;
  MDDC_ASSIGN_OR_RETURN(bool has_header, next_tokens(&tokens));
  if (!has_header || tokens.size() != 2 || tokens[0] != "MDDC" ||
      tokens[1] != "1") {
    return Status::InvalidArgument("missing or unsupported MDDC header");
  }
  MDDC_ASSIGN_OR_RETURN(bool has_mo, next_tokens(&tokens));
  if (!has_mo || tokens.size() != 4 || tokens[0] != "MO") {
    return Status::InvalidArgument("missing MO line");
  }
  std::string fact_type = tokens[1];
  MDDC_ASSIGN_OR_RETURN(TemporalType temporal_type,
                        DecodeTemporalType(tokens[2]));
  MDDC_ASSIGN_OR_RETURN(std::uint64_t ndims, DecodeU64(tokens[3]));

  // Dimension types.
  std::vector<std::shared_ptr<const DimensionType>> types;
  MDDC_ASSIGN_OR_RETURN(bool more, next_tokens(&tokens));
  for (std::uint64_t d = 0; d < ndims; ++d) {
    if (!more || tokens[0] != "DIMTYPE" || tokens.size() != 5) {
      return Status::InvalidArgument("expected DIMTYPE line");
    }
    std::string type_name = tokens[1];
    MDDC_ASSIGN_OR_RETURN(std::uint64_t ncats, DecodeU64(tokens[2]));
    DimensionTypeBuilder builder(type_name);
    std::vector<std::string> category_names;
    for (std::uint64_t c = 0; c < ncats; ++c) {
      MDDC_ASSIGN_OR_RETURN(more, next_tokens(&tokens));
      if (!more || tokens[0] != "CAT" || tokens.size() != 3) {
        return Status::InvalidArgument("expected CAT line");
      }
      MDDC_ASSIGN_OR_RETURN(AggregationType agg, DecodeAggType(tokens[2]));
      builder.AddCategory(tokens[1], agg);
      category_names.push_back(tokens[1]);
    }
    MDDC_ASSIGN_OR_RETURN(more, next_tokens(&tokens));
    while (more && tokens[0] == "TEDGE") {
      if (tokens.size() != 3) {
        return Status::InvalidArgument("bad TEDGE line");
      }
      MDDC_ASSIGN_OR_RETURN(std::uint64_t child, DecodeU64(tokens[1]));
      MDDC_ASSIGN_OR_RETURN(std::uint64_t parent, DecodeU64(tokens[2]));
      if (child >= category_names.size() ||
          parent >= category_names.size()) {
        return Status::InvalidArgument("TEDGE index out of range");
      }
      builder.AddOrder(category_names[child], category_names[parent]);
      MDDC_ASSIGN_OR_RETURN(more, next_tokens(&tokens));
    }
    MDDC_ASSIGN_OR_RETURN(auto type, builder.Build());
    types.push_back(std::move(type));
  }

  // Dimensions.
  std::vector<Dimension> dimensions;
  dimensions.reserve(types.size());
  for (const auto& type : types) dimensions.emplace_back(type);
  while (more && tokens[0] != "FACT" && tokens[0] != "MEMBER" &&
         tokens[0] != "END") {
    if (tokens[0] != "DIM" || tokens.size() != 2) {
      return Status::InvalidArgument(
          StrCat("expected DIM line, got '", tokens[0], "'"));
    }
    MDDC_ASSIGN_OR_RETURN(std::uint64_t dim, DecodeU64(tokens[1]));
    if (dim >= dimensions.size()) {
      return Status::InvalidArgument("DIM index out of range");
    }
    Dimension& dimension = dimensions[dim];
    Representation* current_rep = nullptr;
    MDDC_ASSIGN_OR_RETURN(more, next_tokens(&tokens));
    while (more) {
      if (tokens[0] == "VALUE" && tokens.size() == 5) {
        MDDC_ASSIGN_OR_RETURN(std::uint64_t id, DecodeU64(tokens[1]));
        MDDC_ASSIGN_OR_RETURN(std::uint64_t category, DecodeU64(tokens[2]));
        MDDC_ASSIGN_OR_RETURN(TemporalElement valid,
                              DecodeElement(tokens[3]));
        MDDC_ASSIGN_OR_RETURN(TemporalElement transaction,
                              DecodeElement(tokens[4]));
        MDDC_RETURN_NOT_OK(dimension.AddValue(
            category, ValueId(id), Lifespan{valid, transaction}));
      } else if (tokens[0] == "ORDER" && tokens.size() == 6) {
        MDDC_ASSIGN_OR_RETURN(std::uint64_t child, DecodeU64(tokens[1]));
        MDDC_ASSIGN_OR_RETURN(std::uint64_t parent, DecodeU64(tokens[2]));
        MDDC_ASSIGN_OR_RETURN(double prob, DecodeDouble(tokens[3]));
        MDDC_ASSIGN_OR_RETURN(TemporalElement valid,
                              DecodeElement(tokens[4]));
        MDDC_ASSIGN_OR_RETURN(TemporalElement transaction,
                              DecodeElement(tokens[5]));
        MDDC_RETURN_NOT_OK(dimension.AddOrder(
            ValueId(child), ValueId(parent), Lifespan{valid, transaction},
            prob));
      } else if (tokens[0] == "REP" && tokens.size() == 3) {
        MDDC_ASSIGN_OR_RETURN(std::uint64_t category, DecodeU64(tokens[1]));
        current_rep = &dimension.RepresentationFor(category, tokens[2]);
      } else if (tokens[0] == "MAP" && tokens.size() == 5) {
        if (current_rep == nullptr) {
          return Status::InvalidArgument("MAP before REP");
        }
        MDDC_ASSIGN_OR_RETURN(std::uint64_t value, DecodeU64(tokens[1]));
        MDDC_ASSIGN_OR_RETURN(TemporalElement valid,
                              DecodeElement(tokens[3]));
        MDDC_ASSIGN_OR_RETURN(TemporalElement transaction,
                              DecodeElement(tokens[4]));
        MDDC_RETURN_NOT_OK(current_rep->Set(ValueId(value), tokens[2],
                                            Lifespan{valid, transaction}));
      } else {
        break;  // next section
      }
      MDDC_ASSIGN_OR_RETURN(more, next_tokens(&tokens));
    }
  }

  MdObject mo(fact_type, std::move(dimensions), registry, temporal_type);

  // Facts.
  std::vector<FactId> facts_by_index;
  while (more && tokens[0] == "FACT") {
    if (tokens.size() < 2) return Status::InvalidArgument("bad FACT line");
    if (tokens[1] == "ATOM" && tokens.size() == 3) {
      MDDC_ASSIGN_OR_RETURN(std::uint64_t key, DecodeU64(tokens[2]));
      facts_by_index.push_back(registry->Atom(key));
    } else if (tokens[1] == "PAIR" && tokens.size() == 4) {
      MDDC_ASSIGN_OR_RETURN(std::uint64_t a, DecodeU64(tokens[2]));
      MDDC_ASSIGN_OR_RETURN(std::uint64_t b, DecodeU64(tokens[3]));
      if (a >= facts_by_index.size() || b >= facts_by_index.size()) {
        return Status::InvalidArgument("PAIR index out of range");
      }
      facts_by_index.push_back(
          registry->Pair(facts_by_index[a], facts_by_index[b]));
    } else if (tokens[1] == "SET" && tokens.size() >= 3) {
      MDDC_ASSIGN_OR_RETURN(std::uint64_t count, DecodeU64(tokens[2]));
      if (tokens.size() != 3 + count) {
        return Status::InvalidArgument("SET arity mismatch");
      }
      std::vector<FactId> members;
      for (std::uint64_t m = 0; m < count; ++m) {
        MDDC_ASSIGN_OR_RETURN(std::uint64_t index, DecodeU64(tokens[3 + m]));
        if (index >= facts_by_index.size()) {
          return Status::InvalidArgument("SET index out of range");
        }
        members.push_back(facts_by_index[index]);
      }
      facts_by_index.push_back(registry->Set(std::move(members)));
    } else {
      return Status::InvalidArgument("bad FACT line");
    }
    MDDC_ASSIGN_OR_RETURN(more, next_tokens(&tokens));
  }

  while (more && tokens[0] == "MEMBER") {
    if (tokens.size() != 2) return Status::InvalidArgument("bad MEMBER");
    MDDC_ASSIGN_OR_RETURN(std::uint64_t index, DecodeU64(tokens[1]));
    if (index >= facts_by_index.size()) {
      return Status::InvalidArgument("MEMBER index out of range");
    }
    MDDC_RETURN_NOT_OK(mo.AddFact(facts_by_index[index]));
    MDDC_ASSIGN_OR_RETURN(more, next_tokens(&tokens));
  }

  while (more && tokens[0] == "REL") {
    if (tokens.size() != 7) return Status::InvalidArgument("bad REL line");
    MDDC_ASSIGN_OR_RETURN(std::uint64_t dim, DecodeU64(tokens[1]));
    MDDC_ASSIGN_OR_RETURN(std::uint64_t fact_index, DecodeU64(tokens[2]));
    MDDC_ASSIGN_OR_RETURN(std::uint64_t value, DecodeU64(tokens[3]));
    MDDC_ASSIGN_OR_RETURN(double prob, DecodeDouble(tokens[4]));
    MDDC_ASSIGN_OR_RETURN(TemporalElement valid, DecodeElement(tokens[5]));
    MDDC_ASSIGN_OR_RETURN(TemporalElement transaction,
                          DecodeElement(tokens[6]));
    if (fact_index >= facts_by_index.size()) {
      return Status::InvalidArgument("REL fact index out of range");
    }
    if (dim >= mo.dimension_count()) {
      return Status::InvalidArgument("REL dimension out of range");
    }
    ValueId target = value == (std::uint64_t{1} << 63)
                         ? mo.dimension(dim).top_value()
                         : ValueId(value);
    MDDC_RETURN_NOT_OK(mo.Relate(dim, facts_by_index[fact_index], target,
                                 Lifespan{valid, transaction}, prob));
    MDDC_ASSIGN_OR_RETURN(more, next_tokens(&tokens));
  }

  if (!more || tokens[0] != "END") {
    return Status::InvalidArgument("missing END marker");
  }
  MDDC_RETURN_NOT_OK(mo.Validate());
  return mo;
}

Status SaveMoToFile(const MdObject& mo, const std::string& path) {
  MDDC_ASSIGN_OR_RETURN(std::string text, WriteMo(mo));
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument(StrCat("cannot open '", path,
                                          "' for writing"));
  }
  out << text;
  return out.good() ? Status::OK()
                    : Status::InvalidArgument(
                          StrCat("write to '", path, "' failed"));
}

Result<MdObject> LoadMoFromFile(const std::string& path,
                                std::shared_ptr<FactRegistry> registry) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(StrCat("cannot open '", path, "'"));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadMo(buffer.str(), std::move(registry));
}

}  // namespace io
}  // namespace mddc
