#include "algebra/expression.h"

#include <optional>

#include "common/strings.h"

namespace mddc {

struct Expression::Node {
  enum class Kind {
    kLeaf,
    kSelect,
    kProject,
    kRename,
    kUnion,
    kDifference,
    kJoin,
    kAggregate,
    kValidSlice,
    kTransactionSlice,
  };

  Kind kind = Kind::kLeaf;
  std::shared_ptr<const Node> left;
  std::shared_ptr<const Node> right;

  std::optional<MdObject> mo;  // kLeaf
  std::string label = "M";
  std::optional<Predicate> predicate;
  std::vector<std::size_t> dims;
  std::optional<RenameSpec> rename;
  JoinPredicate join_predicate = JoinPredicate::kTrue;
  std::optional<AggregateSpec> aggregate;
  Chronon slice_at = 0;
};

namespace {

using Node = Expression::Node;

Result<MdObject> EvaluateNode(const Node& node) {
  switch (node.kind) {
    case Node::Kind::kLeaf:
      return *node.mo;
    case Node::Kind::kSelect: {
      MDDC_ASSIGN_OR_RETURN(MdObject input, EvaluateNode(*node.left));
      return Select(input, *node.predicate);
    }
    case Node::Kind::kProject: {
      MDDC_ASSIGN_OR_RETURN(MdObject input, EvaluateNode(*node.left));
      return Project(input, node.dims);
    }
    case Node::Kind::kRename: {
      MDDC_ASSIGN_OR_RETURN(MdObject input, EvaluateNode(*node.left));
      return Rename(input, *node.rename);
    }
    case Node::Kind::kUnion: {
      MDDC_ASSIGN_OR_RETURN(MdObject left, EvaluateNode(*node.left));
      MDDC_ASSIGN_OR_RETURN(MdObject right, EvaluateNode(*node.right));
      return Union(left, right);
    }
    case Node::Kind::kDifference: {
      MDDC_ASSIGN_OR_RETURN(MdObject left, EvaluateNode(*node.left));
      MDDC_ASSIGN_OR_RETURN(MdObject right, EvaluateNode(*node.right));
      return Difference(left, right);
    }
    case Node::Kind::kJoin: {
      MDDC_ASSIGN_OR_RETURN(MdObject left, EvaluateNode(*node.left));
      MDDC_ASSIGN_OR_RETURN(MdObject right, EvaluateNode(*node.right));
      return Join(left, right, node.join_predicate);
    }
    case Node::Kind::kAggregate: {
      MDDC_ASSIGN_OR_RETURN(MdObject input, EvaluateNode(*node.left));
      return AggregateFormation(input, *node.aggregate);
    }
    case Node::Kind::kValidSlice: {
      MDDC_ASSIGN_OR_RETURN(MdObject input, EvaluateNode(*node.left));
      return ValidTimeslice(input, node.slice_at);
    }
    case Node::Kind::kTransactionSlice: {
      MDDC_ASSIGN_OR_RETURN(MdObject input, EvaluateNode(*node.left));
      return TransactionTimeslice(input, node.slice_at);
    }
  }
  return Status::InvalidArgument("unknown expression node kind");
}

std::string NodeToString(const Node& node) {
  switch (node.kind) {
    case Node::Kind::kLeaf:
      return node.label;
    case Node::Kind::kSelect:
      return StrCat("sigma[", node.predicate->ToString(), "](",
                    NodeToString(*node.left), ")");
    case Node::Kind::kProject: {
      std::vector<std::string> dims;
      for (std::size_t d : node.dims) dims.push_back(std::to_string(d));
      return StrCat("pi[", Join(dims, ","), "](", NodeToString(*node.left),
                    ")");
    }
    case Node::Kind::kRename:
      return StrCat("rho(", NodeToString(*node.left), ")");
    case Node::Kind::kUnion:
      return StrCat("(", NodeToString(*node.left), " u ",
                    NodeToString(*node.right), ")");
    case Node::Kind::kDifference:
      return StrCat("(", NodeToString(*node.left), " \\ ",
                    NodeToString(*node.right), ")");
    case Node::Kind::kJoin:
      return StrCat("(", NodeToString(*node.left), " |x| ",
                    NodeToString(*node.right), ")");
    case Node::Kind::kAggregate:
      return StrCat("alpha[", node.aggregate->function.name(), "](",
                    NodeToString(*node.left), ")");
    case Node::Kind::kValidSlice:
      return StrCat("rho_v[", node.slice_at, "](", NodeToString(*node.left),
                    ")");
    case Node::Kind::kTransactionSlice:
      return StrCat("rho_t[", node.slice_at, "](", NodeToString(*node.left),
                    ")");
  }
  return "?";
}

std::size_t CountOperators(const Node& node) {
  std::size_t count = node.kind == Node::Kind::kLeaf ? 0 : 1;
  if (node.left != nullptr) count += CountOperators(*node.left);
  if (node.right != nullptr) count += CountOperators(*node.right);
  return count;
}

}  // namespace

Expression Expression::Leaf(MdObject mo, std::string label) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kLeaf;
  node->mo = std::move(mo);
  node->label = std::move(label);
  return Expression(node);
}

Expression Expression::Select(Expression input, Predicate predicate) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kSelect;
  node->left = input.root_;
  node->predicate = std::move(predicate);
  return Expression(node);
}

Expression Expression::Project(Expression input,
                               std::vector<std::size_t> dims) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kProject;
  node->left = input.root_;
  node->dims = std::move(dims);
  return Expression(node);
}

Expression Expression::Rename(Expression input, RenameSpec spec) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kRename;
  node->left = input.root_;
  node->rename = std::move(spec);
  return Expression(node);
}

Expression Expression::Union(Expression left, Expression right) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kUnion;
  node->left = left.root_;
  node->right = right.root_;
  return Expression(node);
}

Expression Expression::Difference(Expression left, Expression right) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kDifference;
  node->left = left.root_;
  node->right = right.root_;
  return Expression(node);
}

Expression Expression::Join(Expression left, Expression right,
                            JoinPredicate predicate) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kJoin;
  node->left = left.root_;
  node->right = right.root_;
  node->join_predicate = predicate;
  return Expression(node);
}

Expression Expression::Aggregate(Expression input, AggregateSpec spec) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kAggregate;
  node->left = input.root_;
  node->aggregate = std::move(spec);
  return Expression(node);
}

Expression Expression::ValidSlice(Expression input, Chronon t) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kValidSlice;
  node->left = input.root_;
  node->slice_at = t;
  return Expression(node);
}

Expression Expression::TransactionSlice(Expression input, Chronon t) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kTransactionSlice;
  node->left = input.root_;
  node->slice_at = t;
  return Expression(node);
}

Result<MdObject> Expression::Evaluate() const { return EvaluateNode(*root_); }

std::string Expression::ToString() const { return NodeToString(*root_); }

std::size_t Expression::OperatorCount() const {
  return CountOperators(*root_);
}

}  // namespace mddc
