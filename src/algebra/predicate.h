#ifndef MDDC_ALGEBRA_PREDICATE_H_
#define MDDC_ALGEBRA_PREDICATE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/md_object.h"

namespace mddc {

/// A predicate on the dimension values characterizing a fact, used by the
/// selection operator (paper Section 4.1): sigma[p](M) keeps the facts f
/// for which there exist characterizing values e_1..e_n with p(e_1..e_n).
///
/// Predicates are composable trees. Leaves existentially quantify over a
/// fact's characterizing values in one dimension ("f is characterized by
/// some value of category C whose Code representation is 'E10'");
/// combinators are And/Or/Not. Temporal leaves restrict the time at which
/// a characterization must hold, supporting the paper's "predicates that
/// refer to time" (Section 4.2); probabilistic leaves threshold the
/// characterization probability (Section 3.3).
class Predicate {
 public:
  /// Always true (selection degenerates to identity).
  static Predicate True();

  /// f ~> value in dimension `dim` at some time.
  static Predicate CharacterizedBy(std::size_t dim, ValueId value);

  /// f ~> value in dimension `dim` at valid chronon `at`.
  static Predicate CharacterizedByAt(std::size_t dim, ValueId value,
                                     Chronon at);

  /// f ~> value during every chronon of `element`.
  static Predicate CharacterizedThroughout(std::size_t dim, ValueId value,
                                           TemporalElement element);

  /// f is characterized by some non-top value of category `category` in
  /// dimension `dim`.
  static Predicate HasValueInCategory(std::size_t dim,
                                      CategoryTypeIndex category);

  /// f ~> the value of category `category` whose representation
  /// `rep_name` equals `text` (at chronon `at` for the name lookup).
  static Predicate RepresentationEquals(std::size_t dim,
                                        CategoryTypeIndex category,
                                        std::string rep_name,
                                        std::string text,
                                        Chronon at = kNowChronon);

  enum class Comparison { kLess, kLessEq, kEq, kGreaterEq, kGreater };

  /// Some directly related value of dimension `dim` has a numeric
  /// interpretation satisfying `comparison` against `bound` (e.g.
  /// "Age >= 65").
  static Predicate NumericCompare(std::size_t dim, Comparison comparison,
                                  double bound);

  /// f ~> value with probability at least `threshold` (uncertainty
  /// selection, e.g. "at least 95% certain diabetics").
  static Predicate MinProbability(std::size_t dim, ValueId value,
                                  double threshold,
                                  Chronon at = kNowChronon);

  /// Some directly related value of dimension `dim_a` and some of
  /// dimension `dim_b` share the same `rep_name` representation text at
  /// chronon `at` (an attribute = attribute comparison in relational
  /// terms; enables equi-join simulation for Theorem 2). Top values never
  /// match.
  static Predicate SameRepresentedValue(std::size_t dim_a, std::size_t dim_b,
                                        std::string rep_name = "Value",
                                        Chronon at = kNowChronon);

  Predicate And(Predicate other) const;
  Predicate Or(Predicate other) const;
  Predicate Not() const;

  /// Evaluates the predicate for one fact of `mo`.
  Result<bool> Evaluate(const MdObject& mo, FactId fact) const;

  /// Human-readable form, e.g. "(char(0,9) AND NOT num(1 >= 65))".
  std::string ToString() const;

  /// Implementation detail (defined in predicate.cc); public only so the
  /// evaluation helpers there can name it.
  struct Node;

 private:
  explicit Predicate(std::shared_ptr<const Node> root)
      : root_(std::move(root)) {}

  std::shared_ptr<const Node> root_;
};

}  // namespace mddc

#endif  // MDDC_ALGEBRA_PREDICATE_H_
