#include "algebra/timeslice.h"

#include "common/strings.h"

namespace mddc {
namespace {

enum class Axis { kValid, kTransaction };

const TemporalElement& Component(const Lifespan& life, Axis axis) {
  return axis == Axis::kValid ? life.valid : life.transaction;
}

/// Clears the sliced component (the slice "has no valid time attached").
Lifespan Residual(const Lifespan& life, Axis axis) {
  Lifespan result = life;
  if (axis == Axis::kValid) {
    result.valid = TemporalElement::Always();
  } else {
    result.transaction = TemporalElement::Always();
  }
  return result;
}

Result<Dimension> TimesliceDimension(const Dimension& dimension, Chronon t,
                                     Axis axis) {
  Dimension result(dimension.type_ptr());
  for (ValueId value : dimension.AllValues()) {
    if (value == dimension.top_value()) continue;
    MDDC_ASSIGN_OR_RETURN(Lifespan membership, dimension.MembershipOf(value));
    if (!Component(membership, axis).Contains(t)) continue;
    MDDC_ASSIGN_OR_RETURN(CategoryTypeIndex category,
                          dimension.CategoryOf(value));
    MDDC_RETURN_NOT_OK(
        result.AddValue(category, value, Residual(membership, axis)));
  }
  for (const Dimension::Edge& edge : dimension.edges()) {
    if (!Component(edge.life, axis).Contains(t)) continue;
    if (!result.HasValue(edge.child) || !result.HasValue(edge.parent)) {
      continue;  // an endpoint was not a member at t
    }
    MDDC_RETURN_NOT_OK(result.AddOrder(edge.child, edge.parent,
                                       Residual(edge.life, axis), edge.prob));
  }
  for (const auto& [category, rep_name, rep] :
       dimension.AllRepresentations()) {
    Representation& target = result.RepresentationFor(category, rep_name);
    for (ValueId value : dimension.ValuesIn(category)) {
      if (!result.HasValue(value)) continue;
      for (const auto& [text, life] : rep->GetAll(value)) {
        if (!Component(life, axis).Contains(t)) continue;
        MDDC_RETURN_NOT_OK(target.Set(value, text, Residual(life, axis)));
      }
    }
  }
  return result;
}

Result<MdObject> Timeslice(const MdObject& mo, Chronon t, Axis axis,
                           TemporalType new_type) {
  std::vector<Dimension> dimensions;
  dimensions.reserve(mo.dimension_count());
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    MDDC_ASSIGN_OR_RETURN(Dimension sliced,
                          TimesliceDimension(mo.dimension(i), t, axis));
    dimensions.push_back(std::move(sliced));
  }
  MdObject result(mo.schema().fact_type(), std::move(dimensions),
                  mo.registry(), new_type);

  // Keep facts that retain at least one pair in every dimension at t
  // (otherwise they would violate the no-missing-values rule).
  std::vector<FactDimRelation> sliced(mo.dimension_count());
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    for (const FactDimRelation::Entry& entry : mo.relation(i).entries()) {
      if (!Component(entry.life, axis).Contains(t)) continue;
      if (!result.dimension(i).HasValue(entry.value)) continue;
      MDDC_RETURN_NOT_OK(sliced[i].Add(entry.fact, entry.value,
                                       Residual(entry.life, axis),
                                       entry.prob));
    }
  }
  for (FactId fact : mo.facts()) {
    bool covered = true;
    for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
      if (!sliced[i].HasFact(fact)) {
        covered = false;
        break;
      }
    }
    if (covered) MDDC_RETURN_NOT_OK(result.AddFact(fact));
  }
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    sliced[i].RestrictToFacts(result.facts());
    result.relation_mutable(i) = std::move(sliced[i]);
  }
  MDDC_RETURN_NOT_OK(result.Validate());
  return result;
}

}  // namespace

Result<MdObject> ValidTimeslice(const MdObject& mo, Chronon t) {
  TemporalType new_type;
  switch (mo.temporal_type()) {
    case TemporalType::kValidTime:
      new_type = TemporalType::kSnapshot;
      break;
    case TemporalType::kBitemporal:
      new_type = TemporalType::kTransactionTime;
      break;
    default:
      return Status::TemporalTypeMismatch(
          StrCat("valid-timeslice applies to valid-time or bitemporal MOs; "
                 "this MO is ",
                 TemporalTypeName(mo.temporal_type())));
  }
  return Timeslice(mo, t, Axis::kValid, new_type);
}

Result<MdObject> TransactionTimeslice(const MdObject& mo, Chronon t) {
  TemporalType new_type;
  switch (mo.temporal_type()) {
    case TemporalType::kTransactionTime:
      new_type = TemporalType::kSnapshot;
      break;
    case TemporalType::kBitemporal:
      new_type = TemporalType::kValidTime;
      break;
    default:
      return Status::TemporalTypeMismatch(
          StrCat("transaction-timeslice applies to transaction-time or "
                 "bitemporal MOs; this MO is ",
                 TemporalTypeName(mo.temporal_type())));
  }
  return Timeslice(mo, t, Axis::kTransaction, new_type);
}

Result<Dimension> ValidTimesliceDimension(const Dimension& dimension,
                                          Chronon t) {
  return TimesliceDimension(dimension, t, Axis::kValid);
}

}  // namespace mddc
