#include "algebra/timeslice.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/strings.h"
#include "engine/executor.h"
#include "engine/rollup_index.h"

namespace mddc {
namespace {

enum class Axis { kValid, kTransaction };

const TemporalElement& Component(const Lifespan& life, Axis axis) {
  return axis == Axis::kValid ? life.valid : life.transaction;
}

/// Clears the sliced component (the slice "has no valid time attached").
Lifespan Residual(const Lifespan& life, Axis axis) {
  Lifespan result = life;
  if (axis == Axis::kValid) {
    result.valid = TemporalElement::Always();
  } else {
    result.transaction = TemporalElement::Always();
  }
  return result;
}

/// `index` (nullable) is a compiled snapshot of `dimension`: the value
/// scan then walks the dense value/category/membership arrays — laid out
/// in the same ascending-ValueId order AllValues() iterates — instead of
/// paying two map lookups per value. Every other step (edge scan in
/// insertion order, representation carry-over) is shared, so the sliced
/// dimension is bit-identical with or without the snapshot.
Result<Dimension> TimesliceDimension(const Dimension& dimension, Chronon t,
                                     Axis axis,
                                     const RollupIndex* index = nullptr) {
  Dimension result(dimension.type_ptr());
  if (index != nullptr) {
    for (std::uint32_t d = 0; d < index->value_count(); ++d) {
      if (d == index->top_dense()) continue;
      const Lifespan& membership = index->MembershipOfDense(d);
      if (!Component(membership, axis).Contains(t)) continue;
      MDDC_RETURN_NOT_OK(result.AddValue(index->CategoryOfDense(d),
                                         index->ValueOf(d),
                                         Residual(membership, axis)));
    }
  } else {
    for (ValueId value : dimension.AllValues()) {
      if (value == dimension.top_value()) continue;
      MDDC_ASSIGN_OR_RETURN(Lifespan membership,
                            dimension.MembershipOf(value));
      if (!Component(membership, axis).Contains(t)) continue;
      MDDC_ASSIGN_OR_RETURN(CategoryTypeIndex category,
                            dimension.CategoryOf(value));
      MDDC_RETURN_NOT_OK(
          result.AddValue(category, value, Residual(membership, axis)));
    }
  }
  for (const Dimension::Edge& edge : dimension.edges()) {
    if (!Component(edge.life, axis).Contains(t)) continue;
    if (!result.HasValue(edge.child) || !result.HasValue(edge.parent)) {
      continue;  // an endpoint was not a member at t
    }
    MDDC_RETURN_NOT_OK(result.AddOrder(edge.child, edge.parent,
                                       Residual(edge.life, axis), edge.prob));
  }
  for (const auto& [category, rep_name, rep] :
       dimension.AllRepresentations()) {
    Representation& target = result.RepresentationFor(category, rep_name);
    for (ValueId value : dimension.ValuesInView(category)) {
      if (!result.HasValue(value)) continue;
      for (const auto& [text, life] : rep->GetAll(value)) {
        if (!Component(life, axis).Contains(t)) continue;
        MDDC_RETURN_NOT_OK(target.Set(value, text, Residual(life, axis)));
      }
    }
  }
  return result;
}

Result<MdObject> Timeslice(const MdObject& mo, Chronon t, Axis axis,
                           TemporalType new_type, ExecContext* exec) {
  const std::size_t n = mo.dimension_count();
  // No summarizability gate: every output cell depends only on one input
  // cell and `t`, so slicing is always safely parallel. A context asking
  // for parallelism on too small an input counts a fallback, like Join.
  bool parallel = false;
  if (exec != nullptr && exec->num_threads > 1) {
    if (exec->WantsParallel(mo.fact_count())) {
      parallel = true;
    } else {
      ++exec->stats.sequential_fallbacks;
    }
  }
  if (parallel) {
    // Pure-read discipline: warm the lazily written closure memos before
    // any fan-out so workers (and concurrent readers of the operand)
    // never write into the dimensions.
    for (std::size_t i = 0; i < n; ++i) mo.dimension(i).WarmClosureMemo();
  }

  // Compiled snapshots for the dense value scan. Obtained on the query
  // thread — For() may write the snapshot slot — so the fan-out below
  // only reads them. The dense path needs no strictness gate (it uses
  // only the value/category/membership arrays), so any context-carrying
  // caller takes it, sequential included.
  std::vector<std::shared_ptr<const RollupIndex>> indexes(n);
  if (exec != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      indexes[i] = RollupIndex::For(mo.dimension(i), &exec->stats);
      ++exec->stats.index_hits;
    }
  }

  // 1. Slice the dimensions, one independent result slot each; the first
  //    error in dimension order — the one the sequential loop would hit —
  //    is returned.
  std::vector<Dimension> dimensions;
  dimensions.reserve(n);
  if (parallel) {
    std::vector<std::optional<Result<Dimension>>> slots(n);
    exec->pool().ParallelFor(n, [&](std::size_t i) {
      slots[i].emplace(
          TimesliceDimension(mo.dimension(i), t, axis, indexes[i].get()));
    });
    exec->stats.tasks += n;
    for (std::size_t i = 0; i < n; ++i) {
      MDDC_RETURN_NOT_OK(slots[i]->status());
      dimensions.push_back(std::move(*slots[i]).ValueOrDie());
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      MDDC_ASSIGN_OR_RETURN(
          Dimension sliced,
          TimesliceDimension(mo.dimension(i), t, axis, indexes[i].get()));
      dimensions.push_back(std::move(sliced));
    }
  }
  MdObject result(mo.schema().fact_type(), std::move(dimensions),
                  mo.registry(), new_type);

  // 2. Slice the fact-dimension relations. The surviving entries of one
  //    relation must be appended in entry order, but deciding survival
  //    (and computing the residual lifespan) is a pure read — so the
  //    parallel path filters contiguous entry chunks into per-chunk
  //    slots and appends them in chunk order: byte-identical, no merge.
  std::vector<FactDimRelation> sliced(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::vector<FactDimRelation::Entry>& entries =
        mo.relation(i).entries();
    const Dimension& dimension = result.dimension(i);
    if (parallel && !entries.empty()) {
      const std::size_t chunks =
          std::min(entries.size(), exec->num_threads * 4);
      std::vector<std::vector<std::pair<std::size_t, Lifespan>>> kept(chunks);
      exec->pool().ParallelFor(chunks, [&](std::size_t chunk) {
        const std::size_t begin = chunk * entries.size() / chunks;
        const std::size_t end = (chunk + 1) * entries.size() / chunks;
        for (std::size_t e = begin; e < end; ++e) {
          const FactDimRelation::Entry& entry = entries[e];
          if (!Component(entry.life, axis).Contains(t)) continue;
          if (!dimension.HasValue(entry.value)) continue;
          kept[chunk].emplace_back(e, Residual(entry.life, axis));
        }
      });
      exec->stats.tasks += chunks;
      for (const auto& chunk : kept) {
        for (const auto& [e, life] : chunk) {
          MDDC_RETURN_NOT_OK(
              sliced[i].Add(entries[e].fact, entries[e].value, life,
                            entries[e].prob));
        }
      }
    } else {
      for (const FactDimRelation::Entry& entry : entries) {
        if (!Component(entry.life, axis).Contains(t)) continue;
        if (!dimension.HasValue(entry.value)) continue;
        MDDC_RETURN_NOT_OK(sliced[i].Add(entry.fact, entry.value,
                                         Residual(entry.life, axis),
                                         entry.prob));
      }
    }
  }

  // 3. Keep facts that retain at least one pair in every dimension at t
  //    (otherwise they would violate the no-missing-values rule). The
  //    coverage check is a pure read of the sliced relations, one flag
  //    slot per fact; facts are then added sequentially in fact order.
  const std::vector<FactId>& facts = mo.facts();
  if (parallel && !facts.empty()) {
    std::vector<unsigned char> covered(facts.size(), 0);
    const std::size_t chunks = std::min(facts.size(), exec->num_threads * 4);
    exec->pool().ParallelFor(chunks, [&](std::size_t chunk) {
      const std::size_t begin = chunk * facts.size() / chunks;
      const std::size_t end = (chunk + 1) * facts.size() / chunks;
      for (std::size_t f = begin; f < end; ++f) {
        bool all = true;
        for (std::size_t i = 0; i < n; ++i) {
          if (!sliced[i].HasFact(facts[f])) {
            all = false;
            break;
          }
        }
        covered[f] = all ? 1 : 0;
      }
    });
    exec->stats.tasks += chunks;
    for (std::size_t f = 0; f < facts.size(); ++f) {
      if (covered[f] != 0) MDDC_RETURN_NOT_OK(result.AddFact(facts[f]));
    }
    ++exec->stats.parallel_runs;
    ++exec->stats.timeslice_parallel_runs;
  } else {
    for (FactId fact : facts) {
      bool all = true;
      for (std::size_t i = 0; i < n; ++i) {
        if (!sliced[i].HasFact(fact)) {
          all = false;
          break;
        }
      }
      if (all) MDDC_RETURN_NOT_OK(result.AddFact(fact));
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    sliced[i].RestrictToFacts(result.facts());
    result.relation_mutable(i) = std::move(sliced[i]);
  }
  MDDC_RETURN_NOT_OK(result.Validate());
  return result;
}

}  // namespace

Result<MdObject> ValidTimeslice(const MdObject& mo, Chronon t,
                                ExecContext* exec) {
  TemporalType new_type;
  switch (mo.temporal_type()) {
    case TemporalType::kValidTime:
      new_type = TemporalType::kSnapshot;
      break;
    case TemporalType::kBitemporal:
      new_type = TemporalType::kTransactionTime;
      break;
    default:
      return Status::TemporalTypeMismatch(
          StrCat("valid-timeslice applies to valid-time or bitemporal MOs; "
                 "this MO is ",
                 TemporalTypeName(mo.temporal_type())));
  }
  return Timeslice(mo, t, Axis::kValid, new_type, exec);
}

Result<MdObject> TransactionTimeslice(const MdObject& mo, Chronon t,
                                      ExecContext* exec) {
  TemporalType new_type;
  switch (mo.temporal_type()) {
    case TemporalType::kTransactionTime:
      new_type = TemporalType::kSnapshot;
      break;
    case TemporalType::kBitemporal:
      new_type = TemporalType::kValidTime;
      break;
    default:
      return Status::TemporalTypeMismatch(
          StrCat("transaction-timeslice applies to transaction-time or "
                 "bitemporal MOs; this MO is ",
                 TemporalTypeName(mo.temporal_type())));
  }
  return Timeslice(mo, t, Axis::kTransaction, new_type, exec);
}

Result<Dimension> ValidTimesliceDimension(const Dimension& dimension,
                                          Chronon t) {
  return TimesliceDimension(dimension, t, Axis::kValid);
}

}  // namespace mddc
