#include "algebra/predicate.h"

#include "common/strings.h"

namespace mddc {

struct Predicate::Node {
  enum class Kind {
    kTrue,
    kAnd,
    kOr,
    kNot,
    kCharacterizedBy,
    kCharacterizedThroughout,
    kHasValueInCategory,
    kNumericCompare,
    kMinProbability,
    kSameRepresentedValue,
  };

  Kind kind = Kind::kTrue;
  std::shared_ptr<const Node> left;
  std::shared_ptr<const Node> right;

  std::size_t dim = 0;
  std::size_t dim_b = 0;
  ValueId value;
  CategoryTypeIndex category = 0;
  TemporalElement element;
  bool any_time = true;          // kCharacterizedBy: no time restriction
  Comparison comparison = Comparison::kEq;
  double bound = 0.0;
  double threshold = 0.0;
  Chronon at = kNowChronon;
  // RepresentationEquals leaves carry the name lookup, resolved against
  // the MO at evaluation time.
  bool needs_rep_resolution = false;
  std::string rep_name;
  std::string rep_text;
};

namespace {

using Node = Predicate::Node;

Result<bool> EvaluateNode(const Node& node, const MdObject& mo, FactId fact);

Result<bool> EvaluateCharacterizedBy(const Node& node, const MdObject& mo,
                                     FactId fact) {
  if (node.dim >= mo.dimension_count()) {
    return Status::InvalidArgument(
        StrCat("predicate references dimension ", node.dim, " of a ",
               mo.dimension_count(), "-dimensional MO"));
  }
  ValueId target = node.value;
  if (node.needs_rep_resolution) {
    auto rep =
        mo.dimension(node.dim).FindRepresentation(node.category, node.rep_name);
    if (!rep.ok()) return false;  // no such representation: nothing matches
    auto resolved = (*rep)->Lookup(node.rep_text, node.at);
    if (!resolved.ok()) return false;  // name denotes no value at that time
    target = *resolved;
  }
  for (const MdObject::Characterization& c :
       mo.CharacterizedBy(fact, node.dim)) {
    if (c.value != target) continue;
    if (node.any_time) return true;
    if (c.life.valid.Covers(node.element)) return true;
  }
  return false;
}

Result<bool> EvaluateHasValueInCategory(const Node& node, const MdObject& mo,
                                        FactId fact) {
  if (node.dim >= mo.dimension_count()) {
    return Status::InvalidArgument(
        StrCat("predicate references dimension ", node.dim, " of a ",
               mo.dimension_count(), "-dimensional MO"));
  }
  const Dimension& dimension = mo.dimension(node.dim);
  for (const MdObject::Characterization& c :
       mo.CharacterizedBy(fact, node.dim)) {
    if (c.value == dimension.top_value()) continue;
    auto category = dimension.CategoryOf(c.value);
    if (category.ok() && *category == node.category) return true;
  }
  return false;
}

Result<bool> EvaluateNumericCompare(const Node& node, const MdObject& mo,
                                    FactId fact) {
  if (node.dim >= mo.dimension_count()) {
    return Status::InvalidArgument(
        StrCat("predicate references dimension ", node.dim, " of a ",
               mo.dimension_count(), "-dimensional MO"));
  }
  const Dimension& dimension = mo.dimension(node.dim);
  for (const FactDimRelation::Entry* entry :
       mo.relation(node.dim).ForFact(fact)) {
    if (entry->value == dimension.top_value()) continue;
    auto value = dimension.NumericValueOf(entry->value, node.at);
    if (!value.ok()) continue;  // non-numeric characterizations do not match
    bool matches = false;
    switch (node.comparison) {
      case Predicate::Comparison::kLess:
        matches = *value < node.bound;
        break;
      case Predicate::Comparison::kLessEq:
        matches = *value <= node.bound;
        break;
      case Predicate::Comparison::kEq:
        matches = *value == node.bound;
        break;
      case Predicate::Comparison::kGreaterEq:
        matches = *value >= node.bound;
        break;
      case Predicate::Comparison::kGreater:
        matches = *value > node.bound;
        break;
    }
    if (matches) return true;
  }
  return false;
}

Result<bool> EvaluateMinProbability(const Node& node, const MdObject& mo,
                                    FactId fact) {
  for (const MdObject::Characterization& c :
       mo.CharacterizedBy(fact, node.dim, node.at)) {
    if (c.value == node.value && c.prob >= node.threshold &&
        c.life.valid.Contains(node.at)) {
      return true;
    }
  }
  return false;
}

Result<bool> EvaluateSameRepresentedValue(const Node& node,
                                          const MdObject& mo, FactId fact) {
  if (node.dim >= mo.dimension_count() ||
      node.dim_b >= mo.dimension_count()) {
    return Status::InvalidArgument(
        StrCat("predicate references dimension ", node.dim, " or ",
               node.dim_b, " of a ", mo.dimension_count(),
               "-dimensional MO"));
  }
  auto texts_of = [&](std::size_t dim) {
    std::vector<std::string> texts;
    const Dimension& dimension = mo.dimension(dim);
    for (const FactDimRelation::Entry* entry :
         mo.relation(dim).ForFact(fact)) {
      if (entry->value == dimension.top_value()) continue;
      auto category = dimension.CategoryOf(entry->value);
      if (!category.ok()) continue;
      auto rep = dimension.FindRepresentation(*category, node.rep_name);
      if (!rep.ok()) continue;
      auto text = (*rep)->Get(entry->value, node.at);
      if (text.ok()) texts.push_back(*text);
    }
    return texts;
  };
  std::vector<std::string> left = texts_of(node.dim);
  std::vector<std::string> right = texts_of(node.dim_b);
  for (const std::string& a : left) {
    for (const std::string& b : right) {
      if (a == b) return true;
    }
  }
  return false;
}

Result<bool> EvaluateNode(const Node& node, const MdObject& mo, FactId fact) {
  switch (node.kind) {
    case Node::Kind::kTrue:
      return true;
    case Node::Kind::kAnd: {
      MDDC_ASSIGN_OR_RETURN(bool left, EvaluateNode(*node.left, mo, fact));
      if (!left) return false;
      return EvaluateNode(*node.right, mo, fact);
    }
    case Node::Kind::kOr: {
      MDDC_ASSIGN_OR_RETURN(bool left, EvaluateNode(*node.left, mo, fact));
      if (left) return true;
      return EvaluateNode(*node.right, mo, fact);
    }
    case Node::Kind::kNot: {
      MDDC_ASSIGN_OR_RETURN(bool inner, EvaluateNode(*node.left, mo, fact));
      return !inner;
    }
    case Node::Kind::kCharacterizedBy:
    case Node::Kind::kCharacterizedThroughout:
      return EvaluateCharacterizedBy(node, mo, fact);
    case Node::Kind::kHasValueInCategory:
      return EvaluateHasValueInCategory(node, mo, fact);
    case Node::Kind::kNumericCompare:
      return EvaluateNumericCompare(node, mo, fact);
    case Node::Kind::kMinProbability:
      return EvaluateMinProbability(node, mo, fact);
    case Node::Kind::kSameRepresentedValue:
      return EvaluateSameRepresentedValue(node, mo, fact);
  }
  return Status::InvalidArgument("unknown predicate node kind");
}

std::string NodeToString(const Node& node) {
  switch (node.kind) {
    case Node::Kind::kTrue:
      return "true";
    case Node::Kind::kAnd:
      return StrCat("(", NodeToString(*node.left), " AND ",
                    NodeToString(*node.right), ")");
    case Node::Kind::kOr:
      return StrCat("(", NodeToString(*node.left), " OR ",
                    NodeToString(*node.right), ")");
    case Node::Kind::kNot:
      return StrCat("NOT ", NodeToString(*node.left));
    case Node::Kind::kCharacterizedBy:
      if (node.any_time) return StrCat("char(", node.dim, ",", node.value, ")");
      return StrCat("char(", node.dim, ",", node.value, "@",
                    node.element.ToString(), ")");
    case Node::Kind::kCharacterizedThroughout:
      return StrCat("char(", node.dim, ",", node.value, " throughout ",
                    node.element.ToString(), ")");
    case Node::Kind::kHasValueInCategory:
      return StrCat("incat(", node.dim, ",", node.category, ")");
    case Node::Kind::kNumericCompare: {
      const char* op = "=";
      switch (node.comparison) {
        case Predicate::Comparison::kLess:
          op = "<";
          break;
        case Predicate::Comparison::kLessEq:
          op = "<=";
          break;
        case Predicate::Comparison::kEq:
          op = "=";
          break;
        case Predicate::Comparison::kGreaterEq:
          op = ">=";
          break;
        case Predicate::Comparison::kGreater:
          op = ">";
          break;
      }
      return StrCat("num(", node.dim, " ", op, " ", node.bound, ")");
    }
    case Node::Kind::kMinProbability:
      return StrCat("prob(", node.dim, ",", node.value, " >= ",
                    node.threshold, ")");
    case Node::Kind::kSameRepresentedValue:
      return StrCat("same(", node.dim, ",", node.dim_b, ",", node.rep_name,
                    ")");
  }
  return "?";
}

}  // namespace

Predicate Predicate::True() {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kTrue;
  return Predicate(node);
}

Predicate Predicate::CharacterizedBy(std::size_t dim, ValueId value) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kCharacterizedBy;
  node->dim = dim;
  node->value = value;
  node->any_time = true;
  return Predicate(node);
}

Predicate Predicate::CharacterizedByAt(std::size_t dim, ValueId value,
                                       Chronon at) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kCharacterizedBy;
  node->dim = dim;
  node->value = value;
  node->any_time = false;
  node->element = TemporalElement::At(at);
  return Predicate(node);
}

Predicate Predicate::CharacterizedThroughout(std::size_t dim, ValueId value,
                                             TemporalElement element) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kCharacterizedThroughout;
  node->dim = dim;
  node->value = value;
  node->any_time = false;
  node->element = std::move(element);
  return Predicate(node);
}

Predicate Predicate::HasValueInCategory(std::size_t dim,
                                        CategoryTypeIndex category) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kHasValueInCategory;
  node->dim = dim;
  node->category = category;
  return Predicate(node);
}

Predicate Predicate::RepresentationEquals(std::size_t dim,
                                          CategoryTypeIndex category,
                                          std::string rep_name,
                                          std::string text, Chronon at) {
  // The name -> value resolution needs the MO's dimension, so the lookup
  // parameters are stored on the node and resolved at evaluation time.
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kCharacterizedBy;
  node->dim = dim;
  node->category = category;
  node->any_time = true;
  // Encode the unresolved name pair in element/value via a sentinel: the
  // value is resolved on first evaluation. Simpler and robust: resolve
  // eagerly is impossible without the MO, so we store the strings.
  node->rep_name = std::move(rep_name);
  node->rep_text = std::move(text);
  node->at = at;
  node->needs_rep_resolution = true;
  return Predicate(node);
}

Predicate Predicate::NumericCompare(std::size_t dim, Comparison comparison,
                                    double bound) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kNumericCompare;
  node->dim = dim;
  node->comparison = comparison;
  node->bound = bound;
  return Predicate(node);
}

Predicate Predicate::MinProbability(std::size_t dim, ValueId value,
                                    double threshold, Chronon at) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kMinProbability;
  node->dim = dim;
  node->value = value;
  node->threshold = threshold;
  node->at = at;
  return Predicate(node);
}

Predicate Predicate::SameRepresentedValue(std::size_t dim_a,
                                          std::size_t dim_b,
                                          std::string rep_name, Chronon at) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kSameRepresentedValue;
  node->dim = dim_a;
  node->dim_b = dim_b;
  node->rep_name = std::move(rep_name);
  node->at = at;
  return Predicate(node);
}

Predicate Predicate::And(Predicate other) const {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kAnd;
  node->left = root_;
  node->right = other.root_;
  return Predicate(node);
}

Predicate Predicate::Or(Predicate other) const {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kOr;
  node->left = root_;
  node->right = other.root_;
  return Predicate(node);
}

Predicate Predicate::Not() const {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kNot;
  node->left = root_;
  return Predicate(node);
}

Result<bool> Predicate::Evaluate(const MdObject& mo, FactId fact) const {
  return EvaluateNode(*root_, mo, fact);
}

std::string Predicate::ToString() const { return NodeToString(*root_); }

}  // namespace mddc
