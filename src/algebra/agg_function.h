#ifndef MDDC_ALGEBRA_AGG_FUNCTION_H_
#define MDDC_ALGEBRA_AGG_FUNCTION_H_

#include <algorithm>
#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/aggregation.h"
#include "core/md_object.h"

namespace mddc {

/// A member of the paper's family of aggregation functions (Section 4.1,
/// following Klug): a function g : 2^F -> Dom that "looks up the required
/// data for the facts in the relevant fact-dimension relations". SUM_i
/// sums the numeric interpretation of the dimension-i values related to
/// each fact; SetCount counts the members of a fact set (Example 12) and
/// takes no argument dimension.
class AggFunction {
 public:
  /// set-count: |group| (Example 12's patient count per diagnosis group).
  static AggFunction SetCount();
  /// COUNT_i: number of (fact, value) pairs in R_i for the group's facts,
  /// top-value pairs excluded (unknown data is not counted).
  static AggFunction Count(std::size_t dim);
  static AggFunction Sum(std::size_t dim);
  static AggFunction Avg(std::size_t dim);
  static AggFunction Min(std::size_t dim);
  static AggFunction Max(std::size_t dim);

  AggregateFunctionKind kind() const { return kind_; }

  /// Args(g): the argument dimensions of the function (empty for
  /// SetCount, {i} for SUM_i etc.).
  const std::vector<std::size_t>& args() const { return args_; }

  bool distributive() const { return IsDistributive(kind_); }

  /// Display name, e.g. "SUM_2" or "SetCount".
  std::string name() const;

  /// Checks g's applicability against the aggregation types of the bottom
  /// categories of its argument dimensions (the paper's condition
  /// g in min_{j in Args(g)}(AggType(bot_Dij))). Returns
  /// IllegalAggregation when the data does not support the function —
  /// e.g. SUM over diagnoses.
  Status CheckApplicable(const MdObject& mo) const;

  /// Streaming state for the numeric kinds — the exact fold Evaluate
  /// performs over a group's entry values, exposed so group-by kernels
  /// can accumulate per fact (in member order) without materializing
  /// member lists, then settle the result with Finish. The fold keeps
  /// every statistic regardless of kind, exactly as Evaluate does, so
  /// the two paths stay instruction-for-instruction identical.
  struct Accumulator {
    std::size_t count = 0;
    double sum = 0.0;
    double min_value = std::numeric_limits<double>::infinity();
    double max_value = -std::numeric_limits<double>::infinity();

    /// Folds one known (non-top) numeric entry value.
    void Add(double value) {
      ++count;
      sum += value;
      min_value = std::min(min_value, value);
      max_value = std::max(max_value, value);
    }
    /// Folds `entries` known pairs for COUNT, which never reads values.
    void AddCounted(std::size_t entries) { count += entries; }
  };

  /// Settles an accumulator into g's result: the final switch of
  /// Evaluate, including its empty-group errors for AVG/MIN/MAX. Not
  /// meaningful for SetCount (which has no entry data to accumulate).
  Result<double> Finish(const Accumulator& acc) const;

  /// Evaluates g over a group of facts of `mo` at valid chronon `at`.
  /// Numeric data is read through Dimension::NumericValueOf.
  Result<double> Evaluate(const MdObject& mo,
                          std::span<const FactId> group,
                          Chronon at = kNowChronon) const;

 private:
  AggFunction(AggregateFunctionKind kind, std::vector<std::size_t> args)
      : kind_(kind), args_(std::move(args)) {}

  AggregateFunctionKind kind_;
  std::vector<std::size_t> args_;
};

}  // namespace mddc

#endif  // MDDC_ALGEBRA_AGG_FUNCTION_H_
