#ifndef MDDC_ALGEBRA_EXPRESSION_H_
#define MDDC_ALGEBRA_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/operators.h"
#include "algebra/timeslice.h"
#include "common/result.h"
#include "core/md_object.h"

namespace mddc {

/// A composable algebra expression over multidimensional objects. Every
/// node evaluates to an MdObject and every intermediate result is
/// validated against the MO closure conditions, which demonstrates
/// Theorem 1 (closure) constructively on each query evaluated through
/// this interface.
class Expression {
 public:
  /// A constant MO leaf.
  static Expression Leaf(MdObject mo, std::string label = "M");

  static Expression Select(Expression input, Predicate predicate);
  static Expression Project(Expression input, std::vector<std::size_t> dims);
  static Expression Rename(Expression input, RenameSpec spec);
  static Expression Union(Expression left, Expression right);
  static Expression Difference(Expression left, Expression right);
  static Expression Join(Expression left, Expression right,
                         JoinPredicate predicate);
  static Expression Aggregate(Expression input, AggregateSpec spec);
  static Expression ValidSlice(Expression input, Chronon t);
  static Expression TransactionSlice(Expression input, Chronon t);

  /// Evaluates the expression bottom-up; fails with the first operator
  /// error. Each operator already validates its output, so a successful
  /// evaluation witnesses closure for the whole expression tree.
  Result<MdObject> Evaluate() const;

  /// Algebraic rendering, e.g. "alpha[SetCount](sigma[p](M))".
  std::string ToString() const;

  /// Number of operator nodes (leaves excluded).
  std::size_t OperatorCount() const;

  /// Implementation detail (defined in expression.cc); public only so the
  /// evaluation helpers there can name it.
  struct Node;

 private:
  explicit Expression(std::shared_ptr<const Node> root)
      : root_(std::move(root)) {}

  std::shared_ptr<const Node> root_;
};

}  // namespace mddc

#endif  // MDDC_ALGEBRA_EXPRESSION_H_
