#ifndef MDDC_ALGEBRA_TIMESLICE_H_
#define MDDC_ALGEBRA_TIMESLICE_H_

#include "common/result.h"
#include "core/md_object.h"

namespace mddc {

/// The valid-timeslice operator rho_v(M, t) (paper Section 4.2): returns
/// the parts of the MO valid at chronon `t` — category memberships, order
/// relations, representations and fact-dimension pairs whose valid time
/// contains `t` — with no valid time attached. The temporal type moves
/// from valid-time to snapshot (or bitemporal to transaction-time).
Result<MdObject> ValidTimeslice(const MdObject& mo, Chronon t);

/// The transaction-timeslice operator rho_t(M, t): the state the database
/// recorded at transaction chronon `t`, with no transaction time
/// attached. Bitemporal becomes valid-time; transaction-time becomes
/// snapshot.
Result<MdObject> TransactionTimeslice(const MdObject& mo, Chronon t);

/// Timeslices one dimension on its valid components (used by the MO
/// operators and exposed for dimension-level analysis).
Result<Dimension> ValidTimesliceDimension(const Dimension& dimension,
                                          Chronon t);

}  // namespace mddc

#endif  // MDDC_ALGEBRA_TIMESLICE_H_
