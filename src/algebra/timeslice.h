#ifndef MDDC_ALGEBRA_TIMESLICE_H_
#define MDDC_ALGEBRA_TIMESLICE_H_

#include "common/result.h"
#include "core/md_object.h"

namespace mddc {

struct ExecContext;  // engine/executor.h

/// The valid-timeslice operator rho_v(M, t) (paper Section 4.2): returns
/// the parts of the MO valid at chronon `t` — category memberships, order
/// relations, representations and fact-dimension pairs whose valid time
/// contains `t` — with no valid time attached. The temporal type moves
/// from valid-time to snapshot (or bitemporal to transaction-time).
///
/// With an ExecContext whose num_threads > 1 and a fact set of at least
/// min_parallel_facts, the slice runs the parallel engine. Timeslicing
/// is embarrassingly parallel — every output cell depends on one input
/// cell and the chronon — so there is no partition/merge step: dimensions
/// slice into per-dimension result slots, relation entries filter in
/// contiguous chunks written to per-chunk slots and appended in chunk
/// order, and fact coverage is checked into per-fact flags. Errors land
/// in per-slot Status vectors and the first one in deterministic slot
/// order is returned, so io::WriteMo of the parallel slice is
/// byte-identical to the sequential one at any thread count.
Result<MdObject> ValidTimeslice(const MdObject& mo, Chronon t,
                                ExecContext* exec = nullptr);

/// The transaction-timeslice operator rho_t(M, t): the state the database
/// recorded at transaction chronon `t`, with no transaction time
/// attached. Bitemporal becomes valid-time; transaction-time becomes
/// snapshot. Parallelizes exactly as ValidTimeslice.
Result<MdObject> TransactionTimeslice(const MdObject& mo, Chronon t,
                                      ExecContext* exec = nullptr);

/// Timeslices one dimension on its valid components (used by the MO
/// operators and exposed for dimension-level analysis).
Result<Dimension> ValidTimesliceDimension(const Dimension& dimension,
                                          Chronon t);

}  // namespace mddc

#endif  // MDDC_ALGEBRA_TIMESLICE_H_
