#include "algebra/derived.h"

#include <algorithm>
#include <map>

#include "common/strings.h"

namespace mddc {

Result<MdObject> RollUp(const MdObject& mo, std::size_t dim,
                        CategoryTypeIndex category,
                        const AggFunction& function) {
  if (dim >= mo.dimension_count()) {
    return Status::InvalidArgument(
        StrCat("roll-up dimension ", dim, " out of range"));
  }
  AggregateSpec spec{function, {}, ResultDimensionSpec::Auto(), kNowChronon,
                     true};
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    spec.grouping.push_back(i == dim ? category : mo.dimension(i).type().top());
  }
  return AggregateFormation(mo, spec);
}

Result<MdObject> DrillDown(const MdObject& base, std::size_t dim,
                           CategoryTypeIndex finer_category,
                           const AggFunction& function) {
  return RollUp(base, dim, finer_category, function);
}

Result<MdObject> ValueJoin(const MdObject& m1, std::size_t dim1,
                           const MdObject& m2, std::size_t dim2,
                           CategoryTypeIndex match_category) {
  if (dim1 >= m1.dimension_count() || dim2 >= m2.dimension_count()) {
    return Status::InvalidArgument("value-join dimension index out of range");
  }
  if (m1.registry() != m2.registry()) {
    return Status::InvalidArgument(
        "value-join requires both MOs to share one fact registry");
  }
  const Dimension& d1 = m1.dimension(dim1);
  const std::string category_name =
      d1.type().category(match_category).name;
  MDDC_ASSIGN_OR_RETURN(CategoryTypeIndex category2,
                        m2.dimension(dim2).type().Find(category_name));

  // Index m2's facts by their characterizing values in the match
  // category.
  std::map<ValueId, std::vector<FactId>> m2_by_value;
  for (FactId fact : m2.facts()) {
    for (const MdObject::Characterization& c :
         m2.CharacterizedBy(fact, dim2)) {
      auto category = m2.dimension(dim2).CategoryOf(c.value);
      if (category.ok() && *category == category2) {
        m2_by_value[c.value].push_back(fact);
      }
    }
  }

  // Result dimensions: all of m1's plus all of m2's (renamed if needed).
  std::vector<Dimension> dimensions;
  for (std::size_t i = 0; i < m1.dimension_count(); ++i) {
    dimensions.push_back(m1.dimension(i));
  }
  for (std::size_t j = 0; j < m2.dimension_count(); ++j) {
    std::string name = m2.dimension(j).name();
    bool clash = false;
    for (std::size_t i = 0; i < m1.dimension_count(); ++i) {
      if (m1.dimension(i).name() == name) clash = true;
    }
    dimensions.push_back(clash ? m2.dimension(j).RenamedAs(name + "'")
                               : m2.dimension(j));
  }
  MdObject result(
      StrCat("(", m1.schema().fact_type(), ",", m2.schema().fact_type(), ")"),
      std::move(dimensions), m1.registry(), m1.temporal_type());

  FactRegistry& registry = *m1.registry();
  const std::size_t n1 = m1.dimension_count();
  for (FactId f1 : m1.facts()) {
    std::map<FactId, bool> matched;
    for (const MdObject::Characterization& c :
         m1.CharacterizedBy(f1, dim1)) {
      auto category = d1.CategoryOf(c.value);
      if (!category.ok() || *category != match_category) continue;
      auto it = m2_by_value.find(c.value);
      if (it == m2_by_value.end()) continue;
      for (FactId f2 : it->second) matched[f2] = true;
    }
    for (const auto& [f2, unused] : matched) {
      (void)unused;
      FactId pair = registry.Pair(f1, f2);
      MDDC_RETURN_NOT_OK(result.AddFact(pair));
      for (std::size_t i = 0; i < n1; ++i) {
        for (const FactDimRelation::Entry* entry :
             m1.relation(i).ForFact(f1)) {
          MDDC_RETURN_NOT_OK(result.relation_mutable(i).Add(
              pair, entry->value, entry->life, entry->prob));
        }
      }
      for (std::size_t j = 0; j < m2.dimension_count(); ++j) {
        for (const FactDimRelation::Entry* entry :
             m2.relation(j).ForFact(f2)) {
          MDDC_RETURN_NOT_OK(result.relation_mutable(n1 + j).Add(
              pair, entry->value, entry->life, entry->prob));
        }
      }
    }
  }
  MDDC_RETURN_NOT_OK(result.Validate());
  return result;
}

Result<MdObject> DrillAcross(const MoFamily& family, const std::string& a,
                             std::size_t dim_a, const std::string& b,
                             std::size_t dim_b,
                             CategoryTypeIndex match_category) {
  MDDC_ASSIGN_OR_RETURN(bool shared,
                        family.SharesSubdimension(a, dim_a, b, dim_b));
  if (!shared) {
    return Status::SchemaMismatch(
        StrCat("MOs '", a, "' and '", b,
               "' do not share the requested subdimension; drill-across "
               "requires identical value sets and order"));
  }
  MDDC_ASSIGN_OR_RETURN(const MdObject* mo_a, family.Get(a));
  MDDC_ASSIGN_OR_RETURN(const MdObject* mo_b, family.Get(b));
  return ValueJoin(*mo_a, dim_a, *mo_b, dim_b, match_category);
}

Result<MdObject> DuplicateRemoval(const MdObject& mo) {
  // Signature: per dimension, the sorted set of directly related values.
  using Signature = std::vector<std::vector<ValueId>>;
  std::map<Signature, std::vector<FactId>> groups;
  for (FactId fact : mo.facts()) {
    Signature signature(mo.dimension_count());
    for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
      for (const FactDimRelation::Entry* entry :
           mo.relation(i).ForFact(fact)) {
        signature[i].push_back(entry->value);
      }
      std::sort(signature[i].begin(), signature[i].end());
    }
    groups[std::move(signature)].push_back(fact);
  }

  std::vector<Dimension> dimensions;
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    dimensions.push_back(mo.dimension(i));
  }
  MdObject result(StrCat("Set-of-", mo.schema().fact_type()),
                  std::move(dimensions), mo.registry(), mo.temporal_type());
  FactRegistry& registry = *mo.registry();
  for (const auto& [signature, members] : groups) {
    FactId group_fact = registry.Set(members);
    MDDC_RETURN_NOT_OK(result.AddFact(group_fact));
    for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
      // The merged pair's time is the union over members (the value
      // combination was current whenever any duplicate was).
      std::map<ValueId, std::pair<Lifespan, double>> merged;
      for (FactId member : members) {
        for (const FactDimRelation::Entry* entry :
             mo.relation(i).ForFact(member)) {
          auto [it, inserted] = merged.try_emplace(
              entry->value, std::make_pair(entry->life, entry->prob));
          if (!inserted) {
            it->second.first = it->second.first.Union(entry->life);
            it->second.second = std::max(it->second.second, entry->prob);
          }
        }
      }
      for (const auto& [value, attachment] : merged) {
        MDDC_RETURN_NOT_OK(result.relation_mutable(i).Add(
            group_fact, value, attachment.first, attachment.second));
      }
    }
  }
  MDDC_RETURN_NOT_OK(result.Validate());
  return result;
}

Result<MdObject> StarJoin(
    const MdObject& mo,
    const std::vector<std::optional<ValueId>>& restrictions) {
  if (restrictions.size() != mo.dimension_count()) {
    return Status::InvalidArgument(
        StrCat("star-join got ", restrictions.size(),
               " restrictions for a ", mo.dimension_count(),
               "-dimensional MO"));
  }
  Predicate predicate = Predicate::True();
  for (std::size_t i = 0; i < restrictions.size(); ++i) {
    if (restrictions[i].has_value()) {
      predicate = predicate.And(Predicate::CharacterizedBy(i, *restrictions[i]));
    }
  }
  return Select(mo, predicate);
}

Result<std::vector<SqlRow>> SqlAggregate(const MdObject& mo,
                                         const std::vector<SqlGroupBy>& group_by,
                                         const AggFunction& function,
                                         Chronon at, ExecContext* exec) {
  AggregateSpec spec{function, {}, ResultDimensionSpec::Auto(), at, true};
  spec.grouping.assign(mo.dimension_count(), 0);
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    spec.grouping[i] = mo.dimension(i).type().top();
  }
  for (const SqlGroupBy& column : group_by) {
    if (column.dim >= mo.dimension_count()) {
      return Status::InvalidArgument(
          StrCat("group-by dimension ", column.dim, " out of range"));
    }
    spec.grouping[column.dim] = column.category;
  }
  MDDC_ASSIGN_OR_RETURN(MdObject aggregated, AggregateFormation(mo, spec, exec));

  const std::size_t result_dim = aggregated.dimension_count() - 1;
  std::vector<SqlRow> rows;
  for (FactId group : aggregated.facts()) {
    SqlRow row;
    for (const SqlGroupBy& column : group_by) {
      auto pairs = aggregated.relation(column.dim).ForFact(group);
      std::string label = "?";
      if (!pairs.empty()) {
        ValueId value = pairs.front()->value;
        // New dimension indices: the restricted dimension keeps the
        // category name; find the representation there.
        const Dimension& dimension = aggregated.dimension(column.dim);
        auto category = dimension.CategoryOf(value);
        if (category.ok()) {
          auto rep =
              dimension.FindRepresentation(*category, column.representation);
          if (rep.ok()) {
            auto text = (*rep)->Get(value, at);
            if (text.ok()) label = *text;
          }
        }
        if (label == "?") label = StrCat("id:", value.raw());
      }
      row.group.push_back(std::move(label));
    }
    auto result_pairs = aggregated.relation(result_dim).ForFact(group);
    if (!result_pairs.empty()) {
      const Dimension& dimension = aggregated.dimension(result_dim);
      MDDC_ASSIGN_OR_RETURN(
          double value, dimension.NumericValueOf(result_pairs.front()->value));
      row.value = value;
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const SqlRow& a, const SqlRow& b) {
    return a.group != b.group ? a.group < b.group : a.value < b.value;
  });
  return rows;
}

}  // namespace mddc
