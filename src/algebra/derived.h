#ifndef MDDC_ALGEBRA_DERIVED_H_
#define MDDC_ALGEBRA_DERIVED_H_

#include <optional>
#include <string>
#include <vector>

#include "algebra/operators.h"
#include "common/result.h"
#include "core/md_object.h"

namespace mddc {

/// Derived operators (paper Section 4.1, end): "Other common OLAP and
/// relational operators, such as value-based join, duplicate removal,
/// SQL-like aggregation, star-join, drill-down, and roll-up can easily be
/// defined in terms of the fundamental operators."

/// Roll-up: aggregate formation grouping dimension `dim` at `category`
/// and every other dimension at its top category.
Result<MdObject> RollUp(const MdObject& mo, std::size_t dim,
                        CategoryTypeIndex category,
                        const AggFunction& function);

/// Drill-down: moving from a coarser grouping to a finer one. Aggregate
/// results cannot be disaggregated, so drill-down re-aggregates the
/// *base* MO at the finer category (the standard OLAP realization).
Result<MdObject> DrillDown(const MdObject& base, std::size_t dim,
                           CategoryTypeIndex finer_category,
                           const AggFunction& function);

/// Value-based join: pairs (f1, f2) of facts characterized by a common
/// value of the match category. `dim1`/`dim2` index the shared
/// (sub)dimension in each MO; `match_category` is a category index of
/// m1's dimension type (m2's dimension must have an equally named
/// category). Equivalent to rename + identity join + a selection on
/// shared characterizing values; implemented directly.
Result<MdObject> ValueJoin(const MdObject& m1, std::size_t dim1,
                           const MdObject& m2, std::size_t dim2,
                           CategoryTypeIndex match_category);

/// Duplicate removal: facts directly related to identical value sets in
/// every dimension are merged into one set-fact ("duplicate values" —
/// several facts with the same combination of dimension values — are the
/// model's representation of relational duplicates).
Result<MdObject> DuplicateRemoval(const MdObject& mo);

/// Star-join: the OLAP idiom of restricting a fact set by values in
/// several dimensions at once. `restrictions[i]`, when set, keeps only
/// facts characterized by that value in dimension i. Defined as a
/// selection with a conjunctive characterized-by predicate.
Result<MdObject> StarJoin(
    const MdObject& mo,
    const std::vector<std::optional<ValueId>>& restrictions);

/// Drill-across: combining two MOs of a family through a *shared
/// subdimension* (paper Section 3.1: "The shared subdimensions can be
/// used to 'join' data from separate MOs"). Verifies that dimension
/// `dim_a` of MO `a` and dimension `dim_b` of MO `b` really share
/// structure, then value-joins the fact sets on `match_category`.
Result<MdObject> DrillAcross(const MoFamily& family, const std::string& a,
                             std::size_t dim_a, const std::string& b,
                             std::size_t dim_b,
                             CategoryTypeIndex match_category);

/// One output row of an SQL-like aggregation: the names of the grouping
/// values (via the requested representations) and the aggregate.
struct SqlRow {
  std::vector<std::string> group;
  double value = 0.0;
};

/// A grouping column of SqlAggregate: dimension index, category to group
/// at, and the representation used to label the groups.
struct SqlGroupBy {
  std::size_t dim = 0;
  CategoryTypeIndex category = 0;
  std::string representation = "Code";
};

/// SQL-like aggregation ("SELECT r(e_1), g(..) .. GROUP BY C_1, .."):
/// aggregate formation followed by reading the grouping values'
/// representations. Rows are sorted by their group labels. Dimensions not
/// listed group at top. `exec` (optional) is handed to the underlying
/// aggregate formation so MDQL queries reach the parallel engine.
Result<std::vector<SqlRow>> SqlAggregate(const MdObject& mo,
                                         const std::vector<SqlGroupBy>& group_by,
                                         const AggFunction& function,
                                         Chronon at = kNowChronon,
                                         ExecContext* exec = nullptr);

}  // namespace mddc

#endif  // MDDC_ALGEBRA_DERIVED_H_
