#ifndef MDDC_ALGEBRA_OPERATORS_H_
#define MDDC_ALGEBRA_OPERATORS_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "algebra/agg_function.h"
#include "algebra/predicate.h"
#include "common/result.h"
#include "core/md_object.h"
#include "core/properties.h"

namespace mddc {

struct ExecContext;  // engine/executor.h

/// The fundamental operators of the algebra (paper Section 4.1). Every
/// operator consumes and produces MdObjects — the algebra is closed
/// (Theorem 1); each implementation ends by validating the result's
/// closure conditions.
///
/// Temporal semantics follow Section 4.2: selection/projection/rename do
/// not change attached times; union unions the chronon sets of common
/// data; difference cuts times; join inherits times from the relevant
/// argument; aggregate formation intersects the characterization times of
/// grouped facts.

/// sigma[p](M): restricts the fact set to facts whose characterizing
/// values satisfy `predicate`; fact-dimension relations are restricted
/// accordingly; dimensions and schema are unchanged.
Result<MdObject> Select(const MdObject& mo, const Predicate& predicate);

/// pi[D_i1..D_ik](M): retains only the given dimensions (by index, in the
/// given order). The fact set stays the same — "duplicate values" are not
/// removed.
Result<MdObject> Project(const MdObject& mo,
                         const std::vector<std::size_t>& dims);

/// rho[S'](M): returns M under a new, structurally isomorphic schema.
/// Empty strings keep the old name. Used to disambiguate dimensions
/// before a self-join.
struct RenameSpec {
  std::string fact_type;                    // empty = keep
  std::vector<std::string> dimension_names; // empty entries = keep
};
Result<MdObject> Rename(const MdObject& mo, const RenameSpec& spec);

/// M1 u M2: requires equivalent schemas and a shared fact registry. Facts
/// and fact-dimension relations are united (times of common pairs union),
/// dimensions are united with the U_D operator.
Result<MdObject> Union(const MdObject& m1, const MdObject& m2);

/// M1 \ M2: requires equivalent schemas and a shared fact registry. For
/// snapshot MOs the fact sets are set-differenced; for temporal MOs the
/// Section 4.2 rule applies — the time of each pair of M1 is cut by the
/// time of the corresponding pair in M2 and only facts retaining
/// non-empty time in every dimension survive. The dimensions of M1 are
/// kept unchanged.
Result<MdObject> Difference(const MdObject& m1, const MdObject& m2);

/// The join predicate p(f1, f2) of the identity-based join: equality
/// gives an equi-join, inequality a non-equi-join, true the Cartesian
/// product.
enum class JoinPredicate { kEqual, kNotEqual, kTrue };

/// M1 |x|[p] M2: facts are pairs (f1, f2) satisfying p; the dimension
/// list is the concatenation of both MOs' dimensions (names must be
/// disjoint — use Rename first, as the paper prescribes); pair facts
/// inherit fact-dimension pairs (and their times) from the member facts.
///
/// With an ExecContext whose num_threads > 1 and an m1 fact set of at
/// least min_parallel_facts, the operator runs the parallel engine: the
/// facts of m1 are hash-partitioned by fact id, each worker scans its
/// partition against m2 (an id probe for the equi-join, a full scan
/// otherwise) into disjoint per-fact match slots, and the merge walks m1
/// in fact order — interning pair facts in exactly the sequential scan
/// order — so io::WriteMo of the parallel join is byte-identical to the
/// sequential one at any thread count. Pair-fact relations are then
/// populated one output dimension per task (disjoint writes, per-slot
/// Status, errors selected in dimension order). A context asking for
/// parallelism on an m1 below min_parallel_facts counts a
/// sequential_fallback. Unlike aggregate formation there is no
/// summarizability gate: the join touches no aggregate values.
Result<MdObject> Join(const MdObject& m1, const MdObject& m2,
                      JoinPredicate predicate, ExecContext* exec = nullptr);

/// How aggregate formation materializes the result dimension D_{n+1}.
class ResultDimensionSpec {
 public:
  /// Builds a fresh one-category dimension named `name`; each distinct
  /// aggregate result becomes a value whose "Value" representation is the
  /// number itself.
  static ResultDimensionSpec Auto(std::string name = "Result");

  /// Uses a caller-built dimension (e.g. Figure 3's Count < Range
  /// lattice); `mapper` maps each aggregate result to the bottom-category
  /// value it should be recorded as.
  static ResultDimensionSpec Explicit(
      Dimension prototype, std::function<Result<ValueId>(double)> mapper);

  bool is_auto() const { return !prototype_.has_value(); }
  const std::string& auto_name() const { return auto_name_; }
  const Dimension& prototype() const { return *prototype_; }
  Result<ValueId> Map(double result) const { return mapper_(result); }

 private:
  ResultDimensionSpec() = default;

  std::string auto_name_ = "Result";
  std::optional<Dimension> prototype_;
  std::function<Result<ValueId>(double)> mapper_;
};

/// Raw per-group accumulator state captured by one AggregateFormation run
/// (via AggregateSpec::capture), enough for FoldAggregateAppend to resume
/// the formation's exact left-folds over facts appended later — the
/// delta-maintenance state behind incrementally refreshed pre-aggregates
/// (docs/ingestion.md). Everything here is the *pre-presentation* state:
/// lifespans before the assembly loop's Empty -> Always replacement,
/// values as Finish settled them, so resuming replays the identical
/// floating-point and temporal-element operation sequence a full re-run
/// over old-then-new facts would perform.
struct AggregateFoldState {
  struct Group {
    /// Canonical grouping key (one ValueId per argument dimension).
    std::vector<ValueId> key;
    /// The interned set-fact of the group's canonically sorted members;
    /// the member list is read back through the registry at fold time
    /// (fork chains keep old ids resolvable).
    FactId group_fact;
    std::size_t member_count = 0;
    /// Raw left-fold of member coordinate lifespans per dimension, in
    /// member (= ascending fact) order.
    std::vector<Lifespan> life_per_dim;
    std::vector<double> prob_per_dim;
    /// Raw Section 4.2 result lifespan (pre Empty -> Always).
    Lifespan result_life;
    /// g(group) exactly as evaluated.
    double value = 0.0;
  };
  /// Groups in canonical lexicographic key order — the emission order of
  /// every engine.
  std::vector<Group> groups;
  /// The atemporal report the run was typed under; strict-path entries
  /// factorize over fact partitions, so a fold re-checks only the delta.
  SummarizabilityReport summarizability;
  /// Per argument dimension: total and structural versions at capture.
  /// A structural drift invalidates the state outright; a total drift
  /// with equal structural version means value/edge appends only, and the
  /// fold recomputes just the (dimension-local) partitioning bit.
  std::vector<std::uint64_t> dim_versions;
  std::vector<std::uint64_t> dim_structural_versions;
  bool valid = false;
};

/// Parameters of the aggregate-formation operator
/// alpha[D_{n+1}, g, C_1..C_n](M).
struct AggregateSpec {
  AggFunction function;
  /// One grouping category per dimension of the argument MO. Use the
  /// dimension type's top() index for dimensions that should not group
  /// (the paper's "> categories from the other dimensions").
  std::vector<CategoryTypeIndex> grouping;
  ResultDimensionSpec result = ResultDimensionSpec::Auto();
  /// Chronon at which containment probabilities are evaluated.
  Chronon prob_at = kNowChronon;
  /// When true (default), applying a function below the aggregation type
  /// of its argument data is an IllegalAggregation error — the paper's
  /// guard against meaningless aggregates.
  bool enforce_aggregation_types = true;
  /// Uncertainty semantics for set-count (Section 3.3 / TR-37): when
  /// true, the result of SetCount is the *expected* group size — the sum
  /// over members of their membership probability (fact-dimension
  /// probability times containment probability, multiplied across the
  /// grouping dimensions) — instead of the crisp cardinality. Only
  /// affects SetCount.
  bool expected_counts = false;
  /// When non-null, the formation records its raw per-group accumulator
  /// state here (canonical group order) so FoldAggregateAppend can later
  /// resume the run over appended facts. Auto result dimensions only;
  /// captures under an explicit result spec are marked invalid.
  AggregateFoldState* capture = nullptr;
};

/// alpha[D_{n+1}, g, C_1..C_n](M): groups facts by their characterizing
/// values in the grouping categories, makes each non-empty group a
/// set-fact, restricts the argument dimensions to the categories at or
/// above the grouping categories, and appends the result dimension
/// holding g(group) for each group. Facts characterized by several
/// values of a grouping category (non-strict hierarchies, many-to-many
/// relations) appear in several groups but are counted only once per
/// group. The result dimension's aggregation type follows the
/// summarizability rule of Section 4.1 (min of argument types when
/// distributive + strict + partitioning, else c).
///
/// Any ExecContext switches grouping onto a flat kernel
/// (docs/groupby_kernel.md): dense row-major slots over the compiled
/// rollup index when every grouping dimension is covered and the slot
/// cross-product fits exec->max_dense_groupby_slots, an open-addressing
/// flat-hash kernel otherwise; without a context the ordered-map
/// baseline runs unchanged. With num_threads > 1 and a fact set of at
/// least min_parallel_facts the kernel additionally fans out: each
/// worker scans all facts and owns a disjoint slice of the group space
/// (contiguous slot ranges, or keys by hash), so every group is built
/// whole by one worker and the result — down to its serialized bytes —
/// is identical to the sequential path at any thread count. The
/// parallel path is taken only when the Section 3.4 summarizability
/// preconditions hold (the same gate PreAggregateCache applies);
/// otherwise the operator falls back to the sequential algorithm and
/// counts a sequential_fallback on the context.
Result<MdObject> AggregateFormation(const MdObject& mo,
                                    const AggregateSpec& spec,
                                    ExecContext* exec = nullptr);

/// Resumes a captured formation over `delta_facts` — the facts appended
/// to the MO since `state` was recorded — and returns a result MO
/// byte-identical to re-running AggregateFormation(mo, spec) from
/// scratch, in O(delta) scan work instead of O(facts). The delta facts
/// must be exactly mo.facts() minus the facts of the captured run, in
/// ascending id order with every id above the captured members' (the
/// natural shape of registry appends); violations, structural dimension
/// drift, non-foldable functions (AVG, expected-count SetCount),
/// explicit result specs, or an invalid state all return an error so
/// the caller can fall back to a full re-run.
///
/// Foldability per Section 3.4: SUM/COUNT/MIN/MAX resume their exact
/// accumulator from the captured per-group value; crisp SetCount resumes
/// from the member count; strict-path checks factorize over the fact
/// partition (only the delta is re-scanned) and partitioning — a
/// dimension-local property appends can break — is recomputed when the
/// dimension's version moved. When spec.capture is set, the fold records
/// the merged state so the next append folds again.
Result<MdObject> FoldAggregateAppend(const MdObject& mo,
                                     const AggregateSpec& spec,
                                     const AggregateFoldState& state,
                                     const std::vector<FactId>& delta_facts,
                                     ExecContext* exec = nullptr);

/// Parameters of the streaming multi-aggregate group-by — the fused
/// physical operator behind compiled MDQL plans (docs/mdql_compiler.md).
/// Where AggregateFormation materializes a full result MO per function,
/// the stream scans the argument MO's facts once, folds every function's
/// accumulator per group, and returns only what a renderer needs: the
/// grouping key and one settled value per function. No intermediate MO,
/// no result dimension, no lifespans — the unrendered state the fused
/// MDQL path provably never displays.
struct StreamSpec {
  /// The functions folded in one scan; all share `grouping`. Evaluation
  /// errors surface in function-major order (function 0's groups in
  /// canonical order first), exactly as running the functions one
  /// formation at a time would.
  std::vector<AggFunction> functions;
  /// One grouping category per dimension; top() means "do not group" and
  /// the dimension is pruned from the scan entirely (dead-dimension
  /// pruning: a top-grouped dimension contributes one fixed coordinate
  /// with probability 1, so skipping it cannot change any group).
  std::vector<CategoryTypeIndex> grouping;
  /// Chronon at which containment probabilities are evaluated.
  Chronon prob_at = kNowChronon;
  /// When true (default), CheckApplicable gates each function exactly as
  /// AggregateFormation's enforce_aggregation_types does.
  bool enforce_aggregation_types = true;
  /// Optional fact filter, aligned with mo.facts(): false entries are
  /// skipped by the scan — selection pushdown without materializing the
  /// filtered MO. Null means every fact participates.
  const std::vector<bool>* keep = nullptr;
  /// When false the scan stays sequential even on a parallel context.
  bool allow_parallel = true;
  /// When true every StreamGroup carries its member fact list (ascending
  /// fact order). AggregateFormation interns each group as a set-fact, so
  /// two groups with identical member sets collapse into ONE result fact;
  /// a renderer that must match the formation byte-for-byte needs the
  /// member lists to replicate that collapse.
  bool collect_members = false;
};

/// One output group of AggregateStream, in canonical order (ascending
/// lexicographic ValueId key — the same order AggregateFormation's
/// ordered-map baseline emits groups in).
struct StreamGroup {
  /// The grouping values of the live (non-top) dimensions, in ascending
  /// dimension-index order.
  std::vector<ValueId> key;
  /// Distinct member facts (each fact joins a given key at most once).
  std::size_t members = 0;
  /// The member facts, ascending; filled only under
  /// StreamSpec::collect_members (empty otherwise).
  std::vector<FactId> member_facts;
  /// One settled result per StreamSpec function, in spec order.
  std::vector<double> values;
};

/// What the stream's engine selection would decide, without scanning any
/// facts — the cost-model probe behind MDQL EXPLAIN.
struct StreamProbe {
  /// Live (non-top-grouped) dimension indexes, ascending.
  std::vector<std::size_t> live;
  /// True when every live dimension is covered by a flat rollup table.
  bool all_indexed = false;
  /// True when the dense-slot engine would run (all_indexed and the slot
  /// cross-product fits the context's threshold).
  bool dense = false;
  /// Cross-product of live grouping-category cardinalities; 0 when it
  /// overflowed or a live dimension is not indexed.
  std::uint64_t slot_product = 0;
};

StreamProbe AggregateStreamProbe(const MdObject& mo,
                                 const std::vector<CategoryTypeIndex>& grouping,
                                 ExecContext* exec = nullptr);

/// Runs the fused scan. Groups come back in canonical key order with
/// members accumulated in ascending fact order, and functions sharing an
/// argument dimension share one accumulator class, so every value (and
/// every error, in function-major order) is bit-identical to running the
/// functions through AggregateFormation one at a time. With a parallel
/// context the group space is partitioned (contiguous dense-slot ranges,
/// or keys by hash) and every worker scans all facts, so each group is
/// built whole by one worker — thread count never changes a byte. The
/// parallel path is gated on every function passing the Section 3.4
/// summarizability check, like AggregateFormation's gate. Counts
/// dense_groupby_runs / flat_hash_runs / dense_slot_fallbacks /
/// index_hits / index_fallbacks / parallel_runs on the context.
Result<std::vector<StreamGroup>> AggregateStream(const MdObject& mo,
                                                 const StreamSpec& spec,
                                                 ExecContext* exec = nullptr);

}  // namespace mddc

#endif  // MDDC_ALGEBRA_OPERATORS_H_
