#include "algebra/agg_function.h"

#include <algorithm>
#include <limits>

#include "common/strings.h"

namespace mddc {

AggFunction AggFunction::SetCount() {
  return AggFunction(AggregateFunctionKind::kSetCount, {});
}
AggFunction AggFunction::Count(std::size_t dim) {
  return AggFunction(AggregateFunctionKind::kCount, {dim});
}
AggFunction AggFunction::Sum(std::size_t dim) {
  return AggFunction(AggregateFunctionKind::kSum, {dim});
}
AggFunction AggFunction::Avg(std::size_t dim) {
  return AggFunction(AggregateFunctionKind::kAvg, {dim});
}
AggFunction AggFunction::Min(std::size_t dim) {
  return AggFunction(AggregateFunctionKind::kMin, {dim});
}
AggFunction AggFunction::Max(std::size_t dim) {
  return AggFunction(AggregateFunctionKind::kMax, {dim});
}

std::string AggFunction::name() const {
  std::string base(AggregateFunctionKindName(kind_));
  for (std::size_t dim : args_) base += StrCat("_", dim);
  return base;
}

Status AggFunction::CheckApplicable(const MdObject& mo) const {
  for (std::size_t dim : args_) {
    if (dim >= mo.dimension_count()) {
      return Status::InvalidArgument(
          StrCat(name(), " references dimension ", dim, " of a ",
                 mo.dimension_count(), "-dimensional MO"));
    }
    const DimensionType& type = mo.dimension(dim).type();
    AggregationType agg_type = type.AggType(type.bottom());
    if (!IsApplicable(kind_, agg_type)) {
      return Status::IllegalAggregation(
          StrCat("function ", name(), " is not applicable to dimension '",
                 type.name(), "' whose bottom category has aggregation type ",
                 AggregationTypeName(agg_type)));
    }
  }
  return Status::OK();
}

Result<double> AggFunction::Finish(const Accumulator& acc) const {
  switch (kind_) {
    case AggregateFunctionKind::kCount:
      return static_cast<double>(acc.count);
    case AggregateFunctionKind::kSum:
      return acc.sum;
    case AggregateFunctionKind::kAvg:
      if (acc.count == 0) {
        return Status::InvalidArgument(
            StrCat(name(), " over a group with no known values"));
      }
      return acc.sum / static_cast<double>(acc.count);
    case AggregateFunctionKind::kMin:
      if (acc.count == 0) {
        return Status::InvalidArgument(
            StrCat(name(), " over a group with no known values"));
      }
      return acc.min_value;
    case AggregateFunctionKind::kMax:
      if (acc.count == 0) {
        return Status::InvalidArgument(
            StrCat(name(), " over a group with no known values"));
      }
      return acc.max_value;
    case AggregateFunctionKind::kSetCount:
      break;  // evaluated from the group itself, never accumulated
  }
  return Status::InvalidArgument("unknown aggregate function kind");
}

Result<double> AggFunction::Evaluate(const MdObject& mo,
                                     std::span<const FactId> group,
                                     Chronon at) const {
  if (kind_ == AggregateFunctionKind::kSetCount) {
    return static_cast<double>(group.size());
  }
  const std::size_t dim = args_.front();
  if (dim >= mo.dimension_count()) {
    return Status::InvalidArgument(
        StrCat(name(), " references dimension ", dim, " of a ",
               mo.dimension_count(), "-dimensional MO"));
  }
  const Dimension& dimension = mo.dimension(dim);

  Accumulator acc;
  for (FactId fact : group) {
    for (const FactDimRelation::Entry* entry :
         mo.relation(dim).ForFact(fact)) {
      if (entry->value == dimension.top_value()) continue;  // unknown
      if (kind_ == AggregateFunctionKind::kCount) {
        acc.AddCounted(1);
        continue;
      }
      MDDC_ASSIGN_OR_RETURN(double value,
                            dimension.NumericValueOf(entry->value, at));
      acc.Add(value);
    }
  }
  return Finish(acc);
}

}  // namespace mddc
