#include "algebra/operators.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <set>

#include "common/strings.h"
#include "core/properties.h"
#include "engine/executor.h"
#include "engine/rollup_index.h"

namespace mddc {
namespace {

Status RequireSharedRegistry(const MdObject& m1, const MdObject& m2,
                             const char* op) {
  if (m1.registry() != m2.registry()) {
    return Status::InvalidArgument(
        StrCat(op,
               " requires both MOs to share one fact registry so fact "
               "identity is comparable"));
  }
  return Status::OK();
}

/// FNV-1a over one surrogate id; assigns facts (join) and group keys
/// (aggregate formation) to hash partitions on the parallel path.
std::size_t HashUint64(std::uint64_t raw) {
  std::uint64_t h = 1469598103934665603ull;
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (raw >> (8 * byte)) & 0xff;
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h);
}

}  // namespace

Result<MdObject> Select(const MdObject& mo, const Predicate& predicate) {
  std::vector<Dimension> dimensions;
  dimensions.reserve(mo.dimension_count());
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    dimensions.push_back(mo.dimension(i));
  }
  MdObject result(mo.schema().fact_type(), std::move(dimensions),
                  mo.registry(), mo.temporal_type());

  std::vector<FactId> kept;
  for (FactId fact : mo.facts()) {
    MDDC_ASSIGN_OR_RETURN(bool matches, predicate.Evaluate(mo, fact));
    if (matches) kept.push_back(fact);
  }
  for (FactId fact : kept) MDDC_RETURN_NOT_OK(result.AddFact(fact));
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    FactDimRelation restricted = mo.relation(i);
    restricted.RestrictToFacts(kept);
    result.relation_mutable(i) = std::move(restricted);
  }
  MDDC_RETURN_NOT_OK(result.Validate());
  return result;
}

Result<MdObject> Project(const MdObject& mo,
                         const std::vector<std::size_t>& dims) {
  if (dims.empty()) {
    return Status::InvalidArgument("projection onto zero dimensions");
  }
  std::set<std::size_t> seen;
  std::vector<Dimension> dimensions;
  for (std::size_t dim : dims) {
    if (dim >= mo.dimension_count()) {
      return Status::InvalidArgument(
          StrCat("projection dimension ", dim, " out of range"));
    }
    if (!seen.insert(dim).second) {
      return Status::InvalidArgument(
          StrCat("projection lists dimension ", dim, " twice"));
    }
    dimensions.push_back(mo.dimension(dim));
  }
  MdObject result(mo.schema().fact_type(), std::move(dimensions),
                  mo.registry(), mo.temporal_type());
  for (FactId fact : mo.facts()) MDDC_RETURN_NOT_OK(result.AddFact(fact));
  for (std::size_t i = 0; i < dims.size(); ++i) {
    result.relation_mutable(i) = mo.relation(dims[i]);
  }
  MDDC_RETURN_NOT_OK(result.Validate());
  return result;
}

Result<MdObject> Rename(const MdObject& mo, const RenameSpec& spec) {
  if (!spec.dimension_names.empty() &&
      spec.dimension_names.size() != mo.dimension_count()) {
    return Status::InvalidArgument(
        StrCat("rename lists ", spec.dimension_names.size(),
               " dimension names for a ", mo.dimension_count(),
               "-dimensional MO"));
  }
  std::vector<Dimension> dimensions;
  dimensions.reserve(mo.dimension_count());
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    const std::string* name = spec.dimension_names.empty()
                                  ? nullptr
                                  : &spec.dimension_names[i];
    if (name != nullptr && !name->empty()) {
      dimensions.push_back(mo.dimension(i).RenamedAs(*name));
    } else {
      dimensions.push_back(mo.dimension(i));
    }
  }
  std::string fact_type =
      spec.fact_type.empty() ? mo.schema().fact_type() : spec.fact_type;
  MdObject result(std::move(fact_type), std::move(dimensions), mo.registry(),
                  mo.temporal_type());
  for (FactId fact : mo.facts()) MDDC_RETURN_NOT_OK(result.AddFact(fact));
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    result.relation_mutable(i) = mo.relation(i);
  }
  MDDC_RETURN_NOT_OK(result.Validate());
  return result;
}

Result<MdObject> Union(const MdObject& m1, const MdObject& m2) {
  MDDC_RETURN_NOT_OK(RequireSharedRegistry(m1, m2, "union"));
  if (!m1.schema().EquivalentTo(m2.schema())) {
    return Status::SchemaMismatch(
        "union requires equivalent schemas (use rename to align names)");
  }
  std::vector<Dimension> dimensions;
  for (std::size_t i = 0; i < m1.dimension_count(); ++i) {
    MDDC_ASSIGN_OR_RETURN(
        Dimension merged,
        Dimension::UnionWith(m1.dimension(i), m2.dimension(i)));
    dimensions.push_back(std::move(merged));
  }
  MdObject result(m1.schema().fact_type(), std::move(dimensions),
                  m1.registry(), m1.temporal_type());
  for (FactId fact : m1.facts()) MDDC_RETURN_NOT_OK(result.AddFact(fact));
  for (FactId fact : m2.facts()) MDDC_RETURN_NOT_OK(result.AddFact(fact));
  for (std::size_t i = 0; i < m1.dimension_count(); ++i) {
    MDDC_ASSIGN_OR_RETURN(
        FactDimRelation merged,
        FactDimRelation::UnionWith(m1.relation(i), m2.relation(i)));
    result.relation_mutable(i) = std::move(merged);
  }
  MDDC_RETURN_NOT_OK(result.Validate());
  return result;
}

Result<MdObject> Difference(const MdObject& m1, const MdObject& m2) {
  MDDC_RETURN_NOT_OK(RequireSharedRegistry(m1, m2, "difference"));
  if (!m1.schema().EquivalentTo(m2.schema())) {
    return Status::SchemaMismatch(
        "difference requires equivalent schemas");
  }
  std::vector<Dimension> dimensions;
  for (std::size_t i = 0; i < m1.dimension_count(); ++i) {
    dimensions.push_back(m1.dimension(i));  // dimensions of M1 are kept
  }
  MdObject result(m1.schema().fact_type(), std::move(dimensions),
                  m1.registry(), m1.temporal_type());

  if (m1.temporal_type() == TemporalType::kSnapshot) {
    // Snapshot rule: F' = F1 \ F2, relations restricted.
    std::vector<FactId> kept;
    for (FactId fact : m1.facts()) {
      if (!m2.HasFact(fact)) kept.push_back(fact);
    }
    for (FactId fact : kept) MDDC_RETURN_NOT_OK(result.AddFact(fact));
    for (std::size_t i = 0; i < m1.dimension_count(); ++i) {
      FactDimRelation restricted = m1.relation(i);
      restricted.RestrictToFacts(kept);
      result.relation_mutable(i) = std::move(restricted);
    }
    MDDC_RETURN_NOT_OK(result.Validate());
    return result;
  }

  // Temporal rule (Section 4.2): cut each pair's time by the time the
  // corresponding pair has in M2; keep pairs with non-empty remaining
  // time; keep facts that retain a pair in every dimension.
  std::vector<FactDimRelation> cut(m1.dimension_count());
  std::map<FactId, std::size_t> coverage;
  for (std::size_t i = 0; i < m1.dimension_count(); ++i) {
    for (const FactDimRelation::Entry& entry : m1.relation(i).entries()) {
      TemporalElement other_valid;
      for (const FactDimRelation::Entry* other :
           m2.relation(i).ForFact(entry.fact)) {
        if (other->value == entry.value &&
            other->life.transaction.Overlaps(entry.life.transaction)) {
          other_valid = other_valid.Union(other->life.valid);
        }
      }
      Lifespan remaining{entry.life.valid.Subtract(other_valid),
                         entry.life.transaction};
      if (remaining.Empty()) continue;
      MDDC_RETURN_NOT_OK(
          cut[i].Add(entry.fact, entry.value, remaining, entry.prob));
    }
  }
  for (FactId fact : m1.facts()) {
    std::size_t covered = 0;
    for (std::size_t i = 0; i < m1.dimension_count(); ++i) {
      if (cut[i].HasFact(fact)) ++covered;
    }
    if (covered == m1.dimension_count()) {
      MDDC_RETURN_NOT_OK(result.AddFact(fact));
    }
  }
  for (std::size_t i = 0; i < m1.dimension_count(); ++i) {
    cut[i].RestrictToFacts(result.facts());
    result.relation_mutable(i) = std::move(cut[i]);
  }
  MDDC_RETURN_NOT_OK(result.Validate());
  return result;
}

Result<MdObject> Join(const MdObject& m1, const MdObject& m2,
                      JoinPredicate predicate, ExecContext* exec) {
  MDDC_RETURN_NOT_OK(RequireSharedRegistry(m1, m2, "join"));
  // Dimension names must be disjoint; the paper prescribes rename for
  // self-joins.
  for (std::size_t i = 0; i < m1.dimension_count(); ++i) {
    for (std::size_t j = 0; j < m2.dimension_count(); ++j) {
      if (m1.dimension(i).name() == m2.dimension(j).name()) {
        return Status::InvalidArgument(
            StrCat("join operands both have a dimension named '",
                   m1.dimension(i).name(), "'; apply rename first"));
      }
    }
  }
  std::vector<Dimension> dimensions;
  for (std::size_t i = 0; i < m1.dimension_count(); ++i) {
    dimensions.push_back(m1.dimension(i));
  }
  for (std::size_t j = 0; j < m2.dimension_count(); ++j) {
    dimensions.push_back(m2.dimension(j));
  }
  MdObject result(
      StrCat("(", m1.schema().fact_type(), ",", m2.schema().fact_type(), ")"),
      std::move(dimensions), m1.registry(), m1.temporal_type());

  const std::vector<FactId>& facts1 = m1.facts();  // sorted by id
  const std::vector<FactId>& facts2 = m2.facts();  // sorted by id

  bool parallel = false;
  if (exec != nullptr && exec->num_threads > 1) {
    if (exec->WantsParallel(facts1.size())) {
      parallel = true;
    } else {
      // The caller asked for parallelism but the input is too small for
      // partitioning to pay off.
      ++exec->stats.sequential_fallbacks;
    }
  }

  // 1. Match lists, one disjoint slot per m1 fact, each in ascending m2
  //    scan order. The equi-join probes m2's sorted fact set instead of
  //    scanning it — identical matches, n1 log n2 instead of n1 * n2.
  std::vector<std::vector<FactId>> matches(facts1.size());
  auto match_one = [&](std::size_t f) {
    const FactId f1 = facts1[f];
    switch (predicate) {
      case JoinPredicate::kEqual:
        if (std::binary_search(facts2.begin(), facts2.end(), f1)) {
          matches[f].push_back(f1);
        }
        break;
      case JoinPredicate::kNotEqual:
        matches[f].reserve(facts2.size());
        for (FactId f2 : facts2) {
          if (f2 != f1) matches[f].push_back(f2);
        }
        break;
      case JoinPredicate::kTrue:
        matches[f] = facts2;
        break;
    }
  };
  if (parallel) {
    // Warm the lazily written closure memos of every operand dimension so
    // the fan-out (and any concurrent reader of the operands) only ever
    // reads — the same pure-read discipline aggregate formation follows.
    // Compiling the rollup snapshot here rides on the same pass: the
    // result MO copies the operand dimensions, and copies share the
    // snapshot slot, so downstream aggregates over the join output start
    // with the index already built.
    for (std::size_t i = 0; i < m1.dimension_count(); ++i) {
      m1.dimension(i).WarmClosureMemo();
      (void)RollupIndex::For(m1.dimension(i), &exec->stats);
      ++exec->stats.index_hits;
    }
    for (std::size_t j = 0; j < m2.dimension_count(); ++j) {
      m2.dimension(j).WarmClosureMemo();
      (void)RollupIndex::For(m2.dimension(j), &exec->stats);
      ++exec->stats.index_hits;
    }
    const std::size_t num_partitions = exec->num_threads;
    exec->pool().ParallelFor(num_partitions, [&](std::size_t p) {
      for (std::size_t f = 0; f < facts1.size(); ++f) {
        if (HashUint64(facts1[f].raw()) % num_partitions == p) match_one(f);
      }
    });
    exec->stats.tasks += num_partitions;
    exec->stats.partitions += num_partitions;
  } else {
    for (std::size_t f = 0; f < facts1.size(); ++f) match_one(f);
  }

  // 2. Merge in fact order: walking m1's facts ascending and each match
  //    list in m2 scan order reproduces exactly the sequential
  //    nested-loop enumeration, so pair facts intern in the same order
  //    and get the same ids at any thread count.
  FactRegistry& registry = *m1.registry();
  std::vector<std::pair<FactId, std::pair<FactId, FactId>>> pairs;
  const auto merge_start = std::chrono::steady_clock::now();
  for (std::size_t f = 0; f < facts1.size(); ++f) {
    for (FactId f2 : matches[f]) {
      FactId pair = registry.Pair(facts1[f], f2);
      MDDC_RETURN_NOT_OK(result.AddFact(pair));
      pairs.emplace_back(pair, std::make_pair(facts1[f], f2));
    }
  }
  if (parallel) {
    exec->stats.merge_nanos += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - merge_start)
            .count());
  }

  // 3. Pair-fact relations. Each output dimension's relation is an
  //    independent slot written in pair order, so dimensions fan out in
  //    parallel; errors land in per-dimension Status slots and the first
  //    one in dimension order is returned.
  const std::size_t n1 = m1.dimension_count();
  const std::size_t n_out = n1 + m2.dimension_count();
  auto populate_dim = [&](std::size_t d) -> Status {
    const FactDimRelation& source =
        d < n1 ? m1.relation(d) : m2.relation(d - n1);
    FactDimRelation& target = result.relation_mutable(d);
    for (const auto& [pair, members] : pairs) {
      const FactId member = d < n1 ? members.first : members.second;
      for (std::size_t e : source.EntryIndexesForFact(member)) {
        const FactDimRelation::Entry& entry = source.entries()[e];
        MDDC_RETURN_NOT_OK(
            target.Add(pair, entry.value, entry.life, entry.prob));
      }
    }
    return Status::OK();
  };
  if (parallel) {
    std::vector<Status> statuses(n_out);
    exec->pool().ParallelFor(n_out,
                             [&](std::size_t d) { statuses[d] = populate_dim(d); });
    exec->stats.tasks += n_out;
    for (const Status& status : statuses) {
      MDDC_RETURN_NOT_OK(status);
    }
    ++exec->stats.parallel_runs;
    ++exec->stats.join_parallel_runs;
  } else {
    for (std::size_t d = 0; d < n_out; ++d) {
      MDDC_RETURN_NOT_OK(populate_dim(d));
    }
  }
  MDDC_RETURN_NOT_OK(result.Validate());
  return result;
}

ResultDimensionSpec ResultDimensionSpec::Auto(std::string name) {
  ResultDimensionSpec spec;
  spec.auto_name_ = std::move(name);
  return spec;
}

ResultDimensionSpec ResultDimensionSpec::Explicit(
    Dimension prototype, std::function<Result<ValueId>(double)> mapper) {
  ResultDimensionSpec spec;
  spec.prototype_ = std::move(prototype);
  spec.mapper_ = std::move(mapper);
  return spec;
}

namespace {

/// The aggregation type of the result dimension's bottom category per the
/// Section 4.1 rule, given the request's summarizability report.
AggregationType ResultBottomAggType(const MdObject& mo,
                                    const AggregateSpec& spec,
                                    const SummarizabilityReport& report) {
  if (!report.summarizable) return AggregationType::kConstant;
  // min over Args(g) of the argument bottoms' aggregation types; an empty
  // argument list (set-count) yields summable counts.
  AggregationType agg_type = AggregationType::kSum;
  for (std::size_t dim : spec.function.args()) {
    const DimensionType& type = mo.dimension(dim).type();
    agg_type = MinAggregationType(agg_type, type.AggType(type.bottom()));
  }
  return agg_type;
}

/// Per fact and dimension: the grouping-category values characterizing
/// the fact, with lifespans and probabilities.
struct Coordinate {
  ValueId value;
  Lifespan life;
  double prob;
};

/// The fact's coordinates in every grouping category, or nullopt when
/// some dimension has none (the fact then joins no group). Read-only on
/// the MO (given warmed closure memos), so facts fan out in parallel.
///
/// `indexes` (empty, or one slot per dimension) carries compiled rollup
/// snapshots whose flat table replaces the full characterization scan:
/// per relation entry, the unique ancestor at the grouping category is
/// one array lookup. Under the snapshot's gate every closure lifespan is
/// Always, so the coordinate lifespan is the entry lifespan and the
/// probability the entry probability times the closure probability —
/// accumulated per coordinate value in entry order with the same
/// union/noisy-or CharacterizedBy applies, and emitted in ascending
/// ValueId order like the filtered characterization list. The two paths
/// are therefore bit-identical; dimensions without a usable snapshot
/// take the memoized path.
std::optional<std::vector<std::vector<Coordinate>>> GroupingCoordinates(
    const MdObject& mo, const AggregateSpec& spec, FactId fact,
    const std::vector<std::shared_ptr<const RollupIndex>>& indexes) {
  const std::size_t n = mo.dimension_count();
  std::vector<std::vector<Coordinate>> per_dim(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Dimension& dimension = mo.dimension(i);
    if (spec.grouping[i] == dimension.type().top()) {
      per_dim[i].push_back(
          Coordinate{dimension.top_value(), Lifespan::AlwaysSpan(), 1.0});
      continue;
    }
    if (i < indexes.size() && indexes[i] != nullptr) {
      const RollupIndex& index = *indexes[i];
      const FactDimRelation& relation = mo.relation(i);
      std::map<ValueId, Coordinate> accumulated;
      for (std::size_t e : relation.EntryIndexesForFact(fact)) {
        const FactDimRelation::Entry& entry = relation.entries()[e];
        const std::uint32_t dense = index.DenseOf(entry.value);
        if (dense == RollupIndex::kNone) continue;
        const std::uint32_t ancestor =
            index.AncestorAt(dense, spec.grouping[i]);
        if (ancestor == RollupIndex::kNone) continue;
        const double prob =
            entry.prob * index.AncestorProbAt(dense, spec.grouping[i]);
        const ValueId value = index.ValueOf(ancestor);
        auto [it, inserted] = accumulated.try_emplace(
            value, Coordinate{value, entry.life, prob});
        if (!inserted) {
          it->second.life = it->second.life.Union(entry.life);
          it->second.prob =
              1.0 - (1.0 - it->second.prob) * (1.0 - prob);
        }
      }
      for (auto& [value, coordinate] : accumulated) {
        (void)value;
        per_dim[i].push_back(std::move(coordinate));
      }
    } else {
      for (const MdObject::Characterization& c :
           mo.CharacterizedBy(fact, i, spec.prob_at)) {
        auto category = dimension.CategoryOf(c.value);
        if (category.ok() && *category == spec.grouping[i]) {
          per_dim[i].push_back(Coordinate{c.value, c.life, c.prob});
        }
      }
    }
    if (per_dim[i].empty()) return std::nullopt;
  }
  return per_dim;
}

/// One group under construction. The group's time per dimension is the
/// intersection over members of their characterization spans;
/// probabilities multiply over members.
struct GroupAccum {
  std::vector<FactId> members;
  std::vector<Lifespan> life_per_dim;
  std::vector<double> prob_per_dim;
  /// Per member: probability that the member belongs to this group
  /// (product of its characterization probabilities across dimensions);
  /// feeds expected counts.
  std::vector<double> member_probs;
};

using GroupKey = std::vector<ValueId>;
using GroupMap = std::map<GroupKey, GroupAccum>;

/// FNV-1a over the key's surrogate ids; assigns each group to a hash
/// partition on the parallel path.
std::size_t GroupKeyHash(const GroupKey& key) {
  std::uint64_t h = 1469598103934665603ull;
  for (ValueId value : key) {
    const std::uint64_t raw = value.raw();
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (raw >> (8 * byte)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  return static_cast<std::size_t>(h);
}

/// Folds one fact's coordinate cross product into `groups`. With
/// num_partitions > 1 only the keys of hash partition `partition` are
/// accumulated (the parallel path's shared scan); per-group accumulation
/// order is the same in either mode — facts ascending — so partial groups
/// are bit-identical to sequentially built ones.
void AccumulateFact(std::size_t n, FactId fact,
                    const std::vector<std::vector<Coordinate>>& per_dim,
                    std::size_t partition, std::size_t num_partitions,
                    GroupMap& groups) {
  // Enumerate the cross product of this fact's coordinate lists.
  std::vector<std::size_t> cursor(n, 0);
  while (true) {
    GroupKey key(n);
    std::vector<Lifespan> lives(n);
    std::vector<double> probs(n);
    for (std::size_t i = 0; i < n; ++i) {
      const Coordinate& c = per_dim[i][cursor[i]];
      key[i] = c.value;
      lives[i] = c.life;
      probs[i] = c.prob;
    }
    if (num_partitions <= 1 ||
        GroupKeyHash(key) % num_partitions == partition) {
      auto [it, inserted] = groups.try_emplace(std::move(key));
      GroupAccum& group = it->second;
      if (inserted) {
        group.life_per_dim.assign(n, Lifespan::AlwaysSpan());
        group.prob_per_dim.assign(n, 1.0);
      }
      group.members.push_back(fact);
      double member_prob = 1.0;
      for (std::size_t i = 0; i < n; ++i) {
        group.life_per_dim[i] = group.life_per_dim[i].Intersect(lives[i]);
        group.prob_per_dim[i] *= probs[i];
        member_prob *= probs[i];
      }
      group.member_probs.push_back(member_prob);
    }
    // Advance the cross-product cursor.
    std::size_t i = 0;
    while (i < n && ++cursor[i] == per_dim[i].size()) {
      cursor[i] = 0;
      ++i;
    }
    if (i == n) break;
  }
}

/// Per-group evaluation shared by both paths: canonical member order,
/// expected count, g(group), and the Section 4.2 result lifespan.
/// Mutates only the group itself (sorting its members), so distinct
/// groups evaluate concurrently.
struct GroupEval {
  double value = 0.0;
  Lifespan result_life;
};

Result<GroupEval> EvaluateGroup(const MdObject& mo, const AggregateSpec& spec,
                                GroupAccum& group) {
  GroupEval eval;
  // member_probs was built in member order; capture the expectation
  // before members are sorted for canonical set identity.
  double expected = 0.0;
  for (double p : group.member_probs) expected += p;
  std::sort(group.members.begin(), group.members.end());
  if (spec.expected_counts &&
      spec.function.kind() == AggregateFunctionKind::kSetCount) {
    eval.value = expected;
  } else {
    MDDC_ASSIGN_OR_RETURN(
        eval.value, spec.function.Evaluate(mo, group.members, spec.prob_at));
  }

  // Result-dimension time: per the Section 4.2 rule, the intersection
  // over the group's members and g's argument dimensions of the times
  // the member was related to its data (Always for argument-less
  // functions such as set-count).
  const std::size_t n = mo.dimension_count();
  Lifespan result_life = Lifespan::AlwaysSpan();
  for (std::size_t dim : spec.function.args()) {
    if (dim >= n) continue;
    const FactDimRelation& relation = mo.relation(dim);
    for (FactId member : group.members) {
      TemporalElement member_valid;
      TemporalElement member_transaction;
      for (std::size_t e : relation.EntryIndexesForFact(member)) {
        const FactDimRelation::Entry& entry = relation.entries()[e];
        member_valid = member_valid.Union(entry.life.valid);
        member_transaction =
            member_transaction.Union(entry.life.transaction);
      }
      result_life =
          result_life.Intersect(Lifespan{member_valid, member_transaction});
    }
  }
  eval.result_life = result_life;
  return eval;
}

}  // namespace

Result<MdObject> AggregateFormation(const MdObject& mo,
                                    const AggregateSpec& spec,
                                    ExecContext* exec) {
  if (spec.grouping.size() != mo.dimension_count()) {
    return Status::InvalidArgument(
        StrCat("aggregate formation got ", spec.grouping.size(),
               " grouping categories for a ", mo.dimension_count(),
               "-dimensional MO"));
  }
  for (std::size_t i = 0; i < spec.grouping.size(); ++i) {
    if (spec.grouping[i] >= mo.dimension(i).type().category_count()) {
      return Status::InvalidArgument(
          StrCat("grouping category ", spec.grouping[i],
                 " out of range for dimension '", mo.dimension(i).name(),
                 "'"));
    }
  }
  if (spec.enforce_aggregation_types) {
    MDDC_RETURN_NOT_OK(spec.function.CheckApplicable(mo));
  }

  // The grouping collects characterizations across all time, so the
  // strictness/partitioning conditions are checked atemporally. The
  // report drives both the Section 4.1 typing rule and the parallel
  // path's safety gate.
  const SummarizabilityReport summarizability =
      CheckSummarizability(mo, spec.function.kind(), spec.grouping);

  const std::vector<FactId>& facts = mo.facts();  // sorted by id
  const std::size_t n = mo.dimension_count();

  bool parallel = exec != nullptr && exec->WantsParallel(facts.size());
  if (parallel && !summarizability.summarizable) {
    // Per-worker partial groups are safely combinable exactly when the
    // function is distributive and the paths strict and the hierarchies
    // partitioning (Section 3.4) — the same rule under which
    // PreAggregateCache reuses materialized partials. Anything else
    // (non-strict groupings, AVG, ...) conservatively runs sequentially.
    ++exec->stats.sequential_fallbacks;
    parallel = false;
  }

  // 0. Compiled rollup snapshots for the grouping dimensions. Any caller
  //    with an execution context gets the indexed path (one thread
  //    included); callers without one keep the untouched memoized engine
  //    as ground truth. A dimension whose snapshot fails the
  //    strictness/non-temporal gate falls back to traversal — results
  //    are bit-identical either way, only the walk differs.
  std::vector<std::shared_ptr<const RollupIndex>> indexes;
  if (exec != nullptr) {
    indexes.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (spec.grouping[i] == mo.dimension(i).type().top()) continue;
      std::shared_ptr<const RollupIndex> index =
          RollupIndex::For(mo.dimension(i), &exec->stats);
      if (index->has_flat_table()) {
        indexes[i] = std::move(index);
        ++exec->stats.index_hits;
      } else {
        ++exec->stats.index_fallbacks;
      }
    }
  }

  // 1. Grouping coordinates per fact, in fact order.
  std::vector<std::optional<std::vector<std::vector<Coordinate>>>> coords(
      facts.size());
  if (parallel) {
    // Warm the lazily written closure memos so the fan-out below only
    // ever reads the dimensions.
    for (std::size_t i = 0; i < n; ++i) mo.dimension(i).WarmClosureMemo();
    const std::size_t chunks = std::min(facts.size(), exec->num_threads * 4);
    exec->pool().ParallelFor(chunks, [&](std::size_t chunk) {
      const std::size_t begin = chunk * facts.size() / chunks;
      const std::size_t end = (chunk + 1) * facts.size() / chunks;
      for (std::size_t f = begin; f < end; ++f) {
        coords[f] = GroupingCoordinates(mo, spec, facts[f], indexes);
      }
    });
    exec->stats.tasks += chunks;
  } else {
    for (std::size_t f = 0; f < facts.size(); ++f) {
      coords[f] = GroupingCoordinates(mo, spec, facts[f], indexes);
    }
  }

  // 2. Build groups. The parallel path hash-partitions group keys: every
  //    worker scans the facts in order and accumulates only its
  //    partition's keys, so each group is built whole — in fact order —
  //    by exactly one worker and the partition maps are disjoint. The
  //    deterministic partition-order merge then yields the same key-
  //    ordered map the sequential loop builds.
  GroupMap groups;
  if (parallel) {
    const std::size_t num_partitions = exec->num_threads;
    std::vector<GroupMap> partitions(num_partitions);
    exec->pool().ParallelFor(num_partitions, [&](std::size_t p) {
      for (std::size_t f = 0; f < facts.size(); ++f) {
        if (!coords[f].has_value()) continue;
        AccumulateFact(n, facts[f], *coords[f], p, num_partitions,
                       partitions[p]);
      }
    });
    exec->stats.tasks += num_partitions;
    exec->stats.partitions += num_partitions;
    const auto merge_start = std::chrono::steady_clock::now();
    for (GroupMap& partition : partitions) {
      groups.merge(partition);
    }
    exec->stats.merge_nanos += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - merge_start)
            .count());
  } else {
    for (std::size_t f = 0; f < facts.size(); ++f) {
      if (!coords[f].has_value()) continue;
      AccumulateFact(n, facts[f], *coords[f], 0, 1, groups);
    }
  }

  // 3. Evaluate g per group (and the group's result lifespan). Groups
  //    are independent, so the parallel path fans them out; errors land
  //    in per-group slots — no exceptions cross the pool boundary — and
  //    the first one in group order, matching the sequential path, is
  //    returned.
  std::vector<GroupAccum*> group_ptrs;
  group_ptrs.reserve(groups.size());
  for (auto& [key, group] : groups) group_ptrs.push_back(&group);
  std::vector<GroupEval> evals(groups.size());
  if (parallel) {
    std::vector<Status> statuses(groups.size());
    const std::size_t chunks = std::min(groups.size(), exec->num_threads * 4);
    exec->pool().ParallelFor(chunks, [&](std::size_t chunk) {
      const std::size_t begin = chunk * groups.size() / chunks;
      const std::size_t end = (chunk + 1) * groups.size() / chunks;
      for (std::size_t g = begin; g < end; ++g) {
        Result<GroupEval> eval = EvaluateGroup(mo, spec, *group_ptrs[g]);
        if (eval.ok()) {
          evals[g] = *eval;
        } else {
          statuses[g] = eval.status();
        }
      }
    });
    exec->stats.tasks += chunks;
    for (const Status& status : statuses) {
      MDDC_RETURN_NOT_OK(status);
    }
    ++exec->stats.parallel_runs;
  } else {
    for (std::size_t g = 0; g < group_ptrs.size(); ++g) {
      MDDC_ASSIGN_OR_RETURN(evals[g],
                            EvaluateGroup(mo, spec, *group_ptrs[g]));
    }
  }

  // 4. Argument dimensions restricted to the categories at or above the
  //    grouping categories.
  std::vector<Dimension> dimensions;
  dimensions.reserve(n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    MDDC_ASSIGN_OR_RETURN(Dimension restricted,
                          mo.dimension(i).RestrictAbove(spec.grouping[i]));
    dimensions.push_back(std::move(restricted));
  }

  // 5. The result dimension.
  AggregationType bottom_agg =
      ResultBottomAggType(mo, spec, summarizability);
  std::optional<Dimension> result_dimension;
  CategoryTypeIndex result_bottom = 0;
  if (spec.result.is_auto()) {
    DimensionTypeBuilder builder(spec.result.auto_name());
    builder.AddCategory("Value", bottom_agg);
    MDDC_ASSIGN_OR_RETURN(auto type, builder.Build());
    result_dimension.emplace(type);
    result_bottom = type->bottom();
  } else {
    // Apply the typing rule to the prototype: bottom gets the rule's
    // type; higher categories get min(existing, bottom).
    const Dimension& prototype = spec.result.prototype();
    auto type = prototype.type_ptr();
    auto adjusted = type->WithAggType(type->bottom(), bottom_agg);
    for (CategoryTypeIndex c = 0; c < adjusted->category_count(); ++c) {
      if (c == adjusted->bottom()) continue;
      adjusted = adjusted->WithAggType(
          c, MinAggregationType(adjusted->AggType(c), bottom_agg));
    }
    // Rebuild the prototype's content under the adjusted type: the
    // lattice is unchanged, so value/edge structure carries over.
    Dimension rebuilt(adjusted);
    for (ValueId value : prototype.AllValues()) {
      if (value == prototype.top_value()) continue;
      auto category = prototype.CategoryOf(value);
      auto membership = prototype.MembershipOf(value);
      MDDC_RETURN_NOT_OK(rebuilt.AddValue(*category, value, *membership));
    }
    for (const Dimension::Edge& edge : prototype.edges()) {
      MDDC_RETURN_NOT_OK(
          rebuilt.AddOrder(edge.child, edge.parent, edge.life, edge.prob));
    }
    for (const auto& [category, rep_name, rep] :
         prototype.AllRepresentations()) {
      Representation& target = rebuilt.RepresentationFor(category, rep_name);
      for (ValueId value : prototype.ValuesIn(category)) {
        for (const auto& [text, life] : rep->GetAll(value)) {
          MDDC_RETURN_NOT_OK(target.Set(value, text, life));
        }
      }
    }
    result_bottom = adjusted->bottom();
    result_dimension.emplace(std::move(rebuilt));
  }
  dimensions.push_back(*result_dimension);

  MdObject result(StrCat("Set-of-", mo.schema().fact_type()),
                  std::move(dimensions), mo.registry(), mo.temporal_type());

  // 5. Populate facts and relations from the step-3 evaluations: the
  //    groups iterate in the same key order as group_ptrs was built, so
  //    evals[g] is this group's evaluation (members already canonically
  //    sorted by EvaluateGroup) — g(group) and the result lifespan are
  //    not recomputed here.
  FactRegistry& registry = *mo.registry();
  Dimension& out_result_dim = result.dimension_mutable(n);
  std::map<std::string, ValueId> auto_values;  // keyed by formatted result
  std::size_t group_index = 0;
  for (auto& [key, group] : groups) {
    const GroupEval& eval = evals[group_index++];
    FactId group_fact = registry.Set(group.members);
    MDDC_RETURN_NOT_OK(result.AddFact(group_fact));
    const double value = eval.value;

    // Argument-dimension relations: group fact -> grouping value.
    for (std::size_t i = 0; i < n; ++i) {
      Lifespan life = group.life_per_dim[i];
      if (life.Empty()) {
        // The members' spans do not overlap; the grouping still holds
        // atemporally (each member was characterized at its own time), so
        // record the link with the union-of-members semantics instead.
        life = Lifespan::AlwaysSpan();
      }
      MDDC_RETURN_NOT_OK(result.relation_mutable(i).Add(
          group_fact, key[i], life, group.prob_per_dim[i]));
    }

    // Result-dimension relation: group fact -> g(group), at the Section
    // 4.2 result lifespan EvaluateGroup computed.
    Lifespan result_life = eval.result_life;
    ValueId result_value;
    if (spec.result.is_auto()) {
      std::string formatted = FormatDouble(value);
      auto it = auto_values.find(formatted);
      if (it == auto_values.end()) {
        MDDC_ASSIGN_OR_RETURN(result_value,
                              out_result_dim.AddValueAuto(result_bottom));
        Representation& rep =
            out_result_dim.RepresentationFor(result_bottom, "Value");
        MDDC_RETURN_NOT_OK(rep.Set(result_value, formatted));
        auto_values.emplace(formatted, result_value);
      } else {
        result_value = it->second;
      }
    } else {
      MDDC_ASSIGN_OR_RETURN(result_value, spec.result.Map(value));
      if (!out_result_dim.HasValue(result_value)) {
        return Status::InvalidArgument(
            StrCat("result mapper returned value ", result_value,
                   " not present in the result dimension prototype"));
      }
    }
    if (result_life.Empty()) result_life = Lifespan::AlwaysSpan();
    MDDC_RETURN_NOT_OK(result.relation_mutable(n).Add(
        group_fact, result_value, result_life));
  }

  MDDC_RETURN_NOT_OK(result.Validate());
  return result;
}

}  // namespace mddc
