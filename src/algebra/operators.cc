#include "algebra/operators.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include "common/strings.h"
#include "core/properties.h"
#include "engine/arena.h"
#include "engine/executor.h"
#include "engine/groupby_kernel.h"
#include "engine/rollup_index.h"

namespace mddc {
namespace {

Status RequireSharedRegistry(const MdObject& m1, const MdObject& m2,
                             const char* op) {
  if (m1.registry() != m2.registry()) {
    return Status::InvalidArgument(
        StrCat(op,
               " requires both MOs to share one fact registry so fact "
               "identity is comparable"));
  }
  return Status::OK();
}

/// FNV-1a over one surrogate id; assigns facts (join) and group keys
/// (aggregate formation) to hash partitions on the parallel path.
std::size_t HashUint64(std::uint64_t raw) {
  std::uint64_t h = 1469598103934665603ull;
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (raw >> (8 * byte)) & 0xff;
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h);
}

/// Query-lifetime scratch container (docs/memory_layout.md): with a null
/// arena this is exactly std::vector, so the context-free baseline and
/// the arena-backed execution path share one code path — byte-identity
/// by construction, not by parallel maintenance.
template <typename T>
using ArenaVec = std::vector<T, ArenaAllocator<T>>;

/// Rewinds the context's arenas when the top-level operator returns:
/// everything arena-backed is operator-local scratch, so reclaiming here
/// keeps repeated queries on one context at a flat memory footprint.
struct ArenaResetGuard {
  ExecContext* exec;
  ~ArenaResetGuard() {
    if (exec != nullptr) exec->ResetQueryArenas();
  }
};

}  // namespace

Result<MdObject> Select(const MdObject& mo, const Predicate& predicate) {
  std::vector<Dimension> dimensions;
  dimensions.reserve(mo.dimension_count());
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    dimensions.push_back(mo.dimension(i));
  }
  MdObject result(mo.schema().fact_type(), std::move(dimensions),
                  mo.registry(), mo.temporal_type());

  std::vector<FactId> kept;
  for (FactId fact : mo.facts()) {
    MDDC_ASSIGN_OR_RETURN(bool matches, predicate.Evaluate(mo, fact));
    if (matches) kept.push_back(fact);
  }
  for (FactId fact : kept) MDDC_RETURN_NOT_OK(result.AddFact(fact));
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    FactDimRelation restricted = mo.relation(i);
    restricted.RestrictToFacts(kept);
    result.relation_mutable(i) = std::move(restricted);
  }
  MDDC_RETURN_NOT_OK(result.Validate());
  return result;
}

Result<MdObject> Project(const MdObject& mo,
                         const std::vector<std::size_t>& dims) {
  if (dims.empty()) {
    return Status::InvalidArgument("projection onto zero dimensions");
  }
  std::set<std::size_t> seen;
  std::vector<Dimension> dimensions;
  for (std::size_t dim : dims) {
    if (dim >= mo.dimension_count()) {
      return Status::InvalidArgument(
          StrCat("projection dimension ", dim, " out of range"));
    }
    if (!seen.insert(dim).second) {
      return Status::InvalidArgument(
          StrCat("projection lists dimension ", dim, " twice"));
    }
    dimensions.push_back(mo.dimension(dim));
  }
  MdObject result(mo.schema().fact_type(), std::move(dimensions),
                  mo.registry(), mo.temporal_type());
  for (FactId fact : mo.facts()) MDDC_RETURN_NOT_OK(result.AddFact(fact));
  for (std::size_t i = 0; i < dims.size(); ++i) {
    result.relation_mutable(i) = mo.relation(dims[i]);
  }
  MDDC_RETURN_NOT_OK(result.Validate());
  return result;
}

Result<MdObject> Rename(const MdObject& mo, const RenameSpec& spec) {
  if (!spec.dimension_names.empty() &&
      spec.dimension_names.size() != mo.dimension_count()) {
    return Status::InvalidArgument(
        StrCat("rename lists ", spec.dimension_names.size(),
               " dimension names for a ", mo.dimension_count(),
               "-dimensional MO"));
  }
  std::vector<Dimension> dimensions;
  dimensions.reserve(mo.dimension_count());
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    const std::string* name = spec.dimension_names.empty()
                                  ? nullptr
                                  : &spec.dimension_names[i];
    if (name != nullptr && !name->empty()) {
      dimensions.push_back(mo.dimension(i).RenamedAs(*name));
    } else {
      dimensions.push_back(mo.dimension(i));
    }
  }
  std::string fact_type =
      spec.fact_type.empty() ? mo.schema().fact_type() : spec.fact_type;
  MdObject result(std::move(fact_type), std::move(dimensions), mo.registry(),
                  mo.temporal_type());
  for (FactId fact : mo.facts()) MDDC_RETURN_NOT_OK(result.AddFact(fact));
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    result.relation_mutable(i) = mo.relation(i);
  }
  MDDC_RETURN_NOT_OK(result.Validate());
  return result;
}

Result<MdObject> Union(const MdObject& m1, const MdObject& m2) {
  MDDC_RETURN_NOT_OK(RequireSharedRegistry(m1, m2, "union"));
  if (!m1.schema().EquivalentTo(m2.schema())) {
    return Status::SchemaMismatch(
        "union requires equivalent schemas (use rename to align names)");
  }
  std::vector<Dimension> dimensions;
  for (std::size_t i = 0; i < m1.dimension_count(); ++i) {
    MDDC_ASSIGN_OR_RETURN(
        Dimension merged,
        Dimension::UnionWith(m1.dimension(i), m2.dimension(i)));
    dimensions.push_back(std::move(merged));
  }
  MdObject result(m1.schema().fact_type(), std::move(dimensions),
                  m1.registry(), m1.temporal_type());
  for (FactId fact : m1.facts()) MDDC_RETURN_NOT_OK(result.AddFact(fact));
  for (FactId fact : m2.facts()) MDDC_RETURN_NOT_OK(result.AddFact(fact));
  for (std::size_t i = 0; i < m1.dimension_count(); ++i) {
    MDDC_ASSIGN_OR_RETURN(
        FactDimRelation merged,
        FactDimRelation::UnionWith(m1.relation(i), m2.relation(i)));
    result.relation_mutable(i) = std::move(merged);
  }
  MDDC_RETURN_NOT_OK(result.Validate());
  return result;
}

Result<MdObject> Difference(const MdObject& m1, const MdObject& m2) {
  MDDC_RETURN_NOT_OK(RequireSharedRegistry(m1, m2, "difference"));
  if (!m1.schema().EquivalentTo(m2.schema())) {
    return Status::SchemaMismatch(
        "difference requires equivalent schemas");
  }
  std::vector<Dimension> dimensions;
  for (std::size_t i = 0; i < m1.dimension_count(); ++i) {
    dimensions.push_back(m1.dimension(i));  // dimensions of M1 are kept
  }
  MdObject result(m1.schema().fact_type(), std::move(dimensions),
                  m1.registry(), m1.temporal_type());

  if (m1.temporal_type() == TemporalType::kSnapshot) {
    // Snapshot rule: F' = F1 \ F2, relations restricted.
    std::vector<FactId> kept;
    for (FactId fact : m1.facts()) {
      if (!m2.HasFact(fact)) kept.push_back(fact);
    }
    for (FactId fact : kept) MDDC_RETURN_NOT_OK(result.AddFact(fact));
    for (std::size_t i = 0; i < m1.dimension_count(); ++i) {
      FactDimRelation restricted = m1.relation(i);
      restricted.RestrictToFacts(kept);
      result.relation_mutable(i) = std::move(restricted);
    }
    MDDC_RETURN_NOT_OK(result.Validate());
    return result;
  }

  // Temporal rule (Section 4.2): cut each pair's time by the time the
  // corresponding pair has in M2; keep pairs with non-empty remaining
  // time; keep facts that retain a pair in every dimension.
  std::vector<FactDimRelation> cut(m1.dimension_count());
  for (std::size_t i = 0; i < m1.dimension_count(); ++i) {
    for (const FactDimRelation::Entry& entry : m1.relation(i).entries()) {
      TemporalElement other_valid;
      for (const FactDimRelation::Entry* other :
           m2.relation(i).ForFact(entry.fact)) {
        if (other->value == entry.value &&
            other->life.transaction.Overlaps(entry.life.transaction)) {
          other_valid = other_valid.Union(other->life.valid);
        }
      }
      Lifespan remaining{entry.life.valid.Subtract(other_valid),
                         entry.life.transaction};
      if (remaining.Empty()) continue;
      MDDC_RETURN_NOT_OK(
          cut[i].Add(entry.fact, entry.value, remaining, entry.prob));
    }
  }
  // Per-fact coverage over the sorted fact list as a flat rank/flag pass
  // per dimension — no ordered-map nodes and no per-fact HasFact probes
  // (see the BM_TemporalDifference note in bench/bench_algebra_ops.cpp).
  const std::vector<FactId>& facts1 = m1.facts();  // sorted by id
  std::vector<std::size_t> covered(facts1.size(), 0);
  std::vector<char> seen(facts1.size());
  for (std::size_t i = 0; i < m1.dimension_count(); ++i) {
    std::fill(seen.begin(), seen.end(), 0);
    for (const FactDimRelation::Entry& entry : cut[i].entries()) {
      const auto it =
          std::lower_bound(facts1.begin(), facts1.end(), entry.fact);
      if (it != facts1.end() && *it == entry.fact) {
        seen[static_cast<std::size_t>(it - facts1.begin())] = 1;
      }
    }
    for (std::size_t f = 0; f < facts1.size(); ++f) covered[f] += seen[f];
  }
  for (std::size_t f = 0; f < facts1.size(); ++f) {
    if (covered[f] == m1.dimension_count()) {
      MDDC_RETURN_NOT_OK(result.AddFact(facts1[f]));
    }
  }
  for (std::size_t i = 0; i < m1.dimension_count(); ++i) {
    cut[i].RestrictToFacts(result.facts());
    result.relation_mutable(i) = std::move(cut[i]);
  }
  MDDC_RETURN_NOT_OK(result.Validate());
  return result;
}

Result<MdObject> Join(const MdObject& m1, const MdObject& m2,
                      JoinPredicate predicate, ExecContext* exec) {
  MDDC_RETURN_NOT_OK(RequireSharedRegistry(m1, m2, "join"));
  // Dimension names must be disjoint; the paper prescribes rename for
  // self-joins.
  for (std::size_t i = 0; i < m1.dimension_count(); ++i) {
    for (std::size_t j = 0; j < m2.dimension_count(); ++j) {
      if (m1.dimension(i).name() == m2.dimension(j).name()) {
        return Status::InvalidArgument(
            StrCat("join operands both have a dimension named '",
                   m1.dimension(i).name(), "'; apply rename first"));
      }
    }
  }
  std::vector<Dimension> dimensions;
  for (std::size_t i = 0; i < m1.dimension_count(); ++i) {
    dimensions.push_back(m1.dimension(i));
  }
  for (std::size_t j = 0; j < m2.dimension_count(); ++j) {
    dimensions.push_back(m2.dimension(j));
  }
  MdObject result(
      StrCat("(", m1.schema().fact_type(), ",", m2.schema().fact_type(), ")"),
      std::move(dimensions), m1.registry(), m1.temporal_type());

  const std::vector<FactId>& facts1 = m1.facts();  // sorted by id
  const std::vector<FactId>& facts2 = m2.facts();  // sorted by id

  bool parallel = false;
  if (exec != nullptr && exec->num_threads > 1) {
    if (exec->WantsParallel(facts1.size())) {
      parallel = true;
    } else {
      // The caller asked for parallelism but the input is too small for
      // partitioning to pay off.
      ++exec->stats.sequential_fallbacks;
    }
  }

  // 1. Match lists, one disjoint slot per m1 fact, each in ascending m2
  //    scan order. The equi-join probes m2's sorted fact set instead of
  //    scanning it — identical matches, n1 log n2 instead of n1 * n2.
  //    Lists live in the context's bump arenas (each list in the arena of
  //    the partition that fills it, so workers never share an arena);
  //    without a context they fall back to the heap unchanged.
  ArenaResetGuard arena_guard{exec};
  const std::size_t num_partitions = parallel ? exec->num_threads : 1;
  if (parallel) exec->EnsureWorkerArenas(num_partitions);
  std::vector<ArenaVec<FactId>> matches;
  matches.reserve(facts1.size());
  for (std::size_t f = 0; f < facts1.size(); ++f) {
    Arena* arena =
        parallel
            ? &exec->worker_arena(HashUint64(facts1[f].raw()) % num_partitions)
            : (exec != nullptr ? &exec->arena : nullptr);
    matches.emplace_back(ArenaAllocator<FactId>(arena));
  }
  auto match_one = [&](std::size_t f) {
    const FactId f1 = facts1[f];
    switch (predicate) {
      case JoinPredicate::kEqual:
        if (std::binary_search(facts2.begin(), facts2.end(), f1)) {
          matches[f].push_back(f1);
        }
        break;
      case JoinPredicate::kNotEqual:
        matches[f].reserve(facts2.size());
        for (FactId f2 : facts2) {
          if (f2 != f1) matches[f].push_back(f2);
        }
        break;
      case JoinPredicate::kTrue:
        matches[f].assign(facts2.begin(), facts2.end());
        break;
    }
  };
  if (parallel) {
    // Warm the lazily written closure memos of every operand dimension so
    // the fan-out (and any concurrent reader of the operands) only ever
    // reads — the same pure-read discipline aggregate formation follows.
    // Compiling the rollup snapshot here rides on the same pass: the
    // result MO copies the operand dimensions, and copies share the
    // snapshot slot, so downstream aggregates over the join output start
    // with the index already built.
    for (std::size_t i = 0; i < m1.dimension_count(); ++i) {
      m1.dimension(i).WarmClosureMemo();
      (void)RollupIndex::For(m1.dimension(i), &exec->stats);
      ++exec->stats.index_hits;
    }
    for (std::size_t j = 0; j < m2.dimension_count(); ++j) {
      m2.dimension(j).WarmClosureMemo();
      (void)RollupIndex::For(m2.dimension(j), &exec->stats);
      ++exec->stats.index_hits;
    }
    exec->pool().ParallelFor(num_partitions, [&](std::size_t p) {
      for (std::size_t f = 0; f < facts1.size(); ++f) {
        if (HashUint64(facts1[f].raw()) % num_partitions == p) match_one(f);
      }
    });
    exec->stats.tasks += num_partitions;
    exec->stats.partitions += num_partitions;
  } else {
    for (std::size_t f = 0; f < facts1.size(); ++f) match_one(f);
  }

  // 2. Merge in fact order: walking m1's facts ascending and each match
  //    list in m2 scan order reproduces exactly the sequential
  //    nested-loop enumeration, so pair facts intern in the same order
  //    and get the same ids at any thread count.
  FactRegistry& registry = *m1.registry();
  std::vector<std::pair<FactId, std::pair<FactId, FactId>>> pairs;
  const auto merge_start = std::chrono::steady_clock::now();
  for (std::size_t f = 0; f < facts1.size(); ++f) {
    for (FactId f2 : matches[f]) {
      FactId pair = registry.Pair(facts1[f], f2);
      MDDC_RETURN_NOT_OK(result.AddFact(pair));
      pairs.emplace_back(pair, std::make_pair(facts1[f], f2));
    }
  }
  if (parallel) {
    exec->stats.merge_nanos += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - merge_start)
            .count());
  }

  // 3. Pair-fact relations. Each output dimension's relation is an
  //    independent slot written in pair order, so dimensions fan out in
  //    parallel; errors land in per-dimension Status slots and the first
  //    one in dimension order is returned.
  const std::size_t n1 = m1.dimension_count();
  const std::size_t n_out = n1 + m2.dimension_count();
  auto populate_dim = [&](std::size_t d) -> Status {
    const FactDimRelation& source =
        d < n1 ? m1.relation(d) : m2.relation(d - n1);
    FactDimRelation& target = result.relation_mutable(d);
    for (const auto& [pair, members] : pairs) {
      const FactId member = d < n1 ? members.first : members.second;
      for (std::size_t e : source.EntryIndexesForFact(member)) {
        const FactDimRelation::Entry& entry = source.entries()[e];
        MDDC_RETURN_NOT_OK(
            target.Add(pair, entry.value, entry.life, entry.prob));
      }
    }
    return Status::OK();
  };
  if (parallel) {
    std::vector<Status> statuses(n_out);
    exec->pool().ParallelFor(n_out,
                             [&](std::size_t d) { statuses[d] = populate_dim(d); });
    exec->stats.tasks += n_out;
    for (const Status& status : statuses) {
      MDDC_RETURN_NOT_OK(status);
    }
    ++exec->stats.parallel_runs;
    ++exec->stats.join_parallel_runs;
  } else {
    for (std::size_t d = 0; d < n_out; ++d) {
      MDDC_RETURN_NOT_OK(populate_dim(d));
    }
  }
  MDDC_RETURN_NOT_OK(result.Validate());
  return result;
}

ResultDimensionSpec ResultDimensionSpec::Auto(std::string name) {
  ResultDimensionSpec spec;
  spec.auto_name_ = std::move(name);
  return spec;
}

ResultDimensionSpec ResultDimensionSpec::Explicit(
    Dimension prototype, std::function<Result<ValueId>(double)> mapper) {
  ResultDimensionSpec spec;
  spec.prototype_ = std::move(prototype);
  spec.mapper_ = std::move(mapper);
  return spec;
}

namespace {

/// The aggregation type of the result dimension's bottom category per the
/// Section 4.1 rule, given the request's summarizability report.
AggregationType ResultBottomAggType(const MdObject& mo,
                                    const AggregateSpec& spec,
                                    const SummarizabilityReport& report) {
  if (!report.summarizable) return AggregationType::kConstant;
  // min over Args(g) of the argument bottoms' aggregation types; an empty
  // argument list (set-count) yields summable counts.
  AggregationType agg_type = AggregationType::kSum;
  for (std::size_t dim : spec.function.args()) {
    const DimensionType& type = mo.dimension(dim).type();
    agg_type = MinAggregationType(agg_type, type.AggType(type.bottom()));
  }
  return agg_type;
}

/// Per fact and dimension: the grouping-category values characterizing
/// the fact, with lifespans and probabilities. `dense` is the value's
/// dense id in the dimension's rollup snapshot, set on the indexed path
/// only — the dense group-by kernel turns it into a slot digit with one
/// array read.
struct Coordinate {
  ValueId value;
  /// nullopt means AlwaysSpan — the attachment of nontemporal data. The
  /// accumulate loops intersect group time with coordinate time per fact
  /// per dimension; spelling Always as nullopt makes the dominant
  /// snapshot case allocation-free (a materialized Lifespan copies two
  /// interval vectors) and lets those loops skip the identity Intersect.
  std::optional<Lifespan> life;
  double prob;
  std::uint32_t dense = RollupIndex::kNone;
};

/// Always-normalizing wrap: spans that cover the whole domain become
/// nullopt so downstream Intersects skip them.
std::optional<Lifespan> OptLife(const Lifespan& life) {
  if (life.IsAlways()) return std::nullopt;
  return life;
}

/// The fact's coordinates in every grouping category, or nullopt when
/// some dimension has none (the fact then joins no group). Read-only on
/// the MO (given warmed closure memos), so facts fan out in parallel.
///
/// `indexes` (empty, or one slot per dimension) carries compiled rollup
/// snapshots whose flat table replaces the full characterization scan:
/// per relation entry, the unique ancestor at the grouping category is
/// one array lookup. Under the snapshot's gate every closure lifespan is
/// Always, so the coordinate lifespan is the entry lifespan and the
/// probability the entry probability times the closure probability —
/// accumulated per coordinate value in entry order with the same
/// union/noisy-or CharacterizedBy applies, and emitted in ascending
/// ValueId order like the filtered characterization list. The two paths
/// are therefore bit-identical; dimensions without a usable snapshot
/// take the memoized path.
/// Per-dimension entry spans aligned to the MO's sorted fact vector:
/// `[i][f]` is relation i's entry-index run for facts[f] (empty when the
/// fact has no pairs there). Built once per run by sweeping each
/// relation's CSR by-fact view (FactDimRelation::FactSpans) in lockstep
/// with the fact list — a pointer sweep over two sorted flat arrays, no
/// per-fact lookups at all.
using FactEntryLists = std::vector<std::vector<FactDimRelation::EntrySpan>>;

/// Builds the per-fact entry lists for the `wanted` dimensions: one
/// lockstep walk of each relation's by-fact tree against the MO's sorted
/// fact vector replaces one tree lookup per (fact, dimension) in the hot
/// loops. Shared by AggregateFormation and AggregateStream.
FactEntryLists BuildFactEntryLists(const MdObject& mo,
                                   const std::vector<bool>& wanted) {
  const std::vector<FactId>& facts = mo.facts();  // sorted by id
  FactEntryLists fact_entries(mo.dimension_count());
  for (std::size_t i = 0; i < mo.dimension_count(); ++i) {
    if (!wanted[i]) continue;
    fact_entries[i].assign(facts.size(), FactDimRelation::EntrySpan{});
    const FactDimRelation& relation = mo.relation(i);
    const std::vector<FactDimRelation::FactSpan>& spans =
        relation.FactSpans();
    const std::size_t* base = relation.SpanEntryIndexes().data();
    std::size_t f = 0;
    for (const FactDimRelation::FactSpan& span : spans) {
      while (f < facts.size() && facts[f] < span.fact) ++f;
      if (f == facts.size()) break;
      if (facts[f] == span.fact) {
        fact_entries[i][f] = FactDimRelation::EntrySpan{
            base + span.begin, span.end - span.begin};
      }
    }
  }
  return fact_entries;
}

/// A fact's per-dimension coordinate lists, arena-backed on the
/// execution path (a query's dominant allocation source is exactly these
/// little per-fact vectors) and plain heap vectors for the baseline.
using CoordList = ArenaVec<Coordinate>;
using CoordLists = ArenaVec<CoordList>;

/// The shared per-dimension coordinate body of GroupingCoordinates and
/// the streaming scan: appends `fact`'s coordinates in `category` of
/// dimension `i` to `list`. With a compiled `index` the list is
/// accumulated per value in entry order and kept sorted by ValueId (a
/// linear insertion — coordinate lists are tiny), so emission matches the
/// ordered map this replaced without its node churn; without one the
/// memoized characterization scan runs unchanged. `span`, when non-null,
/// is the fact's precomputed CSR entry run (indexed path only).
void AppendDimCoordinates(const MdObject& mo, std::size_t i,
                          CategoryTypeIndex category, Chronon prob_at,
                          const RollupIndex* index, FactId fact,
                          const FactDimRelation::EntrySpan* span,
                          CoordList& list) {
  const Dimension& dimension = mo.dimension(i);
  if (index != nullptr) {
    const FactDimRelation& relation = mo.relation(i);
    const FactDimRelation::EntrySpan entry_list =
        span == nullptr ? FactDimRelation::EntrySpan::Of(
                              relation.EntryIndexesForFact(fact))
                        : *span;
    for (std::size_t e : entry_list) {
      const FactDimRelation::Entry& entry = relation.entries()[e];
      const std::uint32_t dense = index->DenseOf(entry.value);
      if (dense == RollupIndex::kNone) continue;
      const std::uint32_t ancestor = index->AncestorAt(dense, category);
      if (ancestor == RollupIndex::kNone) continue;
      const double prob =
          entry.prob * index->AncestorProbAt(dense, category);
      const ValueId value = index->ValueOf(ancestor);
      auto it = std::lower_bound(
          list.begin(), list.end(), value,
          [](const Coordinate& c, ValueId v) { return c.value < v; });
      if (it != list.end() && it->value == value) {
        // Always (nullopt) is absorbing under component-wise Union.
        if (it->life.has_value()) {
          it->life = OptLife(it->life->Union(entry.life));
        }
        it->prob = 1.0 - (1.0 - it->prob) * (1.0 - prob);
      } else {
        list.insert(it,
                    Coordinate{value, OptLife(entry.life), prob, ancestor});
      }
    }
  } else {
    for (const MdObject::Characterization& c :
         mo.CharacterizedBy(fact, i, prob_at)) {
      auto value_category = dimension.CategoryOf(c.value);
      if (value_category.ok() && *value_category == category) {
        list.push_back(Coordinate{c.value, OptLife(c.life), c.prob});
      }
    }
  }
}

std::optional<CoordLists> GroupingCoordinates(
    const MdObject& mo, const AggregateSpec& spec, FactId fact,
    const std::vector<std::shared_ptr<const RollupIndex>>& indexes,
    Arena* arena, const FactEntryLists* fact_entries = nullptr,
    std::size_t fact_ordinal = 0) {
  const std::size_t n = mo.dimension_count();
  CoordLists per_dim{ArenaAllocator<CoordList>(arena)};
  per_dim.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    per_dim.emplace_back(ArenaAllocator<Coordinate>(arena));
  }
  for (std::size_t i = 0; i < n; ++i) {
    const Dimension& dimension = mo.dimension(i);
    if (spec.grouping[i] == dimension.type().top()) {
      per_dim[i].push_back(
          Coordinate{dimension.top_value(), std::nullopt, 1.0});
      continue;
    }
    const RollupIndex* index =
        i < indexes.size() ? indexes[i].get() : nullptr;
    const FactDimRelation::EntrySpan* span =
        (index != nullptr && fact_entries != nullptr)
            ? &(*fact_entries)[i][fact_ordinal]
            : nullptr;
    AppendDimCoordinates(mo, i, spec.grouping[i], spec.prob_at, index, fact,
                         span, per_dim[i]);
    if (per_dim[i].empty()) return std::nullopt;
  }
  return per_dim;
}

/// One group under construction. The group's time per dimension is the
/// intersection over members of their characterization spans;
/// probabilities multiply over members.
struct GroupAccum {
  GroupAccum() = default;
  /// Kernel-path construction: the growable per-member lists live in the
  /// owning partition's arena (the default heap vectors remain for the
  /// ordered-map baseline).
  explicit GroupAccum(Arena* arena)
      : members(ArenaAllocator<FactId>(arena)),
        member_probs(ArenaAllocator<double>(arena)) {}

  ArenaVec<FactId> members;
  std::vector<Lifespan> life_per_dim;
  std::vector<double> prob_per_dim;
  /// Per member: probability that the member belongs to this group
  /// (product of its characterization probabilities across dimensions);
  /// feeds expected counts.
  ArenaVec<double> member_probs;
};

using GroupKey = std::vector<ValueId>;
using GroupMap = std::map<GroupKey, GroupAccum>;

/// Folds one fact's coordinate cross product into `groups` — the
/// ordered-map baseline engine, kept byte-for-byte as the no-context
/// ground truth the kernels are differentially tested against. Per-group
/// accumulation order is facts ascending, the order the kernels follow
/// too.
void AccumulateFact(std::size_t n, FactId fact, const CoordLists& per_dim,
                    GroupMap& groups) {
  // Enumerate the cross product of this fact's coordinate lists.
  std::vector<std::size_t> cursor(n, 0);
  while (true) {
    GroupKey key(n);
    for (std::size_t i = 0; i < n; ++i) {
      key[i] = per_dim[i][cursor[i]].value;
    }
    auto [it, inserted] = groups.try_emplace(std::move(key));
    GroupAccum& group = it->second;
    if (inserted) {
      group.life_per_dim.assign(n, Lifespan::AlwaysSpan());
      group.prob_per_dim.assign(n, 1.0);
    }
    group.members.push_back(fact);
    double member_prob = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      const Coordinate& c = per_dim[i][cursor[i]];
      if (c.life.has_value()) {
        group.life_per_dim[i] = group.life_per_dim[i].Intersect(*c.life);
      }
      group.prob_per_dim[i] *= c.prob;
      member_prob *= c.prob;
    }
    group.member_probs.push_back(member_prob);
    // Advance the cross-product cursor.
    std::size_t i = 0;
    while (i < n && ++cursor[i] == per_dim[i].size()) {
      cursor[i] = 0;
      ++i;
    }
    if (i == n) break;
  }
}

/// Per-group evaluation shared by both paths: canonical member order,
/// expected count, g(group), and the Section 4.2 result lifespan.
/// Mutates only the group itself (sorting its members), so distinct
/// groups evaluate concurrently.
struct GroupEval {
  double value = 0.0;
  Lifespan result_life;
};

Result<GroupEval> EvaluateGroup(const MdObject& mo, const AggregateSpec& spec,
                                GroupAccum& group) {
  GroupEval eval;
  // member_probs was built in member order; capture the expectation
  // before members are sorted for canonical set identity.
  double expected = 0.0;
  for (double p : group.member_probs) expected += p;
  std::sort(group.members.begin(), group.members.end());
  if (spec.expected_counts &&
      spec.function.kind() == AggregateFunctionKind::kSetCount) {
    eval.value = expected;
  } else {
    MDDC_ASSIGN_OR_RETURN(
        eval.value, spec.function.Evaluate(mo, group.members, spec.prob_at));
  }

  // Result-dimension time: per the Section 4.2 rule, the intersection
  // over the group's members and g's argument dimensions of the times
  // the member was related to its data (Always for argument-less
  // functions such as set-count).
  const std::size_t n = mo.dimension_count();
  Lifespan result_life = Lifespan::AlwaysSpan();
  for (std::size_t dim : spec.function.args()) {
    if (dim >= n) continue;
    const FactDimRelation& relation = mo.relation(dim);
    for (FactId member : group.members) {
      TemporalElement member_valid;
      TemporalElement member_transaction;
      for (std::size_t e : relation.EntryIndexesForFact(member)) {
        const FactDimRelation::Entry& entry = relation.entries()[e];
        member_valid = member_valid.Union(entry.life.valid);
        member_transaction =
            member_transaction.Union(entry.life.transaction);
      }
      result_life =
          result_life.Intersect(Lifespan{member_valid, member_transaction});
    }
  }
  eval.result_life = result_life;
  return eval;
}

// ---- Group-by kernels ------------------------------------------------------

/// Which engine builds the groups (docs/groupby_kernel.md). Callers
/// without an execution context keep the ordered-map engine as the
/// differential baseline; a context engages the dense-slot kernel when
/// every grouping dimension is covered by a flat rollup table (or grouped
/// at top) and the slot cross-product fits the context's threshold, and
/// the open-addressing flat-hash kernel otherwise.
enum class GroupEngine { kOrderedMap, kDenseSlots, kFlatHash };

/// Per-fact aggregate input on the kernel paths, computed once per fact
/// (riding the coordinate pass's fan-out) and folded into every group the
/// fact joins, in member order — the same per-member entry scan
/// AggFunction::Evaluate and EvaluateGroup perform per group.
struct FactContribution {
  FactContribution() = default;
  explicit FactContribution(Arena* arena)
      : values(ArenaAllocator<double>(arena)) {}

  /// Known (non-top) numeric entry values of the argument dimension, in
  /// relation scan order; empty for COUNT, which never reads values.
  ArenaVec<double> values;
  /// Known pairs, for COUNT.
  std::size_t counted = 0;
  /// First NumericValueOf failure, sticky — a group inheriting it reports
  /// it exactly as Evaluate would.
  Status error;
  bool failed = false;
  /// Section 4.2 member time: intersection over g's argument dimensions
  /// of the union of the member's entry spans. nullopt means AlwaysSpan,
  /// so nontemporal facts carry no interval vectors at all.
  std::optional<Lifespan> arg_life;
};

/// Numeric values memoized per distinct argument ValueId (the outcome of
/// NumericValueOf is a function of the value id alone for a fixed
/// prob_at), so the per-fact contribution pass does array walks instead
/// of representation lookups and strtod per entry.
using NumericValueCache = std::unordered_map<std::uint64_t, Result<double>>;

FactContribution ContributionOf(const MdObject& mo, const AggregateSpec& spec,
                                FactId fact,
                                const FactEntryLists* fact_entries,
                                std::size_t fact_ordinal,
                                const NumericValueCache* numeric_values,
                                Arena* arena) {
  FactContribution c(arena);
  const AggregateFunctionKind kind = spec.function.kind();
  const auto entry_list = [&](std::size_t dim) -> FactDimRelation::EntrySpan {
    if (fact_entries == nullptr) {
      return FactDimRelation::EntrySpan::Of(
          mo.relation(dim).EntryIndexesForFact(fact));
    }
    return (*fact_entries)[dim][fact_ordinal];
  };
  for (std::size_t dim : spec.function.args()) {
    if (dim >= mo.dimension_count()) continue;
    const FactDimRelation& relation = mo.relation(dim);
    const FactDimRelation::EntrySpan list = entry_list(dim);
    // Fast path for nontemporal data: a nonempty union of Always spans is
    // Always, and intersecting with Always is the identity.
    bool all_always = !list.empty();
    for (std::size_t e : list) {
      if (!relation.entries()[e].life.IsAlways()) {
        all_always = false;
        break;
      }
    }
    if (all_always) continue;
    TemporalElement member_valid;
    TemporalElement member_transaction;
    for (std::size_t e : list) {
      const FactDimRelation::Entry& entry = relation.entries()[e];
      member_valid = member_valid.Union(entry.life.valid);
      member_transaction = member_transaction.Union(entry.life.transaction);
    }
    Lifespan member{std::move(member_valid), std::move(member_transaction)};
    c.arg_life = c.arg_life.has_value() ? c.arg_life->Intersect(member)
                                        : std::move(member);
  }
  if (spec.function.args().empty()) return c;
  const std::size_t dim = spec.function.args().front();
  const Dimension& dimension = mo.dimension(dim);
  const FactDimRelation& relation = mo.relation(dim);
  for (std::size_t e : entry_list(dim)) {
    const FactDimRelation::Entry& entry = relation.entries()[e];
    if (entry.value == dimension.top_value()) continue;  // unknown
    if (kind == AggregateFunctionKind::kCount) {
      ++c.counted;
      continue;
    }
    Result<double> value = [&]() -> Result<double> {
      if (numeric_values != nullptr) {
        auto it = numeric_values->find(entry.value.raw());
        if (it != numeric_values->end()) return it->second;
      }
      return dimension.NumericValueOf(entry.value, spec.prob_at);
    }();
    if (!value.ok()) {
      c.failed = true;
      c.error = value.status();
      break;  // Evaluate stops at the first failing entry
    }
    c.values.push_back(*value);
  }
  return c;
}

/// One group under construction on a kernel path: the baseline
/// accumulator plus the streaming aggregate state EvaluateGroup would
/// otherwise recompute from the member list.
struct KernelGroup {
  KernelGroup() = default;
  explicit KernelGroup(Arena* arena) : base(arena) {}

  GroupAccum base;
  AggFunction::Accumulator agg;
  double expected = 0.0;
  Lifespan result_life = Lifespan::AlwaysSpan();
  Status error;
  bool failed = false;
};

/// Per-worker state of a kernel run. The dense engine owns a contiguous
/// slot range: group_of_slot is the range-local slot -> group indirection
/// (4 bytes per owned slot, not a per-slot accumulator, so untouched
/// slots cost only the sentinel), groups fill in touch order and sort by
/// slot at the merge. The flat-hash engine interns keys into one
/// fixed-stride buffer probed through the open-addressing index.
struct KernelPartition {
  /// All growable partition state bumps the partition's own arena (each
  /// partition is scanned by exactly one task, so arenas never race);
  /// only the open-addressing index keeps heap storage, whose rehashes
  /// are logarithmic in the group count.
  explicit KernelPartition(Arena* a)
      : arena(a),
        group_of_slot(ArenaAllocator<std::uint32_t>(a)),
        slot_of_group(ArenaAllocator<std::uint64_t>(a)),
        key_storage(ArenaAllocator<ValueId>(a)),
        groups(ArenaAllocator<KernelGroup>(a)) {}

  std::uint64_t slot_begin = 0;
  std::uint64_t slot_end = 0;
  Arena* arena = nullptr;
  ArenaVec<std::uint32_t> group_of_slot;
  ArenaVec<std::uint64_t> slot_of_group;
  FlatHashGroupIndex index;
  ArenaVec<ValueId> key_storage;  // stride n
  ArenaVec<KernelGroup> groups;
};

/// The dense-slot and flat-hash group-by engines. Both accumulate group
/// state per fact — members ascending, the same order the baseline builds
/// groups in — and emit groups in canonical lexicographic key order
/// (ascending slots ARE that order; flat-hash keys get one final sort),
/// so the output bytes match the ordered map at any thread count. On the
/// parallel path the dense engine partitions the slot space into
/// contiguous ranges and the flat-hash engine partitions keys by hash;
/// either way every worker scans all facts and accumulates only the
/// groups it owns, so each group is built whole by one worker.
Status RunGroupByKernel(
    const MdObject& mo, const AggregateSpec& spec, GroupEngine engine,
    const DenseSlotSpace& space,
    const std::vector<std::optional<CoordLists>>& coords,
    const FactEntryLists* fact_entries, bool parallel, ExecContext* exec,
    std::vector<GroupKey>& keys, std::vector<GroupAccum>& accums,
    std::vector<GroupEval>& evals) {
  const std::vector<FactId>& facts = mo.facts();  // sorted by id
  const std::size_t n = mo.dimension_count();
  const AggregateFunctionKind kind = spec.function.kind();
  const bool needs_data = !spec.function.args().empty();
  const bool bad_dim = needs_data && spec.function.args().front() >= n;

  // Per-fact aggregate inputs, computed once up front (pure reads on the
  // MO, so they fan out like the coordinate pass). Numeric parsing is
  // hoisted into a per-distinct-value cache first — sequentially, since
  // NumericValueOf reads lazily memoized dimension state.
  NumericValueCache numeric_values;
  const NumericValueCache* numeric_values_ptr = nullptr;
  if (needs_data && !bad_dim && kind != AggregateFunctionKind::kCount) {
    const std::size_t dim = spec.function.args().front();
    const Dimension& dimension = mo.dimension(dim);
    for (const FactDimRelation::Entry& entry : mo.relation(dim).entries()) {
      if (entry.value == dimension.top_value()) continue;
      const std::uint64_t raw = entry.value.raw();
      if (numeric_values.find(raw) != numeric_values.end()) continue;
      numeric_values.emplace(raw,
                             dimension.NumericValueOf(entry.value,
                                                      spec.prob_at));
    }
    numeric_values_ptr = &numeric_values;
  }
  std::vector<FactContribution> contributions;
  if (needs_data && !bad_dim) {
    contributions.resize(facts.size());
    auto fill_chunk = [&](std::size_t begin, std::size_t end, Arena* arena) {
      for (std::size_t f = begin; f < end; ++f) {
        if (coords[f].has_value()) {
          contributions[f] = ContributionOf(mo, spec, facts[f], fact_entries,
                                            f, numeric_values_ptr, arena);
        }
      }
    };
    if (parallel) {
      const std::size_t chunks = std::min(facts.size(), exec->num_threads * 4);
      exec->EnsureWorkerArenas(chunks);
      exec->pool().ParallelFor(chunks, [&](std::size_t chunk) {
        fill_chunk(chunk * facts.size() / chunks,
                   (chunk + 1) * facts.size() / chunks,
                   &exec->worker_arena(chunk));
      });
      exec->stats.tasks += chunks;
    } else {
      fill_chunk(0, facts.size(), &exec->arena);
    }
  }

  const std::size_t num_partitions = parallel ? exec->num_threads : 1;
  if (parallel) exec->EnsureWorkerArenas(num_partitions);
  std::vector<KernelPartition> parts;
  parts.reserve(num_partitions);
  for (std::size_t p = 0; p < num_partitions; ++p) {
    parts.emplace_back(parallel ? &exec->worker_arena(p) : &exec->arena);
  }
  if (engine == GroupEngine::kDenseSlots) {
    const std::uint64_t slots = space.slot_count();
    const std::uint64_t base = slots / num_partitions;
    const std::uint64_t extra = slots % num_partitions;
    std::uint64_t begin = 0;
    for (std::size_t p = 0; p < num_partitions; ++p) {
      const std::uint64_t width = base + (p < extra ? 1 : 0);
      parts[p].slot_begin = begin;
      parts[p].slot_end = begin + width;
      begin += width;
      parts[p].group_of_slot.assign(static_cast<std::size_t>(width),
                                    FlatHashGroupIndex::kNoGroup);
    }
  }

  auto scan_partition = [&](std::size_t p) {
    KernelPartition& part = parts[p];
    std::vector<std::size_t> cursor(n);
    std::vector<ValueId> scratch(n);
    for (std::size_t f = 0; f < facts.size(); ++f) {
      if (!coords[f].has_value()) continue;
      const CoordLists& per_dim = *coords[f];
      std::fill(cursor.begin(), cursor.end(), 0);
      // Enumerate the cross product of the fact's coordinate lists.
      while (true) {
        KernelGroup* group = nullptr;
        bool inserted = false;
        if (engine == GroupEngine::kDenseSlots) {
          // Row-major slot: dimension 0 is the most significant digit and
          // each digit is the coordinate's rank in its grouping category,
          // so ascending slots reproduce the map's lexicographic order.
          std::uint64_t slot = 0;
          for (std::size_t i = 0; i < n; ++i) {
            slot = slot * space.cardinality(i) +
                   (space.fixed(i)
                        ? 0
                        : space.OrdinalOf(i, per_dim[i][cursor[i]].dense));
          }
          if (slot >= part.slot_begin && slot < part.slot_end) {
            std::uint32_t& g = part.group_of_slot[static_cast<std::size_t>(
                slot - part.slot_begin)];
            if (g == FlatHashGroupIndex::kNoGroup) {
              g = static_cast<std::uint32_t>(part.groups.size());
              part.groups.emplace_back(part.arena);
              part.slot_of_group.push_back(slot);
              inserted = true;
            }
            group = &part.groups[g];
          }
        } else {
          for (std::size_t i = 0; i < n; ++i) {
            scratch[i] = per_dim[i][cursor[i]].value;
          }
          const std::uint64_t hash = HashValueIds(scratch.data(), n);
          if (num_partitions == 1 || hash % num_partitions == p) {
            const std::uint32_t g = part.index.FindOrInsert(
                hash, static_cast<std::uint32_t>(part.groups.size()),
                [&](std::uint32_t ordinal) {
                  return std::equal(scratch.begin(), scratch.end(),
                                    part.key_storage.begin() +
                                        static_cast<std::ptrdiff_t>(
                                            ordinal * n));
                },
                &inserted);
            if (inserted) {
              part.key_storage.insert(part.key_storage.end(), scratch.begin(),
                                      scratch.end());
              part.groups.emplace_back(part.arena);
            }
            group = &part.groups[g];
          }
        }
        if (group != nullptr) {
          if (inserted) {
            group->base.life_per_dim.assign(n, Lifespan::AlwaysSpan());
            group->base.prob_per_dim.assign(n, 1.0);
          }
          group->base.members.push_back(facts[f]);
          double member_prob = 1.0;
          for (std::size_t i = 0; i < n; ++i) {
            const Coordinate& c = per_dim[i][cursor[i]];
            if (c.life.has_value()) {
              group->base.life_per_dim[i] =
                  group->base.life_per_dim[i].Intersect(*c.life);
            }
            group->base.prob_per_dim[i] *= c.prob;
            member_prob *= c.prob;
          }
          group->expected += member_prob;
          if (needs_data && !bad_dim) {
            const FactContribution& c = contributions[f];
            if (c.arg_life.has_value()) {
              group->result_life = group->result_life.Intersect(*c.arg_life);
            }
            if (c.failed) {
              if (!group->failed) {
                group->failed = true;
                group->error = c.error;
              }
            } else if (!group->failed) {
              if (kind == AggregateFunctionKind::kCount) {
                group->agg.AddCounted(c.counted);
              } else {
                for (double value : c.values) group->agg.Add(value);
              }
            }
          }
        }
        // Advance the cross-product cursor.
        std::size_t i = 0;
        while (i < n && ++cursor[i] == per_dim[i].size()) {
          cursor[i] = 0;
          ++i;
        }
        if (i == n) break;
      }
    }
  };
  if (parallel) {
    exec->pool().ParallelFor(num_partitions, scan_partition);
    exec->stats.tasks += num_partitions;
    exec->stats.partitions += num_partitions;
    ++exec->stats.parallel_runs;
  } else {
    scan_partition(0);
  }

  // Canonical group order: ascending slot for the dense engine (the
  // partitions own ascending disjoint ranges), one lexicographic key sort
  // for the flat-hash engine — both exactly the ordered map's iteration
  // order.
  struct GroupRef {
    std::uint32_t partition;
    std::uint32_t ordinal;
  };
  std::size_t total = 0;
  for (const KernelPartition& part : parts) total += part.groups.size();
  std::vector<GroupRef> order;
  order.reserve(total);
  const auto merge_start = std::chrono::steady_clock::now();
  if (engine == GroupEngine::kDenseSlots) {
    for (std::size_t p = 0; p < parts.size(); ++p) {
      KernelPartition& part = parts[p];
      std::vector<std::uint32_t> by_slot(part.groups.size());
      for (std::uint32_t g = 0; g < by_slot.size(); ++g) by_slot[g] = g;
      std::sort(by_slot.begin(), by_slot.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  return part.slot_of_group[a] < part.slot_of_group[b];
                });
      for (std::uint32_t g : by_slot) {
        order.push_back({static_cast<std::uint32_t>(p), g});
      }
    }
  } else {
    for (std::size_t p = 0; p < parts.size(); ++p) {
      for (std::uint32_t g = 0; g < parts[p].groups.size(); ++g) {
        order.push_back({static_cast<std::uint32_t>(p), g});
      }
    }
    std::sort(order.begin(), order.end(),
              [&](const GroupRef& a, const GroupRef& b) {
                const ValueId* ka =
                    parts[a.partition].key_storage.data() + a.ordinal * n;
                const ValueId* kb =
                    parts[b.partition].key_storage.data() + b.ordinal * n;
                return std::lexicographical_compare(ka, ka + n, kb, kb + n);
              });
  }
  if (parallel) {
    exec->stats.merge_nanos += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - merge_start)
            .count());
  }

  if (bad_dim && total > 0) {
    // Every group's Evaluate would fail identically; surface it exactly
    // as the baseline does for its first group.
    return Status::InvalidArgument(
        StrCat(spec.function.name(), " references dimension ",
               spec.function.args().front(), " of a ", n,
               "-dimensional MO"));
  }
  keys.reserve(total);
  accums.reserve(total);
  evals.reserve(total);
  GroupKey key(n);
  for (const GroupRef& ref : order) {
    KernelPartition& part = parts[ref.partition];
    KernelGroup& group = part.groups[ref.ordinal];
    if (group.failed) return group.error;
    if (engine == GroupEngine::kDenseSlots) {
      space.KeyOf(part.slot_of_group[ref.ordinal], key);
    } else {
      const auto begin = part.key_storage.begin() +
                         static_cast<std::ptrdiff_t>(ref.ordinal * n);
      key.assign(begin, begin + static_cast<std::ptrdiff_t>(n));
    }
    // Members were appended in ascending fact order and each fact joins a
    // given key at most once, so the list is already the canonical sorted
    // set EvaluateGroup produces.
    GroupEval eval;
    if (kind == AggregateFunctionKind::kSetCount) {
      eval.value = spec.expected_counts
                       ? group.expected
                       : static_cast<double>(group.base.members.size());
    } else {
      MDDC_ASSIGN_OR_RETURN(eval.value, spec.function.Finish(group.agg));
    }
    eval.result_life = group.result_life;
    keys.push_back(key);
    accums.push_back(std::move(group.base));
    evals.push_back(eval);
  }
  return Status::OK();
}

/// Steps 4-6 of aggregate formation, shared with FoldAggregateAppend:
/// restrict the argument dimensions, build the result dimension under the
/// Section 4.1 typing rule, and populate facts/relations from the
/// evaluated groups in canonical order. When spec.capture is set, the raw
/// (pre-presentation) per-group state is recorded here — this is the only
/// place every engine funnels through with both the accumulators and the
/// evaluations in hand.
Result<MdObject> AssembleAggregateResult(
    const MdObject& mo, const AggregateSpec& spec,
    const SummarizabilityReport& summarizability,
    const std::vector<GroupKey>& keys, std::vector<GroupAccum>& accums,
    const std::vector<GroupEval>& evals) {
  const std::size_t n = mo.dimension_count();

  // 4. Argument dimensions restricted to the categories at or above the
  //    grouping categories.
  std::vector<Dimension> dimensions;
  dimensions.reserve(n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    MDDC_ASSIGN_OR_RETURN(Dimension restricted,
                          mo.dimension(i).RestrictAbove(spec.grouping[i]));
    dimensions.push_back(std::move(restricted));
  }

  // 5. The result dimension.
  AggregationType bottom_agg =
      ResultBottomAggType(mo, spec, summarizability);
  std::optional<Dimension> result_dimension;
  CategoryTypeIndex result_bottom = 0;
  if (spec.result.is_auto()) {
    DimensionTypeBuilder builder(spec.result.auto_name());
    builder.AddCategory("Value", bottom_agg);
    MDDC_ASSIGN_OR_RETURN(auto type, builder.Build());
    result_dimension.emplace(type);
    result_bottom = type->bottom();
  } else {
    // Apply the typing rule to the prototype: bottom gets the rule's
    // type; higher categories get min(existing, bottom).
    const Dimension& prototype = spec.result.prototype();
    auto type = prototype.type_ptr();
    auto adjusted = type->WithAggType(type->bottom(), bottom_agg);
    for (CategoryTypeIndex c = 0; c < adjusted->category_count(); ++c) {
      if (c == adjusted->bottom()) continue;
      adjusted = adjusted->WithAggType(
          c, MinAggregationType(adjusted->AggType(c), bottom_agg));
    }
    // Rebuild the prototype's content under the adjusted type: the
    // lattice is unchanged, so value/edge structure carries over.
    Dimension rebuilt(adjusted);
    for (ValueId value : prototype.AllValues()) {
      if (value == prototype.top_value()) continue;
      auto category = prototype.CategoryOf(value);
      auto membership = prototype.MembershipOf(value);
      MDDC_RETURN_NOT_OK(rebuilt.AddValue(*category, value, *membership));
    }
    for (const Dimension::Edge& edge : prototype.edges()) {
      MDDC_RETURN_NOT_OK(
          rebuilt.AddOrder(edge.child, edge.parent, edge.life, edge.prob));
    }
    for (const auto& [category, rep_name, rep] :
         prototype.AllRepresentations()) {
      Representation& target = rebuilt.RepresentationFor(category, rep_name);
      for (ValueId value : prototype.ValuesIn(category)) {
        for (const auto& [text, life] : rep->GetAll(value)) {
          MDDC_RETURN_NOT_OK(target.Set(value, text, life));
        }
      }
    }
    result_bottom = adjusted->bottom();
    result_dimension.emplace(std::move(rebuilt));
  }
  dimensions.push_back(*result_dimension);

  MdObject result(StrCat("Set-of-", mo.schema().fact_type()),
                  std::move(dimensions), mo.registry(), mo.temporal_type());

  AggregateFoldState* capture = spec.capture;
  if (capture != nullptr) {
    capture->groups.clear();
    capture->groups.reserve(keys.size());
    capture->summarizability = summarizability;
    capture->dim_versions.clear();
    capture->dim_structural_versions.clear();
    for (std::size_t i = 0; i < n; ++i) {
      capture->dim_versions.push_back(mo.dimension(i).version());
      capture->dim_structural_versions.push_back(
          mo.dimension(i).structural_version());
    }
    // Explicit result specs route results through a caller mapper whose
    // interning order a fold cannot reproduce; only auto captures resume.
    capture->valid = spec.result.is_auto();
  }

  // 5. Populate facts and relations from the step-3 evaluations, in
  //    canonical group order (members already canonically sorted) —
  //    g(group) and the result lifespan are not recomputed here.
  FactRegistry& registry = *mo.registry();
  Dimension& out_result_dim = result.dimension_mutable(n);
  // Result values are interned by the double's bit pattern, not its
  //    formatted text: FormatDouble is injective for finite doubles but
  //    collapses NaN payloads, and two distinct results must never share
  //    a result value. The formatted text is display-only.
  std::map<std::uint64_t, ValueId> auto_values;
  for (std::size_t g = 0; g < keys.size(); ++g) {
    const GroupKey& key = keys[g];
    GroupAccum& group = accums[g];
    const GroupEval& eval = evals[g];
    FactId group_fact = registry.Set(
        std::vector<FactId>(group.members.begin(), group.members.end()));
    MDDC_RETURN_NOT_OK(result.AddFact(group_fact));
    const double value = eval.value;

    if (capture != nullptr && capture->valid) {
      AggregateFoldState::Group snapshot;
      snapshot.key = key;
      snapshot.group_fact = group_fact;
      snapshot.member_count = group.members.size();
      snapshot.life_per_dim.assign(group.life_per_dim.begin(),
                                   group.life_per_dim.end());
      snapshot.prob_per_dim.assign(group.prob_per_dim.begin(),
                                   group.prob_per_dim.end());
      snapshot.result_life = eval.result_life;
      snapshot.value = value;
      capture->groups.push_back(std::move(snapshot));
    }

    // Argument-dimension relations: group fact -> grouping value.
    for (std::size_t i = 0; i < n; ++i) {
      Lifespan life = group.life_per_dim[i];
      if (life.Empty()) {
        // The members' spans do not overlap; the grouping still holds
        // atemporally (each member was characterized at its own time), so
        // record the link with the union-of-members semantics instead.
        life = Lifespan::AlwaysSpan();
      }
      MDDC_RETURN_NOT_OK(result.relation_mutable(i).Add(
          group_fact, key[i], life, group.prob_per_dim[i]));
    }

    // Result-dimension relation: group fact -> g(group), at the Section
    // 4.2 result lifespan EvaluateGroup computed.
    Lifespan result_life = eval.result_life;
    ValueId result_value;
    if (spec.result.is_auto()) {
      const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
      auto it = auto_values.find(bits);
      if (it == auto_values.end()) {
        MDDC_ASSIGN_OR_RETURN(result_value,
                              out_result_dim.AddValueAuto(result_bottom));
        Representation& rep =
            out_result_dim.RepresentationFor(result_bottom, "Value");
        MDDC_RETURN_NOT_OK(rep.Set(result_value, FormatDouble(value)));
        auto_values.emplace(bits, result_value);
      } else {
        result_value = it->second;
      }
    } else {
      MDDC_ASSIGN_OR_RETURN(result_value, spec.result.Map(value));
      if (!out_result_dim.HasValue(result_value)) {
        return Status::InvalidArgument(
            StrCat("result mapper returned value ", result_value,
                   " not present in the result dimension prototype"));
      }
    }
    if (result_life.Empty()) result_life = Lifespan::AlwaysSpan();
    MDDC_RETURN_NOT_OK(result.relation_mutable(n).Add(
        group_fact, result_value, result_life));
  }

  MDDC_RETURN_NOT_OK(result.Validate());
  return result;
}

}  // namespace

Result<MdObject> AggregateFormation(const MdObject& mo,
                                    const AggregateSpec& spec,
                                    ExecContext* exec) {
  if (spec.grouping.size() != mo.dimension_count()) {
    return Status::InvalidArgument(
        StrCat("aggregate formation got ", spec.grouping.size(),
               " grouping categories for a ", mo.dimension_count(),
               "-dimensional MO"));
  }
  for (std::size_t i = 0; i < spec.grouping.size(); ++i) {
    if (spec.grouping[i] >= mo.dimension(i).type().category_count()) {
      return Status::InvalidArgument(
          StrCat("grouping category ", spec.grouping[i],
                 " out of range for dimension '", mo.dimension(i).name(),
                 "'"));
    }
  }
  if (spec.enforce_aggregation_types) {
    MDDC_RETURN_NOT_OK(spec.function.CheckApplicable(mo));
  }

  // The grouping collects characterizations across all time, so the
  // strictness/partitioning conditions are checked atemporally. The
  // report drives both the Section 4.1 typing rule and the parallel
  // path's safety gate.
  const SummarizabilityReport summarizability =
      CheckSummarizability(mo, spec.function.kind(), spec.grouping);

  const std::vector<FactId>& facts = mo.facts();  // sorted by id
  const std::size_t n = mo.dimension_count();

  // Everything arena-backed below (coordinates, contributions, kernel
  // partition state) is scratch of this one formation; the guard rewinds
  // the context's arenas on every exit path.
  ArenaResetGuard arena_guard{exec};

  bool parallel = exec != nullptr && exec->WantsParallel(facts.size());
  if (parallel && !summarizability.summarizable) {
    // Per-worker partial groups are safely combinable exactly when the
    // function is distributive and the paths strict and the hierarchies
    // partitioning (Section 3.4) — the same rule under which
    // PreAggregateCache reuses materialized partials. Anything else
    // (non-strict groupings, AVG, ...) conservatively runs sequentially.
    ++exec->stats.sequential_fallbacks;
    parallel = false;
  }

  // 0. Compiled rollup snapshots for the grouping dimensions. Any caller
  //    with an execution context gets the indexed path (one thread
  //    included); callers without one keep the untouched memoized engine
  //    as ground truth. A dimension whose snapshot fails the
  //    strictness/non-temporal gate falls back to traversal — results
  //    are bit-identical either way, only the walk differs.
  std::vector<std::shared_ptr<const RollupIndex>> indexes;
  if (exec != nullptr) {
    indexes.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (spec.grouping[i] == mo.dimension(i).type().top()) continue;
      std::shared_ptr<const RollupIndex> index =
          RollupIndex::For(mo.dimension(i), &exec->stats);
      if (index->has_flat_table()) {
        indexes[i] = std::move(index);
        ++exec->stats.index_hits;
      } else {
        ++exec->stats.index_fallbacks;
      }
    }
  }

  // 0b. Per-fact entry lists for the dimensions the hot loops touch
  //     (indexed grouping dimensions and the aggregate's argument
  //     dimensions): one lockstep walk of each relation's by-fact tree
  //     against the sorted fact vector replaces one tree lookup per
  //     (fact, dimension) below.
  FactEntryLists fact_entries;
  const FactEntryLists* fact_entries_ptr = nullptr;
  if (exec != nullptr) {
    std::vector<bool> wanted(n, false);
    for (std::size_t i = 0; i < n; ++i) {
      if (indexes[i] != nullptr) wanted[i] = true;
    }
    for (std::size_t dim : spec.function.args()) {
      if (dim < n) wanted[dim] = true;
    }
    fact_entries = BuildFactEntryLists(mo, wanted);
    fact_entries_ptr = &fact_entries;
  }

  // 1. Grouping coordinates per fact, in fact order. Coordinate lists
  //    bump the context's arenas — per parallel chunk its own arena, so
  //    workers never contend — and fall back to plain heap vectors for
  //    context-free callers.
  std::vector<std::optional<CoordLists>> coords(facts.size());
  if (parallel) {
    // Warm the lazily written closure memos so the fan-out below only
    // ever reads the dimensions.
    for (std::size_t i = 0; i < n; ++i) mo.dimension(i).WarmClosureMemo();
    const std::size_t chunks = std::min(facts.size(), exec->num_threads * 4);
    exec->EnsureWorkerArenas(chunks);
    exec->pool().ParallelFor(chunks, [&](std::size_t chunk) {
      const std::size_t begin = chunk * facts.size() / chunks;
      const std::size_t end = (chunk + 1) * facts.size() / chunks;
      Arena* arena = &exec->worker_arena(chunk);
      for (std::size_t f = begin; f < end; ++f) {
        coords[f] = GroupingCoordinates(mo, spec, facts[f], indexes, arena,
                                        fact_entries_ptr, f);
      }
    });
    exec->stats.tasks += chunks;
  } else {
    Arena* arena = exec != nullptr ? &exec->arena : nullptr;
    for (std::size_t f = 0; f < facts.size(); ++f) {
      coords[f] = GroupingCoordinates(mo, spec, facts[f], indexes, arena,
                                      fact_entries_ptr, f);
    }
  }

  // 2. Engine selection (docs/groupby_kernel.md). Any caller with an
  //    execution context gets a kernel: dense slots when every grouping
  //    dimension is either grouped at top or covered by a flat rollup
  //    table AND the slot cross-product fits the context's threshold;
  //    the flat-hash kernel otherwise. Context-free callers keep the
  //    ordered-map baseline as differential ground truth.
  GroupEngine engine = GroupEngine::kOrderedMap;
  DenseSlotSpace space;
  if (exec != nullptr) {
    engine = GroupEngine::kFlatHash;
    bool all_indexed = true;
    std::vector<DenseSlotSpace::GroupingDim> grouping_dims(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (spec.grouping[i] == mo.dimension(i).type().top()) {
        grouping_dims[i] = {nullptr, 0, mo.dimension(i).top_value()};
      } else if (indexes[i] != nullptr) {
        grouping_dims[i] = {indexes[i].get(), spec.grouping[i], ValueId{}};
      } else {
        all_indexed = false;
        break;
      }
    }
    if (all_indexed) {
      switch (DenseSlotSpace::Build(grouping_dims,
                                    exec->max_dense_groupby_slots, &space)) {
        case DenseSlotSpace::Plan::kDense:
          engine = GroupEngine::kDenseSlots;
          break;
        case DenseSlotSpace::Plan::kTooManySlots:
          ++exec->stats.dense_slot_fallbacks;
          break;
        case DenseSlotSpace::Plan::kNotIndexed:
          break;
      }
    }
  }

  // 3. Build and evaluate groups. Either engine yields groups in
  //    canonical lexicographic key order with members in ascending fact
  //    order, so the assembled result is byte-identical across engines
  //    and thread counts.
  std::vector<GroupKey> keys;
  std::vector<GroupAccum> accums;
  std::vector<GroupEval> evals;
  if (engine == GroupEngine::kOrderedMap) {
    GroupMap groups;
    for (std::size_t f = 0; f < facts.size(); ++f) {
      if (!coords[f].has_value()) continue;
      AccumulateFact(n, facts[f], *coords[f], groups);
    }
    keys.reserve(groups.size());
    accums.reserve(groups.size());
    evals.reserve(groups.size());
    for (auto& [key, group] : groups) {
      MDDC_ASSIGN_OR_RETURN(GroupEval eval, EvaluateGroup(mo, spec, group));
      keys.push_back(key);
      evals.push_back(eval);
      accums.push_back(std::move(group));
    }
  } else {
    if (engine == GroupEngine::kDenseSlots) {
      ++exec->stats.dense_groupby_runs;
    } else {
      ++exec->stats.flat_hash_runs;
    }
    MDDC_RETURN_NOT_OK(RunGroupByKernel(mo, spec, engine, space, coords,
                                        fact_entries_ptr, parallel, exec, keys,
                                        accums, evals));
  }

  // 4-6. Assemble the result (and, under spec.capture, record the raw
  //      fold state) — shared with FoldAggregateAppend.
  return AssembleAggregateResult(mo, spec, summarizability, keys, accums,
                                 evals);
}

Result<MdObject> FoldAggregateAppend(const MdObject& mo,
                                     const AggregateSpec& spec,
                                     const AggregateFoldState& state,
                                     const std::vector<FactId>& delta_facts,
                                     ExecContext* exec) {
  const std::size_t n = mo.dimension_count();
  if (!state.valid) {
    return Status::InvalidArgument("fold state is not resumable");
  }
  if (spec.grouping.size() != n || state.dim_versions.size() != n ||
      state.dim_structural_versions.size() != n ||
      state.summarizability.strict_path.size() != n ||
      state.summarizability.partitioning.size() != n) {
    return Status::InvalidArgument(
        StrCat("fold state shape does not match the ", n,
               "-dimensional MO"));
  }
  if (!spec.result.is_auto()) {
    return Status::InvalidArgument(
        "fold supports auto result dimensions only");
  }
  const AggregateFunctionKind kind = spec.function.kind();
  const bool foldable =
      kind == AggregateFunctionKind::kSum ||
      kind == AggregateFunctionKind::kCount ||
      kind == AggregateFunctionKind::kMin ||
      kind == AggregateFunctionKind::kMax ||
      (kind == AggregateFunctionKind::kSetCount && !spec.expected_counts);
  if (!foldable) {
    return Status::InvalidArgument(
        StrCat(spec.function.name(),
               " is not incrementally foldable (AVG re-divides and expected"
               " counts re-weigh every member)"));
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (mo.dimension(i).structural_version() !=
        state.dim_structural_versions[i]) {
      return Status::InvalidArgument(
          StrCat("dimension '", mo.dimension(i).name(),
                 "' changed structurally since the fold state was captured"));
    }
  }
  if (spec.enforce_aggregation_types) {
    MDDC_RETURN_NOT_OK(spec.function.CheckApplicable(mo));
  }

  // Recompose the atemporal summarizability report. Strict-path is a
  // per-fact universal, so it factorizes: the captured verdict covers the
  // old facts (whose upward closures appends cannot change — appended
  // edges only ever hang fresh children) and only the delta is scanned.
  // Partitioning is dimension-local and CAN flip under a value/edge
  // append, so it is recomputed whenever the dimension's version moved.
  SummarizabilityReport summarizability;
  summarizability.distributive = IsDistributive(kind);
  summarizability.summarizable = summarizability.distributive;
  for (std::size_t i = 0; i < n; ++i) {
    if (spec.grouping[i] == mo.dimension(i).type().top()) {
      summarizability.strict_path.push_back(true);
      summarizability.partitioning.push_back(true);
      continue;
    }
    const bool strict =
        state.summarizability.strict_path[i] &&
        HasStrictPath(mo, i, spec.grouping[i], std::nullopt, &delta_facts);
    const bool partitioning =
        mo.dimension(i).version() == state.dim_versions[i]
            ? state.summarizability.partitioning[i]
            : IsPartitioningUpTo(mo.dimension(i), spec.grouping[i]);
    summarizability.strict_path.push_back(strict);
    summarizability.partitioning.push_back(partitioning);
    summarizability.summarizable =
        summarizability.summarizable && strict && partitioning;
  }

  ArenaResetGuard arena_guard{exec};

  // Seed one merged ordered map from the captured groups — std::map's
  // iteration order IS the canonical lexicographic emission order — then
  // resume the exact member-order left-folds over the delta facts. The
  // registry read-back recovers each group's canonical member list (set
  // terms stay resolvable through fork chains).
  struct FoldGroup {
    GroupAccum accum;
    std::ptrdiff_t old_index = -1;
    std::size_t old_members = 0;
  };
  std::map<GroupKey, FoldGroup> groups;
  const FactRegistry& registry = *mo.registry();
  FactId max_old_member;  // invalid = no captured members at all
  for (std::size_t g = 0; g < state.groups.size(); ++g) {
    const AggregateFoldState::Group& old_group = state.groups[g];
    if (old_group.key.size() != n || old_group.life_per_dim.size() != n ||
        old_group.prob_per_dim.size() != n) {
      return Status::InvalidArgument("fold state group shape mismatch");
    }
    MDDC_ASSIGN_OR_RETURN(FactTerm term, registry.Get(old_group.group_fact));
    if (term.kind != FactTerm::Kind::kSet ||
        term.members.size() != old_group.member_count) {
      return Status::InvalidArgument("fold state group members drifted");
    }
    FoldGroup seeded;
    seeded.old_index = static_cast<std::ptrdiff_t>(g);
    seeded.old_members = term.members.size();
    seeded.accum.members.assign(term.members.begin(), term.members.end());
    seeded.accum.life_per_dim = old_group.life_per_dim;
    seeded.accum.prob_per_dim = old_group.prob_per_dim;
    if (!term.members.empty() &&
        (!max_old_member.valid() || max_old_member < term.members.back())) {
      max_old_member = term.members.back();
    }
    auto [it, inserted] =
        groups.emplace(old_group.key, std::move(seeded));
    if (!inserted) {
      return Status::InvalidArgument("fold state has duplicate group keys");
    }
    (void)it;
  }
  // The byte-identity argument needs every delta fact to sort after every
  // captured member and the delta itself to ascend — the natural shape of
  // registry appends. Anything else must take the full re-run.
  for (std::size_t f = 0; f < delta_facts.size(); ++f) {
    if (f > 0 && !(delta_facts[f - 1] < delta_facts[f])) {
      return Status::InvalidArgument("delta facts are not ascending");
    }
    if (max_old_member.valid() && !(max_old_member < delta_facts[f])) {
      return Status::InvalidArgument(
          "delta facts do not all follow the captured members");
    }
  }

  // Rollup snapshots for the delta coordinate scan, exactly as the
  // formation's step 0 (the snapshots themselves patch incrementally on
  // appends — see RollupIndex::For).
  std::vector<std::shared_ptr<const RollupIndex>> indexes;
  if (exec != nullptr) {
    indexes.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (spec.grouping[i] == mo.dimension(i).type().top()) continue;
      std::shared_ptr<const RollupIndex> index =
          RollupIndex::For(mo.dimension(i), &exec->stats);
      if (index->has_flat_table()) {
        indexes[i] = std::move(index);
        ++exec->stats.index_hits;
      } else {
        ++exec->stats.index_fallbacks;
      }
    }
  }

  // Delta accumulation: the AccumulateFact cross product, resumed on the
  // seeded accumulators. The delta is small by construction, so the scan
  // stays sequential.
  Arena* arena = exec != nullptr ? &exec->arena : nullptr;
  for (FactId fact : delta_facts) {
    std::optional<CoordLists> coords =
        GroupingCoordinates(mo, spec, fact, indexes, arena);
    if (!coords.has_value()) continue;
    std::vector<std::size_t> cursor(n, 0);
    while (true) {
      GroupKey key(n);
      for (std::size_t i = 0; i < n; ++i) {
        key[i] = (*coords)[i][cursor[i]].value;
      }
      auto [it, inserted] = groups.try_emplace(std::move(key));
      GroupAccum& group = it->second.accum;
      if (inserted) {
        group.life_per_dim.assign(n, Lifespan::AlwaysSpan());
        group.prob_per_dim.assign(n, 1.0);
      }
      group.members.push_back(fact);
      double member_prob = 1.0;
      for (std::size_t i = 0; i < n; ++i) {
        const Coordinate& c = (*coords)[i][cursor[i]];
        if (c.life.has_value()) {
          group.life_per_dim[i] = group.life_per_dim[i].Intersect(*c.life);
        }
        group.prob_per_dim[i] *= c.prob;
        member_prob *= c.prob;
      }
      group.member_probs.push_back(member_prob);
      std::size_t i = 0;
      while (i < n && ++cursor[i] == (*coords)[i].size()) {
        cursor[i] = 0;
        ++i;
      }
      if (i == n) break;
    }
  }

  // Evaluate merged groups in canonical order: untouched groups replay
  // their captured value verbatim, fresh groups evaluate from scratch
  // (exactly what the full run would do for a group of only-new members),
  // and mixed groups resume the accumulator from the captured value so
  // the floating-point operation sequence matches a full old-then-new
  // fold bit for bit.
  std::vector<GroupKey> keys;
  std::vector<GroupAccum> accums;
  std::vector<GroupEval> evals;
  keys.reserve(groups.size());
  accums.reserve(groups.size());
  evals.reserve(groups.size());
  for (auto& [key, fold_group] : groups) {
    GroupAccum& group = fold_group.accum;
    GroupEval eval;
    if (fold_group.old_index < 0) {
      MDDC_ASSIGN_OR_RETURN(eval, EvaluateGroup(mo, spec, group));
    } else {
      const AggregateFoldState::Group& old_group =
          state.groups[static_cast<std::size_t>(fold_group.old_index)];
      const std::size_t fresh_count =
          group.members.size() - fold_group.old_members;
      if (fresh_count == 0) {
        eval.value = old_group.value;
        eval.result_life = old_group.result_life;
      } else {
        const std::span<const FactId> fresh(
            group.members.data() + fold_group.old_members, fresh_count);
        if (kind == AggregateFunctionKind::kSetCount) {
          eval.value = static_cast<double>(group.members.size());
        } else {
          // Resume Evaluate's fold where the capture left off: the
          // captured value IS the accumulator's settled statistic, and
          // count only matters to Finish's empty-group error, which the
          // capture already cleared.
          AggFunction::Accumulator acc;
          acc.count = 1;
          switch (kind) {
            case AggregateFunctionKind::kSum:
              acc.sum = old_group.value;
              break;
            case AggregateFunctionKind::kCount:
              acc.count = static_cast<std::size_t>(old_group.value);
              break;
            case AggregateFunctionKind::kMin:
              acc.min_value = old_group.value;
              break;
            case AggregateFunctionKind::kMax:
              acc.max_value = old_group.value;
              break;
            default:
              return Status::InvalidArgument("unexpected fold kind");
          }
          const std::size_t dim = spec.function.args().front();
          if (dim >= n) {
            return Status::InvalidArgument(
                StrCat(spec.function.name(), " references dimension ", dim,
                       " of a ", n, "-dimensional MO"));
          }
          const Dimension& dimension = mo.dimension(dim);
          for (FactId member : fresh) {
            for (const FactDimRelation::Entry* entry :
                 mo.relation(dim).ForFact(member)) {
              if (entry->value == dimension.top_value()) continue;
              if (kind == AggregateFunctionKind::kCount) {
                acc.AddCounted(1);
                continue;
              }
              MDDC_ASSIGN_OR_RETURN(
                  double value,
                  dimension.NumericValueOf(entry->value, spec.prob_at));
              acc.Add(value);
            }
          }
          MDDC_ASSIGN_OR_RETURN(eval.value, spec.function.Finish(acc));
        }
        // Resume the Section 4.2 result-lifespan fold over the fresh
        // members (old members contributed first in the full run, and
        // the capture holds exactly that prefix).
        Lifespan result_life = old_group.result_life;
        for (std::size_t dim : spec.function.args()) {
          if (dim >= n) continue;
          const FactDimRelation& relation = mo.relation(dim);
          for (FactId member : fresh) {
            TemporalElement member_valid;
            TemporalElement member_transaction;
            for (std::size_t e : relation.EntryIndexesForFact(member)) {
              const FactDimRelation::Entry& entry = relation.entries()[e];
              member_valid = member_valid.Union(entry.life.valid);
              member_transaction =
                  member_transaction.Union(entry.life.transaction);
            }
            result_life = result_life.Intersect(
                Lifespan{member_valid, member_transaction});
          }
        }
        eval.result_life = result_life;
      }
    }
    keys.push_back(key);
    accums.push_back(std::move(group));
    evals.push_back(eval);
  }

  if (exec != nullptr) ++exec->stats.aggregate_folds;
  return AssembleAggregateResult(mo, spec, summarizability, keys, accums,
                                 evals);
}

// ---- Streaming multi-aggregate group-by ------------------------------------

namespace {

/// Per-worker state of a stream run — KernelPartition minus the rendered
/// state (member lists, lifespans, probabilities) the fused MDQL path
/// never displays, plus per-class accumulator strides so every function
/// folds in the one scan.
struct StreamPartition {
  explicit StreamPartition(Arena* a)
      : group_of_slot(ArenaAllocator<std::uint32_t>(a)),
        slot_of_group(ArenaAllocator<std::uint64_t>(a)),
        key_storage(ArenaAllocator<ValueId>(a)),
        members(ArenaAllocator<std::size_t>(a)),
        accums(ArenaAllocator<AggFunction::Accumulator>(a)),
        failed(ArenaAllocator<unsigned char>(a)),
        inc_group(ArenaAllocator<std::uint32_t>(a)),
        inc_fact(ArenaAllocator<FactId>(a)) {}

  std::uint64_t slot_begin = 0;
  std::uint64_t slot_end = 0;
  ArenaVec<std::uint32_t> group_of_slot;
  ArenaVec<std::uint64_t> slot_of_group;
  FlatHashGroupIndex index;
  ArenaVec<ValueId> key_storage;              // stride = live dim count
  ArenaVec<std::size_t> members;              // one per group
  ArenaVec<AggFunction::Accumulator> accums;  // stride = class count
  ArenaVec<unsigned char> failed;             // stride = class count
  std::vector<Status> errors;                 // stride = class count
  /// Membership incidences in scan order (ascending fact within each
  /// group, since the scan walks facts ascending); recorded only under
  /// StreamSpec::collect_members and scattered into per-group lists at
  /// emission.
  ArenaVec<std::uint32_t> inc_group;
  ArenaVec<FactId> inc_fact;
};

/// Functions sharing an argument dimension and pair-vs-value reading
/// share one contribution pass, one accumulator per group and one sticky
/// error — the Accumulator keeps count/sum/min/max regardless of which
/// Finish will read it, so the shared state is exactly what running each
/// function alone would have built.
struct AccumClass {
  std::size_t dim = 0;
  bool counts = false;     // COUNT reads pairs; SUM/AVG/MIN/MAX read values
  std::size_t exemplar = 0;  // index into StreamSpec::functions
  bool bad_dim = false;      // dim >= dimension_count: error only if groups
};

}  // namespace

StreamProbe AggregateStreamProbe(const MdObject& mo,
                                 const std::vector<CategoryTypeIndex>& grouping,
                                 ExecContext* exec) {
  StreamProbe probe;
  const std::size_t n = mo.dimension_count();
  if (grouping.size() != n) return probe;
  for (std::size_t i = 0; i < n; ++i) {
    if (grouping[i] >= mo.dimension(i).type().category_count()) return probe;
    if (grouping[i] != mo.dimension(i).type().top()) probe.live.push_back(i);
  }
  // The probe never touches stats: EXPLAIN must not perturb the counters
  // of the statements it describes.
  std::vector<std::shared_ptr<const RollupIndex>> hold;
  std::vector<DenseSlotSpace::GroupingDim> dims;
  hold.reserve(probe.live.size());
  dims.reserve(probe.live.size());
  probe.all_indexed = true;
  for (std::size_t i : probe.live) {
    std::shared_ptr<const RollupIndex> index =
        RollupIndex::For(mo.dimension(i));
    if (!index->has_flat_table()) {
      probe.all_indexed = false;
      return probe;
    }
    hold.push_back(std::move(index));
    dims.push_back({hold.back().get(), grouping[i], ValueId{}});
  }
  const std::uint64_t max_slots = exec != nullptr
                                      ? exec->max_dense_groupby_slots
                                      : (std::uint64_t{1} << 22);
  DenseSlotSpace space;
  switch (DenseSlotSpace::Build(dims, max_slots, &space)) {
    case DenseSlotSpace::Plan::kDense:
      probe.dense = true;
      probe.slot_product = space.slot_count();
      break;
    case DenseSlotSpace::Plan::kTooManySlots: {
      // Rebuild unbounded so EXPLAIN can still print the product (stays 0
      // when it overflows 64 bits).
      DenseSlotSpace wide;
      if (DenseSlotSpace::Build(dims,
                                std::numeric_limits<std::uint64_t>::max(),
                                &wide) == DenseSlotSpace::Plan::kDense) {
        probe.slot_product = wide.slot_count();
      }
      break;
    }
    case DenseSlotSpace::Plan::kNotIndexed:
      probe.all_indexed = false;
      break;
  }
  return probe;
}

Result<std::vector<StreamGroup>> AggregateStream(const MdObject& mo,
                                                 const StreamSpec& spec,
                                                 ExecContext* exec) {
  const std::size_t n = mo.dimension_count();
  if (spec.grouping.size() != n) {
    return Status::InvalidArgument(
        StrCat("aggregate stream got ", spec.grouping.size(),
               " grouping categories for a ", n, "-dimensional MO"));
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (spec.grouping[i] >= mo.dimension(i).type().category_count()) {
      return Status::InvalidArgument(
          StrCat("grouping category ", spec.grouping[i],
                 " out of range for dimension '", mo.dimension(i).name(),
                 "'"));
    }
  }
  const std::vector<FactId>& facts = mo.facts();  // sorted by id
  if (spec.keep != nullptr && spec.keep->size() != facts.size()) {
    return Status::InvalidArgument(
        StrCat("aggregate stream keep mask covers ", spec.keep->size(),
               " facts of ", facts.size()));
  }

  // Dead-dimension pruning: a top-grouped dimension contributes one fixed
  // coordinate with probability 1 to every fact, so the scan drops it and
  // keys carry only the live axes.
  std::vector<std::size_t> live;
  for (std::size_t i = 0; i < n; ++i) {
    if (spec.grouping[i] != mo.dimension(i).type().top()) live.push_back(i);
  }
  const std::size_t nl = live.size();

  std::size_t kept = facts.size();
  if (spec.keep != nullptr) {
    kept = static_cast<std::size_t>(
        std::count(spec.keep->begin(), spec.keep->end(), true));
  }

  // Everything arena-backed below is scratch of this one stream; the
  // guard rewinds the context's arenas on every exit path (the returned
  // groups are plain heap state).
  ArenaResetGuard arena_guard{exec};

  bool parallel = exec != nullptr && spec.allow_parallel &&
                  exec->WantsParallel(kept);
  if (parallel) {
    // Same safety gate as AggregateFormation, applied to every fused
    // function: per-worker partial groups are combinable exactly when the
    // Section 3.4 preconditions hold.
    for (const AggFunction& fn : spec.functions) {
      if (!CheckSummarizability(mo, fn.kind(), spec.grouping).summarizable) {
        ++exec->stats.sequential_fallbacks;
        parallel = false;
        break;
      }
    }
  }

  // Compiled rollup snapshots for the live dimensions (exec-gated exactly
  // like AggregateFormation's step 0).
  std::vector<std::shared_ptr<const RollupIndex>> indexes(n);
  if (exec != nullptr) {
    for (std::size_t i : live) {
      std::shared_ptr<const RollupIndex> index =
          RollupIndex::For(mo.dimension(i), &exec->stats);
      if (index->has_flat_table()) {
        indexes[i] = std::move(index);
        ++exec->stats.index_hits;
      } else {
        ++exec->stats.index_fallbacks;
      }
    }
  }

  // The accumulator classes behind spec.functions.
  std::vector<AccumClass> classes;
  std::vector<std::size_t> class_of(spec.functions.size(),
                                    std::numeric_limits<std::size_t>::max());
  for (std::size_t k = 0; k < spec.functions.size(); ++k) {
    const AggFunction& fn = spec.functions[k];
    if (fn.args().empty()) continue;  // SetCount folds from member counts
    const std::size_t dim = fn.args().front();
    const bool counts = fn.kind() == AggregateFunctionKind::kCount;
    std::size_t c = 0;
    for (; c < classes.size(); ++c) {
      if (classes[c].dim == dim && classes[c].counts == counts) break;
    }
    if (c == classes.size()) {
      classes.push_back(AccumClass{dim, counts, k, dim >= n});
    }
    class_of[k] = c;
  }
  const std::size_t nclasses = classes.size();

  // Per-fact entry lists for the live indexed dimensions and the classes'
  // argument dimensions.
  FactEntryLists fact_entries;
  const FactEntryLists* fact_entries_ptr = nullptr;
  if (exec != nullptr) {
    std::vector<bool> wanted(n, false);
    for (std::size_t i : live) {
      if (indexes[i] != nullptr) wanted[i] = true;
    }
    for (const AccumClass& cls : classes) {
      if (!cls.bad_dim) wanted[cls.dim] = true;
    }
    fact_entries = BuildFactEntryLists(mo, wanted);
    fact_entries_ptr = &fact_entries;
  }

  // 1. Live coordinates per kept fact, in fact order. A fact with an
  //    empty live list joins no group (exactly GroupingCoordinates'
  //    nullopt), and a false keep entry is skipped outright — selection
  //    pushdown without the materialized Select.
  std::vector<std::optional<CoordLists>> coords(facts.size());
  auto live_coords = [&](std::size_t f,
                         Arena* arena) -> std::optional<CoordLists> {
    CoordLists per_dim{ArenaAllocator<CoordList>(arena)};
    per_dim.reserve(nl);
    for (std::size_t j = 0; j < nl; ++j) {
      per_dim.emplace_back(ArenaAllocator<Coordinate>(arena));
    }
    for (std::size_t j = 0; j < nl; ++j) {
      const std::size_t i = live[j];
      const RollupIndex* index = indexes[i].get();
      const FactDimRelation::EntrySpan* span =
          (index != nullptr && fact_entries_ptr != nullptr)
              ? &(*fact_entries_ptr)[i][f]
              : nullptr;
      AppendDimCoordinates(mo, i, spec.grouping[i], spec.prob_at, index,
                           facts[f], span, per_dim[j]);
      if (per_dim[j].empty()) return std::nullopt;
    }
    return per_dim;
  };
  if (parallel) {
    for (std::size_t i : live) mo.dimension(i).WarmClosureMemo();
    const std::size_t chunks = std::min(facts.size(), exec->num_threads * 4);
    exec->EnsureWorkerArenas(chunks);
    exec->pool().ParallelFor(chunks, [&](std::size_t chunk) {
      const std::size_t begin = chunk * facts.size() / chunks;
      const std::size_t end = (chunk + 1) * facts.size() / chunks;
      Arena* arena = &exec->worker_arena(chunk);
      for (std::size_t f = begin; f < end; ++f) {
        if (spec.keep == nullptr || (*spec.keep)[f]) {
          coords[f] = live_coords(f, arena);
        }
      }
    });
    exec->stats.tasks += chunks;
  } else {
    Arena* arena = exec != nullptr ? &exec->arena : nullptr;
    for (std::size_t f = 0; f < facts.size(); ++f) {
      if (spec.keep == nullptr || (*spec.keep)[f]) {
        coords[f] = live_coords(f, arena);
      }
    }
  }

  // 2. Per-class fact contributions, sharing ContributionOf (and its
  //    sequential numeric-value hoist) with the kernel path.
  std::vector<std::vector<FactContribution>> contribs(nclasses);
  std::vector<NumericValueCache> caches(nclasses);
  for (std::size_t c = 0; c < nclasses; ++c) {
    const AccumClass& cls = classes[c];
    if (cls.bad_dim) continue;
    const AggregateSpec cspec{spec.functions[cls.exemplar],
                              spec.grouping,
                              ResultDimensionSpec::Auto(),
                              spec.prob_at,
                              false,
                              false};
    const NumericValueCache* cache_ptr = nullptr;
    if (!cls.counts) {
      const Dimension& dimension = mo.dimension(cls.dim);
      NumericValueCache& cache = caches[c];
      for (const FactDimRelation::Entry& entry :
           mo.relation(cls.dim).entries()) {
        if (entry.value == dimension.top_value()) continue;
        const std::uint64_t raw = entry.value.raw();
        if (cache.find(raw) != cache.end()) continue;
        cache.emplace(raw,
                      dimension.NumericValueOf(entry.value, spec.prob_at));
      }
      cache_ptr = &cache;
    }
    contribs[c].resize(facts.size());
    auto fill_chunk = [&](std::size_t begin, std::size_t end, Arena* arena) {
      for (std::size_t f = begin; f < end; ++f) {
        if (coords[f].has_value()) {
          contribs[c][f] = ContributionOf(mo, cspec, facts[f],
                                          fact_entries_ptr, f, cache_ptr,
                                          arena);
        }
      }
    };
    if (parallel) {
      const std::size_t chunks = std::min(facts.size(), exec->num_threads * 4);
      exec->EnsureWorkerArenas(chunks);
      exec->pool().ParallelFor(chunks, [&](std::size_t chunk) {
        fill_chunk(chunk * facts.size() / chunks,
                   (chunk + 1) * facts.size() / chunks,
                   &exec->worker_arena(chunk));
      });
      exec->stats.tasks += chunks;
    } else {
      fill_chunk(0, facts.size(), exec != nullptr ? &exec->arena : nullptr);
    }
  }

  // 3. Engine selection over the live axes only (dead dimensions never
  //    widen the slot product).
  GroupEngine engine = GroupEngine::kFlatHash;
  DenseSlotSpace space;
  {
    bool all_indexed = true;
    std::vector<DenseSlotSpace::GroupingDim> grouping_dims(nl);
    for (std::size_t j = 0; j < nl; ++j) {
      const std::size_t i = live[j];
      if (indexes[i] != nullptr) {
        grouping_dims[j] = {indexes[i].get(), spec.grouping[i], ValueId{}};
      } else {
        all_indexed = false;
        break;
      }
    }
    if (all_indexed) {
      const std::uint64_t max_slots = exec != nullptr
                                          ? exec->max_dense_groupby_slots
                                          : (std::uint64_t{1} << 22);
      switch (DenseSlotSpace::Build(grouping_dims, max_slots, &space)) {
        case DenseSlotSpace::Plan::kDense:
          engine = GroupEngine::kDenseSlots;
          break;
        case DenseSlotSpace::Plan::kTooManySlots:
          if (exec != nullptr) ++exec->stats.dense_slot_fallbacks;
          break;
        case DenseSlotSpace::Plan::kNotIndexed:
          break;
      }
    }
  }
  if (exec != nullptr) {
    if (engine == GroupEngine::kDenseSlots) {
      ++exec->stats.dense_groupby_runs;
    } else {
      ++exec->stats.flat_hash_runs;
    }
  }

  // 4. The partitioned scan: contiguous dense-slot ranges or keys by
  //    hash, every worker scans all facts, every group built whole by one
  //    worker — exactly RunGroupByKernel's ownership scheme.
  const std::size_t num_partitions = parallel ? exec->num_threads : 1;
  if (parallel) exec->EnsureWorkerArenas(num_partitions);
  std::vector<StreamPartition> parts;
  parts.reserve(num_partitions);
  for (std::size_t p = 0; p < num_partitions; ++p) {
    parts.emplace_back(parallel ? &exec->worker_arena(p)
                       : exec != nullptr ? &exec->arena
                                         : nullptr);
  }
  if (engine == GroupEngine::kDenseSlots) {
    const std::uint64_t slots = space.slot_count();
    const std::uint64_t base = slots / num_partitions;
    const std::uint64_t extra = slots % num_partitions;
    std::uint64_t begin = 0;
    for (std::size_t p = 0; p < num_partitions; ++p) {
      const std::uint64_t width = base + (p < extra ? 1 : 0);
      parts[p].slot_begin = begin;
      parts[p].slot_end = begin + width;
      begin += width;
      parts[p].group_of_slot.assign(static_cast<std::size_t>(width),
                                    FlatHashGroupIndex::kNoGroup);
    }
  }

  auto scan_partition = [&](std::size_t p) {
    StreamPartition& part = parts[p];
    std::vector<std::size_t> cursor(nl);
    std::vector<ValueId> scratch(nl);
    for (std::size_t f = 0; f < facts.size(); ++f) {
      if (!coords[f].has_value()) continue;
      const CoordLists& per_dim = *coords[f];
      std::fill(cursor.begin(), cursor.end(), 0);
      // Enumerate the cross product of the fact's live coordinate lists
      // (one iteration — the single global group — when nl == 0).
      while (true) {
        std::uint32_t g = FlatHashGroupIndex::kNoGroup;
        if (engine == GroupEngine::kDenseSlots) {
          // Row-major slot over the live axes, lowest dimension index
          // most significant — ascending slots are the canonical order.
          std::uint64_t slot = 0;
          for (std::size_t j = 0; j < nl; ++j) {
            slot = slot * space.cardinality(j) +
                   space.OrdinalOf(j, per_dim[j][cursor[j]].dense);
          }
          if (slot >= part.slot_begin && slot < part.slot_end) {
            std::uint32_t& mapped = part.group_of_slot[
                static_cast<std::size_t>(slot - part.slot_begin)];
            if (mapped == FlatHashGroupIndex::kNoGroup) {
              mapped = static_cast<std::uint32_t>(part.members.size());
              part.slot_of_group.push_back(slot);
              part.members.push_back(0);
              part.accums.insert(part.accums.end(), nclasses,
                                 AggFunction::Accumulator{});
              part.failed.insert(part.failed.end(), nclasses, 0);
              part.errors.resize(part.errors.size() + nclasses);
            }
            g = mapped;
          }
        } else {
          for (std::size_t j = 0; j < nl; ++j) {
            scratch[j] = per_dim[j][cursor[j]].value;
          }
          const std::uint64_t hash = HashValueIds(scratch.data(), nl);
          if (num_partitions == 1 || hash % num_partitions == p) {
            bool inserted = false;
            g = part.index.FindOrInsert(
                hash, static_cast<std::uint32_t>(part.members.size()),
                [&](std::uint32_t ordinal) {
                  return std::equal(scratch.begin(), scratch.end(),
                                    part.key_storage.begin() +
                                        static_cast<std::ptrdiff_t>(
                                            ordinal * nl));
                },
                &inserted);
            if (inserted) {
              part.key_storage.insert(part.key_storage.end(),
                                      scratch.begin(), scratch.end());
              part.members.push_back(0);
              part.accums.insert(part.accums.end(), nclasses,
                                 AggFunction::Accumulator{});
              part.failed.insert(part.failed.end(), nclasses, 0);
              part.errors.resize(part.errors.size() + nclasses);
            }
          }
        }
        if (g != FlatHashGroupIndex::kNoGroup) {
          ++part.members[g];
          if (spec.collect_members) {
            part.inc_group.push_back(g);
            part.inc_fact.push_back(facts[f]);
          }
          const std::size_t base = static_cast<std::size_t>(g) * nclasses;
          for (std::size_t c = 0; c < nclasses; ++c) {
            if (classes[c].bad_dim) continue;
            const FactContribution& fc = contribs[c][f];
            if (fc.failed) {
              if (!part.failed[base + c]) {
                part.failed[base + c] = 1;
                part.errors[base + c] = fc.error;
              }
            } else if (!part.failed[base + c]) {
              if (classes[c].counts) {
                part.accums[base + c].AddCounted(fc.counted);
              } else {
                for (double value : fc.values) {
                  part.accums[base + c].Add(value);
                }
              }
            }
          }
        }
        // Advance the cross-product cursor.
        std::size_t j = 0;
        while (j < nl && ++cursor[j] == per_dim[j].size()) {
          cursor[j] = 0;
          ++j;
        }
        if (j == nl) break;
      }
    }
  };
  if (parallel) {
    exec->pool().ParallelFor(num_partitions, scan_partition);
    exec->stats.tasks += num_partitions;
    exec->stats.partitions += num_partitions;
    ++exec->stats.parallel_runs;
  } else {
    scan_partition(0);
  }

  // 5. Canonical group order: ascending slot for the dense engine (the
  //    partitions own ascending disjoint ranges), one lexicographic key
  //    sort for the flat-hash engine.
  struct GroupRef {
    std::uint32_t partition;
    std::uint32_t ordinal;
  };
  std::size_t total = 0;
  for (const StreamPartition& part : parts) total += part.members.size();
  std::vector<GroupRef> order;
  order.reserve(total);
  const auto merge_start = std::chrono::steady_clock::now();
  if (engine == GroupEngine::kDenseSlots) {
    for (std::size_t p = 0; p < parts.size(); ++p) {
      StreamPartition& part = parts[p];
      std::vector<std::uint32_t> by_slot(part.members.size());
      for (std::uint32_t g = 0; g < by_slot.size(); ++g) by_slot[g] = g;
      std::sort(by_slot.begin(), by_slot.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  return part.slot_of_group[a] < part.slot_of_group[b];
                });
      for (std::uint32_t g : by_slot) {
        order.push_back({static_cast<std::uint32_t>(p), g});
      }
    }
  } else {
    for (std::size_t p = 0; p < parts.size(); ++p) {
      for (std::uint32_t g = 0; g < parts[p].members.size(); ++g) {
        order.push_back({static_cast<std::uint32_t>(p), g});
      }
    }
    std::sort(order.begin(), order.end(),
              [&](const GroupRef& a, const GroupRef& b) {
                const ValueId* ka =
                    parts[a.partition].key_storage.data() + a.ordinal * nl;
                const ValueId* kb =
                    parts[b.partition].key_storage.data() + b.ordinal * nl;
                return std::lexicographical_compare(ka, ka + nl, kb, kb + nl);
              });
  }
  if (parallel) {
    exec->stats.merge_nanos += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - merge_start)
            .count());
  }

  // 6. Emission, function-major: function k's errors (CheckApplicable,
  //    then each group's sticky class error or Finish failure, in
  //    canonical group order) surface before function k+1 computes
  //    anything — exactly the order running the functions one
  //    AggregateFormation at a time produces.
  std::vector<StreamGroup> out(order.size());
  std::vector<ValueId> key(nl);
  for (std::size_t t = 0; t < order.size(); ++t) {
    const GroupRef& ref = order[t];
    const StreamPartition& part = parts[ref.partition];
    StreamGroup& group = out[t];
    if (engine == GroupEngine::kDenseSlots) {
      space.KeyOf(part.slot_of_group[ref.ordinal], key);
      group.key = key;
    } else {
      const ValueId* base = part.key_storage.data() + ref.ordinal * nl;
      group.key.assign(base, base + nl);
    }
    group.members = part.members[ref.ordinal];
    group.values.reserve(spec.functions.size());
  }
  if (spec.collect_members) {
    // Scatter the scan-order incidence log into per-group lists. Each
    // worker walked facts ascending, so within a group the log is already
    // in ascending fact order.
    std::vector<std::vector<std::uint32_t>> out_of(parts.size());
    for (std::size_t p = 0; p < parts.size(); ++p) {
      out_of[p].resize(parts[p].members.size());
    }
    for (std::size_t t = 0; t < order.size(); ++t) {
      out_of[order[t].partition][order[t].ordinal] =
          static_cast<std::uint32_t>(t);
      out[t].member_facts.reserve(out[t].members);
    }
    for (std::size_t p = 0; p < parts.size(); ++p) {
      const StreamPartition& part = parts[p];
      for (std::size_t e = 0; e < part.inc_group.size(); ++e) {
        out[out_of[p][part.inc_group[e]]].member_facts.push_back(
            part.inc_fact[e]);
      }
    }
  }
  for (std::size_t k = 0; k < spec.functions.size(); ++k) {
    const AggFunction& fn = spec.functions[k];
    if (spec.enforce_aggregation_types) {
      MDDC_RETURN_NOT_OK(fn.CheckApplicable(mo));
    }
    if (fn.args().empty()) {
      for (StreamGroup& group : out) {
        group.values.push_back(static_cast<double>(group.members));
      }
      continue;
    }
    if (fn.args().front() >= n) {
      // Every group's evaluation would fail identically; surface it
      // exactly as AggregateFormation does for its first group (and stay
      // silent when there are no groups, as it does).
      if (!out.empty()) {
        return Status::InvalidArgument(
            StrCat(fn.name(), " references dimension ", fn.args().front(),
                   " of a ", n, "-dimensional MO"));
      }
      continue;
    }
    const std::size_t c = class_of[k];
    for (std::size_t t = 0; t < order.size(); ++t) {
      const GroupRef& ref = order[t];
      const StreamPartition& part = parts[ref.partition];
      const std::size_t base =
          static_cast<std::size_t>(ref.ordinal) * nclasses + c;
      if (part.failed[base]) return part.errors[base];
      MDDC_ASSIGN_OR_RETURN(double value, fn.Finish(part.accums[base]));
      out[t].values.push_back(value);
    }
  }
  return out;
}

}  // namespace mddc
