#ifndef MDDC_COMMON_STRINGS_H_
#define MDDC_COMMON_STRINGS_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace mddc {

/// Joins the elements of `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Splits `text` on `separator`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char separator);

/// Streams all arguments into a single string; convenience for building
/// status messages, e.g. StrCat("value ", id, " not in category ", name).
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}

/// Formats a double trimming trailing zeros ("2" not "2.000000").
std::string FormatDouble(double value);

}  // namespace mddc

#endif  // MDDC_COMMON_STRINGS_H_
