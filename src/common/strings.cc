#include "common/strings.h"

#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstdio>

namespace mddc {

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result += separator;
    result += parts[i];
  }
  return result;
}

std::vector<std::string> Split(std::string_view text, char separator) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(separator, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      break;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

std::string FormatDouble(double value) {
  if (std::isnan(value)) {
    // "%g" prints every NaN as "nan", which is not injective — and
    // representations require distinct texts for distinct values. Spell
    // out sign and payload ("nan(0x...)" parses back through strtod), so
    // payload-distinct NaNs stay distinguishable.
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%snan(0x%" PRIx64 ")",
                  (bits >> 63) != 0 ? "-" : "",
                  bits & ((std::uint64_t{1} << 52) - 1));
    return buffer;
  }
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    return buffer;
  }
  // Shortest representation that round-trips through strtod, so numeric
  // data surviving a string representation (e.g. dimension-value
  // representations) loses no precision.
  char buffer[64];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

}  // namespace mddc
