#include "common/table_printer.h"

#include <algorithm>
#include <sstream>

namespace mddc {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << " | ";
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << "\n";
  };
  print_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) os << "-+-";
    os << std::string(widths[c], '-');
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

}  // namespace mddc
