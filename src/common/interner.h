#ifndef MDDC_COMMON_INTERNER_H_
#define MDDC_COMMON_INTERNER_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/flat_hash.h"

namespace mddc {

/// Stable handle into a StringInterner. Ids are dense (0..size-1) and
/// never move or change once assigned, so snapshot copies can share or
/// extend an interner without invalidating earlier handles.
using StringId = std::uint32_t;
inline constexpr StringId kInvalidStringId = FlatHashIndex::kNone;

/// A hash-first, open-addressing string interner (docs/memory_layout.md).
/// All payload bytes live in one contiguous char pool, each string
/// followed by a NUL so `CStr` can feed C APIs (strtod) without a copy;
/// per-id (offset, length, hash) live in parallel arrays. Lookups compare
/// the 64-bit FNV-1a hash before touching bytes, so a miss typically
/// costs no memcmp at all. Refcount-free by design: published snapshots
/// are immutable, so interned strings live as long as their interner.
///
/// Not thread-safe for writes; concurrent reads of a frozen interner are
/// safe (no mutable state is touched on the read path).
class StringInterner {
 public:
  /// Returns the id for `s`, interning it on first sight.
  StringId Intern(std::string_view s);

  /// Returns the id for `s` or kInvalidStringId if it was never interned.
  /// Allocation-free: probes with the hash of the caller's bytes.
  StringId Find(std::string_view s) const;

  std::string_view View(StringId id) const {
    const Span& span = spans_[id];
    return std::string_view(chars_.data() + span.offset, span.length);
  }

  /// NUL-terminated payload (the pool stores a terminator after every
  /// string) for C APIs like strtod.
  const char* CStr(StringId id) const { return chars_.data() + spans_[id].offset; }

  std::uint64_t HashOf(StringId id) const { return hashes_[id]; }

  std::size_t size() const { return spans_.size(); }

  /// Total payload bytes held (including NUL terminators).
  std::size_t pool_bytes() const { return chars_.size(); }

 private:
  struct Span {
    std::uint32_t offset = 0;
    std::uint32_t length = 0;
  };

  std::vector<char> chars_;
  std::vector<Span> spans_;
  std::vector<std::uint64_t> hashes_;
  FlatHashIndex index_;
};

}  // namespace mddc

#endif  // MDDC_COMMON_INTERNER_H_
