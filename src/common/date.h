#ifndef MDDC_COMMON_DATE_H_
#define MDDC_COMMON_DATE_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace mddc {

/// Calendar date utilities. The paper's running example uses a Day-granule
/// time domain ("we use interval notation for Tv, with a chronon size of
/// Day", Example 9). We map dates to day numbers with a proleptic Gregorian
/// calendar so that day arithmetic is exact and total ordering is cheap.
///
/// Day number 0 is 01/01/1900; the case study only uses 20th/21st-century
/// dates. Negative day numbers (pre-1900) are permitted.
struct CalendarDate {
  int year = 1900;   ///< Full year, e.g. 1980.
  int month = 1;     ///< 1..12.
  int day = 1;       ///< 1..31.

  friend bool operator==(const CalendarDate&, const CalendarDate&) = default;
};

/// Returns true iff `date` denotes an actual calendar day (month/day in
/// range, leap years honored).
bool IsValidDate(const CalendarDate& date);

/// Converts a calendar date to its day number (days since 01/01/1900).
/// Returns InvalidArgument for non-existent dates.
Result<std::int64_t> DateToDayNumber(const CalendarDate& date);

/// Inverse of DateToDayNumber.
CalendarDate DayNumberToDate(std::int64_t day_number);

/// Parses the paper's "dd/mm/yy" format (two-digit years are 19yy when
/// yy >= 30 and 20yy otherwise, which covers the case study's 1969..NOW
/// range) as well as "dd/mm/yyyy". Returns the day number.
Result<std::int64_t> ParseDate(const std::string& text);

/// Formats a day number as "dd/mm/yyyy".
std::string FormatDate(std::int64_t day_number);

}  // namespace mddc

#endif  // MDDC_COMMON_DATE_H_
