#include "common/status.h"

namespace mddc {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvariantViolation:
      return "InvariantViolation";
    case StatusCode::kIllegalAggregation:
      return "IllegalAggregation";
    case StatusCode::kSchemaMismatch:
      return "SchemaMismatch";
    case StatusCode::kTemporalTypeMismatch:
      return "TemporalTypeMismatch";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeName(code_));
  result += ": ";
  result += message_;
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace mddc
