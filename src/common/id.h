#ifndef MDDC_COMMON_ID_H_
#define MDDC_COMMON_ID_H_

#include <cstdint>
#include <functional>
#include <ostream>

namespace mddc {

/// A strongly typed surrogate identifier. The paper argues for surrogate
/// identity of dimension values ("object ids", Section 3.1): names change
/// over time and may be ambiguous, so values are identified by ids and
/// names are attached through Representations. `Tag` distinguishes id
/// spaces at compile time so a FactId cannot be passed where a ValueId is
/// expected.
template <typename Tag>
class Id {
 public:
  using underlying_type = std::uint64_t;

  /// An explicitly invalid id; useful as a sentinel before assignment.
  static constexpr underlying_type kInvalid = ~underlying_type{0};

  constexpr Id() : raw_(kInvalid) {}
  constexpr explicit Id(underlying_type raw) : raw_(raw) {}

  constexpr underlying_type raw() const { return raw_; }
  constexpr bool valid() const { return raw_ != kInvalid; }

  friend constexpr bool operator==(Id a, Id b) { return a.raw_ == b.raw_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.raw_ != b.raw_; }
  friend constexpr bool operator<(Id a, Id b) { return a.raw_ < b.raw_; }
  friend constexpr bool operator>(Id a, Id b) { return a.raw_ > b.raw_; }
  friend constexpr bool operator<=(Id a, Id b) { return a.raw_ <= b.raw_; }
  friend constexpr bool operator>=(Id a, Id b) { return a.raw_ >= b.raw_; }

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    if (!id.valid()) return os << "<invalid>";
    return os << id.raw_;
  }

 private:
  underlying_type raw_;
};

struct ValueIdTag {};
struct FactIdTag {};
struct CategoryIdTag {};

/// Identifies a dimension value (surrogate, Section 3.1).
using ValueId = Id<ValueIdTag>;
/// Identifies a fact. Facts have separate identity in the model; after
/// aggregate formation facts denote *sets* of argument facts and after an
/// identity-based join they denote *pairs* (see core/fact.h).
using FactId = Id<FactIdTag>;
/// Identifies a category within a dimension.
using CategoryId = Id<CategoryIdTag>;

}  // namespace mddc

namespace std {
template <typename Tag>
struct hash<mddc::Id<Tag>> {
  size_t operator()(mddc::Id<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.raw());
  }
};
}  // namespace std

#endif  // MDDC_COMMON_ID_H_
