#include "common/date.h"

#include <array>
#include <cstdio>

namespace mddc {
namespace {

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static constexpr std::array<int, 12> kDays = {31, 28, 31, 30, 31, 30,
                                                31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

// Days from 01/01/0001 (day 0 of the proleptic Gregorian calendar) to
// 01/01/<year>.
std::int64_t DaysBeforeYear(int year) {
  std::int64_t y = year - 1;
  return y * 365 + y / 4 - y / 100 + y / 400;
}

constexpr std::int64_t kEpochShift = 693595;  // DaysBeforeYear(1900).

}  // namespace

bool IsValidDate(const CalendarDate& date) {
  if (date.month < 1 || date.month > 12) return false;
  if (date.day < 1 || date.day > DaysInMonth(date.year, date.month)) {
    return false;
  }
  return true;
}

Result<std::int64_t> DateToDayNumber(const CalendarDate& date) {
  if (!IsValidDate(date)) {
    return Status::InvalidArgument("invalid calendar date " +
                                   std::to_string(date.day) + "/" +
                                   std::to_string(date.month) + "/" +
                                   std::to_string(date.year));
  }
  std::int64_t days = DaysBeforeYear(date.year);
  for (int m = 1; m < date.month; ++m) days += DaysInMonth(date.year, m);
  days += date.day - 1;
  return days - kEpochShift;
}

CalendarDate DayNumberToDate(std::int64_t day_number) {
  std::int64_t days = day_number + kEpochShift;
  // Find the year by estimate-and-correct.
  int year = static_cast<int>(days / 366) + 1;
  while (DaysBeforeYear(year + 1) <= days) ++year;
  days -= DaysBeforeYear(year);
  int month = 1;
  while (days >= DaysInMonth(year, month)) {
    days -= DaysInMonth(year, month);
    ++month;
  }
  return CalendarDate{year, month, static_cast<int>(days) + 1};
}

Result<std::int64_t> ParseDate(const std::string& text) {
  int d = 0;
  int m = 0;
  int y = 0;
  char extra = 0;
  int fields = std::sscanf(text.c_str(), "%d/%d/%d%c", &d, &m, &y, &extra);
  if (fields != 3) {
    return Status::InvalidArgument("cannot parse date '" + text +
                                   "'; expected dd/mm/yy or dd/mm/yyyy");
  }
  if (y < 100) {
    // The case study spans 1969..present; split two-digit years at 30.
    y += (y >= 30) ? 1900 : 2000;
  }
  return DateToDayNumber(CalendarDate{y, m, d});
}

std::string FormatDate(std::int64_t day_number) {
  CalendarDate date = DayNumberToDate(day_number);
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "%02d/%02d/%04d", date.day,
                date.month, date.year);
  return buffer;
}

}  // namespace mddc
