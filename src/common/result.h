#ifndef MDDC_COMMON_RESULT_H_
#define MDDC_COMMON_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <utility>

#include "common/status.h"

namespace mddc {

/// A value-or-error type in the style of arrow::Result. Holds either a T
/// (status is OK) or an error Status. Accessing the value of an errored
/// result aborts with a diagnostic; callers are expected to check ok() or
/// use MDDC_ASSIGN_OR_RETURN.
template <typename T>
class Result {
 public:
  /// Constructs an errored result. The status must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (status_.ok()) {
      std::cerr << "Result constructed from OK status without a value\n";
      std::abort();
    }
  }

  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; aborts if this result holds an error.
  const T& ValueOrDie() const& {
    DieIfError();
    return *value_;
  }
  T& ValueOrDie() & {
    DieIfError();
    return *value_;
  }
  T ValueOrDie() && {
    DieIfError();
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void DieIfError() const {
    if (!status_.ok()) {
      std::cerr << "Attempted to access value of errored Result: "
                << status_.ToString() << "\n";
      std::abort();
    }
  }

  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace mddc

#endif  // MDDC_COMMON_RESULT_H_
