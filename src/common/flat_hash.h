#ifndef MDDC_COMMON_FLAT_HASH_H_
#define MDDC_COMMON_FLAT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mddc {

/// The FNV-1a offset basis — the seed of an unchained hash, and the hash
/// of an empty key.
inline constexpr std::uint64_t kFnv1a64Offset = 1469598103934665603ull;

/// FNV-1a over `n` raw bytes. The one hash function shared by every flat
/// index in the system (group-by keys, fact-term interning, string
/// interning, per-fact entry lists), so a key's partition and its table
/// slot always derive from the same computation.
inline std::uint64_t Fnv1a64(const void* data, std::size_t n,
                             std::uint64_t seed = kFnv1a64Offset) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// FNV-1a over one 64-bit word, byte by byte — identical to hashing its
/// little-endian byte image regardless of host endianness, and identical
/// to the group-key hash for a single surrogate id.
inline std::uint64_t Fnv1a64Word(std::uint64_t word,
                                 std::uint64_t seed = kFnv1a64Offset) {
  std::uint64_t h = seed;
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (word >> (8 * byte)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

/// An open-addressing (linear-probe, power-of-two capacity) map from a
/// key's hash to a caller-assigned dense ordinal. The table stores only
/// (hash, ordinal) pairs; the caller owns key storage and supplies the
/// equality probe, so keys of any shape — a fixed-stride run of ValueIds,
/// an interned string span, a fact term — intern without per-key heap
/// nodes. Not thread-safe; concurrent consumers give each partition (or
/// each frozen snapshot) its own index.
class FlatHashIndex {
 public:
  /// Sentinel ordinal: "slot empty" / "not found".
  static constexpr std::uint32_t kNone = 0xffffffffu;

  FlatHashIndex() { Rehash(16); }

  std::size_t size() const { return size_; }

  /// Drops every entry but keeps the current capacity (arena-style reuse).
  void Clear() {
    ordinals_.assign(ordinals_.size(), kNone);
    size_ = 0;
  }

  /// Looks up `hash`; `eq(ordinal)` must return true iff the caller's key
  /// equals the key it stored under `ordinal`. Returns kNone on a miss.
  template <typename Eq>
  std::uint32_t Find(std::uint64_t hash, const Eq& eq) const {
    std::size_t pos = static_cast<std::size_t>(hash) & mask_;
    while (true) {
      if (ordinals_[pos] == kNone) return kNone;
      if (hashes_[pos] == hash && eq(ordinals_[pos])) return ordinals_[pos];
      pos = (pos + 1) & mask_;
    }
  }

  /// Looks up `hash`; on a miss the key is recorded under `next_ordinal`
  /// and `*inserted` is set; the caller then appends the key (and any
  /// payload) to its own storage so the ordinal stays dense.
  template <typename Eq>
  std::uint32_t FindOrInsert(std::uint64_t hash, std::uint32_t next_ordinal,
                             const Eq& eq, bool* inserted) {
    if ((size_ + 1) * 10 >= hashes_.size() * 7) Rehash(hashes_.size() * 2);
    std::size_t pos = static_cast<std::size_t>(hash) & mask_;
    while (true) {
      if (ordinals_[pos] == kNone) {
        ordinals_[pos] = next_ordinal;
        hashes_[pos] = hash;
        ++size_;
        *inserted = true;
        return next_ordinal;
      }
      if (hashes_[pos] == hash && eq(ordinals_[pos])) {
        *inserted = false;
        return ordinals_[pos];
      }
      pos = (pos + 1) & mask_;
    }
  }

 private:
  void Rehash(std::size_t capacity) {
    std::vector<std::uint64_t> old_hashes = std::move(hashes_);
    std::vector<std::uint32_t> old_ordinals = std::move(ordinals_);
    hashes_.assign(capacity, 0);
    ordinals_.assign(capacity, kNone);
    mask_ = capacity - 1;
    for (std::size_t i = 0; i < old_ordinals.size(); ++i) {
      if (old_ordinals[i] == kNone) continue;
      std::size_t pos = static_cast<std::size_t>(old_hashes[i]) & mask_;
      while (ordinals_[pos] != kNone) pos = (pos + 1) & mask_;
      ordinals_[pos] = old_ordinals[i];
      hashes_[pos] = old_hashes[i];
    }
  }

  std::vector<std::uint64_t> hashes_;
  std::vector<std::uint32_t> ordinals_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace mddc

#endif  // MDDC_COMMON_FLAT_HASH_H_
