#ifndef MDDC_COMMON_TABLE_PRINTER_H_
#define MDDC_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace mddc {

/// Renders rows of strings as an aligned ASCII table. Used by the benchmark
/// harness to print the paper's tables (Table 1, Table 2) and result MOs in
/// a shape directly comparable to the publication.
class TablePrinter {
 public:
  /// Creates a printer with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; it must have exactly as many cells as there are
  /// headers (short rows are padded, long rows truncated, so output stays
  /// well-formed even on misuse).
  void AddRow(std::vector<std::string> cells);

  /// Writes the table, e.g.:
  ///   ID | Name     | SSN
  ///   ---+----------+---------
  ///   1  | John Doe | 12345678
  void Print(std::ostream& os) const;

  /// Returns the rendered table as a string.
  std::string ToString() const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mddc

#endif  // MDDC_COMMON_TABLE_PRINTER_H_
