#ifndef MDDC_COMMON_STATUS_H_
#define MDDC_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace mddc {

/// Error categories used across the library. Mirrors the RocksDB/Arrow
/// convention of returning status objects instead of throwing exceptions
/// across public API boundaries.
enum class StatusCode {
  kOk = 0,
  /// A caller supplied an argument that is structurally invalid (e.g., an
  /// unknown dimension index, a category not in the dimension).
  kInvalidArgument,
  /// A referenced entity (value, category, fact, representation) does not
  /// exist.
  kNotFound,
  /// An operation would violate a model invariant (e.g., adding a cycle to
  /// a dimension partial order, or a duplicate representation value).
  kInvariantViolation,
  /// An aggregate function was applied to data whose aggregation type does
  /// not permit it (the paper's Sigma/phi/c mechanism, Section 3.1).
  kIllegalAggregation,
  /// Two schemas that must be equal (union/difference) differ.
  kSchemaMismatch,
  /// The operation is not defined for the temporal type of the MO (e.g.,
  /// valid-timeslice of a snapshot MO).
  kTemporalTypeMismatch,
  /// Feature contracted but not implemented.
  kNotImplemented,
};

/// Human-readable name of a status code, e.g. "InvalidArgument".
std::string_view StatusCodeName(StatusCode code);

/// A success-or-error outcome. Cheap to construct in the OK case (no
/// allocation). Modeled on rocksdb::Status / arrow::Status.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvariantViolation(std::string msg) {
    return Status(StatusCode::kInvariantViolation, std::move(msg));
  }
  static Status IllegalAggregation(std::string msg) {
    return Status(StatusCode::kIllegalAggregation, std::move(msg));
  }
  static Status SchemaMismatch(std::string msg) {
    return Status(StatusCode::kSchemaMismatch, std::move(msg));
  }
  static Status TemporalTypeMismatch(std::string msg) {
    return Status(StatusCode::kTemporalTypeMismatch, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace mddc

/// Propagates a non-OK status to the caller. Usable only in functions
/// returning Status (or Result<T>, which converts from Status).
#define MDDC_RETURN_NOT_OK(expr)                   \
  do {                                             \
    ::mddc::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                     \
  } while (false)

/// Assigns the value of a Result<T> expression to `lhs`, propagating errors.
#define MDDC_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).ValueOrDie()

#define MDDC_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define MDDC_ASSIGN_OR_RETURN_NAME(a, b) MDDC_ASSIGN_OR_RETURN_CONCAT(a, b)
#define MDDC_ASSIGN_OR_RETURN(lhs, expr) \
  MDDC_ASSIGN_OR_RETURN_IMPL(            \
      MDDC_ASSIGN_OR_RETURN_NAME(_mddc_result_, __LINE__), lhs, expr)

#endif  // MDDC_COMMON_STATUS_H_
