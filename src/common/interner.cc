#include "common/interner.h"

#include <cstring>

namespace mddc {

StringId StringInterner::Intern(std::string_view s) {
  const std::uint64_t hash = Fnv1a64(s.data(), s.size());
  bool inserted = false;
  const StringId id = index_.FindOrInsert(
      hash, static_cast<std::uint32_t>(spans_.size()),
      [&](std::uint32_t ordinal) {
        const Span& span = spans_[ordinal];
        return span.length == s.size() &&
               std::memcmp(chars_.data() + span.offset, s.data(),
                           s.size()) == 0;
      },
      &inserted);
  if (inserted) {
    Span span;
    span.offset = static_cast<std::uint32_t>(chars_.size());
    span.length = static_cast<std::uint32_t>(s.size());
    chars_.insert(chars_.end(), s.begin(), s.end());
    chars_.push_back('\0');
    spans_.push_back(span);
    hashes_.push_back(hash);
  }
  return id;
}

StringId StringInterner::Find(std::string_view s) const {
  const std::uint64_t hash = Fnv1a64(s.data(), s.size());
  return index_.Find(hash, [&](std::uint32_t ordinal) {
    const Span& span = spans_[ordinal];
    return span.length == s.size() &&
           std::memcmp(chars_.data() + span.offset, s.data(), s.size()) == 0;
  });
}

}  // namespace mddc
