// Continuous-ingestion ablation (docs/ingestion.md): the same stream of
// bulk-INSERT batches applied to two identically-warmed MoStores, one
// sealing every epoch through the AppendBatch fast path (CSR tails
// spliced, rollup snapshots patched, warm pre-aggregates delta-folded)
// and one re-sealing from scratch through Mutate. Reports the sealing
// wall time of both modes and the speedup; after every batch the read
// set is rendered on both stores and must be byte-identical, so the
// bench never reports a fast path that returns wrong bytes.
//
//   $ ./bench/bench_ingest
//
// Sweeps fact scale (10^5..10^6); MDDC_SWEEP_MAX_FACTS caps the largest
// point (default 1000000). MDDC_INGEST_BATCHES and
// MDDC_INGEST_BATCH_FACTS override the stream shape (default 6 batches
// of 400 facts). At the 10^6-fact point the bench *asserts* the >= 3x
// speedup acceptance gate and exits nonzero below it. Results go to
// stdout and BENCH_ingest.json.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "mdql/mdql.h"
#include "mdql/parser.h"
#include "peak_rss.h"
#include "serve/mdql_server.h"
#include "serve/mo_store.h"
#include "workload/clinical_generator.h"

namespace {

using namespace mddc;

ClinicalWorkloadParams ParamsFor(std::size_t patients) {
  ClinicalWorkloadParams params;
  params.seed = 11;
  params.num_patients = patients;
  return params;
}

ClinicalMo BuildClinical(const ClinicalWorkloadParams& params) {
  auto workload =
      GenerateClinicalWorkload(params, std::make_shared<FactRegistry>());
  if (!workload.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 workload.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(workload).ValueOrDie();
}

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

/// The dashboard queries interleaved with the batches (rendered, not
/// timed — they are the bit-identity gate, identical in both modes).
std::vector<std::string> ReadSet() {
  return {
      "SELECT COUNT FROM clinical BY Residence.Region",
      "SELECT COUNT FROM clinical BY Diagnosis.\"Diagnosis Group\"",
      "SELECT COUNT FROM clinical BY Residence.Region"
      " WHERE PROB(Diagnosis.\"Diagnosis Family\" = 'F1') >= 0.7",
  };
}

std::vector<CategoryTypeIndex> RegionGrouping(const ClinicalMo& clinical) {
  std::vector<CategoryTypeIndex> grouping(clinical.mo.dimension_count());
  for (std::size_t i = 0; i < clinical.mo.dimension_count(); ++i) {
    grouping[i] = clinical.mo.dimension(i).type().top();
  }
  grouping[clinical.residence_dim] = clinical.region;
  return grouping;
}

/// The batch stream: bulk INSERTs of new patients over existing leaf
/// values, identical for both modes.
std::vector<std::string> BuildStream(const ClinicalWorkloadParams& params,
                                     const ClinicalMo& clinical,
                                     std::size_t batches,
                                     std::size_t batch_facts) {
  const std::size_t lows = clinical.num_low_level;
  const std::size_t areas = params.num_regions * params.counties_per_region *
                            params.areas_per_county;
  std::vector<std::string> stream;
  stream.reserve(batches);
  std::uint64_t key = 95000000;
  for (std::size_t b = 0; b < batches; ++b) {
    std::string statement = "INSERT INTO clinical";
    for (std::size_t f = 0; f < batch_facts; ++f, ++key) {
      statement += StrCat(
          f == 0 ? " " : ", ", "FACT ", key,
          " (Diagnosis.\"Low-level Diagnosis\" = 'L", key % lows, "'",
          f % 3 == 1 ? " PROB 0.8" : "", ", Residence.Area = 'A", key % areas,
          "')");
    }
    stream.push_back(std::move(statement));
  }
  return stream;
}

struct ModeResult {
  double seal_seconds = 0.0;          ///< publish time across all batches
  std::vector<std::string> rendered;  ///< read set after every batch
  std::uint64_t append_batches = 0;
  std::uint64_t append_fallbacks = 0;
  ExecStats seal_stats;
};

/// Runs the whole stream in one mode. Only the publish calls are timed;
/// the interleaved reads are rendered for the identity gate.
ModeResult RunMode(bool incremental, const ClinicalMo& clinical,
                   const std::vector<std::string>& stream,
                   const std::vector<CategoryTypeIndex>& grouping) {
  MdObject seed = clinical.mo;
  serve::MoStore store;
  serve::MdqlServer server(&store);
  Check(store.Publish("clinical", std::move(seed)), "publish");
  Check(store.WarmAggregate("clinical", AggFunction::SetCount(), grouping),
        "warm aggregate");

  ModeResult result;
  for (const std::string& statement : stream) {
    auto parsed = mdql::Parse(statement);
    if (!parsed.ok() || !parsed->insert.has_value()) {
      std::fprintf(stderr, "bad batch statement\n");
      std::exit(1);
    }
    auto appender = [&parsed](MdObject& draft) -> Status {
      return mdql::ApplyInsert(draft, *parsed->insert).status();
    };
    const auto start = std::chrono::steady_clock::now();
    if (incremental) {
      Check(store.AppendBatch("clinical", appender, nullptr,
                              &result.seal_stats),
            "append batch");
    } else {
      Check(store.Mutate("clinical", appender), "mutate");
    }
    const auto end = std::chrono::steady_clock::now();
    result.seal_seconds +=
        std::chrono::duration<double>(end - start).count();

    serve::ServerSession session = server.Connect(2);
    for (const std::string& query : ReadSet()) {
      auto rendered = session.Execute(query);
      if (!rendered.ok()) {
        std::fprintf(stderr, "read failed: %s\n",
                     rendered.status().ToString().c_str());
        std::exit(1);
      }
      result.rendered.push_back(rendered->ToString());
    }
  }
  const serve::MoStore::Stats stats = store.CollectStats();
  result.append_batches = stats.append_batches;
  result.append_fallbacks = stats.append_fallbacks;
  return result;
}

struct SweepRow {
  std::size_t facts = 0;
  std::size_t batches = 0;
  std::size_t batch_facts = 0;
  double incremental_seconds = 0.0;
  double rebuild_seconds = 0.0;
  double speedup = 0.0;
  std::uint64_t csr_tail_extends = 0;
  std::uint64_t rollup_patches = 0;
  std::uint64_t preagg_folds = 0;
  std::uint64_t fold_invalidations = 0;
};

void WriteJson(const std::vector<SweepRow>& rows, const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"ingest\",\n  \"peak_rss_kb\": %zu,\n"
               "  \"rows\": [\n",
               mddc_bench::PeakRssKb());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    std::fprintf(
        out,
        "    {\"facts\": %zu, \"batches\": %zu, \"batch_facts\": %zu, "
        "\"incremental_seconds\": %.4f, \"rebuild_seconds\": %.4f, "
        "\"speedup\": %.2f, \"csr_tail_extends\": %llu, "
        "\"rollup_patches\": %llu, \"preagg_folds\": %llu, "
        "\"fold_invalidations\": %llu}%s\n",
        r.facts, r.batches, r.batch_facts, r.incremental_seconds,
        r.rebuild_seconds, r.speedup,
        static_cast<unsigned long long>(r.csr_tail_extends),
        static_cast<unsigned long long>(r.rollup_patches),
        static_cast<unsigned long long>(r.preagg_folds),
        static_cast<unsigned long long>(r.fold_invalidations),
        i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main() {
  std::size_t max_facts = 1000000;
  if (const char* cap = std::getenv("MDDC_SWEEP_MAX_FACTS")) {
    max_facts = static_cast<std::size_t>(std::strtoull(cap, nullptr, 10));
  }
  std::size_t batches = 6;
  if (const char* text = std::getenv("MDDC_INGEST_BATCHES")) {
    batches = static_cast<std::size_t>(std::strtoull(text, nullptr, 10));
  }
  std::size_t batch_facts = 400;
  if (const char* text = std::getenv("MDDC_INGEST_BATCH_FACTS")) {
    batch_facts = static_cast<std::size_t>(std::strtoull(text, nullptr, 10));
  }
  if (batches == 0 || batch_facts == 0) {
    std::fprintf(stderr, "batches and batch_facts must be positive\n");
    return 1;
  }

  std::vector<std::size_t> fact_counts;
  for (std::size_t facts : {std::size_t{100000}, std::size_t{1000000}}) {
    if (facts <= max_facts) fact_counts.push_back(facts);
  }
  if (fact_counts.empty() && max_facts > 0) fact_counts.push_back(max_facts);

  bool gate_failed = false;
  std::vector<SweepRow> rows;
  for (std::size_t facts : fact_counts) {
    const ClinicalWorkloadParams params = ParamsFor(facts);
    ClinicalMo clinical = BuildClinical(params);
    const auto grouping = RegionGrouping(clinical);
    const std::vector<std::string> stream =
        BuildStream(params, clinical, batches, batch_facts);

    ModeResult inc = RunMode(/*incremental=*/true, clinical, stream, grouping);
    ModeResult full =
        RunMode(/*incremental=*/false, clinical, stream, grouping);

    // Bit-identity gate: every interleaved read must render the same
    // bytes in both modes — a fast path that diverges is a bug, not a
    // speedup.
    if (inc.rendered != full.rendered) {
      std::fprintf(stderr,
                   "bit-identity gate FAILED at %zu facts: incremental and "
                   "rebuild modes rendered different bytes\n",
                   facts);
      return 1;
    }
    if (inc.append_fallbacks != 0 || inc.append_batches != batches) {
      std::fprintf(stderr,
                   "append path gate FAILED at %zu facts: %llu of %zu "
                   "batches took the fast path (%llu fallbacks)\n",
                   facts,
                   static_cast<unsigned long long>(inc.append_batches),
                   batches,
                   static_cast<unsigned long long>(inc.append_fallbacks));
      return 1;
    }

    SweepRow row;
    row.facts = facts;
    row.batches = batches;
    row.batch_facts = batch_facts;
    row.incremental_seconds = inc.seal_seconds;
    row.rebuild_seconds = full.seal_seconds;
    row.speedup = inc.seal_seconds > 0.0
                      ? full.seal_seconds / inc.seal_seconds
                      : 0.0;
    row.csr_tail_extends = inc.seal_stats.csr_tail_extends;
    row.rollup_patches = inc.seal_stats.rollup_patches;
    row.preagg_folds = inc.seal_stats.preagg_folds;
    row.fold_invalidations = inc.seal_stats.preagg_fold_invalidations;
    rows.push_back(row);

    std::printf(
        "facts=%zu batches=%zu x %zu: incremental %.3fs, rebuild %.3fs, "
        "speedup %.1fx (tail_extends=%llu patches=%llu folds=%llu)\n",
        facts, batches, batch_facts, row.incremental_seconds,
        row.rebuild_seconds, row.speedup,
        static_cast<unsigned long long>(row.csr_tail_extends),
        static_cast<unsigned long long>(row.rollup_patches),
        static_cast<unsigned long long>(row.preagg_folds));
    std::fflush(stdout);

    // The acceptance gate: >= 3x at the 10^6-fact point.
    if (facts >= 1000000 && row.speedup < 3.0) {
      std::fprintf(stderr,
                   "speedup gate FAILED: %.2fx < 3x at %zu facts\n",
                   row.speedup, facts);
      gate_failed = true;
    }
  }

  WriteJson(rows, "BENCH_ingest.json");
  return gate_failed ? 1 : 0;
}
