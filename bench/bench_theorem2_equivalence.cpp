// Constructive check of the paper's two theorems.
//
// Theorem 1 (closure): every operator applied to valid MOs yields a valid
// MO — exercised by evaluating a deep composed expression whose every
// intermediate is validated.
//
// Theorem 2 (the algebra is at least as powerful as Klug's relational
// algebra with aggregation): every relational operator is simulated
// through the multidimensional algebra on randomized instances and the
// results compared for exact equality.
//
//   $ ./bench/bench_theorem2_equivalence

#include <iostream>
#include <random>

#include "algebra/expression.h"
#include "common/date.h"
#include "relational/translation.h"
#include "workload/case_study.h"

namespace {

using namespace mddc;
using relational::AggregateTerm;
using relational::Condition;
using relational::Relation;
using relational::Value;

Relation RandomRelation(std::mt19937& rng, std::size_t rows) {
  Relation r({"k", "g", "v"});
  std::uniform_int_distribution<int> key(0, 40);
  std::uniform_int_distribution<int> group(0, 4);
  std::uniform_int_distribution<int> value(0, 1000);
  const char* kGroups[] = {"a", "b", "c", "d", "e"};
  for (std::size_t i = 0; i < rows; ++i) {
    (void)r.Insert({Value(static_cast<std::int64_t>(key(rng))),
                    Value(std::string(kGroups[group(rng)])),
                    Value(static_cast<std::int64_t>(value(rng)))});
  }
  return r;
}

int checks = 0;
int failures = 0;

void Check(bool ok, const std::string& what) {
  ++checks;
  if (!ok) {
    ++failures;
    std::cout << " [FAIL] " << what << "\n";
  }
}

}  // namespace

int main() {
  std::cout << "==============================================\n";
  std::cout << " Theorems 1 and 2, checked constructively\n";
  std::cout << "==============================================\n\n";

  // ---- Theorem 1 -----------------------------------------------------------
  CaseStudy cs = *BuildCaseStudy();
  AggregateSpec spec{AggFunction::SetCount(), {}, ResultDimensionSpec::Auto(),
                     kNowChronon, true};
  for (std::size_t i = 0; i < cs.mo.dimension_count(); ++i) {
    spec.grouping.push_back(
        i == cs.diagnosis
            ? *cs.mo.dimension(i).type().Find("Diagnosis Group")
            : cs.mo.dimension(i).type().top());
  }
  Expression pipeline = Expression::Aggregate(
      Expression::ValidSlice(
          Expression::Select(
              Expression::Project(Expression::Leaf(cs.mo, "Patient"),
                                  {0, 1, 2, 3, 4, 5}),
              Predicate::CharacterizedBy(0, ValueId(11))),
          *ParseDate("01/06/99")),
      spec);
  auto evaluated = pipeline.Evaluate();
  std::cout << "Theorem 1 pipeline: " << pipeline.ToString() << "\n";
  Check(evaluated.ok(), "pipeline evaluates");
  if (evaluated.ok()) {
    Check(evaluated->Validate().ok(), "final MO validates");
    std::cout << " every intermediate MO validated during evaluation: "
              << pipeline.OperatorCount() << " operators -> closure holds "
              << "on this query\n";
  }

  // ---- Theorem 2 -----------------------------------------------------------
  std::cout << "\nTheorem 2: simulating Klug's operators on random "
               "instances\n";
  std::mt19937 rng(20260704);
  const int kInstances = 20;
  for (int i = 0; i < kInstances; ++i) {
    Relation r = RandomRelation(rng, 30);
    Relation s = RandomRelation(rng, 30);

    Condition c{"v", Condition::Op::kGe,
                Value(static_cast<std::int64_t>(500))};
    Check(*relational::SimulateSelect(r, c) == *relational::Select(r, c),
          "select");
    std::vector<std::string> attrs{"g", "k"};
    Check(*relational::SimulateProject(r, attrs) ==
              *relational::Project(r, attrs),
          "project");
    Check(*relational::SimulateUnion(r, s) == *relational::Union(r, s),
          "union");
    Check(*relational::SimulateDifference(r, s) ==
              *relational::Difference(r, s),
          "difference");
    AggregateTerm sum{AggregateTerm::Func::kSum, "v", "total"};
    Check(*relational::SimulateAggregate(r, {"g"}, sum) ==
              *relational::Aggregate(r, {"g"}, {sum}),
          "aggregate SUM");
    AggregateTerm count{AggregateTerm::Func::kCountStar, "", "n"};
    Check(*relational::SimulateAggregate(r, {"g"}, count) ==
              *relational::Aggregate(r, {"g"}, {count}),
          "aggregate COUNT(*)");
    AggregateTerm min_term{AggregateTerm::Func::kMin, "v", "lo"};
    Check(*relational::SimulateAggregate(r, {"g"}, min_term) ==
              *relational::Aggregate(r, {"g"}, {min_term}),
          "aggregate MIN");
  }
  // Product on small operands (quadratic output).
  Relation r = RandomRelation(rng, 8);
  Relation s2({"x"});
  (void)s2.Insert({Value(std::string("u"))});
  (void)s2.Insert({Value(std::string("w"))});
  Check(*relational::SimulateProduct(r, s2) == *relational::Product(r, s2),
        "product");

  // Attribute-to-attribute selection and equi-join (Klug's selection
  // class includes A = B comparisons).
  for (int i = 0; i < 5; ++i) {
    Relation t = RandomRelation(rng, 20);
    Check(*relational::SimulateSelectAttrEq(t, "k", "v") ==
              *relational::SelectAttrEq(t, "k", "v"),
          "select A = B");
    Relation lookup({"region", "pop"});
    (void)lookup.Insert({Value(std::string("a")),
                         Value(static_cast<std::int64_t>(10))});
    (void)lookup.Insert({Value(std::string("c")),
                         Value(static_cast<std::int64_t>(30))});
    Check(*relational::SimulateEquiJoin(t, lookup, "g", "region") ==
              *relational::EquiJoin(t, lookup, {{"g", "region"}}),
          "equi-join");
  }

  std::cout << " " << checks << " checks, " << failures << " failures\n";
  std::cout << (failures == 0 ? "\nTHEOREM CHECKS PASSED\n"
                              : "\nTHEOREM CHECKS FAILED\n");
  return failures == 0 ? 0 : 1;
}
